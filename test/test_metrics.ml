(* The serving metrics registry: instrument interning and kind checks,
   counter/gauge semantics, histogram bucket edges and bucketed
   percentile math, callback instruments, the deterministic Prometheus
   exposition, and the probes-never-perturb guarantee extended to the
   registry (arming it must not change any layout or rating).

   The registry is process-global and never unregisters, so every test
   uses its own name prefix and resets values on the way out. *)

module Metrics = Amg_obs.Metrics
module Env = Amg_core.Env
module Rating = Amg_core.Rating
module Units = Amg_geometry.Units
module M = Amg_modules

let um = Units.of_um
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let reset_after f = Fun.protect ~finally:Metrics.reset f

let find_value name =
  List.find_map
    (fun (s : Metrics.sample) ->
      if s.Metrics.m_name = name then Some s.Metrics.m_value else None)
    (Metrics.snapshot ())

let find_hist name =
  match find_value name with
  | Some (Metrics.Histogram h) -> h
  | _ -> Alcotest.failf "histogram %s missing from snapshot" name

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- counters and gauges --- *)

let test_counters () =
  reset_after @@ fun () ->
  let c = Metrics.counter "tm.requests" in
  Metrics.incr c;
  Metrics.add c 4;
  Metrics.add c (-3);
  check_int "incr/add accumulate; negative add ignored" 5
    (Metrics.counter_value c);
  let c' = Metrics.counter "tm.requests" in
  Metrics.incr c';
  check_int "same name+labels interns to one instrument" 6
    (Metrics.counter_value c);
  let l1 = Metrics.counter ~labels:[ ("op", "a"); ("cache", "x") ] "tm.requests" in
  let l2 = Metrics.counter ~labels:[ ("cache", "x"); ("op", "a") ] "tm.requests" in
  Metrics.incr l1;
  check_int "label order is canonicalised" 1 (Metrics.counter_value l2);
  (match Metrics.gauge "tm.requests" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  Metrics.reset ();
  check_int "reset zeroes but keeps the registration" 0
    (Metrics.counter_value c);
  let g = Metrics.gauge "tm.depth" in
  Metrics.set g 7;
  Metrics.set g 3;
  check_int "gauges are settable both ways" 3 (Metrics.gauge_value g)

(* --- histogram bucket edges --- *)

let test_bucket_edges () =
  reset_after @@ fun () ->
  let h = Metrics.histogram ~bounds:[| 1.; 2.; 4. |] "tm.edges" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.0001; 2.0; 4.0; 5.0 ];
  let s = find_hist "tm.edges" in
  Alcotest.(check (array int))
    "a bound is inclusive; past the last bound lands in overflow"
    [| 2; 2; 1; 1 |] s.Metrics.h_counts;
  check_int "total observations" 6 s.Metrics.h_count;
  Alcotest.(check (float 1e-9)) "sum is exact" 13.5001 s.Metrics.h_sum;
  (match Metrics.histogram ~bounds:[| 2.; 1. |] "tm.bad" with
  | _ -> Alcotest.fail "non-increasing bounds accepted"
  | exception Invalid_argument _ -> ());
  check_int "default bounds span 0.25 ms .. ~524 s" 22
    (Array.length Metrics.default_latency_bounds)

(* --- bucketed percentiles --- *)

let test_quantiles () =
  reset_after @@ fun () ->
  let h = Metrics.histogram ~bounds:[| 1.; 2.; 4.; 8. |] "tm.q" in
  (* 10 observations: 5 in (0,1], 4 in (1,2], 1 in (4,8] *)
  for _ = 1 to 5 do
    Metrics.observe h 0.5
  done;
  for _ = 1 to 4 do
    Metrics.observe h 1.5
  done;
  Metrics.observe h 6.0;
  let s = find_hist "tm.q" in
  let q p = Metrics.quantile s p in
  Alcotest.(check (float 0.)) "p50 is the 5th observation's bucket bound" 1.
    (q 0.5);
  Alcotest.(check (float 0.)) "p90 is the 9th observation's bucket bound" 2.
    (q 0.9);
  Alcotest.(check (float 0.)) "p99 rounds up to the last observation" 8.
    (q 0.99);
  let empty = Metrics.histogram ~bounds:[| 1. |] "tm.q.empty" in
  ignore empty;
  Alcotest.(check (float 0.)) "empty histogram quantile is 0" 0.
    (Metrics.quantile (find_hist "tm.q.empty") 0.5);
  let over = Metrics.histogram ~bounds:[| 1. |] "tm.q.over" in
  Metrics.observe over 100.;
  check_bool "overflow-bucket quantile is +Inf" true
    (Metrics.quantile (find_hist "tm.q.over") 1.0 = infinity)

(* --- callback instruments --- *)

let test_callbacks () =
  reset_after @@ fun () ->
  let v = ref 1 in
  Metrics.gauge_fn "tm.cb" (fun () -> float_of_int !v);
  (match find_value "tm.cb" with
  | Some (Metrics.Gauge g) ->
      Alcotest.(check (float 0.)) "callback sampled at snapshot time" 1. g
  | _ -> Alcotest.fail "callback gauge missing");
  v := 7;
  (match find_value "tm.cb" with
  | Some (Metrics.Gauge g) ->
      Alcotest.(check (float 0.)) "callback reads live state" 7. g
  | _ -> Alcotest.fail "callback gauge missing");
  (* re-registration replaces the callback (restarted-server contract) *)
  Metrics.gauge_fn "tm.cb" (fun () -> 42.);
  (match find_value "tm.cb" with
  | Some (Metrics.Gauge g) ->
      Alcotest.(check (float 0.)) "re-registration re-points the callback" 42. g
  | _ -> Alcotest.fail "callback gauge missing");
  Metrics.counter_fn "tm.cb.boom" (fun () -> failwith "boom");
  match find_value "tm.cb.boom" with
  | Some (Metrics.Counter n) ->
      check_int "a raising callback reads as 0, scrape survives" 0 n
  | _ -> Alcotest.fail "callback counter missing"

(* --- Prometheus exposition --- *)

let test_prometheus () =
  reset_after @@ fun () ->
  let c = Metrics.counter ~labels:[ ("op", "build") ] "tm.exp.requests" in
  Metrics.incr c;
  let h = Metrics.histogram ~bounds:[| 0.1; 1. |] "tm.exp.lat" in
  Metrics.observe h 0.05;
  Metrics.observe h 0.5;
  let text = Metrics.to_prometheus () in
  List.iter
    (fun line -> check_bool (Printf.sprintf "exposition has %S" line) true
        (contains text line))
    [
      "# TYPE tm_exp_requests_total counter";
      "tm_exp_requests_total{op=\"build\"} 1";
      "# TYPE tm_exp_lat histogram";
      "tm_exp_lat_bucket{le=\"0.1\"} 1";
      "tm_exp_lat_bucket{le=\"1\"} 2";
      "tm_exp_lat_bucket{le=\"+Inf\"} 2";
      "tm_exp_lat_sum 0.55";
      "tm_exp_lat_count 2";
    ];
  check_bool "equal snapshots give byte-equal expositions" true
    (String.equal text (Metrics.to_prometheus ()));
  (* every line is a comment or "name[{labels}] value" *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" && not (String.length line >= 1 && line.[0] = '#') then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "unparsable exposition line %S" line
           | Some i ->
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               if
                 (not (List.mem v [ "+Inf"; "-Inf"; "NaN" ]))
                 && float_of_string_opt v = None
               then Alcotest.failf "bad sample value in line %S" line)

(* --- probes never perturb, extended to the registry --- *)

let test_registry_never_perturbs () =
  reset_after @@ fun () ->
  let env = Env.bicmos () in
  let build () =
    M.Diff_pair.make env ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 2.)
      ~well:false ()
  in
  let fingerprint obj =
    ( Amg_layout.Cif.of_lobj ~tech:(Env.tech env) obj,
      Rating.rate env Rating.default obj )
  in
  let clean = fingerprint (build ()) in
  Metrics.incr (Metrics.counter "tm.perturb.c");
  Metrics.gauge_fn "tm.perturb.g" (fun () -> 1.);
  Metrics.observe (Metrics.histogram "tm.perturb.h") 0.001;
  let armed = fingerprint (build ()) in
  ignore (Metrics.to_prometheus ());
  let after_scrape = fingerprint (build ()) in
  check_bool "layout and rating identical with the registry armed" true
    (clean = armed);
  check_bool "identical after a scrape too" true (clean = after_scrape)

let suite =
  [
    Alcotest.test_case "counters and gauges intern and accumulate" `Quick
      test_counters;
    Alcotest.test_case "histogram bucket edges are inclusive" `Quick
      test_bucket_edges;
    Alcotest.test_case "bucketed percentiles are exact on bucket ranks" `Quick
      test_quantiles;
    Alcotest.test_case "callback instruments sample live state" `Quick
      test_callbacks;
    Alcotest.test_case "prometheus exposition is deterministic and parses"
      `Quick test_prometheus;
    Alcotest.test_case "registry probes never perturb results" `Quick
      test_registry_never_perturbs;
  ]
