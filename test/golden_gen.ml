(* Golden-file generator: renders the four showcase modules of examples/
   (contact row, diff pair, interdigitated device, common-centroid module E)
   to CIF and SVG.  `dune runtest` diffs the output against the pinned
   copies under test/golden/; `dune promote` accepts a new baseline.  The
   renders must be byte-stable across runs — any timestamp or iteration-
   order leak in the writers shows up here. *)

module Units = Amg_geometry.Units
module Env = Amg_core.Env
module Lobj = Amg_layout.Lobj
module M = Amg_modules

let um = Units.of_um

let () =
  let env = Env.bicmos () in
  let tech = Env.tech env in
  let modules =
    [
      ("contact_row",
       fun () -> M.Contact_row.make env ~layer:"poly" ~l:(um 8.) ());
      ("diff_pair",
       fun () ->
         M.Diff_pair.make env ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 5.)
           ~well:false ());
      ("interdigitated",
       fun () ->
         M.Interdigitated.make env ~polarity:M.Mosfet.Nmos ~w:(um 8.)
           ~l:(um 2.) ~fingers:4 ());
      ("common_centroid",
       fun () ->
         M.Common_centroid.make env ~polarity:M.Mosfet.Pmos ~w:(um 8.)
           ~l:(um 1.6) ());
    ]
  in
  List.iter
    (fun (name, build) ->
      let obj = build () in
      Amg_layout.Cif.save ~tech obj (name ^ ".cif");
      Amg_layout.Svg.save ~tech obj (name ^ ".svg"))
    modules
