(* The generator environment: automatic margins, primitives, backtracking
   variants, rating and compaction-order optimization. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Env = Amg_core.Env
module Prim = Amg_core.Prim
module Margins = Amg_core.Margins
module Variants = Amg_core.Variants
module Rating = Amg_core.Rating
module Optimize = Amg_core.Optimize

let um = Units.of_um
let env () = Env.bicmos ()

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_margins () =
  let rules = Env.rules (env ()) in
  (* Explicit enclosure rule. *)
  check "explicit" (um 0.5) (Margins.inside rules ~outer:"metal1" ~inner:"contact");
  (* Derived through the shared contact: poly (0.5) and metal1 (0.5). *)
  check "derived equal" 0 (Margins.inside rules ~outer:"poly" ~inner:"metal1");
  (* pdiff encloses contact by 0.75, metal1 by 0.5: pdiff over metal1 is
     0.25. *)
  check "derived" (um 0.25) (Margins.inside rules ~outer:"pdiff" ~inner:"metal1");
  (* Unrelated layers: zero. *)
  check "unrelated" 0 (Margins.inside rules ~outer:"metal2" ~inner:"poly");
  check_bool "cuts of poly" true
    (Margins.cuts_enclosed_by rules "poly" = [ ("contact", um 0.5); ("poly2", um 1.) ])

let test_inbox_first_defaults () =
  let e = env () in
  let o = Lobj.create "t" in
  let s = Prim.inbox e o ~layer:"metal2" () in
  (* First rectangle defaults to the minimum width in both directions. *)
  check "w" (um 2.) (Rect.height s.Shape.rect);
  check "l" (um 2.) (Rect.width s.Shape.rect)

let test_inbox_rejects_small () =
  let e = env () in
  let o = Lobj.create "t" in
  check_bool "rejected" true
    (match Prim.inbox e o ~layer:"metal1" ~w:(um 1.) () with
    | exception Env.Rejected _ -> true
    | _ -> false)

let test_inbox_expands () =
  let e = env () in
  let o = Lobj.create "t" in
  let outer = Prim.inbox e o ~layer:"poly" ~w:(um 1.) ~l:(um 1.) () in
  (* metal1's minimum width is 1.5: the poly outer must grow. *)
  let _ = Prim.inbox e o ~layer:"metal1" () in
  let outer' = Lobj.find_exn o outer.Shape.id in
  check_bool "outer expanded" true (Rect.height outer'.Shape.rect >= um 1.5)

let test_array_expands_for_one_cut () =
  let e = env () in
  let o = Lobj.create "t" in
  let land_ = Prim.inbox e o ~layer:"pdiff" () in  (* 2 x 2 um *)
  let _ = Prim.inbox e o ~layer:"metal1" () in
  let _ = Prim.array e o ~layer:"contact" () in
  (* One contact needs 2.5 um of pdiff: the landing expanded. *)
  let land' = Lobj.find_exn o land_.Shape.id in
  check "expanded landing" (um 2.5) (Rect.height land'.Shape.rect);
  check "one cut" 1 (List.length (Lobj.shapes_on o "contact"))

let test_array_needs_containers () =
  let e = env () in
  let o = Lobj.create "t" in
  check_bool "rejected" true
    (match Prim.array e o ~layer:"contact" () with
    | exception Env.Rejected _ -> true
    | _ -> false)

let test_tworects () =
  let e = env () in
  let o = Lobj.create "t" in
  let gate, diff = Prim.tworects e o ~layer_a:"poly" ~layer_b:"pdiff" ~w:(um 10.) ~l:(um 2.) () in
  (* End-cap 1 um, S/D extension 1.5 um from the rules. *)
  check "gate height" (um 12.) (Rect.height gate.Shape.rect);
  check "gate width" (um 2.) (Rect.width gate.Shape.rect);
  check "diff width" (um 5.) (Rect.width diff.Shape.rect);
  check "diff height" (um 10.) (Rect.height diff.Shape.rect);
  (* Horizontal variant swaps the roles. *)
  let o2 = Lobj.create "t2" in
  let gate2, _ = Prim.tworects e o2 ~layer_a:"poly" ~layer_b:"pdiff" ~w:(um 10.) ~l:(um 2.) ~orient:`Horizontal () in
  check "horizontal gate width" (um 12.) (Rect.width gate2.Shape.rect)

let test_around () =
  let e = env () in
  let o = Lobj.create "t" in
  let _ = Prim.inbox e o ~layer:"pdiff" ~w:(um 4.) ~l:(um 4.) () in
  let well = Prim.around e o ~layer:"nwell" () in
  (* Default margin is the nwell-over-pdiff enclosure (2 um). *)
  check "well size" (um 8.) (Rect.width well.Shape.rect);
  check_bool "contains" true
    (Rect.contains_rect well.Shape.rect (Rect.of_size ~x:0 ~y:0 ~w:(um 4.) ~h:(um 4.)))

let test_ring () =
  let e = env () in
  let o = Lobj.create "t" in
  let _ = Prim.inbox e o ~layer:"pdiff" ~w:(um 4.) ~l:(um 4.) () in
  let legs = Prim.ring e o ~layer:"ndiff" ~width:(um 2.) () in
  check "four legs" 4 (List.length legs);
  (* The ring clears the structure by the pdiff/ndiff spacing (3 um). *)
  let inner_edges =
    List.map (fun (s : Shape.t) -> s.Shape.rect) legs |> Rect.hull_list
  in
  (match inner_edges with
  | Some hull ->
      check "hull" (um 14.) (Rect.width hull);
      check_bool "around structure" true
        (Rect.contains_rect hull (Rect.of_size ~x:0 ~y:0 ~w:(um 4.) ~h:(um 4.)))
  | None -> Alcotest.fail "no hull");
  (* Legs form a closed frame: each corner is covered. *)
  let covered x y = List.exists (fun (s : Shape.t) -> Rect.contains_point s.Shape.rect ~x ~y) legs in
  check_bool "corner nw" true (covered (- um 5.) (um 9.));
  check_bool "corner se" true (covered (um 9.) (- um 5.))

let test_angle () =
  let e = env () in
  let o = Lobj.create "t" in
  let a, b =
    Prim.angle e o ~layer:"metal1" ~width:(um 2.) ~corner:(0, 0)
      ~leg1:(Dir.North, um 5.) ~leg2:(Dir.East, um 7.) ()
  in
  check_bool "legs overlap at corner" true (Rect.overlaps a.Shape.rect b.Shape.rect);
  check "leg1 extent" (um 7.) (Rect.height a.Shape.rect);
  check "leg2 extent" (um 9.) (Rect.width b.Shape.rect);
  check_bool "parallel legs rejected" true
    (match
       Prim.angle e o ~layer:"metal1" ~width:(um 2.) ~corner:(0, 0)
         ~leg1:(Dir.North, um 5.) ~leg2:(Dir.South, um 5.) ()
     with
    | exception Env.Rejected _ -> true
    | _ -> false)

(* --- variants --- *)

let test_variants_enumeration () =
  let v = Variants.alt [ Variants.return 1; Variants.return 2; Variants.return 3 ] in
  check_bool "successes" true (Variants.successes v = [ 1; 2; 3 ]);
  check_bool "first" true (Variants.first v = Some 1)

let test_variants_backtracking () =
  let tried = ref [] in
  let attempt name ok =
    Variants.delay (fun () ->
        tried := name :: !tried;
        if ok then name else Env.reject "variant %s impossible" name)
  in
  let v = Variants.alt [ attempt "a" false; attempt "b" true; attempt "c" true ] in
  check_bool "first success" true (Variants.first v = Some "b");
  check_bool "a was tried" true (List.mem "a" !tried);
  check_bool "failures recorded" true
    (Variants.failures v = [ "variant a impossible" ])

let test_variants_bind () =
  let open Variants in
  let v =
    let* x = of_list [ 1; 2 ] in
    let* y = of_list [ 10; 20 ] in
    if x = 2 && y = 10 then fail "skip" else return ((x * 100) + y)
  in
  check_bool "cartesian minus rejected" true
    (successes v = [ 110; 120; 220 ])

let test_variants_best () =
  let v = Variants.of_list [ 5.; 1.; 3. ] in
  (match Variants.best ~rate:(fun x -> x) v with
  | Some (x, r) ->
      check_bool "best value" true (x = 1.);
      check_bool "best rating" true (r = 1.)
  | None -> Alcotest.fail "expected a best");
  check_bool "all rejected" true
    (Variants.best ~rate:(fun _ -> 0.) (Variants.fail "no" : int Variants.t) = None)

(* Branch bodies mutating a shared main under ?rollback: a rejected branch
   must leave the main exactly as it was before the branch ran, while a
   successful branch keeps its mutations. *)
let test_variants_rollback () =
  let fingerprint o = String.concat ";" (List.map Shape.show (Lobj.shapes o)) in
  let main = Lobj.create "m" in
  ignore
    (Lobj.add_shape main ~layer:"metal1"
       ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 4.) ~h:(um 4.)) ());
  let before = fingerprint main in
  let branch ok dx =
    Variants.delay (fun () ->
        ignore
          (Lobj.add_shape main ~layer:"metal1"
             ~rect:(Rect.of_size ~x:dx ~y:(um 10.) ~w:(um 2.) ~h:(um 2.)) ());
        Lobj.translate main ~dx ~dy:0;
        if ok then Lobj.shape_count main else Env.reject "branch rejected")
  in
  (* Every branch rejected: the shared main is untouched. *)
  let v = Variants.alt [ branch false (um 1.); branch false (um 2.) ] in
  check_bool "all rejected" true
    (Variants.successes ~rollback:[ main ] v = []);
  Alcotest.(check string) "main restored after rejections" before
    (fingerprint main);
  (* Without rollback the same branches leave their partial placements. *)
  let s = Lobj.snapshot main in
  ignore (Variants.run (branch false (um 3.)));
  check_bool "no rollback leaves mutations" true (fingerprint main <> before);
  Lobj.restore main s;
  Lobj.release main s;
  Alcotest.(check string) "unwound for the next part" before (fingerprint main);
  (* A mixed tree: the rejected first branch is rolled back, the surviving
     second branch commits. *)
  let v = Variants.alt [ branch false (um 1.); branch true (um 2.) ] in
  (match Variants.first ~rollback:[ main ] v with
  | Some n -> check "survivor sees only its own mutation" 2 n
  | None -> Alcotest.fail "expected a survivor");
  check "committed branch kept" 2 (Lobj.shape_count main)

(* --- rating and optimization --- *)

let test_rating () =
  let e = env () in
  let small = Lobj.create "small" in
  let _ = Lobj.add_shape small ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.)) () in
  let big = Lobj.create "big" in
  let _ = Lobj.add_shape big ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 20.) ~h:(um 20.)) () in
  check_bool "smaller rates better" true
    (Rating.rate e Rating.area_only small < Rating.rate e Rating.area_only big);
  (* Capacitance-aware rating penalises metal on a sensitive net. *)
  let weights = Rating.with_sensitive_nets Rating.area_only [ "in" ] in
  let noisy = Lobj.copy ~name:"noisy" small in
  let _ =
    Lobj.add_shape noisy ~layer:"metal1"
      ~rect:(Rect.of_size ~x:(um 4.) ~y:0 ~w:(um 2.) ~h:(um 2.))
      ~net:"in" ()
  in
  check_bool "cap cost counts" true
    (Rating.rate e weights noisy > Rating.rate e weights small)

let test_optimize_orders () =
  let e = env () in
  (* Three bars of decreasing width: packing order changes the bbox. *)
  let mk name w h net =
    let o = Lobj.create name in
    let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w ~h) ~net () in
    o
  in
  let steps =
    [
      Optimize.step (mk "wide" (um 10.) (um 2.) "a") Dir.South;
      Optimize.step (mk "tall" (um 2.) (um 6.) "b") Dir.West;
      Optimize.step (mk "small" (um 4.) (um 2.) "c") Dir.South;
    ]
  in
  let results = Optimize.evaluate_orders e ~name:"opt" steps in
  check "3! orders" 6 (List.length results);
  let ratings = List.map (fun (_, r, _) -> r) results in
  let best = List.fold_left min infinity ratings in
  let worst = List.fold_left max 0. ratings in
  check_bool "order matters" true (worst > best);
  let _, r, _ = Optimize.optimize e ~name:"opt" steps in
  check_bool "optimize returns best" true (r = best)

let test_optimize_bb_matches_exhaustive () =
  let e = env () in
  let mk name w h net =
    let o = Lobj.create name in
    let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w ~h) ~net () in
    o
  in
  let steps =
    [
      Optimize.step (mk "a" (um 10.) (um 2.) "a") Dir.South;
      Optimize.step (mk "b" (um 2.) (um 6.) "b") Dir.West;
      Optimize.step (mk "c" (um 4.) (um 2.) "c") Dir.South;
      Optimize.step (mk "d" (um 2.) (um 2.) "d") Dir.West;
      Optimize.step (mk "e" (um 6.) (um 2.) "e") Dir.South;
    ]
  in
  let _, exhaustive_best, _ = Optimize.optimize e ~name:"x" steps in
  let _, bb_best, order, nodes = Optimize.optimize_bb e ~name:"x" steps in
  Alcotest.(check (float 1e-6)) "same optimum" exhaustive_best bb_best;
  check "full order returned" 5 (List.length order);
  (* The full tree has sum_{k=1..5} 5!/k! = 206 internal+leaf nodes plus the
     root; pruning must beat it. *)
  check_bool "pruned" true (nodes < 326)

let test_permutations () =
  check "3!" 6 (List.length (List.of_seq (Optimize.permutations [ 1; 2; 3 ])));
  check "0!" 1 (List.length (List.of_seq (Optimize.permutations ([] : int list))))


let test_optimize_local () =
  let e = env () in
  let mk name w h net =
    let o = Lobj.create name in
    let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w ~h) ~net () in
    o
  in
  let steps =
    [
      Optimize.step (mk "a" (um 10.) (um 2.) "a") Dir.South;
      Optimize.step (mk "b" (um 2.) (um 6.) "b") Dir.West;
      Optimize.step (mk "c" (um 4.) (um 2.) "c") Dir.South;
      Optimize.step (mk "d" (um 2.) (um 2.) "d") Dir.West;
      Optimize.step (mk "e" (um 6.) (um 2.) "e") Dir.South;
    ]
  in
  let _, exhaustive_best, _ = Optimize.optimize e ~name:"x" steps in
  let _, local_best, order, evals = Optimize.optimize_local e ~name:"x" steps in
  (* Never better than the true optimum, never worse than the start. *)
  check_bool "sound" true (local_best >= exhaustive_best -. 1e-9);
  let start = Optimize.apply e ~name:"x" steps in
  let start_rating = Amg_core.Rating.rate e Amg_core.Rating.default start in
  check_bool "no worse than given order" true (local_best <= start_rating +. 1e-9);
  check "full order returned" 5 (List.length order);
  check_bool "fewer evals than 5!" true (evals < 120);
  (* Deterministic under a fixed seed. *)
  let _, again, _, _ = Optimize.optimize_local e ~name:"x" ~seed:1 steps in
  Alcotest.(check (float 1e-9)) "reproducible" local_best again;
  (* On this small instance the swap neighbourhood reaches the optimum. *)
  Alcotest.(check (float 1e-6)) "finds optimum here" exhaustive_best local_best


(* --- slicing floorplanner --- *)

module F = Amg_core.Floorplan

let test_floorplan_basics () =
  let r =
    F.optimize
      [ F.block ~name:"a" ~w:(um 2.) ~h:(um 1.);
        F.block ~name:"b" ~w:(um 2.) ~h:(um 1.) ]
  in
  check "two blocks area" (um 2. * um 2.) r.F.area;
  (* Four blocks that tile perfectly: the DP finds the zero-waste packing. *)
  let blocks =
    [ F.block ~name:"big" ~w:(um 10.) ~h:(um 10.);
      F.block ~name:"wide" ~w:(um 10.) ~h:(um 5.);
      F.block ~name:"s1" ~w:(um 5.) ~h:(um 5.);
      F.block ~name:"s2" ~w:(um 5.) ~h:(um 5.) ]
  in
  let r = F.optimize blocks in
  let sum =
    List.fold_left (fun a b -> a + (b.F.fp_w * b.F.fp_h)) 0 blocks
  in
  check "zero waste" sum r.F.area;
  (* Placements: every block present, pairwise disjoint, inside the box. *)
  check "all placed" 4 (List.length r.F.positions);
  let rects = List.map snd r.F.positions in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then check_bool "disjoint" false (Rect.overlaps a b))
        rects)
    rects;
  let bbox = Rect.make ~x0:0 ~y0:0 ~x1:r.F.width ~y1:r.F.height in
  List.iter (fun rc -> check_bool "inside" true (Rect.contains_rect bbox rc)) rects;
  (* The aspect target steers the choice between transposed optima. *)
  let flat = F.optimize ~aspect:3.0 blocks in
  check_bool "flat wider than tall" true (flat.F.width > flat.F.height);
  (* Spacing at cuts. *)
  let sp =
    F.optimize ~spacing:(um 1.)
      [ F.block ~name:"a" ~w:(um 2.) ~h:(um 2.);
        F.block ~name:"b" ~w:(um 2.) ~h:(um 2.) ]
  in
  check "spacing added" (um 2. * um 5.) sp.F.area;
  Alcotest.check_raises "empty" (Amg_core.Env.Rejected "Floorplan: no blocks")
    (fun () -> ignore (F.optimize []))

(* Optimal slicing never loses to the row-stack baseline, placements are
   always disjoint, and the area is at least the blocks' total. *)
let prop_floorplan_optimal =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 6) (tup2 (int_range 1 12) (int_range 1 12)))
  in
  QCheck2.Test.make ~name:"floorplan beats row baseline" ~count:200 gen
    (fun dims ->
      let blocks =
        List.mapi
          (fun i (w, h) ->
            F.block ~name:(string_of_int i) ~w:(um (float_of_int w))
              ~h:(um (float_of_int h)))
          dims
      in
      let r = F.optimize blocks in
      let sum = List.fold_left (fun a b -> a + (b.F.fp_w * b.F.fp_h)) 0 blocks in
      let rows = F.rows_area [ blocks ] in
      let rects = List.map snd r.F.positions in
      let disjoint =
        List.for_all
          (fun a ->
            List.for_all (fun b -> a == b || not (Rect.overlaps a b)) rects)
          rects
      in
      r.F.area >= sum && r.F.area <= rows && disjoint
      && List.length r.F.positions = List.length blocks)

let suite =
  [
    Alcotest.test_case "automatic margins" `Quick test_margins;
    Alcotest.test_case "inbox first defaults" `Quick test_inbox_first_defaults;
    Alcotest.test_case "inbox rejects sub-minimum" `Quick test_inbox_rejects_small;
    Alcotest.test_case "inbox expands outers" `Quick test_inbox_expands;
    Alcotest.test_case "array expands for one cut" `Quick test_array_expands_for_one_cut;
    Alcotest.test_case "array needs containers" `Quick test_array_needs_containers;
    Alcotest.test_case "tworects transistor" `Quick test_tworects;
    Alcotest.test_case "around" `Quick test_around;
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "angle adaptor" `Quick test_angle;
    Alcotest.test_case "variants enumeration" `Quick test_variants_enumeration;
    Alcotest.test_case "variants backtracking" `Quick test_variants_backtracking;
    Alcotest.test_case "variants bind" `Quick test_variants_bind;
    Alcotest.test_case "variants best" `Quick test_variants_best;
    Alcotest.test_case "variants rollback" `Quick test_variants_rollback;
    Alcotest.test_case "rating" `Quick test_rating;
    Alcotest.test_case "optimize orders" `Quick test_optimize_orders;
    Alcotest.test_case "branch and bound matches exhaustive" `Quick test_optimize_bb_matches_exhaustive;
    Alcotest.test_case "permutations" `Quick test_permutations;
    Alcotest.test_case "local search optimizer" `Quick test_optimize_local;
    Alcotest.test_case "slicing floorplanner" `Quick test_floorplan_basics;
    QCheck_alcotest.to_alcotest prop_floorplan_optimal;
  ]
