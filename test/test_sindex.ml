(* The spatial index and its consumers: qcheck equivalence of the indexed
   candidate queries against naive all-pairs scans, and a regression pin on
   the diff-pair optimization example. *)

module Rect = Amg_geometry.Rect
module Interval = Amg_geometry.Interval
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Sindex = Amg_geometry.Sindex
module Shape = Amg_layout.Shape
module Lobj = Amg_layout.Lobj
module Constraints = Amg_compact.Constraints
module Successive = Amg_compact.Successive
module Technology = Amg_tech.Technology
module Rules = Amg_tech.Rules
module Env = Amg_core.Env
module Optimize = Amg_core.Optimize
module M = Amg_modules

let um = Units.of_um
let rules () = Technology.rules (Amg_tech.Bicmos1u.get ())

(* --- Sindex.query vs. filtering the model --- *)

let gen_rect =
  QCheck2.Gen.(
    let* x = int_range (-50_000) 50_000 in
    let* y = int_range (-50_000) 50_000 in
    let* w = int_range 100 180_000 in
    (* up to 180 um wide: wider than max_bins * cell, hits the overflow path *)
    let* h = int_range 100 12_000 in
    return (Rect.make ~x0:x ~y0:y ~x1:(x + w) ~y1:(y + h)))

let prop_query_matches_model =
  let gen =
    QCheck2.Gen.(
      tup4
        (list_size (int_range 0 40) gen_rect) (* inserts, keyed by position *)
        (list_size (int_range 0 10) (int_range 0 39)) (* keys to remove *)
        (tup2 (int_range (-30_000) 30_000) (int_range (-30_000) 30_000))
        (tup2 gen_rect (int_range 0 3_000)) (* window, margin *))
  in
  QCheck2.Test.make ~name:"Sindex.query = naive filter" ~count:500 gen
    (fun (inserts, removals, (dx, dy), (window, margin)) ->
      let ix = Sindex.create () in
      List.iteri (fun key r -> Sindex.insert ix key r) inserts;
      List.iter (fun key -> Sindex.remove ix key) removals;
      Sindex.translate_all ix ~dx ~dy;
      let model =
        List.mapi (fun key r -> (key, Rect.translate r ~dx ~dy)) inserts
        |> List.filter (fun (key, _) -> not (List.mem key removals))
      in
      let inflated = Rect.inflate window margin in
      let expected =
        List.filter_map
          (fun (key, r) ->
            if
              r.Rect.x0 <= inflated.Rect.x1
              && inflated.Rect.x0 <= r.Rect.x1
              && r.Rect.y0 <= inflated.Rect.y1
              && inflated.Rect.y0 <= r.Rect.y1
            then Some key
            else None)
          model
        |> List.sort_uniq Int.compare
      in
      Sindex.query ix window ~margin = expected)

(* --- random layouts shared by the consumer equivalence properties --- *)

let layers = [ "metal1"; "poly"; "pdiff"; "contact" ]

let gen_shape_spec =
  QCheck2.Gen.(
    tup4 (oneofl layers)
      (oneofl [ Some "a"; Some "b"; Some "c"; None ])
      (tup2 (int_range 0 80) (int_range 0 80)) (* position, 0.5 um steps *)
      (tup2 (int_range 1 16) (int_range 1 16)) (* size, 0.5 um steps *))

let build_lobj name specs =
  let o = Lobj.create name in
  List.iter
    (fun (layer, net, (x, y), (w, h)) ->
      ignore
        (Lobj.add_shape o ~layer
           ~rect:
             (Rect.of_size ~x:(x * 500) ~y:(y * 500) ~w:(w * 500) ~h:(h * 500))
           ?net ()))
    specs;
  o

(* --- Lobj.near vs. filtering Lobj.shapes --- *)

let prop_near_matches_shapes =
  let gen =
    QCheck2.Gen.(
      tup4
        (list_size (int_range 0 30) gen_shape_spec)
        (oneofl layers)
        (tup2 (int_range (-40) 120) (int_range (-40) 120))
        (tup2 (tup2 (int_range 1 40) (int_range 1 40)) (int_range 0 6)))
  in
  QCheck2.Test.make ~name:"Lobj.near = naive shape filter" ~count:500 gen
    (fun (specs, layer, (x, y), ((w, h), margin)) ->
      let o = build_lobj "near" specs in
      let window = Rect.of_size ~x:(x * 500) ~y:(y * 500) ~w:(w * 500) ~h:(h * 500) in
      let margin = margin * 500 in
      let inflated = Rect.inflate window margin in
      let expected =
        List.filter
          (fun (s : Shape.t) ->
            Shape.on_layer s layer
            && s.rect.Rect.x0 <= inflated.Rect.x1
            && inflated.Rect.x0 <= s.rect.Rect.x1
            && s.rect.Rect.y0 <= inflated.Rect.y1
            && inflated.Rect.y0 <= s.rect.Rect.y1)
          (Lobj.shapes o)
      in
      Lobj.near o ~layer window ~margin = expected)

(* --- collect_limits vs. the all-pairs scan it replaced --- *)

let naive_limits rules ?ignore_layers d ~main obj =
  List.concat_map
    (fun (a : Shape.t) ->
      List.filter_map
        (fun (b : Shape.t) ->
          match Constraints.pair_limit_rel rules ?ignore_layers d a b with
          | Some (bound, rel) -> Some (bound, a.Shape.id, b.Shape.id, rel)
          | None -> None)
        (Lobj.shapes main))
    (Lobj.shapes obj)

let prop_collect_limits_equiv =
  let gen =
    QCheck2.Gen.(
      tup4
        (list_size (int_range 1 25) gen_shape_spec)
        (list_size (int_range 1 5) gen_shape_spec)
        (oneofl Dir.all)
        (oneofl [ []; [ "metal1" ]; [ "poly" ] ]))
  in
  QCheck2.Test.make ~name:"collect_limits = all-pairs scan" ~count:500 gen
    (fun (main_specs, obj_specs, d, ignore_layers) ->
      let rules = rules () in
      let main = build_lobj "main" main_specs in
      let obj = build_lobj "obj" obj_specs in
      let indexed =
        List.map
          (fun l ->
            ( l.Successive.bound,
              l.Successive.mover.Shape.id,
              l.Successive.target.Shape.id,
              l.Successive.rel ))
          (Successive.collect_limits rules ~ignore_layers d ~main obj)
      in
      indexed = naive_limits rules ~ignore_layers d ~main obj)

(* --- auto_connect vs. a straight reimplementation of the full scan --- *)

let naive_auto_connect rules d ~main obj =
  let axis = Dir.axis d in
  let cross = Dir.cross_axis d in
  let stretchable (s : Shape.t) = Rules.cut_size_opt rules s.Shape.layer = None in
  let extension_safe (s : Shape.t) r' =
    let ok (other : Shape.t) =
      other == s
      ||
      match Constraints.relation rules s other with
      | Constraints.Unconstrained | Constraints.Mergeable -> true
      | Constraints.Separation sep ->
          let dx = Rect.gap Dir.Horizontal r' other.Shape.rect in
          let dy = Rect.gap Dir.Vertical r' other.Shape.rect in
          max dx dy >= sep
    in
    List.for_all ok (Lobj.shapes main) && List.for_all ok (Lobj.shapes obj)
  in
  List.iter
    (fun (a : Shape.t) ->
      List.iter
        (fun (b : Shape.t) ->
          if
            String.equal a.Shape.layer b.Shape.layer
            && Shape.same_net a b && stretchable b
          then begin
            let ia = Rect.span cross a.rect and ib = Rect.span cross b.rect in
            if Interval.overlaps ia ib then begin
              let sa = Rect.span axis a.rect and sb = Rect.span axis b.rect in
              let gap =
                max (sa.Interval.lo - sb.Interval.hi) (sb.Interval.lo - sa.Interval.hi)
              in
              if gap > 0 then begin
                let facing =
                  if sb.Interval.hi <= sa.Interval.lo then
                    match axis with
                    | Dir.Horizontal -> Dir.East
                    | Dir.Vertical -> Dir.North
                  else
                    match axis with
                    | Dir.Horizontal -> Dir.West
                    | Dir.Vertical -> Dir.South
                in
                match Lobj.find main b.Shape.id with
                | Some cur ->
                    let r' = Rect.grow_side cur.Shape.rect facing gap in
                    if extension_safe cur r' then
                      Lobj.replace main (Shape.with_rect cur r')
                | None -> ()
              end
            end
          end)
        (Lobj.shapes main))
    (Lobj.shapes obj)

let shape_fingerprint (s : Shape.t) = (s.Shape.id, s.layer, s.rect, s.net)

let prop_auto_connect_equiv =
  let gen =
    QCheck2.Gen.(
      tup3
        (list_size (int_range 1 20) gen_shape_spec)
        (list_size (int_range 1 4) gen_shape_spec)
        (oneofl Dir.all))
  in
  QCheck2.Test.make ~name:"auto_connect = all-pairs reference" ~count:500 gen
    (fun (main_specs, obj_specs, d) ->
      let rules = rules () in
      let main_a = build_lobj "main" main_specs in
      let main_b = Lobj.copy main_a in
      let obj = build_lobj "obj" obj_specs in
      Successive.auto_connect rules d ~main:main_a obj;
      naive_auto_connect rules d ~main:main_b obj;
      List.map shape_fingerprint (Lobj.shapes main_a)
      = List.map shape_fingerprint (Lobj.shapes main_b))

(* --- regression: the diff-pair branch-and-bound optimum is unchanged --- *)

let test_diffpair_bb_regression () =
  let env = Env.bicmos () in
  let trans =
    M.Mosfet.make env ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 5.)
      ~sd_contacts:`None ~well:false ()
  in
  Lobj.set_name trans "trans";
  let polycon = M.Contact_row.make env ~layer:"poly" ~l:(um 5.) ~net:"g" () in
  Lobj.set_name polycon "polycon";
  let diffcon = M.Contact_row.make env ~layer:"pdiff" ~w:(um 10.) ~net:"sd" () in
  Lobj.set_name diffcon "diffcon";
  let steps =
    [
      Optimize.step trans Dir.South;
      Optimize.step polycon ~ignore_layers:[ "poly" ] Dir.South;
      Optimize.step diffcon ~ignore_layers:[ "pdiff" ] Dir.South;
    ]
  in
  let main, r, order, nodes = Optimize.optimize_bb env ~name:"dp" steps in
  Alcotest.(check (float 0.0001)) "rating" 196.0 r;
  Alcotest.(check (list string)) "order"
    [ "diffcon"; "trans"; "polycon" ]
    (List.map (fun s -> Lobj.name s.Optimize.obj) order);
  Alcotest.(check int) "bbox area" 196_000_000 (Lobj.bbox_area main);
  (* Root + 3 sub-searches seeded with the canonical order's rating; the
     count is deterministic and domain-count-independent. *)
  Alcotest.(check int) "nodes" 13 nodes

let suite =
  [
    QCheck_alcotest.to_alcotest prop_query_matches_model;
    QCheck_alcotest.to_alcotest prop_near_matches_shapes;
    QCheck_alcotest.to_alcotest prop_collect_limits_equiv;
    QCheck_alcotest.to_alcotest prop_auto_connect_equiv;
    Alcotest.test_case "diff-pair bb optimum unchanged" `Quick
      test_diffpair_bb_regression;
  ]
