(* The latch-up cover algorithm (paper Fig. 1): successive subtraction of
   temporary rectangles until no part of any active-area rectangle
   remains.  The paper enumerates 16 overlap cases of a cover against a
   solid (4 positional classes per axis); here every case — plus
   adversarial sets the 16-case figure does not show — is checked against
   an independent slab-grid oracle. *)

module Rect = Amg_geometry.Rect
module Region = Amg_geometry.Region
module Units = Amg_geometry.Units
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module Latchup = Amg_drc.Latchup

let um = Units.of_um
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- oracle ---------------------------------------------------------- *)

(* Slab-grid oracle: cut the plane at every rectangle edge; a grid cell is
   uncovered-solid iff its centre lies in some solid and in no cover.  The
   residue of the subtraction algorithm must have exactly the oracle's
   area, and must contain exactly the uncovered cell centres.  (This is a
   genuinely different computation from [Region.residue]'s successive
   subtraction, so agreement is meaningful.) *)
let oracle_area ~solids ~covers =
  let xs =
    List.concat_map (fun (r : Rect.t) -> [ r.Rect.x0; r.Rect.x1 ]) (solids @ covers)
    |> List.sort_uniq compare
  and ys =
    List.concat_map (fun (r : Rect.t) -> [ r.Rect.y0; r.Rect.y1 ]) (solids @ covers)
    |> List.sort_uniq compare
  in
  let inside (r : Rect.t) x y =
    x > r.Rect.x0 && x < r.Rect.x1 && y > r.Rect.y0 && y < r.Rect.y1
  in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  let area = ref 0 in
  List.iter
    (fun (x0, x1) ->
      List.iter
        (fun (y0, y1) ->
          let cx = x0 + x1 and cy = y0 + y1 in
          (* centre in doubled coordinates to stay integral *)
          let hit l = List.exists (fun r -> inside (Rect.make
            ~x0:(2 * r.Rect.x0) ~y0:(2 * r.Rect.y0)
            ~x1:(2 * r.Rect.x1) ~y1:(2 * r.Rect.y1)) cx cy) l
          in
          if hit solids && not (hit covers) then
            area := !area + ((x1 - x0) * (y1 - y0)))
        (pairs ys))
    (pairs xs);
  !area

let check_against_oracle what ~solids ~covers =
  let residue = Region.residue ~solids ~covers in
  let expected = oracle_area ~solids ~covers in
  check (what ^ ": residue area matches oracle") expected (Region.area residue);
  check_bool
    (what ^ ": covered agrees with oracle")
    (expected = 0)
    (Region.covered ~solids ~covers);
  (* The residue rectangles must stay inside the solids and outside the
     covers — successive subtraction can never spill. *)
  List.iter
    (fun (r : Rect.t) ->
      check_bool (what ^ ": residue inside some solid") true
        (List.exists
           (fun s -> match Rect.inter s r with
             | Some i -> Rect.area i = Rect.area r
             | None -> false)
           solids);
      check_bool (what ^ ": residue misses every cover") true
        (not (List.exists (fun c -> Rect.overlaps c r) covers)))
    residue

(* --- the 16 overlap cases -------------------------------------------- *)

(* One solid; covers from 4 span classes per axis: past-both-edges,
   past-low-edge, past-high-edge, strictly-inside — 16 combinations, the
   paper's Fig. 1 case table. *)
let test_sixteen_cases () =
  let solid = Rect.of_size ~x:0 ~y:0 ~w:(um 100.) ~h:(um 100.) in
  let spans = [ (-20., 120.); (-20., 60.); (40., 120.); (30., 70.) ] in
  let cases = ref 0 in
  List.iter
    (fun (x0, x1) ->
      List.iter
        (fun (y0, y1) ->
          incr cases;
          let cover =
            Rect.make ~x0:(um x0) ~y0:(um y0) ~x1:(um x1) ~y1:(um y1)
          in
          check_against_oracle
            (Printf.sprintf "case %d" !cases)
            ~solids:[ solid ] ~covers:[ cover ])
        spans)
    spans;
  check "16 cases exercised" 16 !cases

(* --- adversarial sets ------------------------------------------------- *)

let test_corner_only_overlap () =
  let solid = Rect.of_size ~x:0 ~y:0 ~w:(um 10.) ~h:(um 10.) in
  (* Each cover clips one corner only. *)
  let corners =
    [
      Rect.make ~x0:(- um 5.) ~y0:(- um 5.) ~x1:(um 2.) ~y1:(um 2.);
      Rect.make ~x0:(um 8.) ~y0:(- um 5.) ~x1:(um 15.) ~y1:(um 2.);
      Rect.make ~x0:(- um 5.) ~y0:(um 8.) ~x1:(um 2.) ~y1:(um 15.);
      Rect.make ~x0:(um 8.) ~y0:(um 8.) ~x1:(um 15.) ~y1:(um 15.);
    ]
  in
  List.iteri
    (fun i c ->
      check_against_oracle
        (Printf.sprintf "corner %d alone" i)
        ~solids:[ solid ] ~covers:[ c ])
    corners;
  check_against_oracle "all four corners" ~solids:[ solid ] ~covers:corners;
  (* Four corner bites leave a cross-shaped residue, never full cover. *)
  check_bool "cross remains" false
    (Region.covered ~solids:[ solid ] ~covers:corners)

let test_exact_abutment () =
  let solid = Rect.of_size ~x:0 ~y:0 ~w:(um 10.) ~h:(um 10.) in
  (* Covers that share an edge or a corner with the solid but overlap
     nothing: the residue must be the untouched solid. *)
  let abutting =
    [
      Rect.make ~x0:(- um 10.) ~y0:0 ~x1:0 ~y1:(um 10.);   (* west edge *)
      Rect.make ~x0:(um 10.) ~y0:0 ~x1:(um 20.) ~y1:(um 10.); (* east edge *)
      Rect.make ~x0:0 ~y0:(um 10.) ~x1:(um 10.) ~y1:(um 20.); (* north *)
      Rect.make ~x0:(- um 4.) ~y0:(- um 4.) ~x1:0 ~y1:0;    (* corner point *)
    ]
  in
  check_against_oracle "abutment" ~solids:[ solid ] ~covers:abutting;
  check "abutment removes nothing" (Rect.area solid)
    (Region.area (Region.residue ~solids:[ solid ] ~covers:abutting));
  (* Exactly coincident cover: removes everything. *)
  check_against_oracle "identical cover" ~solids:[ solid ] ~covers:[ solid ];
  check_bool "identical cover covers" true
    (Region.covered ~solids:[ solid ] ~covers:[ solid ])

let test_two_partial_covers () =
  let solid = Rect.of_size ~x:0 ~y:0 ~w:(um 20.) ~h:(um 4.) in
  (* Each half-cover alone leaves residue; together they cover exactly,
     meeting mid-solid — the union test successive subtraction must get
     right. *)
  let left = Rect.make ~x0:(- um 1.) ~y0:(- um 1.) ~x1:(um 11.) ~y1:(um 5.) in
  let right = Rect.make ~x0:(um 9.) ~y0:(- um 1.) ~x1:(um 21.) ~y1:(um 5.) in
  check_bool "left alone insufficient" false
    (Region.covered ~solids:[ solid ] ~covers:[ left ]);
  check_bool "right alone insufficient" false
    (Region.covered ~solids:[ solid ] ~covers:[ right ]);
  check_against_oracle "two overlapping partials" ~solids:[ solid ]
    ~covers:[ left; right ];
  check_bool "union covers" true
    (Region.covered ~solids:[ solid ] ~covers:[ left; right ]);
  (* Abutting (non-overlapping) halves must also cover. *)
  let lh = Rect.make ~x0:(- um 1.) ~y0:(- um 1.) ~x1:(um 10.) ~y1:(um 5.) in
  let rh = Rect.make ~x0:(um 10.) ~y0:(- um 1.) ~x1:(um 21.) ~y1:(um 5.) in
  check_against_oracle "two abutting partials" ~solids:[ solid ]
    ~covers:[ lh; rh ];
  check_bool "abutting halves cover" true
    (Region.covered ~solids:[ solid ] ~covers:[ lh; rh ])

let test_one_solid_many_slivers () =
  (* A comb of narrow covers over one solid, with and without a gap — the
     deep-recursion shape of the successive subtraction. *)
  let solid = Rect.of_size ~x:0 ~y:0 ~w:(um 64.) ~h:(um 8.) in
  let comb gap =
    List.init 8 (fun i ->
        if gap && i = 5 then
          (* tooth 5 shrunk: leaves a 2 um sliver uncovered *)
          Rect.make ~x0:(um (float_of_int (i * 8))) ~y0:(- um 1.)
            ~x1:(um (float_of_int ((i * 8) + 6))) ~y1:(um 9.)
        else
          Rect.make ~x0:(um (float_of_int (i * 8))) ~y0:(- um 1.)
            ~x1:(um (float_of_int ((i + 1) * 8))) ~y1:(um 9.))
  in
  check_against_oracle "full comb" ~solids:[ solid ] ~covers:(comb false);
  check_bool "full comb covers" true
    (Region.covered ~solids:[ solid ] ~covers:(comb false));
  check_against_oracle "comb with sliver" ~solids:[ solid ] ~covers:(comb true);
  check "sliver area" (um 2. * um 8.)
    (Region.area (Region.residue ~solids:[ solid ] ~covers:(comb true)))

(* --- through the latch-up checker itself ------------------------------ *)

let test_latchup_two_taps () =
  let env = Env.bicmos () in
  let tech = Env.tech env in
  (* A strip that no single tap's inflated cover reaches end to end, but
     two taps together do. *)
  let dist =
    Amg_tech.Rules.latchup_dist (Env.rules env)
  in
  let strip_w = (2 * dist) + um 2. in
  let o = Lobj.create "two_taps" in
  ignore
    (Lobj.add_shape o ~layer:"ndiff"
       ~rect:(Rect.of_size ~x:0 ~y:0 ~w:strip_w ~h:(um 2.)) ());
  let tap x =
    ignore
      (Lobj.add_shape o ~layer:Latchup.tap_layer
         ~rect:(Rect.of_size ~x ~y:(um 4.) ~w:(um 2.) ~h:(um 2.)) ())
  in
  tap 0;
  check_bool "one tap insufficient" false (Latchup.uncovered ~tech o = []);
  tap (strip_w - um 2.);
  check_bool "two taps cover" true (Latchup.uncovered ~tech o = [])

let suite =
  [
    Alcotest.test_case "16 overlap cases vs oracle" `Quick test_sixteen_cases;
    Alcotest.test_case "corner-only overlap" `Quick test_corner_only_overlap;
    Alcotest.test_case "exact abutment" `Quick test_exact_abutment;
    Alcotest.test_case "two partial covers" `Quick test_two_partial_covers;
    Alcotest.test_case "cover comb and sliver" `Quick
      test_one_solid_many_slivers;
    Alcotest.test_case "latch-up: two taps cover a strip" `Quick
      test_latchup_two_taps;
  ]
