(* The observability layer: span nesting, counter accumulation, the
   fork/enter/join merge determinism under domain pools, the Chrome
   trace exporter/validator, and the zero-perturbation guarantee —
   enabling the probes must not change any generated layout or rating. *)

module Obs = Amg_obs.Obs
module Trace = Amg_obs.Trace
module Units = Amg_geometry.Units
module Dir = Amg_geometry.Dir
module Rect = Amg_geometry.Rect
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module Optimize = Amg_core.Optimize
module Rating = Amg_core.Rating
module Pool = Amg_parallel.Pool
module M = Amg_modules

let um = Units.of_um
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str_list = Alcotest.(check (list string))

let domain_counts = Test_util.domain_counts

(* Timestamp-free signature of the event stream: everything the
   determinism contract promises to keep identical across domain counts. *)
let signature () =
  List.map
    (function
      | Obs.Begin { name; tid; _ } -> Printf.sprintf "B %s %d" name tid
      | Obs.End { name; tid; _ } -> Printf.sprintf "E %s %d" name tid
      | Obs.Mark { name; tid; args; _ } ->
          Printf.sprintf "M %s %d %s" name tid
            (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) args)))
    (Obs.events ())

let finally_reset f =
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* --- spans and counters on a single strand --- *)

let test_span_nesting () =
  finally_reset @@ fun () ->
  Obs.enable ();
  Obs.span "outer" (fun () ->
      Obs.count "work" 2;
      Obs.span "inner" (fun () -> Obs.count "work" 3);
      Obs.mark "note" [ ("k", "v") ]);
  check_str_list "nested B/E order"
    [ "B outer 0"; "B inner 0"; "E inner 0"; "M note 0 k=v"; "E outer 0" ]
    (signature ());
  check_int "counter accumulated" 5 (Obs.counter "work");
  check_int "absent counter is 0" 0 (Obs.counter "no-such");
  let sp = Obs.spans () in
  check_int "two span names" 2 (List.length sp);
  List.iter
    (fun (_, { Obs.calls; total_s }) ->
      check_int "calls" 1 calls;
      check_bool "non-negative duration" true (total_s >= 0.))
    sp

let test_span_exception_safe () =
  finally_reset @@ fun () ->
  Obs.enable ();
  (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  check_str_list "End emitted on raise" [ "B boom 0"; "E boom 0" ] (signature ())

let test_samples () =
  finally_reset @@ fun () ->
  Obs.enable ();
  List.iter (Obs.sample "rounds") [ 3.; 1.; 2. ];
  match Obs.samples () with
  | [ (name, st) ] ->
      Alcotest.(check string) "name" "rounds" name;
      check_int "count" 3 st.Obs.s_count;
      check_bool "min" true (st.Obs.s_min = 1.);
      check_bool "max" true (st.Obs.s_max = 3.);
      check_bool "sum" true (st.Obs.s_sum = 6.)
  | other -> Alcotest.failf "expected one sample, got %d" (List.length other)

let test_disabled_probes_are_noops () =
  finally_reset @@ fun () ->
  (* Never enabled: every probe must drop its data and cost nothing. *)
  Obs.count "c" 1;
  Obs.sample "s" 1.;
  Obs.mark "m" [];
  check_int "span still runs f" 7 (Obs.span "sp" (fun () -> 7));
  check_bool "no events" true (Obs.events () = []);
  check_bool "no counters" true (Obs.counters () = []);
  check_int "counter reads 0" 0 (Obs.counter "c")

(* --- fork/enter/join --- *)

let test_fork_join_slot_order () =
  finally_reset @@ fun () ->
  Obs.enable ();
  let strands = Obs.fork 3 in
  (* Enter the slots out of order: the join must still merge them in
     slot order, not completion order. *)
  List.iter
    (fun i ->
      Obs.enter strands i (fun () ->
          Obs.span "task" (fun () -> Obs.count "items" (i + 1))))
    [ 2; 0; 1 ];
  Obs.join strands;
  check_str_list "slots merged in slot order"
    [ "B task 1"; "E task 1"; "B task 2"; "E task 2"; "B task 3"; "E task 3" ]
    (signature ());
  check_int "counters folded" 6 (Obs.counter "items")

(* --- event retention and request windows --- *)

(* A serving process caps per-strand event retention: the event list
   stays bounded, End events whose Begin fell off are dropped so the
   stream still validates, and the aggregate tables stay exact. *)
let test_retention_cap () =
  finally_reset @@ fun () ->
  Obs.set_max_events (Some 8);
  Fun.protect ~finally:(fun () -> Obs.set_max_events None) @@ fun () ->
  Obs.enable ();
  for i = 1 to 100 do
    Obs.span "tick" (fun () -> Obs.count "k" i)
  done;
  let evs = Obs.events () in
  check_bool "retained events bounded near the cap" true
    (List.length evs > 0 && List.length evs <= 16);
  check_bool "truncation was counted" true (Obs.dropped_events () > 0);
  check_int "counters stay exact through truncation" 5050 (Obs.counter "k");
  Obs.disable ();
  match Trace.validate_string (Trace.to_string ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "truncated stream fails validation: %s" e

let window_names w =
  List.map
    (function
      | Obs.Begin { name; _ } -> "B " ^ name
      | Obs.End { name; _ } -> "E " ^ name
      | Obs.Mark { name; _ } -> "M " ^ name)
    (Obs.window_events w)

let test_window_slices () =
  finally_reset @@ fun () ->
  (* capture while disabled: the window stays empty even after enabling *)
  let off = Obs.window () in
  Obs.enable ();
  Obs.span "before" (fun () -> ());
  let w = Obs.window () in
  Obs.span "during" (fun () -> Obs.mark "m" []);
  check_str_list "window sees only events after capture"
    [ "B during"; "M m"; "E during" ]
    (window_names w);
  check_bool "disabled-capture window is empty" true (window_names off = []);
  check_int "the full stream keeps everything" 5
    (List.length (Obs.events ()))

(* --- determinism across domain counts --- *)

let pool_run d =
  finally_reset @@ fun () ->
  Obs.enable ();
  Pool.with_pool ~domains:d (fun p ->
      ignore
        (Pool.map_array p
           (fun i ->
             Obs.span "work" (fun () ->
                 Obs.count "items" 1;
                 Obs.mark "done" [ ("i", string_of_int i) ];
                 i * i))
           (Array.init 16 Fun.id)));
  (signature (), Obs.counters ())

let test_pool_determinism () =
  let ref_sig, ref_counters = pool_run 1 in
  check_bool "16 tasks recorded" true
    (List.length ref_sig > 0 && List.assoc "pool.tasks" ref_counters = 16);
  List.iter
    (fun d ->
      let s, c = pool_run d in
      check_str_list (Printf.sprintf "events identical, %d domains" d) ref_sig s;
      check_bool
        (Printf.sprintf "counters identical, %d domains" d)
        true (c = ref_counters))
    domain_counts

(* The real pipeline: an order search records identical counters (work
   done, not time spent) for every domain count.  The prefix cache is
   disabled here: search *results* are cache-independent, but the work
   counters (placements, sindex traffic, cache hits) depend on what is
   cached and on which participant warmed its shard, so the counter
   identity only holds in pure-work mode. *)
let search_counters env d =
  finally_reset @@ fun () ->
  Obs.enable ();
  let mk name w h net =
    let o = Lobj.create name in
    ignore
      (Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w ~h)
         ~net ());
    o
  in
  let steps =
    [
      Optimize.step (mk "a" (um 8.) (um 2.) "a") Dir.South;
      Optimize.step (mk "b" (um 2.) (um 6.) "b") Dir.West;
      Optimize.step (mk "c" (um 4.) (um 2.) "c") Dir.South;
      Optimize.step (mk "d" (um 2.) (um 2.) "d") Dir.West;
    ]
  in
  let _, _, _, nodes =
    Optimize.optimize_bb env ~name:"p" ~domains:d
      ~cache:Amg_core.Prefix_cache.disabled steps
  in
  ignore nodes;
  Obs.counters ()

let test_search_counters_deterministic () =
  let env = Env.bicmos () in
  let reference = search_counters env 1 in
  check_bool "bb nodes counted" true
    (List.mem_assoc "optimize.bb_nodes" reference);
  check_bool "placements counted" true
    (List.assoc "compact.placements" reference > 0);
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "identical counters, %d domains" d)
        true
        (search_counters env d = reference))
    domain_counts

(* --- the zero-perturbation property --- *)

(* Build the same module with probes off and on: the layout bytes (CIF)
   and the rating must be bit-identical.  The instrumentation may only
   observe, never steer. *)
let prop_enabled_build_identical =
  let gen = QCheck2.Gen.(tup2 (int_range 4 16) (int_range 2 6)) in
  QCheck2.Test.make ~name:"enabled probes never perturb layout or rating"
    ~count:20 gen (fun (w_um, l_um) ->
      let env = Env.bicmos () in
      let build () =
        M.Diff_pair.make env ~polarity:M.Mosfet.Pmos
          ~w:(um (float_of_int w_um))
          ~l:(um (float_of_int l_um))
          ~well:false ()
      in
      let fingerprint obj =
        ( Amg_layout.Cif.of_lobj ~tech:(Env.tech env) obj,
          Rating.rate env Rating.default obj )
      in
      Obs.disable ();
      Obs.reset ();
      let off = fingerprint (build ()) in
      Obs.enable ();
      let on = fingerprint (build ()) in
      Obs.disable ();
      Obs.reset ();
      off = on)

(* --- trace export and validation --- *)

let test_trace_roundtrip () =
  finally_reset @@ fun () ->
  Obs.enable ();
  Obs.span "top" (fun () ->
      Obs.count "k" 2;
      Obs.mark "note" [ ("a", "1"); ("quote", "say \"hi\"\n") ];
      Obs.span "sub" (fun () -> ()));
  Obs.disable ();
  match Trace.validate_string (Trace.to_string ()) with
  | Ok s ->
      check_int "spans" 2 s.Trace.v_spans;
      check_int "marks" 1 s.Trace.v_marks;
      check_int "threads" 1 s.Trace.v_threads;
      (* 2 B + 2 E + 1 mark + 1 counter sample *)
      check_int "events" 6 s.Trace.v_events
  | Error e -> Alcotest.failf "valid trace rejected: %s" e

let test_trace_validator_rejects () =
  let bad =
    [
      ("not json", "{");
      ("no traceEvents", "{\"foo\":1}");
      ( "missing key",
        "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"ts\":1,\"pid\":0}]}"
      );
      ( "unmatched B",
        "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"ts\":1,\"pid\":0,\"tid\":0}]}"
      );
      ( "mismatched E name",
        "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"ts\":1,\"pid\":0,\"tid\":0},{\"name\":\"y\",\"ph\":\"E\",\"ts\":2,\"pid\":0,\"tid\":0}]}"
      );
      ( "ts goes backwards",
        "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"ts\":5,\"pid\":0,\"tid\":0},{\"name\":\"x\",\"ph\":\"E\",\"ts\":1,\"pid\":0,\"tid\":0}]}"
      );
    ]
  in
  List.iter
    (fun (label, s) ->
      match Trace.validate_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "validator accepted %s" label)
    bad;
  (* The spec's bare-array form is accepted. *)
  match
    Trace.validate_string
      "[{\"name\":\"x\",\"ph\":\"B\",\"ts\":1,\"pid\":0,\"tid\":0},{\"name\":\"x\",\"ph\":\"E\",\"ts\":2,\"pid\":0,\"tid\":0}]"
  with
  | Ok s -> check_int "bare array spans" 1 s.Trace.v_spans
  | Error e -> Alcotest.failf "bare array rejected: %s" e

(* Per-request exports: a window slice serialised with request-id
   metadata must satisfy the validator, and the metadata discipline is
   enforced — a metadata object without a usable request_id, or spans
   that overlap, are rejected even when everything else is well formed. *)
let test_trace_metadata () =
  finally_reset @@ fun () ->
  Obs.enable ();
  let w = Obs.window () in
  Obs.span "req" (fun () -> Obs.mark "step" []);
  let evs = Obs.window_events w in
  Obs.disable ();
  let good =
    Trace.events_to_string
      ~metadata:[ ("request_id", "r000042"); ("op", "build") ]
      ~counters:[ ("k", 3) ]
      evs
  in
  (match Trace.validate_string good with
  | Ok s ->
      Alcotest.(check (option string))
        "request id surfaced by the validator" (Some "r000042")
        s.Trace.v_request_id;
      check_int "one span" 1 s.Trace.v_spans
  | Error e -> Alcotest.failf "per-request trace rejected: %s" e);
  let bad =
    [
      ( "metadata without request_id",
        Trace.events_to_string ~metadata:[ ("op", "build") ] evs );
      ( "empty request_id",
        Trace.events_to_string ~metadata:[ ("request_id", "") ] evs );
      ( "non-string request_id",
        "{\"traceEvents\":[],\"metadata\":{\"request_id\":7}}" );
      ( "overlapping spans",
        "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":1,\"pid\":0,\"tid\":0},{\"name\":\"b\",\"ph\":\"B\",\"ts\":2,\"pid\":0,\"tid\":0},{\"name\":\"a\",\"ph\":\"E\",\"ts\":3,\"pid\":0,\"tid\":0},{\"name\":\"b\",\"ph\":\"E\",\"ts\":4,\"pid\":0,\"tid\":0}],\"metadata\":{\"request_id\":\"r1\"}}"
      );
    ]
  in
  List.iter
    (fun (label, s) ->
      match Trace.validate_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "validator accepted %s" label)
    bad

let suite =
  [
    Alcotest.test_case "span nesting and counters" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "sample statistics" `Quick test_samples;
    Alcotest.test_case "disabled probes are no-ops" `Quick
      test_disabled_probes_are_noops;
    Alcotest.test_case "fork/join merges in slot order" `Quick
      test_fork_join_slot_order;
    Alcotest.test_case "pool events identical for 1/2/4 domains" `Quick
      test_pool_determinism;
    Alcotest.test_case "search counters identical for 1/2/4 domains" `Quick
      test_search_counters_deterministic;
    QCheck_alcotest.to_alcotest prop_enabled_build_identical;
    Alcotest.test_case "trace export validates" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace validator rejects malformed input" `Quick
      test_trace_validator_rejects;
    Alcotest.test_case "event retention stays bounded and exact" `Quick
      test_retention_cap;
    Alcotest.test_case "windows slice the stream per request" `Quick
      test_window_slices;
    Alcotest.test_case "per-request trace metadata validates" `Quick
      test_trace_metadata;
  ]
