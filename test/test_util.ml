(* Shared knobs for the determinism suites.

   AMG_TEST_DOMAINS overrides the pool sizes the suites sweep, e.g.
   AMG_TEST_DOMAINS=2 forces every determinism test onto 2-domain pools
   (the CI 2-domain job uses it).  A comma-separated list is accepted;
   unparsable values fall back to the default sweep. *)
let domain_counts =
  match Sys.getenv_opt "AMG_TEST_DOMAINS" with
  | None | Some "" -> [ 1; 2; 4 ]
  | Some s -> (
      let parsed =
        String.split_on_char ',' s
        |> List.filter_map int_of_string_opt
        |> List.filter (fun d -> d >= 1)
      in
      match parsed with [] -> [ 1; 2; 4 ] | l -> l)
