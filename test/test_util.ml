(* Shared knobs for the determinism suites.

   AMG_TEST_DOMAINS overrides the pool sizes the suites sweep, e.g.
   AMG_TEST_DOMAINS=2 forces every determinism test onto 2-domain pools
   (the CI 2-domain job uses it).  A comma-separated list is accepted;
   unparsable values fall back to the default sweep. *)
let domain_counts =
  match Sys.getenv_opt "AMG_TEST_DOMAINS" with
  | None | Some "" -> [ 1; 2; 4 ]
  | Some s -> (
      let parsed =
        String.split_on_char ',' s
        |> List.filter_map int_of_string_opt
        |> List.filter (fun d -> d >= 1)
      in
      match parsed with [] -> [ 1; 2; 4 ] | l -> l)

(* --- temp paths -------------------------------------------------------

   Every test that writes files goes through [with_tmp_dir]: a fresh
   directory under the system temp dir, removed (recursively) on the way
   out, so `dune runtest` never litters the build or source tree.  The
   names stay short on purpose — Unix-domain socket paths have a ~100
   byte limit. *)

let tmp_counter = ref 0

let fresh_dir prefix =
  let base = Filename.get_temp_dir_name () in
  let rec attempt n =
    incr tmp_counter;
    let path =
      Filename.concat base
        (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
    in
    match Unix.mkdir path 0o700 with
    | () -> path
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when n < 100 ->
        attempt (n + 1)
  in
  attempt 0

let rec remove_tree path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> remove_tree (Filename.concat path name))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let with_tmp_dir prefix f =
  let dir = fresh_dir prefix in
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

(* --- daemon spawn/teardown --------------------------------------------

   [with_server f] starts an in-process generator daemon on a fresh
   Unix-domain socket in a fresh temp dir and passes the handle and the
   socket path to [f]; the daemon is stopped (gracefully: in-flight
   requests drain) and the temp dir removed afterwards, also on
   exception. *)

let with_server ?tcp ?source ?default_jobs ?queue_limit ?max_frame ?memo_limit
    ?tenant_limit ?trace_dir ?trace_sample ?slow_ms ?access_log ?store f =
  with_tmp_dir "amgt" @@ fun dir ->
  let socket = Filename.concat dir "d.sock" in
  let cfg =
    Amg_serve.Server.config ?tcp ?source ?default_jobs ?queue_limit ?max_frame
      ?memo_limit ?tenant_limit ?trace_dir ?trace_sample ?slow_ms ?access_log
      ?store socket
  in
  let t = Amg_serve.Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Amg_serve.Server.stop t)
    (fun () -> f t socket)
