(* Technology deck, rule tables and the technology-file parser. *)

module Rules = Amg_tech.Rules
module Layer = Amg_tech.Layer
module Technology = Amg_tech.Technology
module Tech_file = Amg_tech.Tech_file
module Bicmos1u = Amg_tech.Bicmos1u

let um = Amg_geometry.Units.of_um

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_builtin_deck () =
  let t = Bicmos1u.get () in
  Alcotest.(check string) "name" "generic-bicmos-1u" (Technology.name t);
  check "layer count" 12 (List.length (Technology.layers t));
  check_bool "has poly" true (Technology.mem_layer t "poly");
  check_bool "no such layer" false (Technology.mem_layer t "metal7");
  let rules = Technology.rules t in
  check "poly width" (um 1.) (Rules.width rules "poly");
  check "latchup" (um 50.) (Rules.latchup_dist rules);
  check "contact size" (um 1.) (Rules.cut_size rules "contact");
  check_bool "minarea metal1" true
    (Rules.min_area rules "metal1" = Some 4_000_000);
  check_bool "no minarea for cuts" true (Rules.min_area rules "contact" = None);
  check_bool "active layers" true
    (List.map (fun (l : Layer.t) -> l.Layer.name) (Technology.active_layers t)
    = [ "pdiff"; "ndiff" ]);
  check_bool "cut layers" true
    (List.map (fun (l : Layer.t) -> l.Layer.name) (Technology.cut_layers t)
    = [ "contact"; "via" ])

let test_rule_lookups () =
  let rules = Technology.rules (Bicmos1u.get ()) in
  (* Spacing is symmetric. *)
  check_bool "space symmetric" true
    (Rules.space rules "pdiff" "ndiff" = Rules.space rules "ndiff" "pdiff");
  check_bool "no rule" true (Rules.space rules "metal1" "poly" = None);
  check "enclosure" (um 0.5) (Rules.enclosure_or_zero rules ~outer:"metal1" ~inner:"contact");
  check "no enclosure" 0 (Rules.enclosure_or_zero rules ~outer:"poly" ~inner:"via");
  check_bool "extension" true
    (Rules.extension rules ~of_:"poly" ~past:"pdiff" = Some (um 1.));
  check_bool "extension directed" true
    (Rules.extension rules ~of_:"pdiff" ~past:"poly" = Some (um 1.5));
  (* Enclosing layers of contact include both metal and landing layers. *)
  let outers = List.map fst (Rules.enclosing_layers rules ~inner:"contact") in
  check_bool "contact outers" true
    (List.mem "metal1" outers && List.mem "poly" outers && List.mem "pdiff" outers);
  Alcotest.check_raises "cut_size on non-cut"
    (Invalid_argument "Rules.cut_size: poly is not a cut layer") (fun () ->
      ignore (Rules.cut_size rules "poly"))

let test_roundtrip () =
  let t = Bicmos1u.get () in
  let s = Tech_file.to_string t in
  let t2 = Tech_file.parse_string s in
  Alcotest.(check string) "canonical form stable" s (Tech_file.to_string t2);
  Alcotest.(check string) "name survives" (Technology.name t) (Technology.name t2);
  check "rules survive" (Rules.width (Technology.rules t) "metal2")
    (Rules.width (Technology.rules t2) "metal2")

let expect_parse_error ~line src =
  match Tech_file.parse_string src with
  | exception Amg_robust.Diag.Fail d ->
      check "error line" line (Amg_robust.Diag.line_of d)
  | _ -> Alcotest.fail "expected a parse error"

let test_parse_errors () =
  expect_parse_error ~line:2 "grid 0.05\nwidth poly 1\n";
  (* first directive must be technology *)
  expect_parse_error ~line:2 "technology t\nnonsense foo\n";
  expect_parse_error ~line:3 "technology t\nlayer m metal1 gds=1\nwidth nosuch 1\n";
  expect_parse_error ~line:2 "technology t\nlayer m badkind gds=1\n";
  expect_parse_error ~line:2 "technology t\nwidth poly abc\n" |> fun () ->
  (* comments and blank lines are fine *)
  let t =
    Tech_file.parse_string
      "# header\ntechnology mini\n\nlayer poly poly gds=1 # trailing\nwidth poly 1.5\n"
  in
  check "parsed width" (um 1.5) (Rules.width (Technology.rules t) "poly")

let test_colors_and_flags () =
  (* Regression: '#' inside a colour value must not start a comment. *)
  let t = Bicmos1u.get () in
  let l name = Technology.layer_exn t name in
  Alcotest.(check string) "poly color" "#cc2222"
    (l "poly").Layer.fill.Amg_tech.Patterns.color;
  check_bool "resmark nonconducting" false (l "resmark").Layer.conducting;
  check_bool "subtap nonconducting" false (l "subtap").Layer.conducting;
  check_bool "metal conducting" true (l "metal1").Layer.conducting

let test_layer_predicates () =
  let t = Bicmos1u.get () in
  let l name = Technology.layer_exn t name in
  check_bool "cut" true (Layer.is_cut (l "via"));
  check_bool "active" true (Layer.is_active (l "ndiff"));
  check_bool "metal" true (Layer.is_metal (l "metal2"));
  check_bool "marker not routing" false (Layer.is_routing (l "subtap"));
  check_bool "poly routing" true (Layer.is_routing (l "poly"));
  check_bool "draw order" true
    (Technology.draw_index t "nwell" < Technology.draw_index t "metal2");
  Alcotest.check_raises "unknown layer"
    (Invalid_argument "Technology generic-bicmos-1u: unknown layer bogus")
    (fun () -> ignore (Technology.layer_exn t "bogus"))

let test_duplicate_layer () =
  let rules = Rules.create () in
  let t = Technology.create ~name:"x" ~rules () in
  let layer =
    Layer.make ~name:"m" ~kind:(Layer.Metal 1) ~gds:1
      ~fill:(Amg_tech.Patterns.make "#fff") ()
  in
  Technology.add_layer t layer;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Technology.add_layer: duplicate layer m") (fun () ->
      Technology.add_layer t layer)


(* --- deck lint --- *)

module Lint = Amg_tech.Lint

let codes issues = List.map (fun (i : Lint.issue) -> i.Lint.code) issues

let test_lint_builtin_clean () =
  check_bool "bicmos clean" true (Lint.check (Bicmos1u.get ()) = []);
  check_bool "cmos08 clean" true (Lint.check (Amg_tech.Cmos08.get ()) = [])

(* A deliberately broken deck hitting one finding per lint pass. *)
let broken_deck () =
  let rules = Rules.create ~grid:50 () in
  let t = Technology.create ~name:"broken" ~rules () in
  let fill = Amg_tech.Patterns.make "#000" in
  Technology.add_layer t
    (Layer.make ~name:"pdiff" ~kind:Layer.Diffusion ~gds:3 ~fill ());
  Technology.add_layer t
    (Layer.make ~name:"metal1" ~kind:(Layer.Metal 1) ~gds:30 ~fill ());
  (* duplicate GDS number with metal1 *)
  Technology.add_layer t
    (Layer.make ~name:"metal2" ~kind:(Layer.Metal 2) ~gds:30 ~fill ());
  (* non-conducting cut, and no cutsize rule for it *)
  Technology.add_layer t
    (Layer.make ~name:"via" ~kind:Layer.Cut ~gds:40 ~conducting:false ~fill ());
  (* rule on a layer that is not declared *)
  Rules.set_width rules "poly" (um 1.);
  (* off-grid value *)
  Rules.set_width rules "metal1" 1025;
  (* non-positive value *)
  Rules.set_space rules "metal1" "metal1" 0;
  t

let test_lint_broken_deck () =
  let issues = Lint.check (broken_deck ()) in
  let cs = codes issues in
  let has c = check_bool c true (List.mem c cs) in
  has "unknown-layer";
  has "off-grid";
  has "non-positive";
  has "cut-without-size";
  has "cut-no-metal-landing";
  has "duplicate-gds";
  has "no-latchup";
  has "non-conducting-cut";
  has "no-width";          (* metal2 has no width rule *)
  has "no-self-space";     (* metal2 has no spacing rule *)
  check_bool "has errors" false (Lint.is_clean (broken_deck ()))

let test_lint_landing_pad () =
  (* Minimal pad (cut 1.0 + 2 * 0.5 enclosure = 2.0 um) narrower than the
     declared 3.0 um metal width rule. *)
  let rules = Rules.create ~grid:50 () in
  let t = Technology.create ~name:"pad" ~rules () in
  let fill = Amg_tech.Patterns.make "#000" in
  Technology.add_layer t
    (Layer.make ~name:"metal1" ~kind:(Layer.Metal 1) ~gds:30 ~fill ());
  Technology.add_layer t
    (Layer.make ~name:"via" ~kind:Layer.Cut ~gds:40 ~fill ());
  Rules.set_width rules "metal1" (um 3.);
  Rules.set_space rules "metal1" "metal1" (um 1.);
  Rules.set_cut_size rules "via" (um 1.);
  Rules.set_cut_space rules "via" (um 1.);
  Rules.set_enclosure rules ~outer:"metal1" ~inner:"via" (um 0.5);
  let cs = codes (Lint.check t) in
  check_bool "pad-below-width" true (List.mem "pad-below-width" cs);
  (* widening the enclosure to 1.0 um fixes it *)
  Rules.set_enclosure rules ~outer:"metal1" ~inner:"via" (um 1.);
  let cs2 = codes (Lint.check t) in
  check_bool "fixed" false (List.mem "pad-below-width" cs2)

let test_lint_vacuous_minarea () =
  let rules = Rules.create ~grid:50 () in
  let t = Technology.create ~name:"x" ~rules () in
  let fill = Amg_tech.Patterns.make "#000" in
  Technology.add_layer t
    (Layer.make ~name:"metal1" ~kind:(Layer.Metal 1) ~gds:30 ~fill ());
  Rules.set_width rules "metal1" (um 2.);
  Rules.set_space rules "metal1" "metal1" (um 2.);
  Rules.set_min_area rules "metal1" 3_000_000 (* 3 um2 < 2^2 = 4 um2 *);
  check_bool "vacuous flagged" true
    (List.mem "vacuous-minarea" (codes (Lint.check t)));
  Rules.set_min_area rules "metal1" 5_000_000;
  check_bool "meaningful ok" false
    (List.mem "vacuous-minarea" (codes (Lint.check t)))

let test_lint_cutsize_on_non_cut () =
  let rules = Rules.create ~grid:50 () in
  let t = Technology.create ~name:"x" ~rules () in
  let fill = Amg_tech.Patterns.make "#000" in
  Technology.add_layer t
    (Layer.make ~name:"poly" ~kind:Layer.Poly ~gds:10 ~fill ());
  Rules.set_cut_size rules "poly" (um 1.);
  let cs = codes (Lint.check t) in
  check_bool "cutsize-on-non-cut" true (List.mem "cutsize-on-non-cut" cs)


(* Random decks survive writer -> parser with identical rule tables. *)
let prop_tech_file_roundtrip =
  let gen =
    QCheck2.Gen.(
      tup4
        (* layer count, width values, space values, one enclosure margin *)
        (int_range 2 5)
        (list_size (int_range 1 5) (int_range 1 80))
        (list_size (int_range 1 8) (tup3 (int_range 0 4) (int_range 0 4) (int_range 1 60)))
        (int_range 1 20))
  in
  QCheck2.Test.make ~name:"tech file roundtrip" ~count:200 gen
    (fun (nlayers, widths, spaces, margin) ->
      let rules = Rules.create ~grid:50 () in
      let t = Technology.create ~name:"prop" ~rules () in
      let fill = Amg_tech.Patterns.make "#123456" in
      for i = 0 to nlayers - 1 do
        Technology.add_layer t
          (Layer.make
             ~name:(Printf.sprintf "l%d" i)
             ~kind:(if i = 0 then Layer.Poly else Layer.Metal ((i mod 3) + 1))
             ~gds:(10 + i) ~fill ())
      done;
      let lname i = Printf.sprintf "l%d" (i mod nlayers) in
      List.iteri
        (fun i w -> Rules.set_width rules (lname i) (w * 50))
        widths;
      List.iter
        (fun (a, b, d) -> Rules.set_space rules (lname a) (lname b) (d * 50))
        spaces;
      Rules.set_enclosure rules ~outer:(lname 1) ~inner:(lname 0) (margin * 50);
      Rules.set_min_area rules (lname 0) 2_250_000;
      Rules.set_latchup_dist rules 50_000;
      let back = Tech_file.parse_string (Tech_file.to_string t) in
      let br = Technology.rules back in
      let widths_ok =
        List.for_all
          (fun (l : Layer.t) ->
            Rules.width_opt rules l.Layer.name
            = Rules.width_opt br l.Layer.name)
          (Technology.layers t)
      in
      let spaces_ok =
        List.for_all
          (fun (a, b, _) ->
            Rules.space rules (lname a) (lname b)
            = Rules.space br (lname a) (lname b))
          spaces
      in
      Technology.layer_names back = Technology.layer_names t
      && widths_ok && spaces_ok
      && Rules.enclosure rules ~outer:(lname 1) ~inner:(lname 0)
         = Rules.enclosure br ~outer:(lname 1) ~inner:(lname 0)
      && Rules.min_area br (lname 0) = Some 2_250_000
      && Rules.latchup_dist br = 50_000)

let suite =
  [
    Alcotest.test_case "builtin deck" `Quick test_builtin_deck;
    Alcotest.test_case "rule lookups" `Quick test_rule_lookups;
    Alcotest.test_case "file roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "colors and flags" `Quick test_colors_and_flags;
    Alcotest.test_case "layer predicates" `Quick test_layer_predicates;
    Alcotest.test_case "duplicate layer" `Quick test_duplicate_layer;
    Alcotest.test_case "lint: builtin decks clean" `Quick test_lint_builtin_clean;
    Alcotest.test_case "lint: broken deck findings" `Quick test_lint_broken_deck;
    Alcotest.test_case "lint: landing pad vs width" `Quick test_lint_landing_pad;
    Alcotest.test_case "lint: cutsize on non-cut" `Quick test_lint_cutsize_on_non_cut;
    Alcotest.test_case "lint: vacuous minarea" `Quick test_lint_vacuous_minarea;
    QCheck_alcotest.to_alcotest prop_tech_file_roundtrip;
  ]
