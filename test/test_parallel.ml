(* The domain pool and the determinism contract of the parallel
   optimization mode: for any domain count (1 = sequential, the pool spawns
   nothing), every search returns the identical rating, the identical
   chosen order and a byte-identical layout. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Lobj = Amg_layout.Lobj
module Svg = Amg_layout.Svg
module Env = Amg_core.Env
module Optimize = Amg_core.Optimize
module Variants = Amg_core.Variants
module Rating = Amg_core.Rating
module Pool = Amg_parallel.Pool
module M = Amg_modules

let um = Units.of_um
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let env () = Env.bicmos ()

let domain_counts = Test_util.domain_counts

(* --- the pool itself --- *)

let test_pool_map () =
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun p ->
          check "size" (max 1 d) (Pool.size p);
          let arr = Array.init 100 Fun.id in
          let out = Pool.map_array p (fun i -> i * i) arr in
          Array.iteri (fun i v -> check "square in order" (i * i) v) out;
          (* Uneven task sizes exercise stealing: early indices are the
             heavy ones, so the owner of chunk 0 lags and the others
             steal. *)
          let heavy i =
            let n = if i < 10 then 200_000 else 10 in
            let acc = ref 0 in
            for k = 1 to n do
              acc := !acc + (k mod 7)
            done;
            (i, !acc)
          in
          let out = Pool.map_array p heavy (Array.init 64 Fun.id) in
          Array.iteri (fun i (j, _) -> check "input order kept" i j) out;
          Alcotest.(check (list int))
            "map_list" [ 2; 4; 6 ]
            (Pool.map_list p (fun x -> 2 * x) [ 1; 2; 3 ])))
    domain_counts

let test_pool_empty_and_single () =
  Pool.with_pool ~domains:4 (fun p ->
      check "empty" 0 (Array.length (Pool.map_array p Fun.id [||]));
      Alcotest.(check (array int)) "single" [| 7 |] (Pool.map_array p Fun.id [| 7 |]))

exception Boom of int

let test_pool_error_lowest_index () =
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun p ->
          let got =
            try
              ignore
                (Pool.map_array p
                   (fun i -> if i mod 3 = 1 then raise (Boom i) else i)
                   (Array.init 30 Fun.id));
              None
            with Boom i -> Some i
          in
          (* Every failing index may run on any domain, but the caller
             must always see the lowest one. *)
          Alcotest.(check (option int)) "lowest failing index" (Some 1) got;
          (* The pool survives a failed job. *)
          Alcotest.(check (array int)) "pool still works" [| 0; 2; 4 |]
            (Pool.map_array p (fun i -> 2 * i) [| 0; 1; 2 |])))
    domain_counts

let test_pool_clamps () =
  Pool.with_pool ~domains:0 (fun p -> check "clamped to 1" 1 (Pool.size p));
  check_bool "recommended >= 1" true (Pool.recommended () >= 1)

(* --- workloads --- *)

(* The paper's diff-pair: transistor, poly contact row, diffusion contact
   row (the test_sindex regression workload). *)
let diffpair_steps e =
  let trans =
    M.Mosfet.make e ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 5.)
      ~sd_contacts:`None ~well:false ()
  in
  Lobj.set_name trans "trans";
  let polycon = M.Contact_row.make e ~layer:"poly" ~l:(um 5.) ~net:"g" () in
  Lobj.set_name polycon "polycon";
  let diffcon =
    M.Contact_row.make e ~layer:"pdiff" ~w:(um 10.) ~net:"sd" ()
  in
  Lobj.set_name diffcon "diffcon";
  [
    Optimize.step trans Dir.South;
    Optimize.step polycon ~ignore_layers:[ "poly" ] Dir.South;
    Optimize.step diffcon ~ignore_layers:[ "pdiff" ] Dir.South;
  ]

(* The bench workload: n contact rows of cycling widths, alternating
   compaction directions. *)
let contact_row_steps e n =
  List.init n (fun i ->
      let w = um (float_of_int (20 + (i mod 4) * 12)) in
      let row =
        M.Contact_row.make e ~layer:"metal1"
          ~net:(Printf.sprintf "n%d" i) ~w ()
      in
      Lobj.set_name row (Printf.sprintf "row%d" i);
      Optimize.step row (if i mod 2 = 0 then Dir.South else Dir.West))

let order_names order = List.map (fun s -> Lobj.name s.Optimize.obj) order

(* Identical ratings means bit-identical floats — the parallel path must
   pick the very same layout, not one that rates equal to a tolerance. *)
let check_float_identical what a b =
  check_bool (what ^ " bit-identical") true (Float.equal a b)

let check_svg_identical e what a b =
  let svg o = Svg.of_lobj ~tech:(Env.tech e) o in
  check_bool (what ^ ": byte-identical SVG") true (String.equal (svg a) (svg b))

(* --- optimize_local: domains 1/2/4 identical --- *)

let local_determinism e steps =
  let runs =
    List.map
      (fun d -> (d, Optimize.optimize_local e ~name:"det" ~domains:d steps))
      domain_counts
  in
  match runs with
  | [] -> assert false
  | (_, (m1, r1, o1, evals1)) :: rest ->
      List.iter
        (fun (d, (m, r, o, evals)) ->
          let tag = Printf.sprintf "local domains=%d" d in
          check_float_identical (tag ^ " rating") r1 r;
          Alcotest.(check (list string))
            (tag ^ " chosen order") (order_names o1) (order_names o);
          check (tag ^ " evals") evals1 evals;
          check_svg_identical e tag m1 m)
        rest

let test_local_determinism_diffpair () =
  let e = env () in
  local_determinism e (diffpair_steps e)

let test_local_determinism_contact8 () =
  let e = env () in
  local_determinism e (contact_row_steps e 8)

(* --- branch-and-bound: domains 1/2/4 identical --- *)

let bb_determinism e steps =
  let runs =
    List.map
      (fun d -> (d, Optimize.optimize_bb e ~name:"det" ~domains:d steps))
      domain_counts
  in
  match runs with
  | [] -> assert false
  | (_, (m1, r1, o1, nodes1)) :: rest ->
      List.iter
        (fun (d, (m, r, o, nodes)) ->
          let tag = Printf.sprintf "bb domains=%d" d in
          check_float_identical (tag ^ " rating") r1 r;
          Alcotest.(check (list string))
            (tag ^ " chosen order") (order_names o1) (order_names o);
          check (tag ^ " nodes") nodes1 nodes;
          check_svg_identical e tag m1 m)
        rest

let test_bb_determinism_diffpair () =
  let e = env () in
  bb_determinism e (diffpair_steps e)

(* n = 6 is the exhaustive-reach cap the bench uses for branch-and-bound
   (n = 8 explores ~70k nodes, tens of seconds per run). *)
let test_bb_determinism_contact6 () =
  let e = env () in
  bb_determinism e (contact_row_steps e 6)

(* --- exhaustive order evaluation: identical result lists --- *)

let test_evaluate_orders_determinism () =
  let e = env () in
  let steps = contact_row_steps e 5 in
  let runs =
    List.map
      (fun d ->
        Optimize.evaluate_orders e ~name:"det" ~domains:d steps
        |> List.map (fun (_, r, o) -> (r, order_names o)))
      domain_counts
  in
  match runs with
  | [] -> assert false
  | first :: rest ->
      check "5! orders" 120 (List.length first);
      List.iter
        (fun run ->
          check_bool "identical rated order list" true (run = first))
        rest;
      (* And the winner ties back to the same order for every count. *)
      let winners =
        List.map
          (fun d ->
            let _, r, o = Optimize.optimize e ~name:"det" ~domains:d steps in
            (r, order_names o))
          domain_counts
      in
      List.iter
        (fun w -> check_bool "identical winner" true (w = List.hd winners))
        winners

(* --- Variants with a pool --- *)

let test_variants_pool () =
  let e = env () in
  let variant fingers () =
    M.Interdigitated.make e
      ~name:(Printf.sprintf "fingers%d" fingers)
      ~polarity:M.Mosfet.Nmos
      ~w:(um (64. /. float_of_int fingers))
      ~l:(um 2.) ~fingers ~well:false ()
  in
  let v =
    Variants.alt
      [
        Variants.delay (variant 2);
        Variants.delay (variant 4);
        Variants.fail "synthetic rejection";
        Variants.delay (variant 8);
      ]
  in
  let seq_names =
    List.map Lobj.name (Variants.successes v)
  in
  let seq_failures = Variants.failures v in
  let rate = Rating.rate e (Rating.with_aspect Rating.area_only 1.0) in
  let seq_best =
    match Variants.best ~rate v with Some (o, _) -> Lobj.name o | None -> "none"
  in
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun pool ->
          Alcotest.(check (list string))
            "successes in branch order" seq_names
            (List.map Lobj.name (Variants.successes ~pool v));
          Alcotest.(check (list string))
            "failures kept" seq_failures
            (Variants.failures ~pool v);
          let best =
            match Variants.best ~pool ~rate v with
            | Some (o, _) -> Lobj.name o
            | None -> "none"
          in
          Alcotest.(check string) "same best variant" seq_best best))
    [ 2; 4 ]

(* --- Optimize.permutations: qcheck properties + laziness --- *)

let rec fact n = if n <= 1 then 1 else n * fact (n - 1)

let prop_permutations =
  QCheck2.Test.make ~count:60 ~name:"permutations: n! distinct permutations"
    QCheck2.Gen.(int_range 0 6)
    (fun n ->
      let l = List.init n Fun.id in
      let perms = List.of_seq (Optimize.permutations l) in
      let sorted_l = List.sort compare l in
      List.length perms = fact n
      && List.length (List.sort_uniq compare perms) = fact n
      && List.for_all (fun p -> List.sort compare p = sorted_l) perms)

let test_permutations_lazy () =
  (* 20! ~ 2.4e18: forcing the head must not materialize the tail.  If the
     sequence were strict this would never return. *)
  let l = List.init 20 Fun.id in
  (match (Optimize.permutations l) () with
  | Seq.Cons (first, _) -> Alcotest.(check (list int)) "head is identity" l first
  | Seq.Nil -> Alcotest.fail "no permutations");
  (* Taking a few of 10! = 3.6M orders is instant, and they are distinct. *)
  let some =
    List.of_seq (Seq.take 5 (Optimize.permutations (List.init 10 Fun.id)))
  in
  check "took 5" 5 (List.length some);
  check "distinct" 5 (List.length (List.sort_uniq compare some))

let suite =
  [
    Alcotest.test_case "pool map" `Quick test_pool_map;
    Alcotest.test_case "pool empty/single" `Quick test_pool_empty_and_single;
    Alcotest.test_case "pool error lowest index" `Quick
      test_pool_error_lowest_index;
    Alcotest.test_case "pool clamps" `Quick test_pool_clamps;
    Alcotest.test_case "local determinism (diff pair)" `Quick
      test_local_determinism_diffpair;
    Alcotest.test_case "local determinism (8 contact rows)" `Quick
      test_local_determinism_contact8;
    Alcotest.test_case "bb determinism (diff pair)" `Quick
      test_bb_determinism_diffpair;
    Alcotest.test_case "bb determinism (6 contact rows)" `Quick
      test_bb_determinism_contact6;
    Alcotest.test_case "evaluate_orders determinism" `Quick
      test_evaluate_orders_determinism;
    Alcotest.test_case "variants with a pool" `Quick test_variants_pool;
    QCheck_alcotest.to_alcotest prop_permutations;
    Alcotest.test_case "permutations lazy" `Quick test_permutations_lazy;
  ]
