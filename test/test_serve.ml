(* The generator service: wire protocol round-trips, malformed frames,
   response-byte determinism, tenant cache isolation, concurrent clients,
   per-request budgets and graceful shutdown.  Every daemon here runs
   in-process on a fresh temp socket (Test_util.with_server), so the tests
   need no subprocess plumbing and teardown is exception-safe. *)

open Alcotest
module Diag = Amg_robust.Diag
module Wire = Amg_robust.Wire
module Server = Amg_serve.Server
module Client = Amg_serve.Client

(* A parameterized stack of four contact rows: the same shape as the
   robustness suite's Stack, but taking W so different requests produce
   different layouts (and different cache signatures). *)
let pack_source =
  {|
ENT Pack(<W>)
  a = ContactRow(layer = "pdiff", W = W, L = 6, net = "a")
  b = ContactRow(layer = "pdiff", W = W + 2, L = 4, net = "b")
  c = ContactRow(layer = "poly", W = W - 1, L = 8, net = "c")
  d = ContactRow(layer = "pdiff", W = W + 1, L = 5, net = "d")
  compact(a, NORTH, align = "MIN")
  compact(b, NORTH, align = "MIN")
  compact(c, NORTH, align = "MIN")
  compact(d, NORTH, align = "MIN")
|}
  ^ Amg_lang.Stdlib.all

let with_server ?default_jobs ?queue_limit ?max_frame ?memo_limit ?tenant_limit
    f =
  Test_util.with_server ~source:pack_source ?default_jobs ?queue_limit
    ?max_frame ?memo_limit ?tenant_limit f

let get sock req =
  match Client.oneshot sock req with
  | Ok resp -> resp
  | Error e -> failf "request failed: %s" e

let pack ?id ?optimize ?max_evals ?max_time ?tenant ?(format = Wire.No_payload)
    ?stats ?inject ?(jobs = 1) ?(w = 4.) () =
  Wire.build ?id ?optimize ?max_evals ?max_time ~jobs ?tenant ~format ?stats
    ?inject
    ~params:[ ("W", Wire.Pnum w) ]
    "Pack"

let has_code code resp =
  List.exists (fun (d : Diag.t) -> d.Diag.code = code) resp.Wire.diagnostics

(* --- wire round-trip properties --------------------------------------- *)

let gen_name =
  QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8))

(* Printable includes '\n', '"' and '\\': the property exercises JSON
   escaping, not just the happy path. *)
let gen_text = QCheck2.Gen.(string_size ~gen:printable (int_range 0 12))

(* Dyadic rationals round-trip exactly and avoid nan/inf, which would
   break structural equality (nan <> nan). *)
let gen_num =
  QCheck2.Gen.(
    map (fun i -> float_of_int i /. 16.) (int_range (-1_000_000) 1_000_000))

let gen_request =
  let open QCheck2.Gen in
  let gparam =
    oneof [ map (fun f -> Wire.Pnum f) gen_num; map (fun s -> Wire.Pstr s) gen_text ]
  in
  let* op =
    frequencyl
      [
        (6, Wire.Build);
        (2, Wire.Sweep);
        (1, Wire.Ping);
        (1, Wire.Stop);
        (1, Wire.Metrics);
        (1, Wire.Health);
      ]
  in
  let* id = option gen_text in
  let* entity = gen_name in
  let* params = list_size (int_range 0 4) (pair gen_name gparam) in
  let* optimize = option (oneofl [ Wire.Orders; Wire.Bb; Wire.Local ]) in
  let* max_evals = option (int_range 0 100_000) in
  let* max_time = option (map Float.abs gen_num) in
  let* jobs = option (int_range 1 8) in
  let* tenant = option gen_text in
  let* format = oneofl [ Wire.Cif; Wire.Svg; Wire.No_payload ] in
  let* permissive = bool in
  let* stats = bool in
  let* json = bool in
  let* inject = option gen_text in
  let* spec = option gen_text in
  pure
    {
      Wire.id;
      op;
      entity;
      params;
      optimize;
      max_evals;
      max_time;
      jobs;
      tenant;
      format;
      permissive;
      stats;
      json;
      inject;
      spec;
    }

let gen_diag =
  let open QCheck2.Gen in
  let* severity = oneofl [ Diag.Error; Diag.Warning; Diag.Info ] in
  let* subsystem =
    oneofl [ Diag.Lang; Diag.Layout; Diag.Optimize; Diag.Cli; Diag.Internal ]
  in
  let* code = gen_name in
  let* message = gen_text in
  let* hint = option gen_text in
  let* payload = list_size (int_range 0 2) (pair gen_name gen_text) in
  let* span =
    option
      (let* file = option gen_name in
       let* line = int_range 1 500 in
       let* col = int_range 0 80 in
       pure { Diag.file; line; col })
  in
  pure { Diag.code; severity; subsystem; message; span; hint; payload }

let gen_response =
  let open QCheck2.Gen in
  let* id = option gen_text in
  let* status = int_range 0 3 in
  let* rating = option gen_num in
  let* format = oneofl [ Wire.Cif; Wire.Svg; Wire.No_payload ] in
  let* payload = option gen_text in
  let* diagnostics = list_size (int_range 0 3) gen_diag in
  let* stats =
    option
      (let* elapsed_ms = map Float.abs gen_num in
       let* queue_depth = int_range 0 64 in
       let* cache_hits = int_range 0 10_000 in
       let* cache_misses = int_range 0 10_000 in
       pure { Wire.elapsed_ms; queue_depth; cache_hits; cache_misses })
  in
  pure { Wire.id; status; rating; format; payload; diagnostics; stats }

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"request: decode (encode r) = r" ~count:500
    ~print:Wire.encode_request gen_request (fun r ->
      match Wire.decode_request (Wire.encode_request r) with
      | Ok r' -> r' = r
      | Error _ -> false)

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"response: decode (encode r) = r" ~count:500
    ~print:Wire.encode_response gen_response (fun r ->
      match Wire.decode_response (Wire.encode_response r) with
      | Ok r' -> r' = r
      | Error _ -> false)

(* Integer fields must be finite integral doubles in a sane range —
   int_of_float on 1e300 or nan is unspecified and would smuggle an
   arbitrary budget into the daemon — and number fields must be finite. *)
let test_decode_validation () =
  let bad name line =
    match Wire.decode_request line with
    | Ok _ -> failf "%s: decoded instead of rejecting" name
    | Error _ -> ()
  in
  bad "huge max_evals" {|{"op":"build","entity":"e","max_evals":1e300}|};
  bad "fractional max_evals" {|{"op":"build","entity":"e","max_evals":2.5}|};
  bad "infinite jobs" {|{"op":"build","entity":"e","jobs":1e999}|};
  bad "infinite max_time" {|{"op":"build","entity":"e","max_time":1e999}|};
  (match
     Wire.decode_request {|{"op":"build","entity":"e","max_evals":42}|}
   with
  | Ok r ->
      check (option int) "integral max_evals decodes" (Some 42)
        r.Wire.max_evals
  | Error e -> failf "integral max_evals rejected: %s" e);
  match Wire.decode_response {|{"status":1e300,"diagnostics":[]}|} with
  | Ok _ -> fail "huge status decoded instead of rejecting"
  | Error _ -> ()

(* JSON has no nan/inf: non-finite numbers must encode as null, never as
   the nan/inf images printf would produce — those break the protocol's
   own decoder. *)
let test_nonfinite_encode () =
  let enc f = Diag.Json.to_string (Diag.Json.Jnum f) in
  check string "nan encodes as null" "null" (enc Float.nan);
  check string "inf encodes as null" "null" (enc Float.infinity);
  check string "-inf encodes as null" "null" (enc Float.neg_infinity);
  (* end to end: a non-finite rating degrades to an absent rating, not an
     unparsable frame *)
  let resp = Wire.response ~rating:Float.nan Wire.status_ok in
  match Wire.decode_response (Wire.encode_response resp) with
  | Ok r ->
      check bool "non-finite rating decodes as absent" true (r.Wire.rating = None)
  | Error e -> failf "non-finite rating broke the frame: %s" e

(* --- malformed, oversized and truncated frames ------------------------ *)

let test_bad_frames () =
  with_server ~max_frame:2048 @@ fun _t sock ->
  let c = Client.connect sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* not JSON at all *)
  Client.send_line c "this is { not json";
  (match Client.recv c with
  | Ok resp ->
      check int "malformed: status" Wire.status_reject resp.Wire.status;
      check bool "malformed: serve.bad-request" true
        (has_code "serve.bad-request" resp)
  | Error e -> failf "malformed frame: %s" e);
  (* valid JSON, wrong shape *)
  Client.send_line c "[1,2,3]";
  (match Client.recv c with
  | Ok resp -> check int "non-object: status" Wire.status_reject resp.Wire.status
  | Error e -> failf "non-object frame: %s" e);
  (* valid JSON object, bad field type *)
  Client.send_line c {|{"op":"build","entity":7}|};
  (match Client.recv c with
  | Ok resp -> check int "bad field: status" Wire.status_reject resp.Wire.status
  | Error e -> failf "bad-field frame: %s" e);
  (* oversized frame: the reader must discard it and keep the framing *)
  Client.send_line c (String.make 4096 'a');
  (match Client.recv c with
  | Ok resp ->
      check int "oversized: status" Wire.status_reject resp.Wire.status;
      check bool "oversized: serve.frame-too-large" true
        (has_code "serve.frame-too-large" resp)
  | Error e -> failf "oversized frame: %s" e);
  (* the same connection still serves real requests after all that *)
  match Client.roundtrip c (Wire.ping ~id:"alive" ()) with
  | Ok resp ->
      check int "after garbage: ping ok" Wire.status_ok resp.Wire.status;
      check (option string) "after garbage: id echoed" (Some "alive")
        resp.Wire.id
  | Error e -> failf "ping after garbage: %s" e

let test_truncated_frame () =
  with_server @@ fun _t sock ->
  (* a client that dies mid-frame must not hurt the daemon *)
  let c = Client.connect sock in
  Client.send_raw c {|{"op":"build","entity":"Pa|};
  Client.close c;
  let resp = get sock (Wire.ping ()) in
  check int "daemon survives truncated frame" Wire.status_ok resp.Wire.status

(* A peer that sends a request and vanishes before reading the response
   must cost only that connection: the response write surfaces as EPIPE
   on the connection thread, not as a process-killing SIGPIPE. *)
let test_disconnect_before_response () =
  with_server @@ fun _t sock ->
  for i = 1 to 3 do
    let c = Client.connect sock in
    (* a cold search on a fresh tenant: the daemon is still computing
       when the peer disappears *)
    Client.send c
      (pack ~optimize:Wire.Local ~tenant:(Printf.sprintf "gone%d" i) ());
    Client.close c
  done;
  let r = get sock (pack ~format:Wire.Cif ()) in
  check int "daemon alive after dead peers" Wire.status_ok r.Wire.status

(* --- status mapping ---------------------------------------------------- *)

let test_statuses () =
  with_server @@ fun _t sock ->
  (* ok + payloads *)
  let r = get sock (pack ~format:Wire.Cif ()) in
  check int "build: status ok" Wire.status_ok r.Wire.status;
  check bool "build: rating present" true (r.Wire.rating <> None);
  (match r.Wire.payload with
  | Some p -> check bool "cif payload" true (String.length p > 0)
  | None -> fail "build: no CIF payload");
  let r = get sock (pack ~format:Wire.Svg ()) in
  (match r.Wire.payload with
  | Some p ->
      check bool "svg payload" true
        (String.length p > 4 && String.sub p 0 4 = "<svg")
  | None -> fail "build: no SVG payload");
  (* unknown entity: structured diagnostics, status 1 *)
  let r = get sock (Wire.build ~format:Wire.No_payload "Nope") in
  check int "unknown entity: status" Wire.status_diag r.Wire.status;
  check bool "unknown entity: diagnostics" true (r.Wire.diagnostics <> []);
  (* bad inject spec: rejected up front *)
  let r = get sock (pack ~inject:"bogus spec" ()) in
  check int "bad inject: status" Wire.status_reject r.Wire.status;
  check bool "bad inject: serve.bad-inject" true
    (has_code "serve.bad-inject" r)

(* --- response-byte determinism ----------------------------------------- *)

(* Same request, cold then warm, at jobs=1 and jobs=2: every response line
   must be byte-identical (stats omitted — it is the one deliberately
   nondeterministic field). *)
let test_determinism () =
  let lines_for jobs =
    with_server @@ fun _t sock ->
    let c = Client.connect sock in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    List.init 3 (fun _ ->
        Client.send c (pack ~id:"det" ~optimize:Wire.Local ~format:Wire.Cif ~jobs ());
        match Client.recv_line c with
        | Some line -> line
        | None -> fail "connection closed mid-test")
  in
  let l1 = lines_for 1 in
  let l2 = lines_for 2 in
  let reference = List.hd l1 in
  check bool "response is non-trivial" true (String.length reference > 100);
  List.iteri
    (fun i line -> check string (Printf.sprintf "jobs=1 run %d" i) reference line)
    l1;
  List.iteri
    (fun i line -> check string (Printf.sprintf "jobs=2 run %d" i) reference line)
    l2

(* --- tenant cache isolation -------------------------------------------- *)

let test_tenant_isolation () =
  with_server @@ fun _t sock ->
  let req tenant = pack ~optimize:Wire.Local ~tenant ~stats:true () in
  let st r =
    match r.Wire.stats with
    | Some s -> s
    | None -> fail "stats requested but absent"
  in
  let a1 = st (get sock (req "tenant-a")) in
  let a2 = st (get sock (req "tenant-a")) in
  let b1 = st (get sock (req "tenant-b")) in
  (* a budgeted repeat bypasses the whole-result memo, so it re-runs the
     search against the tenant's warm prefix cache *)
  let a3 =
    st
      (get sock
         (pack ~optimize:Wire.Local ~max_evals:100_000 ~tenant:"tenant-a"
            ~stats:true ()))
  in
  (* same module, same params: tenant-b's first request must look exactly
     as cold as tenant-a's did — nothing leaked across scopes *)
  check int "tenant-b cold hits = tenant-a cold hits" a1.Wire.cache_hits
    b1.Wire.cache_hits;
  check int "tenant-b cold misses = tenant-a cold misses" a1.Wire.cache_misses
    b1.Wire.cache_misses;
  (* an identical unbudgeted repeat replays the memoized result without
     touching the prefix cache at all *)
  check int "tenant-a memo repeat does no cache work" 0
    (a2.Wire.cache_hits + a2.Wire.cache_misses);
  (* while a budgeted repeat inside one tenant is visibly warmer *)
  check bool "tenant-a warm search hits more" true
    (a3.Wire.cache_hits > a1.Wire.cache_hits)

(* The tenant table is LRU-bounded: a stream of fresh tenant names cannot
   grow the daemon without limit.  An evicted tenant that returns gets a
   fresh environment — observably cold again — while residents stay
   warm.  Budgeted requests bypass the whole-result memo, so warmth shows
   up in the prefix-cache counters. *)
let test_tenant_eviction () =
  with_server ~tenant_limit:2 @@ fun _t sock ->
  let budgeted tenant =
    pack ~optimize:Wire.Local ~max_evals:100_000 ~tenant ~stats:true ()
  in
  let st r =
    match r.Wire.stats with
    | Some s -> s
    | None -> fail "stats requested but absent"
  in
  let a1 = st (get sock (budgeted "ta")) in
  let a2 = st (get sock (budgeted "ta")) in
  check bool "resident tenant runs warm" true
    (a2.Wire.cache_hits > a1.Wire.cache_hits);
  (* fill the table past the limit: inserting "tc" evicts "ta" (LRU) *)
  ignore (get sock (budgeted "tb"));
  ignore (get sock (budgeted "tc"));
  let a3 = st (get sock (budgeted "ta")) in
  check int "evicted tenant is cold again (hits)" a1.Wire.cache_hits
    a3.Wire.cache_hits;
  check int "evicted tenant is cold again (misses)" a1.Wire.cache_misses
    a3.Wire.cache_misses

(* --- concurrent clients ------------------------------------------------ *)

let test_concurrent_clients () =
  with_server @@ fun _t sock ->
  let nclients = 6 and per_client = 5 in
  let results = Array.make nclients [||] in
  let worker i =
    let c = Client.connect sock in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    results.(i) <-
      Array.init per_client (fun k ->
          let id = Printf.sprintf "c%d-%d" i k in
          let req =
            match k mod 3 with
            | 0 -> Wire.ping ~id ()
            | 1 -> pack ~id ~optimize:Wire.Local ~format:Wire.Cif ()
            | _ ->
                Wire.build ~id ~jobs:1 ~format:Wire.Cif
                  ~params:[ ("W", Wire.Pnum 10.); ("L", Wire.Pnum 5.) ]
                  "DiffPair"
          in
          match Client.roundtrip c req with
          | Ok resp -> (id, resp)
          | Error e -> failf "client %d: %s" i e)
  in
  let threads = List.init nclients (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  (* every request answered, on the right connection, in order *)
  Array.iteri
    (fun i arr ->
      check int (Printf.sprintf "client %d: all answered" i) per_client
        (Array.length arr);
      Array.iter
        (fun (id, resp) ->
          check (option string)
            (Printf.sprintf "client %d: id echoed" i)
            (Some id) resp.Wire.id;
          check int (Printf.sprintf "%s: status ok" id) Wire.status_ok
            resp.Wire.status)
        arr)
    results;
  (* identical build requests got identical layouts, whatever the
     interleaving: compare payloads across clients *)
  let payloads k =
    Array.to_list results
    |> List.filter_map (fun arr ->
           if Array.length arr = 0 then None
           else (snd arr.(k)).Wire.payload)
  in
  List.iter
    (fun k ->
      match payloads k with
      | [] -> fail "no payloads collected"
      | p :: rest ->
          List.iter (check string "same payload across clients" p) rest)
    [ 1; 2; 4 ]

(* --- budgets degrade, the daemon survives ------------------------------ *)

let test_deadline_degrades () =
  with_server @@ fun _t sock ->
  (* eval cap: 4 steps = 24 orders, far over a 1-eval budget *)
  let r =
    get sock (pack ~optimize:Wire.Orders ~max_evals:1 ~format:Wire.Cif ())
  in
  check int "eval budget: degraded" Wire.status_degraded r.Wire.status;
  check bool "eval budget: best-so-far payload" true (r.Wire.payload <> None);
  check bool "eval budget: rating present" true (r.Wire.rating <> None);
  check bool "eval budget: optimize.degraded diag" true
    (has_code "optimize.degraded" r);
  (* wall-clock deadline that has already passed when the search starts *)
  let r =
    get sock
      (pack ~optimize:Wire.Orders ~max_time:1e-9 ~tenant:"cold" ~format:Wire.Cif ())
  in
  check int "deadline: degraded" Wire.status_degraded r.Wire.status;
  check bool "deadline: best-so-far payload" true (r.Wire.payload <> None);
  (* a degraded search must not wedge the daemon *)
  let r = get sock (pack ~format:Wire.Cif ()) in
  check int "daemon serves after degradation" Wire.status_ok r.Wire.status

(* --- graceful shutdown -------------------------------------------------- *)

let test_graceful_shutdown () =
  Test_util.with_tmp_dir "amgs" @@ fun dir ->
  let socket = Filename.concat dir "d.sock" in
  let t = Server.start (Server.config ~source:pack_source socket) in
  (* park a slow request in flight (cold order search on a fresh scope) *)
  let slow_result = ref (Error "never ran") in
  let slow =
    Thread.create
      (fun () ->
        slow_result :=
          Client.oneshot socket
            (pack ~id:"slow" ~optimize:Wire.Orders ~tenant:"shutdown" ()))
      ()
  in
  Thread.delay 0.05;
  (* ask the daemon to stop over the wire *)
  (match Client.oneshot socket (Wire.stop ~id:"bye" ()) with
  | Ok resp -> check int "stop acknowledged" Wire.status_ok resp.Wire.status
  | Error e -> failf "stop request: %s" e);
  Server.stop t;
  Thread.join slow;
  (* the in-flight request drained with a real answer, not a dropped
     connection *)
  (match !slow_result with
  | Ok resp -> check int "in-flight request drained" Wire.status_ok resp.Wire.status
  | Error e -> failf "in-flight request dropped: %s" e);
  check bool "stop was requested" true (Server.stop_requested t);
  (* new connections are refused once the daemon is gone *)
  match Client.connect socket with
  | c ->
      Client.close c;
      fail "connect after stop should fail"
  | exception Unix.Unix_error _ -> ()

(* --- telemetry: scrape ops, access log, per-request traces ------------- *)

module Json = Diag.Json
module Metrics = Amg_obs.Metrics

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* metrics and health answer over the wire with scrapeable payloads:
   health is a small JSON object, metrics comes as Prometheus text or as
   the JSON form behind `amgen metrics --json` and the bench cross-check. *)
let test_scrape_ops () =
  with_server @@ fun _t sock ->
  ignore (get sock (pack ~format:Wire.Cif ()));
  let payload r =
    match r.Wire.payload with Some p -> p | None -> fail "scrape: no payload"
  in
  let h = get sock (Wire.health ()) in
  check int "health: status ok" Wire.status_ok h.Wire.status;
  (match Json.of_string (payload h) with
  | Ok j ->
      check (option string) "health: status field" (Some "ok")
        (Option.bind (Json.member "status" j) Json.str);
      List.iter
        (fun k ->
          check bool (Printf.sprintf "health: %s is a number" k) true
            (Option.bind (Json.member k j) Json.num <> None))
        [
          "uptime_s";
          "served";
          "in_flight";
          "queue_depth";
          "tenants";
          "memo_entries";
          "pool_size";
        ]
  | Error e -> failf "health payload: %s" e);
  let m = get sock (Wire.metrics ()) in
  check int "metrics: status ok" Wire.status_ok m.Wire.status;
  let text = payload m in
  List.iter
    (fun needle ->
      check bool (Printf.sprintf "exposition has %S" needle) true
        (contains_sub text needle))
    [
      "# TYPE serve_requests_total counter";
      "op=\"build\"";
      "serve_latency_bucket{";
      "serve_uptime_seconds";
    ];
  let mj = get sock (Wire.metrics ~json:true ()) in
  match Json.of_string (payload mj) with
  | Ok j -> (
      match Json.member "metrics" j with
      | Some (Json.Jarr samples) ->
          let has name =
            List.exists
              (fun s -> Option.bind (Json.member "name" s) Json.str = Some name)
              samples
          in
          check bool "json metrics: serve.requests present" true
            (has "serve.requests");
          check bool "json metrics: serve.latency present" true
            (has "serve.latency")
      | _ -> fail "json metrics: no metrics array")
  | Error e -> failf "metrics json payload: %s" e

(* Every request appends one ndjson line; the line parses back and
   carries the schema the log readers rely on. *)
let test_access_log () =
  Test_util.with_tmp_dir "amgl" @@ fun dir ->
  let log = Filename.concat dir "access.ndjson" in
  Test_util.with_server ~source:pack_source ~access_log:log (fun _t sock ->
      ignore (get sock (Wire.ping ()));
      ignore (get sock (pack ~id:"one" ~format:Wire.Cif ()));
      ignore (get sock (pack ~id:"two" ~format:Wire.Cif ()));
      ignore (get sock (Wire.build ~format:Wire.No_payload "Nope")));
  let ic = open_in log in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check int "one line per request" 4 (List.length lines);
  let parsed =
    List.map
      (fun line ->
        match Json.of_string line with
        | Ok j -> j
        | Error e -> failf "unparsable access line %S: %s" line e)
      lines
  in
  let str k j = Option.bind (Json.member k j) Json.str in
  List.iter
    (fun j ->
      List.iter
        (fun k ->
          check bool (Printf.sprintf "access: %s present" k) true
            (str k j <> None))
        [ "request_id"; "op"; "outcome" ];
      List.iter
        (fun k ->
          check bool (Printf.sprintf "access: %s is a number" k) true
            (Option.bind (Json.member k j) Json.num <> None))
        [ "ts"; "status"; "latency_ms"; "evals"; "cache_hits"; "cache_misses" ])
    parsed;
  let rids = List.filter_map (str "request_id") parsed in
  check int "request ids are distinct" 4
    (List.length (List.sort_uniq compare rids));
  let by_id id =
    match List.find_opt (fun j -> str "id" j = Some id) parsed with
    | Some j -> j
    | None -> failf "no access line for request id %S" id
  in
  check (option string) "repeat build logged as memo-hit" (Some "memo-hit")
    (str "outcome" (by_id "two"));
  let ping = List.hd parsed in
  check (option string) "ping logged with op" (Some "ping") (str "op" ping);
  check (option string) "ping outcome is none" (Some "none")
    (str "outcome" ping);
  let last = List.nth parsed 3 in
  check (option string) "failed build logged as error" (Some "error")
    (str "outcome" last);
  check (option int) "failed build logged with diag status"
    (Some Wire.status_diag)
    (Option.bind (Json.member "status" last) Json.int)

(* With --trace-sample 1 every compute request exports a Chrome trace
   named after its request id; scrape and ping requests record no events
   and must not litter the directory.  The file has to satisfy the same
   validator `amgen trace-lint` runs, request-id metadata included. *)
let test_request_traces () =
  Test_util.with_tmp_dir "amgtr" @@ fun dir ->
  let traces = Filename.concat dir "traces" in
  Test_util.with_server ~source:pack_source ~trace_dir:traces ~trace_sample:1
    (fun _t sock ->
      ignore (get sock (Wire.ping ()));
      ignore (get sock (pack ~format:Wire.Cif ()));
      ignore (get sock (Wire.metrics ())));
  let files = Sys.readdir traces |> Array.to_list |> List.sort compare in
  check int "exactly the build request left a trace" 1 (List.length files);
  let f = List.hd files in
  let rid = Filename.remove_extension f in
  match Amg_obs.Trace.validate_file (Filename.concat traces f) with
  | Ok s ->
      check (option string) "trace metadata carries the request id" (Some rid)
        s.Amg_obs.Trace.v_request_id;
      check bool "trace has spans" true (s.Amg_obs.Trace.v_spans > 0)
  | Error e -> failf "trace %s fails validation: %s" f e

(* The determinism discipline extended to the registry: a fixed request
   sequence must leave byte-identical request-labelled counters at jobs=1
   and jobs=2 — outcome classification (cold / memo-hit / search-warm /
   error) may not depend on the parallel schedule. *)
let request_counter_signature jobs =
  with_server @@ fun _t sock ->
  Metrics.reset ();
  let send req = ignore (get sock req) in
  send (Wire.ping ());
  send (pack ~jobs ~w:7. ());
  send (pack ~jobs ~w:7. ());
  send (pack ~jobs ~w:7. ~optimize:Wire.Local ());
  send (pack ~jobs ~w:7. ~optimize:Wire.Local ());
  send (Wire.build ~jobs ~format:Wire.No_payload "Nope");
  Metrics.snapshot ()
  |> List.filter_map (fun (s : Metrics.sample) ->
         match s.Metrics.m_value with
         | Metrics.Counter n when s.Metrics.m_name = "serve.requests" && n > 0
           ->
             Some
               (Printf.sprintf "%s{%s} %d" s.Metrics.m_name
                  (String.concat ","
                     (List.map
                        (fun (k, v) -> k ^ "=" ^ v)
                        s.Metrics.m_labels))
                  n)
         | _ -> None)
  |> String.concat "\n"

let test_counter_determinism () =
  let s1 = request_counter_signature 1 in
  let s2 = request_counter_signature 2 in
  check bool "sequence exercised a cold build" true
    (contains_sub s1 "cache=cold");
  check bool "sequence exercised memo hits" true
    (contains_sub s1 "cache=memo-hit");
  check bool "sequence exercised the error path" true
    (contains_sub s1 "cache=error");
  check string "request counters byte-identical at jobs 1 and 2" s1 s2

let suite =
  [
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_response_roundtrip;
    test_case "decoder rejects non-integral and non-finite numbers" `Quick
      test_decode_validation;
    test_case "non-finite floats encode as null" `Quick test_nonfinite_encode;
    test_case "malformed and oversized frames keep the connection" `Quick
      test_bad_frames;
    test_case "truncated frame drops only that client" `Quick
      test_truncated_frame;
    test_case "peer disconnect before response leaves the daemon alive" `Quick
      test_disconnect_before_response;
    test_case "status mapping and payload formats" `Quick test_statuses;
    test_case "response bytes deterministic (cold/warm, jobs 1 and 2)" `Quick
      test_determinism;
    test_case "tenant cache scopes are isolated" `Quick test_tenant_isolation;
    test_case "tenant table is LRU-bounded" `Quick test_tenant_eviction;
    test_case "concurrent clients all answered in order" `Quick
      test_concurrent_clients;
    test_case "budgets degrade to status 3, daemon keeps serving" `Quick
      test_deadline_degrades;
    test_case "graceful shutdown drains in-flight requests" `Quick
      test_graceful_shutdown;
    test_case "metrics and health scrape over the wire" `Quick test_scrape_ops;
    test_case "access log lines parse and carry the schema" `Quick
      test_access_log;
    test_case "sampled requests export valid per-request traces" `Quick
      test_request_traces;
    test_case "request counters deterministic across jobs" `Quick
      test_counter_determinism;
  ]
