(* The durable result store: on-disk format round-trips, torn-tail and
   corrupt-record recovery, checkpoint compaction, the Optimize ?store
   seeding contract, and the serve-layer integration — warm restart
   (in-process and across a real SIGKILLed daemon) and client retry.

   The centrepiece is the fault-schedule property: under ANY injected
   schedule over the four store I/O sites, the store keeps serving
   byte-identical results, reopens cleanly afterwards, and everything it
   has to say arrives as structured store.* diagnostics. *)

open Alcotest
module Env = Amg_core.Env
module Optimize = Amg_core.Optimize
module Store = Amg_store.Store
module Diag = Amg_robust.Diag
module Inject = Amg_robust.Inject
module Policy = Amg_robust.Policy
module Wire = Amg_robust.Wire
module Server = Amg_serve.Server
module Client = Amg_serve.Client
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Interp = Amg_lang.Interp

(* Same Stack as the robustness suite: four top-level compacts, fully
   replayable, 24 orders — small enough to search exhaustively in every
   property case. *)
let source =
  {|
ENT ContactRow(layer, <W>, <L>, <net>)
  INBOX(layer, W, L, net = net)
  INBOX("metal1", net = net)
  ARRAY("contact", net = net)

ENT Stack()
  a = ContactRow(layer = "pdiff", W = 4, L = 6, net = "a")
  b = ContactRow(layer = "pdiff", W = 6, L = 4, net = "b")
  c = ContactRow(layer = "poly", W = 3, L = 8, net = "c")
  d = ContactRow(layer = "pdiff", W = 5, L = 5, net = "d")
  compact(a, NORTH, align = "MIN")
  compact(b, NORTH, align = "MIN")
  compact(c, NORTH, align = "MIN")
  compact(d, NORTH, align = "MIN")
|}

let program = Amg_lang.Parser.parse_program ~file:"inline.amg" source

let recorded () =
  let e = Env.bicmos () in
  match Interp.build_recorded e program "Stack" [] with
  | _, Ok r -> (e, r)
  | _, Error why -> failwith ("Stack should be replayable: " ^ why)

let fingerprint obj =
  String.concat ";" (List.map Shape.show (Lobj.shapes obj))

let order_indices (steps : Optimize.step list) order =
  List.map
    (fun s ->
      let rec idx i = function
        | [] -> -1
        | x :: tl -> if x == s then i else idx (i + 1) tl
      in
      idx 0 steps)
    order

let key_of e =
  Store.signature
    ~tech:(Store.tech_fingerprint (Amg_tech.Tech_file.to_string (Env.tech e)))
    ~entity:"Stack" ~params:[]

let file_size path = (Unix.stat path).Unix.st_size

let read_bytes path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let entry ?(perm = [| 1; 0; 2 |]) ?(meta = []) rating =
  { Store.rating; perm; meta }

let no_warnings what diags =
  check bool what true
    (List.for_all (fun d -> d.Diag.severity = Diag.Info) diags)

(* --- persistence round-trip -------------------------------------------- *)

let test_roundtrip () =
  Test_util.with_tmp_dir "amgst" @@ fun dir ->
  let path = Filename.concat dir "r.store" in
  let st, diags = Store.open_ path in
  check (list string) "fresh store opens silently" []
    (List.map (fun d -> d.Diag.code) diags);
  check bool "miss on a fresh store" true (Store.find st "k" = None);
  (* strictly-better semantics: ratings are minimized *)
  check bool "first record lands" true (Store.record_better st "k" (entry 5.0));
  check bool "worse rating rejected" false
    (Store.record_better st "k" (entry 7.0));
  check bool "better rating replaces" true
    (Store.record_better st "k" (entry 3.0));
  (* meta strings are binary-safe (no JSON/quoting on this path) *)
  Store.record st "k2"
    (entry ~perm:[| 3; 1; 2; 0 |]
       ~meta:[ ("mode", "local:r4:s1"); ("note", "a\nb\"c") ]
       1.25);
  Store.close st;
  let st, diags = Store.open_ path in
  no_warnings "replay is clean" diags;
  let s = Store.stats st in
  (* k was appended twice (5.0 then 3.0): last record for a key wins *)
  check int "all appended records replayed" 3 s.Store.recovered_records;
  check int "live entries deduplicate" 2 s.Store.entries;
  (match Store.find st "k" with
  | Some e ->
      check (float 0.) "rating survives" 3.0 e.Store.rating;
      check (array int) "perm survives" [| 1; 0; 2 |] e.Store.perm
  | None -> fail "k lost across reopen");
  (match Store.find st "k2" with
  | Some e ->
      check (array int) "perm survives" [| 3; 1; 2; 0 |] e.Store.perm;
      check
        (list (pair string string))
        "meta survives byte-exactly"
        [ ("mode", "local:r4:s1"); ("note", "a\nb\"c") ]
        e.Store.meta
  | None -> fail "k2 lost across reopen");
  Store.close st

(* --- torn tail: the shape of a crash mid-append ------------------------ *)

let test_torn_tail () =
  Test_util.with_tmp_dir "amgst" @@ fun dir ->
  let path = Filename.concat dir "t.store" in
  let st, _ = Store.open_ path in
  Store.record st "k1" (entry 1.0);
  Store.close st;
  let s1 = file_size path in
  let st, _ = Store.open_ path in
  Store.record st "k2" (entry 2.0);
  Store.close st;
  let s2 = file_size path in
  let full = read_bytes path in
  (* every way of tearing the second record: mid frame header, bare frame
     header, mid payload *)
  List.iter
    (fun cut ->
      write_bytes path (String.sub full 0 cut);
      let st, diags = Store.open_ path in
      no_warnings "torn tail recovers silently" diags;
      let s = Store.stats st in
      check int "tail truncation counted" 1 s.Store.torn_tail_truncations;
      check int "no corruption" 0 s.Store.corrupt_records;
      check bool "k1 survives" true (Store.find st "k1" <> None);
      check bool "torn k2 dropped" true (Store.find st "k2" = None);
      (* the repair leaves a clean boundary: appending works again *)
      Store.record st "k2" (entry 2.0);
      Store.close st;
      check int "repair truncated to the last good record" s2 (file_size path);
      let st, _ = Store.open_ path in
      check int "both live after re-append" 2 (Store.length st);
      Store.close st)
    [ s1 + 1; s1 + 4; s1 + 8; s2 - 1 ]

let test_torn_header () =
  Test_util.with_tmp_dir "amgst" @@ fun dir ->
  let path = Filename.concat dir "h.store" in
  write_bytes path "AMGST";
  (* shorter than a header: a crash during store creation *)
  let st, diags = Store.open_ path in
  no_warnings "torn header recovers silently" diags;
  check int "counted as a truncation" 1
    (Store.stats st).Store.torn_tail_truncations;
  Store.record st "k" (entry 1.0);
  Store.close st;
  let st, _ = Store.open_ path in
  check int "store usable after header repair" 1 (Store.length st);
  Store.close st

(* --- corrupt interior record: surfaced, skipped, never served ---------- *)

let test_corrupt_record () =
  Test_util.with_tmp_dir "amgst" @@ fun dir ->
  let path = Filename.concat dir "c.store" in
  let st, _ = Store.open_ path in
  Store.record st "k1" (entry 1.0);
  Store.close st;
  let s1 = file_size path in
  let st, _ = Store.open_ path in
  Store.record st "k2" (entry 2.0);
  Store.record st "k3" (entry 3.0);
  Store.close st;
  let full = read_bytes path in
  (* flip one payload byte of the middle record: CRC must catch it *)
  let b = Bytes.of_string full in
  let off = s1 + 8 + 4 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF));
  write_bytes path (Bytes.to_string b);
  let st, diags = Store.open_ path in
  check bool "store.corrupt_record diagnostic surfaced" true
    (List.exists
       (fun d ->
         d.Diag.code = "store.corrupt_record" && d.Diag.severity = Diag.Warning)
       diags);
  let s = Store.stats st in
  check int "one corrupt record counted" 1 s.Store.corrupt_records;
  check int "no tail truncation" 0 s.Store.torn_tail_truncations;
  check bool "record before the corruption survives" true
    (Store.find st "k1" <> None);
  check bool "corrupt record never served" true (Store.find st "k2" = None);
  check bool "record after the corruption survives" true
    (Store.find st "k3" <> None);
  Store.close st;
  (* verify agrees, read-only *)
  let vs, vdiags = Store.verify path in
  check int "verify sees the corruption" 1 vs.Store.corrupt_records;
  check bool "verify reports it" true
    (List.exists (fun d -> d.Diag.code = "store.corrupt_record") vdiags)

let test_bad_header () =
  Test_util.with_tmp_dir "amgst" @@ fun dir ->
  let path = Filename.concat dir "b.store" in
  write_bytes path "this is definitely not an AMGSTORE file, 32+ bytes long";
  (match Store.open_ path with
  | _ -> fail "foreign bytes must not open"
  | exception Diag.Fail d -> check string "code" "store.bad_header" d.Diag.code);
  (* same for a future version: never guess at an unknown format *)
  write_bytes path "AMGSTORE\x63\x00\x00\x00";
  match Store.open_ path with
  | _ -> fail "unknown version must not open"
  | exception Diag.Fail d -> check string "code" "store.bad_header" d.Diag.code

(* --- checkpoint: compaction via write-to-temp + atomic rename ---------- *)

let test_checkpoint () =
  Test_util.with_tmp_dir "amgst" @@ fun dir ->
  let path = Filename.concat dir "ck.store" in
  let st, _ = Store.open_ path in
  for i = 1 to 10 do
    for k = 0 to 4 do
      Store.record st (Printf.sprintf "key%d" k) (entry (float_of_int (100 - i)))
    done
  done;
  Store.close st;
  let big = file_size path in
  let st, _ = Store.open_ path in
  check int "all 50 appends replayed" 50 (Store.stats st).Store.recovered_records;
  Store.checkpoint st;
  let s = Store.stats st in
  check int "one record per live key" 5 s.Store.log_records;
  check bool "log shrank" true (s.Store.log_bytes < big);
  check int "checkpoint counted" 1 s.Store.checkpoints;
  check bool "temp file gone" false (Sys.file_exists (path ^ ".tmp"));
  (* the swung log fd still appends to the right file *)
  Store.record st "key9" (entry 7.0);
  Store.close st;
  let st, _ = Store.open_ path in
  check int "compacted + appended entries all live" 6 (Store.length st);
  (match Store.find st "key3" with
  | Some e -> check (float 0.) "last write won the compaction" 90. e.Store.rating
  | None -> fail "key3 lost by checkpoint");
  Store.close st

(* --- the canonical key ------------------------------------------------- *)

let test_signature () =
  let sg ps = Store.signature ~tech:"T" ~entity:"E" ~params:ps in
  check string "parameter order is canonicalized"
    (sg [ ("a", Store.Num 1.); ("b", Store.Str "x") ])
    (sg [ ("b", Store.Str "x"); ("a", Store.Num 1.) ]);
  check bool "values distinguish" true
    (sg [ ("a", Store.Num 1.) ] <> sg [ ("a", Store.Num 2.) ]);
  check bool "numbers and strings distinguish" true
    (sg [ ("a", Store.Num 1.) ] <> sg [ ("a", Store.Str "1.") ]);
  check bool "entities distinguish" true
    (Store.signature ~tech:"T" ~entity:"E2" ~params:[] <> sg []);
  check bool "tech fingerprints distinguish" true
    (Store.tech_fingerprint "deck A" <> Store.tech_fingerprint "deck B")

(* --- Optimize ?store: exact hits skip the search, bytes stay equal ----- *)

let test_optimize_seeding () =
  Test_util.with_tmp_dir "amgst" @@ fun dir ->
  let path = Filename.concat dir "o.store" in
  let e, { Interp.base; steps } = recorded () in
  let key = key_of e in
  let baseline =
    let o, r, ord, evals = Optimize.optimize_local e ~name:"stack" ~base steps in
    check bool "store-less search evaluates" true (evals > 0);
    (fingerprint o, r, order_indices steps ord)
  in
  let run st =
    let o, r, ord, evals =
      Optimize.optimize_local e ~name:"stack" ~base ~store:(st, key) steps
    in
    ((fingerprint o, r, order_indices steps ord), evals)
  in
  let st, _ = Store.open_ path in
  let r1, evals1 = run st in
  check bool "miss searched" true (evals1 > 0);
  check int "search recorded its best order" 1 (Store.length st);
  let r2, evals2 = run st in
  check int "hit replays without evaluating" 0 evals2;
  check bool "hit counted" true ((Store.stats st).Store.hits >= 1);
  Store.close st;
  (* cold process restart: the hit comes off the disk *)
  let st, _ = Store.open_ path in
  let r3, evals3 = run st in
  check int "reopened hit replays without evaluating" 0 evals3;
  Store.close st;
  let eq = triple string (float 0.) (list int) in
  check eq "miss == store-less" baseline r1;
  check eq "hit == store-less" baseline r2;
  check eq "reopened hit == store-less" baseline r3;
  (* a different search mode never reuses this entry *)
  let st, _ = Store.open_ path in
  let _, _, _, bb_nodes = Optimize.optimize_bb e ~name:"stack" ~base ~store:(st, key) steps in
  check bool "bb keyed separately from local" true (bb_nodes > 0);
  Store.close st

(* --- record_if: racing writers never clobber a strictly-better record -- *)

let test_record_race () =
  Test_util.with_tmp_dir "amgst" @@ fun dir ->
  let path = Filename.concat dir "race.store" in
  let st, _ = Store.open_ path in
  let key = "contended" in
  (* The sequential contract first: only a strict improvement writes. *)
  check bool "first write lands" true (Store.record_better st key (entry 7.));
  check bool "worse write refused" false (Store.record_better st key (entry 9.));
  check bool "equal write refused" false (Store.record_better st key (entry 7.));
  check bool "better write lands" true (Store.record_better st key (entry 3.));
  (* Then the race: many domains interleave record_better on one key.
     Whatever the schedule, the surviving record is the minimum rating —
     the test-and-set runs under the handle lock, so a slow writer can
     never clobber a better record that landed after its read. *)
  let ratings = Array.init 64 (fun i -> float_of_int (1 + ((i * 37) mod 64))) in
  Amg_parallel.Pool.with_pool ~domains:4 (fun pool ->
      ignore
        (Amg_parallel.Pool.map_array pool
           (fun r -> ignore (Store.record_better st key (entry r)))
           ratings));
  let best st =
    match Store.find st key with Some e -> e.Store.rating | None -> nan
  in
  check (float 0.) "minimum rating survives the race" 1. (best st);
  Store.close st;
  (* The append-only log replays in write order, so the reopened handle
     converges to the same minimum. *)
  let st, diags = Store.open_ path in
  no_warnings "clean reopen after the race" diags;
  check (float 0.) "reopen replays to the minimum" 1. (best st);
  Store.close st

(* --- stale records are replaced, not just ignored ---------------------- *)

let test_stale_record_replaced () =
  Test_util.with_tmp_dir "amgst" @@ fun dir ->
  let path = Filename.concat dir "stale.store" in
  let e, { Interp.base; steps } = recorded () in
  let key = key_of e in
  let st, _ = Store.open_ path in
  (* A stale record: impossibly good rating, but its permutation no
     longer maps the step list (wrong arity — the module definition
     changed under the same key).  The lookup must reject it, and the
     finished search must replace it even though its honest rating is
     worse — otherwise every later run under this key re-pays the full
     search forever, while the diagnostic keeps promising replacement. *)
  ignore
    (Store.record st (key ^ "|m=local:r3:s1")
       { Store.rating = 0.; perm = [| 0 |]; meta = [] });
  Policy.reset ();
  let _, r1, _, evals1 =
    Optimize.optimize_local e ~name:"stack" ~base ~store:(st, key) steps
  in
  check bool "stale record forced a real search" true (evals1 > 0);
  check bool "stale record diagnosed" true
    (List.exists (fun d -> d.Diag.code = "store.stale_record") (Policy.drain ()));
  let _, r2, _, evals2 =
    Optimize.optimize_local e ~name:"stack" ~base ~store:(st, key) steps
  in
  check int "replacement record hits without searching" 0 evals2;
  check (float 0.) "replayed rating matches the search" r1 r2;
  Store.close st

(* --- the fault-schedule property --------------------------------------- *)

let store_sites = [ Inject.Store_read; Inject.Store_write; Inject.Store_fsync; Inject.Store_rename ]

let gen_store_schedule =
  let open QCheck2.Gen in
  list_size (int_range 1 5) (pair (oneofl store_sites) (int_range 1 12))

let print_schedule s =
  String.concat ","
    (List.map
       (fun (site, hit) ->
         Printf.sprintf "%s@%d" (Inject.site_to_string site) hit)
       s)

let is_store_diag d =
  String.length d.Diag.code > 6 && String.sub d.Diag.code 0 6 = "store."

let prop_store_fault_schedule =
  QCheck2.Test.make
    ~name:"any store fault schedule: byte-identical results, store.* diags"
    ~print:print_schedule ~count:30 gen_store_schedule (fun schedule ->
      Test_util.with_tmp_dir "amgsf" @@ fun dir ->
      let path = Filename.concat dir "f.store" in
      let e, { Interp.base; steps } = recorded () in
      let key = key_of e in
      let reference =
        let o, r, ord = Optimize.optimize e ~name:"stack" ~base steps in
        (fingerprint o, r, order_indices steps ord)
      in
      let run st =
        let o, r, ord =
          Optimize.optimize e ~name:"stack" ~base ~store:(st, key) steps
        in
        (fingerprint o, r, order_indices steps ord)
      in
      Policy.reset ();
      Inject.arm schedule;
      let odiags, r1, r2 =
        Fun.protect ~finally:Inject.disarm @@ fun () ->
        let st, odiags = Store.open_ path in
        Fun.protect ~finally:(fun () -> Store.close st) @@ fun () ->
        let r1 = run st in
        let r2 = run st in
        Store.checkpoint st;
        (odiags, r1, r2)
      in
      let reported = Policy.drain () in
      Policy.reset ();
      (* whatever the faults did to the file, it must reopen and serve the
         same bytes *)
      let st, rdiags = Store.open_ path in
      let r3 =
        Fun.protect ~finally:(fun () -> Store.close st) (fun () -> run st)
      in
      r1 = reference && r2 = reference && r3 = reference
      && List.for_all is_store_diag (odiags @ rdiags @ reported))

(* --- serve: warm restart ----------------------------------------------- *)

let pack_source =
  {|
ENT Pack(<W>)
  a = ContactRow(layer = "pdiff", W = W, L = 6, net = "a")
  b = ContactRow(layer = "pdiff", W = W + 2, L = 4, net = "b")
  c = ContactRow(layer = "poly", W = W - 1, L = 8, net = "c")
  d = ContactRow(layer = "pdiff", W = W + 1, L = 5, net = "d")
  compact(a, NORTH, align = "MIN")
  compact(b, NORTH, align = "MIN")
  compact(c, NORTH, align = "MIN")
  compact(d, NORTH, align = "MIN")
|}
  ^ Amg_lang.Stdlib.all

let pack ?id ?tenant ?(optimize = Wire.Local) () =
  Wire.build ?id ?tenant ~jobs:1 ~optimize ~format:Wire.Cif
    ~params:[ ("W", Wire.Pnum 4.) ]
    "Pack"

let get sock req =
  match Client.oneshot sock req with
  | Ok resp -> resp
  | Error e -> failf "request failed: %s" e

let payload (r : Wire.response) =
  match r.Wire.payload with Some p -> p | None -> fail "response: no payload"

let scrape_has sock needle =
  let r = get sock (Wire.metrics ()) in
  let hay = payload r in
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_warm_restart () =
  Test_util.with_tmp_dir "amgwr" @@ fun dir ->
  let store = Filename.concat dir "r.store" in
  let cold =
    Test_util.with_server ~source:pack_source ~store @@ fun _t sock ->
    get sock (pack ~id:"cold" ~tenant:"wr" ())
  in
  check int "cold request ok" Wire.status_ok cold.Wire.status;
  check bool "store persisted on drain" true (Sys.file_exists store);
  (* a fresh daemon: empty memo, empty prefix cache — only the store is
     warm, and it must answer byte-identically *)
  Test_util.with_server ~source:pack_source ~store @@ fun _t sock ->
  let warm = get sock (pack ~id:"warm" ~tenant:"wr" ()) in
  check int "warm request ok" Wire.status_ok warm.Wire.status;
  check string "byte-identical across restart" (payload cold) (payload warm);
  check bool "outcome labelled store-hit" true (scrape_has sock "store-hit");
  check bool "store metrics exported" true (scrape_has sock "store_records")

(* --- serve: surviving kill -9 ------------------------------------------ *)

(* The test binary lives in _build/default/test/; the daemon it spawns is
   its sibling in bin/ (declared as a dune dep), wherever dune put us. *)
let amgend_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name
       (Filename.concat "bin" "amgend.exe"))

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let spawn_amgend ~socket ~lib ~store =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process amgend_exe
      [| amgend_exe; "--socket"; socket; "--file"; lib; "--store"; store |]
      Unix.stdin null null
  in
  Unix.close null;
  pid

let test_sigkill_restart () =
  Test_util.with_tmp_dir "amgk" @@ fun dir ->
  let socket = Filename.concat dir "d.sock" in
  let store = Filename.concat dir "r.store" in
  let lib = Filename.concat dir "lib.amg" in
  write_file lib pack_source;
  let pid = spawn_amgend ~socket ~lib ~store in
  let killed = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !killed then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      end)
  @@ fun () ->
  (* ride through the daemon's startup with the client's bounded retry *)
  let c = Client.connect_retry ~attempts:40 ~delay:0.05 socket in
  Client.close c;
  let before = get socket (pack ~id:"populate" ~tenant:"e2e" ()) in
  check int "populate ok" Wire.status_ok before.Wire.status;
  (* kill -9 mid-load: a second cold search is in flight when the daemon
     dies, so the log's tail may be torn — recovery must not care *)
  let inflight =
    Thread.create
      (fun () ->
        ignore
          (Client.oneshot socket (pack ~id:"victim" ~tenant:"victim" ~optimize:Wire.Orders ())))
      ()
  in
  Thread.delay 0.05;
  Unix.kill pid Sys.sigkill;
  killed := true;
  (match Unix.waitpid [] pid with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _, _ -> fail "daemon did not die of SIGKILL");
  Thread.join inflight;
  (* the store survived the kill: it opens, and anything it recovered is
     intact (a torn tail from the in-flight append is expected and fine) *)
  let vs, _ = Store.verify store in
  check int "no corrupt records after kill -9" 0 vs.Store.corrupt_records;
  check bool "populated record survived" true (vs.Store.log_records >= 1);
  (* restart on the same socket and store: warm, byte-identical *)
  let t =
    Server.start (Server.config ~source:pack_source ~store socket)
  in
  Fun.protect ~finally:(fun () -> Server.stop t) @@ fun () ->
  let after = get socket (pack ~id:"survivor" ~tenant:"e2e" ()) in
  check int "post-restart request ok" Wire.status_ok after.Wire.status;
  check string "byte-identical across kill -9" (payload before) (payload after);
  check bool "post-restart outcome is store-hit (not cold)" true
    (scrape_has socket "store-hit")

(* --- client retry across a daemon restart ------------------------------ *)

let test_client_retry () =
  Test_util.with_tmp_dir "amgcr" @@ fun dir ->
  let socket = Filename.concat dir "d.sock" in
  let srv = ref None in
  let starter =
    Thread.create
      (fun () ->
        Thread.delay 0.25;
        srv := Some (Server.start (Server.config ~source:pack_source socket)))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join starter;
      Option.iter Server.stop !srv)
  @@ fun () ->
  (* nothing is listening yet: the retry loop must absorb ENOENT /
     ECONNREFUSED until the daemon comes up *)
  let retries = ref 0 in
  let c =
    Client.connect_retry ~attempts:60 ~delay:0.02 ~seed:7
      ~on_retry:(fun _ -> incr retries)
      socket
  in
  let resp =
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () -> Client.roundtrip c (Wire.ping ~id:"retry" ()))
  in
  check bool "client retried at least once" true (!retries > 0);
  match resp with
  | Ok r -> check int "ping answered after retries" Wire.status_ok r.Wire.status
  | Error e -> failf "ping failed: %s" e

let suite =
  [
    test_case "record/find round-trips across reopen" `Quick test_roundtrip;
    test_case "torn tail truncated silently, store repaired" `Quick
      test_torn_tail;
    test_case "torn header recovered" `Quick test_torn_header;
    test_case "corrupt interior record surfaced and skipped" `Quick
      test_corrupt_record;
    test_case "foreign or future files refuse to open" `Quick test_bad_header;
    test_case "checkpoint compacts to one record per key" `Quick
      test_checkpoint;
    test_case "signature canonicalizes parameters" `Quick test_signature;
    test_case "optimize ?store: hit skips search, bytes identical" `Quick
      test_optimize_seeding;
    test_case "record_if race keeps the strictly-better record" `Quick
      test_record_race;
    test_case "stale store record is replaced by the next search" `Quick
      test_stale_record_replaced;
    QCheck_alcotest.to_alcotest prop_store_fault_schedule;
    test_case "daemon warm restart answers from the store" `Quick
      test_warm_restart;
    test_case "kill -9 mid-load, restart warm and byte-identical" `Slow
      test_sigkill_restart;
    test_case "client rides through a daemon restart" `Quick test_client_retry;
  ]
