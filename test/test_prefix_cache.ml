(* The incremental-search machinery of DESIGN.md §10: Lobj snapshot /
   restore (rewinding must be indistinguishable from never having mutated,
   down to the spatial-index query results) and the prefix cache shared by
   the order optimizers (sharing may change wall time, never results). *)

module Units = Amg_geometry.Units
module Dir = Amg_geometry.Dir
module Rect = Amg_geometry.Rect
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Cif = Amg_layout.Cif
module Successive = Amg_compact.Successive
module Env = Amg_core.Env
module Optimize = Amg_core.Optimize
module Pcache = Amg_core.Prefix_cache

let um = Units.of_um
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Everything observable about a layout object: the CIF bytes, the shape
   store verbatim, the ports, and what the per-layer spatial indexes answer
   (near is served by the index, so stale index state shows up here even
   when the shape list looks right). *)
let fingerprint env o =
  let near_sig () =
    match Lobj.bbox o with
    | None -> []
    | Some b ->
        List.concat_map
          (fun layer ->
            List.map Shape.show
              (Lobj.near o ~layer b ~margin:(um 2.))
            @ List.map Shape.show
                (Lobj.near o ~layer
                   (Rect.of_size ~x:0 ~y:0 ~w:(um 3.) ~h:(um 3.))
                   ~margin:0))
          (Lobj.layers o)
  in
  String.concat "\n"
    (Cif.of_lobj ~tech:(Env.tech env) o
     :: Lobj.name o
     :: string_of_int (Lobj.shape_count o)
     :: List.map Shape.show (Lobj.shapes o)
    @ List.map Amg_layout.Port.show (Lobj.ports o)
    @ near_sig ())

let compact_into env main i (w_um, h_um, vert) =
  let o = Lobj.create (Printf.sprintf "o%d" i) in
  ignore
    (Lobj.add_shape o ~layer:"metal1"
       ~rect:
         (Rect.of_size ~x:0 ~y:0 ~w:(um (float_of_int w_um))
            ~h:(um (float_of_int h_um)))
       ~net:(Printf.sprintf "n%d" i) ());
  Successive.compact ~rules:(Env.rules env) ~into:main o
    (if vert then Dir.South else Dir.West)

let build env specs =
  let main = Lobj.create "m" in
  List.iteri (fun i sp -> compact_into env main i sp) specs;
  main

(* --- snapshot / restore --- *)

(* Real compactions (placements, auto-connect, variable-edge relaxation)
   after a snapshot, then restore: the object must be byte-identical both
   to its own pre-snapshot state and to a fresh rebuild of the prefix. *)
let prop_restore_is_rebuild =
  let placement = QCheck2.Gen.(tup3 (int_range 2 8) (int_range 2 8) bool) in
  let gen =
    QCheck2.Gen.(
      tup2
        (list_size (int_range 1 4) placement)
        (list_size (int_range 1 4) placement))
  in
  QCheck2.Test.make ~name:"restore rewinds to a byte-identical layout"
    ~count:25 gen (fun (base, extra) ->
      let env = Env.bicmos () in
      let main = build env base in
      let before = fingerprint env main in
      let s = Lobj.snapshot main in
      List.iteri (fun i sp -> compact_into env main (1000 + i) sp) extra;
      let mutated = fingerprint env main in
      Lobj.restore main s;
      Lobj.release main s;
      let after = fingerprint env main in
      let rebuilt = fingerprint env (build env base) in
      after = before && after = rebuilt
      && (extra = [] || mutated <> before))

let test_restore_repeatable () =
  let env = Env.bicmos () in
  let main = build env [ (4, 2, true); (2, 6, false) ] in
  let before = fingerprint env main in
  let s = Lobj.snapshot main in
  (* The same snapshot serves several rewinds — the optimizer restores to
     one depth once per sibling. *)
  List.iter
    (fun i ->
      compact_into env main (100 + i) ((i mod 5) + 2, 3, i mod 2 = 0);
      Lobj.restore main s;
      check_bool
        (Printf.sprintf "rewind %d identical" i)
        true
        (fingerprint env main = before))
    [ 0; 1; 2 ];
  Lobj.release main s;
  check_bool "still identical after release" true
    (fingerprint env main = before)

(* --- the prefix cache and the optimizer searches --- *)

let mk_steps n =
  List.init n (fun i ->
      let name = Printf.sprintf "s%d" i in
      let o = Lobj.create name in
      ignore
        (Lobj.add_shape o ~layer:"metal1"
           ~rect:
             (Rect.of_size ~x:0 ~y:0
                ~w:(um (float_of_int ((i mod 4) + 2)))
                ~h:(um (float_of_int (((i * 3) mod 5) + 2))))
           ~net:name ());
      Optimize.step o (if i mod 2 = 0 then Dir.South else Dir.West))

let uids = List.map (fun s -> s.Optimize.uid)

let domain_counts = Test_util.domain_counts

(* Entry accounting is conservative by construction: every admitted entry
   is either still live or was evicted exactly once. *)
let check_conservation what cache =
  let st = Pcache.stats cache in
  check_int
    (what ^ ": admitted = entries + evictions")
    st.Pcache.admitted
    (st.Pcache.entries + st.Pcache.evictions);
  let sum f = List.fold_left (fun a d -> a + f d) 0 st.Pcache.per_depth in
  check_int (what ^ ": per-depth hits sum") st.Pcache.hits
    (sum (fun d -> d.Pcache.d_hits));
  check_int (what ^ ": per-depth misses sum") st.Pcache.misses
    (sum (fun d -> d.Pcache.d_misses));
  check_int (what ^ ": per-depth evictions sum") st.Pcache.evictions
    (sum (fun d -> d.Pcache.d_evictions));
  check_int (what ^ ": per-depth entries sum") st.Pcache.entries
    (sum (fun d -> d.Pcache.d_entries));
  check_int (what ^ ": per-depth bytes sum") st.Pcache.bytes
    (sum (fun d -> d.Pcache.d_bytes))

(* Identical ratings, chosen orders, eval/node counts and layout bytes
   with the cache enabled and disabled, for every domain count — the
   cache may only change time. *)
let test_cache_independent_results () =
  let env = Env.bicmos () in
  let steps = mk_steps 5 in
  let fp o = Cif.of_lobj ~tech:(Env.tech env) o in
  let cache = Pcache.create () in
  let run_local cache d =
    Optimize.optimize_local env ~name:"p" ~domains:d ~restarts:2 ~cache steps
  in
  let run_bb cache d =
    Optimize.optimize_bb env ~name:"p" ~domains:d ~cache steps
  in
  let lo, lr, lord, le = run_local Pcache.disabled 1 in
  let bo, br, bord, bn = run_bb Pcache.disabled 1 in
  List.iter
    (fun d ->
      let o, r, ord, e = run_local cache d in
      check_bool (Printf.sprintf "local rating, %d domains" d) true (r = lr);
      Alcotest.(check (list int))
        (Printf.sprintf "local order, %d domains" d)
        (uids lord) (uids ord);
      check_int (Printf.sprintf "local evals, %d domains" d) le e;
      Alcotest.(check string)
        (Printf.sprintf "local layout bytes, %d domains" d)
        (fp lo) (fp o);
      let o, r, ord, n = run_bb cache d in
      check_bool (Printf.sprintf "bb rating, %d domains" d) true (r = br);
      Alcotest.(check (list int))
        (Printf.sprintf "bb order, %d domains" d)
        (uids bord) (uids ord);
      check_int (Printf.sprintf "bb nodes, %d domains" d) bn n;
      Alcotest.(check string)
        (Printf.sprintf "bb layout bytes, %d domains" d)
        (fp bo) (fp o))
    domain_counts;
  check_bool "the shared cache was actually used" true
    ((Pcache.stats cache).Pcache.hits > 0)

(* A search shares prefixes within itself, and a second identical search
   resumes from the first one's entries. *)
let test_warm_cache_hits_and_identity () =
  let env = Env.bicmos () in
  let steps = mk_steps 5 in
  let cache = Pcache.create () in
  let run () =
    Optimize.optimize_local env ~name:"p" ~domains:1 ~restarts:2 ~cache steps
  in
  let _, r1, ord1, e1 = run () in
  let cold = (Pcache.stats cache).Pcache.hits in
  check_bool "intra-search sharing hits" true (cold > 0);
  let _, r2, ord2, e2 = run () in
  check_bool "warm run hits more" true
    ((Pcache.stats cache).Pcache.hits > cold);
  check_bool "warm rating identical" true (r1 = r2);
  Alcotest.(check (list int)) "warm order identical" (uids ord1) (uids ord2);
  check_int "warm evals identical" e1 e2;
  check_conservation "warm" cache

(* Delta-chain materialization is a faithful rebuild: every prefix entry
   the searches left behind must materialize byte-identically (CIF bytes,
   shapes, ports, spatial-index answers) to a plain uncached rebuild of
   that prefix. *)
let prop_materialize_is_rebuild =
  let gen = QCheck2.Gen.(tup2 (int_range 3 6) (int_range 0 1000)) in
  QCheck2.Test.make ~name:"delta-chain materialization == full rebuild"
    ~count:15 gen (fun (n, salt) ->
      let env = Env.bicmos () in
      (* [salt] varies the shape sizes so runs exercise different
         geometries; uids are fresh per call by construction. *)
      let steps =
        List.init n (fun i ->
            let name = Printf.sprintf "q%d" i in
            let o = Lobj.create name in
            ignore
              (Lobj.add_shape o ~layer:"metal1"
                 ~rect:
                   (Rect.of_size ~x:0 ~y:0
                      ~w:(um (float_of_int (((i + salt) mod 5) + 2)))
                      ~h:(um (float_of_int (((i * 3) + salt) mod 6 + 2))))
                 ~net:name ());
            Optimize.step o
              (if (i + salt) mod 2 = 0 then Dir.South else Dir.West))
      in
      let cache = Pcache.create ~admit_depth:16 () in
      let scope = 2 * Env.stamp env in
      ignore (Optimize.optimize_local env ~name:"p" ~restarts:2 ~cache steps);
      ignore (Optimize.optimize_bb env ~name:"p" ~cache steps);
      (* Probe every prefix of a few concrete orders: the canonical one
         and its reversal (both explored by the searches above or plainly
         absent — absent prefixes must simply miss, not fail). *)
      let found = ref 0 in
      let probe order =
        List.iteri
          (fun k _ ->
            let prefix = List.filteri (fun i _ -> i <= k) order in
            match
              Pcache.find cache ~scope ~name:"probe" (uids prefix)
            with
            | None -> ()
            | Some m ->
                incr found;
                let fresh = Optimize.apply env ~name:"probe" prefix in
                if fingerprint env m <> fingerprint env fresh then
                  QCheck2.Test.fail_reportf
                    "prefix of depth %d materialized differently" (k + 1))
          order
      in
      probe steps;
      probe (List.rev steps);
      if !found = 0 then
        QCheck2.Test.fail_report "no prefix was ever found in the cache";
      check_conservation "property" cache;
      true)

(* The admission policy may change which entries exist — never results.
   A deliberately tight policy (only depth-1 anchors unconditional, deep
   entries needing repeat visits) must leave ratings, orders and eval
   counts identical to the uncached reference, for every domain count. *)
let test_admission_policy_determinism () =
  let env = Env.bicmos () in
  let steps = mk_steps 5 in
  let _, r_ref, ord_ref, e_ref =
    Optimize.optimize_local env ~name:"p" ~domains:1 ~restarts:2
      ~cache:Pcache.disabled steps
  in
  List.iter
    (fun d ->
      let cache = Pcache.create ~admit_depth:1 ~admit_visits:2 () in
      let _, r, ord, e =
        Optimize.optimize_local env ~name:"p" ~domains:d ~restarts:2 ~cache
          steps
      in
      check_bool (Printf.sprintf "rating, %d domains" d) true (r = r_ref);
      Alcotest.(check (list int))
        (Printf.sprintf "order, %d domains" d)
        (uids ord_ref) (uids ord);
      check_int (Printf.sprintf "evals, %d domains" d) e_ref e;
      let st = Pcache.stats cache in
      check_bool
        (Printf.sprintf "tight policy rejected deep stores, %d domains" d)
        true
        (st.Pcache.rejected > 0);
      check_conservation (Printf.sprintf "admission (%d domains)" d) cache)
    domain_counts

(* A budget far below the working set forces LRU evictions; results must
   still match the uncached search exactly. *)
let test_eviction_under_tiny_budget () =
  let env = Env.bicmos () in
  let steps = mk_steps 5 in
  let cache = Pcache.create ~budget_bytes:50_000 () in
  let _, r_ref, ord_ref, e_ref =
    Optimize.optimize_local env ~name:"p" ~domains:1 ~restarts:2
      ~cache:Pcache.disabled steps
  in
  let _, r, ord, e =
    Optimize.optimize_local env ~name:"p" ~domains:1 ~restarts:2 ~cache steps
  in
  let st = Pcache.stats cache in
  check_bool "evictions happened" true (st.Pcache.evictions > 0);
  check_bool "budget respected" true (st.Pcache.bytes <= 50_000);
  check_bool "rating unchanged" true (r = r_ref);
  Alcotest.(check (list int)) "order unchanged" (uids ord_ref) (uids ord);
  check_int "evals unchanged" e_ref e;
  check_conservation "tiny budget" cache

let suite =
  [
    QCheck_alcotest.to_alcotest prop_restore_is_rebuild;
    Alcotest.test_case "snapshot restores repeatedly" `Quick
      test_restore_repeatable;
    Alcotest.test_case "results identical with cache on/off, 1/2/4 domains"
      `Quick test_cache_independent_results;
    Alcotest.test_case "warm cache hits and returns identical results" `Quick
      test_warm_cache_hits_and_identity;
    QCheck_alcotest.to_alcotest prop_materialize_is_rebuild;
    Alcotest.test_case "admission policy never changes results" `Quick
      test_admission_policy_determinism;
    Alcotest.test_case "tiny budget evicts without changing results" `Quick
      test_eviction_under_tiny_budget;
  ]
