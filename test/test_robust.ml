(* Robustness layer: structured diagnostics, budgets, fault injection.

   The centrepiece is the fault-schedule property: under ANY injected fault
   schedule the pipeline either commits a DRC-clean layout or fails with a
   structured diagnostic — never a crash, never a dirty layout. *)

open Alcotest
module Env = Amg_core.Env
module Optimize = Amg_core.Optimize
module Budget = Amg_robust.Budget
module Diag = Amg_robust.Diag
module Inject = Amg_robust.Inject
module Policy = Amg_robust.Policy
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Interp = Amg_lang.Interp

(* The paper's Fig. 2/7 modules, inline so the tests need no data files.
   Stack is the optimization target: four top-level compacts, no shapes
   drawn between them. *)
let source =
  {|
ENT ContactRow(layer, <W>, <L>, <net>)
  INBOX(layer, W, L, net = net)
  INBOX("metal1", net = net)
  ARRAY("contact", net = net)

ENT Trans(<W>, <L>)
  TWORECTS("poly", "pdiff", W, L, neta = "g")
  polycon = ContactRow(layer = "poly", L = L, net = "g")
  diffcon = ContactRow(layer = "pdiff", W = W, net = "sd")
  compact(polycon, SOUTH, "poly", align = "CENTER")
  compact(diffcon, EAST, "pdiff", align = "MIN")

ENT Stack()
  a = ContactRow(layer = "pdiff", W = 4, L = 6, net = "a")
  b = ContactRow(layer = "pdiff", W = 6, L = 4, net = "b")
  c = ContactRow(layer = "poly", W = 3, L = 8, net = "c")
  d = ContactRow(layer = "pdiff", W = 5, L = 5, net = "d")
  compact(a, NORTH, align = "MIN")
  compact(b, NORTH, align = "MIN")
  compact(c, NORTH, align = "MIN")
  compact(d, NORTH, align = "MIN")
|}

let program = Amg_lang.Parser.parse_program ~file:"inline.amg" source
let env () = Env.bicmos ()

let fingerprint obj =
  String.concat ";" (List.map Shape.show (Lobj.shapes obj))
  ^ "|"
  ^ String.concat ";"
      (List.map
         (fun (p : Amg_layout.Port.t) -> Amg_layout.Port.show p)
         (Lobj.ports obj))

(* The amgen boundary's conversion, minus the CLI cases. *)
let convert = function
  | Env.Rejected msg -> Some (Diag.v Diag.Layout ~code:"layout.rejected" msg)
  | Inject.Fault (site, hit) -> Some (Inject.to_diag site hit)
  | Failure msg -> Some (Diag.v Diag.Cli ~code:"cli.error" msg)
  | _ -> None

(* --- the fault-schedule property --- *)

let gen_schedule =
  let open QCheck2.Gen in
  let site = oneofl Inject.all_sites in
  let fault = pair site (int_range 1 30) in
  oneof
    [
      list_size (int_range 0 4) fault;
      (* the CLI's seeded schedules, same distribution as --inject seed:N *)
      map (fun seed -> Inject.of_seed ~faults:3 seed) (int_range 0 10_000);
    ]

let print_schedule s =
  String.concat ","
    (List.map
       (fun (site, hit) ->
         Printf.sprintf "%s@%d" (Inject.site_to_string site) hit)
       s)

let prop_fault_schedule =
  QCheck2.Test.make ~name:"any fault schedule: DRC-clean layout or diagnostic"
    ~print:print_schedule ~count:220 gen_schedule (fun schedule ->
      Inject.arm schedule;
      Fun.protect ~finally:Inject.disarm (fun () ->
          let e = env () in
          match
            Diag.guard ~convert (fun () ->
                let obj = Interp.build e program "Trans" [ ("W", Amg_lang.Value.Num 10.); ("L", Amg_lang.Value.Num 5.) ] in
                (* bare modules carry no substrate taps, so run the geometric
                   checks (what `amgen check` runs without --latchup) *)
                let checks =
                  Amg_drc.Checker.[ Widths; Spacings; Enclosures; Extensions ]
                in
                Amg_drc.Checker.run ~checks ~tech:(Env.tech e) obj)
          with
          | Ok violations -> violations = []
          | Error _ -> true))

(* --- empty schedule: pure observation --- *)

let test_empty_schedule_identical () =
  let e = env () in
  let build () = Interp.build e program "Stack" [] in
  Inject.disarm ();
  let plain = fingerprint (build ()) in
  Inject.arm [];
  let armed =
    Fun.protect ~finally:Inject.disarm (fun () ->
        let fp = fingerprint (build ()) in
        check bool "probes were hit" true (Inject.hits Inject.Rule_lookup > 0);
        fp)
  in
  check string "armed-empty run is byte-identical" plain armed

(* --- budgets: degraded best-so-far is deterministic across domains --- *)

let recorded () =
  let e = env () in
  match Interp.build_recorded e program "Stack" [] with
  | _, Ok r -> (e, r)
  | _, Error why -> failwith ("Stack should be replayable: " ^ why)

let order_indices (steps : Optimize.step list) order =
  List.map
    (fun s ->
      let rec idx i = function
        | [] -> -1
        | x :: tl -> if x == s then i else idx (i + 1) tl
      in
      idx 0 steps)
    order

(* A clock that jumps past any deadline after [n] reads: with an injected
   clock, cancellation is only observed at coordinator boundaries, so the
   degraded result must be a pure function of [n]. *)
let clock_stop_after n =
  let reads = ref 0 in
  fun () ->
    incr reads;
    if !reads > n then 1.0e9 else 0.0

let test_deadline_deterministic () =
  let runs =
    List.map
      (fun domains ->
        let e, { Interp.base; steps } = recorded () in
        let budget =
          Budget.create ~deadline:1.0 ~clock:(clock_stop_after 2) ()
        in
        let obj, rating, order =
          Optimize.optimize e ~name:"stack" ~base ~domains ~budget steps
        in
        check bool
          (Printf.sprintf "domains=%d: degraded" domains)
          true (Budget.degraded budget);
        (fingerprint obj, rating, order_indices steps order))
      Test_util.domain_counts
  in
  match runs with
  | first :: rest ->
      List.iteri
        (fun i r ->
          check bool (Printf.sprintf "run %d equals run 0" (i + 1)) true
            (r = first))
        rest
  | [] -> assert false

let test_max_evals_deterministic () =
  List.iter
    (fun which ->
      let runs =
        List.map
          (fun domains ->
            let e, { Interp.base; steps } = recorded () in
            let budget = Budget.create ~max_evals:5 () in
            let obj, rating, order =
              match which with
              | `Orders ->
                  Optimize.optimize e ~name:"stack" ~base ~domains ~budget steps
              | `Bb ->
                  let o, r, ord, _ =
                    Optimize.optimize_bb e ~name:"stack" ~base ~domains ~budget
                      steps
                  in
                  (o, r, ord)
              | `Local ->
                  let o, r, ord, _ =
                    Optimize.optimize_local e ~name:"stack" ~base ~domains
                      ~budget steps
                  in
                  (o, r, ord)
            in
            check bool "degraded" true (Budget.degraded budget);
            (fingerprint obj, rating, order_indices steps order))
          Test_util.domain_counts
      in
      match runs with
      | first :: rest ->
          List.iter (fun r -> check bool "domain-independent" true (r = first)) rest
      | [] -> assert false)
    [ `Orders; `Bb; `Local ]

let test_unhit_budget_is_noop () =
  let e, { Interp.base; steps } = recorded () in
  let plain_obj, plain_rating, plain_order =
    Optimize.optimize e ~name:"stack" ~base steps
  in
  let budget = Budget.create ~max_evals:1_000_000 () in
  let obj, rating, order =
    Optimize.optimize e ~name:"stack" ~base ~budget steps
  in
  check bool "not degraded" false (Budget.degraded budget);
  check (float 1e-9) "same rating" plain_rating rating;
  check (list int) "same order" (order_indices steps plain_order)
    (order_indices steps order);
  check string "same layout" (fingerprint plain_obj) (fingerprint obj)

(* --- budgets, faults and the shared prefix cache --- *)

(* A search interrupted mid-way — by an eval cap or by an injected fault —
   must leave the shared prefix cache consistent: only fully applied
   prefixes are stored, so a later uncapped search resuming from that
   cache returns exactly what a cache-free search returns.  The steps are
   base-free so the cache scope is the environment stamp and entries are
   shared across the calls. *)
let test_interrupted_search_leaves_cache_consistent () =
  let e = env () in
  let um = Amg_geometry.Units.of_um in
  let steps =
    List.init 5 (fun i ->
        let name = Printf.sprintf "cs%d" i in
        let o = Lobj.create name in
        ignore
          (Lobj.add_shape o ~layer:"metal1"
             ~rect:
               (Amg_geometry.Rect.of_size ~x:0 ~y:0
                  ~w:(um (float_of_int ((i mod 3) + 2)))
                  ~h:(um (float_of_int (((i * 2) mod 4) + 2))))
             ~net:name ());
        Optimize.step o
          (if i mod 2 = 0 then Amg_geometry.Dir.South
           else Amg_geometry.Dir.West))
  in
  let cache = Amg_core.Prefix_cache.create () in
  (* 1: an eval cap stops the local search after a handful of rebuilds *)
  let budget = Budget.create ~max_evals:4 () in
  ignore
    (Optimize.optimize_local e ~name:"cs" ~domains:1 ~budget ~cache steps);
  check bool "cap actually hit" true (Budget.degraded budget);
  (* 2: a seeded fault schedule (plus one guaranteed early rule-lookup
     fault) aborts another search mid-placement *)
  Inject.arm (Inject.of_seed ~faults:2 7 @ [ (Inject.Rule_lookup, 3) ]);
  (try
     Fun.protect ~finally:Inject.disarm (fun () ->
         ignore (Optimize.optimize_bb e ~name:"cs" ~domains:1 ~cache steps))
   with Inject.Fault _ | Env.Rejected _ -> ());
  (* 3: the warm cache must now be indistinguishable from no cache *)
  let uids = List.map (fun (s : Optimize.step) -> s.Optimize.uid) in
  let o_ref, r_ref, ord_ref, n_ref =
    Optimize.optimize_bb e ~name:"cs" ~domains:1
      ~cache:Amg_core.Prefix_cache.disabled steps
  in
  let hits0 = (Amg_core.Prefix_cache.stats cache).Amg_core.Prefix_cache.hits in
  let o, r, ord, n = Optimize.optimize_bb e ~name:"cs" ~domains:1 ~cache steps in
  check bool "verification run resumed from the interrupted cache" true
    ((Amg_core.Prefix_cache.stats cache).Amg_core.Prefix_cache.hits > hits0);
  check (float 1e-9) "rating identical" r_ref r;
  check (list int) "order identical" (uids ord_ref) (uids ord);
  check int "node count identical" n_ref n;
  check string "layout byte-identical" (fingerprint o_ref) (fingerprint o)

(* --- diagnostics JSON --- *)

let sample_diags =
  [
    Diag.v Diag.Lang ~code:"lang.parse.expected"
      ~span:(Diag.span ~file:"a.amg" ~col:7 3)
      ~hint:"add a closing parenthesis"
      ~payload:[ ("token", ")" ) ]
      "expected \")\" but got newline";
    Diag.v ~severity:Diag.Warning Diag.Optimize ~code:"optimize.degraded"
      "search stopped\nafter 3 evaluations";
    Diag.v ~severity:Diag.Info Diag.Internal ~code:"internal.note"
      "control chars \x01 and backslash \\ and quote \"";
  ]

let test_diag_json_roundtrip () =
  List.iter
    (fun degraded ->
      let json = Diag.list_to_json ~degraded sample_diags in
      match Diag.list_of_json json with
      | Error msg -> failf "round-trip failed: %s" msg
      | Ok (d, diags) ->
          check bool "degraded preserved" degraded d;
          check int "all diagnostics back" (List.length sample_diags)
            (List.length diags);
          List.iter2
            (fun a b -> check bool "diag preserved" true (Diag.equal a b))
            sample_diags diags)
    [ false; true ]

let prop_diag_json_roundtrip =
  let open QCheck2.Gen in
  let str = string_size ~gen:(map Char.chr (int_range 1 126)) (int_range 0 20) in
  let gen =
    map
      (fun (code, msg, hint) ->
        Diag.v Diag.Tech ~code ?hint:(if hint = "" then None else Some hint) msg)
      (triple str str str)
  in
  QCheck2.Test.make ~name:"diag JSON round-trip on arbitrary strings" ~count:300
    gen (fun d ->
      match Diag.of_json (Diag.to_json d) with
      | Ok d2 -> Diag.equal d d2
      | Error _ -> false)

(* --- fault-injection plumbing --- *)

let test_parse_spec () =
  (match Inject.parse_spec "seed:42" with
  | Ok s -> check bool "seeded schedule non-empty" true (s <> [])
  | Error m -> failf "seed:42 rejected: %s" m);
  (match Inject.parse_spec "rule-lookup@3,pool-task@1" with
  | Ok s ->
      check bool "explicit sites" true
        (List.mem (Inject.Rule_lookup, 3) s && List.mem (Inject.Pool_task, 1) s)
  | Error m -> failf "site list rejected: %s" m);
  (match Inject.parse_spec "nonsense" with
  | Ok _ -> failf "nonsense accepted"
  | Error _ -> ());
  check bool "of_seed deterministic" true
    (Inject.of_seed 42 = Inject.of_seed 42)

let test_probe_fires_on_scheduled_hit () =
  Inject.arm [ (Inject.Drc_check, 2) ];
  Fun.protect ~finally:Inject.disarm (fun () ->
      Inject.probe Inject.Drc_check;
      (match Inject.probe Inject.Drc_check with
      | () -> failf "second hit should fault"
      | exception Inject.Fault (Inject.Drc_check, 2) -> ());
      (* counters keep running after a fault *)
      Inject.probe Inject.Drc_check;
      check int "three hits recorded" 3 (Inject.hits Inject.Drc_check))

(* --- pool cancellation --- *)

let test_map_array_cancel () =
  Amg_parallel.Pool.with_pool ~domains:1 (fun pool ->
      let started = ref 0 in
      let out =
        Amg_parallel.Pool.map_array_cancel pool
          ~cancel:(fun () -> !started >= 3)
          (fun x ->
            incr started;
            x * 2)
          (Array.init 10 Fun.id)
      in
      check int "three tasks ran" 3 !started;
      Array.iteri
        (fun i slot ->
          if i < 3 then check (option int) "completed slot" (Some (i * 2)) slot
          else check (option int) "skipped slot" None slot)
        out);
  Amg_parallel.Pool.with_pool ~domains:2 (fun pool ->
      let out =
        Amg_parallel.Pool.map_array_cancel pool
          ~cancel:(fun () -> false)
          (fun x -> x + 1)
          (Array.init 20 Fun.id)
      in
      Array.iteri
        (fun i slot -> check (option int) "no-cancel slot" (Some (i + 1)) slot)
        out)

(* --- CRLF and positioned front-end errors (satellite of the boundary) --- *)

let test_crlf_sources () =
  let e = env () in
  let crlf =
    String.concat "\r\n"
      (String.split_on_char '\n' source)
  in
  let obj = Interp.parse_and_build ~file:"crlf.amg" e crlf "Stack" [] in
  check bool "CRLF module source builds" true (Lobj.shape_count obj > 0);
  let deck = Amg_tech.Tech_file.to_string (Env.tech e) in
  let deck_crlf = String.concat "\r\n" (String.split_on_char '\n' deck) in
  let t = Amg_tech.Tech_file.parse_string ~file:"deck.tech" deck_crlf in
  check string "CRLF deck parses to the same technology"
    (Amg_tech.Technology.name (Env.tech e))
    (Amg_tech.Technology.name t)

let test_positioned_errors () =
  (match Amg_tech.Tech_file.parse_string ~file:"bad.tech" "garbage here" with
  | _ -> failf "bad deck accepted"
  | exception Diag.Fail d ->
      check string "tech file recorded" "bad.tech"
        (match d.Diag.span with Some s -> Option.value ~default:"" s.Diag.file | None -> "");
      check int "tech line recorded" 1 (Diag.line_of d));
  match Amg_lang.Parser.parse_program ~file:"bad.amg" "ENT X(\n" with
  | _ -> failf "bad program accepted"
  | exception Diag.Fail d ->
      check string "lang file recorded" "bad.amg"
        (match d.Diag.span with Some s -> Option.value ~default:"" s.Diag.file | None -> "");
      check bool "lang position recorded" true
        (Diag.line_of d >= 1 && Diag.col_of d >= 1)

(* --- fault schedules through the serving daemon --- *)

(* The same contract as [prop_fault_schedule], one layer up: schedules are
   armed per request via the wire protocol's inject spec, so the faults
   fire inside the daemon's request handling.  Every schedule must yield
   either a layout response or a structured diagnostic response — never a
   dropped connection, never a crashed daemon. *)
let test_fault_schedule_served () =
  let module Wire = Amg_robust.Wire in
  let module Client = Amg_serve.Client in
  Test_util.with_server @@ fun _t sock ->
  let test =
    QCheck2.Test.make
      ~name:"served fault schedule: layout or diagnostic, never a drop"
      ~print:print_schedule ~count:100 gen_schedule (fun schedule ->
        let req =
          Wire.build ~jobs:1 ~format:Wire.Cif
            ~inject:(print_schedule schedule)
            ~params:[ ("W", Wire.Pnum 10.); ("L", Wire.Pnum 5.) ]
            "Trans"
        in
        match Client.oneshot sock req with
        | Error _ -> false (* dropped connection *)
        | Ok resp ->
            (resp.Wire.status = Wire.status_ok && resp.Wire.payload <> None)
            || resp.Wire.status = Wire.status_diag
               && resp.Wire.diagnostics <> [])
  in
  QCheck2.Test.check_exn test;
  (* and the daemon is still standing afterwards *)
  match Client.oneshot sock (Wire.ping ()) with
  | Ok resp ->
      check int "daemon alive after the drill" Wire.status_ok resp.Wire.status
  | Error e -> failf "daemon dropped after the drill: %s" e

(* --- policy sink --- *)

let test_policy_sink () =
  Policy.reset ();
  check bool "default strict" false (Policy.permissive ());
  Policy.set_mode Policy.Permissive;
  check bool "permissive set" true (Policy.permissive ());
  Policy.report (Diag.v Diag.Compact ~code:"a" "first");
  Policy.report (Diag.v Diag.Compact ~code:"b" "second");
  let drained = Policy.drain () in
  check (list string) "drain order" [ "a"; "b" ]
    (List.map (fun d -> d.Diag.code) drained);
  check int "drain clears" 0 (List.length (Policy.drain ()));
  Policy.reset ();
  check bool "reset back to strict" false (Policy.permissive ())

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fault_schedule;
    test_case "empty schedule is pure observation" `Quick
      test_empty_schedule_identical;
    test_case "deadline: best-so-far identical for domains 1/2/4" `Quick
      test_deadline_deterministic;
    test_case "max-evals: degraded result identical for domains 1/2/4" `Quick
      test_max_evals_deterministic;
    test_case "unhit budget changes nothing" `Quick test_unhit_budget_is_noop;
    test_case "interrupted searches leave the prefix cache consistent" `Quick
      test_interrupted_search_leaves_cache_consistent;
    test_case "diag report JSON round-trip" `Quick test_diag_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_diag_json_roundtrip;
    test_case "inject spec parsing" `Quick test_parse_spec;
    test_case "probe fires on the scheduled hit" `Quick
      test_probe_fires_on_scheduled_hit;
    test_case "pool map_array_cancel" `Quick test_map_array_cancel;
    test_case "CRLF sources parse" `Quick test_crlf_sources;
    test_case "front-end errors carry file/line/col" `Quick
      test_positioned_errors;
    test_case "policy sink" `Quick test_policy_sink;
    test_case "served fault schedules: response or diagnostic, never a drop"
      `Quick test_fault_schedule_served;
  ]
