(* The procedural layout description language: lexer, parser, interpreter. *)

module Lexer = Amg_lang.Lexer
module Parser = Amg_lang.Parser
module Ast = Amg_lang.Ast
module Interp = Amg_lang.Interp
module Value = Amg_lang.Value
module Lobj = Amg_layout.Lobj
module Rect = Amg_geometry.Rect
module Env = Amg_core.Env
module Diag = Amg_robust.Diag

let um = Amg_geometry.Units.of_um
let env () = Env.bicmos ()

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- lexer --- *)

let toks src = List.map (fun t -> t.Lexer.tok) (Lexer.tokenize src)

let test_lexer_basics () =
  check_bool "assignment" true
    (toks "x = 1.5"
    = [ Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.NUMBER 1.5; Lexer.NEWLINE; Lexer.EOF ]);
  check_bool "call" true
    (toks "INBOX(\"poly\", W)"
    = [ Lexer.IDENT "INBOX"; Lexer.LPAREN; Lexer.STRING "poly"; Lexer.COMMA;
        Lexer.IDENT "W"; Lexer.RPAREN; Lexer.NEWLINE; Lexer.EOF ]);
  check_bool "keywords" true
    (toks "ENT IF ELSE END FOR TO CHOOSE ORELSE TRUE FALSE"
    = [ Lexer.KW_ENT; Lexer.KW_IF; Lexer.KW_ELSE; Lexer.KW_END; Lexer.KW_FOR;
        Lexer.KW_TO; Lexer.KW_CHOOSE; Lexer.KW_ORELSE; Lexer.KW_TRUE;
        Lexer.KW_FALSE; Lexer.NEWLINE; Lexer.EOF ]);
  check_bool "comments stripped" true (toks "// nothing here\n" = [ Lexer.EOF ]);
  check_bool "two-char ops" true
    (toks "a <= b" = [ Lexer.IDENT "a"; Lexer.OP "<="; Lexer.IDENT "b"; Lexer.NEWLINE; Lexer.EOF ]);
  check_bool "blank lines collapsed" true
    (toks "a\n\n\nb" = [ Lexer.IDENT "a"; Lexer.NEWLINE; Lexer.IDENT "b"; Lexer.NEWLINE; Lexer.EOF ])

let test_lexer_errors () =
  check_bool "unterminated string" true
    (match Lexer.tokenize "x = \"abc" with
    | exception Diag.Fail d -> Diag.line_of d = 1
    | _ -> false);
  check_bool "bad char" true
    (match Lexer.tokenize "x = §" with
    | exception Diag.Fail d -> Diag.line_of d = 1
    | _ -> false);
  check_bool "line numbers" true
    (match Lexer.tokenize "a\nb\nx = \"oops" with
    | exception Diag.Fail d -> Diag.line_of d = 3
    | _ -> false)

(* --- parser --- *)

let test_parser_entity () =
  let p = Parser.parse_program "ENT Foo(a, <b>)\n  INBOX(a)\n" in
  check "one entity" 1 (List.length p.Ast.entities);
  let e = List.hd p.Ast.entities in
  Alcotest.(check string) "name" "Foo" e.Ast.ent_name;
  check_bool "params" true
    (e.Ast.params
    = [ { Ast.pname = "a"; optional = false }; { Ast.pname = "b"; optional = true } ]);
  check "body" 1 (List.length e.Ast.body)

let test_parser_precedence () =
  let p = Parser.parse_program "x = 1 + 2 * 3\n" in
  match p.Ast.top with
  | [ Ast.Assign ("x", Ast.Binop (Ast.Add, Ast.Num 1., Ast.Binop (Ast.Mul, Ast.Num 2., Ast.Num 3.))) ] -> ()
  | _ -> Alcotest.fail "wrong parse tree"

let test_parser_keyword_args () =
  let p = Parser.parse_program "f(1, b = 2, \"s\")\n" in
  match p.Ast.top with
  | [ Ast.Expr (Ast.Call ("f", args)) ] ->
      check "arity" 3 (List.length args);
      check_bool "keyword marked" true
        (List.map (fun a -> a.Ast.arg_name) args = [ None; Some "b"; None ])
  | _ -> Alcotest.fail "wrong parse"

let test_parser_blocks () =
  let src = "IF x > 1\n  f()\nELSE\n  g()\nEND\nFOR i = 1 TO 3\n  h(i)\nEND\nCHOOSE\n  a()\nORELSE\n  b()\nEND\n" in
  let p = Parser.parse_program src in
  check "three statements" 3 (List.length p.Ast.top);
  (match p.Ast.top with
  | [ Ast.If (_, [ _ ], [ _ ]); Ast.For ("i", _, _, [ _ ]); Ast.Choose [ [ _ ]; [ _ ] ] ] -> ()
  | _ -> Alcotest.fail "wrong structure")

let test_parser_errors () =
  check_bool "missing paren" true
    (match Parser.parse_program "f(1\n" with
    | exception Diag.Fail _ -> true
    | _ -> false);
  check_bool "bad optional param" true
    (match Parser.parse_program "ENT F(<a)\n  f()\n" with
    | exception Diag.Fail d -> Diag.line_of d = 1
    | _ -> false)

(* --- interpreter --- *)

let build src entity args = Interp.parse_and_build (env ()) src entity args

let test_interp_arithmetic_and_print () =
  let ctx, _ =
    Interp.run (env ())
      (Parser.parse_program "PRINT(1 + 2 * 3, \"a\" + \"b\", 7 > 2 && !FALSE)\n")
  in
  Alcotest.(check string) "print output" "7 \"ab\" true \n" (Interp.output ctx)

let test_interp_division_by_zero () =
  check_bool "raises" true
    (match Interp.run (env ()) (Parser.parse_program "x = 1 / 0\n") with
    | exception Diag.Fail _ -> true
    | _ -> false)

let test_interp_unbound () =
  check_bool "unbound" true
    (match Interp.run (env ()) (Parser.parse_program "x = nosuch\n") with
    | exception Diag.Fail _ -> true
    | _ -> false)

let test_interp_contact_row () =
  let o =
    build Amg_lang.Stdlib.contact_row "ContactRow"
      [ ("layer", Value.Str "poly"); ("W", Value.Num 2.); ("L", Value.Num 10.) ]
  in
  check "shapes" 6 (Lobj.shape_count o);
  check "contacts" 4 (List.length (Lobj.shapes_on o "contact"));
  check_bool "bbox" true (Lobj.bbox o = Some (Rect.of_size ~x:0 ~y:0 ~w:(um 10.) ~h:(um 2.)))

let test_interp_optional_params () =
  (* Omitted optional parameters become Unit and primitives use their
     defaults (Fig. 3). *)
  let o = build Amg_lang.Stdlib.contact_row "ContactRow" [ ("layer", Value.Str "poly") ] in
  check "one contact" 1 (List.length (Lobj.shapes_on o "contact"));
  check_bool "missing required" true
    (match build Amg_lang.Stdlib.contact_row "ContactRow" [] with
    | exception Diag.Fail _ -> true
    | _ -> false)

let test_interp_copy_semantics () =
  (* trans2 = trans1 copies the data structure (§2.5): compacting the copy
     must not corrupt the original. *)
  let src = {|
ENT Two()
  INBOX("metal1", 2, 2, net = "a")
  other = Two2()
  other2 = other
  RENAME_NET(other2, "b", "c")
  compact(other, SOUTH)
  compact(other2, SOUTH)

ENT Two2()
  INBOX("metal1", 2, 2, net = "b")
|} in
  let o = build src "Two" [] in
  (* Three bars stacked with metal spacing. *)
  check "three shapes" 3 (Lobj.shape_count o);
  let ys =
    List.map (fun (s : Amg_layout.Shape.t) -> s.Amg_layout.Shape.rect.Rect.y0) (Lobj.shapes o)
    |> List.sort compare
  in
  check_bool "stacked" true (ys = [ 0; um 3.5; um 7. ])

let test_interp_for_loop () =
  let src = {|
ENT Stack(N)
  FOR i = 1 TO N
    row = Bar()
    compact(row, NORTH)
  END

ENT Bar()
  INBOX("metal1", 1.5, 4, net = "x")
|} in
  let o = build src "Stack" [ ("N", Value.Num 4.) ] in
  check "four bars" 4 (Lobj.shape_count o)

let test_interp_choose_rollback () =
  (* The failing branch adds geometry before rejecting; the frame must be
     rolled back so only the fallback branch's geometry remains. *)
  let src = {|
ENT F()
  CHOOSE
    INBOX("metal1", 2, 2, net = "keepme")
    INBOX("metal1", 0.5, 0.5, net = "toosmall")
  ORELSE
    INBOX("metal2", 2, 2, net = "fallback")
  END
|} in
  let o = build src "F" [] in
  check "only fallback" 1 (Lobj.shape_count o);
  check_bool "fallback layer" true (Lobj.layers o = [ "metal2" ]);
  check_bool "all rejected" true
    (match
       build "ENT G()\n  CHOOSE\n    INBOX(\"metal1\", 0.1, 1)\n  ORELSE\n    INBOX(\"metal1\", 0.2, 1)\n  END\n" "G" []
     with
    | exception Diag.Fail _ -> true
    | _ -> false)

let test_interp_diff_pair () =
  let o =
    build Amg_lang.Stdlib.all "DiffPair" [ ("W", Value.Num 10.); ("L", Value.Num 5.) ]
  in
  check "ports" 5 (List.length (Lobj.ports o));
  check "drc clean" 0
    (List.length
       (Amg_drc.Checker.run
          ~checks:[ Widths; Spacings; Enclosures; Extensions ]
          ~tech:(Env.tech (env ())) o));
  (* The paper's headline: the hierarchical description is drastically
     shorter than coordinate-level code. *)
  let dsl_lines =
    List.length
      (List.filter
         (fun l -> String.trim l <> "")
         (String.split_on_char '\n' Amg_lang.Stdlib.diff_pair))
  in
  check_bool "dsl much shorter than baseline" true
    (Amg_modules.Baseline.diff_pair_loc () > 2 * dsl_lines)

let test_interp_geometry_queries () =
  let src = {|
ENT Q()
  INBOX("metal1", 2, 10, net = "x")
  PRINT(WIDTH_OF(), HEIGHT_OF(), AREA_OF())

q = Q()
|} in
  let ctx, _ = Interp.run (env ()) (Parser.parse_program src) in
  Alcotest.(check string) "measured" "10 2 20 \n" (Interp.output ctx)

let test_interp_fit_row_variants () =
  (* Wide budget: a single 16 um row.  Tight budget: the branch rejects
     itself via WIDTH_OF/REJECT and the folded two-row variant is used. *)
  let wide =
    build Amg_lang.Stdlib.all "FitRow" [ ("L", Value.Num 16.); ("MaxW", Value.Num 20.) ]
  in
  let tight =
    build Amg_lang.Stdlib.all "FitRow" [ ("L", Value.Num 16.); ("MaxW", Value.Num 10.) ]
  in
  let dims o =
    let b = Lobj.bbox o in
    match b with
    | Some r -> (Amg_geometry.Rect.width r, Amg_geometry.Rect.height r)
    | None -> (0, 0)
  in
  let ww, wh = dims wide and tw, th = dims tight in
  check_bool "wide is a single row" true (ww = um 16. && wh = um 2.5);
  check_bool "tight is folded" true (tw <= um 10. && th > um 2.);
  check "folded is two rows" 2 (List.length (Lobj.shapes_on tight "pdiff"))

let test_interp_mirror () =
  let src = {|
ENT M()
  sub = Bar()
  MIRROR(sub, "Y")
  compact(sub, SOUTH)

ENT Bar()
  INBOX("metal1", 2, 6, net = "x")
|} in
  let o = build src "M" [] in
  check "one shape" 1 (Lobj.shape_count o)


(* --- routing builtins --- *)

let test_interp_wire () =
  let src = {|
ENT W()
  WIRE("metal1", 2, 0, 0, 10, 0, 10, 8, net = "sig")
|} in
  let o = build src "W" [] in
  (* Two segments, both on metal1, carrying the net. *)
  check "two segments" 2 (List.length (Lobj.shapes_on o "metal1"));
  List.iter
    (fun (sh : Amg_layout.Shape.t) ->
      Alcotest.(check (option string)) "net" (Some "sig") sh.Amg_layout.Shape.net)
    (Lobj.shapes_on o "metal1");
  (* Bounding box covers the L with the 2 um width centred on the line. *)
  let bb = Lobj.bbox_exn o in
  check "x0" (um (-1.)) bb.Amg_geometry.Rect.x0;
  check "x1" (um 11.) bb.Amg_geometry.Rect.x1;
  check "y1" (um 9.) bb.Amg_geometry.Rect.y1;
  (* Diagonal segments are rejected. *)
  check_bool "diagonal" true
    (match
       build {|
ENT W()
  WIRE("metal1", 2, 0, 0, 3, 4)
|} "W" []
     with
    | exception Diag.Fail d ->
        String.equal d.Diag.message "WIRE: segment (0,0)-(3,4) is diagonal"
    | _ -> false)

let test_interp_via_contact () =
  let src = {|
ENT V()
  VIA(5, 5, net = "a")
  CONTACT_AT(20, 5, "poly", net = "b")
|} in
  let o = build src "V" [] in
  check "one via cut" 1 (List.length (Lobj.shapes_on o "via"));
  check "one contact cut" 1 (List.length (Lobj.shapes_on o "contact"));
  check "m1 pads" 2 (List.length (Lobj.shapes_on o "metal1"));
  check "m2 pad" 1 (List.length (Lobj.shapes_on o "metal2"));
  check "poly landing" 1 (List.length (Lobj.shapes_on o "poly"));
  (* Via stack is centred at (5, 5). *)
  let cut = List.hd (Lobj.shapes_on o "via") in
  check "cut cx" (um 5.) (Amg_geometry.Rect.center_x cut.Amg_layout.Shape.rect);
  check "cut cy" (um 5.) (Amg_geometry.Rect.center_y cut.Amg_layout.Shape.rect)

let test_interp_connect () =
  let src = {|
ENT C()
  INBOX("metal1", 2, 2, net = "n")
  b = B()
  compact(b, EAST)
  PORT("pa", "n", "metal1")
  PORT("pb", "m", "metal1")
  CONNECT("pa", "pb", width = 1)

ENT B()
  INBOX("metal1", 2, 2, net = "m")
|} in
  let o = build src "C" [] in
  (* The two landing boxes plus at least one connecting segment. *)
  check_bool "wire added" true (List.length (Lobj.shapes_on o "metal1") >= 3);
  (* Unknown port is a runtime error. *)
  check_bool "missing port" true
    (match
       build {|
ENT C()
  INBOX("metal1", 2, 2, net = "n")
  PORT("pa", "n", "metal1")
  CONNECT("zz", "pa")
|} "C" []
     with
    | exception Diag.Fail d ->
        String.equal d.Diag.message "CONNECT: first port \"zz\" not found"
    | _ -> false)

let test_interp_numeric_builtins () =
  let src = {|
ENT N()
  w = MAX(2, 4)
  l = MIN(3, 5)
  INBOX("metal1", w + ABS(0 - 2), FLOOR(3.7) + CEIL(0.2), net = "x")
|} in
  (* INBOX's W is the row height, L the length (Fig. 3 convention):
     W = MAX(2,4)+ABS(-2) = 6 um tall, L = FLOOR(3.7)+CEIL(0.2) = 4 um long. *)
  let o = build src "N" [] in
  let bb = Lobj.bbox_exn o in
  check "height" (um 6.) (Amg_geometry.Rect.height bb);
  check "width" (um 4.) (Amg_geometry.Rect.width bb)

let test_interp_ladder_nets () =
  (* FOR + string concatenation derives the per-segment net names. *)
  let o =
    Amg_lang.Interp.parse_and_build (env ()) Amg_lang.Stdlib.all "Ladder"
      [ ("N", Amg_lang.Value.Num 3.); ("W", Amg_lang.Value.Num 2.) ]
  in
  List.iter
    (fun net ->
      check_bool ("has " ^ net) true (List.mem net (Lobj.nets o)))
    [ "tap1"; "tap2"; "tap3" ];
  check "three diff rows" 3 (List.length (Lobj.shapes_on o "pdiff"));
  check "drc clean" 0
    (List.length
       (Amg_drc.Checker.run
          ~checks:[ Amg_drc.Checker.Widths; Spacings; Enclosures; Extensions ]
          ~tech:(Env.tech (env ())) o))

let test_interp_recursion_guard () =
  let src = {|
ENT Loop()
  x = Loop()
|} in
  check_bool "runaway recursion caught" true
    (match build src "Loop" [] with
    | exception Diag.Fail d ->
        (* Mentions the depth limit rather than blowing the stack. *)
        String.equal d.Diag.code "lang.run.recursion-limit"
    | _ -> false)

(* --- printer round trip --- *)

let test_printer_roundtrip_fixed () =
  (* The shipped module sources survive parse -> print -> parse. *)
  List.iter
    (fun src ->
      let p1 = Parser.parse_program src in
      let printed = Amg_lang.Printer.program_str p1 in
      let p2 = Parser.parse_program printed in
      check_bool "roundtrip" true (Ast.equal_program p1 p2))
    [ Amg_lang.Stdlib.contact_row; Amg_lang.Stdlib.diff_pair;
      Amg_lang.Stdlib.fit_row; Amg_lang.Stdlib.all ]

(* Random programs: a small AST generator (well-formed by construction). *)
let gen_program =
  let open QCheck2.Gen in
  let ident = oneofl [ "x"; "y"; "w"; "len"; "row" ] in
  let rec gen_expr depth =
    if depth = 0 then
      oneof
        [ map (fun n -> Ast.Num (float_of_int n)) (int_range 0 99);
          map (fun s -> Ast.Str s) (oneofl [ "poly"; "metal1"; "a" ]);
          map (fun x -> Ast.Ident x) ident ]
    else
      oneof
        [ gen_expr 0;
          map3
            (fun op a b -> Ast.Binop (op, a, b))
            (oneofl [ Ast.Add; Ast.Mul; Ast.Lt; Ast.And ])
            (gen_expr (depth - 1)) (gen_expr (depth - 1));
          map (fun e -> Ast.Unop (Ast.Not, e)) (gen_expr (depth - 1));
          map2
            (fun name args ->
              Ast.Call (name, List.map (fun v -> { Ast.arg_name = None; arg_value = v }) args))
            (oneofl [ "f"; "g" ])
            (list_size (int_range 0 2) (gen_expr (depth - 1))) ]
  in
  let rec gen_stmt depth =
    if depth = 0 then
      oneof
        [ map2 (fun x e -> Ast.Assign (x, e)) ident (gen_expr 1);
          map (fun e -> Ast.Expr e) (gen_expr 1) ]
    else
      oneof
        [ gen_stmt 0;
          map3
            (fun c t e -> Ast.If (c, t, e))
            (gen_expr 1)
            (list_size (int_range 1 2) (gen_stmt (depth - 1)))
            (list_size (int_range 0 2) (gen_stmt (depth - 1)));
          map3
            (fun v (lo, hi) body -> Ast.For (v, lo, hi, body))
            ident
            (tup2 (gen_expr 0) (gen_expr 0))
            (list_size (int_range 1 2) (gen_stmt (depth - 1)));
          map
            (fun bs -> Ast.Choose bs)
            (list_size (int_range 1 3)
               (list_size (int_range 1 2) (gen_stmt (depth - 1)))) ]
  in
  let gen_entity =
    map3
      (fun name params body -> { Ast.ent_name = name; params; body })
      (oneofl [ "Foo"; "Bar" ])
      (list_size (int_range 0 3)
         (map2 (fun n o -> { Ast.pname = n; optional = o }) ident bool))
      (list_size (int_range 1 3) (gen_stmt 2))
  in
  map2
    (fun top entities -> { Ast.top; entities })
    (list_size (int_range 0 3) (gen_stmt 2))
    (list_size (int_range 0 2) gen_entity)

let prop_printer_roundtrip =
  QCheck2.Test.make ~name:"printer/parser roundtrip" ~count:300 gen_program
    (fun p ->
      let printed = Amg_lang.Printer.program_str p in
      match Parser.parse_program printed with
      | p2 -> Ast.equal_program p p2
      | exception _ -> false)


(* Fuzz: arbitrary input never crashes the front end — it parses or raises
   one of the two declared positioned errors. *)
let prop_parser_total =
  QCheck2.Test.make ~name:"parser total on arbitrary input" ~count:500
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 80))
    (fun src ->
      match Parser.parse_program src with
      | _ -> true
      | exception Diag.Fail d -> Diag.line_of d >= 1)

(* Keyword-shaped fuzz: random token soup from the language's own
   vocabulary exercises the parser's error paths much harder than raw
   bytes. *)
let prop_parser_total_tokens =
  let word =
    QCheck2.Gen.oneofl
      [ "ENT"; "IF"; "ELSE"; "END"; "FOR"; "TO"; "CHOOSE"; "ORELSE"; "=";
        "("; ")"; ","; "<"; ">"; "+"; "-"; "*"; "/"; "=="; "x"; "Foo"; "1";
        "2.5"; "\"s\""; "INBOX"; "compact"; "\n"; "\n  "; "TRUE" ]
  in
  QCheck2.Test.make ~name:"parser total on token soup" ~count:500
    QCheck2.Gen.(list_size (int_range 0 40) word)
    (fun words ->
      let src = String.concat " " words in
      match Parser.parse_program src with
      | _ -> true
      | exception Diag.Fail _ -> true)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser entity" `Quick test_parser_entity;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser keyword args" `Quick test_parser_keyword_args;
    Alcotest.test_case "parser blocks" `Quick test_parser_blocks;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "arithmetic and print" `Quick test_interp_arithmetic_and_print;
    Alcotest.test_case "division by zero" `Quick test_interp_division_by_zero;
    Alcotest.test_case "unbound identifier" `Quick test_interp_unbound;
    Alcotest.test_case "contact row (fig 2)" `Quick test_interp_contact_row;
    Alcotest.test_case "optional parameters (fig 3)" `Quick test_interp_optional_params;
    Alcotest.test_case "object copy semantics" `Quick test_interp_copy_semantics;
    Alcotest.test_case "for loop" `Quick test_interp_for_loop;
    Alcotest.test_case "choose rollback" `Quick test_interp_choose_rollback;
    Alcotest.test_case "diff pair (fig 7)" `Quick test_interp_diff_pair;
    Alcotest.test_case "geometry queries" `Quick test_interp_geometry_queries;
    Alcotest.test_case "fit-row topology variants" `Quick test_interp_fit_row_variants;
    Alcotest.test_case "mirror" `Quick test_interp_mirror;
    Alcotest.test_case "WIRE builtin" `Quick test_interp_wire;
    Alcotest.test_case "VIA and CONTACT_AT builtins" `Quick test_interp_via_contact;
    Alcotest.test_case "CONNECT builtin" `Quick test_interp_connect;
    Alcotest.test_case "numeric builtins" `Quick test_interp_numeric_builtins;
    Alcotest.test_case "ladder: FOR + net concat" `Quick test_interp_ladder_nets;
    Alcotest.test_case "recursion guard" `Quick test_interp_recursion_guard;
    Alcotest.test_case "printer roundtrip (shipped sources)" `Quick test_printer_roundtrip_fixed;
    QCheck_alcotest.to_alcotest prop_printer_roundtrip;
    QCheck_alcotest.to_alcotest prop_parser_total;
    QCheck_alcotest.to_alcotest prop_parser_total_tokens;
  ]
