(* The determinism suites exercise pools larger than this host's core
   count; lift the pool's oversubscription clamp so they get real worker
   domains (results are identical either way — that is what the suites
   assert). *)
let () = Amg_parallel.Pool.set_oversubscribe true

let () =
  Alcotest.run "amg"
    [
      ("geometry", Test_geometry.suite);
      ("tech", Test_tech.suite);
      ("layout", Test_layout.suite);
      ("sindex", Test_sindex.suite);
      ("compact", Test_compact.suite);
      ("drc", Test_drc.suite);
      ("latchup", Test_latchup.suite);
      ("core", Test_core.suite);
      ("prefix-cache", Test_prefix_cache.suite);
      ("parallel", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("metrics", Test_metrics.suite);
      ("lang", Test_lang.suite);
      ("route", Test_route.suite);
      ("modules", Test_modules.suite);
      ("circuit", Test_circuit.suite);
      ("amplifier", Test_amplifier.suite);
      ("extract", Test_extract.suite);
      ("tech-indep", Test_tech_indep.suite);
      ("robust", Test_robust.suite);
      ("store", Test_store.suite);
      ("sweep", Test_sweep.suite);
      ("serve", Test_serve.suite);
    ]
