(* The batch sweep engine: spec parsing, the Gray-code locality walk,
   dedup, the §7 determinism contract over every scheduling knob
   (domains, chunk size, shuffle, cache, store), failure rows, and the
   columnar file validator.

   The centrepiece is the determinism property: the emitted bytes are a
   pure function of (env, spec, source) — domains in {1,2,4}, chunks in
   {1,8,64}, shuffled or locality scheduling, cache or store on or off
   must all produce the identical file. *)

open Alcotest
module Env = Amg_core.Env
module Sweep = Amg_sweep.Sweep
module Store = Amg_store.Store
module Diag = Amg_robust.Diag
module Policy = Amg_robust.Policy
module Value = Amg_lang.Value

(* Three fully replayable top-level compacts per instance, parameterized
   on two axes — small enough that one property case sweeps a whole grid
   in milliseconds. *)
let source =
  {|
ENT ContactRow(layer, <W>, <L>, <net>)
  INBOX(layer, W, L, net = net)
  INBOX("metal1", net = net)
  ARRAY("contact", net = net)

ENT Pair(<W>, <L>)
  a = ContactRow(layer = "pdiff", W = W, L = L, net = "a")
  b = ContactRow(layer = "poly", W = L + 2, L = W, net = "b")
  c = ContactRow(layer = "pdiff", W = 4, L = 4, net = "c")
  compact(a, NORTH, align = "MIN")
  compact(b, NORTH, align = "MIN")
  compact(c, NORTH, align = "MIN")
|}

let spec_src =
  {|{ "entity": "Pair",
      "params": { "W": { "from": 3, "to": 6, "step": 1 }, "L": [4, 6] },
      "optimize": "local" }|}

let run_lines ?domains ?chunk ?shuffle ?cache ?store () =
  let buf = Buffer.create 2048 in
  let on_line l =
    Buffer.add_string buf l;
    Buffer.add_char buf '\n'
  in
  let env = Env.bicmos () in
  let res =
    Sweep.run ?domains ?chunk ?shuffle ?cache ?store ~on_line ~env ~source
      (Sweep.parse_spec spec_src)
  in
  (res, Buffer.contents buf)

(* --- spec parsing ------------------------------------------------------ *)

let bad_spec what src =
  match Sweep.parse_spec src with
  | _ -> failf "%s: expected sweep.bad-spec" what
  | exception Diag.Fail d -> check string what "sweep.bad-spec" d.Diag.code

let test_parse_spec () =
  let spec = Sweep.parse_spec spec_src in
  check int "grid size" 8 (Sweep.grid_size spec);
  check (list string) "axes are sorted by name" [ "L"; "W" ]
    (List.map (fun (a : Sweep.axis) -> a.Sweep.a_name) spec.Sweep.s_axes);
  bad_spec "not json" "nonsense";
  bad_spec "no entity" {|{ "params": { "W": [1] } }|};
  bad_spec "no params" {|{ "entity": "Pair" }|};
  bad_spec "empty axis" {|{ "entity": "Pair", "params": { "W": [] } }|};
  bad_spec "mixed axis types"
    {|{ "entity": "Pair", "params": { "W": [1, "x"] } }|};
  bad_spec "unknown mode"
    {|{ "entity": "Pair", "params": { "W": [1] }, "optimize": "best" }|};
  bad_spec "comma in value"
    {|{ "entity": "Pair", "params": { "W": ["a,b"] } }|};
  bad_spec "non-numeric step"
    {|{ "entity": "Pair", "params": { "W": { "from": 1, "to": 2, "step": "x" } } }|};
  bad_spec "backwards range"
    {|{ "entity": "Pair", "params": { "W": { "from": 5, "to": 1, "step": 1 } } }|}

(* --- the locality walk ------------------------------------------------- *)

(* Position of an instance's value on each axis, in axis order. *)
let digits (spec : Sweep.spec) inst =
  List.map2
    (fun (a : Sweep.axis) (_, v) ->
      let eq a b =
        match (a, b) with
        | Value.Num x, Value.Num y -> Float.equal x y
        | Value.Str x, Value.Str y -> String.equal x y
        | _ -> false
      in
      let rec idx i = function
        | [] -> -1
        | x :: tl -> if eq x v then i else idx (i + 1) tl
      in
      idx 0 a.Sweep.a_values)
    spec.Sweep.s_axes inst

let test_gray_walk () =
  let spec =
    Sweep.parse_spec
      {|{ "entity": "Pair",
          "params": { "W": [1, 2, 3], "L": [4, 5], "layer": ["a", "b", "c", "d"] } }|}
  in
  let insts = Sweep.instances spec in
  check int "walk covers the whole grid" (Sweep.grid_size spec)
    (List.length insts);
  check int "walk has no repeats"
    (List.length insts)
    (List.length (List.sort_uniq compare (List.map (digits spec) insts)));
  (* Consecutive instances differ on exactly one axis, by one position:
     the defining property of the reflected Gray walk, and the reason
     chunked neighbours share store access patterns. *)
  let rec adjacent = function
    | a :: (b :: _ as tl) ->
        let da = digits spec a and db = digits spec b in
        let diffs =
          List.filter (fun (x, y) -> x <> y) (List.combine da db)
        in
        (match diffs with
        | [ (x, y) ] -> check int "one-step move" 1 (abs (x - y))
        | _ -> failf "instances differ on %d axes" (List.length diffs));
        adjacent tl
    | _ -> ()
  in
  adjacent insts

let test_dedup () =
  let spec =
    Sweep.parse_spec
      {|{ "entity": "Pair", "params": { "W": [3, 4, 3], "L": [4] } }|}
  in
  check int "grid counts the duplicate" 3 (Sweep.grid_size spec);
  check int "walk drops the duplicate" 2 (List.length (Sweep.instances spec))

(* --- determinism: bytes are a pure function of the spec ---------------- *)

let reference = lazy (snd (run_lines ~domains:1 ~chunk:1 ()))

let prop_schedule_invariance =
  QCheck2.Test.make
    ~name:"rows byte-identical for any domains/chunk/shuffle/cache"
    ~print:(fun (d, c, sh, cache) ->
      Printf.sprintf "domains=%d chunk=%d shuffle=%b cache=%b" d c sh cache)
    ~count:12
    QCheck2.Gen.(
      quad (oneofl [ 1; 2; 4 ]) (oneofl [ 1; 8; 64 ]) bool bool)
    (fun (domains, chunk, shuffle, cache) ->
      let cache =
        if cache then None else Some Amg_core.Prefix_cache.disabled
      in
      let res, lines = run_lines ~domains ~chunk ~shuffle ?cache () in
      res.Sweep.failures = 0
      && String.equal (Lazy.force reference) lines)

let test_store_invariance () =
  Test_util.with_tmp_dir "amgsw" @@ fun dir ->
  let st, _ = Store.open_ (Filename.concat dir "s.store") in
  let cold, lines_cold = run_lines ~domains:2 ~store:st () in
  check int "cold run never hits the store" 0 cold.Sweep.store_hits;
  let warm, lines_warm = run_lines ~domains:2 ~store:st () in
  check int "warm run answers every row from the store" warm.Sweep.rows
    warm.Sweep.store_hits;
  Store.close st;
  check string "store-cold bytes match store-less" (Lazy.force reference)
    lines_cold;
  check string "store-warm bytes match store-less" (Lazy.force reference)
    lines_warm

(* --- failure rows ------------------------------------------------------ *)

let test_failure_rows () =
  let buf = Buffer.create 1024 in
  let env = Env.bicmos () in
  let spec =
    Sweep.parse_spec
      {|{ "entity": "Pair", "params": { "W": [4, -5], "L": [4] } }|}
  in
  Policy.reset ();
  Policy.set_mode Policy.Permissive;
  let res =
    Sweep.run
      ~on_line:(fun l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      ~env ~source spec
  in
  let reported = Policy.drain () in
  Policy.reset ();
  check int "both rows emitted" 2 res.Sweep.rows;
  check int "one failure" 1 res.Sweep.failures;
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  check int "header + columns + 2 rows" 4 (List.length lines - 1);
  let data = List.filteri (fun i _ -> i >= 2 && i < 4) lines in
  check int "one row is ok" 1
    (List.length
       (List.filter
          (fun l ->
            match String.split_on_char ',' l with
            | _ :: _ :: _ :: status :: _ -> status = "ok"
            | _ -> false)
          data));
  (* The failing row's diagnostic reaches the caller's sink after the
     run, tagged with its canonical row index. *)
  check bool "row-tagged error diagnostic reported" true
    (List.exists
       (fun d ->
         d.Diag.severity = Diag.Error
         && List.mem_assoc "row" d.Diag.payload)
       reported)

(* --- the columnar file validator --------------------------------------- *)

let test_check_file () =
  Test_util.with_tmp_dir "amgsw" @@ fun dir ->
  let path = Filename.concat dir "out.csv" in
  let write s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  let _, lines = run_lines ~domains:1 () in
  write lines;
  (match Sweep.check_file path with
  | Ok n -> check int "full file validates" 8 n
  | Error e -> failf "full file rejected: %s" e);
  (* A killed sweep keeps a prefix: fewer rows than announced is the
     documented crash shape and must validate. *)
  let all = String.split_on_char '\n' lines in
  let truncated =
    String.concat "\n" (List.filteri (fun i _ -> i < 5) all) ^ "\n"
  in
  write truncated;
  (match Sweep.check_file path with
  | Ok n -> check int "truncated file validates with fewer rows" 3 n
  | Error e -> failf "truncated file rejected: %s" e);
  (* More rows than announced, a malformed cell, or a tampered column
     line are corruption, not a crash shape. *)
  let data_row =
    List.find (fun l -> String.length l > 0) (List.filteri (fun i _ -> i = 2) all)
  in
  write (lines ^ data_row ^ "\n");
  check bool "extra row rejected" true (Result.is_error (Sweep.check_file path));
  write
    (String.concat "\n"
       (List.mapi
          (fun i l -> if i = 2 then "Pair,4,3,ok,not-a-number,,,,,,,," else l)
          all));
  check bool "non-numeric metric cell rejected" true
    (Result.is_error (Sweep.check_file path));
  write
    (String.concat "\n"
       (List.mapi (fun i l -> if i = 1 then l ^ ",extra" else l) all));
  check bool "tampered column line rejected" true
    (Result.is_error (Sweep.check_file path));
  write "not json\n";
  check bool "missing header rejected" true
    (Result.is_error (Sweep.check_file path))

let suite =
  [
    test_case "spec parses; malformed specs get sweep.bad-spec" `Quick
      test_parse_spec;
    test_case "locality walk is a gray code over the grid" `Quick
      test_gray_walk;
    test_case "duplicate grid points are dropped" `Quick test_dedup;
    QCheck_alcotest.to_alcotest prop_schedule_invariance;
    test_case "store on/off/warm never changes the bytes" `Quick
      test_store_invariance;
    test_case "per-instance failures become rows, sweep completes" `Quick
      test_failure_rows;
    test_case "check_file accepts crash prefixes, rejects corruption" `Quick
      test_check_file;
  ]
