(* Routing routines: paths, vias, port connection, symmetric plans. *)

module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Port = Amg_layout.Port
module Path = Amg_route.Path
module Wire = Amg_route.Wire
module Symmetric = Amg_route.Symmetric
module Env = Amg_core.Env

let um = Units.of_um
let env () = Env.bicmos ()

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_segment_rect () =
  let r = Path.segment_rect ~width:2 (0, 0) (10, 0) in
  check_bool "horizontal" true (r = Rect.make ~x0:(-1) ~y0:(-1) ~x1:11 ~y1:1);
  let v = Path.segment_rect ~width:2 (0, 0) (0, 10) in
  check_bool "vertical" true (v = Rect.make ~x0:(-1) ~y0:(-1) ~x1:1 ~y1:11);
  Alcotest.check_raises "diagonal" (Invalid_argument "Path.segment_rect: diagonal segment")
    (fun () -> ignore (Path.segment_rect ~width:2 (0, 0) (5, 5)))

let test_path () =
  let pts = [ (0, 0); (10, 0); (10, 10) ] in
  check "rects" 2 (List.length (Path.rects ~width:2 pts));
  check "length" 20 (Path.length pts);
  check "empty" 0 (List.length (Path.rects ~width:2 [ (1, 1) ]));
  (* Corner squares overlap so the bend is covered. *)
  match Path.rects ~width:2 pts with
  | [ a; b ] -> check_bool "corner covered" true (Rect.overlaps a b)
  | _ -> Alcotest.fail "two rects"

let test_crossings () =
  let horizontal = [ (0, 5); (10, 5) ] in
  let vertical = [ (5, 0); (5, 10) ] in
  check "one crossing" 1 (Path.crossings horizontal vertical);
  check "symmetric" 1 (Path.crossings vertical horizontal);
  check "parallel" 0 (Path.crossings horizontal [ (0, 7); (10, 7) ]);
  (* Touching at an endpoint is not a crossing. *)
  check "endpoint touch" 0 (Path.crossings horizontal [ (10, 0); (10, 10) ])

let test_via () =
  let e = env () in
  let o = Lobj.create "v" in
  let m1, m2, cut = Wire.via e o ~at:(0, 0) ~net:"n" () in
  (* Pads are cut + 2 * enclosure = 2 um; the cut is 1 um. *)
  check "m1 pad" (um 2.) (Rect.width m1.Shape.rect);
  check "m2 pad" (um 2.) (Rect.width m2.Shape.rect);
  check "cut" (um 1.) (Rect.width cut.Shape.rect);
  check_bool "concentric" true
    (Rect.contains_rect m1.Shape.rect cut.Shape.rect
    && Rect.contains_rect m2.Shape.rect cut.Shape.rect);
  check "drc" 0
    (List.length
       (Amg_drc.Checker.run ~checks:[ Widths; Spacings; Enclosures ]
          ~tech:(Env.tech e) o))

let test_contact_at () =
  let e = env () in
  let o = Lobj.create "c" in
  let land_, m1, cut = Wire.contact_at e o ~at:(0, 0) ~landing:"pdiff" ~net:"n" () in
  check "landing pad" (um 2.5) (Rect.width land_.Shape.rect);
  check "metal pad" (um 2.) (Rect.width m1.Shape.rect);
  check "cut" (um 1.) (Rect.width cut.Shape.rect);
  check "drc" 0
    (List.length
       (Amg_drc.Checker.run ~checks:[ Widths; Spacings; Enclosures ]
          ~tech:(Env.tech e) o))

let test_connect_ports () =
  let e = env () in
  let o = Lobj.create "w" in
  let pa = Port.make ~name:"a" ~net:"n" ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.)) in
  let pb = Port.make ~name:"b" ~net:"n" ~layer:"metal1" ~rect:(Rect.of_size ~x:(um 10.) ~y:(um 10.) ~w:(um 2.) ~h:(um 2.)) in
  let shapes = Wire.connect_ports e o ~width:(um 2.) pa pb in
  check "two segments (L)" 2 (List.length shapes);
  (* Straight connection when aligned. *)
  let o2 = Lobj.create "w2" in
  let pc = Port.make ~name:"c" ~net:"n" ~layer:"metal1" ~rect:(Rect.of_size ~x:(um 10.) ~y:0 ~w:(um 2.) ~h:(um 2.)) in
  check "one segment" 1 (List.length (Wire.connect_ports e o2 ~width:(um 2.) pa pc));
  (* Different layers rejected. *)
  let pd = Port.make ~name:"d" ~net:"n" ~layer:"metal2" ~rect:pa.Port.rect in
  check_bool "layer mismatch" true
    (match Wire.connect_ports e o pa pd with
    | exception Env.Rejected _ -> true
    | _ -> false)

let test_symmetric () =
  let axis_x = um 50. in
  let left =
    [ Symmetric.plan ~layer:"metal2" ~width:(um 2.) [ (um 10., 0); (um 10., um 20.) ] ]
  in
  let right = List.map (Symmetric.mirror_plan ~axis_x) left in
  check_bool "is symmetric" true (Symmetric.is_symmetric ~axis_x ~left ~right);
  check_bool "not symmetric" false
    (Symmetric.is_symmetric ~axis_x ~left
       ~right:[ Symmetric.plan ~layer:"metal2" ~width:(um 2.) [ (0, 0); (0, um 20.) ] ]);
  let o = Lobj.create "sym" in
  let shapes = Symmetric.draw_pair o ~axis_x ~net_left:"l" ~net_right:"r" left in
  check "both sides drawn" 2 (List.length shapes);
  (* The mirrored copy is the reflection of the original. *)
  (match shapes with
  | [ a; b ] ->
      check_bool "mirrored" true
        (Amg_geometry.Transform.mirror_rect_x ~axis_x a.Shape.rect = b.Shape.rect)
  | _ -> Alcotest.fail "two shapes");
  check "crossing count helper" 0 (Symmetric.crossing_count left right)

let test_global_comb_route () =
  let e = env () in
  (* Two banks of pins on either side of a channel; two nets. *)
  let obj = Lobj.create "board" in
  let mk_pin ~net ~x ~y =
    let rect = Rect.of_size ~x ~y ~w:(um 4.) ~h:(um 2.) in
    let _ = Lobj.add_shape obj ~layer:"metal1" ~rect ~net () in
    ignore (Lobj.add_port obj ~name:net ~net ~layer:"metal1" ~rect)
  in
  mk_pin ~net:"a" ~x:0 ~y:0;
  mk_pin ~net:"a" ~x:(um 40.) ~y:(um 60.);
  mk_pin ~net:"b" ~x:(um 20.) ~y:0;
  mk_pin ~net:"b" ~x:(um 60.) ~y:(um 60.);
  let channels = [ { Amg_route.Global.ch_y0 = um 10.; ch_y1 = um 50. } ] in
  let r =
    Amg_route.Global.comb_route e obj ~nets:[ "a"; "b" ] ~channels
      ~spine_x0:(um 80.) ()
  in
  check_bool "both routed" true (r.Amg_route.Global.routed = [ "a"; "b" ]);
  (* Physically connected and legal. *)
  let conn = Amg_extract.Connectivity.build ~tech:(Env.tech e) obj in
  check "a one node" 1 (Amg_extract.Connectivity.label_node_count conn "a");
  check "b one node" 1 (Amg_extract.Connectivity.label_node_count conn "b");
  check "no shorts" 0 (List.length (Amg_extract.Connectivity.shorts conn));
  check "drc" 0
    (List.length
       (Amg_drc.Checker.run ~checks:[ Widths; Spacings; Enclosures ]
          ~tech:(Env.tech e) obj))

let test_global_too_few_pins () =
  let e = env () in
  let obj = Lobj.create "board" in
  let rect = Rect.of_size ~x:0 ~y:0 ~w:(um 4.) ~h:(um 2.) in
  let _ = Lobj.add_shape obj ~layer:"metal1" ~rect ~net:"x" () in
  let _ = Lobj.add_port obj ~name:"x" ~net:"x" ~layer:"metal1" ~rect in
  let r =
    Amg_route.Global.comb_route e obj ~nets:[ "x" ]
      ~channels:[ { Amg_route.Global.ch_y0 = um 10.; ch_y1 = um 30. } ]
      ~spine_x0:(um 50.) ()
  in
  check_bool "skipped" true
    (r.Amg_route.Global.unrouted = [ ("x", "fewer than two pins") ])

let test_track_sharing () =
  let e = env () in
  (* Two nets with disjoint x extents share one track; a third overlapping
     both needs a second. *)
  let build () =
    let obj = Lobj.create "board" in
    let mk ~net ~x ~y =
      let rect = Rect.of_size ~x ~y ~w:(um 4.) ~h:(um 2.) in
      let _ = Lobj.add_shape obj ~layer:"metal1" ~rect ~net () in
      ignore (Lobj.add_port obj ~name:net ~net ~layer:"metal1" ~rect)
    in
    mk ~net:"a" ~x:0 ~y:0;
    mk ~net:"a" ~x:(um 20.) ~y:(um 60.);
    mk ~net:"b" ~x:(um 60.) ~y:0;
    mk ~net:"b" ~x:(um 80.) ~y:(um 60.);
    mk ~net:"c" ~x:(um 10.) ~y:0;
    mk ~net:"c" ~x:(um 70.) ~y:(um 60.);
    obj
  in
  let channels = [ { Amg_route.Global.ch_y0 = um 10.; ch_y1 = um 50. } ] in
  let obj1 = build () in
  let shared =
    Amg_route.Global.comb_route e obj1 ~share_tracks:true ~nets:[ "a"; "b"; "c" ]
      ~channels ~spine_x0:(um 100.) ()
  in
  check "all routed" 3 (List.length shared.Amg_route.Global.routed);
  check "two tracks suffice" 2 shared.Amg_route.Global.tracks;
  let conn = Amg_extract.Connectivity.build ~tech:(Env.tech e) obj1 in
  List.iter
    (fun n -> check (n ^ " one node") 1 (Amg_extract.Connectivity.label_node_count conn n))
    [ "a"; "b"; "c" ];
  check "no shorts" 0 (List.length (Amg_extract.Connectivity.shorts conn));
  (* Without sharing each net gets its own track. *)
  let obj2 = build () in
  let plain =
    Amg_route.Global.comb_route e obj2 ~nets:[ "a"; "b"; "c" ] ~channels
      ~spine_x0:(um 100.) ()
  in
  check "three tracks otherwise" 3 plain.Amg_route.Global.tracks

let test_drop_anchors_on_real_metal () =
  let e = env () in
  (* A hollow port (hull of two separated bars): the drop must anchor on an
     actual bar, not the hollow centre. *)
  let obj = Lobj.create "h" in
  let r1 = Rect.of_size ~x:0 ~y:0 ~w:(um 3.) ~h:(um 2.) in
  let r2 = Rect.of_size ~x:(um 20.) ~y:0 ~w:(um 3.) ~h:(um 2.) in
  let _ = Lobj.add_shape obj ~layer:"metal1" ~rect:r1 ~net:"n" () in
  let _ = Lobj.add_shape obj ~layer:"metal1" ~rect:r2 ~net:"n" () in
  let hull = Rect.hull r1 r2 in
  let _ = Lobj.add_port obj ~name:"n" ~net:"n" ~layer:"metal1" ~rect:hull in
  (match
     Amg_route.Global.drop e obj ~net:"n" ~track_y:(um 20.)
       (Lobj.port_exn obj "n")
   with
  | Ok x ->
      check_bool "anchored on a bar" true
        (Rect.contains_point r1 ~x ~y:(um 1.) || Rect.contains_point r2 ~x ~y:(um 1.))
  | Error e -> Alcotest.failf "drop failed: %s" e);
  let conn = Amg_extract.Connectivity.build ~tech:(Env.tech e) obj in
  check_bool "riser attached" true
    (Amg_extract.Connectivity.label_node_count conn "n" <= 2)


(* --- detailed channel router --- *)

module Channel = Amg_route.Channel

let test_channel_left_edge () =
  (* Disjoint intervals share a track; density is achieved. *)
  let spec =
    {
      Channel.top = [ (um 0., "a"); (um 10., "b"); (um 20., "c"); (um 40., "a") ];
      bottom = [ (um 5., "a"); (um 15., "b"); (um 30., "d"); (um 45., "d") ];
    }
  in
  check "density" 2 (Channel.density spec);
  let tracks, n = Channel.assign spec in
  check "tracks = density" 2 n;
  check "all nets placed" 4 (List.length tracks);
  (* b, c, d have pairwise-disjoint intervals: all on one track. *)
  let t net = List.assoc net tracks in
  check_bool "b c d share" true (t "b" = t "c" && t "c" = t "d");
  check_bool "a separate" true (t "a" <> t "b")

let test_channel_vcg () =
  (* A column with both pins orders the trunks. *)
  let spec =
    {
      Channel.top = [ (um 0., "x"); (um 20., "x") ];
      bottom = [ (um 0., "y"); (um 20., "y") ];
    }
  in
  check_bool "edge x above y" true (List.mem ("x", "y") (Channel.vcg spec));
  let tracks, n = Channel.assign spec in
  (* Overlapping intervals AND a vertical constraint: two tracks, x above. *)
  check "two tracks" 2 n;
  check_bool "x on top" true
    (List.assoc "x" tracks < List.assoc "y" tracks);
  (* Cyclic constraints are rejected. *)
  let cyc =
    { Channel.top = [ (0, "p"); (um 1., "q") ];
      bottom = [ (0, "q"); (um 1., "p") ] }
  in
  check_bool "cycle" true
    (match Channel.assign cyc with
    | exception Amg_robust.Diag.Fail d ->
        String.equal d.Amg_robust.Diag.message
          "cyclic vertical constraints (needs doglegs)"
    | _ -> false);
  (* Colliding pins on one edge are rejected. *)
  let clash =
    { Channel.top = [ (0, "p"); (0, "q") ]; bottom = [] }
  in
  check_bool "clash rejected" true
    (match Channel.assign clash with
    | exception Amg_robust.Diag.Fail _ -> true
    | _ -> false)

let test_channel_route_geometry () =
  let env = env () in
  let spec =
    {
      Channel.top = [ (um 0., "a"); (um 10., "b"); (um 20., "c"); (um 40., "a") ];
      bottom = [ (um 5., "a"); (um 15., "b"); (um 30., "d"); (um 45., "d") ];
    }
  in
  let obj = Amg_layout.Lobj.create "chan" in
  let r = Channel.route env obj ~spec ~y_top:(um 40.) ~y_bottom:0 ~x0:0 in
  check "two tracks" 2 r.Channel.track_count;
  (* Rule-clean and every net one electrical node. *)
  let tech = Env.tech env in
  check "drc" 0
    (List.length
       (Amg_drc.Checker.run
          ~checks:[ Amg_drc.Checker.Widths; Spacings; Enclosures ] ~tech obj));
  let conn = Amg_extract.Connectivity.build ~tech obj in
  List.iter
    (fun net ->
      check ("one node " ^ net) 1
        (List.length (Amg_extract.Connectivity.label_components conn net)))
    (Channel.nets_of spec);
  (* Too-short channels are refused rather than mis-built. *)
  check_bool "short refused" true
    (match
       Channel.route env (Amg_layout.Lobj.create "x") ~spec ~y_top:(um 5.)
         ~y_bottom:0 ~x0:0
     with
    | exception Amg_robust.Diag.Fail _ -> true
    | _ -> false)


let test_channel_doglegs () =
  let env = env () in
  (* Whole-net cyclic VCG, breakable by splitting net a at its internal
     pin: the classic dogleg case. *)
  let spec =
    {
      Channel.top = [ (um 0., "a"); (um 20., "b") ];
      bottom = [ (um 0., "b"); (um 10., "a"); (um 20., "a") ];
    }
  in
  check_bool "plain is cyclic" true
    (match Channel.assign spec with
    | exception Amg_robust.Diag.Fail _ -> true
    | _ -> false);
  let segs, tracks, n = Channel.assign_dogleg spec in
  check "three segments" 3 (List.length segs);
  check "three tracks" 3 n;
  (* a#0 above b, b above a#1 — the cycle resolved across the segments. *)
  check_bool "a0 above b" true (List.assoc "a#0" tracks < List.assoc "b#0" tracks);
  check_bool "b above a1" true (List.assoc "b#0" tracks < List.assoc "a#1" tracks);
  (* The geometry is rule-clean and each net one node despite the split. *)
  let obj = Amg_layout.Lobj.create "dog" in
  let _ = Channel.route_dogleg env obj ~spec ~y_top:(um 40.) ~y_bottom:0 ~x0:0 in
  let tech = Env.tech env in
  check "drc" 0
    (List.length
       (Amg_drc.Checker.run
          ~checks:[ Amg_drc.Checker.Widths; Spacings; Enclosures ] ~tech obj));
  let conn = Amg_extract.Connectivity.build ~tech obj in
  List.iter
    (fun net ->
      check ("one node " ^ net) 1
        (List.length (Amg_extract.Connectivity.label_components conn net)))
    [ "a"; "b" ]

let test_channel_dogleg_density_escape () =
  (* A long net pinned at both ends plus short nets under it: without
     doglegs the long net occupies one full track; with doglegs its two
     spans share tracks with the short nets. *)
  let spec =
    {
      Channel.top =
        [ (um 0., "long"); (um 20., "long"); (um 40., "long") ];
      bottom = [ (um 10., "s1"); (um 30., "s2") ];
    }
  in
  let _, plain = Channel.assign spec in
  let _, _, dog = Channel.assign_dogleg spec in
  check_bool "doglegs never worse" true (dog <= plain)


(* Drawn geometry of the mirrored pair is an exact reflection: every
   left-net rectangle has its mirror twin on the right net. *)
let prop_symmetric_geometry =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 4)
        (list_size (int_range 2 5) (tup2 (int_range 0 20) (int_range 0 20))))
  in
  QCheck2.Test.make ~name:"mirrored pair geometry exact" ~count:200 gen
    (fun raw_plans ->
      (* Orthogonalise each random point list (alternate h/v moves). *)
      let orth pts =
        let _, acc =
          List.fold_left
            (fun ((px, py), acc) (x, y) ->
              match acc with
              | [] -> ((x, y), [ (um (float_of_int x), um (float_of_int y)) ])
              | _ ->
                  let nx, ny =
                    if List.length acc mod 2 = 1 then (x, py) else (px, y)
                  in
                  ((nx, ny), (um (float_of_int nx), um (float_of_int ny)) :: acc))
            ((0, 0), []) pts
        in
        List.rev acc
      in
      let plans =
        List.map
          (fun pts -> Symmetric.plan ~layer:"metal1" ~width:(um 2.) (orth pts))
          raw_plans
      in
      let axis_x = um 50. in
      let obj = Amg_layout.Lobj.create "sym" in
      let _ =
        Symmetric.draw_pair obj ~axis_x ~net_left:"l" ~net_right:"r" plans
      in
      let rects net =
        List.filter_map
          (fun (s : Amg_layout.Shape.t) ->
            if s.Amg_layout.Shape.net = Some net then Some s.Amg_layout.Shape.rect
            else None)
          (Amg_layout.Lobj.shapes obj)
        |> List.sort compare
      in
      let mirror (r : Amg_geometry.Rect.t) =
        Amg_geometry.Rect.make
          ~x0:((2 * axis_x) - r.Amg_geometry.Rect.x1)
          ~x1:((2 * axis_x) - r.Amg_geometry.Rect.x0)
          ~y0:r.Amg_geometry.Rect.y0 ~y1:r.Amg_geometry.Rect.y1
      in
      rects "r" = List.sort compare (List.map mirror (rects "l")))

(* Track assignment is always legal: no two nets with overlapping intervals
   share a track, every VCG edge is respected, and the track count never
   beats the density lower bound. *)
let prop_channel_legal =
  let gen =
    QCheck2.Gen.(
      tup2
        (list_size (int_range 1 8) (tup2 (int_range 0 9) (int_range 0 4)))
        (list_size (int_range 1 8) (tup2 (int_range 0 9) (int_range 0 4))))
  in
  QCheck2.Test.make ~name:"channel assignment legal" ~count:300 gen
    (fun (top_raw, bot_raw) ->
      let dedup pins =
        (* One pin per column per edge (the router rejects collisions). *)
        List.sort_uniq (fun (x, _) (x', _) -> compare x x') pins
      in
      let net i = Printf.sprintf "n%d" i in
      let spec =
        {
          Channel.top = dedup (List.map (fun (x, n) -> (x * 2000, net n)) top_raw);
          bottom = dedup (List.map (fun (x, n) -> (x * 2000, net n)) bot_raw);
        }
      in
      match Channel.assign spec with
      | exception Amg_robust.Diag.Fail _ -> true (* cyclic: rejection is legal *)
      | tracks, count ->
          let iv = Hashtbl.create 8 in
          List.iter
            (fun (x, n) ->
              let lo, hi =
                match Hashtbl.find_opt iv n with
                | Some (lo, hi) -> (min lo x, max hi x)
                | None -> (x, x)
              in
              Hashtbl.replace iv n (lo, hi))
            (spec.Channel.top @ spec.Channel.bottom);
          let overlap a b =
            let la, ha = Hashtbl.find iv a and lb, hb = Hashtbl.find iv b in
            not (ha < lb || hb < la)
          in
          let no_track_clash =
            List.for_all
              (fun (a, ta) ->
                List.for_all
                  (fun (b, tb) ->
                    String.equal a b || ta <> tb || not (overlap a b))
                  tracks)
              tracks
          in
          let vcg_ok =
            List.for_all
              (fun (a, b) -> List.assoc a tracks < List.assoc b tracks)
              (Channel.vcg spec)
          in
          no_track_clash && vcg_ok && count >= Channel.density spec)

let suite =
  [
    Alcotest.test_case "segment rect" `Quick test_segment_rect;
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "crossings" `Quick test_crossings;
    Alcotest.test_case "via stack" `Quick test_via;
    Alcotest.test_case "point contact" `Quick test_contact_at;
    Alcotest.test_case "connect ports" `Quick test_connect_ports;
    Alcotest.test_case "symmetric plans" `Quick test_symmetric;
    Alcotest.test_case "global comb route" `Quick test_global_comb_route;
    Alcotest.test_case "global too few pins" `Quick test_global_too_few_pins;
    Alcotest.test_case "track sharing (left edge)" `Quick test_track_sharing;
    Alcotest.test_case "drop anchors on metal" `Quick test_drop_anchors_on_real_metal;
    Alcotest.test_case "channel: left edge packing" `Quick test_channel_left_edge;
    Alcotest.test_case "channel: doglegs break cycles" `Quick test_channel_doglegs;
    Alcotest.test_case "channel: doglegs never worse" `Quick test_channel_dogleg_density_escape;
    Alcotest.test_case "channel: vertical constraints" `Quick test_channel_vcg;
    Alcotest.test_case "channel: geometry clean" `Quick test_channel_route_geometry;
    QCheck_alcotest.to_alcotest prop_symmetric_geometry;
    QCheck_alcotest.to_alcotest prop_channel_legal;
  ]
