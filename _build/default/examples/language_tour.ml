(* Tour of the procedural layout description language: entities with
   optional parameters, loops, conditionals, CHOOSE backtracking, nets,
   ports, and the compact() statement.

     dune exec examples/language_tour.exe
*)

module Env = Amg_core.Env
module Lobj = Amg_layout.Lobj
module Interp = Amg_lang.Interp
module Value = Amg_lang.Value

(* A resistive ladder written in the language: FOR builds the rungs, IF
   alternates their nets, and the entity is fully parameterized. *)
let ladder_src = {|
ENT Rung(layer, W, L, net)
  INBOX(layer, W, L, net = net)
  INBOX("metal1", net = net)
  ARRAY("contact", net = net)

ENT Ladder(<N>, <W>)
  even = 0
  FOR i = 1 TO N
    IF even == 1
      rung = Rung(layer = "pdiff", W = W, L = 8, net = "even")
    ELSE
      rung = Rung(layer = "pdiff", W = W, L = 8, net = "odd")
    END
    even = 1 - even
    compact(rung, NORTH, align = "MIN")
  END
  PORT("even", "even", "metal1")
  PORT("odd", "odd", "metal1")
|}

let () =
  let env = Env.bicmos () in

  (* Parse, then instantiate with different parameters. *)
  let program = Amg_lang.Parser.parse_program ladder_src in
  List.iter
    (fun n ->
      let obj = Interp.build env program "Ladder" [ ("N", Value.Num (float_of_int n)); ("W", Value.Num 2.) ] in
      let b = Lobj.bbox_exn obj in
      Fmt.pr "Ladder N=%d: %d shapes, %.1f x %.1f um@." n (Lobj.shape_count obj)
        (Amg_geometry.Units.to_um (Amg_geometry.Rect.width b))
        (Amg_geometry.Units.to_um (Amg_geometry.Rect.height b)))
    [ 2; 4; 8 ];

  (* CHOOSE backtracking: the first branch violates the minimum width and
     is rejected; the fallback branch is used instead — "no complex
     if-then-structures with deep hierarchies have to be programmed". *)
  let flex =
    Interp.parse_and_build env Amg_lang.Stdlib.choose_demo "FlexRow"
      [ ("W", Value.Num 1.0); ("L", Value.Num 8.) ]
  in
  Fmt.pr "FlexRow(W=1) fell back to the legal variant: height %.2f um@."
    (match Lobj.bbox_on flex "pdiff" with
    | Some r -> Amg_geometry.Units.to_um (Amg_geometry.Rect.height r)
    | None -> 0.);

  (* The paper's DiffPair source (Fig. 7). *)
  let dp =
    Interp.parse_and_build env Amg_lang.Stdlib.all "DiffPair"
      [ ("W", Value.Num 10.); ("L", Value.Num 5.) ]
  in
  Fmt.pr "DiffPair from the paper's source: %d shapes, %d ports, %.1f um2@."
    (Lobj.shape_count dp)
    (List.length (Lobj.ports dp))
    (float_of_int (Lobj.bbox_area dp) /. 1.0e6);
  let vios = Amg_drc.Checker.run ~checks:[ Widths; Spacings; Enclosures; Extensions ]
      ~tech:(Env.tech env) dp
  in
  Fmt.pr "%a@." Amg_drc.Violation.pp_report vios

(* Routing builtins (§2.4's "several routing routines" at the language
   level) and the pretty-printer: the formatted source re-parses to the
   identical program. *)
let routed_src = {|
ENT Linked()
  INBOX("metal1", 2, 2, net = "a")
  b = Pad()
  compact(b, EAST)
  PORT("pa", "a", "metal1")
  PORT("pb", "bb", "metal1")
  CONNECT("pa", "pb", width = 1.5)
  WIRE("metal2", 2, 0, 6, 10, 6, 10, 12, net = "up")
  VIA(0, 6, net = "up")

ENT Pad()
  INBOX("metal1", 2, 2, net = "bb")
|}

let () =
  let env = Env.bicmos () in
  let obj = Interp.parse_and_build env routed_src "Linked" [] in
  Fmt.pr "@.Linked: %d metal1, %d metal2, %d via shapes@."
    (List.length (Lobj.shapes_on obj "metal1"))
    (List.length (Lobj.shapes_on obj "metal2"))
    (List.length (Lobj.shapes_on obj "via"));
  (* fmt: parse -> print -> parse is the identity. *)
  let p1 = Amg_lang.Parser.parse_program routed_src in
  let printed = Amg_lang.Printer.program_str p1 in
  let p2 = Amg_lang.Parser.parse_program printed in
  Fmt.pr "pretty-printer round trip: %b@." (Amg_lang.Ast.equal_program p1 p2);
  Fmt.pr "--- formatted source ---@.%s" printed
