(* Quickstart: build the paper's Fig. 2 contact row twice — once through
   the procedural layout language, once through the typed OCaml eDSL — and
   show they produce the same module.  Run with:

     dune exec examples/quickstart.exe
*)

module Env = Amg_core.Env
module Prim = Amg_core.Prim
module Lobj = Amg_layout.Lobj

let um = Amg_geometry.Units.of_um

let () =
  let env = Env.bicmos () in

  (* 1. The paper's source code (Fig. 2), interpreted. *)
  let from_language =
    Amg_lang.Interp.parse_and_build env Amg_lang.Stdlib.contact_row "ContactRow"
      [ ("layer", Amg_lang.Value.Str "poly"); ("W", Amg_lang.Value.Num 2.);
        ("L", Amg_lang.Value.Num 10.) ]
  in
  Fmt.pr "=== ContactRow from the layout language ===@.";
  Fmt.pr "%a@." Lobj.pp from_language;

  (* 2. The same module through the embedded DSL: three primitive calls,
     no coordinates, no design-rule arithmetic. *)
  let from_edsl = Lobj.create "contact_row" in
  let _ = Prim.inbox env from_edsl ~layer:"poly" ~w:(um 2.) ~l:(um 10.) () in
  let _ = Prim.inbox env from_edsl ~layer:"metal1" () in
  let _ = Prim.array env from_edsl ~layer:"contact" () in
  Fmt.pr "=== same module from the OCaml eDSL ===@.";
  Fmt.pr "%a@." Lobj.pp from_edsl;

  assert (Lobj.bbox from_language = Lobj.bbox from_edsl);
  assert (Lobj.shape_count from_language = Lobj.shape_count from_edsl);

  (* 3. The design rules are fulfilled automatically; verify with the DRC. *)
  let vios = Amg_drc.Checker.run ~checks:[ Widths; Spacings; Enclosures ]
      ~tech:(Env.tech env) from_edsl
  in
  Fmt.pr "%a@." Amg_drc.Violation.pp_report vios;

  (* 4. Fig. 3's three variants: both sizes omitted, W only, both given. *)
  Fmt.pr "=== Fig. 3: parameter variants ===@.";
  List.iter
    (fun (label, w, l) ->
      let o = Lobj.create label in
      let _ = Prim.inbox env o ~layer:"poly" ?w ?l () in
      let _ = Prim.inbox env o ~layer:"metal1" () in
      let _ = Prim.array env o ~layer:"contact" () in
      let bbox = Lobj.bbox_exn o in
      Fmt.pr "  %-12s -> %.2f x %.2f um, %d contact(s)@." label
        (Amg_geometry.Units.to_um (Amg_geometry.Rect.width bbox))
        (Amg_geometry.Units.to_um (Amg_geometry.Rect.height bbox))
        (List.length (Lobj.shapes_on o "contact")))
    [ ("defaults", None, None);
      ("W=2", Some (um 2.), None);
      ("W=2,L=10", Some (um 2.), Some (um 10.)) ];

  Amg_layout.Svg.save ~tech:(Env.tech env) from_edsl "quickstart_contact_row.svg";
  Fmt.pr "wrote quickstart_contact_row.svg@."
