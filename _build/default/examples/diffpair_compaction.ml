(* The paper's running example (Figs. 5-7): build the simple MOS
   differential pair step by step, showing what the successive compactor
   and the variable edges contribute.

     dune exec examples/diffpair_compaction.exe
*)

module Env = Amg_core.Env
module Lobj = Amg_layout.Lobj
module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module M = Amg_modules

let um = Units.of_um

let area_um2 obj = float_of_int (Lobj.bbox_area obj) /. 1.0e6

let () =
  let env = Env.bicmos () in

  (* Before/after compaction, as in Fig. 6: the "before" state is the
     three sub-objects placed side by side without compaction. *)
  let trans =
    M.Mosfet.make env ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 5.)
      ~sd_contacts:`None ~well:false ()
  in
  let polycon = M.Contact_row.make env ~layer:"poly" ~l:(um 5.) ~net:"g" () in
  let diffcon = M.Contact_row.make env ~layer:"pdiff" ~w:(um 10.) ~net:"sd" () in
  let loose =
    float_of_int
      (Lobj.bbox_area trans + Lobj.bbox_area polycon + Lobj.bbox_area diffcon)
    /. 1.0e6
  in
  Fmt.pr "sub-objects before compaction: %.1f um2 of bounding boxes@." loose;

  let dp = M.Diff_pair.make env ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 5.) ~well:false () in
  Fmt.pr "diff pair after successive compaction: %.1f um2@." (area_um2 dp);
  Fmt.pr "%a@." Amg_layout.Stats.pp (Amg_layout.Stats.of_lobj dp);

  (* Fig. 5: variable edges.  An inter-digitated transistor needs straps;
     with variable edges the compactor shrinks the foreign rows under the
     straps, without them the straps stay outside. *)
  let with_var =
    M.Interdigitated.make env ~name:"var_edges" ~polarity:M.Mosfet.Pmos
      ~w:(um 10.) ~l:(um 2.) ~fingers:4 ~well:false ()
  in
  (* For comparison, the same module with the variable-edge relaxation
     turned off is emulated by rows without variable edges; strap placement
     then stops on the full-height rows. *)
  Fmt.pr "interdigitated with variable edges: %.1f um2@." (area_um2 with_var);

  let vios = Amg_drc.Checker.run ~checks:[ Widths; Spacings; Enclosures; Extensions ]
      ~tech:(Env.tech env) dp
  in
  Fmt.pr "diff pair DRC: %a@." Amg_drc.Violation.pp_report vios;

  Amg_layout.Svg.save ~tech:(Env.tech env) dp "diffpair.svg";
  Amg_layout.Svg.save ~tech:(Env.tech env) with_var "interdigitated.svg";
  Fmt.pr "wrote diffpair.svg, interdigitated.svg@."
