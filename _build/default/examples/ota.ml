(* Second full application: a five-transistor OTA through the identical
   partition -> module library -> assembly pipeline as the paper's
   amplifier — no OTA-specific layout code exists anywhere in the library.

     dune exec examples/ota.exe
*)

module Env = Amg_core.Env
module Ota = Amg_amplifier.Ota
module Partition = Amg_circuit.Partition

let () =
  let env = Env.bicmos () in

  Fmt.pr "=== OTA schematic partition ===@.";
  List.iter
    (fun (c : Partition.cluster) ->
      Fmt.pr "  %-14s %-26s devices=%s@." c.Partition.cluster_name
        (Partition.show_style c.Partition.style)
        (String.concat "," c.Partition.device_names))
    (Ota.clusters ());

  let r = Ota.build env in
  Fmt.pr "@.=== generated OTA ===@.";
  Fmt.pr "size: %.1f x %.1f um = %.0f um2 in %.2f s@." r.Ota.width_um
    r.Ota.height_um r.Ota.area_um2 r.Ota.build_time_s;
  Fmt.pr "routed nets: %s@."
    (String.concat ", " r.Ota.routing.Amg_route.Global.routed);
  List.iter
    (fun (net, why) -> Fmt.pr "  UNROUTED %s: %s@." net why)
    r.Ota.routing.Amg_route.Global.unrouted;

  let tech = Env.tech env in
  let vios = Amg_drc.Checker.run ~tech r.Ota.obj in
  Fmt.pr "full DRC (incl. latch-up): %d violations@." (List.length vios);

  let x = Amg_extract.Devices.extract ~tech r.Ota.obj in
  let cmp = Amg_extract.Compare.run ~golden:(Ota.netlist ()) x in
  Fmt.pr "LVS: %s (%d devices)@."
    (if Amg_extract.Compare.clean cmp then "clean" else "MISMATCH")
    cmp.Amg_extract.Compare.matched;

  (* Post-layout SPICE deck, the hand-off to simulation. *)
  Fmt.pr "@.=== extracted SPICE deck ===@.";
  print_string (Amg_extract.Spice.of_extracted ~title:"five-transistor OTA" x);

  Amg_layout.Svg.save ~tech r.Ota.obj "ota.svg";
  Fmt.pr "@.wrote ota.svg@."
