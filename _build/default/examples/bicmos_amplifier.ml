(* The paper's §3 demonstration: the complete broad-band BiCMOS amplifier.
   Partition the schematic, generate every block, floorplan, add substrate
   taps and supply rails, check, and export.

     dune exec examples/bicmos_amplifier.exe
*)

module Env = Amg_core.Env
module A = Amg_amplifier.Amplifier
module Partition = Amg_circuit.Partition

let () =
  let env = Env.bicmos () in

  Fmt.pr "=== knowledge-based partitioning (paper blocks A-F) ===@.";
  List.iter
    (fun (c : Partition.cluster) ->
      Fmt.pr "  %-14s %-26s matching=%-8s devices=%s@." c.Partition.cluster_name
        (Partition.show_style c.Partition.style)
        (Partition.show_matching c.Partition.matching)
        (String.concat "," c.Partition.device_names))
    (Amg_amplifier.Schematic.clusters ());

  let r = A.build env in
  Fmt.pr "@.=== generated amplifier ===@.";
  Fmt.pr "size: %.1f x %.1f um = %.0f um2@." r.A.width_um r.A.height_um r.A.area_um2;
  Fmt.pr "(the paper's amplifier: %.0f x %.0f um = %.0f um2 in its 1um Siemens process)@."
    A.paper_width_um A.paper_height_um A.paper_area_um2;
  Fmt.pr "build time: %.2f s@." r.A.build_time_s;
  List.iter (fun (n, a) -> Fmt.pr "  block %-3s %9.1f um2@." n a) r.A.block_areas;

  Fmt.pr "global routing: %s routed@."
    (String.concat ", " r.A.routing.Amg_route.Global.routed);
  List.iter
    (fun (n, why) -> Fmt.pr "  not routed: %s (%s)@." n why)
    r.A.routing.Amg_route.Global.unrouted;

  let vios = Amg_drc.Checker.run ~tech:(Env.tech env) r.A.obj in
  Fmt.pr "@.full DRC including the latch-up rule: %a@." Amg_drc.Violation.pp_report vios;

  let extracted = Amg_extract.Devices.extract ~tech:(Env.tech env) r.A.obj in
  Fmt.pr "layout versus schematic: %a@."
    Amg_extract.Compare.pp_result
    (Amg_extract.Compare.run ~golden:(Amg_amplifier.Schematic.netlist ()) extracted);

  Fmt.pr "parasitic capacitances of the internal nodes:@.";
  Fmt.pr "%a@."
    Amg_layout.Parasitics.pp_report
    (Amg_layout.Parasitics.of_lobj ~tech:(Env.tech env) r.A.obj);

  Amg_layout.Svg.save ~tech:(Env.tech env) r.A.obj "bicmos_amplifier.svg";
  Amg_layout.Cif.save ~tech:(Env.tech env) r.A.obj "bicmos_amplifier.cif";
  Fmt.pr "wrote bicmos_amplifier.svg, bicmos_amplifier.cif@."
