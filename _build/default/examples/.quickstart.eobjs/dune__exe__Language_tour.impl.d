examples/language_tour.ml: Amg_core Amg_drc Amg_geometry Amg_lang Amg_layout Fmt List
