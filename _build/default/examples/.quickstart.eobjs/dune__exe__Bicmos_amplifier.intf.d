examples/bicmos_amplifier.mli:
