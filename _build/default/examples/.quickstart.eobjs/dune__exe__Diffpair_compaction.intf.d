examples/diffpair_compaction.mli:
