examples/bicmos_amplifier.ml: Amg_amplifier Amg_circuit Amg_core Amg_drc Amg_extract Amg_layout Amg_route Fmt List String
