examples/physical_design.mli:
