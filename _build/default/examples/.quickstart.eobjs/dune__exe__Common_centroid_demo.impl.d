examples/common_centroid_demo.ml: Amg_core Amg_drc Amg_extract Amg_geometry Amg_layout Amg_modules Array Float Fmt List Sys
