examples/quickstart.mli:
