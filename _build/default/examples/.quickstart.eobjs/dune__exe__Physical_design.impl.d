examples/physical_design.ml: Amg_core Amg_drc Amg_geometry Amg_layout Amg_modules Amg_route Fmt List String
