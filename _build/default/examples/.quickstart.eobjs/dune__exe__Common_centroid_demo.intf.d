examples/common_centroid_demo.mli:
