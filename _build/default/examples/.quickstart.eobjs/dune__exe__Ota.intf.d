examples/ota.mli:
