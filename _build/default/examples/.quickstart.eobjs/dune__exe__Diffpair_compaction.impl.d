examples/diffpair_compaction.ml: Amg_core Amg_drc Amg_geometry Amg_layout Amg_modules Fmt
