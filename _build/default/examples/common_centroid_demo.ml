(* Module E (Fig. 10): the centroidal cross-coupled inter-digitated
   differential pair with its dummies and fully symmetric wiring.

     dune exec examples/common_centroid_demo.exe
*)

module Env = Amg_core.Env
module Lobj = Amg_layout.Lobj
module M = Amg_modules

let um = Amg_geometry.Units.of_um

let () =
  let env = Env.bicmos () in
  let t0 = Sys.time () in
  let cc =
    M.Common_centroid.make env ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 2.) ()
  in
  let dt = Sys.time () -. t0 in
  Fmt.pr "%a@." Amg_layout.Stats.pp (Amg_layout.Stats.of_lobj cc);
  Fmt.pr "generation time: %.3f s (the paper reports 5 s on 1996 hardware)@." dt;

  (* The matching properties the paper claims for module E. *)
  (match
     ( M.Common_centroid.gate_centroid cc ~net:"inp",
       M.Common_centroid.gate_centroid cc ~net:"inn" )
   with
  | Some ca, Some cb ->
      Fmt.pr "gate centroids: inp at %.3f um, inn at %.3f um (delta %.4f um)@."
        (ca /. 1000.) (cb /. 1000.)
        (Float.abs (ca -. cb) /. 1000.)
  | _ -> assert false);
  let m1a, m2a, va = M.Common_centroid.wiring_summary cc ~net:"inp" in
  let m1b, m2b, vb = M.Common_centroid.wiring_summary cc ~net:"inn" in
  Fmt.pr "wiring inp: %.1f um2 metal1, %.1f um2 metal2, %d vias@."
    (float_of_int m1a /. 1.0e6) (float_of_int m2a /. 1.0e6) va;
  Fmt.pr "wiring inn: %.1f um2 metal1, %.1f um2 metal2, %d vias@."
    (float_of_int m1b /. 1.0e6) (float_of_int m2b /. 1.0e6) vb;

  let vios = Amg_drc.Checker.run ~checks:[ Widths; Spacings; Enclosures; Extensions ]
      ~tech:(Env.tech env) cc
  in
  Fmt.pr "%a@." Amg_drc.Violation.pp_report vios;
  Amg_layout.Svg.save ~tech:(Env.tech env) cc "module_e.svg";
  Fmt.pr "wrote module_e.svg@."

(* The capacitor counterpart: a common-centroid unit-capacitor array with a
   dummy ring.  Both groups share the array centre; extraction reduces the
   units to two ratioed capacitors and the dummies vanish (tied to the
   bottom plate). *)
let () =
  Fmt.pr "@.=== common-centroid unit-capacitor array (2:6 + dummies) ===@.";
  let env = Env.bicmos () in
  let obj, plan = M.Cap_array.make env ~unit_ff:20. ~units_a:2 ~units_b:6 () in
  Fmt.pr "grid %dx%d, assignment:@." plan.M.Cap_array.rows plan.M.Cap_array.cols;
  Array.iter
    (fun row ->
      Fmt.pr "  ";
      Array.iter
        (fun g -> Fmt.pr "%c " (match g with M.Cap_array.A -> 'A' | M.Cap_array.B -> 'B'))
        row;
      Fmt.pr "@.")
    plan.M.Cap_array.cells;
  (match
     (M.Cap_array.centroid obj ~net:"ca", M.Cap_array.centroid obj ~net:"cb")
   with
  | Some (ax, ay), Some (bx, by) ->
      Fmt.pr "centroid delta: (%.3f, %.3f) um@."
        ((ax -. bx) /. 1000.) ((ay -. by) /. 1000.)
  | _ -> assert false);
  let x = Amg_extract.Devices.extract ~tech:(Env.tech env) obj in
  List.iter
    (fun (a, b, ff) -> Fmt.pr "extracted C(%s,%s) = %.1f fF@." a b ff)
    x.Amg_extract.Devices.capacitors;
  let vios = Amg_drc.Checker.run ~checks:[ Widths; Spacings; Enclosures; Extensions ]
      ~tech:(Env.tech env) obj
  in
  Fmt.pr "%a@." Amg_drc.Violation.pp_report vios;
  Amg_layout.Svg.save ~tech:(Env.tech env) obj "cap_array.svg";
  Fmt.pr "wrote cap_array.svg@."
