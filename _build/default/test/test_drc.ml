(* The design-rule checker: every violation class triggered deliberately,
   plus the latch-up cover check of Fig. 1. *)

module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Lobj = Amg_layout.Lobj
module Checker = Amg_drc.Checker
module Violation = Amg_drc.Violation
module Latchup = Amg_drc.Latchup

let um = Units.of_um
let tech () = Amg_tech.Bicmos1u.get ()

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let add o ~layer ?net ~x ~y ~w ~h () =
  ignore (Lobj.add_shape o ~layer ~rect:(Rect.of_size ~x ~y ~w ~h) ?net ())

let kind_name (v : Violation.t) =
  match v.Violation.kind with
  | Violation.Width _ -> "width"
  | Violation.Spacing _ -> "spacing"
  | Violation.Short _ -> "short"
  | Violation.Enclosure _ -> "enclosure"
  | Violation.Extension _ -> "extension"
  | Violation.Cut_size _ -> "cut_size"
  | Violation.Min_area _ -> "min_area"
  | Violation.Latchup _ -> "latchup"

let kinds vios = List.sort_uniq compare (List.map kind_name vios)

let test_clean_object () =
  let o = Lobj.create "clean" in
  add o ~layer:"metal1" ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  add o ~layer:"metal1" ~x:(um 4.) ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  check "no violations" 0
    (List.length (Checker.run ~checks:[ Widths; Spacings; Enclosures; Extensions ] ~tech:(tech ()) o))

let test_width () =
  let o = Lobj.create "w" in
  add o ~layer:"metal1" ~x:0 ~y:0 ~w:(um 1.) ~h:(um 10.) ();
  let vios = Checker.check_widths ~tech:(tech ()) o in
  check_bool "width violation" true (kinds vios = [ "width" ])

let test_cut_size () =
  let o = Lobj.create "c" in
  add o ~layer:"contact" ~x:0 ~y:0 ~w:(um 2.) ~h:(um 1.) ();
  let vios = Checker.check_widths ~tech:(tech ()) o in
  check_bool "cut size violation" true (kinds vios = [ "cut_size" ])

let test_spacing () =
  let o = Lobj.create "s" in
  add o ~layer:"metal1" ~net:"a" ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  add o ~layer:"metal1" ~net:"b" ~x:(um 3.) ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  let vios = Checker.check_spacings ~tech:(tech ()) o in
  check_bool "spacing violation" true (kinds vios = [ "spacing" ]);
  (* L-inf: a large diagonal offset clears it. *)
  let o2 = Lobj.create "s2" in
  add o2 ~layer:"metal1" ~net:"a" ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  add o2 ~layer:"metal1" ~net:"b" ~x:(um 3.) ~y:(um 4.) ~w:(um 2.) ~h:(um 2.) ();
  check "diagonal ok" 0 (List.length (Checker.check_spacings ~tech:(tech ()) o2))

let test_short () =
  let o = Lobj.create "sh" in
  add o ~layer:"metal1" ~net:"a" ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  add o ~layer:"metal1" ~net:"b" ~x:(um 2.) ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  let vios = Checker.check_spacings ~tech:(tech ()) o in
  check_bool "short" true (kinds vios = [ "short" ])

let test_connected_component_merging () =
  (* Two same-net far-apart bars joined by a third: no spacing violation
     inside one connected region. *)
  let o = Lobj.create "comp" in
  add o ~layer:"metal1" ~net:"a" ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  add o ~layer:"metal1" ~net:"a" ~x:(um 2.5) ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  (* 0.5 < 1.5 apart but both net a: mergeable relation, no violation. *)
  check "same net close" 0 (List.length (Checker.check_spacings ~tech:(tech ()) o));
  (* The same geometry with unknown nets joined by a bridge. *)
  let o2 = Lobj.create "comp2" in
  add o2 ~layer:"metal1" ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  add o2 ~layer:"metal1" ~x:(um 2.5) ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  check "unknown nets close" 1 (List.length (Checker.check_spacings ~tech:(tech ()) o2));
  add o2 ~layer:"metal1" ~x:(um 1.) ~y:(um 1.) ~w:(um 2.) ~h:(um 2.) ();
  check "bridged" 0 (List.length (Checker.check_spacings ~tech:(tech ()) o2))

let test_enclosure () =
  let o = Lobj.create "e" in
  (* Contact landing on poly but with no metal1 over it. *)
  add o ~layer:"poly" ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  add o ~layer:"contact" ~x:(um 0.5) ~y:(um 0.5) ~w:(um 1.) ~h:(um 1.) ();
  let vios = Checker.check_enclosures ~tech:(tech ()) o in
  check "missing metal" 1 (List.length vios);
  (* Adding the metal fixes it. *)
  add o ~layer:"metal1" ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  check "fixed" 0 (List.length (Checker.check_enclosures ~tech:(tech ()) o));
  (* A contact with metal but no landing layer. *)
  let o2 = Lobj.create "e2" in
  add o2 ~layer:"metal1" ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  add o2 ~layer:"contact" ~x:(um 0.5) ~y:(um 0.5) ~w:(um 1.) ~h:(um 1.) ();
  check "missing landing" 1 (List.length (Checker.check_enclosures ~tech:(tech ()) o2));
  (* A via needs both metals. *)
  let o3 = Lobj.create "e3" in
  add o3 ~layer:"metal1" ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  add o3 ~layer:"via" ~x:(um 0.5) ~y:(um 0.5) ~w:(um 1.) ~h:(um 1.) ();
  check "via missing metal2" 1 (List.length (Checker.check_enclosures ~tech:(tech ()) o3))

let test_extension () =
  let o = Lobj.create "x" in
  (* Proper vertical gate: poly 1 um wide crossing a 10 um diffusion. *)
  add o ~layer:"poly" ~x:(um 3.) ~y:(- um 1.) ~w:(um 2.) ~h:(um 12.) ();
  add o ~layer:"pdiff" ~x:0 ~y:0 ~w:(um 8.) ~h:(um 10.) ();
  check "good gate" 0 (List.length (Checker.check_extensions ~tech:(tech ()) o));
  (* End-cap too short. *)
  let o2 = Lobj.create "x2" in
  add o2 ~layer:"poly" ~x:(um 3.) ~y:(- um 0.5) ~w:(um 2.) ~h:(um 11.) ();
  add o2 ~layer:"pdiff" ~x:0 ~y:0 ~w:(um 8.) ~h:(um 10.) ();
  check_bool "short endcap" true
    (kinds (Checker.check_extensions ~tech:(tech ()) o2) = [ "extension" ]);
  (* Poly overlapping diffusion without crossing: malformed gate. *)
  let o3 = Lobj.create "x3" in
  add o3 ~layer:"poly" ~x:(um 3.) ~y:(um 2.) ~w:(um 2.) ~h:(um 4.) ();
  add o3 ~layer:"pdiff" ~x:0 ~y:0 ~w:(um 8.) ~h:(um 10.) ();
  check_bool "partial gate flagged" true
    (kinds (Checker.check_extensions ~tech:(tech ()) o3) = [ "extension" ])

let test_latchup () =
  let t = tech () in
  let o = Lobj.create "l" in
  (* Active area with a tap close by: covered. *)
  add o ~layer:"pdiff" ~net:"x" ~x:0 ~y:0 ~w:(um 10.) ~h:(um 10.) ();
  add o ~layer:"subtap" ~x:(um 20.) ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  check "covered" 0 (List.length (Latchup.check ~tech:t o));
  (* Far-away active area: uncovered. *)
  add o ~layer:"ndiff" ~net:"y" ~x:(um 100.) ~y:0 ~w:(um 10.) ~h:(um 10.) ();
  let vios = Latchup.check ~tech:t o in
  check "uncovered" 1 (List.length vios);
  (match vios with
  | [ { Violation.kind = Violation.Latchup { uncovered }; _ } ] ->
      (* Only the part beyond the 50 um radius remains. *)
      check_bool "residue beyond reach" true
        (List.for_all (fun r -> r.Rect.x0 >= um 72.) uncovered)
  | _ -> Alcotest.fail "expected a latchup violation");
  (* A second tap repairs it. *)
  add o ~layer:"subtap" ~x:(um 95.) ~y:0 ~w:(um 2.) ~h:(um 2.) ();
  check "repaired" 0 (List.length (Latchup.check ~tech:t o))

let test_latchup_multi_tap_cover () =
  (* The paper's successive-subtraction semantics: one big active region
     covered only by the union of several taps. *)
  let t = tech () in
  let o = Lobj.create "multi" in
  add o ~layer:"ndiff" ~net:"x" ~x:0 ~y:0 ~w:(um 200.) ~h:(um 4.) ();
  add o ~layer:"subtap" ~x:(um 30.) ~y:(um 6.) ~w:(um 2.) ~h:(um 2.) ();
  check "one tap insufficient" 1 (List.length (Latchup.check ~tech:t o));
  add o ~layer:"subtap" ~x:(um 110.) ~y:(um 6.) ~w:(um 2.) ~h:(um 2.) ();
  add o ~layer:"subtap" ~x:(um 170.) ~y:(um 6.) ~w:(um 2.) ~h:(um 2.) ();
  check "union covers" 0 (List.length (Latchup.check ~tech:t o))

let test_resistor_body_not_short () =
  let env = Amg_core.Env.bicmos () in
  let res, _ = Amg_modules.Resistor.make env ~squares:40. () in
  let shorts =
    List.filter
      (fun v -> kind_name v = "short")
      (Checker.check_spacings ~tech:(tech ()) res)
  in
  check "no short through film" 0 (List.length shorts)

let test_describe () =
  let v =
    Violation.make
      (Violation.Spacing { layer_a = "m1"; layer_b = "m2"; required = um 1.5; actual = um 1. })
      (Rect.of_size ~x:0 ~y:0 ~w:1 ~h:1)
  in
  Alcotest.(check string) "describe" "spacing m1/m2: 1.00um < 1.50um"
    (Violation.describe v)


let test_min_area () =
  let tech = tech () in
  (* An isolated 1.5 x 1.5 um metal1 island: width-clean, but 2.25 um2 <
     the 4 um2 minimum-area rule. *)
  let o = Lobj.create "tiny" in
  add o ~layer:"metal1" ~x:0 ~y:0 ~w:(um 1.5) ~h:(um 1.5) ();
  let vios = Amg_drc.Checker.run ~checks:[ Amg_drc.Checker.Widths ] ~tech o in
  check_bool "flagged" true (List.mem "min_area" (kinds vios));
  check_bool "only min_area" true (kinds vios = [ "min_area" ]);
  (* Growing the island with a touching rectangle fixes it: the rule reads
     the connected region's union area, not per-rectangle areas. *)
  add o ~layer:"metal1" ~x:(um 1.5) ~y:0 ~w:(um 1.5) ~h:(um 2.) ();
  let vios2 = Amg_drc.Checker.run ~checks:[ Amg_drc.Checker.Widths ] ~tech o in
  check "union passes" 0 (List.length vios2);
  (* Overlapping rectangles are not double-counted: 2.25 + 2.25 um2 drawn,
     but the union is only 1.5 x 1.9 = 2.85 um2 < 4. *)
  let o3 = Lobj.create "overlap" in
  add o3 ~layer:"metal1" ~x:0 ~y:0 ~w:(um 1.5) ~h:(um 1.5) ();
  add o3 ~layer:"metal1" ~x:(um 0.4) ~y:0 ~w:(um 1.5) ~h:(um 1.5) ();
  let vios3 = Amg_drc.Checker.run ~checks:[ Amg_drc.Checker.Widths ] ~tech o3 in
  check_bool "no double count" true (List.mem "min_area" (kinds vios3))


let test_well_taps () =
  let tech = tech () in
  (* A floating nwell (PMOS body, no tap): flagged. *)
  let o = Lobj.create "floating" in
  add o ~layer:"nwell" ~x:0 ~y:0 ~w:(um 20.) ~h:(um 10.) ();
  add o ~layer:"pdiff" ~x:(um 4.) ~y:(um 4.) ~w:(um 6.) ~h:(um 2.) ();
  check "flagged" 1 (List.length (Amg_drc.Latchup.untapped_wells ~tech o));
  (* A tap inside the well fixes it. *)
  add o ~layer:"subtap" ~x:(um 14.) ~y:(um 4.) ~w:(um 2.) ~h:(um 2.) ();
  check "tapped ok" 0 (List.length (Amg_drc.Latchup.untapped_wells ~tech o));
  (* Touching well rectangles are one region: a tap in either half covers
     both. *)
  let o2 = Lobj.create "merged" in
  add o2 ~layer:"nwell" ~x:0 ~y:0 ~w:(um 10.) ~h:(um 10.) ();
  add o2 ~layer:"nwell" ~x:(um 10.) ~y:0 ~w:(um 10.) ~h:(um 10.) ();
  add o2 ~layer:"subtap" ~x:(um 2.) ~y:(um 2.) ~w:(um 2.) ~h:(um 2.) ();
  check "merged region ok" 0 (List.length (Amg_drc.Latchup.untapped_wells ~tech o2));
  (* A bipolar collector well (base implant inside) is a device terminal,
     not a floating body: exempt. *)
  let o3 = Lobj.create "npn" in
  add o3 ~layer:"nwell" ~x:0 ~y:0 ~w:(um 12.) ~h:(um 12.) ();
  add o3 ~layer:"pbase" ~x:(um 3.) ~y:(um 3.) ~w:(um 6.) ~h:(um 6.) ();
  check "collector well exempt" 0
    (List.length (Amg_drc.Latchup.untapped_wells ~tech o3))

let suite =
  [
    Alcotest.test_case "clean object" `Quick test_clean_object;
    Alcotest.test_case "width" `Quick test_width;
    Alcotest.test_case "cut size" `Quick test_cut_size;
    Alcotest.test_case "spacing (L-inf)" `Quick test_spacing;
    Alcotest.test_case "short" `Quick test_short;
    Alcotest.test_case "connected components" `Quick test_connected_component_merging;
    Alcotest.test_case "enclosure" `Quick test_enclosure;
    Alcotest.test_case "gate extension" `Quick test_extension;
    Alcotest.test_case "latch-up cover" `Quick test_latchup;
    Alcotest.test_case "latch-up multi-tap union" `Quick test_latchup_multi_tap_cover;
    Alcotest.test_case "resistor body exempt from shorts" `Quick test_resistor_body_not_short;
    Alcotest.test_case "min area (union semantics)" `Quick test_min_area;
    Alcotest.test_case "well-tap rule" `Quick test_well_taps;
    Alcotest.test_case "violation describe" `Quick test_describe;
  ]
