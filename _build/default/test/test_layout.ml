(* Layout database: shapes, objects, derived arrays, exporters. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Edge = Amg_layout.Edge
module Shape = Amg_layout.Shape
module Lobj = Amg_layout.Lobj
module Derive = Amg_layout.Derive
module Port = Amg_layout.Port
module Technology = Amg_tech.Technology
module Rules = Amg_tech.Rules

let um = Units.of_um
let tech () = Amg_tech.Bicmos1u.get ()
let rules () = Technology.rules (tech ())

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_edge_sides () =
  let s = Edge.set Edge.all_fixed Dir.North Edge.Variable in
  check_bool "get north" true (Edge.is_variable s Dir.North);
  check_bool "others fixed" false (Edge.is_variable s Dir.South);
  check_bool "all variable" true (Edge.is_variable Edge.all_variable Dir.East)

let test_shape_transform () =
  let s =
    Shape.make ~id:0 ~layer:"poly" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:10 ~h:20)
      ~sides:(Edge.set Edge.all_fixed Dir.North Edge.Variable)
      ()
  in
  (* MX flips y: the variable north edge must become the south edge. *)
  let flipped = Shape.transform s (Amg_geometry.Transform.of_orientation Amg_geometry.Transform.MX) in
  check_bool "variable moved to south" true (Edge.is_variable flipped.Shape.sides Dir.South);
  check_bool "north now fixed" false (Edge.is_variable flipped.Shape.sides Dir.North);
  check "area preserved" (Rect.area s.Shape.rect) (Rect.area flipped.Shape.rect)

let test_lobj_crud () =
  let o = Lobj.create "t" in
  let a = Lobj.add_shape o ~layer:"poly" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:10 ~h:10) () in
  let b = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:20 ~y:0 ~w:10 ~h:10) ~net:"n" () in
  check "count" 2 (Lobj.shape_count o);
  check_bool "find" true (Lobj.find o a.Shape.id = Some a);
  Lobj.replace o (Shape.with_net b (Some "m"));
  check_bool "replaced" true ((Lobj.find_exn o b.Shape.id).Shape.net = Some "m");
  Lobj.remove o a.Shape.id;
  check "after remove" 1 (Lobj.shape_count o);
  Alcotest.check_raises "replace missing"
    (Invalid_argument "Lobj.replace: no shape 0 in t") (fun () -> Lobj.replace o a);
  check_bool "bbox" true (Lobj.bbox o = Some (Rect.of_size ~x:20 ~y:0 ~w:10 ~h:10));
  check_bool "layers" true (Lobj.layers o = [ "metal1" ]);
  check_bool "nets" true (Lobj.nets o = [ "m" ])

let test_lobj_translate_ports () =
  let o = Lobj.create "t" in
  let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:10 ~h:10) ~net:"a" () in
  let _ = Lobj.add_port o ~name:"p" ~net:"a" ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:10 ~h:10) in
  Lobj.translate o ~dx:5 ~dy:7;
  let p = Lobj.port_exn o "p" in
  check "port moved x" 5 p.Port.rect.Rect.x0;
  check "port moved y" 7 p.Port.rect.Rect.y0;
  check_bool "shape moved" true
    ((List.hd (Lobj.shapes o)).Shape.rect = Rect.of_size ~x:5 ~y:7 ~w:10 ~h:10)

let test_lobj_copy_independent () =
  let o = Lobj.create "orig" in
  let _ = Lobj.add_shape o ~layer:"poly" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:10 ~h:10) () in
  let c = Lobj.copy ~name:"copy" o in
  Lobj.translate c ~dx:100 ~dy:0;
  check_bool "original untouched" true
    ((List.hd (Lobj.shapes o)).Shape.rect = Rect.of_size ~x:0 ~y:0 ~w:10 ~h:10);
  Alcotest.(check string) "copy name" "copy" (Lobj.name c)

let test_absorb_renumbers () =
  let a = Lobj.create "a" in
  let _ = Lobj.add_shape a ~layer:"poly" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:5 ~h:5) () in
  let b = Lobj.create "b" in
  let s0 = Lobj.add_shape b ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:5 ~h:5) () in
  let offset = Lobj.absorb a b in
  check "two shapes" 2 (Lobj.shape_count a);
  check_bool "renumbered id present" true (Lobj.find a (s0.Shape.id + offset) <> None);
  (* b itself is untouched. *)
  check "src untouched" 1 (Lobj.shape_count b)

let test_rename_and_qualify () =
  let o = Lobj.create "t" in
  let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:5 ~h:5) ~net:"g" () in
  let _ = Lobj.add_port o ~name:"g" ~net:"g" ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:5 ~h:5) in
  Lobj.rename_net o ~from_:"g" ~to_:"g1";
  check_bool "shape renamed" true ((List.hd (Lobj.shapes o)).Shape.net = Some "g1");
  check_bool "port renamed" true ((Lobj.port_exn o "g").Port.net = "g1");
  Lobj.qualify_nets o "x1";
  check_bool "qualified" true ((List.hd (Lobj.shapes o)).Shape.net = Some "x1.g1")

(* --- derived arrays --- *)

let test_spread () =
  (* Equidistant when there is room. *)
  let cuts = Derive.spread ~lo:0 ~hi:100 ~s:10 ~space:5 3 in
  check "count" 3 (List.length cuts);
  let gaps =
    let rec go prev = function
      | [] -> []
      | (lo, hi) :: tl -> (lo - prev) :: go hi tl
    in
    go 0 cuts @ [ 100 - snd (List.nth cuts 2) ]
  in
  List.iter (fun g -> check_bool "gaps near equal" true (abs (g - 17) <= 1)) gaps;
  (* Pinned at minimum space when tight. *)
  let tight = Derive.spread ~lo:0 ~hi:34 ~s:10 ~space:2 3 in
  let (l0, h0), (l1, h1), (l2, h2) =
    match tight with [ a; b; c ] -> (a, b, c) | _ -> Alcotest.fail "count"
  in
  check "pinned gap 1" 2 (l1 - h0);
  check "pinned gap 2" 2 (l2 - h1);
  check "margin balanced" (34 - h2) l0

let test_max_cuts () =
  check "three" 3 (Derive.max_cuts ~w:34 ~s:10 ~space:2);
  check "exact pitch fit" 4 (Derive.max_cuts ~w:46 ~s:10 ~space:2);
  check "one" 1 (Derive.max_cuts ~w:10 ~s:10 ~space:2);
  check "zero" 0 (Derive.max_cuts ~w:9 ~s:10 ~space:2)

let test_cut_array_and_rederive () =
  let rules = rules () in
  let o = Lobj.create "row" in
  let land_ = Lobj.add_shape o ~layer:"poly" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 10.) ~h:(um 2.)) () in
  let metal = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 10.) ~h:(um 2.)) () in
  let _ =
    Lobj.register_array o ~cut_layer:"contact"
      ~container_ids:[ land_.Shape.id; metal.Shape.id ] ()
  in
  Lobj.rederive o rules;
  let cuts () = List.length (Lobj.shapes_on o "contact") in
  check "initial cuts" 4 (cuts ());
  (* Shrink the metal: the array is recomputed with fewer cuts. *)
  Lobj.replace o (Shape.with_rect metal (Rect.of_size ~x:0 ~y:0 ~w:(um 4.) ~h:(um 2.)));
  Lobj.rederive o rules;
  check "after shrink" 1 (cuts ());
  (* Cuts of a registered array constrain the container minimum. *)
  check_bool "container flagged" true
    (Lobj.array_cut_layers_of_container o metal.Shape.id = [ "contact" ]);
  check "min extent" (um 2.)
    (Derive.min_container_extent rules ~container_layer:"metal1" ~cut_layer:"contact")

let test_cut_window () =
  let rules = rules () in
  let containers =
    [ ("poly", Rect.of_size ~x:0 ~y:0 ~w:(um 4.) ~h:(um 4.));
      ("metal1", Rect.of_size ~x:(um 1.) ~y:0 ~w:(um 4.) ~h:(um 4.)) ]
  in
  match Derive.cut_window rules ~containers ~cut_layer:"contact" with
  | Some w ->
      (* poly shrinks by 0.5, metal by 0.5: window x = max(0.5, 1.5) .. min(3.5, 4.5) *)
      check "window x0" (um 1.5) w.Rect.x0;
      check "window x1" (um 3.5) w.Rect.x1
  | None -> Alcotest.fail "expected a window"

(* --- exporters and analysis --- *)

let sample_obj () =
  let o = Lobj.create "sample" in
  let _ = Lobj.add_shape o ~layer:"poly" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 10.) ~h:(um 2.)) ~net:"g" () in
  let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:(um 4.) ~w:(um 10.) ~h:(um 2.)) ~net:"s" () in
  o

let test_svg () =
  let svg = Amg_layout.Svg.of_lobj ~tech:(tech ()) (sample_obj ()) in
  check_bool "is svg" true (String.length svg > 0 && String.sub svg 0 4 = "<svg");
  let contains sub =
    let n = String.length svg and m = String.length sub in
    let rec go i = i + m <= n && (String.sub svg i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "has pattern defs" true (contains "<pattern id='fill-poly'");
  check_bool "has rects" true (contains "<rect");
  check_bool "has title" true (contains "<title>sample</title>")

let test_cif () =
  let cif = Amg_layout.Cif.of_lobj ~tech:(tech ()) (sample_obj ()) in
  let contains sub =
    let n = String.length cif and m = String.length sub in
    let rec go i = i + m <= n && (String.sub cif i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "layer line" true (contains "L POLY;");
  (* 10 x 2 um box centred at (5, 1) um = 1000 x 200 centimicrons at (500, 100). *)
  check_bool "box line" true (contains "B 1000 200 500 100;");
  check_bool "trailer" true (contains "DF;");
  Alcotest.(check string) "cif layer name" "META" (Amg_layout.Cif.cif_layer_name "metal1")

let test_gds_roundtrip () =
  let tech = tech () in
  let o = sample_obj () in
  let bytes = Amg_layout.Gds.to_bytes ~tech o in
  let name, shapes = Amg_layout.Gds.parse bytes in
  Alcotest.(check string) "structure name" "sample" name;
  check "boundaries" 2 (List.length shapes);
  (* Layers map to the deck's GDS numbers and rectangles survive. *)
  let poly_gds = (Technology.layer_exn tech "poly").Amg_tech.Layer.gds in
  (match List.find_opt (fun (l, _) -> l = poly_gds) shapes with
  | Some (_, r) ->
      check_bool "poly rect" true (r = Rect.of_size ~x:0 ~y:0 ~w:(um 10.) ~h:(um 2.))
  | None -> Alcotest.fail "poly boundary missing");
  (* Markers are not emitted. *)
  let om = Lobj.create "marked" in
  let _ = Lobj.add_shape om ~layer:"subtap" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:100 ~h:100) () in
  let _, ms = Amg_layout.Gds.parse (Amg_layout.Gds.to_bytes ~tech om) in
  check "no marker boundaries" 0 (List.length ms);
  Alcotest.check_raises "malformed" (Amg_layout.Gds.Bad_gds "record length < 4")
    (fun () -> ignore (Amg_layout.Gds.parse "\000\000\000\000"))

let test_ascii () =
  let tech = tech () in
  let art = Amg_layout.Ascii.render ~tech ~width:32 (sample_obj ()) in
  check_bool "non empty" true (String.length art > 32);
  let lines = String.split_on_char '\n' art in
  List.iter
    (fun l -> if l <> "" then check "uniform width" 32 (String.length l))
    lines;
  (* Both layers appear with their distinct glyphs. *)
  let has c = String.exists (Char.equal c) art in
  let gp = Amg_layout.Ascii.layer_glyph tech "poly" in
  let gm = Amg_layout.Ascii.layer_glyph tech "metal1" in
  check_bool "poly glyph" true (has gp);
  check_bool "metal glyph" true (has gm);
  check_bool "glyphs differ" true (gp <> gm);
  Alcotest.(check string) "empty object" "(empty)\n"
    (Amg_layout.Ascii.render ~tech (Lobj.create "e"))

let test_stats () =
  let st = Amg_layout.Stats.of_lobj (sample_obj ()) in
  check "shapes" 2 st.Amg_layout.Stats.shape_count;
  Alcotest.(check (float 0.01)) "bbox area" 60.0 st.Amg_layout.Stats.bbox_area_um2;
  Alcotest.(check (float 0.01)) "density" (40. /. 60.) st.Amg_layout.Stats.density

let test_parasitics () =
  let tech = tech () in
  let o = Lobj.create "cap" in
  (* A 10x10 um metal1 plate: 100 um2 * 30 aF + 40 um * 40 aF = 4600 aF. *)
  let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 10.) ~h:(um 10.)) ~net:"n" () in
  Alcotest.(check (float 0.01)) "plate + fringe" 4.6
    (Amg_layout.Parasitics.net_total ~tech o "n");
  (* Crossing another net adds coupling to both. *)
  let _ = Lobj.add_shape o ~layer:"metal2" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 10.) ~h:(um 10.)) ~net:"m" () in
  let caps = Amg_layout.Parasitics.of_lobj ~tech o in
  let n = List.find (fun c -> c.Amg_layout.Parasitics.net = "n") caps in
  Alcotest.(check (float 0.01)) "coupling" 4.0 n.Amg_layout.Parasitics.coupling_cap


(* --- properties --- *)

(* GDSII round trip: every non-marker shape survives write -> parse with its
   layer number and exact coordinates, whatever the mix. *)
let prop_gds_roundtrip =
  let shape_gen =
    QCheck2.Gen.(
      tup3
        (oneofl [ "pdiff"; "poly"; "metal1"; "metal2"; "contact" ])
        (tup2 (int_range (-20_000) 20_000) (int_range (-20_000) 20_000))
        (tup2 (int_range 50 5_000) (int_range 50 5_000)))
  in
  QCheck2.Test.make ~name:"gds roundtrip exact" ~count:200
    QCheck2.Gen.(list_size (int_range 1 12) shape_gen)
    (fun specs ->
      let tech = tech () in
      let o = Lobj.create "prop" in
      List.iter
        (fun (layer, (x, y), (w, h)) ->
          ignore (Lobj.add_shape o ~layer ~rect:(Rect.of_size ~x ~y ~w ~h) ()))
        specs;
      let _, parsed = Amg_layout.Gds.parse (Amg_layout.Gds.to_bytes ~tech o) in
      let expect =
        List.map
          (fun (layer, (x, y), (w, h)) ->
            ((Technology.layer_exn tech layer).Amg_tech.Layer.gds,
             Rect.of_size ~x ~y ~w ~h))
          specs
      in
      let sort l = List.sort compare l in
      sort parsed = sort expect)

(* Translating an object moves every shape, port and derived array rect by
   exactly the offset; translating back is the identity. *)
let prop_translate_involutive =
  QCheck2.Gen.(
    QCheck2.Test.make ~name:"translate round trip" ~count:200
      (tup2 (int_range (-10_000) 10_000) (int_range (-10_000) 10_000))
      (fun (dx, dy) ->
        let o = Lobj.create "t" in
        let id =
          (Lobj.add_shape o ~layer:"metal1"
             ~rect:(Rect.of_size ~x:0 ~y:0 ~w:2_000 ~h:1_000) ~net:"a" ())
            .Shape.id
        in
        ignore (Lobj.add_port o ~name:"p" ~layer:"metal1" ~net:"a"
          ~rect:(Rect.of_size ~x:0 ~y:0 ~w:2_000 ~h:1_000));
        let before = ((Lobj.find_exn o id).Shape.rect, (Lobj.port_exn o "p").Port.rect) in
        Lobj.translate o ~dx ~dy;
        let moved = (Lobj.find_exn o id).Shape.rect in
        let ok_moved = moved.Rect.x0 = dx && moved.Rect.y0 = dy in
        Lobj.translate o ~dx:(-dx) ~dy:(-dy);
        let after = ((Lobj.find_exn o id).Shape.rect, (Lobj.port_exn o "p").Port.rect) in
        ok_moved && before = after))


(* Import rebuilds the same geometry under the deck's layer names; unknown
   GDS numbers are reported, not silently dropped. *)
let test_gds_import () =
  let tech = tech () in
  let o = Lobj.create "imp" in
  let _ = Lobj.add_shape o ~layer:"poly" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 10.) ~h:(um 2.)) ~net:"g" () in
  let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:(um 4.) ~w:(um 6.) ~h:(um 2.)) () in
  (* Markers are not exported, hence not reimported. *)
  let _ = Lobj.add_shape o ~layer:"subtap" ~rect:(Rect.of_size ~x:0 ~y:(um 8.) ~w:(um 2.) ~h:(um 2.)) () in
  let back, dropped = Amg_layout.Gds.import ~tech (Amg_layout.Gds.to_bytes ~tech o) in
  Alcotest.(check string) "name" "imp" (Lobj.name back);
  check "no dropped layers" 0 (List.length dropped);
  check "two shapes (marker gone)" 2 (Lobj.shape_count back);
  let layer_rects o =
    List.sort compare
      (List.map (fun (s : Shape.t) -> (s.Shape.layer, s.Shape.rect)) (Lobj.shapes o))
  in
  let expected =
    List.filter (fun (l, _) -> l <> "subtap") (layer_rects o)
  in
  check_bool "same geometry" true (layer_rects back = expected);
  (* A deck without the layer reports the dropped GDS number. *)
  let tiny_rules = Rules.create () in
  let tiny = Technology.create ~name:"tiny" ~rules:tiny_rules () in
  Technology.add_layer tiny
    (Amg_tech.Layer.make ~name:"poly" ~kind:Amg_tech.Layer.Poly ~gds:10
       ~fill:(Amg_tech.Patterns.make "#000") ());
  let back2, dropped2 = Amg_layout.Gds.import ~tech:tiny (Amg_layout.Gds.to_bytes ~tech o) in
  check "only poly survives" 1 (Lobj.shape_count back2);
  check_bool "metal1 gds reported" true (List.mem 30 dropped2)

(* Export -> import is the identity on non-marker geometry. *)
let prop_gds_import_roundtrip =
  let shape_gen =
    QCheck2.Gen.(
      tup3
        (oneofl [ "pdiff"; "poly"; "metal1"; "metal2"; "contact" ])
        (tup2 (int_range (-20_000) 20_000) (int_range (-20_000) 20_000))
        (tup2 (int_range 50 5_000) (int_range 50 5_000)))
  in
  QCheck2.Test.make ~name:"gds import roundtrip" ~count:150
    QCheck2.Gen.(list_size (int_range 1 10) shape_gen)
    (fun specs ->
      let tech = tech () in
      let o = Lobj.create "prop" in
      List.iter
        (fun (layer, (x, y), (w, h)) ->
          ignore (Lobj.add_shape o ~layer ~rect:(Rect.of_size ~x ~y ~w ~h) ()))
        specs;
      let back, dropped = Amg_layout.Gds.import ~tech (Amg_layout.Gds.to_bytes ~tech o) in
      let key obj =
        List.sort compare
          (List.map (fun (s : Shape.t) -> (s.Shape.layer, s.Shape.rect)) (Lobj.shapes obj))
      in
      dropped = [] && key back = key o)

let suite =
  [
    Alcotest.test_case "edge sides" `Quick test_edge_sides;
    Alcotest.test_case "shape transform remaps sides" `Quick test_shape_transform;
    Alcotest.test_case "lobj crud" `Quick test_lobj_crud;
    Alcotest.test_case "translate moves ports" `Quick test_lobj_translate_ports;
    Alcotest.test_case "copy is independent" `Quick test_lobj_copy_independent;
    Alcotest.test_case "absorb renumbers ids" `Quick test_absorb_renumbers;
    Alcotest.test_case "rename and qualify nets" `Quick test_rename_and_qualify;
    Alcotest.test_case "equidistant spread" `Quick test_spread;
    Alcotest.test_case "max cuts" `Quick test_max_cuts;
    Alcotest.test_case "cut array rederive" `Quick test_cut_array_and_rederive;
    Alcotest.test_case "cut window" `Quick test_cut_window;
    Alcotest.test_case "svg export" `Quick test_svg;
    Alcotest.test_case "cif export" `Quick test_cif;
    Alcotest.test_case "gds roundtrip" `Quick test_gds_roundtrip;
    Alcotest.test_case "ascii render" `Quick test_ascii;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "parasitics" `Quick test_parasitics;
    Alcotest.test_case "gds import" `Quick test_gds_import;
    QCheck_alcotest.to_alcotest prop_gds_roundtrip;
    QCheck_alcotest.to_alcotest prop_gds_import_roundtrip;
    QCheck_alcotest.to_alcotest prop_translate_involutive;
  ]
