(* Unit and property tests for the geometry substrate, including the
   exhaustive 16-case overlap test of the paper's Fig. 1. *)

module Units = Amg_geometry.Units
module Dir = Amg_geometry.Dir
module Interval = Amg_geometry.Interval
module Rect = Amg_geometry.Rect
module Region = Amg_geometry.Region
module Transform = Amg_geometry.Transform

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- units --- *)

let test_units () =
  check "um to nm" 1500 (Units.of_um 1.5);
  check "rounding" 1001 (Units.of_um 1.0005);
  Alcotest.(check (float 1e-9)) "roundtrip" 2.5 (Units.to_um (Units.of_um 2.5));
  check "snap up" 150 (Units.snap_up ~grid:50 101);
  check "snap up exact" 100 (Units.snap_up ~grid:50 100);
  check "snap down" 100 (Units.snap_down ~grid:50 149);
  check "snap up negative" (-100) (Units.snap_up ~grid:50 (-101));
  check "snap down negative" (-150) (Units.snap_down ~grid:50 (-101));
  Alcotest.check_raises "bad grid" (Invalid_argument "Units.snap_up: grid must be positive")
    (fun () -> ignore (Units.snap_up ~grid:0 1))

(* --- directions --- *)

let test_dir () =
  check_bool "axis north" true (Dir.axis Dir.North = Dir.Vertical);
  check_bool "axis west" true (Dir.axis Dir.West = Dir.Horizontal);
  List.iter
    (fun d ->
      check_bool "opposite involutive" true (Dir.opposite (Dir.opposite d) = d);
      check "sign opposite" (-Dir.sign d) (Dir.sign (Dir.opposite d));
      check_bool "cross axis differs" true (Dir.cross_axis d <> Dir.axis d);
      check_bool "of_string/to_string" true (Dir.of_string (Dir.to_string d) = Some d))
    Dir.all;
  check_bool "parse aliases" true (Dir.of_string "left" = Some Dir.West);
  check_bool "parse bad" true (Dir.of_string "diagonal" = None)

(* --- intervals --- *)

let test_interval_classify () =
  let over = Interval.make 0 10 in
  let cases =
    [
      (Interval.make 20 30, Interval.Disjoint);
      (Interval.make (-5) 15, Interval.Covers);
      (Interval.make 0 10, Interval.Covers);
      (Interval.make (-5) 5, Interval.Low_end);
      (Interval.make 5 15, Interval.High_end);
      (Interval.make 3 7, Interval.Inside);
      (Interval.make 10 20, Interval.Disjoint);  (* only touching *)
    ]
  in
  List.iter
    (fun (of_, expected) ->
      Alcotest.check
        (Alcotest.testable Interval.pp_overlap Interval.equal_overlap)
        "classify" expected
        (Interval.classify ~of_ ~over))
    cases

let test_interval_subtract () =
  let a = Interval.make 0 10 in
  let total = List.fold_left (fun acc i -> acc + Interval.length i) 0 in
  check "disjoint" 10 (total (Interval.subtract a (Interval.make 20 30)));
  check "covered" 0 (total (Interval.subtract a (Interval.make (-1) 11)));
  check "low end" 5 (total (Interval.subtract a (Interval.make (-5) 5)));
  check "high end" 4 (total (Interval.subtract a (Interval.make 4 20)));
  check "inside" 6 (total (Interval.subtract a (Interval.make 3 7)));
  check "inside pieces" 2 (List.length (Interval.subtract a (Interval.make 3 7)))

(* --- rectangles --- *)

let r ~x0 ~y0 ~x1 ~y1 = Rect.make ~x0 ~y0 ~x1 ~y1

let test_rect_basics () =
  let a = r ~x0:10 ~y0:0 ~x1:0 ~y1:20 in
  check "normalised x0" 0 a.Rect.x0;
  check "width" 10 (Rect.width a);
  check "area" 200 (Rect.area a);
  check "side north" 20 (Rect.side a Dir.North);
  check "side west" 0 (Rect.side a Dir.West);
  let b = Rect.of_size ~x:5 ~y:5 ~w:10 ~h:10 in
  check_bool "overlaps" true (Rect.overlaps a b);
  check_bool "touch not overlap" false
    (Rect.overlaps a (r ~x0:10 ~y0:0 ~x1:20 ~y1:20));
  check_bool "touches abutting" true (Rect.touches a (r ~x0:10 ~y0:0 ~x1:20 ~y1:20));
  check_bool "contains" true (Rect.contains_rect a (r ~x0:2 ~y0:2 ~x1:8 ~y1:8));
  check_bool "not contains" false (Rect.contains_rect a (r ~x0:2 ~y0:2 ~x1:18 ~y1:8));
  check "gap positive" 5 (Rect.gap Dir.Horizontal a (r ~x0:15 ~y0:0 ~x1:20 ~y1:5));
  check_bool "gap negative when overlapping" true
    (Rect.gap Dir.Horizontal a b < 0);
  check "grow side" 25 (Rect.side (Rect.grow_side a Dir.North 5) Dir.North);
  check "with side" 3 (Rect.side (Rect.with_side a Dir.South 3) Dir.South);
  Alcotest.check_raises "of_size negative"
    (Invalid_argument "Rect.of_size: negative size") (fun () ->
      ignore (Rect.of_size ~x:0 ~y:0 ~w:(-1) ~h:1))

(* The Fig. 1 test: for all 16 horizontal x vertical overlap cases the
   subtraction must leave exactly the uncovered area, in disjoint pieces. *)
let test_fig1_sixteen_cases () =
  let solid = r ~x0:0 ~y0:0 ~x1:100 ~y1:100 in
  (* Four horizontal cases x four vertical cases (the paper's grid). *)
  let spans = [ (-20, 120); (-20, 60); (40, 120); (30, 70) ] in
  let case_count = ref 0 in
  List.iter
    (fun (hx0, hx1) ->
      List.iter
        (fun (vy0, vy1) ->
          incr case_count;
          let cover = r ~x0:hx0 ~y0:vy0 ~x1:hx1 ~y1:vy1 in
          let residue = Rect.subtract solid cover in
          (* Residue pieces are inside the solid and disjoint from cover. *)
          List.iter
            (fun p ->
              check_bool "inside solid" true (Rect.contains_rect solid p);
              check_bool "disjoint from cover" false (Rect.overlaps p cover))
            residue;
          (* Pairwise disjoint. *)
          List.iteri
            (fun i p ->
              List.iteri
                (fun j q ->
                  if i < j then check_bool "pieces disjoint" false (Rect.overlaps p q))
                residue)
            residue;
          (* Exact area accounting. *)
          let inter_area =
            match Rect.inter solid cover with Some i -> Rect.area i | None -> 0
          in
          check "area accounting"
            (Rect.area solid - inter_area)
            (List.fold_left (fun acc p -> acc + Rect.area p) 0 residue))
        spans)
    spans;
  check "sixteen cases" 16 !case_count

let test_overlap_case () =
  let solid = r ~x0:0 ~y0:0 ~x1:100 ~y1:100 in
  let cover = r ~x0:(-10) ~y0:40 ~x1:110 ~y1:60 in
  let h, v = Rect.overlap_case solid cover in
  check_bool "h covers" true (h = Interval.Covers);
  check_bool "v inside" true (v = Interval.Inside)

(* --- region --- *)

let test_region () =
  let solids = [ r ~x0:0 ~y0:0 ~x1:10 ~y1:10; r ~x0:20 ~y0:0 ~x1:30 ~y1:10 ] in
  check_bool "covered by one big" true
    (Region.covered ~solids ~covers:[ r ~x0:(-1) ~y0:(-1) ~x1:31 ~y1:11 ]);
  check_bool "not covered" false
    (Region.covered ~solids ~covers:[ r ~x0:(-1) ~y0:(-1) ~x1:15 ~y1:11 ]);
  check_bool "covered by two" true
    (Region.covered ~solids
       ~covers:[ r ~x0:0 ~y0:0 ~x1:10 ~y1:10; r ~x0:20 ~y0:0 ~x1:30 ~y1:10 ]);
  (* Successive subtraction: covers may each leave parts that later covers
     remove. *)
  check_bool "striped covers" true
    (Region.covered
       ~solids:[ r ~x0:0 ~y0:0 ~x1:30 ~y1:10 ]
       ~covers:
         [ r ~x0:0 ~y0:0 ~x1:12 ~y1:10; r ~x0:10 ~y0:0 ~x1:22 ~y1:10;
           r ~x0:20 ~y0:0 ~x1:30 ~y1:10 ]);
  check "union area disjoint" 200 (Region.area solids);
  check "union area overlapping" 150
    (Region.area [ r ~x0:0 ~y0:0 ~x1:10 ~y1:10; r ~x0:5 ~y0:0 ~x1:15 ~y1:10 ]);
  check "union area nested" 100
    (Region.area [ r ~x0:0 ~y0:0 ~x1:10 ~y1:10; r ~x0:2 ~y0:2 ~x1:8 ~y1:8 ]);
  check "empty area" 0 (Region.area [])

(* --- transforms --- *)

let test_transform () =
  let p = (3, 7) in
  let all_orients =
    [ Transform.R0; R90; R180; R270; MX; MY; MXR90; MYR90 ]
  in
  (* Orientations preserve the L-inf norm and form a group of order 8. *)
  List.iter
    (fun o ->
      let x, y = Transform.orient_point o p in
      check "norm preserved" (max (abs 3) (abs 7)) (max (abs x) (abs y)))
    all_orients;
  (* Composition is consistent with application. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let composed = Transform.compose_orient a b in
          check_bool "compose law" true
            (Transform.orient_point composed p
            = Transform.orient_point a (Transform.orient_point b p)))
        all_orients)
    all_orients;
  (* Mirrors are involutions. *)
  let rect = r ~x0:1 ~y0:2 ~x1:5 ~y1:9 in
  check_bool "mirror x involutive" true
    (Transform.mirror_rect_x ~axis_x:10 (Transform.mirror_rect_x ~axis_x:10 rect) = rect);
  check_bool "mirror y involutive" true
    (Transform.mirror_rect_y ~axis_y:4 (Transform.mirror_rect_y ~axis_y:4 rect) = rect);
  (* Full transform on a rect keeps the area. *)
  let tr = { Transform.orient = Transform.R90; dx = 100; dy = -50 } in
  check "area preserved" (Rect.area rect) (Rect.area (Transform.rect tr rect))

(* --- property tests --- *)

let rect_gen =
  QCheck2.Gen.(
    let coord = int_range (-50) 50 in
    map (fun (x0, y0, x1, y1) -> Rect.make ~x0 ~y0 ~x1 ~y1) (tup4 coord coord coord coord))

let prop_subtract_invariants =
  QCheck2.Test.make ~name:"rect subtract invariants" ~count:500
    QCheck2.Gen.(tup2 rect_gen rect_gen)
    (fun (a, b) ->
      let pieces = Rect.subtract a b in
      let inter_area = match Rect.inter a b with Some i -> Rect.area i | None -> 0 in
      List.for_all (fun p -> Rect.contains_rect a p) pieces
      && List.for_all (fun p -> not (Rect.overlaps p b)) pieces
      && List.fold_left (fun acc p -> acc + Rect.area p) 0 pieces
         = Rect.area a - inter_area)

let prop_union_area_bounds =
  QCheck2.Test.make ~name:"region union area bounds" ~count:300
    QCheck2.Gen.(list_size (int_range 0 6) rect_gen)
    (fun rects ->
      let u = Region.area rects in
      let sum = List.fold_left (fun acc rc -> acc + Rect.area rc) 0 rects in
      let mx = List.fold_left (fun acc rc -> max acc (Rect.area rc)) 0 rects in
      u <= sum && u >= mx)

let prop_gap_symmetry =
  QCheck2.Test.make ~name:"rect gap symmetric" ~count:300
    QCheck2.Gen.(tup2 rect_gen rect_gen)
    (fun (a, b) ->
      Rect.gap Dir.Horizontal a b = Rect.gap Dir.Horizontal b a
      && Rect.gap Dir.Vertical a b = Rect.gap Dir.Vertical b a)

let prop_interval_subtract =
  QCheck2.Test.make ~name:"interval subtract lengths" ~count:500
    QCheck2.Gen.(tup4 (int_range (-50) 50) (int_range (-50) 50) (int_range (-50) 50) (int_range (-50) 50))
    (fun (a0, a1, b0, b1) ->
      let a = Interval.make a0 a1 and b = Interval.make b0 b1 in
      let pieces = Interval.subtract a b in
      let inter_len =
        match Interval.inter a b with Some i -> Interval.length i | None -> 0
      in
      List.fold_left (fun acc i -> acc + Interval.length i) 0 pieces
      = Interval.length a - inter_len)


let prop_residue_exact =
  (* Residue of the successive-subtraction cover check (Fig. 1) measures
     exactly union(solids) minus union(covers). *)
  QCheck2.Test.make ~name:"region residue area exact" ~count:300
    QCheck2.Gen.(
      tup2 (list_size (int_range 1 5) rect_gen) (list_size (int_range 0 5) rect_gen))
    (fun (solids, covers) ->
      let solids = Region.of_rects solids and covers = Region.of_rects covers in
      let res = Region.residue ~solids ~covers in
      let clips =
        List.concat_map (fun s -> Region.inter_rect covers s) solids
      in
      Region.area res = Region.area solids - Region.area clips
      && Region.covered ~solids ~covers = Region.is_empty (Region.of_rects res))

let prop_region_contains_point =
  QCheck2.Test.make ~name:"region contains_point consistent" ~count:300
    QCheck2.Gen.(
      tup3 (list_size (int_range 0 5) rect_gen) (int_range (-60) 60)
        (int_range (-60) 60))
    (fun (rects, x, y) ->
      let region = Region.of_rects rects in
      Region.contains_point region ~x ~y
      = List.exists
          (fun rc ->
            x >= rc.Rect.x0 && x <= rc.Rect.x1 && y >= rc.Rect.y0 && y <= rc.Rect.y1)
          region)

let prop_orientation_inverse =
  (* Every D4 orientation has an inverse in the group; transforming a rect
     there and back is the identity. *)
  let all = [ Transform.R0; R90; R180; R270; MX; MY; MXR90; MYR90 ] in
  QCheck2.Test.make ~name:"orientation inverses" ~count:200
    QCheck2.Gen.(tup2 (oneofl all) rect_gen)
    (fun (o, rc) ->
      match
        List.find_opt (fun i -> Transform.compose_orient i o = Transform.R0) all
      with
      | None -> false
      | Some inv ->
          let t = Transform.of_orientation o
          and ti = Transform.of_orientation inv in
          Transform.rect ti (Transform.rect t rc) = rc)

let suite =
  [
    Alcotest.test_case "units" `Quick test_units;
    Alcotest.test_case "directions" `Quick test_dir;
    Alcotest.test_case "interval classify" `Quick test_interval_classify;
    Alcotest.test_case "interval subtract" `Quick test_interval_subtract;
    Alcotest.test_case "rect basics" `Quick test_rect_basics;
    Alcotest.test_case "fig1 sixteen overlap cases" `Quick test_fig1_sixteen_cases;
    Alcotest.test_case "overlap case classification" `Quick test_overlap_case;
    Alcotest.test_case "region cover and area" `Quick test_region;
    Alcotest.test_case "transform group" `Quick test_transform;
    QCheck_alcotest.to_alcotest prop_subtract_invariants;
    QCheck_alcotest.to_alcotest prop_union_area_bounds;
    QCheck_alcotest.to_alcotest prop_gap_symmetry;
    QCheck_alcotest.to_alcotest prop_interval_subtract;
    QCheck_alcotest.to_alcotest prop_residue_exact;
    QCheck_alcotest.to_alcotest prop_region_contains_point;
    QCheck_alcotest.to_alcotest prop_orientation_inverse;
  ]
