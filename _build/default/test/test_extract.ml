(* Layout extraction and layout-versus-schematic comparison. *)

module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module M = Amg_modules
module X = Amg_extract
module D = Amg_circuit.Device
module Netlist = Amg_circuit.Netlist

let um = Units.of_um
let env () = Env.bicmos ()
let tech () = Env.tech (env ())

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let extract obj = X.Devices.extract ~tech:(tech ()) obj

let test_connectivity_basics () =
  let o = Lobj.create "c" in
  let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 4.) ~h:(um 2.)) ~net:"a" () in
  let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:(um 4.) ~y:0 ~w:(um 4.) ~h:(um 2.)) ~net:"b" () in
  let conn = X.Connectivity.build ~tech:(tech ()) o in
  (* Touching same-layer shapes merge; conflicting labels are a short. *)
  check "one node" 1 (X.Connectivity.node_count conn);
  check "one short" 1 (List.length (X.Connectivity.shorts conn));
  (* Disjoint shapes stay apart. *)
  let o2 = Lobj.create "c2" in
  let _ = Lobj.add_shape o2 ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.)) ~net:"a" () in
  let _ = Lobj.add_shape o2 ~layer:"metal1" ~rect:(Rect.of_size ~x:(um 4.) ~y:0 ~w:(um 2.) ~h:(um 2.)) ~net:"b" () in
  let conn2 = X.Connectivity.build ~tech:(tech ()) o2 in
  check "two nodes" 2 (X.Connectivity.node_count conn2);
  check "no short" 0 (List.length (X.Connectivity.shorts conn2))

let test_cut_connects_layers () =
  let e = env () in
  let o = Lobj.create "v" in
  let _ = Amg_route.Wire.via e o ~at:(0, 0) ~net:"n" () in
  let conn = X.Connectivity.build ~tech:(tech ()) o in
  check "via merges metals" 1 (X.Connectivity.node_count conn);
  (* Without the cut the metals are separate. *)
  let o2 = Lobj.create "v2" in
  let _ = Lobj.add_shape o2 ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.)) () in
  let _ = Lobj.add_shape o2 ~layer:"metal2" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.)) () in
  let conn2 = X.Connectivity.build ~tech:(tech ()) o2 in
  check "stacked metals isolated" 2 (X.Connectivity.node_count conn2)

let test_channel_splits_diffusion () =
  let o = Lobj.create "g" in
  (* A diffusion crossed by a gate: the two sides must be distinct nodes. *)
  let _ = Lobj.add_shape o ~layer:"pdiff" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 10.) ~h:(um 4.)) () in
  let _ = Lobj.add_shape o ~layer:"poly" ~rect:(Rect.of_size ~x:(um 4.) ~y:(- um 1.) ~w:(um 2.) ~h:(um 6.)) ~net:"g" () in
  let conn = X.Connectivity.build ~tech:(tech ()) o in
  let left = X.Connectivity.node_at conn ~layer:"pdiff" ~x:(um 1.) ~y:(um 2.) in
  let right = X.Connectivity.node_at conn ~layer:"pdiff" ~x:(um 9.) ~y:(um 2.) in
  check_bool "both found" true (left <> None && right <> None);
  check_bool "separate" true (left <> right)

let test_well_does_not_conduct () =
  let e = env () in
  (* A PMOS with its well: gate, source, drain stay separate. *)
  let t = M.Mosfet.make e ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 2.) () in
  let ex = extract t in
  check "one device" 1 (List.length ex.X.Devices.mosfets);
  check "no shorts" 0 (List.length ex.X.Devices.short_nets);
  let m = List.hd ex.X.Devices.mosfets in
  check_bool "nets" true
    (m.X.Devices.x_g = "g"
    && List.sort compare [ m.X.Devices.x_s; m.X.Devices.x_d ] = [ "d"; "s" ]);
  check "width" (um 10.) m.X.Devices.x_w;
  check "length" (um 2.) m.X.Devices.x_l

let test_extract_diff_pair () =
  let e = env () in
  let dp = M.Diff_pair.make e ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 5.) () in
  let ex = extract dp in
  check "two devices" 2 (List.length ex.X.Devices.mosfets);
  List.iter
    (fun (m : X.Devices.mos) ->
      check_bool "shares s" true
        (m.X.Devices.x_s = "s" || m.X.Devices.x_d = "s"))
    ex.X.Devices.mosfets

let test_extract_mirror_diode () =
  let e = env () in
  let mir = M.Current_mirror.symmetric e ~polarity:M.Mosfet.Nmos ~w:(um 8.) ~l:(um 2.) () in
  let ex = extract mir in
  check "two merged devices" 2 (List.length ex.X.Devices.mosfets);
  let diode =
    List.find
      (fun (m : X.Devices.mos) ->
        m.X.Devices.x_g = m.X.Devices.x_d || m.X.Devices.x_g = m.X.Devices.x_s)
      ex.X.Devices.mosfets
  in
  (* Diode-connected but not a dummy. *)
  check_bool "not dummy" false (X.Devices.is_dummy diode);
  check "diode width merged" (um 16.) diode.X.Devices.x_w

let test_extract_module_e () =
  let e = env () in
  let cc = M.Common_centroid.make e ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 2.) () in
  let ex = extract cc in
  let live = List.filter (fun m -> not (X.Devices.is_dummy m)) ex.X.Devices.mosfets in
  let dummies = List.filter X.Devices.is_dummy ex.X.Devices.mosfets in
  check "two live devices" 2 (List.length live);
  check "one merged dummy bank" 1 (List.length dummies);
  List.iter
    (fun (m : X.Devices.mos) ->
      check "live width 4 fingers" (um 40.) m.X.Devices.x_w;
      check_bool "tail source" true (m.X.Devices.x_s = "tail" || m.X.Devices.x_d = "tail"))
    live;
  (* 16 dummy fingers of 10 um. *)
  check "dummy bank width" (um 160.) (List.hd dummies).X.Devices.x_w;
  check "no shorts" 0 (List.length ex.X.Devices.short_nets)

let test_extract_bjt () =
  let e = env () in
  let q = M.Bipolar.make e ~we:(um 2.) ~le:(um 8.) () in
  let ex = extract q in
  check "one npn" 1 (List.length ex.X.Devices.bjts);
  check_bool "terminals" true (ex.X.Devices.bjts = [ ("c", "b", "e") ])

let test_extract_resistor_cap () =
  let e = env () in
  let r, ohms = M.Resistor.make e ~squares:80. () in
  let ex = extract r in
  (match ex.X.Devices.resistors with
  | [ (a, b, v) ] ->
      check_bool "terminals" true (List.sort compare [ a; b ] = [ "a"; "b" ]);
      check_bool "value close to generator" true
        (Float.abs (v -. ohms) /. ohms < 0.15)
  | _ -> Alcotest.fail "one resistor");
  check "film not shorted" 0 (List.length ex.X.Devices.short_nets);
  let c, ff = M.Capacitor.make e ~cap_ff:300. () in
  let exc = extract c in
  (match exc.X.Devices.capacitors with
  | [ (t, b, v) ] ->
      check_bool "plates" true (t = "top" && b = "bot");
      check_bool "value" true (Float.abs (v -. ff) < 1.)
  | _ -> Alcotest.fail "one capacitor");
  (* Regression: the top-plate contacts must not short the plates. *)
  check "plates isolated" 0 (List.length exc.X.Devices.short_nets)

let test_short_detection () =
  let o = Lobj.create "s" in
  let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 4.) ~h:(um 2.)) ~net:"x" () in
  let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:(um 2.) ~y:0 ~w:(um 4.) ~h:(um 2.)) ~net:"y" () in
  let ex = extract o in
  check_bool "short reported" true (ex.X.Devices.short_nets = [ [ "x"; "y" ] ])

let test_lvs_amplifier () =
  let e = env () in
  let r = Amg_amplifier.Amplifier.build e in
  let ex = extract r.Amg_amplifier.Amplifier.obj in
  let result = X.Compare.run ~golden:(Amg_amplifier.Schematic.netlist ()) ex in
  if not (X.Compare.clean result) then
    Alcotest.failf "%a" X.Compare.pp_result result;
  check "all devices matched" 14 result.X.Compare.matched

let test_lvs_detects_wrong_netlist () =
  let e = env () in
  let dp = M.Diff_pair.make e ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 5.) () in
  let ex = extract dp in
  (* Golden netlist with a wrong width and a missing device. *)
  let golden =
    Netlist.create ~name:"bad"
      [
        D.mos ~name:"M1" ~polarity:D.Pmos ~w:(um 20.) ~l:(um 5.) ~g:"g1" ~d:"d1" ~s:"s" ~b:"w";
        D.mos ~name:"M2" ~polarity:D.Pmos ~w:(um 10.) ~l:(um 5.) ~g:"g2" ~d:"d2" ~s:"s" ~b:"w";
        D.mos ~name:"M3" ~polarity:D.Pmos ~w:(um 10.) ~l:(um 5.) ~g:"g3" ~d:"d3" ~s:"s" ~b:"w";
      ]
  in
  let result = X.Compare.run ~golden ex in
  check_bool "not clean" false (X.Compare.clean result);
  check_bool "reports size mismatch" true
    (List.exists
       (function X.Compare.Size_mismatch _ -> true | _ -> false)
       result.X.Compare.mismatches);
  check_bool "reports missing" true
    (List.exists
       (function X.Compare.Missing_device _ -> true | _ -> false)
       result.X.Compare.mismatches)


let test_reduce_resistors () =
  let internal n = String.length n > 1 && n.[0] = 'n' in
  (* Chain a -n1- n1 -n2- b collapses to one summed resistor. *)
  let reduced =
    X.Devices.reduce_resistors ~internal
      [ ("a", "n1", 100.); ("n1", "n2", 50.); ("n2", "b", 25.) ]
  in
  Alcotest.(check (list (triple string string (float 1e-6))))
    "series chain" [ ("a", "b", 175.) ] reduced;
  (* A labeled middle node blocks the merge. *)
  let kept =
    X.Devices.reduce_resistors ~internal [ ("a", "mid", 100.); ("mid", "b", 50.) ]
  in
  check "labeled node kept" 2 (List.length kept);
  (* A node touched by three resistors is a real junction. *)
  let star =
    X.Devices.reduce_resistors ~internal
      [ ("a", "n1", 1.); ("b", "n1", 1.); ("c", "n1", 1.) ]
  in
  check "star kept" 3 (List.length star);
  (* Parallel resistors combine reciprocally. *)
  (match X.Devices.reduce_resistors ~internal [ ("a", "b", 100.); ("b", "a", 100.) ] with
  | [ (_, _, v) ] -> Alcotest.(check (float 1e-6)) "parallel" 50. v
  | _ -> Alcotest.fail "one resistor expected");
  (* Series then parallel: two equal chains between a and b. *)
  (match
     X.Devices.reduce_resistors ~internal
       [ ("a", "n1", 60.); ("n1", "b", 40.); ("a", "n2", 30.); ("n2", "b", 70.) ]
   with
  | [ (_, _, v) ] -> Alcotest.(check (float 1e-6)) "bridge" 50. v
  | _ -> Alcotest.fail "one resistor expected")

(* --- SPICE export --- *)

let check_str = Alcotest.(check string)

let has_sub sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_spice_values () =
  check_str "ohms k" "2k" (X.Spice.si_value 2000.);
  check_str "ohms plain" "470" (X.Spice.si_value 470.);
  check_str "farads f" "400f" (X.Spice.si_value 4e-13);
  check_str "farads p" "1.5p" (X.Spice.si_value 1.5e-12);
  check_str "metres u" "10u" (X.Spice.si_value 1e-5);
  check_str "meg" "4.7meg" (X.Spice.si_value 4.7e6);
  check_str "zero" "0" (X.Spice.si_value 0.);
  check_str "node ground" "0" (X.Spice.node "");
  check_str "node hier" "pair_out" (X.Spice.node "pair/out")

let test_spice_cards () =
  check_str "mos card"
    "MM1 out in vss vss nmos1u w=10u l=2u"
    (X.Spice.device_card
       (D.mos ~name:"M1" ~polarity:D.Nmos ~w:(um 10.) ~l:(um 2.) ~g:"in"
          ~d:"out" ~s:"vss" ~b:"vss"));
  check_str "bjt card" "QQ1 vdd b out npn1u"
    (X.Spice.device_card (D.bjt ~name:"Q1" ~c:"vdd" ~b:"b" ~e:"out"));
  check_str "res card" "RR1 a b 2k"
    (X.Spice.device_card (D.res ~name:"R1" ~a:"a" ~b:"b" ~ohms:2000.));
  check_str "cap card" "CC1 t b 400f"
    (X.Spice.device_card (D.cap ~name:"C1" ~a:"t" ~b:"b" ~ff:400.))

let test_spice_subckt () =
  let nl =
    Netlist.create ~name:"amp" ~external_ports:[ "in"; "out"; "vdd"; "vss" ]
      [
        D.mos ~name:"M1" ~polarity:D.Nmos ~w:(um 10.) ~l:(um 2.) ~g:"in"
          ~d:"out" ~s:"vss" ~b:"vss";
        D.res ~name:"R1" ~a:"vdd" ~b:"out" ~ohms:10_000.;
      ]
  in
  let lines = X.Spice.subckt_of_netlist nl in
  check_str "header" ".subckt amp in out vdd vss" (List.hd lines);
  check_str "footer" ".ends" (List.nth lines (List.length lines - 1));
  check "card count" 4 (List.length lines);
  (* A netlist without ports is emitted flat. *)
  let flat = Netlist.create ~name:"flat" [ D.res ~name:"R" ~a:"a" ~b:"b" ~ohms:1. ] in
  check_bool "flat has no .ends" false
    (List.mem ".ends" (X.Spice.subckt_of_netlist flat))

let test_spice_of_extracted () =
  let e = env () in
  let dp = M.Diff_pair.make e ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 5.) () in
  let deck = X.Spice.of_extracted (extract dp) in
  let lines = String.split_on_char '\n' deck in
  let mos = List.filter (fun l -> String.length l > 0 && l.[0] = 'M') lines in
  check "two mos cards" 2 (List.length mos);
  List.iter
    (fun l -> begin
       check_bool "pmos model" true
         (has_sub "pmos1u" l);
       check_bool "width" true (has_sub "w=10u" l);
       check_bool "length" true (has_sub "l=5u" l)
     end)
    mos;
  check_bool "ends with .end" true (has_sub ".end" deck)

let test_spice_amplifier_deck () =
  (* The extracted amplifier deck names every schematic net and carries the
     exact R and C values. *)
  let e = env () in
  let r = Amg_amplifier.Amplifier.build e in
  let x = extract r.Amg_amplifier.Amplifier.obj in
  let deck = X.Spice.of_extracted x in
  let contains sub = has_sub sub deck in
  List.iter
    (fun net -> check_bool ("mentions " ^ net) true (contains net))
    [ "inp"; "inn"; "out"; "vdd"; "vss"; "tail"; "npn1u" ];
  check_bool "no shorts recorded" true (x.X.Devices.short_nets = []);
  check_bool "no SHORT comments" false (contains "SHORT")

let suite =
  [
    Alcotest.test_case "connectivity basics" `Quick test_connectivity_basics;
    Alcotest.test_case "cuts connect layers" `Quick test_cut_connects_layers;
    Alcotest.test_case "channel splits diffusion" `Quick test_channel_splits_diffusion;
    Alcotest.test_case "well does not conduct" `Quick test_well_does_not_conduct;
    Alcotest.test_case "extract diff pair" `Quick test_extract_diff_pair;
    Alcotest.test_case "extract mirror diode" `Quick test_extract_mirror_diode;
    Alcotest.test_case "extract module E" `Quick test_extract_module_e;
    Alcotest.test_case "extract bipolar" `Quick test_extract_bjt;
    Alcotest.test_case "extract R and C" `Quick test_extract_resistor_cap;
    Alcotest.test_case "short detection" `Quick test_short_detection;
    Alcotest.test_case "LVS: full amplifier clean" `Quick test_lvs_amplifier;
    Alcotest.test_case "LVS: detects wrong netlist" `Quick test_lvs_detects_wrong_netlist;
    Alcotest.test_case "resistor series/parallel reduction" `Quick test_reduce_resistors;
    Alcotest.test_case "SPICE: SI values and nodes" `Quick test_spice_values;
    Alcotest.test_case "SPICE: device cards" `Quick test_spice_cards;
    Alcotest.test_case "SPICE: subckt wrapper" `Quick test_spice_subckt;
    Alcotest.test_case "SPICE: extracted diff pair" `Quick test_spice_of_extracted;
    Alcotest.test_case "SPICE: amplifier deck" `Quick test_spice_amplifier_deck;
  ]
