(* The module library: every generator builds DRC-clean and keeps its
   analog properties (shared rows, straps, symmetry, matching). *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Env = Amg_core.Env
module M = Amg_modules

let um = Units.of_um
let env () = Env.bicmos ()

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let drc ?(checks = [ Amg_drc.Checker.Widths; Spacings; Enclosures; Extensions ]) obj =
  List.length (Amg_drc.Checker.run ~checks ~tech:(Env.tech (env ())) obj)

let test_contact_row () =
  let e = env () in
  let o = M.Contact_row.make e ~layer:"pdiff" ~w:(um 2.) ~l:(um 10.) ~net:"x" ~port:"x" () in
  check "drc" 0 (drc o);
  check "contacts" 4 (List.length (Lobj.shapes_on o "contact"));
  check_bool "port present" true (Lobj.port o "x" <> None);
  (* Contacts inherit the net. *)
  List.iter
    (fun (s : Shape.t) -> check_bool "net" true (s.Shape.net = Some "x"))
    (Lobj.shapes o)

let test_via_row () =
  let e = env () in
  let o = M.Contact_row.via_row e ~l:(um 10.) ~net:"x" ~port:"x" () in
  check "drc" 0 (drc o);
  check_bool "has metal2" true (List.mem "metal2" (Lobj.layers o));
  check_bool "vias" true (List.length (Lobj.shapes_on o "via") >= 3);
  check_bool "port on metal2" true
    (match Lobj.port o "x" with Some p -> p.Amg_layout.Port.layer = "metal2" | None -> false)

let test_taps () =
  let e = env () in
  let sub = M.Contact_row.substrate_tap e ~l:(um 20.) () in
  check "drc" 0 (drc sub);
  check_bool "marker present" true (Lobj.shapes_on sub "subtap" <> []);
  check_bool "vss net" true
    (List.exists (fun (s : Shape.t) -> s.Shape.net = Some "vss") (Lobj.shapes sub));
  let well = M.Contact_row.well_tap e () in
  check_bool "well tap marker" true (Lobj.shapes_on well "subtap" <> []);
  check_bool "ndiff landing" true (List.mem "ndiff" (Lobj.layers well))

let test_guard_ring () =
  let e = env () in
  let o = Lobj.create "core" in
  let _ = Amg_core.Prim.inbox e o ~layer:"poly" ~w:(um 4.) ~l:(um 4.) () in
  let legs = M.Contact_row.guard_ring e o ~layer:"pdiff" () in
  check "four legs" 4 (List.length legs);
  check_bool "contacts in legs" true (Lobj.shapes_on o "contact" <> []);
  check_bool "subtap markers" true (List.length (Lobj.shapes_on o "subtap") = 4);
  check "drc" 0 (drc o)

let test_mosfet () =
  let e = env () in
  let o = M.Mosfet.make e ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 2.) () in
  check "drc" 0 (drc o);
  check_bool "ports" true
    (List.map (fun (p : Amg_layout.Port.t) -> p.Amg_layout.Port.name) (Lobj.ports o)
    = [ "g"; "s"; "d" ]);
  check_bool "well present" true (Lobj.shapes_on o "nwell" <> []);
  (* NMOS has no well. *)
  let n = M.Mosfet.make e ~polarity:M.Mosfet.Nmos ~w:(um 10.) ~l:(um 2.) () in
  check_bool "no well" true (Lobj.shapes_on n "nwell" = []);
  check_bool "ndiff" true (List.mem "ndiff" (Lobj.layers n));
  check "drc nmos" 0 (drc n)

let test_diff_pair () =
  let e = env () in
  let o = M.Diff_pair.make e ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 5.) () in
  check "drc" 0 (drc o);
  (* Three diffusion contact rows and two gates (paper: "two transistors,
     three diffusion-contact-rows and two poly-contacts"). *)
  let row_nets =
    List.filter_map (fun (s : Shape.t) -> s.Shape.net) (Lobj.shapes_on o "pdiff")
    |> List.sort_uniq compare
  in
  check_bool "row nets" true (row_nets = [ "d1"; "d2"; "s" ]);
  let gates =
    List.filter
      (fun (s : Shape.t) ->
        Shape.on_layer s "poly" && Rect.height s.Shape.rect > um 10.)
      (Lobj.shapes o)
  in
  check "two gates" 2 (List.length gates)

let test_interdigitated () =
  let e = env () in
  let o =
    M.Interdigitated.make e ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 2.)
      ~fingers:4 ()
  in
  check "drc" 0 (drc o);
  check "rows" 5 (M.Interdigitated.row_count ~fingers:4);
  (* The source strap merged with the source rows: one connected s region
     touching the strap.  Verify port nets exist. *)
  List.iter
    (fun n -> check_bool ("port " ^ n) true (Lobj.port o n <> None))
    [ "g"; "s"; "d" ]

let test_mos_array_validation () =
  let e = env () in
  check_bool "bad columns rejected" true
    (match
       M.Mos_array.make e ~polarity:M.Mosfet.Nmos ~w:(um 4.) ~l:(um 2.)
         ~columns:[ M.Mos_array.Fin "g" ] ~straps:[] ()
     with
    | exception Env.Rejected _ -> true
    | _ -> false)

let test_current_mirrors () =
  let e = env () in
  let simple = M.Current_mirror.simple e ~polarity:M.Mosfet.Nmos ~w:(um 8.) ~l:(um 2.) () in
  check "simple drc" 0 (drc simple);
  let sym = M.Current_mirror.symmetric e ~polarity:M.Mosfet.Nmos ~w:(um 8.) ~l:(um 2.) () in
  check "symmetric drc" 0 (drc sym);
  (* The symmetric mirror has the diode row in the middle: vg diffusion
     centred between the two dout rows. *)
  let rows net =
    List.filter_map
      (fun (s : Shape.t) ->
        if Shape.on_layer s "ndiff" && s.Shape.net = Some net then
          Some (Rect.center_x s.Shape.rect)
        else None)
      (Lobj.shapes sym)
  in
  (match (rows "vg", rows "dout") with
  | [ diode ], [ o1; o2 ] ->
      check "diode centred" (diode * 2) (o1 + o2)
  | _ -> Alcotest.fail "expected 1 diode and 2 output rows");
  check_bool "ports" true
    (Lobj.port sym "vg" <> None && Lobj.port sym "dout" <> None && Lobj.port sym "vss" <> None)

let test_cross_coupled () =
  let e = env () in
  let o = M.Cross_coupled.common_gate e ~polarity:M.Mosfet.Nmos ~w:(um 8.) ~l:(um 2.) () in
  check "drc" 0 (drc o);
  (* ABBA symmetry: dA rows outermost, dB in the middle. *)
  let xs net =
    List.filter_map
      (fun (s : Shape.t) ->
        if Shape.on_layer s "ndiff" && s.Shape.net = Some net then
          Some (Rect.center_x s.Shape.rect)
        else None)
      (Lobj.shapes o)
    |> List.sort compare
  in
  (match (xs "da", xs "db") with
  | [ a1; a2 ], [ b ] ->
      check "centroids coincide" (a1 + a2) (2 * b)
  | _ -> Alcotest.fail "row structure");
  check_bool "dB on metal2" true
    (match Lobj.port o "db" with Some p -> p.Amg_layout.Port.layer = "metal2" | None -> false)

let test_common_centroid () =
  let e = env () in
  let o = M.Common_centroid.make e ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 2.) () in
  check "drc" 0 (drc o);
  (* Exact centroid coincidence. *)
  (match
     (M.Common_centroid.gate_centroid o ~net:"inp",
      M.Common_centroid.gate_centroid o ~net:"inn")
   with
  | Some ca, Some cb -> Alcotest.(check (float 0.001)) "centroids" ca cb
  | _ -> Alcotest.fail "centroids missing");
  (* Identical via counts on the two inputs. *)
  let _, _, va = M.Common_centroid.wiring_summary o ~net:"inp" in
  let _, _, vb = M.Common_centroid.wiring_summary o ~net:"inn" in
  check "via parity" va vb;
  (* The paper's dummy structure: 4 + 8 + 4 dummies plus 2x2 fingers per
     device = 24 gate fingers in total. *)
  let fingers =
    List.length
      (List.filter
         (fun (s : Shape.t) ->
           Shape.on_layer s "poly" && Rect.height s.Shape.rect > um 10.)
         (Lobj.shapes o))
  in
  check "finger count" 24 fingers;
  List.iter
    (fun n -> check_bool ("port " ^ n) true (Lobj.port o n <> None))
    [ "inp"; "inn"; "da"; "db"; "tail" ]

let test_common_centroid_bad_pairs () =
  let e = env () in
  check_bool "odd pairs rejected" true
    (match
       M.Common_centroid.make e
         ~spec:{ M.Common_centroid.pairs = 3; side_dummies = 1; mid_dummies = 2 }
         ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 2.) ()
     with
    | exception Env.Rejected _ -> true
    | _ -> false)

let test_bipolar () =
  let e = env () in
  let q = M.Bipolar.make e ~we:(um 2.) ~le:(um 8.) () in
  check "drc" 0 (drc q);
  (* The emitter sits inside the base implant, the collector outside. *)
  let pbase = match Lobj.bbox_on q "pbase" with Some r -> r | None -> Alcotest.fail "no base" in
  let emitter =
    List.find (fun (s : Shape.t) -> s.Shape.net = Some "e" && Shape.on_layer s "ndiff") (Lobj.shapes q)
  in
  let collector =
    List.find (fun (s : Shape.t) -> s.Shape.net = Some "c" && Shape.on_layer s "ndiff") (Lobj.shapes q)
  in
  check_bool "emitter in base" true (Rect.contains_rect pbase emitter.Shape.rect);
  check_bool "collector outside base" false (Rect.overlaps pbase collector.Shape.rect);
  check_bool "well is collector" true
    (match Lobj.bbox_on q "nwell" with
    | Some w -> Rect.contains_rect w pbase
    | None -> false);
  check_bool "tap marker" true (Lobj.shapes_on q "subtap" <> []);
  let pair = M.Bipolar.symmetric_pair e ~we:(um 2.) ~le:(um 8.) () in
  check "pair drc" 0 (drc pair)

let test_resistor () =
  let e = env () in
  let o, ohms = M.Resistor.make e ~squares:100. () in
  check "drc" 0 (drc o);
  (* 100 squares at 25 ohm/sq, minus the bend corrections. *)
  check_bool "value in range" true (ohms > 2300. && ohms <= 2500.);
  check_bool "resmark present" true (Lobj.shapes_on o "resmark" <> []);
  check_bool "ports" true (Lobj.port o "a" <> None && Lobj.port o "b" <> None);
  (* A short resistor is a single straight leg. *)
  let short, short_ohms = M.Resistor.make e ~squares:10. () in
  check "short drc" 0 (drc short);
  Alcotest.(check (float 1.)) "short exact" 250. short_ohms

let test_capacitor () =
  let e = env () in
  let o, ff = M.Capacitor.make e ~cap_ff:200. () in
  check "drc" 0 (drc o);
  check_bool "value close" true (Float.abs (ff -. 200.) /. 200. < 0.1);
  check_bool "poly2 present" true (List.mem "poly2" (Lobj.layers o));
  check_bool "ports" true (Lobj.port o "top" <> None && Lobj.port o "bot" <> None)

let test_stacked () =
  let e = env () in
  let st = M.Stacked.series e ~polarity:M.Mosfet.Nmos ~w:(um 6.) ~l:(um 4.) ~stages:4 () in
  check "drc" 0 (drc st);
  let ex = Amg_extract.Devices.extract ~tech:(Env.tech e) st in
  check "four series stages" 4 (List.length ex.Amg_extract.Devices.mosfets);
  (* All gates common; the chain visits a and b exactly once each. *)
  let terminals =
    List.concat_map
      (fun (m : Amg_extract.Devices.mos) ->
        [ m.Amg_extract.Devices.x_s; m.Amg_extract.Devices.x_d ])
      ex.Amg_extract.Devices.mosfets
  in
  check "a appears once" 1 (List.length (List.filter (String.equal "a") terminals));
  check "b appears once" 1 (List.length (List.filter (String.equal "b") terminals));
  List.iter
    (fun (m : Amg_extract.Devices.mos) ->
      check_bool "common gate" true (m.Amg_extract.Devices.x_g = "g"))
    ex.Amg_extract.Devices.mosfets

let test_diode_connected () =
  let e = env () in
  let d = M.Mosfet.diode_connected e ~polarity:M.Mosfet.Nmos ~w:(um 8.) ~l:(um 2.) () in
  check "drc" 0 (drc d);
  (* The gate and drain metals must be one electrical node — the wire is
     real, not just a label. *)
  let conn = Amg_extract.Connectivity.build ~tech:(Env.tech e) d in
  let node_of_port name =
    let p = Lobj.port_exn d name in
    Amg_extract.Connectivity.node_at conn ~layer:"metal1"
      ~x:(Rect.center_x p.Amg_layout.Port.rect)
      ~y:(Rect.center_y p.Amg_layout.Port.rect)
  in
  let g = node_of_port "g" and s = node_of_port "s" in
  check_bool "found" true (g <> None && s <> None);
  check_bool "gate separate from source" true (g <> s);
  (* Probing the drain row (east side) lands on the gate node. *)
  let ex = Amg_extract.Devices.extract ~tech:(Env.tech e) d in
  (match ex.Amg_extract.Devices.mosfets with
  | [ m ] ->
      check_bool "diode" true
        (m.Amg_extract.Devices.x_g = m.Amg_extract.Devices.x_d
        || m.Amg_extract.Devices.x_g = m.Amg_extract.Devices.x_s)
  | _ -> Alcotest.fail "one device");
  check "no shorts" 0 (List.length ex.Amg_extract.Devices.short_nets)

let test_module_connectivity () =
  (* The paper's modules include their internal wiring: every named net of
     each module must be physically one node. *)
  let e = env () in
  let audit name o nets =
    let conn = Amg_extract.Connectivity.build ~tech:(Env.tech e) o in
    List.iter
      (fun n ->
        Alcotest.(check int)
          (name ^ "." ^ n ^ " connected")
          1
          (Amg_extract.Connectivity.label_node_count conn n))
      nets
  in
  audit "interdig"
    (M.Interdigitated.make e ~polarity:M.Mosfet.Nmos ~w:(um 10.) ~l:(um 2.) ~fingers:4 ())
    [ "s"; "d"; "g" ];
  audit "xcoupled"
    (M.Cross_coupled.common_gate e ~polarity:M.Mosfet.Nmos ~w:(um 12.) ~l:(um 2.) ())
    [ "vss"; "da"; "db"; "vbias" ];
  audit "mirror_sym"
    (M.Current_mirror.symmetric e ~polarity:M.Mosfet.Nmos ~w:(um 8.) ~l:(um 2.) ())
    [ "vss"; "dout"; "vg" ];
  audit "mirror_simple"
    (M.Current_mirror.simple e ~polarity:M.Mosfet.Nmos ~w:(um 8.) ~l:(um 2.) ())
    [ "vss"; "dout"; "vg" ];
  audit "npn_pair"
    (M.Bipolar.symmetric_pair e ~we:(um 2.) ~le:(um 8.)
       ~nets_1:("e", "b", "c") ~nets_2:("e", "b", "c") ())
    [ "e"; "b"; "c" ];
  audit "stacked"
    (M.Stacked.series e ~polarity:M.Mosfet.Nmos ~w:(um 6.) ~l:(um 4.) ~stages:3 ())
    [ "a"; "b"; "g" ]

let test_baseline_equivalence () =
  let e = env () in
  (* The coordinate-level generator produces the same contact row. *)
  let base = M.Baseline.contact_row e ~layer:"poly" ~w:(um 2.) ~l:(um 10.) () in
  let dsl = M.Contact_row.make e ~layer:"poly" ~w:(um 2.) ~l:(um 10.) () in
  check "same contacts"
    (List.length (Lobj.shapes_on dsl "contact"))
    (List.length (Lobj.shapes_on base "contact"));
  check_bool "same bbox" true (Lobj.bbox base = Lobj.bbox dsl);
  check "baseline drc" 0 (drc base);
  let bdp = M.Baseline.diff_pair e ~w:(um 10.) ~l:(um 5.) () in
  check "baseline diff pair drc" 0 (drc bdp);
  (* The code-length claim: the coordinate generators are several times
     the DSL's line count. *)
  check_bool "loc counted" true (M.Baseline.contact_row_loc () > 30);
  check_bool "diff pair loc" true (M.Baseline.diff_pair_loc () > 80)


(* --- common-centroid unit-capacitor array --- *)

let plan_centroids (p : M.Cap_array.plan) =
  (* Cell-grid centroids per group (unit cell centres at integer coords). *)
  let acc = Hashtbl.create 2 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j g ->
          let n, sx, sy =
            Option.value ~default:(0, 0, 0) (Hashtbl.find_opt acc g)
          in
          Hashtbl.replace acc g (n + 1, sx + j, sy + i))
        row)
    p.M.Cap_array.cells;
  Hashtbl.fold
    (fun g (n, sx, sy) l ->
      (g, (float_of_int sx /. float_of_int n, float_of_int sy /. float_of_int n)) :: l)
    acc []

let plan_symmetric (p : M.Cap_array.plan) =
  let ok = ref true in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j g ->
          if
            p.M.Cap_array.cells.(p.M.Cap_array.rows - 1 - i).(p.M.Cap_array.cols - 1 - j)
            <> g
          then ok := false)
        row)
    p.M.Cap_array.cells;
  !ok

let test_cap_array_plan () =
  let p = M.Cap_array.plan ~units_a:4 ~units_b:4 in
  check "rows" 2 p.M.Cap_array.rows;
  check "cols" 4 p.M.Cap_array.cols;
  (match plan_centroids p with
  | [ (_, a); (_, b) ] -> check_bool "centroids equal" true (a = b)
  | _ -> Alcotest.fail "two groups expected");
  check_bool "symmetric 4:4" true (plan_symmetric p);
  check_bool "symmetric 2:6" true (plan_symmetric (M.Cap_array.plan ~units_a:2 ~units_b:6));
  check_bool "symmetric odd grid 4:5" true
    (plan_symmetric (M.Cap_array.plan ~units_a:4 ~units_b:5));
  (* An odd total always has exactly one odd count (parity), so any odd
     total is assignable: the odd group owns the centre cell. *)
  check_bool "4:11 assignable" true
    (plan_symmetric (M.Cap_array.plan ~units_a:4 ~units_b:11));
  (* Odd/odd on an even grid is the one unassignable split. *)
  Alcotest.check_raises "odd counts on even grid"
    (Amg_core.Env.Rejected
       "Cap_array: even grid needs even unit counts for a symmetric assignment")
    (fun () -> ignore (M.Cap_array.plan ~units_a:3 ~units_b:5))

let test_cap_array_layout () =
  let e = env () in
  let obj, _ = M.Cap_array.make e ~unit_ff:20. ~units_a:2 ~units_b:6 () in
  check "drc clean" 0 (drc obj);
  (* Both groups' physical top-plate centroids coincide exactly. *)
  (match (M.Cap_array.centroid obj ~net:"ca", M.Cap_array.centroid obj ~net:"cb") with
  | Some (ax, ay), Some (bx, by) ->
      check_bool "x centroid" true (Float.abs (ax -. bx) < 1.);
      check_bool "y centroid" true (Float.abs (ay -. by) < 1.)
  | _ -> Alcotest.fail "centroids missing");
  (* Extraction: exactly two capacitors at the 1:3 ratio, dummies gone. *)
  let x = Amg_extract.Devices.extract ~tech:(Env.tech e) obj in
  (match
     List.sort compare
       (List.map (fun (a, b, ff) -> ((min a b, max a b), ff))
          x.Amg_extract.Devices.capacitors)
   with
  | [ (("bot", "ca"), fa); (("bot", "cb"), fb) ] ->
      check_bool "ratio 1:3" true (Float.abs ((fb /. fa) -. 3.) < 0.01)
  | caps -> Alcotest.failf "expected 2 caps, got %d" (List.length caps));
  check "no shorts" 0 (List.length x.Amg_extract.Devices.short_nets);
  (* Each terminal is one electrical node. *)
  let conn = Amg_extract.Connectivity.build ~tech:(Env.tech e) obj in
  List.iter
    (fun net ->
      check ("one node " ^ net) 1
        (List.length (Amg_extract.Connectivity.label_components conn net)))
    [ "ca"; "cb"; "bot" ];
  (* Without dummies it still checks out. *)
  let bare, _ = M.Cap_array.make e ~unit_ff:20. ~units_a:2 ~units_b:2 ~dummies:false () in
  check "bare drc" 0 (drc bare)

(* Any valid unit-count split yields a point-symmetric plan with exact
   count bookkeeping. *)
let prop_cap_array_plan_symmetric =
  QCheck2.Test.make ~name:"cap array plan symmetric" ~count:200
    QCheck2.Gen.(tup2 (int_range 1 12) (int_range 1 12))
    (fun (ha, hb) ->
      let a = 2 * ha and b = 2 * hb in
      let p = M.Cap_array.plan ~units_a:a ~units_b:b in
      let count g =
        Array.fold_left
          (fun acc row ->
            Array.fold_left (fun acc c -> if c = g then acc + 1 else acc) acc row)
          0 p.M.Cap_array.cells
      in
      count M.Cap_array.A = a && count M.Cap_array.B = b && plan_symmetric p
      && p.M.Cap_array.rows * p.M.Cap_array.cols = a + b)


(* --- matched resistor pair --- *)

let test_resistor_pair () =
  let e = env () in
  let obj, nominal = M.Resistor_pair.make e ~squares:80. () in
  Alcotest.(check (float 1e-6)) "nominal 80 sq x 25 ohm" 2000. nominal;
  check "drc clean" 0 (drc obj);
  (* Extraction reduces each two-strip chain to one resistor; both equal. *)
  let x = Amg_extract.Devices.extract ~tech:(Env.tech e) obj in
  (match
     List.sort compare
       (List.map (fun (a, b, v) -> ((min a b, max a b), v)) x.Amg_extract.Devices.resistors)
   with
  | [ (("a1", "a2"), va); (("b1", "b2"), vb) ] ->
      Alcotest.(check (float 1e-6)) "A value exact" 2000. va;
      Alcotest.(check (float 1e-6)) "B equals A" va vb
  | rs -> Alcotest.failf "expected 2 reduced resistors, got %d" (List.length rs));
  check "no shorts" 0 (List.length x.Amg_extract.Devices.short_nets);
  (* ABBA: both films share the x centroid. *)
  (match
     ( M.Resistor_pair.film_centroid_x obj ~strips:[ 0; 3 ],
       M.Resistor_pair.film_centroid_x obj ~strips:[ 1; 2 ] )
   with
  | Some a, Some b -> check_bool "centroid" true (Float.abs (a -. b) < 1.)
  | _ -> Alcotest.fail "centroids missing");
  Alcotest.check_raises "zero squares"
    (Amg_core.Env.Rejected "Resistor_pair: squares <= 0") (fun () ->
      ignore (M.Resistor_pair.make e ~squares:0. ()))


(* --- automatic latch-up repair --- *)

let test_tap_repair () =
  let e = env () in
  let tech = Env.tech e in
  (* Active strips spread over ~300 um with no taps at all. *)
  let obj = Lobj.create "untapped" in
  for i = 0 to 4 do
    ignore
      (Lobj.add_shape obj ~layer:"ndiff"
         ~rect:(Rect.of_size ~x:(um (float_of_int i *. 70.)) ~y:0 ~w:(um 30.) ~h:(um 6.)) ())
  done;
  check_bool "fails before" true (Amg_drc.Latchup.uncovered ~tech obj <> []);
  let n = M.Tap_repair.repair e obj in
  check_bool "taps added" true (n > 0);
  check "covered after" 0 (List.length (Amg_drc.Latchup.uncovered ~tech obj));
  (* The inserted taps themselves violate nothing. *)
  check "full drc clean" 0
    (List.length (Amg_drc.Checker.run ~tech obj));
  (* Already-clean structures are left untouched. *)
  check "idempotent" 0 (M.Tap_repair.repair e obj)

let test_tap_placement_legal () =
  let e = env () in
  let rules = Env.rules e in
  let main = Lobj.create "main" in
  ignore
    (Lobj.add_shape main ~layer:"ndiff"
       ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 20.) ~h:(um 6.)) ());
  let tap_at x =
    let tap = M.Contact_row.substrate_tap e ~net:"vss" () in
    let tb = Lobj.bbox_exn tap in
    Lobj.translate tap ~dx:(x - tb.Amg_geometry.Rect.x0) ~dy:0;
    tap
  in
  (* Overlapping the diffusion: illegal (pdiff tap vs ndiff spacing). *)
  check_bool "overlap illegal" false
    (M.Tap_repair.placement_legal rules main (tap_at (um 5.)));
  (* Far away: legal. *)
  check_bool "clear legal" true
    (M.Tap_repair.placement_legal rules main (tap_at (um 40.)))


(* --- Euler-path finger ordering --- *)

let test_euler_mirror () =
  (* The generator derives the classic mirror pattern from the schematic. *)
  let devs =
    [
      M.Euler.device ~name:"M1" ~g:"vg" ~s:"vss" ~d:"vg" ();
      M.Euler.device ~name:"M2" ~g:"vg" ~s:"vss" ~d:"dout" ();
    ]
  in
  (match M.Euler.column_plans devs with
  | [ cols ] ->
      check "five columns" 5 (List.length cols);
      (* Middle row is the shared source. *)
      check_bool "shared vss in middle" true
        (List.nth cols 2 = M.Mos_array.Row "vss")
  | plans -> Alcotest.failf "expected one trail, got %d" (List.length plans));
  (* Cascode shares the mid junction. *)
  let casc =
    [
      M.Euler.device ~name:"A" ~g:"g1" ~s:"vss" ~d:"mid" ();
      M.Euler.device ~name:"B" ~g:"g2" ~s:"mid" ~d:"out" ();
    ]
  in
  let st = M.Euler.sharing_stats casc in
  check "one trail" 1 st.M.Euler.trails_count;
  check "three rows instead of four" 3 st.M.Euler.rows_shared

let test_euler_trail_counts () =
  (* Six devices fanning out of one node: 6 odd leaves -> 3 trails. *)
  let star =
    List.init 6 (fun i ->
        M.Euler.device
          ~name:(Printf.sprintf "S%d" i)
          ~g:(Printf.sprintf "g%d" i)
          ~s:"c"
          ~d:(Printf.sprintf "n%d" i)
          ())
  in
  let st = M.Euler.sharing_stats star in
  check "three trails" 3 st.M.Euler.trails_count;
  check "rows saved" 9 st.M.Euler.rows_shared;
  (* Disconnected devices stay in separate trails. *)
  let dis =
    [
      M.Euler.device ~name:"X" ~g:"gx" ~s:"a" ~d:"b" ();
      M.Euler.device ~name:"Y" ~g:"gy" ~s:"c" ~d:"d" ();
    ]
  in
  check "two components" 2 (M.Euler.sharing_stats dis).M.Euler.trails_count;
  (* Two parallel fingers walk out and back: d g s g d. *)
  (match M.Euler.column_plans [ M.Euler.device ~fingers:2 ~name:"P" ~g:"g" ~s:"s" ~d:"d" () ] with
  | [ [ M.Mos_array.Row a; Fin _; Row b; Fin _; Row c ] ] ->
      check_bool "out and back" true (a = c && a <> b)
  | _ -> Alcotest.fail "expected one 5-column trail")

let test_euler_builds_and_extracts () =
  (* The derived ordering is directly buildable, and the layout extracts
     back to the input schematic. *)
  let e = env () in
  let devs =
    [
      M.Euler.device ~name:"M1" ~g:"vg" ~s:"vss" ~d:"vg" ();
      M.Euler.device ~name:"M2" ~g:"vg" ~s:"vss" ~d:"dout" ();
    ]
  in
  let cols = List.hd (M.Euler.column_plans devs) in
  let arr =
    M.Mos_array.make e ~name:"euler_mirror" ~polarity:M.Mosfet.Nmos ~w:(um 8.)
      ~l:(um 2.) ~columns:cols
      ~straps:
        [
          { M.Mos_array.strap_net = "vss"; side = Amg_geometry.Dir.South; metal = M.Mos_array.M1 };
          { M.Mos_array.strap_net = "dout"; side = Amg_geometry.Dir.North; metal = M.Mos_array.M1 };
          { M.Mos_array.strap_net = "vg"; side = Amg_geometry.Dir.North; metal = M.Mos_array.M2 };
        ]
      ()
  in
  check "drc clean" 0 (drc arr.M.Mos_array.obj);
  let x = Amg_extract.Devices.extract ~tech:(Env.tech e) arr.M.Mos_array.obj in
  let golden =
    Amg_circuit.Netlist.create ~name:"mirror"
      [
        Amg_circuit.Device.mos ~name:"M1" ~polarity:Amg_circuit.Device.Nmos
          ~w:(um 8.) ~l:(um 2.) ~g:"vg" ~d:"vg" ~s:"vss" ~b:"vss";
        Amg_circuit.Device.mos ~name:"M2" ~polarity:Amg_circuit.Device.Nmos
          ~w:(um 8.) ~l:(um 2.) ~g:"vg" ~d:"dout" ~s:"vss" ~b:"vss";
      ]
  in
  let cmp = Amg_extract.Compare.run ~golden x in
  check_bool "LVS clean" true (Amg_extract.Compare.clean cmp)

(* Every finger appears in exactly one trail; every trail alternates and is
   buildable; trail count matches the Euler bound per component. *)
let prop_euler_covers =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 7)
        (tup3 (int_range 0 5) (int_range 0 5) (int_range 1 2)))
  in
  QCheck2.Test.make ~name:"euler trails cover all fingers" ~count:300 gen
    (fun specs ->
      let net i = Printf.sprintf "n%d" i in
      let devs =
        List.mapi
          (fun i (s, d, f) ->
            M.Euler.device ~fingers:f
              ~name:(Printf.sprintf "D%d" i)
              ~g:(Printf.sprintf "g%d" i)
              ~s:(net s) ~d:(net d) ())
          specs
      in
      let ts = M.Euler.trails devs in
      let total = List.fold_left (fun a (_, es) -> a + List.length es) 0 ts in
      let fingers = List.fold_left (fun a d -> a + d.M.Euler.e_fingers) 0 devs in
      let ids =
        List.concat_map (fun (_, es) -> List.map (fun (e : M.Euler.edge) -> e.M.Euler.id) es) ts
      in
      let distinct = List.sort_uniq compare ids in
      let alternates cols =
        let rec ok = function
          | M.Mos_array.Row _ :: (M.Mos_array.Fin _ :: _ as rest) -> ok rest
          | M.Mos_array.Fin _ :: (M.Mos_array.Row _ :: _ as rest) -> ok rest
          | [ M.Mos_array.Row _ ] -> true
          | _ -> false
        in
        ok cols
      in
      total = fingers
      && List.length distinct = fingers
      && List.for_all (fun t -> alternates (M.Euler.columns_of_trail t)) ts)


(* --- parameter sweeps: every generator is rule-clean across its whole
   useful parameter range, not just the defaults the unit tests pick. --- *)

let drc_clean_named name obj =
  match
    Amg_drc.Checker.run
      ~checks:[ Amg_drc.Checker.Widths; Spacings; Enclosures; Extensions ]
      ~tech:(Env.tech (env ())) obj
  with
  | [] -> true
  | v :: _ ->
      QCheck2.Test.fail_reportf "%s: %s" name (Amg_drc.Violation.describe v)

let prop_sweep_interdigitated =
  QCheck2.Test.make ~name:"sweep: interdigitated DRC clean" ~count:25
    QCheck2.Gen.(
      tup4 (int_range 2 12) (int_range 1 4) (int_range 2 6) bool)
    (fun (w, l, fingers, nmos) ->
      let e = env () in
      let o =
        M.Interdigitated.make e
          ~polarity:(if nmos then M.Mosfet.Nmos else M.Mosfet.Pmos)
          ~w:(um (float_of_int w)) ~l:(um (float_of_int l)) ~fingers ()
      in
      drc_clean_named "interdigitated" o)

let prop_sweep_diff_pair =
  QCheck2.Test.make ~name:"sweep: diff pair DRC clean" ~count:25
    QCheck2.Gen.(tup3 (int_range 2 14) (int_range 1 5) bool)
    (fun (w, l, nmos) ->
      let e = env () in
      let o =
        M.Diff_pair.make e
          ~polarity:(if nmos then M.Mosfet.Nmos else M.Mosfet.Pmos)
          ~w:(um (float_of_int w)) ~l:(um (float_of_int l)) ()
      in
      drc_clean_named "diff_pair" o)

let prop_sweep_mirror =
  QCheck2.Test.make ~name:"sweep: mirrors DRC clean" ~count:25
    QCheck2.Gen.(tup3 (int_range 3 12) (int_range 1 4) bool)
    (fun (w, l, sym) ->
      let e = env () in
      let o =
        (if sym then M.Current_mirror.symmetric else M.Current_mirror.simple)
          e ~polarity:M.Mosfet.Nmos ~w:(um (float_of_int w))
          ~l:(um (float_of_int l)) ()
      in
      drc_clean_named "mirror" o)

let prop_sweep_resistor =
  QCheck2.Test.make ~name:"sweep: resistor DRC clean + value" ~count:25
    QCheck2.Gen.(int_range 10 200)
    (fun squares ->
      let e = env () in
      let o, ohms =
        M.Resistor.make e ~squares:(float_of_int squares) ()
      in
      (* Sheet 25 ohm/sq; bends discount, leg discretisation can overshoot
         slightly — the generator returns the honest measured value. *)
      ohms <= float_of_int squares *. 25. *. 1.1
      && ohms > float_of_int squares *. 25. *. 0.8
      && drc_clean_named "resistor" o)

let prop_sweep_stacked =
  QCheck2.Test.make ~name:"sweep: stacked DRC clean" ~count:20
    QCheck2.Gen.(tup3 (int_range 3 10) (int_range 1 3) (int_range 1 4))
    (fun (w, l, stages) ->
      let e = env () in
      let o =
        M.Stacked.series e ~polarity:M.Mosfet.Nmos ~w:(um (float_of_int w))
          ~l:(um (float_of_int l)) ~stages ()
      in
      drc_clean_named "stacked" o)

let prop_sweep_cap_array =
  QCheck2.Test.make ~name:"sweep: cap array DRC clean + ratio" ~count:15
    QCheck2.Gen.(tup2 (int_range 1 3) (int_range 1 3))
    (fun (ha, hb) ->
      let e = env () in
      let a = 2 * ha and b = 2 * hb in
      let obj, _ =
        M.Cap_array.make e ~unit_ff:15. ~units_a:a ~units_b:b ()
      in
      let x = Amg_extract.Devices.extract ~tech:(Env.tech e) obj in
      let ratio_ok =
        match
          List.sort compare
            (List.map (fun (p, q, ff) -> ((min p q, max p q), ff))
               x.Amg_extract.Devices.capacitors)
        with
        | [ (_, fa); (_, fb) ] ->
            Float.abs ((fb /. fa) -. (float_of_int b /. float_of_int a)) < 0.02
            || Float.abs ((fa /. fb) -. (float_of_int b /. float_of_int a)) < 0.02
        | _ -> false
      in
      ratio_ok && drc_clean_named "cap_array" obj)


let prop_sweep_cross_coupled =
  QCheck2.Test.make ~name:"sweep: cross coupled DRC clean" ~count:15
    QCheck2.Gen.(tup3 (int_range 4 12) (int_range 1 3) bool)
    (fun (w, l, tap) ->
      let e = env () in
      let o =
        M.Cross_coupled.common_gate e ~polarity:M.Mosfet.Pmos
          ?well_tap:(if tap then Some "vdd" else None)
          ~w:(um (float_of_int w)) ~l:(um (float_of_int l)) ()
      in
      drc_clean_named "cross_coupled" o)

let prop_sweep_common_centroid =
  QCheck2.Test.make ~name:"sweep: module E DRC clean + centroid" ~count:8
    QCheck2.Gen.(tup2 (int_range 6 12) (int_range 1 3))
    (fun (w, l) ->
      let e = env () in
      let o =
        M.Common_centroid.make e ~polarity:M.Mosfet.Pmos
          ~w:(um (float_of_int w)) ~l:(um (float_of_int l)) ()
      in
      let centroid_ok =
        match
          ( M.Common_centroid.gate_centroid o ~net:"inp",
            M.Common_centroid.gate_centroid o ~net:"inn" )
        with
        | Some a, Some b -> Float.abs (a -. b) < 1.
        | _ -> false
      in
      centroid_ok && drc_clean_named "common_centroid" o)

let suite =
  [
    Alcotest.test_case "contact row" `Quick test_contact_row;
    Alcotest.test_case "via row" `Quick test_via_row;
    Alcotest.test_case "taps" `Quick test_taps;
    Alcotest.test_case "guard ring" `Quick test_guard_ring;
    Alcotest.test_case "mosfet" `Quick test_mosfet;
    Alcotest.test_case "diff pair structure" `Quick test_diff_pair;
    Alcotest.test_case "interdigitated" `Quick test_interdigitated;
    Alcotest.test_case "mos array validation" `Quick test_mos_array_validation;
    Alcotest.test_case "current mirrors" `Quick test_current_mirrors;
    Alcotest.test_case "cross coupled" `Quick test_cross_coupled;
    Alcotest.test_case "common centroid (module E)" `Quick test_common_centroid;
    Alcotest.test_case "common centroid validation" `Quick test_common_centroid_bad_pairs;
    Alcotest.test_case "bipolar" `Quick test_bipolar;
    Alcotest.test_case "resistor" `Quick test_resistor;
    Alcotest.test_case "capacitor" `Quick test_capacitor;
    Alcotest.test_case "stacked transistors" `Quick test_stacked;
    Alcotest.test_case "diode connected" `Quick test_diode_connected;
    Alcotest.test_case "module connectivity" `Quick test_module_connectivity;
    Alcotest.test_case "baseline equivalence" `Quick test_baseline_equivalence;
    Alcotest.test_case "cap array: plan" `Quick test_cap_array_plan;
    Alcotest.test_case "cap array: layout, DRC, ratio" `Quick test_cap_array_layout;
    QCheck_alcotest.to_alcotest prop_cap_array_plan_symmetric;
    Alcotest.test_case "resistor pair: matched + reduced" `Quick test_resistor_pair;
    Alcotest.test_case "tap repair: covers and stays clean" `Quick test_tap_repair;
    Alcotest.test_case "tap repair: placement legality" `Quick test_tap_placement_legal;
    Alcotest.test_case "euler: mirror and cascode orders" `Quick test_euler_mirror;
    Alcotest.test_case "euler: trail counts" `Quick test_euler_trail_counts;
    Alcotest.test_case "euler: builds and extracts" `Quick test_euler_builds_and_extracts;
    QCheck_alcotest.to_alcotest prop_euler_covers;
    QCheck_alcotest.to_alcotest prop_sweep_interdigitated;
    QCheck_alcotest.to_alcotest prop_sweep_diff_pair;
    QCheck_alcotest.to_alcotest prop_sweep_mirror;
    QCheck_alcotest.to_alcotest prop_sweep_resistor;
    QCheck_alcotest.to_alcotest prop_sweep_stacked;
    QCheck_alcotest.to_alcotest prop_sweep_cap_array;
    QCheck_alcotest.to_alcotest prop_sweep_cross_coupled;
    QCheck_alcotest.to_alcotest prop_sweep_common_centroid;
  ]
