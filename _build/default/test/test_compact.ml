(* The successive compactor: constraint relations, placement, merging,
   auto-connection, variable edges, and the edge-graph baseline. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Edge = Amg_layout.Edge
module Shape = Amg_layout.Shape
module Lobj = Amg_layout.Lobj
module Constraints = Amg_compact.Constraints
module Successive = Amg_compact.Successive
module Edge_graph = Amg_compact.Edge_graph
module Technology = Amg_tech.Technology

let um = Units.of_um
let tech () = Amg_tech.Bicmos1u.get ()
let rules () = Technology.rules (tech ())

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let shape ?(id = 0) ~layer ?net ?sides ?keep_clear rect =
  Shape.make ~id ~layer ~rect ?net ?sides ?keep_clear ()

let rel = Alcotest.testable Constraints.pp_relation Constraints.equal_relation

let test_relation () =
  let r0 = Rect.of_size ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.) in
  let r1 = Rect.of_size ~x:(um 10.) ~y:0 ~w:(um 2.) ~h:(um 2.) in
  let rules = rules () in
  (* Same layer, same net: mergeable. *)
  Alcotest.check rel "same net" Constraints.Mergeable
    (Constraints.relation rules (shape ~layer:"metal1" ~net:"a" r0)
       (shape ~layer:"metal1" ~net:"a" r1));
  (* Same layer, different nets: the layer's spacing rule. *)
  Alcotest.check rel "diff nets" (Constraints.Separation (um 1.5))
    (Constraints.relation rules (shape ~layer:"metal1" ~net:"a" r0)
       (shape ~layer:"metal1" ~net:"b" r1));
  (* Ignored layer: same-layer spacing waived. *)
  Alcotest.check rel "ignored" Constraints.Mergeable
    (Constraints.relation rules ~ignore_layers:[ "metal1" ]
       (shape ~layer:"metal1" ~net:"a" r0)
       (shape ~layer:"metal1" ~net:"b" r1));
  (* Cross-layer rule holds even on the same net. *)
  Alcotest.check rel "poly vs diff same net" (Constraints.Separation (um 0.5))
    (Constraints.relation rules (shape ~layer:"poly" ~net:"a" r0)
       (shape ~layer:"pdiff" ~net:"a" r1));
  (* Unrelated layers: free. *)
  Alcotest.check rel "metal over poly" Constraints.Unconstrained
    (Constraints.relation rules (shape ~layer:"metal1" r0) (shape ~layer:"poly" r1));
  (* ... unless keep-clear. *)
  Alcotest.check rel "keep clear" (Constraints.Separation 0)
    (Constraints.relation rules (shape ~layer:"metal1" ~keep_clear:true r0)
       (shape ~layer:"poly" r1));
  (* Containment (cut in its landing) is free. *)
  Alcotest.check rel "containment" Constraints.Unconstrained
    (Constraints.relation rules
       (shape ~layer:"contact" (Rect.of_size ~x:(um 0.5) ~y:(um 0.5) ~w:(um 1.) ~h:(um 1.)))
       (shape ~layer:"poly" (Rect.of_size ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.))))

let bar ~name ~layer ?net ?sides ~x ~y ~w ~h () =
  let o = Lobj.create name in
  let _ = Lobj.add_shape o ~layer ~rect:(Rect.of_size ~x ~y ~w ~h) ?net ?sides () in
  o

let test_compact_spacing () =
  let rules = rules () in
  (* Two metal bars on different nets end up exactly at minimum spacing:
     the target at y 0..2, the mover at 3.5..5.5. *)
  let main = bar ~name:"main" ~layer:"metal1" ~net:"a" ~x:0 ~y:0 ~w:(um 10.) ~h:(um 2.) () in
  let mover = bar ~name:"m" ~layer:"metal1" ~net:"b" ~x:0 ~y:0 ~w:(um 10.) ~h:(um 2.) () in
  Successive.compact ~rules ~into:main mover Dir.South;
  let tops =
    List.map (fun (s : Shape.t) -> s.Shape.rect.Rect.y0) (Lobj.shapes main)
    |> List.sort compare
  in
  check_bool "positions" true (tops = [ 0; um 3.5 ])

let test_compact_merge_same_net () =
  let rules = rules () in
  (* Same net: the mover may slide until trailing edges align (overlap). *)
  let main = bar ~name:"main" ~layer:"metal1" ~net:"a" ~x:0 ~y:0 ~w:(um 10.) ~h:(um 4.) () in
  let mover = bar ~name:"m" ~layer:"metal1" ~net:"a" ~x:0 ~y:0 ~w:(um 10.) ~h:(um 2.) () in
  Successive.compact ~rules ~into:main mover Dir.South;
  (* Trailing-edge guard: the mover's north edge stops at the target's
     north edge, i.e. fully overlapping the top of the target. *)
  let rects = List.map (fun (s : Shape.t) -> s.Shape.rect) (Lobj.shapes main) in
  check_bool "merged overlap" true
    (List.exists (fun r -> r.Rect.y0 = um 2. && r.Rect.y1 = um 4.) rects)

let test_compact_empty_main () =
  let rules = rules () in
  let main = Lobj.create "empty" in
  let mover = bar ~name:"m" ~layer:"poly" ~x:(um 3.) ~y:(um 7.) ~w:(um 2.) ~h:(um 2.) () in
  Successive.compact ~rules ~into:main mover Dir.West;
  (* First object is copied in unchanged. *)
  check_bool "copied" true
    (Lobj.bbox main = Some (Rect.of_size ~x:(um 3.) ~y:(um 7.) ~w:(um 2.) ~h:(um 2.)))

let test_compact_align () =
  let rules = rules () in
  let main = bar ~name:"main" ~layer:"metal1" ~net:"a" ~x:0 ~y:0 ~w:(um 20.) ~h:(um 2.) () in
  let mover () = bar ~name:"m" ~layer:"metal1" ~net:"b" ~x:(um 100.) ~y:0 ~w:(um 4.) ~h:(um 2.) () in
  let main1 = Lobj.copy main in
  Successive.compact ~rules ~into:main1 ~align:`Center (mover ()) Dir.South;
  (match Lobj.bbox_on main1 "metal1" with
  | Some b -> check "center align keeps hull" (um 20.) (Rect.width b)
  | None -> Alcotest.fail "no metal");
  let main2 = Lobj.copy main in
  Successive.compact ~rules ~into:main2 ~align:`Min (mover ()) Dir.South;
  let xs = List.map (fun (s : Shape.t) -> s.Shape.rect.Rect.x0) (Lobj.shapes main2) in
  check_bool "min align west edges equal" true (xs = [ 0; 0 ])

let test_stage_outside_prevents_tunneling () =
  let rules = rules () in
  (* Mover generated in the middle of the main structure must still end up
     outside, not pass through. *)
  let main = bar ~name:"main" ~layer:"pdiff" ~net:"a" ~x:0 ~y:0 ~w:(um 20.) ~h:(um 20.) () in
  let mover = bar ~name:"m" ~layer:"ndiff" ~net:"b" ~x:(um 8.) ~y:(um 8.) ~w:(um 2.) ~h:(um 2.) () in
  Successive.compact ~rules ~into:main mover Dir.South;
  (* ndiff/pdiff spacing is 3 um: mover sits on top, 3 um above. *)
  let ndiff = Lobj.bbox_on main "ndiff" in
  check_bool "landed above" true
    (match ndiff with Some r -> r.Rect.y0 = um 23. | None -> false)

let test_auto_connect () =
  let rules = rules () in
  (* A same-net bar stops on a spacing constraint against a foreign bar;
     the same-net target is stretched up to meet it. *)
  let main = Lobj.create "main" in
  let _ =
    Lobj.add_shape main ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 2.) ~h:(um 6.)) ~net:"s" ()
  in
  let _ =
    Lobj.add_shape main ~layer:"metal1"
      ~rect:(Rect.of_size ~x:(um 4.) ~y:0 ~w:(um 2.) ~h:(um 10.))
      ~net:"d" ()
  in
  let strap = bar ~name:"strap" ~layer:"metal1" ~net:"s" ~x:0 ~y:0 ~w:(um 6.) ~h:(um 2.) () in
  Successive.compact ~rules ~into:main strap Dir.South;
  (* The strap stops 1.5 above the d bar (top 10) -> strap at 11.5..13.5;
     the s bar (top 6) is stretched to reach it. *)
  let s_rects =
    List.filter_map
      (fun (s : Shape.t) -> if s.Shape.net = Some "s" then Some s.Shape.rect else None)
      (Lobj.shapes main)
  in
  check_bool "strap position" true
    (List.exists (fun r -> r.Rect.y0 = um 11.5 && Rect.width r = um 6.) s_rects);
  check_bool "stretched to strap" true
    (List.exists (fun r -> r.Rect.y1 = um 11.5 && Rect.width r = um 2.) s_rects)

let test_variable_edges_fig5 () =
  let rules = rules () in
  (* Fig. 5b: a variable-edge foreign bar shrinks out of the mover's way. *)
  let make_main variable =
    let main = Lobj.create "main" in
    let sides =
      if variable then Edge.set Edge.all_fixed Dir.North Edge.Variable
      else Edge.all_fixed
    in
    let _ =
      Lobj.add_shape main ~layer:"metal1"
        ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 2.) ~h:(um 10.))
        ~net:"d" ~sides ()
    in
    let _ =
      Lobj.add_shape main ~layer:"metal1"
        ~rect:(Rect.of_size ~x:(um 4.) ~y:0 ~w:(um 2.) ~h:(um 6.))
        ~net:"s" ()
    in
    main
  in
  let strap () = bar ~name:"strap" ~layer:"metal1" ~net:"s" ~x:0 ~y:0 ~w:(um 6.) ~h:(um 2.) () in
  let fixed_main = make_main false in
  Successive.compact ~rules ~into:fixed_main (strap ()) Dir.South;
  let var_main = make_main true in
  Successive.compact ~rules ~into:var_main (strap ()) Dir.South;
  let h obj = match Lobj.bbox obj with Some r -> Rect.height r | None -> 0 in
  check_bool "variable edges denser" true (h var_main < h fixed_main);
  (* The variable bar shrank but not below the metal minimum width. *)
  let d_bar =
    List.find
      (fun (s : Shape.t) -> s.Shape.net = Some "d")
      (Lobj.shapes var_main)
  in
  check_bool "shrunk" true (Rect.height d_bar.Shape.rect < um 10.);
  check_bool "not below min" true (Rect.height d_bar.Shape.rect >= um 1.5)

let test_cuts_never_stretched () =
  let rules = rules () in
  let main = Lobj.create "main" in
  let _ =
    Lobj.add_shape main ~layer:"contact" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 1.) ~h:(um 1.)) ~net:"a" ()
  in
  let mover = bar ~name:"m" ~layer:"contact" ~net:"a" ~x:0 ~y:(um 5.) ~w:(um 1.) ~h:(um 1.) () in
  Successive.compact ~rules ~into:main mover Dir.South;
  List.iter
    (fun (s : Shape.t) ->
      check "cut width" (um 1.) (Rect.width s.Shape.rect);
      check "cut height" (um 1.) (Rect.height s.Shape.rect))
    (Lobj.shapes_on main "contact")

let test_shrink_never_empties_array () =
  (* Regression: a variable-edge shrink that would slide a contact array's
     containers apart (leaving it cut-less and the structure disconnected)
     must be rolled back. *)
  let e = Amg_core.Env.bicmos () in
  let rules = rules () in
  let main = Lobj.create "main" in
  (* A contact row whose metal is fully variable. *)
  let row =
    Amg_modules.Contact_row.make e ~layer:"ndiff" ~w:(um 12.)
      ~net:"s" ~var_edges:[ Dir.North; Dir.South ] ()
  in
  Successive.compact ~rules ~into:main row Dir.West;
  (* A foreign strap pressing from the south wants the metal's south edge
     far up. *)
  let strap = bar ~name:"strap" ~layer:"metal1" ~net:"d" ~x:(- um 2.) ~y:0 ~w:(um 8.) ~h:(um 2.) () in
  Successive.compact ~rules ~into:main strap Dir.North;
  (* The row must still have its contacts connecting metal to diffusion. *)
  let conn = Amg_extract.Connectivity.build ~tech:(tech ()) main in
  check "row still connected" 1 (Amg_extract.Connectivity.label_node_count conn "s");
  check_bool "contacts survive" true (Lobj.shapes_on main "contact" <> [])

(* --- edge-graph baseline --- *)

let test_edge_graph_solve () =
  let g =
    { Edge_graph.node_count = 3;
      arcs =
        [ { Edge_graph.src = 0; dst = 1; weight = 10 };
          { Edge_graph.src = 1; dst = 2; weight = 5 };
          { Edge_graph.src = 0; dst = 2; weight = 20 } ] }
  in
  let pos = Edge_graph.solve g in
  check "node0" 0 pos.(0);
  check "node1" 10 pos.(1);
  check "node2 longest path" 20 pos.(2)

let test_edge_graph_positive_cycle () =
  let g =
    { Edge_graph.node_count = 2;
      arcs =
        [ { Edge_graph.src = 0; dst = 1; weight = 1 };
          { Edge_graph.src = 1; dst = 0; weight = 1 } ] }
  in
  Alcotest.check_raises "cycle"
    (Failure "Edge_graph.solve: positive cycle in constraints") (fun () ->
      ignore (Edge_graph.solve g))

let test_edge_graph_compacts () =
  let rules = rules () in
  (* Three spaced-out metal bars compact to minimum pitch. *)
  let o = Lobj.create "loose" in
  List.iteri
    (fun i net ->
      ignore
        (Lobj.add_shape o ~layer:"metal1"
           ~rect:(Rect.of_size ~x:(i * um 10.) ~y:0 ~w:(um 2.) ~h:(um 5.))
           ~net ()))
    [ "a"; "b"; "c" ];
  let before = Lobj.bbox_exn o in
  let _ = Edge_graph.compact_xy ~rules o in
  let after = Lobj.bbox_exn o in
  check "compacted width" (um 9.) (Rect.width after);
  check_bool "smaller" true (Rect.width after < Rect.width before);
  (* Still legal. *)
  check "drc"
    0
    (List.length
       (Amg_drc.Checker.run ~checks:[ Amg_drc.Checker.Spacings ] ~tech:(tech ()) o))

let test_edge_graph_rigid_connectivity () =
  let rules = rules () in
  (* Touching same-net shapes keep their relative offset. *)
  let o = Lobj.create "conn" in
  let _ =
    Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:(um 20.) ~y:0 ~w:(um 2.) ~h:(um 5.)) ~net:"a" ()
  in
  let _ =
    Lobj.add_shape o ~layer:"metal1"
      ~rect:(Rect.of_size ~x:(um 22.) ~y:0 ~w:(um 2.) ~h:(um 5.))
      ~net:"a" ()
  in
  let _ = Edge_graph.compact_axis ~rules o Dir.Horizontal in
  let rects = List.map (fun (s : Shape.t) -> s.Shape.rect) (Lobj.shapes o) in
  (match rects with
  | [ a; b ] ->
      check "moved to origin" 0 a.Rect.x0;
      check "offset preserved" (um 2.) b.Rect.x0
  | _ -> Alcotest.fail "two rects")

(* --- property: any compaction sequence is design-rule clean --- *)

(* Random one-shape objects on routing layers with random nets, compacted
   in random directions: the resulting structure must pass the spacing
   check.  This ties the compactor's placement arithmetic to the DRC's
   L-inf semantics — they must agree exactly. *)
let prop_compaction_always_clean =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 2 7)
        (tup4
           (oneofl [ "metal1"; "metal2"; "poly" ])
           (oneofl [ Some "a"; Some "b"; Some "c"; None ])
           (tup2 (int_range 1 8) (int_range 1 8))
           (oneofl Dir.all)))
  in
  QCheck2.Test.make ~name:"compaction sequence always DRC clean" ~count:200 gen
    (fun specs ->
      let rules = rules () in
      let main = Lobj.create "prop" in
      List.iteri
        (fun i (layer, net, (w, h), dir) ->
          let o = Lobj.create (Printf.sprintf "o%d" i) in
          let _ =
            Lobj.add_shape o ~layer
              ~rect:
                (Amg_geometry.Rect.of_size ~x:0 ~y:0 ~w:(um (float_of_int w))
                   ~h:(um (float_of_int h)))
              ?net ()
          in
          Successive.compact ~rules ~into:main ~align:`Center o dir)
        specs;
      Amg_drc.Checker.run ~checks:[ Amg_drc.Checker.Spacings ] ~tech:(tech ()) main
      = [])

(* Variable edges must never shrink a shape below its layer's minimum
   width, whatever the compaction sequence. *)
let prop_variable_edges_respect_min_width =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 2 6)
        (tup3
           (oneofl [ Some "a"; Some "b"; Some "c"; None ])
           (tup2 (int_range 2 8) (int_range 2 10))
           (oneofl Dir.all)))
  in
  QCheck2.Test.make ~name:"variable edges respect minimum width" ~count:200 gen
    (fun specs ->
      let rules = rules () in
      let main = Lobj.create "prop" in
      List.iteri
        (fun i (net, (w, h), dir) ->
          let o = Lobj.create (Printf.sprintf "o%d" i) in
          let _ =
            Lobj.add_shape o ~layer:"metal1"
              ~rect:
                (Amg_geometry.Rect.of_size ~x:0 ~y:0 ~w:(um (float_of_int w))
                   ~h:(um (float_of_int h)))
              ?net ~sides:Edge.all_variable ()
          in
          Successive.compact ~rules ~into:main ~align:`Center o dir)
        specs;
      List.for_all
        (fun (s : Shape.t) ->
          min (Amg_geometry.Rect.width s.Shape.rect)
            (Amg_geometry.Rect.height s.Shape.rect)
          >= um 1.5)
        (Lobj.shapes main))


(* The final abutment position does not depend on where the mover starts
   along the movement axis: delta is linear in the start position. *)
let prop_delta_translation_linear =
  let gen =
    QCheck2.Gen.(
      tup3
        (list_size (int_range 1 5)
           (tup3
              (oneofl [ "metal1"; "metal2"; "poly" ])
              (tup2 (int_range 0 20) (int_range 0 20))
              (tup2 (int_range 1 6) (int_range 1 6))))
        (oneofl Dir.all)
        (int_range (-15) 15))
  in
  QCheck2.Test.make ~name:"delta linear in start position" ~count:200 gen
    (fun (mains, dir, t) ->
      let rules = rules () in
      let main = Lobj.create "main" in
      List.iter
        (fun (layer, (x, y), (w, h)) ->
          ignore
            (Lobj.add_shape main ~layer
               ~rect:
                 (Rect.of_size ~x:(um (float_of_int x)) ~y:(um (float_of_int y))
                    ~w:(um (float_of_int w)) ~h:(um (float_of_int h)))
               ()))
        mains;
      let mover = Lobj.create "mover" in
      ignore
        (Lobj.add_shape mover ~layer:"metal1"
           ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 2.) ~h:(um 2.)) ());
      let d0 = Successive.delta rules dir ~main mover in
      let tn = um (float_of_int t) in
      (match Dir.axis dir with
      | Dir.Horizontal -> Lobj.translate mover ~dx:tn ~dy:0
      | Dir.Vertical -> Lobj.translate mover ~dx:0 ~dy:tn);
      let d1 = Successive.delta rules dir ~main mover in
      d1 = d0 - tn)

let suite =
  [
    Alcotest.test_case "relation classification" `Quick test_relation;
    Alcotest.test_case "compact to spacing" `Quick test_compact_spacing;
    Alcotest.test_case "compact merge same net" `Quick test_compact_merge_same_net;
    Alcotest.test_case "compact into empty" `Quick test_compact_empty_main;
    Alcotest.test_case "alignments" `Quick test_compact_align;
    Alcotest.test_case "stage outside prevents tunneling" `Quick test_stage_outside_prevents_tunneling;
    Alcotest.test_case "auto connect stretches" `Quick test_auto_connect;
    Alcotest.test_case "variable edges (fig5)" `Quick test_variable_edges_fig5;
    Alcotest.test_case "cuts never stretched" `Quick test_cuts_never_stretched;
    Alcotest.test_case "shrink never empties arrays" `Quick test_shrink_never_empties_array;
    Alcotest.test_case "edge graph longest path" `Quick test_edge_graph_solve;
    Alcotest.test_case "edge graph cycle detection" `Quick test_edge_graph_positive_cycle;
    Alcotest.test_case "edge graph compacts" `Quick test_edge_graph_compacts;
    Alcotest.test_case "edge graph rigid connectivity" `Quick test_edge_graph_rigid_connectivity;
    QCheck_alcotest.to_alcotest prop_compaction_always_clean;
    QCheck_alcotest.to_alcotest prop_variable_edges_respect_min_width;
    QCheck_alcotest.to_alcotest prop_delta_translation_linear;
  ]
