(* End-to-end: the complete BiCMOS amplifier of §3. *)

module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module A = Amg_amplifier.Amplifier

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Building the amplifier takes ~0.5 s; share one instance. *)
let report = lazy (A.build (Env.bicmos ()))

let test_builds () =
  let r = Lazy.force report in
  check_bool "has shapes" true (Lobj.shape_count r.A.obj > 1000);
  check "blocks" 9 (List.length r.A.block_areas);
  List.iter
    (fun (n, a) -> check_bool ("block " ^ n ^ " area positive") true (a > 0.))
    r.A.block_areas

let test_drc_clean () =
  let r = Lazy.force report in
  let vios = Amg_drc.Checker.run ~tech:(Env.tech (Env.bicmos ())) r.A.obj in
  (match vios with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%d violations, first: %s" (List.length vios) (Amg_drc.Violation.describe v));
  check "clean incl latchup" 0 (List.length vios)

let test_dimensions () =
  let r = Lazy.force report in
  (* Same order of magnitude as a real amplifier cell; the paper's exact
     area depends on its larger devices. *)
  check_bool "width sane" true (r.A.width_um > 100. && r.A.width_um < 1000.);
  check_bool "height sane" true (r.A.height_um > 50. && r.A.height_um < 1000.);
  check_bool "smaller than paper" true (r.A.area_um2 < A.paper_area_um2);
  (* Block E (the common-centroid input pair) is the largest transistor
     block, as in the paper's Fig. 9. *)
  let area n = List.assoc n r.A.block_areas in
  List.iter
    (fun n -> check_bool ("E largest vs " ^ n) true (area "E" > area n))
    [ "A"; "B"; "C"; "MT"; "D"; "F"; "RZ" ]

let test_supply_structure () =
  let r = Lazy.force report in
  (* Both rails present on metal2 with hook-up vias. *)
  let m2 =
    List.filter
      (fun (s : Amg_layout.Shape.t) -> Amg_layout.Shape.on_layer s "metal2")
      (Lobj.shapes r.A.obj)
  in
  let on_net net =
    List.exists (fun (s : Amg_layout.Shape.t) -> s.Amg_layout.Shape.net = Some net) m2
  in
  check_bool "vdd rail" true (on_net "vdd");
  check_bool "vss rail" true (on_net "vss");
  check_bool "vias exist" true (List.length (Lobj.shapes_on r.A.obj "via") > 5);
  (* Substrate taps marked for the latch-up check: the three tap rows plus
     the bipolar collector taps. *)
  check_bool "tap rows" true (List.length (Lobj.shapes_on r.A.obj "subtap") >= 3)

let test_routing_complete () =
  let r = Lazy.force report in
  (* Every internal net with two or more pins is routed; only the
     single-pin bias input is skipped. *)
  check_bool "only vb2 unrouted" true
    (List.map fst r.A.routing.Amg_route.Global.unrouted = [ "vb2" ]);
  check "seven nets routed" 7 (List.length r.A.routing.Amg_route.Global.routed)

let test_physical_connectivity () =
  let r = Lazy.force report in
  let conn =
    Amg_extract.Connectivity.build ~tech:(Env.tech (Env.bicmos ())) r.A.obj
  in
  (* Every supply and every routed net is physically one node. *)
  List.iter
    (fun net ->
      Alcotest.(check int)
        (net ^ " single node") 1
        (Amg_extract.Connectivity.label_node_count conn net))
    ([ "vdd"; "vss" ] @ r.A.routing.Amg_route.Global.routed);
  check "no extracted shorts" 0 (List.length (Amg_extract.Connectivity.shorts conn))

let test_lvs_physical () =
  let r = Lazy.force report in
  let ex = Amg_extract.Devices.extract ~tech:(Env.tech (Env.bicmos ())) r.A.obj in
  let res = Amg_extract.Compare.run ~golden:(Amg_amplifier.Schematic.netlist ()) ex in
  check_bool "lvs clean" true (Amg_extract.Compare.clean res)

let test_fast_enough () =
  let r = Lazy.force report in
  (* The paper needed 5 s for module E alone on 1996 hardware; the whole
     amplifier should build in a few seconds today. *)
  check_bool "builds quickly" true (r.A.build_time_s < 30.)


(* --- second application: the five-transistor OTA --- *)

module Ota = Amg_amplifier.Ota

let ota_report = lazy (Ota.build (Env.bicmos ()))

let test_ota_partition () =
  (* The knowledge-based partitioner finds exactly mirror + pair + single. *)
  let clusters = Ota.clusters () in
  check "three clusters" 3 (List.length clusters);
  let styles =
    List.map (fun (c : Amg_circuit.Partition.cluster) -> c.Amg_circuit.Partition.style) clusters
  in
  let has st = check_bool "style present" true (List.mem st styles) in
  has Amg_circuit.Partition.Mirror_symmetric_style;
  has Amg_circuit.Partition.Common_centroid_style;
  check_bool "tail is single or interdigitated" true
    (List.exists
       (fun st ->
         st = Amg_circuit.Partition.Single || st = Amg_circuit.Partition.Interdigitated)
       styles)

let test_ota_builds_clean () =
  let r = Lazy.force ota_report in
  check_bool "has shapes" true (Lobj.shape_count r.Ota.obj > 200);
  let vios = Amg_drc.Checker.run ~tech:(Env.tech (Env.bicmos ())) r.Ota.obj in
  (match vios with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%d violations, first: %s" (List.length vios)
        (Amg_drc.Violation.describe v));
  check_bool "much smaller than the amplifier" true
    (r.Ota.area_um2 < (Lazy.force report).A.area_um2)

let test_ota_routing_and_lvs () =
  let r = Lazy.force ota_report in
  (* Both internal nets routed, nothing unrouted. *)
  check_bool "tail routed" true (List.mem "tail" r.Ota.routing.Amg_route.Global.routed);
  check_bool "n1 routed" true (List.mem "n1" r.Ota.routing.Amg_route.Global.routed);
  check "nothing unrouted" 0 (List.length r.Ota.routing.Amg_route.Global.unrouted);
  (* Extraction matches the schematic exactly. *)
  let tech = Env.tech (Env.bicmos ()) in
  let x = Amg_extract.Devices.extract ~tech r.Ota.obj in
  let cmp = Amg_extract.Compare.run ~golden:(Ota.netlist ()) x in
  check_bool "LVS clean" true (Amg_extract.Compare.clean cmp);
  check "five devices" 5 cmp.Amg_extract.Compare.matched;
  (* Every supply and routed net is one electrical node. *)
  let conn = Amg_extract.Connectivity.build ~tech r.Ota.obj in
  List.iter
    (fun net ->
      check ("one node: " ^ net) 1
        (List.length (Amg_extract.Connectivity.label_components conn net)))
    [ "vdd"; "vss"; "tail"; "n1" ]


(* --- SPICE-to-layout synthesis --- *)

let test_synth_from_spice () =
  let src = {|* five transistor OTA
.subckt ota5s inp inn out vbias vdd vss
M1 n1 inp tail vss nmos1u w=20u l=1u
M2 out inn tail vss nmos1u w=20u l=1u
M3 n1 n1 vdd vdd pmos1u w=16u l=2u
M4 out n1 vdd vdd pmos1u w=16u l=2u
MT tail vbias vss vss nmos1u w=24u l=2u
.ends
|} in
  let e = Env.bicmos () in
  let nl = Amg_circuit.Spice_in.parse_string src in
  let hints =
    [ ("M1", Amg_circuit.Partition.High); ("M2", Amg_circuit.Partition.High);
      ("M3", Amg_circuit.Partition.Moderate); ("M4", Amg_circuit.Partition.Moderate) ]
  in
  let r = Amg_amplifier.Synth.build e ~hints nl in
  check "three clusters" 3 (List.length r.Amg_amplifier.Synth.clusters);
  check "nothing unrouted" 0
    (List.length r.Amg_amplifier.Synth.routing.Amg_route.Global.unrouted);
  let tech = Env.tech (Env.bicmos ()) in
  check "full DRC clean" 0
    (List.length (Amg_drc.Checker.run ~tech r.Amg_amplifier.Synth.obj));
  let x = Amg_extract.Devices.extract ~tech r.Amg_amplifier.Synth.obj in
  let cmp = Amg_extract.Compare.run ~golden:nl x in
  check_bool "LVS clean" true (Amg_extract.Compare.clean cmp);
  check "five devices" 5 cmp.Amg_extract.Compare.matched

let suite =
  [
    Alcotest.test_case "builds" `Quick test_builds;
    Alcotest.test_case "full drc clean" `Quick test_drc_clean;
    Alcotest.test_case "dimensions" `Quick test_dimensions;
    Alcotest.test_case "supply structure" `Quick test_supply_structure;
    Alcotest.test_case "routing complete" `Quick test_routing_complete;
    Alcotest.test_case "physical connectivity" `Quick test_physical_connectivity;
    Alcotest.test_case "LVS on routed layout" `Quick test_lvs_physical;
    Alcotest.test_case "fast enough" `Quick test_fast_enough;
    Alcotest.test_case "OTA: partition" `Quick test_ota_partition;
    Alcotest.test_case "OTA: builds DRC clean" `Quick test_ota_builds_clean;
    Alcotest.test_case "OTA: routing and LVS" `Quick test_ota_routing_and_lvs;
    Alcotest.test_case "synth: SPICE text to clean layout" `Quick test_synth_from_spice;
  ]
