test/test_tech.ml: Alcotest Amg_geometry Amg_tech List Printf QCheck2 QCheck_alcotest
