test/test_route.ml: Alcotest Amg_core Amg_drc Amg_extract Amg_geometry Amg_layout Amg_route Hashtbl List Printf QCheck2 QCheck_alcotest String
