test/test_tech_indep.ml: Alcotest Amg_core Amg_drc Amg_extract Amg_geometry Amg_lang Amg_layout Amg_modules Amg_tech List
