test/test_circuit.ml: Alcotest Amg_amplifier Amg_circuit Amg_extract Amg_geometry List Printf
