test/test_layout.ml: Alcotest Amg_geometry Amg_layout Amg_tech Char List QCheck2 QCheck_alcotest String
