test/test_lang.ml: Alcotest Amg_core Amg_drc Amg_geometry Amg_lang Amg_layout Amg_modules Char List QCheck2 QCheck_alcotest String
