test/test_modules.ml: Alcotest Amg_circuit Amg_core Amg_drc Amg_extract Amg_geometry Amg_layout Amg_modules Array Float Hashtbl List Option Printf QCheck2 QCheck_alcotest String
