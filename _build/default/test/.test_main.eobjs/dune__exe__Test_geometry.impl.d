test/test_geometry.ml: Alcotest Amg_geometry List QCheck2 QCheck_alcotest
