test/test_extract.ml: Alcotest Amg_amplifier Amg_circuit Amg_core Amg_extract Amg_geometry Amg_layout Amg_modules Amg_route Float List String
