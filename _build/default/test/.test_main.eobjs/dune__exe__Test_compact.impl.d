test/test_compact.ml: Alcotest Amg_compact Amg_core Amg_drc Amg_extract Amg_geometry Amg_layout Amg_modules Amg_tech Array List Printf QCheck2 QCheck_alcotest
