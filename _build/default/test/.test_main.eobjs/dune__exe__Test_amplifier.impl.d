test/test_amplifier.ml: Alcotest Amg_amplifier Amg_circuit Amg_core Amg_drc Amg_extract Amg_layout Amg_route Lazy List
