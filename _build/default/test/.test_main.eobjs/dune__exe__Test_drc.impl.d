test/test_drc.ml: Alcotest Amg_core Amg_drc Amg_geometry Amg_layout Amg_modules Amg_tech List
