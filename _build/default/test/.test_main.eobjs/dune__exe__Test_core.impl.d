test/test_core.ml: Alcotest Amg_core Amg_geometry Amg_layout List QCheck2 QCheck_alcotest
