(* Netlist representation and the knowledge-based partitioner. *)

module D = Amg_circuit.Device
module Netlist = Amg_circuit.Netlist
module Partition = Amg_circuit.Partition

let um = Amg_geometry.Units.of_um

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_device_basics () =
  let m = D.mos ~name:"M1" ~polarity:D.Nmos ~w:(um 10.) ~l:(um 1.) ~g:"g" ~d:"d" ~s:"s" ~b:"b" in
  Alcotest.(check string) "name" "M1" (D.name m);
  check_bool "nets" true (D.nets m = [ "g"; "d"; "s"; "b" ]);
  check_bool "not diode" false (D.is_diode m);
  let diode = D.mos ~name:"M2" ~polarity:D.Nmos ~w:1 ~l:1 ~g:"x" ~d:"x" ~s:"s" ~b:"b" in
  check_bool "diode" true (D.is_diode diode);
  let q = D.bjt ~name:"Q1" ~c:"c" ~b:"bb" ~e:"e" in
  check_bool "bjt nets" true (D.nets q = [ "c"; "bb"; "e" ])

let test_netlist () =
  let m1 = D.mos ~name:"M1" ~polarity:D.Nmos ~w:1 ~l:1 ~g:"a" ~d:"b" ~s:"c" ~b:"c" in
  let nl = Netlist.create ~name:"n" [ m1 ] in
  check "count" 1 (Netlist.device_count nl);
  check_bool "find" true (Netlist.find nl "M1" = Some m1);
  check_bool "nets sorted unique" true (Netlist.nets nl = [ "a"; "b"; "c" ]);
  check "on net" 1 (List.length (Netlist.devices_on_net nl "a"));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Netlist.create: duplicate device M1") (fun () ->
      ignore (Netlist.create ~name:"x" [ m1; m1 ]))

let test_partition_mirror () =
  let nl =
    Netlist.create ~name:"m"
      [
        D.mos ~name:"MD" ~polarity:D.Nmos ~w:(um 10.) ~l:(um 1.) ~g:"vg" ~d:"vg" ~s:"vss" ~b:"vss";
        D.mos ~name:"MO" ~polarity:D.Nmos ~w:(um 10.) ~l:(um 1.) ~g:"vg" ~d:"out" ~s:"vss" ~b:"vss";
      ]
  in
  match Partition.partition nl with
  | [ c ] ->
      check_bool "mirror" true (c.Partition.style = Partition.Mirror_simple_style);
      check_bool "members" true (c.Partition.device_names = [ "MD"; "MO" ]);
      (* Moderate hint upgrades to the symmetric style. *)
      let hinted = Partition.partition ~hints:[ ("MD", Partition.Moderate) ] nl in
      check_bool "symmetric" true
        ((List.hd hinted).Partition.style = Partition.Mirror_symmetric_style)
  | cs -> Alcotest.failf "expected one cluster, got %d" (List.length cs)

let test_partition_diff_pair () =
  let nl =
    Netlist.create ~name:"p"
      [
        D.mos ~name:"M1" ~polarity:D.Pmos ~w:(um 20.) ~l:(um 1.) ~g:"inp" ~d:"o1" ~s:"tail" ~b:"vdd";
        D.mos ~name:"M2" ~polarity:D.Pmos ~w:(um 20.) ~l:(um 1.) ~g:"inn" ~d:"o2" ~s:"tail" ~b:"vdd";
      ]
  in
  (match Partition.partition nl with
  | [ c ] -> check_bool "pair" true (c.Partition.style = Partition.Diff_pair_style)
  | _ -> Alcotest.fail "one cluster");
  (match Partition.partition ~hints:[ ("M1", Partition.High) ] nl with
  | [ c ] ->
      check_bool "high matching -> centroid" true
        (c.Partition.style = Partition.Common_centroid_style)
  | _ -> Alcotest.fail "one cluster")

let test_partition_amp_schematic () =
  let clusters = Amg_amplifier.Schematic.clusters () in
  check "cluster count" 9 (List.length clusters);
  let style_of name =
    (List.find (fun c -> c.Partition.cluster_name = name) clusters).Partition.style
  in
  check_bool "B mirror symmetric" true (style_of "mirror_MB1" = Partition.Mirror_symmetric_style);
  check_bool "E common centroid" true (style_of "pair_ME1" = Partition.Common_centroid_style);
  check_bool "A cascode" true (style_of "cascode_MA1" = Partition.Cascode_style);
  check_bool "C cross coupled" true (style_of "sources_MC1" = Partition.Cross_coupled_style);
  check_bool "MT interdigitated" true (style_of "single_MT" = Partition.Interdigitated);
  check_bool "F bjt pair" true (style_of "bjt_Q1" = Partition.Bjt_pair_style);
  (* Every device lands in exactly one cluster. *)
  let all_names = List.concat_map (fun c -> c.Partition.device_names) clusters in
  check "each device once"
    (Netlist.device_count (Amg_amplifier.Schematic.netlist ()))
    (List.length (List.sort_uniq compare all_names));
  check "no duplicates" (List.length all_names)
    (List.length (List.sort_uniq compare all_names))

let test_partition_empty_and_single () =
  check "empty" 0 (List.length (Partition.partition (Netlist.create ~name:"e" [])));
  let nl =
    Netlist.create ~name:"s"
      [ D.mos ~name:"M" ~polarity:D.Nmos ~w:(um 20.) ~l:(um 1.) ~g:"a" ~d:"b" ~s:"c" ~b:"c" ]
  in
  match Partition.partition nl with
  | [ c ] -> check_bool "wide single interdigitated" true (c.Partition.style = Partition.Interdigitated)
  | _ -> Alcotest.fail "one cluster"


(* --- SPICE reader --- *)

module Spice_in = Amg_circuit.Spice_in

let test_spice_in_values () =
  let v = Spice_in.value_of_string in
  Alcotest.(check (float 1e-9)) "k" 2000. (v "2k");
  Alcotest.(check (float 1e-9)) "plain" 470. (v "470");
  Alcotest.(check (float 1e-20)) "f" 4e-13 (v "400f");
  Alcotest.(check (float 1e-3)) "meg" 4.7e6 (v "4.7meg");
  Alcotest.(check (float 1e-12)) "u" 1e-5 (v "10u");
  Alcotest.check_raises "garbage" (Spice_in.Parse_error "bad numeric value \"zz\"")
    (fun () -> ignore (v "zz"))

let test_spice_in_cards () =
  let src = {|* comment line
.subckt amp in out vdd vss
M1 out in vss vss nmos1u w=10u l=2u
MP vdd in out
+ vdd pmos1u w=20u l=1u ; trailing comment
Q1 vdd b out npn1u
R1 a b 2k
C1 t b 400f
.ends
|} in
  let nl = Spice_in.parse_string src in
  Alcotest.(check string) "name" "amp" (Netlist.name nl);
  check "ports" 4 (List.length (Netlist.external_ports nl));
  check "devices" 5 (Netlist.device_count nl);
  (match Netlist.find nl "M1" with
  | Some (D.Mos m) ->
      check "w" (um 10.) m.D.w;
      check "l" (um 2.) m.D.l;
      check_bool "nmos" true (m.D.polarity = D.Nmos)
  | _ -> Alcotest.fail "M1 missing");
  (* The continuation line folded into MP. *)
  (match Netlist.find nl "MP" with
  | Some (D.Mos m) ->
      check_bool "pmos" true (m.D.polarity = D.Pmos);
      check "w" (um 20.) m.D.w
  | _ -> Alcotest.fail "MP missing");
  (match Netlist.find nl "R1" with
  | Some (D.Res r) -> Alcotest.(check (float 1e-9)) "ohms" 2000. r.D.ohms
  | _ -> Alcotest.fail "R1 missing");
  (match Netlist.find nl "C1" with
  | Some (D.Cap c) -> Alcotest.(check (float 1e-6)) "ff" 400. c.D.ff
  | _ -> Alcotest.fail "C1 missing")

let test_spice_roundtrip () =
  (* Exporter output parses back to the same devices (names gain the SPICE
     element-letter prefix; parameters and nets are identical). *)
  let nl = Amg_amplifier.Schematic.netlist () in
  let deck = Amg_extract.Spice.of_netlist nl in
  let back = Spice_in.parse_string deck in
  check "device count" (Netlist.device_count nl) (Netlist.device_count back);
  let key d =
    match d with
    | D.Mos m -> Printf.sprintf "M %b %d %d %s %s %s %s" (m.D.polarity = D.Nmos) m.D.w m.D.l m.D.g m.D.d m.D.s m.D.b
    | D.Bjt q -> Printf.sprintf "Q %s %s %s" q.D.c q.D.bb q.D.e
    | D.Res r -> Printf.sprintf "R %s %s %.3f" r.D.ra r.D.rb r.D.ohms
    | D.Cap c -> Printf.sprintf "C %s %s %.3f" c.D.ca c.D.cb c.D.ff
  in
  let keys l = List.sort compare (List.map key (Netlist.devices l)) in
  check_bool "same devices" true (keys nl = keys back);
  check_bool "same ports" true
    (Netlist.external_ports nl = Netlist.external_ports back)

let suite =
  [
    Alcotest.test_case "device basics" `Quick test_device_basics;
    Alcotest.test_case "netlist" `Quick test_netlist;
    Alcotest.test_case "partition mirror" `Quick test_partition_mirror;
    Alcotest.test_case "partition diff pair" `Quick test_partition_diff_pair;
    Alcotest.test_case "partition amplifier schematic" `Quick test_partition_amp_schematic;
    Alcotest.test_case "partition edge cases" `Quick test_partition_empty_and_single;
    Alcotest.test_case "spice in: values" `Quick test_spice_in_values;
    Alcotest.test_case "spice in: cards" `Quick test_spice_in_cards;
    Alcotest.test_case "spice exporter/reader roundtrip" `Quick test_spice_roundtrip;
  ]
