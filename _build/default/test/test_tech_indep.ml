(* Technology independence (§4): the unchanged module sources — OCaml eDSL
   and layout-language alike — rebuild DRC-clean under a second, quite
   different rule deck (0.8 um single-poly CMOS). *)

module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module M = Amg_modules
module X = Amg_extract

let um = Amg_geometry.Units.of_um

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cmos_env () = Env.create (Amg_tech.Cmos08.get ())

let drc env obj =
  List.length
    (Amg_drc.Checker.run
       ~checks:[ Amg_drc.Checker.Widths; Spacings; Enclosures; Extensions ]
       ~tech:(Env.tech env) obj)

let module_zoo env =
  [
    ("contact_row", M.Contact_row.make env ~layer:"poly" ~l:(um 8.) ());
    ("substrate_tap", M.Contact_row.substrate_tap env ~l:(um 20.) ());
    ("mosfet", M.Mosfet.make env ~polarity:M.Mosfet.Pmos ~w:(um 8.) ~l:(um 1.6) ());
    ("diff_pair", M.Diff_pair.make env ~polarity:M.Mosfet.Pmos ~w:(um 8.) ~l:(um 4.) ());
    ("interdigitated",
     M.Interdigitated.make env ~polarity:M.Mosfet.Nmos ~w:(um 8.) ~l:(um 1.6) ~fingers:4 ());
    ("mirror_simple", M.Current_mirror.simple env ~polarity:M.Mosfet.Nmos ~w:(um 6.4) ~l:(um 1.6) ());
    ("mirror_symmetric",
     M.Current_mirror.symmetric env ~polarity:M.Mosfet.Nmos ~w:(um 6.4) ~l:(um 1.6) ());
    ("cross_coupled",
     M.Cross_coupled.common_gate env ~polarity:M.Mosfet.Nmos ~w:(um 6.4) ~l:(um 1.6) ());
    ("module_e", M.Common_centroid.make env ~polarity:M.Mosfet.Pmos ~w:(um 8.) ~l:(um 1.6) ());
    ("resistor", fst (M.Resistor.make env ~squares:60. ()));
  ]

let test_zoo_clean_in_cmos08 () =
  let env = cmos_env () in
  List.iter
    (fun (name, obj) -> check (name ^ " clean") 0 (drc env obj))
    (module_zoo env)

let test_language_source_in_cmos08 () =
  let env = cmos_env () in
  let dp =
    Amg_lang.Interp.parse_and_build env Amg_lang.Stdlib.all "DiffPair"
      [ ("W", Amg_lang.Value.Num 8.); ("L", Amg_lang.Value.Num 4.) ]
  in
  check "lang diff pair clean" 0 (drc env dp);
  check "ports" 5 (List.length (Lobj.ports dp))

let test_areas_scale_down () =
  (* The 0.8 um module is smaller than the 1 um one for identical source
     parameters. *)
  let e1 = Env.bicmos () and e2 = cmos_env () in
  let a env = Lobj.bbox_area (M.Diff_pair.make env ~polarity:M.Mosfet.Pmos ~w:(um 8.) ~l:(um 4.) ()) in
  check_bool "scales down" true (a e2 < a e1)

let test_extraction_in_cmos08 () =
  let env = cmos_env () in
  let cc = M.Common_centroid.make env ~polarity:M.Mosfet.Pmos ~w:(um 8.) ~l:(um 1.6) () in
  let ex = X.Devices.extract ~tech:(Env.tech env) cc in
  let live = List.filter (fun m -> not (X.Devices.is_dummy m)) ex.X.Devices.mosfets in
  check "two devices" 2 (List.length live);
  List.iter
    (fun (m : X.Devices.mos) -> check "width" (um 32.) m.X.Devices.x_w)
    live;
  check "no shorts" 0 (List.length ex.X.Devices.short_nets)

let test_missing_layer_rejects () =
  (* Poly2 capacitors cannot exist in the single-poly process and must be
     rejected, not silently mis-built. *)
  let env = cmos_env () in
  check_bool "capacitor rejects" true
    (match M.Capacitor.make env ~cap_ff:100. () with
    | exception _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "module zoo clean in cmos08" `Quick test_zoo_clean_in_cmos08;
    Alcotest.test_case "language source in cmos08" `Quick test_language_source_in_cmos08;
    Alcotest.test_case "areas scale down" `Quick test_areas_scale_down;
    Alcotest.test_case "extraction in cmos08" `Quick test_extraction_in_cmos08;
    Alcotest.test_case "missing layer rejects" `Quick test_missing_layer_rejects;
  ]
