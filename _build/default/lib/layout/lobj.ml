module Rect = Amg_geometry.Rect
module Region = Amg_geometry.Region
module Transform = Amg_geometry.Transform
module Rules = Amg_tech.Rules

type array_spec = {
  cut_layer : string;
  container_ids : int list;
  array_net : string option;
}

type t = {
  mutable name : string;
  mutable shapes : Shape.t list; (* kept in insertion order *)
  mutable ports : Port.t list;
  mutable arrays : (int * array_spec) list;
  mutable next_id : int;
}

let create name = { name; shapes = []; ports = []; arrays = []; next_id = 0 }

let name t = t.name
let set_name t n = t.name <- n

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let add_shape t ~layer ~rect ?net ?sides ?keep_clear ?origin () =
  let s = Shape.make ~id:(fresh_id t) ~layer ~rect ?net ?sides ?keep_clear ?origin () in
  t.shapes <- t.shapes @ [ s ];
  s

let shapes t = t.shapes

let shape_count t = List.length t.shapes

let find t id = List.find_opt (fun (s : Shape.t) -> s.id = id) t.shapes

let find_exn t id =
  match find t id with
  | Some s -> s
  | None -> Fmt.invalid_arg "Lobj.find_exn: no shape %d in %s" id t.name

let replace t (s : Shape.t) =
  let found = ref false in
  t.shapes <-
    List.map
      (fun (old : Shape.t) ->
        if old.id = s.id then (
          found := true;
          s)
        else old)
      t.shapes;
  if not !found then Fmt.invalid_arg "Lobj.replace: no shape %d in %s" s.Shape.id t.name

let remove t id =
  t.shapes <- List.filter (fun (s : Shape.t) -> s.id <> id) t.shapes

let shapes_on t layer = List.filter (fun s -> Shape.on_layer s layer) t.shapes

let shapes_on_net t net =
  List.filter (fun (s : Shape.t) -> s.net = Some net) t.shapes

let rects t = List.map (fun (s : Shape.t) -> s.rect) t.shapes

let rects_on t layer = List.map (fun (s : Shape.t) -> s.rect) (shapes_on t layer)

let bbox t = Rect.hull_list (rects t)

let bbox_exn t =
  match bbox t with
  | Some r -> r
  | None -> Fmt.invalid_arg "Lobj.bbox_exn: %s is empty" t.name

let bbox_on t layer = Rect.hull_list (rects_on t layer)

let bbox_area t = match bbox t with None -> 0 | Some r -> Rect.area r

let union_area t = Region.area (rects t)

let layers t =
  List.fold_left
    (fun acc (s : Shape.t) ->
      if List.mem s.layer acc then acc else s.layer :: acc)
    [] t.shapes
  |> List.rev

let nets t =
  List.fold_left
    (fun acc (s : Shape.t) ->
      match s.net with
      | Some n when not (List.mem n acc) -> n :: acc
      | _ -> acc)
    [] t.shapes
  |> List.rev

let translate t ~dx ~dy =
  t.shapes <- List.map (fun s -> Shape.translate s ~dx ~dy) t.shapes;
  t.ports <- List.map (fun p -> Port.translate p ~dx ~dy) t.ports

let transform t tr =
  t.shapes <- List.map (fun s -> Shape.transform s tr) t.shapes;
  t.ports <- List.map (fun p -> Port.transform p tr) t.ports

(* Deep copy; shape ids are per-object so they are kept ("trans2 = trans1
   copies the data structure", §2.5). *)
let copy ?name t =
  {
    name = Option.value ~default:t.name name;
    shapes = t.shapes;
    ports = t.ports;
    arrays = t.arrays;
    next_id = t.next_id;
  }

let add_port t ~name ~net ~layer ~rect =
  let p = Port.make ~name ~net ~layer ~rect in
  t.ports <- t.ports @ [ p ];
  p

let ports t = t.ports

let port t name = List.find_opt (fun (p : Port.t) -> String.equal p.name name) t.ports

let port_exn t pname =
  match port t pname with
  | Some p -> p
  | None -> Fmt.invalid_arg "Lobj.port_exn: no port %s in %s" pname t.name

let remove_port t pname =
  t.ports <- List.filter (fun (p : Port.t) -> not (String.equal p.name pname)) t.ports

let rename_net t ~from_ ~to_ =
  t.shapes <-
    List.map
      (fun (s : Shape.t) ->
        if s.net = Some from_ then Shape.with_net s (Some to_) else s)
      t.shapes;
  t.ports <-
    List.map
      (fun (p : Port.t) ->
        if String.equal p.net from_ then { p with net = to_ } else p)
      t.ports;
  t.arrays <-
    List.map
      (fun (id, spec) ->
        if spec.array_net = Some from_ then (id, { spec with array_net = Some to_ })
        else (id, spec))
      t.arrays

(* Prefix every net of the object, giving instance-local net names. *)
let qualify_nets t prefix =
  let q n = prefix ^ "." ^ n in
  t.shapes <-
    List.map
      (fun (s : Shape.t) -> Shape.with_net s (Option.map q s.net))
      t.shapes;
  t.ports <- List.map (fun (p : Port.t) -> { p with net = q p.net }) t.ports;
  t.arrays <-
    List.map
      (fun (id, spec) -> (id, { spec with array_net = Option.map q spec.array_net }))
      t.arrays

(* --- Derived cut arrays (§2.2 / §2.3) --- *)

let register_array t ~cut_layer ~container_ids ?net () =
  let id = fresh_id t in
  t.arrays <- t.arrays @ [ (id, { cut_layer; container_ids; array_net = net }) ];
  id

let array_specs t = t.arrays

let arrays_of_container t id =
  List.filter_map
    (fun (aid, spec) -> if List.mem id spec.container_ids then Some aid else None)
    t.arrays

let array_member_count t array_id =
  List.length
    (List.filter (fun (s : Shape.t) -> s.origin = Shape.Array_member array_id) t.shapes)

(* Is this shape a container of some registered array?  If so the compactor
   must not shrink it below the one-cut minimum. *)
let array_cut_layers_of_container t id =
  List.filter_map
    (fun (_, spec) ->
      if List.mem id spec.container_ids then Some spec.cut_layer else None)
    t.arrays

let rederive t rules =
  List.iter
    (fun (array_id, spec) ->
      t.shapes <-
        List.filter
          (fun (s : Shape.t) -> s.origin <> Shape.Array_member array_id)
          t.shapes;
      let containers =
        List.map
          (fun id ->
            let s = find_exn t id in
            (s.Shape.layer, s.Shape.rect))
          spec.container_ids
      in
      let cuts = Derive.cut_array rules ~containers ~cut_layer:spec.cut_layer in
      List.iter
        (fun rect ->
          ignore
            (add_shape t ~layer:spec.cut_layer ~rect ?net:spec.array_net
               ~origin:(Shape.Array_member array_id) ()))
        cuts)
    t.arrays

(* Merge [src] into [t], renumbering ids; returns the id offset applied. *)
let absorb t src =
  let offset = t.next_id in
  let bump (s : Shape.t) =
    let origin =
      match s.origin with
      | Shape.User -> Shape.User
      | Shape.Array_member a -> Shape.Array_member (a + offset)
    in
    { s with id = s.id + offset; origin }
  in
  t.shapes <- t.shapes @ List.map bump src.shapes;
  t.ports <- t.ports @ src.ports;
  t.arrays <-
    t.arrays
    @ List.map
        (fun (id, spec) ->
          ( id + offset,
            { spec with container_ids = List.map (fun i -> i + offset) spec.container_ids } ))
        src.arrays;
  t.next_id <- t.next_id + src.next_id;
  offset

let pp ppf t =
  Fmt.pf ppf "@[<v>object %s (%d shapes, %d ports)@," t.name
    (List.length t.shapes) (List.length t.ports);
  List.iter
    (fun (s : Shape.t) ->
      Fmt.pf ppf "  %3d %-8s %a %a@," s.id s.layer Rect.pp_um s.rect
        Fmt.(option string)
        s.net)
    t.shapes;
  List.iter
    (fun (p : Port.t) ->
      Fmt.pf ppf "  port %s net=%s %s %a@," p.name p.net p.layer Rect.pp_um p.rect)
    t.ports;
  Fmt.pf ppf "@]"
