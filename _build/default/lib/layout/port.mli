(** Named connection points of a layout object.

    A port exposes a rectangle on a routing layer, bound to a net, through
    which a module's "external connections" (§1) are made by the routing
    routines and by parent modules. *)

type t = {
  name : string;
  net : string;
  layer : string;
  rect : Amg_geometry.Rect.t;
}
[@@deriving show, eq, ord]

val make : name:string -> net:string -> layer:string -> rect:Amg_geometry.Rect.t -> t
val translate : t -> dx:int -> dy:int -> t
val transform : t -> Amg_geometry.Transform.t -> t
