(* GDSII stream format writer and (minimal) reader.

   Enough of the format for real interchange: one library, one structure,
   BOUNDARY elements for every shape, layer numbers from the technology.
   The reader parses what the writer emits (plus unknown-record skipping),
   which gives a verifiable round trip. *)

module Rect = Amg_geometry.Rect
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer

(* --- record encoding --- *)

let u16 b v =
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let u32 b v =
  u16 b ((v asr 16) land 0xffff);
  u16 b (v land 0xffff)

(* GDS 8-byte excess-64 floating point. *)
let gds_real b f =
  if f = 0. then (u32 b 0; u32 b 0)
  else begin
    let sign = if f < 0. then 0x80 else 0 in
    let m = ref (Float.abs f) in
    let e = ref 64 in
    while !m >= 1. do
      m := !m /. 16.;
      incr e
    done;
    while !m < 1. /. 16. do
      m := !m *. 16.;
      decr e
    done;
    (* 56-bit mantissa *)
    let mant = Int64.of_float (!m *. 72057594037927936.0 (* 2^56 *)) in
    Buffer.add_char b (Char.chr (sign lor !e));
    for i = 6 downto 0 do
      Buffer.add_char b
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical mant (i * 8)) 0xffL)))
    done
  end

let record b ~tag payload =
  u16 b (4 + String.length payload);
  u16 b tag;
  Buffer.add_string b payload

let record_u16s b ~tag vs =
  let p = Buffer.create 8 in
  List.iter (fun v -> u16 p v) vs;
  record b ~tag (Buffer.contents p)

let record_u32s b ~tag vs =
  let p = Buffer.create 16 in
  List.iter (fun v -> u32 p v) vs;
  record b ~tag (Buffer.contents p)

let record_string b ~tag s =
  (* pad to even length *)
  let s = if String.length s mod 2 = 0 then s else s ^ "\000" in
  record b ~tag s

let record_reals b ~tag vs =
  let p = Buffer.create 16 in
  List.iter (fun v -> gds_real p v) vs;
  record b ~tag (Buffer.contents p)

(* Record tags (tag = type byte << 8 | data-type byte). *)
let header = 0x0002
let bgnlib = 0x0102
let libname = 0x0206
let units = 0x0305
let endlib = 0x0400
let bgnstr = 0x0502
let strname = 0x0606
let endstr = 0x0700
let boundary = 0x0800
let layer_tag = 0x0d02
let datatype = 0x0e02
let xy = 0x1003
let endel = 0x1100

let timestamp = [ 1996; 3; 11; 0; 0; 0 ]

let to_bytes ~tech obj =
  let b = Buffer.create 16384 in
  record_u16s b ~tag:header [ 600 ];
  record_u16s b ~tag:bgnlib (timestamp @ timestamp);
  record_string b ~tag:libname "AMG";
  (* database unit: 1 nm; user unit: 1 um. *)
  record_reals b ~tag:units [ 0.001; 1e-9 ];
  record_u16s b ~tag:bgnstr (timestamp @ timestamp);
  record_string b ~tag:strname (Lobj.name obj);
  List.iter
    (fun (s : Shape.t) ->
      match Technology.layer tech s.Shape.layer with
      | None -> ()
      | Some l when l.Layer.kind = Layer.Marker -> ()
      | Some l ->
          record b ~tag:boundary "";
          record_u16s b ~tag:layer_tag [ l.Layer.gds ];
          record_u16s b ~tag:datatype [ 0 ];
          let r = s.Shape.rect in
          record_u32s b ~tag:xy
            [ r.Rect.x0; r.Rect.y0; r.Rect.x1; r.Rect.y0; r.Rect.x1; r.Rect.y1;
              r.Rect.x0; r.Rect.y1; r.Rect.x0; r.Rect.y0 ];
          record b ~tag:endel "")
    (Lobj.shapes obj);
  record b ~tag:endstr "";
  record b ~tag:endlib "";
  Buffer.contents b

let save ~tech obj path =
  let oc = open_out_bin path in
  output_string oc (to_bytes ~tech obj);
  close_out oc

(* --- minimal reader: structure name + (gds layer, rect) boundaries --- *)

exception Bad_gds of string

let read_u16 s i = (Char.code s.[i] lsl 8) lor Char.code s.[i + 1]

let read_i32 s i =
  let v =
    (Char.code s.[i] lsl 24)
    lor (Char.code s.[i + 1] lsl 16)
    lor (Char.code s.[i + 2] lsl 8)
    lor Char.code s.[i + 3]
  in
  (* sign-extend *)
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let parse bytes =
  let n = String.length bytes in
  let name = ref "" in
  let shapes = ref [] in
  let cur_layer = ref 0 in
  let cur_xy = ref [] in
  let i = ref 0 in
  while !i + 4 <= n do
    let len = read_u16 bytes !i in
    if len < 4 then raise (Bad_gds "record length < 4");
    let tag = read_u16 bytes (!i + 2) in
    let payload_at = !i + 4 and payload_len = len - 4 in
    if payload_at + payload_len > n then raise (Bad_gds "truncated record");
    if tag = strname then
      name :=
        String.trim
          (String.concat ""
             (List.filter_map
                (fun j ->
                  let c = bytes.[payload_at + j] in
                  if c = '\000' then None else Some (String.make 1 c))
                (List.init payload_len Fun.id)))
    else if tag = layer_tag then cur_layer := read_u16 bytes payload_at
    else if tag = xy then begin
      let pts = payload_len / 8 in
      cur_xy :=
        List.init pts (fun k ->
            (read_i32 bytes (payload_at + (8 * k)), read_i32 bytes (payload_at + (8 * k) + 4)))
    end
    else if tag = endel then begin
      (match !cur_xy with
      | (x0, y0) :: _ as pts ->
          let xs = List.map fst pts and ys = List.map snd pts in
          let x1 = List.fold_left max x0 xs and y1 = List.fold_left max y0 ys in
          let x0 = List.fold_left min x0 xs and y0 = List.fold_left min y0 ys in
          shapes := (!cur_layer, Rect.make ~x0 ~y0 ~x1 ~y1) :: !shapes
      | [] -> ());
      cur_xy := []
    end;
    i := !i + len
  done;
  (!name, List.rev !shapes)

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let bytes = really_input_string ic n in
  close_in ic;
  parse bytes

(* Import: map GDS layer numbers back through the technology to layer
   names and rebuild a layout object.  Boundaries on numbers the deck does
   not declare are collected in [dropped] rather than silently lost. *)
let import ~tech bytes =
  let name, raw = parse bytes in
  let by_gds =
    List.map (fun (l : Layer.t) -> (l.Layer.gds, l.Layer.name)) (Technology.layers tech)
  in
  let obj = Lobj.create (if name = "" then "gds_import" else name) in
  let dropped = ref [] in
  List.iter
    (fun (g, rect) ->
      match List.assoc_opt g by_gds with
      | Some layer -> ignore (Lobj.add_shape obj ~layer ~rect ())
      | None -> dropped := g :: !dropped)
    raw;
  (obj, List.sort_uniq compare !dropped)

let import_file ~tech path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let bytes = really_input_string ic n in
  close_in ic;
  import ~tech bytes
