module Rect = Amg_geometry.Rect
module Technology = Amg_tech.Technology

(* CIF distance unit is a centimicron = 10 nm. *)
let cif_unit = 10

let to_cif nm =
  (* Round to nearest centimicron; generated geometry is on a >= 50 nm grid
     so this is exact in practice. *)
  (nm + (cif_unit / 2)) / cif_unit

(* CIF layer names must be short alphanumerics; derive from the layer name. *)
let cif_layer_name lname =
  let b = Buffer.create 4 in
  String.iter
    (fun c ->
      if Buffer.length b < 4 then
        match c with
        | 'a' .. 'z' -> Buffer.add_char b (Char.uppercase_ascii c)
        | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char b c
        | _ -> ())
    lname;
  if Buffer.length b = 0 then "LX" else Buffer.contents b

let of_lobj ~tech obj =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "(CIF file: %s, technology %s);\n" (Lobj.name obj)
       (Technology.name tech));
  Buffer.add_string b "DS 1 1 1;\n";
  let by_layer = Hashtbl.create 16 in
  List.iter
    (fun (s : Shape.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_layer s.layer) in
      Hashtbl.replace by_layer s.layer (s.rect :: cur))
    (Lobj.shapes obj);
  List.iter
    (fun lname ->
      match Hashtbl.find_opt by_layer lname with
      | None -> ()
      | Some rects ->
          Buffer.add_string b (Printf.sprintf "L %s;\n" (cif_layer_name lname));
          List.iter
            (fun (r : Rect.t) ->
              (* B width height centerx centery *)
              Buffer.add_string b
                (Printf.sprintf "B %d %d %d %d;\n"
                   (to_cif (Rect.width r))
                   (to_cif (Rect.height r))
                   (to_cif ((r.Rect.x0 + r.Rect.x1) / 2))
                   (to_cif ((r.Rect.y0 + r.Rect.y1) / 2))))
            (List.rev rects))
    (Technology.layer_names tech);
  Buffer.add_string b "DF;\nC 1;\nE\n";
  Buffer.contents b

let save ~tech obj path =
  let oc = open_out path in
  output_string oc (of_lobj ~tech obj);
  close_out oc
