type freedom = Fixed | Variable [@@deriving show { with_path = false }, eq, ord]

type sides = {
  north : freedom;
  south : freedom;
  east : freedom;
  west : freedom;
}
[@@deriving show { with_path = false }, eq, ord]

let all_fixed = { north = Fixed; south = Fixed; east = Fixed; west = Fixed }

let all_variable =
  { north = Variable; south = Variable; east = Variable; west = Variable }

let get sides (d : Amg_geometry.Dir.t) =
  match d with
  | North -> sides.north
  | South -> sides.south
  | East -> sides.east
  | West -> sides.west

let set sides (d : Amg_geometry.Dir.t) freedom =
  match d with
  | North -> { sides with north = freedom }
  | South -> { sides with south = freedom }
  | East -> { sides with east = freedom }
  | West -> { sides with west = freedom }

let is_variable sides d = get sides d = Variable
