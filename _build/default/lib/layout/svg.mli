(** SVG export.

    Renders layout objects with the per-layer fill patterns of the
    technology (the paper's Fig. 4), y axis up, ports as dashed outlines. *)

val default_scale : float
(** Pixels per micrometre (12). *)

val render_rects :
  tech:Amg_tech.Technology.t ->
  ?scale:float ->
  ?margin:float ->
  title:string ->
  (string * Amg_geometry.Rect.t) list ->
  Port.t list ->
  string
(** Low-level entry: render labelled rectangles and port markers. *)

val of_lobj :
  tech:Amg_tech.Technology.t -> ?scale:float -> ?margin:float -> Lobj.t -> string

val save :
  tech:Amg_tech.Technology.t ->
  ?scale:float ->
  ?margin:float ->
  Lobj.t ->
  string ->
  unit
