lib/layout/port.pp.ml: Amg_geometry Ppx_deriving_runtime
