lib/layout/lobj.pp.mli: Amg_geometry Amg_tech Edge Format Port Shape
