lib/layout/cif.pp.mli: Amg_tech Lobj
