lib/layout/stats.pp.ml: Amg_geometry Fmt List Lobj
