lib/layout/edge.pp.mli: Amg_geometry Ppx_deriving_runtime
