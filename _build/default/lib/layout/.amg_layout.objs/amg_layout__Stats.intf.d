lib/layout/stats.pp.mli: Amg_geometry Format Lobj
