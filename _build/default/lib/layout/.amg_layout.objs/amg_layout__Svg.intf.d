lib/layout/svg.pp.mli: Amg_geometry Amg_tech Lobj Port
