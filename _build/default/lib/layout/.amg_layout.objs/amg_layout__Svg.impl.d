lib/layout/svg.pp.ml: Amg_geometry Amg_tech Buffer List Lobj Port Printf Shape
