lib/layout/ascii.pp.ml: Amg_geometry Amg_tech Array Buffer List Lobj Shape String
