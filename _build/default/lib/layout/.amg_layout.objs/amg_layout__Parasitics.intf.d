lib/layout/parasitics.pp.mli: Amg_tech Format Lobj
