lib/layout/gds.pp.ml: Amg_geometry Amg_tech Buffer Char Float Fun Int64 List Lobj Shape String
