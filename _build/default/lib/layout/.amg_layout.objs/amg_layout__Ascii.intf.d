lib/layout/ascii.pp.mli: Amg_tech Lobj
