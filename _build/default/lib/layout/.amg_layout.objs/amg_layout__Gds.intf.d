lib/layout/gds.pp.mli: Amg_geometry Amg_tech Lobj
