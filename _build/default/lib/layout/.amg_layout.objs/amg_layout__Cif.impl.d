lib/layout/cif.pp.ml: Amg_geometry Amg_tech Buffer Char Hashtbl List Lobj Option Printf Shape String
