lib/layout/edge.pp.ml: Amg_geometry Ppx_deriving_runtime
