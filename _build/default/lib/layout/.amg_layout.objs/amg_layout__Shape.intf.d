lib/layout/shape.pp.mli: Amg_geometry Edge Ppx_deriving_runtime
