lib/layout/lobj.pp.ml: Amg_geometry Amg_tech Derive Fmt List Option Port Shape String
