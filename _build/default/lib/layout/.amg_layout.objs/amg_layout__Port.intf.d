lib/layout/port.pp.mli: Amg_geometry Ppx_deriving_runtime
