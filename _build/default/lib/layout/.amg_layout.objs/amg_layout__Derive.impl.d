lib/layout/derive.pp.ml: Amg_geometry Amg_tech List Option
