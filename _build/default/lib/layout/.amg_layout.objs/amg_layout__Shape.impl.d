lib/layout/shape.pp.ml: Amg_geometry Edge List Ppx_deriving_runtime String
