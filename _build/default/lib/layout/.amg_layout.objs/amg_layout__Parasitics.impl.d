lib/layout/parasitics.pp.ml: Amg_geometry Amg_tech Fmt Hashtbl List Lobj Option Shape String
