lib/layout/derive.pp.mli: Amg_geometry Amg_tech
