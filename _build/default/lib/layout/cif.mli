(** CIF 2.0 export (flat).

    One definition per object; boxes grouped by layer in technology order.
    The CIF distance unit is the centimicron (10 nm). *)

val cif_layer_name : string -> string
(** Short upper-case CIF layer name derived from the technology layer name. *)

val of_lobj : tech:Amg_tech.Technology.t -> Lobj.t -> string

val save : tech:Amg_tech.Technology.t -> Lobj.t -> string -> unit
