module Rect = Amg_geometry.Rect
module Rules = Amg_tech.Rules

(* Usable window inside the containers for a cut of [cut_layer]: each
   container shrinks by its enclosure margin, then everything intersects. *)
let cut_window rules ~containers ~cut_layer =
  let shrink (layer, rect) =
    Rect.inflate rect (-Rules.enclosure_or_zero rules ~outer:layer ~inner:cut_layer)
  in
  match List.map shrink containers with
  | [] -> None
  | r :: rs ->
      let window =
        List.fold_left
          (fun acc r -> Option.bind acc (fun a -> Rect.inter a r))
          (if Rect.is_degenerate r then None else Some r)
          rs
      in
      window

(* Equidistant positions of [n] cuts of size [s] in an extent [lo, hi]:
   all gaps (including the two end margins) are as equal as integer
   arithmetic allows, except that cut-to-cut gaps never drop below the
   minimum [space]; any slack the inner gaps cannot legally absorb moves to
   the end margins.  The rounding remainder is spread one nanometre at a
   time from the low end, keeping the arrangement symmetric to within one
   grid unit. *)
let spread ~lo ~hi ~s ~space n =
  let w = hi - lo in
  let total_gap = w - (n * s) in
  let equal_gap = total_gap / (n + 1) in
  if n = 0 then []
  else if equal_gap >= space || n = 1 then begin
    let base = equal_gap and rem = total_gap mod (n + 1) in
    let rec go i pos acc =
      if i >= n then List.rev acc
      else
        let extra = if i < rem then 1 else 0 in
        let x = pos + base + extra in
        go (i + 1) (x + s) ((x, x + s) :: acc)
    in
    go 0 lo []
  end
  else begin
    (* Inner gaps pinned at the minimum space; margins share the rest. *)
    let margin_total = total_gap - ((n - 1) * space) in
    let m0 = margin_total / 2 in
    let rec go i pos acc =
      if i >= n then List.rev acc
      else go (i + 1) (pos + s + space) ((pos, pos + s) :: acc)
    in
    go 0 (lo + m0) []
  end

(* Maximum number of cuts of size [s] at pitch [s + space] fitting in [w]. *)
let max_cuts ~w ~s ~space =
  if w < s then 0 else 1 + ((w - s) / (s + space))

(* Compute the rectangles of a contact/via array filling the window defined
   by [containers].  "The maximum number of rectangles which fits
   horizontally and vertically into the structure is calculated according to
   the necessary overlap and the contacts are placed equidistantly to
   minimize the contact resistance" (§2.2).  Returns [] when not even one
   cut fits — the caller (the ARRAY primitive) must then expand the outer
   geometries. *)
let cut_array rules ~containers ~cut_layer =
  match cut_window rules ~containers ~cut_layer with
  | None -> []
  | Some window ->
      let s = Rules.cut_size rules cut_layer in
      let space = Rules.cut_space rules cut_layer in
      let nx = max_cuts ~w:(Rect.width window) ~s ~space in
      let ny = max_cuts ~w:(Rect.height window) ~s ~space in
      if nx = 0 || ny = 0 then []
      else
        let xs = spread ~lo:window.Rect.x0 ~hi:window.Rect.x1 ~s ~space nx in
        let ys = spread ~lo:window.Rect.y0 ~hi:window.Rect.y1 ~s ~space ny in
        List.concat_map
          (fun (y0, y1) ->
            List.map (fun (x0, x1) -> Rect.make ~x0 ~y0 ~x1 ~y1) xs)
          ys

(* Smallest container extent (along one axis) that still admits one cut:
   cut size plus the enclosure margin on both sides.  This bounds how far a
   variable edge of an array container may be shrunk. *)
let min_container_extent rules ~container_layer ~cut_layer =
  Rules.cut_size rules cut_layer
  + (2 * Rules.enclosure_or_zero rules ~outer:container_layer ~inner:cut_layer)
