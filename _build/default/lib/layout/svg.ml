module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer
module Patterns = Amg_tech.Patterns

(* Scale: pixels per micrometre. *)
let default_scale = 12.

let pattern_id (layer : Layer.t) = "fill-" ^ layer.name

let pattern_def b (layer : Layer.t) =
  let { Patterns.style; color } = layer.Layer.fill in
  let id = pattern_id layer in
  let line x1 y1 x2 y2 =
    Printf.sprintf
      "<line x1='%g' y1='%g' x2='%g' y2='%g' stroke='%s' stroke-width='1'/>" x1
      y1 x2 y2 color
  in
  let pat body =
    Buffer.add_string b
      (Printf.sprintf
         "<pattern id='%s' width='6' height='6' patternUnits='userSpaceOnUse'>%s</pattern>\n"
         id body)
  in
  match style with
  | Patterns.Solid | Patterns.Outline -> ()
  | Patterns.Hatch -> pat (line 0. 6. 6. 0. ^ line (-1.) 1. 1. (-1.) ^ line 5. 7. 7. 5.)
  | Patterns.Back_hatch -> pat (line 0. 0. 6. 6. ^ line 5. (-1.) 7. 1. ^ line (-1.) 5. 1. 7.)
  | Patterns.Cross_hatch -> pat (line 0. 6. 6. 0. ^ line 0. 0. 6. 6.)
  | Patterns.Dots ->
      pat (Printf.sprintf "<circle cx='2' cy='2' r='1' fill='%s'/>" color)

let fill_attr (layer : Layer.t) =
  let { Patterns.style; color } = layer.Layer.fill in
  match style with
  | Patterns.Solid -> Printf.sprintf "fill='%s' fill-opacity='0.85'" color
  | Patterns.Outline -> "fill='none'"
  | _ -> Printf.sprintf "fill='url(#%s)'" (pattern_id layer)

(* Render a list of (layer, rect) pairs plus optional port markers. *)
let render_rects ~tech ?(scale = default_scale) ?(margin = 2.0)
    ~(title : string) rects ports =
  let b = Buffer.create 8192 in
  let bbox =
    match Rect.hull_list (List.map snd rects) with
    | Some r -> r
    | None -> Rect.of_size ~x:0 ~y:0 ~w:1000 ~h:1000
  in
  let px_of_um um = um *. scale in
  let x_of nm = px_of_um (Units.to_um (nm - bbox.Rect.x0) +. margin) in
  (* SVG y grows downward; layout y grows upward. *)
  let y_of nm = px_of_um (Units.to_um (bbox.Rect.y1 - nm) +. margin) in
  let w_px = px_of_um (Units.to_um (Rect.width bbox) +. (2. *. margin)) in
  let h_px = px_of_um (Units.to_um (Rect.height bbox) +. (2. *. margin)) in
  Buffer.add_string b
    (Printf.sprintf
       "<svg xmlns='http://www.w3.org/2000/svg' width='%g' height='%g' \
        viewBox='0 0 %g %g'>\n"
       w_px h_px w_px h_px);
  Buffer.add_string b (Printf.sprintf "<title>%s</title>\n" title);
  Buffer.add_string b "<defs>\n";
  List.iter (pattern_def b) (Technology.layers tech);
  Buffer.add_string b "</defs>\n";
  Buffer.add_string b
    (Printf.sprintf "<rect width='%g' height='%g' fill='white'/>\n" w_px h_px);
  (* Draw in technology layer order, bottom first. *)
  let order (l, _) = Technology.draw_index tech l in
  let sorted = List.stable_sort (fun a bb -> compare (order a) (order bb)) rects in
  List.iter
    (fun (lname, (r : Rect.t)) ->
      match Technology.layer tech lname with
      | None -> ()
      | Some layer ->
          Buffer.add_string b
            (Printf.sprintf
               "<rect x='%g' y='%g' width='%g' height='%g' %s stroke='%s' \
                stroke-width='0.6'/>\n"
               (x_of r.Rect.x0) (y_of r.Rect.y1)
               (px_of_um (Units.to_um (Rect.width r)))
               (px_of_um (Units.to_um (Rect.height r)))
               (fill_attr layer) layer.Layer.fill.Patterns.color))
    sorted;
  List.iter
    (fun (p : Port.t) ->
      let r = p.Port.rect in
      Buffer.add_string b
        (Printf.sprintf
           "<rect x='%g' y='%g' width='%g' height='%g' fill='none' \
            stroke='black' stroke-width='1' stroke-dasharray='3,2'/>\n\
            <text x='%g' y='%g' font-size='8' font-family='monospace'>%s</text>\n"
           (x_of r.Rect.x0) (y_of r.Rect.y1)
           (px_of_um (Units.to_um (Rect.width r)))
           (px_of_um (Units.to_um (Rect.height r)))
           (x_of r.Rect.x0)
           (y_of r.Rect.y1 -. 2.)
           p.Port.name))
    ports;
  Buffer.add_string b "</svg>\n";
  Buffer.contents b

let of_lobj ~tech ?scale ?margin obj =
  let rects =
    List.map (fun (s : Shape.t) -> (s.Shape.layer, s.Shape.rect)) (Lobj.shapes obj)
  in
  render_rects ~tech ?scale ?margin ~title:(Lobj.name obj) rects (Lobj.ports obj)

let save ~tech ?scale ?margin obj path =
  let oc = open_out path in
  output_string oc (of_lobj ~tech ?scale ?margin obj);
  close_out oc
