(** ASCII-art layout preview for the terminal.

    Topmost layer (technology drawing order) wins per cell; the aspect
    ratio compensates for terminal cell geometry. *)

val layer_glyph : Amg_tech.Technology.t -> string -> char

val render : tech:Amg_tech.Technology.t -> ?width:int -> Lobj.t -> string

val legend : tech:Amg_tech.Technology.t -> Lobj.t -> (char * string) list
(** Glyph-to-layer mapping for the object's layers. *)
