module Rect = Amg_geometry.Rect

type t = { name : string; net : string; layer : string; rect : Rect.t }
[@@deriving show { with_path = false }, eq, ord]

let make ~name ~net ~layer ~rect = { name; net; layer; rect }

let translate p ~dx ~dy = { p with rect = Rect.translate p.rect ~dx ~dy }

let transform p tr = { p with rect = Amg_geometry.Transform.rect tr p.rect }
