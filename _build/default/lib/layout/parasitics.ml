module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer

(* Crossing capacitance between two different conducting layers, aF/um^2.
   A single generic value is enough for the rating function: it only has to
   penalise avoidable crossings over sensitive nets consistently. *)
let crossing_cap = 40.

type net_cap = {
  net : string;
  ground_cap : float;   (* fF: plate + fringe to substrate *)
  coupling_cap : float; (* fF: crossings with other nets *)
}

let um2 nm2 = float_of_int nm2 /. 1.0e6

let um nm = Units.to_um nm

let shape_ground_cap (layer : Layer.t) (r : Rect.t) =
  let a = um2 (Rect.area r) in
  let p = 2. *. (um (Rect.width r) +. um (Rect.height r)) in
  (layer.Layer.area_cap *. a) +. (layer.Layer.fringe_cap *. p)

(* Total capacitance per net of an object, in fF. *)
let of_lobj ~tech obj =
  let shapes =
    List.filter_map
      (fun (s : Shape.t) ->
        match (s.Shape.net, Technology.layer tech s.Shape.layer) with
        | Some net, Some layer when layer.Layer.conducting -> Some (net, layer, s.Shape.rect)
        | _ -> None)
      (Lobj.shapes obj)
  in
  let tbl = Hashtbl.create 16 in
  let bump net dg dc =
    let g, c = Option.value ~default:(0., 0.) (Hashtbl.find_opt tbl net) in
    Hashtbl.replace tbl net (g +. dg, c +. dc)
  in
  List.iter (fun (net, layer, r) -> bump net (shape_ground_cap layer r) 0.) shapes;
  (* Crossing coupling: overlaps between conducting shapes on different
     layers belonging to different nets. *)
  let rec pairs = function
    | [] -> ()
    | (na, la, ra) :: tl ->
        List.iter
          (fun (nb, lb, rb) ->
            if
              (not (String.equal na nb))
              && not (String.equal la.Layer.name lb.Layer.name)
            then
              match Rect.inter ra rb with
              | Some i ->
                  let c = crossing_cap *. um2 (Rect.area i) in
                  bump na 0. c;
                  bump nb 0. c
              | None -> ())
          tl;
        pairs tl
  in
  pairs shapes;
  Hashtbl.fold
    (fun net (g, c) acc ->
      { net; ground_cap = g /. 1000.; coupling_cap = c /. 1000. } :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.net b.net)

let net_total ~tech obj net =
  match List.find_opt (fun nc -> String.equal nc.net net) (of_lobj ~tech obj) with
  | Some nc -> nc.ground_cap +. nc.coupling_cap
  | None -> 0.

let pp_report ppf caps =
  Fmt.pf ppf "@[<v>%-16s %10s %10s@," "net" "Cgnd/fF" "Ccpl/fF";
  List.iter
    (fun nc -> Fmt.pf ppf "%-16s %10.2f %10.2f@," nc.net nc.ground_cap nc.coupling_cap)
    caps;
  Fmt.pf ppf "@]"
