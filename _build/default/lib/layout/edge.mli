(** Per-edge freedom properties.

    "Each geometry contains special properties that define if its edges are
    fixed or variable for moving inwards or outwards" (§2.2).  The compactor
    shrinks [Variable] edges while they are the binding constraint
    (§2.3, Fig. 5b). *)

type freedom = Fixed | Variable [@@deriving show, eq, ord]

type sides = {
  north : freedom;
  south : freedom;
  east : freedom;
  west : freedom;
}
[@@deriving show, eq, ord]

val all_fixed : sides
val all_variable : sides

val get : sides -> Amg_geometry.Dir.t -> freedom
val set : sides -> Amg_geometry.Dir.t -> freedom -> sides
val is_variable : sides -> Amg_geometry.Dir.t -> bool
