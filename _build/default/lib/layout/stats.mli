(** Layout statistics: size, per-layer utilisation, density. *)

type t = {
  object_name : string;
  shape_count : int;
  port_count : int;
  bbox : Amg_geometry.Rect.t option;
  bbox_area_um2 : float;
  layer_areas : (string * float) list;
      (** union area per layer in um², in first-use layer order *)
  density : float;
      (** union area of all shapes divided by bounding-box area *)
}

val of_lobj : Lobj.t -> t
val pp : Format.formatter -> t -> unit
