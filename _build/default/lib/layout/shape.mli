(** Layout shapes: a rectangle on a layer with electrical and compaction
    properties.

    Every shape optionally belongs to a net (the paper's "potential") —
    same-net edges are ignored and merged by the compactor.  [keep_clear]
    is the paper's "special property … [to] avoid undesired overlaps
    (parasitic capacitances)": the compactor never lets other shapes overlap
    a keep-clear shape even when no spacing rule exists between the layers. *)

type origin =
  | User                 (** placed by a generator *)
  | Array_member of int  (** derived member of cut array [id]; rebuilt
                             automatically after variable-edge movement *)
[@@deriving show, eq, ord]

type t = {
  id : int;
  layer : string;
  rect : Amg_geometry.Rect.t;
  net : string option;
  sides : Edge.sides;
  keep_clear : bool;
  origin : origin;
}
[@@deriving show, eq, ord]

val make :
  id:int ->
  layer:string ->
  rect:Amg_geometry.Rect.t ->
  ?net:string ->
  ?sides:Edge.sides ->
  ?keep_clear:bool ->
  ?origin:origin ->
  unit ->
  t

val with_rect : t -> Amg_geometry.Rect.t -> t
val with_net : t -> string option -> t
val with_sides : t -> Edge.sides -> t

val translate : t -> dx:int -> dy:int -> t

val same_net : t -> t -> bool
(** True iff both shapes have a net and the nets are equal. *)

val on_layer : t -> string -> bool

val orient_sides : Amg_geometry.Transform.orientation -> Edge.sides -> Edge.sides
(** Re-map per-edge freedoms under an orientation, so a mirrored shape keeps
    its variable edges on the matching geometric sides. *)

val transform : t -> Amg_geometry.Transform.t -> t
(** Transform geometry and edge properties together. *)
