(** GDSII stream export and a minimal reader.

    One library ("AMG"), one structure per object, a BOUNDARY element per
    shape, database unit 1 nm.  Marker layers are not emitted.  The reader
    parses structures back to [(gds_layer, rect)] lists, giving a testable
    round trip. *)

exception Bad_gds of string

val to_bytes : tech:Amg_tech.Technology.t -> Lobj.t -> string

val save : tech:Amg_tech.Technology.t -> Lobj.t -> string -> unit

val parse : string -> string * (int * Amg_geometry.Rect.t) list
(** Structure name and its boundary rectangles (bounding boxes of the
    polygon points). @raise Bad_gds on malformed input. *)

val load : string -> string * (int * Amg_geometry.Rect.t) list

val import :
  tech:Amg_tech.Technology.t -> string -> Lobj.t * int list
(** Rebuild a layout object from GDS bytes, mapping layer numbers back to
    the deck's layer names.  Imported shapes carry no nets (GDS stores
    geometry only).  The second component lists GDS layer numbers the deck
    does not declare (their boundaries are dropped, not silently lost).
    @raise Bad_gds on malformed input. *)

val import_file :
  tech:Amg_tech.Technology.t -> string -> Lobj.t * int list
