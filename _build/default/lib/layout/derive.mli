(** Derived geometry: contact/via arrays computed from their containers.

    Array members are functions of the current container rectangles; after
    the compactor moves a variable edge, the object is "rebuilt
    automatically" (§2.3) by recomputing these. *)

val cut_window :
  Amg_tech.Rules.t ->
  containers:(string * Amg_geometry.Rect.t) list ->
  cut_layer:string ->
  Amg_geometry.Rect.t option
(** Intersection of all containers, each shrunk by its enclosure margin for
    [cut_layer]; [None] when empty. *)

val spread : lo:int -> hi:int -> s:int -> space:int -> int -> (int * int) list
(** [spread ~lo ~hi ~s ~space n] places [n] cuts of size [s] equidistantly
    in [lo, hi], never letting cut-to-cut gaps drop below [space]; returns
    their [(start, stop)] extents. *)

val max_cuts : w:int -> s:int -> space:int -> int
(** Maximum cuts of size [s] at minimum pitch [s + space] fitting in [w]. *)

val cut_array :
  Amg_tech.Rules.t ->
  containers:(string * Amg_geometry.Rect.t) list ->
  cut_layer:string ->
  Amg_geometry.Rect.t list
(** The full array, or [] when not even one cut fits (the ARRAY primitive
    then expands the outer geometries). *)

val min_container_extent :
  Amg_tech.Rules.t -> container_layer:string -> cut_layer:string -> int
(** Smallest per-axis container extent that still admits one cut; the limit
    for variable-edge shrinking of array containers. *)
