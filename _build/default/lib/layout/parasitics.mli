(** Parasitic-capacitance estimation.

    The optimizer's rating function "considers the area and electrical
    conditions" (§2.4) and the paper judges the amplifier by the "parasitic
    capacitances of the internal nodes" (§3).  This module estimates, per
    net, plate + fringe capacitance to substrate and crossing coupling
    between different nets. *)

type net_cap = {
  net : string;
  ground_cap : float;   (** fF, plate + fringe to substrate *)
  coupling_cap : float; (** fF, crossings with other nets *)
}

val crossing_cap : float
(** Generic crossing capacitance between two different conducting layers,
    aF per um². *)

val of_lobj : tech:Amg_tech.Technology.t -> Lobj.t -> net_cap list
(** Per-net capacitances of every net-annotated conducting shape, sorted by
    net name. *)

val net_total : tech:Amg_tech.Technology.t -> Lobj.t -> string -> float
(** Total (ground + coupling) capacitance of one net, fF. *)

val pp_report : Format.formatter -> net_cap list -> unit
