module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Transform = Amg_geometry.Transform

type origin = User | Array_member of int
[@@deriving show { with_path = false }, eq, ord]

type t = {
  id : int;
  layer : string;
  rect : Rect.t;
  net : string option;
  sides : Edge.sides;
  keep_clear : bool;
  origin : origin;
}
[@@deriving show { with_path = false }, eq, ord]

let make ~id ~layer ~rect ?net ?(sides = Edge.all_fixed) ?(keep_clear = false)
    ?(origin = User) () =
  { id; layer; rect; net; sides; keep_clear; origin }

let with_rect s rect = { s with rect }

let with_net s net = { s with net }

let with_sides s sides = { s with sides }

let translate s ~dx ~dy = { s with rect = Rect.translate s.rect ~dx ~dy }

let same_net a b =
  match (a.net, b.net) with
  | Some na, Some nb -> String.equal na nb
  | _ -> false

let on_layer s layer = String.equal s.layer layer

(* Orient the per-edge freedoms together with the geometry so that a mirrored
   shape keeps its variable edges on the geometrically matching sides. *)
let orient_sides (orient : Transform.orientation) (sides : Edge.sides) =
  let moved d =
    (* Where does direction d land under the orientation? *)
    let x, y =
      Transform.orient_point orient
        (match (d : Dir.t) with
        | North -> (0, 1)
        | South -> (0, -1)
        | East -> (1, 0)
        | West -> (-1, 0))
    in
    match (x, y) with
    | 0, 1 -> Dir.North
    | 0, -1 -> Dir.South
    | 1, 0 -> Dir.East
    | -1, 0 -> Dir.West
    | _ -> assert false
  in
  List.fold_left
    (fun acc d -> Edge.set acc (moved d) (Edge.get sides d))
    Edge.all_fixed Dir.all

let transform s (tr : Transform.t) =
  {
    s with
    rect = Transform.rect tr s.rect;
    sides = orient_sides tr.Transform.orient s.sides;
  }
