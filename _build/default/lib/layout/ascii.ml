(* ASCII-art layout preview for the terminal: one character per cell, the
   topmost layer (technology drawing order) wins.  Meant for quick looks
   during module development, as the paper's environment showed "a
   corresponding graphical view of the module" beside the source. *)

module Rect = Amg_geometry.Rect
module Technology = Amg_tech.Technology

(* Character per layer, assigned in drawing order. *)
let glyphs = "~-=pPcMvVT#&%@"

let layer_glyph tech lname =
  let idx = Technology.draw_index tech lname in
  if idx = max_int then '?'
  else glyphs.[idx mod String.length glyphs]

let render ~tech ?(width = 72) obj =
  match Lobj.bbox obj with
  | None -> "(empty)\n"
  | Some bbox ->
      let w_nm = max 1 (Rect.width bbox) and h_nm = max 1 (Rect.height bbox) in
      let cols = width in
      (* Terminal cells are roughly twice as tall as wide. *)
      let rows = max 1 (h_nm * cols / w_nm / 2) in
      let rows = min rows 120 in
      let grid = Array.make_matrix rows cols ' ' in
      (* Cuts draw last so contacts stay visible over their metal. *)
      let order (s : Shape.t) =
        match Technology.layer tech s.Shape.layer with
        | Some l when Amg_tech.Layer.is_cut l -> max_int - 1
        | _ -> Technology.draw_index tech s.Shape.layer
      in
      let sorted =
        List.stable_sort (fun a b -> compare (order a) (order b)) (Lobj.shapes obj)
      in
      List.iter
        (fun (s : Shape.t) ->
          if Technology.mem_layer tech s.Shape.layer then begin
            let r = s.Shape.rect in
            let cx0 = (r.Rect.x0 - bbox.Rect.x0) * cols / w_nm in
            let cx1 = (r.Rect.x1 - bbox.Rect.x0) * cols / w_nm in
            let cy0 = (bbox.Rect.y1 - r.Rect.y1) * rows / h_nm in
            let cy1 = (bbox.Rect.y1 - r.Rect.y0) * rows / h_nm in
            let g = layer_glyph tech s.Shape.layer in
            for y = max 0 cy0 to min (rows - 1) (max cy0 (cy1 - 1)) do
              for x = max 0 cx0 to min (cols - 1) (max cx0 (cx1 - 1)) do
                grid.(y).(x) <- g
              done
            done
          end)
        sorted;
      let b = Buffer.create (rows * (cols + 1)) in
      Array.iter
        (fun row ->
          Array.iter (Buffer.add_char b) row;
          Buffer.add_char b '\n')
        grid;
      Buffer.contents b

let legend ~tech obj =
  List.map (fun l -> (layer_glyph tech l, l)) (Lobj.layers obj)
