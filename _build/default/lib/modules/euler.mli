(** Euler-path finger ordering for diffusion sharing.

    A bank of same-polarity transistors is a multigraph (nodes =
    source/drain nets, one edge per channel finger); a trail through it is
    a legal {!Mos_array} column list in which consecutive fingers share
    the diffusion row between them.  A connected component admits one
    trail when it has at most two odd-degree nodes — the generator derives
    the classic mirror pattern [din | g | s | g | dout] from the schematic
    alone. *)

type device = {
  e_name : string;
  e_g : string;
  e_s : string;
  e_d : string;
  e_fingers : int;
}

val device :
  ?fingers:int -> name:string -> g:string -> s:string -> d:string -> unit ->
  device
(** @raise Amg_core.Env.Rejected when [fingers < 1]. *)

type edge = { id : int; a : string; b : string; gate : string }

val trails : device list -> (string * edge list) list
(** Trail decomposition with the minimum number of trails per connected
    component (Hierholzer with circuit splicing); each trail is its start
    node plus the edge sequence. *)

val columns_of_trail : string * edge list -> Mos_array.column list

val column_plans : device list -> Mos_array.column list list
(** One ready-to-build column list per trail. *)

type stats = {
  fingers : int;
  trails_count : int;
  rows_shared : int;    (** contact rows with sharing: fingers + trails *)
  rows_unshared : int;  (** 2 per finger without sharing *)
}

val sharing_stats : device list -> stats
