(** The simple MOS differential pair of the paper's Figs. 6 and 7.

    Two transistors (each with gate contact and one source/drain row) plus
    a third shared row, compacted westward exactly as the paper's DiffPair
    entity does.  Ports: [g1], [g2], [d1], [d2] and the shared source [s]
    (port names follow the net parameters). *)

val make :
  Amg_core.Env.t ->
  ?name:string ->
  polarity:Mosfet.polarity ->
  w:int ->
  l:int ->
  ?net_g1:string ->
  ?net_g2:string ->
  ?net_d1:string ->
  ?net_d2:string ->
  ?net_s:string ->
  ?well:bool ->
  unit ->
  Amg_layout.Lobj.t
