(* Single MOS transistor module (the "Trans" entity of Fig. 7): gate
   TWORECTS, poly contact row on the north, optional diffusion contact rows
   east/west; n-well placed automatically for PMOS devices. *)

module Dir = Amg_geometry.Dir
module Rect = Amg_geometry.Rect
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Env = Amg_core.Env
module Prim = Amg_core.Prim
module Build = Amg_core.Build

type polarity = Nmos | Pmos [@@deriving show { with_path = false }, eq]

let diffusion_layer = function Nmos -> "ndiff" | Pmos -> "pdiff"

type sd_contacts = [ `Both | `West | `East | `None ]

(* Add a port over the hull of the object's [layer] shapes on [net]. *)
let port_on obj ~name ~net ?(layer = "metal1") () =
  let rects =
    List.filter_map
      (fun (s : Shape.t) ->
        if Shape.on_layer s layer && s.Shape.net = Some net then Some s.Shape.rect
        else None)
      (Lobj.shapes obj)
  in
  match Amg_geometry.Rect.hull_list rects with
  | Some rect -> ignore (Lobj.add_port obj ~name ~net ~layer ~rect)
  | None -> ()

(* Auto-connection repair for diffusion rows: at short gate lengths or
   narrow widths the diagonal metal clearance to the gate's contact pad
   can push a compacted S/D row a fraction past the transistor diffusion,
   leaving a sub-spacing gap (an open AND a spacing violation).  Stretch
   the netted row diffusion to overlap the facing un-netted channel
   diffusion — the same-potential merge of §2.3, applied across layers'
   interaction the plain auto-connect cannot see (the binding pair was on
   metal1, the gap on the diffusion). *)
let merge_diff_gaps env obj ~diff =
  let rules = Env.rules env in
  let space =
    Option.value ~default:0 (Amg_tech.Rules.space rules diff diff)
  in
  let grid = Env.grid env in
  let shapes = Lobj.shapes obj in
  List.iter
    (fun (row : Amg_layout.Shape.t) ->
      if Shape.on_layer row diff && row.Shape.net <> None
      then
        List.iter
          (fun (ch : Amg_layout.Shape.t) ->
            if
              Shape.on_layer ch diff
              && ch.Shape.net = None
              && ch.Shape.id <> row.Shape.id
            then begin
              let r = row.Shape.rect and c = ch.Shape.rect in
              let y_overlap =
                min r.Rect.y1 c.Rect.y1 > max r.Rect.y0 c.Rect.y0
              in
              let gap_east = c.Rect.x0 - r.Rect.x1 (* channel east of row *)
              and gap_west = r.Rect.x0 - c.Rect.x1 in
              let stretch rect =
                match Lobj.find obj row.Shape.id with
                | Some cur -> Lobj.replace obj { cur with Shape.rect = rect }
                | None -> ()
              in
              if y_overlap && gap_east > 0 && gap_east < space then
                stretch { r with Rect.x1 = c.Rect.x0 + grid }
              else if y_overlap && gap_west > 0 && gap_west < space then
                stretch { r with Rect.x0 = c.Rect.x1 - grid }
            end)
          shapes)
    shapes

let make env ?(name = "mosfet") ~polarity ~w ~l ?(gate_contact = true)
    ?(sd_contacts = (`Both : sd_contacts)) ?(net_g = "g") ?(net_s = "s")
    ?(net_d = "d") ?(well = true) () =
  let diff = diffusion_layer polarity in
  let obj = Lobj.create name in
  let _gate = Prim.tworects env obj ~layer_a:"poly" ~layer_b:diff ~w ~l ~net_a:net_g () in
  if gate_contact then begin
    let polycon = Contact_row.make env ~name:"polycon" ~layer:"poly" ~l ~net:net_g () in
    Build.compact env ~into:obj ~ignore_layers:[ "poly" ] ~align:`Center polycon
      Dir.South
  end;
  let add_sd dir net =
    let row = Contact_row.make env ~name:"diffcon" ~layer:diff ~w ~net () in
    Build.compact env ~into:obj ~ignore_layers:[ diff ] ~align:`Min row dir
  in
  (match sd_contacts with
  | `Both ->
      add_sd Dir.East net_s;   (* moving east: lands on the west side *)
      add_sd Dir.West net_d
  | `West -> add_sd Dir.East net_s
  | `East -> add_sd Dir.West net_d
  | `None -> ());
  merge_diff_gaps env obj ~diff;
  if polarity = Pmos && well then
    ignore (Prim.around env obj ~layer:"nwell" ());
  if gate_contact then port_on obj ~name:"g" ~net:net_g ();
  (match sd_contacts with
  | `Both ->
      port_on obj ~name:"s" ~net:net_s ();
      port_on obj ~name:"d" ~net:net_d ()
  | `West -> port_on obj ~name:"s" ~net:net_s ()
  | `East -> port_on obj ~name:"d" ~net:net_d ()
  | `None -> ());
  obj

(* Diode-connected transistor (§1 lists it among the module types): a
   transistor with its drain row renamed onto the gate net and wired to the
   gate contact with an L-shaped metal path. *)
let diode_connected env ?(name = "mos_diode") ~polarity ~w ~l ?(net_g = "g")
    ?(net_s = "s") ?(well = true) () =
  let obj =
    make env ~name ~polarity ~w ~l ~net_g ~net_s ~net_d:"__diode_d" ~well ()
  in
  Lobj.rename_net obj ~from_:"__diode_d" ~to_:net_g;
  (match (Lobj.port obj "g", Lobj.port obj "d") with
  | Some gp, Some dp ->
      (* Run along the gate contact row, then down into the drain row. *)
      let _ = Amg_route.Wire.connect_ports env obj ~net:net_g gp dp in
      Lobj.remove_port obj "d"
  | _ -> ());
  obj
