lib/modules/contact_row.pp.ml: Amg_core Amg_geometry Amg_layout Amg_tech List
