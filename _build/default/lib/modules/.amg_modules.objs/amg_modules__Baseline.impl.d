lib/modules/baseline.pp.ml: Amg_core Amg_geometry Amg_layout Amg_tech List Option String
