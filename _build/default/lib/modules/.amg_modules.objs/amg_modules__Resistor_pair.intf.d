lib/modules/resistor_pair.pp.mli: Amg_core Amg_layout
