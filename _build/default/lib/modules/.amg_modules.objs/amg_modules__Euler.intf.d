lib/modules/euler.pp.mli: Mos_array
