lib/modules/current_mirror.pp.mli: Amg_core Amg_layout Mos_array Mosfet
