lib/modules/contact_row.pp.mli: Amg_core Amg_geometry Amg_layout
