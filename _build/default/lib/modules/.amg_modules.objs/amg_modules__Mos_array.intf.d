lib/modules/mos_array.pp.mli: Amg_core Amg_geometry Amg_layout Mosfet
