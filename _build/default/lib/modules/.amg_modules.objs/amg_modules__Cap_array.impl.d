lib/modules/cap_array.pp.ml: Amg_core Amg_geometry Amg_layout Amg_tech Array Capacitor List Mosfet
