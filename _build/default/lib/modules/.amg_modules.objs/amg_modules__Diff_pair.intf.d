lib/modules/diff_pair.pp.mli: Amg_core Amg_layout Mosfet
