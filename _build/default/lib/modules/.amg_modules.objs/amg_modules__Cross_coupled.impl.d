lib/modules/cross_coupled.pp.ml: Amg_core Amg_geometry Mos_array
