lib/modules/common_centroid.pp.ml: Amg_core Amg_geometry Amg_layout Amg_route Amg_tech Contact_row Fun List Mos_array Mosfet String
