lib/modules/capacitor.pp.ml: Amg_core Amg_geometry Amg_layout Amg_tech Mosfet
