lib/modules/cross_coupled.pp.mli: Amg_core Amg_layout Mos_array Mosfet
