lib/modules/mosfet.pp.mli: Amg_core Amg_layout Ppx_deriving_runtime
