lib/modules/resistor_pair.pp.ml: Amg_core Amg_geometry Amg_layout Amg_tech Contact_row List Mosfet Option
