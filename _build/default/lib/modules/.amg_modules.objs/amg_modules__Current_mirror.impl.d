lib/modules/current_mirror.pp.ml: Amg_core Amg_geometry Amg_layout Amg_route Amg_tech List Mos_array
