lib/modules/euler.pp.ml: Amg_core Amg_layout Array Hashtbl List Mos_array Option String
