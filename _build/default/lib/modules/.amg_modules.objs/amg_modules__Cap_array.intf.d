lib/modules/cap_array.pp.mli: Amg_core Amg_layout
