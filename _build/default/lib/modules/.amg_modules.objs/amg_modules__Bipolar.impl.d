lib/modules/bipolar.pp.ml: Amg_core Amg_geometry Amg_layout Amg_route Amg_tech Contact_row Hashtbl List Mosfet Option String
