lib/modules/tap_repair.pp.mli: Amg_core Amg_layout Amg_tech
