lib/modules/tap_repair.pp.ml: Amg_compact Amg_core Amg_drc Amg_geometry Amg_layout Amg_tech Contact_row List
