lib/modules/diff_pair.pp.ml: Amg_core Amg_geometry Amg_layout Contact_row Mosfet
