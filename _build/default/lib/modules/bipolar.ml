(* Vertical NPN transistor module (§3, block F: "the bipolar transistors
   … are composed symmetrically").

   Simplified vertical NPN in the BiCMOS process: the n-well is the
   collector, a p-base implant carries the emitter (n-diffusion) and the
   base contact (p-diffusion); the collector contact ring is an
   n-diffusion row in the well outside the base.  The collector row doubles
   as the well tap for the latch-up check. *)

module Dir = Amg_geometry.Dir
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module Prim = Amg_core.Prim
module Build = Amg_core.Build

let make env ?(name = "npn") ~we ~le ?(net_e = "e") ?(net_b = "b")
    ?(net_c = "c") () =
  let obj = Lobj.create name in
  (* Emitter stripe with its contacts. *)
  let emitter =
    Contact_row.make env ~name:"emitter" ~layer:"ndiff" ~w:we ~l:le ~net:net_e ()
  in
  Build.compact env ~into:obj emitter Dir.West;
  (* Base contact row on the west side of the emitter, inside the base. *)
  let base_row =
    Contact_row.make env ~name:"base_row" ~layer:"pdiff" ~w:we ~net:net_b ()
  in
  Build.compact env ~into:obj ~align:`Center base_row Dir.East;
  (* The p-base implant around emitter and base contact. *)
  let _ = Prim.around env obj ~layer:"pbase" ~net:net_b () in
  (* Collector contact row outside the base on the east side; the
     pbase/ndiff spacing rule keeps it clear of the implant. *)
  let coll_row =
    Contact_row.make env ~name:"coll_row" ~layer:"ndiff" ~w:we ~net:net_c ()
  in
  Build.compact env ~into:obj ~align:`Center coll_row Dir.West;
  (* The well is the collector; mark the collector row as a tap. *)
  let _ = Prim.around env obj ~layer:"nwell" ~net:net_c () in
  (match Lobj.bbox_on obj "nwell" with
  | Some _ -> (
      match
        List.find_opt
          (fun (s : Amg_layout.Shape.t) ->
            Amg_layout.Shape.on_layer s "ndiff"
            && s.Amg_layout.Shape.net = Some net_c)
          (Lobj.shapes obj)
      with
      | Some s -> ignore (Lobj.add_shape obj ~layer:"subtap" ~rect:s.Amg_layout.Shape.rect ())
      | None -> ())
  | None -> ());
  Mosfet.port_on obj ~name:net_e ~net:net_e ();
  Mosfet.port_on obj ~name:net_b ~net:net_b ();
  Mosfet.port_on obj ~name:net_c ~net:net_c ();
  obj

(* A symmetric pair: the second device is the mirror image of the first,
   abutted on the east side (block F). *)
let symmetric_pair env ?(name = "npn_pair") ~we ~le ?(nets_1 = ("e1", "b1", "c1"))
    ?(nets_2 = ("e2", "b2", "c2")) () =
  let e1, b1, c1 = nets_1 and e2, b2, c2 = nets_2 in
  let t1 = make env ~name:"npn1" ~we ~le ~net_e:e1 ~net_b:b1 ~net_c:c1 () in
  let t2 = make env ~name:"npn2" ~we ~le ~net_e:e2 ~net_b:b2 ~net_c:c2 () in
  Lobj.transform t2 (Amg_geometry.Transform.of_orientation Amg_geometry.Transform.MY);
  let obj = Lobj.create name in
  Build.compact env ~into:obj t1 Dir.West;
  Build.compact env ~into:obj ~align:`Min t2 Dir.West;
  (* Shared terminals get straps connecting both devices: collectors on a
     south metal1 bar and bases on a north metal1 bar (their row metals
     auto-connect); shared emitters use a metal2 bar above the base strap
     with via drops, crossing the metal1 freely. *)
  let rules = Env.rules env in
  let full_bar ~layer ~net =
    let bar = Lobj.create (net ^ "_strap") in
    let b = Lobj.bbox_exn obj in
    let _ =
      Lobj.add_shape bar ~layer:"metal1"
        ~rect:
          (Amg_geometry.Rect.of_size ~x:b.Amg_geometry.Rect.x0 ~y:0
             ~w:(Amg_geometry.Rect.width b)
             ~h:(Amg_tech.Rules.width rules layer))
        ~net ()
    in
    bar
  in
  if String.equal c1 c2 then
    Build.compact env ~into:obj ~align:`Min (full_bar ~layer:"metal1" ~net:c1) Dir.North;
  if String.equal b1 b2 then
    Build.compact env ~into:obj ~align:`Min (full_bar ~layer:"metal1" ~net:b1) Dir.South;
  if String.equal e1 e2 then begin
    (* Metal2 bar above the devices spanning only the emitter columns (the
       block edges stay clear for a parent router), via drops into each
       emitter metal. *)
    let b = Lobj.bbox_exn obj in
    let m2w = Amg_tech.Rules.width rules "metal2" in
    let y0 = b.Amg_geometry.Rect.y1 + Amg_geometry.Units.of_um 1. in
    let exs =
      List.filter_map
        (fun (sh : Amg_layout.Shape.t) ->
          if Amg_layout.Shape.on_layer sh "metal1" && sh.Amg_layout.Shape.net = Some e1
          then Some (Amg_geometry.Rect.center_x sh.Amg_layout.Shape.rect)
          else None)
        (Lobj.shapes obj)
    in
    let lo = List.fold_left min b.Amg_geometry.Rect.x1 exs - m2w in
    let hi = List.fold_left max b.Amg_geometry.Rect.x0 exs + m2w in
    let _ =
      Lobj.add_shape obj ~layer:"metal2"
        ~rect:(Amg_geometry.Rect.make ~x0:lo ~y0 ~x1:hi ~y1:(y0 + m2w))
        ~net:e1 ()
    in
    List.iter
      (fun (sh : Amg_layout.Shape.t) ->
        if
          Amg_layout.Shape.on_layer sh "metal1"
          && sh.Amg_layout.Shape.net = Some e1
        then begin
          let x = Amg_geometry.Rect.center_x sh.Amg_layout.Shape.rect in
          let vy = sh.Amg_layout.Shape.rect.Amg_geometry.Rect.y1 - Amg_geometry.Units.of_um 1. in
          let _ = Amg_route.Wire.via env obj ~at:(x, vy) ~net:e1 () in
          ignore
            (Amg_route.Path.draw obj ~layer:"metal2" ~width:m2w ~net:e1
               [ (x, vy); (x, y0 + (m2w / 2)) ])
        end)
      (Lobj.shapes obj)
  end;
  (* Shared nets (e.g. both collectors on the supply) end up with duplicate
     ports; merge them into one hull port per net. *)
  let by_net = Hashtbl.create 8 in
  List.iter
    (fun (p : Amg_layout.Port.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_net p.net) in
      Hashtbl.replace by_net p.net (p :: cur))
    (Lobj.ports obj);
  Hashtbl.iter
    (fun net ports ->
      match ports with
      | _ :: _ :: _ ->
          List.iter (fun (p : Amg_layout.Port.t) -> Lobj.remove_port obj p.name) ports;
          (match
             Amg_geometry.Rect.hull_list
               (List.map (fun (p : Amg_layout.Port.t) -> p.rect) ports)
           with
          | Some rect ->
              ignore
                (Lobj.add_port obj ~name:net ~net
                   ~layer:(List.hd ports).Amg_layout.Port.layer ~rect)
          | None -> ())
      | _ -> ())
    by_net;
  obj
