(* The contact row of the paper's Fig. 2 — the workhorse sub-module:
   landing rectangle, metal1 inside it, equidistant contact array.  Edge
   freedoms are parameterizable so parents can let the compactor shrink the
   row (Fig. 5b). *)

module Rect = Amg_geometry.Rect
module Lobj = Amg_layout.Lobj
module Edge = Amg_layout.Edge
module Env = Amg_core.Env
module Prim = Amg_core.Prim

let variable_sides dirs =
  List.fold_left (fun acc d -> Edge.set acc d Edge.Variable) Edge.all_fixed dirs

(* [make env ~layer ?w ?l ?net ()] builds a contact row landing on [layer].
   [var_edges] marks the listed edges of both the landing and the metal
   rectangle as variable.  [port] adds a metal1 port of that name. *)
let make env ?(name = "contact_row") ~layer ?w ?l ?net ?(var_edges = []) ?port () =
  let obj = Lobj.create name in
  let sides = variable_sides var_edges in
  let _ = Prim.inbox env obj ~layer ?w ?l ?net ~sides () in
  let metal = Prim.inbox env obj ~layer:"metal1" ?net ~sides () in
  let _ = Prim.array env obj ~layer:"contact" ?net () in
  (match (port, net) with
  | Some pname, Some pnet ->
      ignore (Lobj.add_port obj ~name:pname ~net:pnet ~layer:"metal1" ~rect:metal.Amg_layout.Shape.rect)
  | Some pname, None ->
      ignore (Lobj.add_port obj ~name:pname ~net:pname ~layer:"metal1" ~rect:metal.Amg_layout.Shape.rect)
  | None, _ -> ());
  obj

(* A via row: metal1, metal2 and the via array — used to change layers on
   straps. *)
let via_row env ?(name = "via_row") ?w ?l ?net ?(var_edges = []) ?port () =
  let obj = Lobj.create name in
  let sides = variable_sides var_edges in
  let _ = Prim.inbox env obj ~layer:"metal1" ?w ?l ?net ~sides () in
  let metal2 = Prim.inbox env obj ~layer:"metal2" ?net ~sides () in
  let _ = Prim.array env obj ~layer:"via" ?net () in
  (match (port, net) with
  | Some pname, Some pnet ->
      ignore (Lobj.add_port obj ~name:pname ~net:pnet ~layer:"metal2" ~rect:metal2.Amg_layout.Shape.rect)
  | Some pname, None ->
      ignore (Lobj.add_port obj ~name:pname ~net:pname ~layer:"metal2" ~rect:metal2.Amg_layout.Shape.rect)
  | None, _ -> ());
  obj

(* Substrate tap: a p-diffusion contact row tied to the substrate net, with
   the [subtap] marker the latch-up check of Fig. 1 looks for. *)
let substrate_tap env ?(name = "subtap") ?w ?l ?(net = "vss") () =
  let obj = make env ~name ~layer:"pdiff" ?w ?l ~net ~port:"tap" () in
  (match Lobj.bbox_on obj "pdiff" with
  | Some rect -> ignore (Lobj.add_shape obj ~layer:"subtap" ~rect ())
  | None -> ());
  obj

(* Well tap: an n-diffusion contact row inside the well, tied to the supply;
   also a latch-up tap for the well side. *)
let well_tap env ?(name = "welltap") ?w ?l ?(net = "vdd") () =
  let obj = make env ~name ~layer:"ndiff" ?w ?l ~net ~port:"tap" () in
  (match Lobj.bbox_on obj "ndiff" with
  | Some rect -> ignore (Lobj.add_shape obj ~layer:"subtap" ~rect ())
  | None -> ());
  obj

(* Guard ring: a diffusion ring around the current structure with contact
   rows on the north and south legs, marked as a tap. *)
let guard_ring env obj ~layer ?(net = "vss") () =
  let rules = Env.rules env in
  let width =
    max
      (Amg_tech.Rules.width rules layer)
      (Amg_layout.Derive.min_container_extent rules ~container_layer:layer
         ~cut_layer:"contact")
  in
  let legs = Prim.ring env obj ~layer ~width ~net () in
  (* Metal and contacts on the horizontal legs. *)
  List.iter
    (fun (leg : Amg_layout.Shape.t) ->
      let r = leg.Amg_layout.Shape.rect in
      if Rect.width r > Rect.height r then begin
        let m =
          Rect.inflate r
            (-Amg_core.Margins.inside rules ~outer:layer ~inner:"metal1")
        in
        let metal = Lobj.add_shape obj ~layer:"metal1" ~rect:m ~net () in
        let _ =
          Prim.array env obj ~layer:"contact" ~net ~within:[ leg; metal ] ()
        in
        ()
      end;
      ignore (Lobj.add_shape obj ~layer:"subtap" ~rect:r ()))
    legs;
  legs
