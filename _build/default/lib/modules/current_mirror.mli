(** Current mirrors (paper §3, blocks A and B).

    All variants share the source row(s) on a south metal1 rail, collect
    the output drain on a north metal1 rail, and carry the diode/gate net
    on metal2 where it can cross the metal1 rails.  The diode connection
    falls out of the compactor: the metal2 gate strap lands merged onto the
    gate track (same potential). *)

val connect_diode : Amg_core.Env.t -> Amg_layout.Lobj.t -> net:string -> unit
(** Safety join between the gate track and the gate strap (vertical metal2
    path); usually a no-op because the strap already merged. *)

val simple :
  Amg_core.Env.t ->
  ?name:string ->
  ?well_tap:string ->
  polarity:Mosfet.polarity ->
  w:int ->
  l:int ->
  ?net_g:string ->
  ?net_s:string ->
  ?net_dout:string ->
  unit ->
  Amg_layout.Lobj.t
(** Two-finger mirror: diode finger and output finger sharing the source
    row.  Ports: gate/diode net, source net, output net. *)

val symmetric :
  Amg_core.Env.t ->
  ?name:string ->
  ?well_tap:string ->
  polarity:Mosfet.polarity ->
  w:int ->
  l:int ->
  ?net_g:string ->
  ?net_s:string ->
  ?net_dout:string ->
  unit ->
  Amg_layout.Lobj.t
(** Block-B style: output device split in two fingers flanking the diode
    ("a symmetrical layout module … with the diode transistor in the
    middle"). *)

val stacked_pair :
  Amg_core.Env.t ->
  ?name:string ->
  bottom:Mos_array.t ->
  top:Mos_array.t ->
  unit ->
  Amg_layout.Lobj.t
(** Abut two arrays vertically (block A's cascode): give the bottom array a
    north strap and the top array a south strap on the same net — the
    compactor merges the rails. *)
