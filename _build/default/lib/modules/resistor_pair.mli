(** Matched interdigitated resistor pair.

    Two equal poly resistors in A B B A strip order: identical straight
    film strips at constant pitch, each resistor's two strips chained in
    series by a metal1 link (A below the array, B above), so both
    resistors share the array centroid and the same etch environment.
    Extraction reduces each chain to one schematic resistor of the summed
    value (see {!Amg_extract.Devices.reduce_resistors}). *)

val make :
  Amg_core.Env.t ->
  ?name:string ->
  ?layer:string ->
  squares:float ->
  ?width:int ->
  ?net_a1:string ->
  ?net_a2:string ->
  ?net_b1:string ->
  ?net_b2:string ->
  unit ->
  Amg_layout.Lobj.t * float
(** [make env ~squares ()] builds the pair; each resistor is [squares]
    squares (half per strip) and the returned float is the nominal value
    of each in ohms.  Ports: [net_a1]/[net_a2] and [net_b1]/[net_b2].
    @raise Amg_core.Env.Rejected when [squares <= 0]. *)

val film_centroid_x :
  Amg_layout.Lobj.t -> strips:int list -> float option
(** Area-weighted x centroid of the given strip indices' film rectangles
    (0-based, in A B B A insertion order) — the matching check. *)
