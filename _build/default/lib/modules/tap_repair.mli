(** Automatic latch-up repair.

    Inserts substrate taps near uncovered active area until the Fig. 1
    cover check passes.  Candidate positions ring each residual rectangle
    (any tap within the latch-up distance covers it); a candidate is taken
    only when the tap introduces no spacing violation — legality is judged
    by the same constraint classification the compactor uses. *)

val placement_legal :
  Amg_tech.Rules.t -> Amg_layout.Lobj.t -> Amg_layout.Lobj.t -> bool
(** No pairwise spacing rule between the structure and the tap (at its
    current position) is violated. *)

val repair :
  Amg_core.Env.t ->
  ?net:string ->
  ?max_taps:int ->
  Amg_layout.Lobj.t ->
  int
(** [repair env obj] mutates [obj], adding taps (on [net], default [vss])
    until the latch-up check passes, no legal position exists, or
    [max_taps] (default 32) were added.  Returns the number of taps
    added. *)

val repair_is_clean :
  Amg_core.Env.t -> ?net:string -> ?max_taps:int -> Amg_layout.Lobj.t -> bool
(** Run {!repair} and report whether the check now passes. *)
