(** Contact rows (Fig. 2), via rows, taps and guard rings. *)

val variable_sides : Amg_geometry.Dir.t list -> Amg_layout.Edge.sides
(** All-fixed sides with the listed directions made variable. *)

val make :
  Amg_core.Env.t ->
  ?name:string ->
  layer:string ->
  ?w:int ->
  ?l:int ->
  ?net:string ->
  ?var_edges:Amg_geometry.Dir.t list ->
  ?port:string ->
  unit ->
  Amg_layout.Lobj.t
(** The paper's [ContactRow(layer, <W>, <L>)]: landing rectangle on
    [layer], metal1 inside it, equidistant contact array.  Omitted sizes
    take their design-rule minima (Fig. 3).  [var_edges] marks edges of the
    landing and metal rectangles variable so a parent compaction can shrink
    the row (Fig. 5b).  [port] adds a metal1 port. *)

val via_row :
  Amg_core.Env.t ->
  ?name:string ->
  ?w:int ->
  ?l:int ->
  ?net:string ->
  ?var_edges:Amg_geometry.Dir.t list ->
  ?port:string ->
  unit ->
  Amg_layout.Lobj.t
(** Metal1/metal2 via row for layer changes on straps; [port] is on
    metal2. *)

val substrate_tap :
  Amg_core.Env.t ->
  ?name:string ->
  ?w:int ->
  ?l:int ->
  ?net:string ->
  unit ->
  Amg_layout.Lobj.t
(** P-diffusion tap row with the [subtap] marker for the latch-up check;
    net defaults to ["vss"], port ["tap"]. *)

val well_tap :
  Amg_core.Env.t ->
  ?name:string ->
  ?w:int ->
  ?l:int ->
  ?net:string ->
  unit ->
  Amg_layout.Lobj.t
(** N-diffusion well tap; net defaults to ["vdd"], port ["tap"]. *)

val guard_ring :
  Amg_core.Env.t ->
  Amg_layout.Lobj.t ->
  layer:string ->
  ?net:string ->
  unit ->
  Amg_layout.Shape.t list
(** Diffusion guard ring around the current structure, with metal and
    contact arrays on the horizontal legs and [subtap] markers all around.
    Returns the four legs. *)
