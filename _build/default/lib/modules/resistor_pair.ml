(* Matched interdigitated resistor pair.

   Two equal resistors A and B built from identical straight poly strips
   at constant pitch, assigned point-symmetrically (A B B A for one strip
   pair each), so both resistors share the array centroid and see the same
   etch environment — the resistor counterpart of the matched transistor
   and capacitor structures.

   Each strip carries its own resistor-body marker and contact heads at
   both ends; a resistor's strips are chained in series by metal1 links:
   A's link runs in a lane below the bottom heads (its strips are the
   outer pair, so the stubs drop outside everything), B's link in a lane
   above the top heads.  Extraction sees two film segments per resistor
   joined at an unlabeled node and reduces them to one schematic device of
   the summed value. *)

module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Rules = Amg_tech.Rules
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env

let make env ?(name = "resistor_pair") ?(layer = "poly") ~squares ?width
    ?(net_a1 = "a1") ?(net_a2 = "a2") ?(net_b1 = "b1") ?(net_b2 = "b2") () =
  let rules = Env.rules env in
  let w = Option.value ~default:(Rules.width rules layer) width in
  let sheet =
    match Technology.layer (Env.tech env) layer with
    | Some l -> l.Layer.sheet_res
    | None -> 0.
  in
  if squares <= 0. then Env.reject "Resistor_pair: squares <= 0";
  (* Two strips per resistor; strip length carries half the squares. *)
  let strip_len = max w (int_of_float (squares /. 2. *. float_of_int w)) in
  let head_extent =
    Amg_layout.Derive.min_container_extent rules ~container_layer:layer
      ~cut_layer:"contact"
  in
  let spacing = Option.value ~default:w (Rules.space rules layer layer) in
  let pitch = w + spacing + max 0 (head_extent - w) in
  let m1w = Rules.width rules "metal1" in
  let m1s = Rules.space_exn rules "metal1" "metal1" in
  let obj = Lobj.create name in
  (* Strip columns in A B B A order. *)
  let cx i = i * pitch in
  let strip i =
    let rect =
      Rect.make ~x0:(cx i - (w / 2)) ~y0:0 ~x1:(cx i + (w / 2)) ~y1:strip_len
    in
    ignore (Lobj.add_shape obj ~layer ~rect ());
    (* Per-strip body marker: exactly this film, not the neighbours. *)
    ignore (Lobj.add_shape obj ~layer:"resmark" ~rect ())
  in
  List.iter strip [ 0; 1; 2; 3 ];
  (* Contact heads centred on the strip ends.  Heads on internal link nodes
     carry no net (extraction must see them as anonymous). *)
  let head ?net i ~top =
    let h = Contact_row.make env ~name:"head" ~layer ?net () in
    let hb = Lobj.bbox_exn h in
    Lobj.translate h
      ~dx:(cx i - Rect.center_x hb)
      ~dy:((if top then strip_len else 0) - Rect.center_y hb);
    ignore (Lobj.absorb obj h);
    Lobj.bbox_exn h
  in
  let a_top0 = head 0 ~top:true ~net:net_a1 in
  let a_top3 = head 3 ~top:true ~net:net_a2 in
  let a_bot0 = head 0 ~top:false in
  let a_bot3 = head 3 ~top:false in
  let b_bot1 = head 1 ~top:false ~net:net_b1 in
  let b_bot2 = head 2 ~top:false ~net:net_b2 in
  let b_top1 = head 1 ~top:true in
  let b_top2 = head 2 ~top:true in
  ignore (a_top0, a_top3, b_bot1, b_bot2);
  (* A's series link: lane below the bottom heads, stubs on the outer
     strips. *)
  let link ~heads ~lane_y0 ~lane_y1 =
    let stub (hb : Rect.t) =
      let x = Rect.center_x hb in
      (* Span through both the head and the lane so they solidly overlap. *)
      let y0 = min hb.Rect.y0 lane_y0 and y1 = max hb.Rect.y1 lane_y1 in
      ignore
        (Lobj.add_shape obj ~layer:"metal1"
           ~rect:(Rect.make ~x0:(x - (m1w / 2)) ~y0 ~x1:(x + (m1w / 2)) ~y1)
           ())
    in
    List.iter stub heads;
    let xs = List.map (fun (h : Rect.t) -> Rect.center_x h) heads in
    let x0 = List.fold_left min (List.hd xs) xs - (m1w / 2)
    and x1 = List.fold_left max (List.hd xs) xs + (m1w / 2) in
    ignore
      (Lobj.add_shape obj ~layer:"metal1"
         ~rect:(Rect.make ~x0 ~y0:lane_y0 ~x1 ~y1:lane_y1)
         ())
  in
  let bot_edge = min a_bot0.Rect.y0 b_bot1.Rect.y0 in
  link ~heads:[ a_bot0; a_bot3 ]
    ~lane_y0:(bot_edge - m1s - (2 * m1w))
    ~lane_y1:(bot_edge - m1s);
  let top_edge = max b_top1.Rect.y1 b_top2.Rect.y1 in
  link ~heads:[ b_top1; b_top2 ]
    ~lane_y0:(top_edge + m1s)
    ~lane_y1:(top_edge + m1s + (2 * m1w));
  List.iter
    (fun net -> Mosfet.port_on obj ~name:net ~net ())
    [ net_a1; net_a2; net_b1; net_b2 ];
  (obj, squares *. sheet)

(* Centroid of a resistor's film strips (x only — strips are identical in
   y), for the matching tests. *)
let film_centroid_x obj ~strips =
  let rects =
    List.filteri (fun i _ -> List.mem i strips) (Lobj.rects_on obj "poly")
  in
  match rects with
  | [] -> None
  | _ ->
      let area, mx =
        List.fold_left
          (fun (a, mx) (r : Rect.t) ->
            let ar = float_of_int (Rect.area r) in
            (a +. ar, mx +. (ar *. float_of_int (Rect.center_x r))))
          (0., 0.) rects
      in
      Some (mx /. area)
