(* Inter-digitated MOS transistor (§3, blocks A, C and E): [fingers] gate
   stripes sharing source/drain contact rows, a poly bar strapping the
   gates, metal straps for source (south) and drain (north), and a gate
   contact row on the bar's western extension.

   The straps exercise the paper's Fig. 5 machinery: row metals whose
   strap-facing edges are variable are shrunk by the compactor until the
   strap reaches its own net's rows, and same-net rows auto-connect. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Derive = Amg_layout.Derive
module Env = Amg_core.Env
module Prim = Amg_core.Prim
module Build = Amg_core.Build

type row_role = Source | Drain

let row_role ~source_first i =
  if i mod 2 = if source_first then 0 else 1 then Source else Drain

(* A bare gate finger: just the TWORECTS, contacts come from the shared
   rows. *)
let finger env ~diff ~w ~l ~net_g =
  let o = Lobj.create "finger" in
  let _ = Prim.tworects env o ~layer_a:"poly" ~layer_b:diff ~w ~l ~net_a:net_g () in
  o

let strap_obj env ~name ~layer ~len ~net =
  let rules = Env.rules env in
  let o = Lobj.create name in
  let w = Rules.width rules layer in
  let _ =
    Lobj.add_shape o ~layer ~rect:(Rect.of_size ~x:0 ~y:0 ~w:len ~h:w) ~net ()
  in
  o

let make env ?(name = "interdigitated") ?well_tap ~polarity ~w ~l ~fingers
    ?(net_g = "g") ?(net_s = "s") ?(net_d = "d") ?(source_first = true)
    ?(gate_contact = true) ?(straps = true) ?(well = true) () =
  if fingers < 1 then Env.reject "interdigitated: needs at least one finger";
  let rules = Env.rules env in
  let diff = Mosfet.diffusion_layer polarity in
  let obj = Lobj.create name in
  let row_net i =
    match row_role ~source_first i with Source -> net_s | Drain -> net_d
  in
  (* Strap-facing metal edges are variable: source rows may shrink away
     from the drain strap in the north, drain rows from the source strap in
     the south (Fig. 5b). *)
  let row_var i =
    match row_role ~source_first i with
    | Source -> [ Dir.North ]
    | Drain -> [ Dir.South ]
  in
  let add_row i =
    let row =
      Contact_row.make env ~name:"row" ~layer:diff ~w ~net:(row_net i)
        ~var_edges:(if straps then row_var i else [])
        ()
    in
    Build.compact env ~into:obj ~ignore_layers:[ diff ] row Dir.West
  in
  add_row 0;
  for k = 0 to fingers - 1 do
    Build.compact env ~into:obj ~ignore_layers:[ diff ]
      (finger env ~diff ~w ~l ~net_g)
      Dir.West;
    add_row (k + 1)
  done;
  let rows_bbox = Lobj.bbox_exn obj in
  let rows_span = Rect.width rows_bbox in
  (* Poly bar strapping the gates, extended west for the gate contact. *)
  let bar_ext =
    if gate_contact then
      Derive.min_container_extent rules ~container_layer:"poly" ~cut_layer:"contact"
      + Rules.space_exn rules "metal1" "metal1"
    else 0
  in
  let bar = strap_obj env ~name:"gatebar" ~layer:"poly" ~len:(rows_span + bar_ext) ~net:net_g in
  Build.compact env ~into:obj ~align:`Max bar Dir.South;
  if gate_contact then begin
    let polycon =
      Contact_row.make env ~name:"polycon" ~layer:"poly" ~net:net_g ()
    in
    Build.compact env ~into:obj ~ignore_layers:[ "poly" ] ~align:`Min polycon
      Dir.South
  end;
  if straps then begin
    let drain_strap = strap_obj env ~name:"drain_strap" ~layer:"metal1" ~len:rows_span ~net:net_d in
    Build.compact env ~into:obj ~align:`Max drain_strap Dir.South;
    let source_strap = strap_obj env ~name:"source_strap" ~layer:"metal1" ~len:rows_span ~net:net_s in
    Build.compact env ~into:obj ~align:`Max source_strap Dir.North
  end;
  if polarity = Mosfet.Pmos && well then begin
    (match well_tap with
    | Some tap_net ->
        let tap = Contact_row.well_tap env ~net:tap_net () in
        Lobj.remove_port tap "tap";
        Build.compact env ~into:obj ~align:`Center tap Dir.South;
        Mosfet.port_on obj ~name:tap_net ~net:tap_net ()
    | None -> ());
    ignore (Prim.around env obj ~layer:"nwell" ())
  end;
  if gate_contact then Mosfet.port_on obj ~name:"g" ~net:net_g ();
  Mosfet.port_on obj ~name:"s" ~net:net_s ();
  Mosfet.port_on obj ~name:"d" ~net:net_d ();
  obj

(* Count of source/drain rows, for tests. *)
let row_count ~fingers = fingers + 1

