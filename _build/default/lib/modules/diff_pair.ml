(* The simple MOS differential pair of Fig. 6/7: two transistors sharing
   the middle diffusion contact row — built exactly as the paper's source
   code does, by compacting a copied transistor and a third contact row
   westward. *)

module Dir = Amg_geometry.Dir
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module Prim = Amg_core.Prim
module Build = Amg_core.Build

let make env ?(name = "diff_pair") ~polarity ~w ~l ?(net_g1 = "g1")
    ?(net_g2 = "g2") ?(net_d1 = "d1") ?(net_d2 = "d2") ?(net_s = "s")
    ?(well = true) () =
  let t1 =
    Mosfet.make env ~name:"t1" ~polarity ~w ~l ~sd_contacts:`West ~net_g:net_g1
      ~net_s:net_d1 ~well:false ()
  in
  let t2 =
    Mosfet.make env ~name:"t2" ~polarity ~w ~l ~sd_contacts:`West ~net_g:net_g2
      ~net_s:net_s ~well:false ()
  in
  let diff = Mosfet.diffusion_layer polarity in
  let d2row =
    Contact_row.make env ~name:"d2row" ~layer:diff ~w ~net:net_d2 ()
  in
  let obj = Lobj.create name in
  Build.compact env ~into:obj t1 Dir.West;
  Build.compact env ~into:obj ~ignore_layers:[ diff ] t2 Dir.West;
  (* Align the drain row with the in-transistor rows (bbox minimum): at
     short gate lengths an unaligned row is pushed east by the diagonal
     metal clearance to the gate's contact pad and would miss the
     diffusion. *)
  Build.compact env ~into:obj ~ignore_layers:[ diff ] ~align:`Min d2row Dir.West;
  Mosfet.merge_diff_gaps env obj ~diff;
  if polarity = Mosfet.Pmos && well then ignore (Prim.around env obj ~layer:"nwell" ());
  Mosfet.port_on obj ~name:net_d2 ~net:net_d2 ();
  obj
