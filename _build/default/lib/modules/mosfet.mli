(** Single MOS transistor module — the "Trans" entity of Fig. 7.

    Gate [TWORECTS] with a vertical gate stripe (channel width [w] vertical,
    length [l] horizontal), a poly contact row compacted onto the gate from
    the north, and diffusion contact rows on the west (source) and east
    (drain).  PMOS devices receive their n-well automatically. *)

type polarity = Nmos | Pmos [@@deriving show, eq]

val diffusion_layer : polarity -> string

type sd_contacts = [ `Both | `West | `East | `None ]

val port_on :
  Amg_layout.Lobj.t ->
  name:string ->
  net:string ->
  ?layer:string ->
  unit ->
  unit
(** Add a port over the hull of the object's [layer] (default metal1)
    shapes belonging to [net]; no-op when the net has no such shapes. *)

val merge_diff_gaps :
  Amg_core.Env.t -> Amg_layout.Lobj.t -> diff:string -> unit
(** Auto-connection repair: stretch netted S/D row diffusion over
    sub-spacing gaps to the facing (un-netted) channel diffusion left by
    diagonal metal clearances during compaction. *)

val make :
  Amg_core.Env.t ->
  ?name:string ->
  polarity:polarity ->
  w:int ->
  l:int ->
  ?gate_contact:bool ->
  ?sd_contacts:sd_contacts ->
  ?net_g:string ->
  ?net_s:string ->
  ?net_d:string ->
  ?well:bool ->
  unit ->
  Amg_layout.Lobj.t
(** Ports [g], [s], [d] are created on metal1 for the sides that have
    contact rows. *)

val diode_connected :
  Amg_core.Env.t ->
  ?name:string ->
  polarity:polarity ->
  w:int ->
  l:int ->
  ?net_g:string ->
  ?net_s:string ->
  ?well:bool ->
  unit ->
  Amg_layout.Lobj.t
(** Diode-connected transistor: the drain is tied to the gate with an
    L-shaped metal wire; ports [g] and [s]. *)
