(* Common-centroid unit-capacitor array.

   Two capacitors C_A and C_B are built from identical poly/poly2 unit
   cells on a shared bottom plate, assigned to grid positions in
   point-symmetric pairs so both groups share the array's centre of
   gravity — the capacitor counterpart of the module-E transistor
   centroid, and a staple of the module-library class the paper describes
   (ratioed capacitors for switched-capacitor circuits).

   Structure, bottom to top:
   - one poly bottom plate under everything (net [net_bot]), extended
     south into a contact tab;
   - unit poly2 top plates in a rows x cols grid, each with its metal1
     pad and contact array;
   - per-row metal1 straps: the A strap above each row, the B strap below
     it; short metal1 stubs tie each unit to its group's strap;
   - vertical metal1 rails join all A straps on the east and all B straps
     on the west (everything single-layer — no vias needed);
   - an optional dummy ring at the same unit size, every dummy tied to the
     bottom-plate net through its own contacts and a perimeter metal ring
     that merges with the south tab (dummies on the device net would float;
     tying them to the bottom plate is standard practice and makes them
     disappear in extraction as same-node capacitors). *)

module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module Prim = Amg_core.Prim
module Margins = Amg_core.Margins

type group = A | B

type plan = { rows : int; cols : int; cells : group array array }

(* Near-square factorisation of the total unit count. *)
let grid_dims total =
  let best = ref (1, total) in
  for r = 1 to total do
    if total mod r = 0 then begin
      let c = total / r in
      let br, bc = !best in
      if abs (r - c) < abs (br - bc) then best := (r, c)
    end
  done;
  !best

(* Point-symmetric pair assignment: cell (i,j) and its partner
   (rows-1-i, cols-1-j) always belong to the same group, so both groups'
   centroids coincide with the array centre by construction. *)
let plan ~units_a ~units_b =
  let total = units_a + units_b in
  if units_a <= 0 || units_b <= 0 then
    Env.reject "Cap_array: unit counts must be positive";
  let rows, cols = grid_dims total in
  (* Parity: an odd total always splits into one odd and one even count, so
     the centre cell has a well-defined owner; an even total splits either
     even/even (fine) or odd/odd — the only unassignable case. *)
  let odd_center = total mod 2 = 1 in
  if (not odd_center) && units_a mod 2 = 1 then
    Env.reject
      "Cap_array: even grid needs even unit counts for a symmetric assignment";
  let cells = Array.make_matrix rows cols A in
  let remaining_a = ref units_a and remaining_b = ref units_b in
  let take g n =
    (match g with A -> remaining_a | B -> remaining_b) := (match g with A -> !remaining_a | B -> !remaining_b) - n
  in
  (* Centre cell (odd total) goes to the odd-count group. *)
  if odd_center then begin
    let g = if units_a mod 2 = 1 then A else B in
    cells.(rows / 2).(cols / 2) <- g;
    take g 1
  end;
  (* Remaining cells in symmetric pairs, alternating while both groups have
     pairs left. *)
  let next = ref A in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let pi = rows - 1 - i and pj = cols - 1 - j in
      (* Visit each pair once, from its lexicographically first member;
         skip the centre. *)
      if (i, j) < (pi, pj) then begin
        let g =
          if !remaining_a < 2 then B
          else if !remaining_b < 2 then A
          else begin
            let g = !next in
            next := (match g with A -> B | B -> A);
            g
          end
        in
        cells.(i).(j) <- g;
        cells.(pi).(pj) <- g;
        take g 2
      end
    done
  done;
  assert (!remaining_a = 0 && !remaining_b = 0);
  { rows; cols; cells }

(* Area-weighted centroid of a group's top plates, in nm. *)
let centroid obj ~net =
  let shapes =
    List.filter
      (fun (s : Amg_layout.Shape.t) -> Amg_layout.Shape.on_layer s "poly2")
      (Lobj.shapes_on_net obj net)
  in
  match shapes with
  | [] -> None
  | _ ->
      let area, mx, my =
        List.fold_left
          (fun (a, mx, my) (s : Amg_layout.Shape.t) ->
            let ar = float_of_int (Rect.area s.rect) in
            ( a +. ar,
              mx +. (ar *. float_of_int (Rect.center_x s.rect)),
              my +. (ar *. float_of_int (Rect.center_y s.rect)) ))
          (0., 0., 0.) shapes
      in
      Some (mx /. area, my /. area)

let make env ?(name = "cap_array") ~unit_ff ~units_a ~units_b
    ?(net_a = "ca") ?(net_b = "cb") ?(net_bot = "bot") ?(dummies = true)
    ?assignment () =
  let rules = Env.rules env in
  let p =
    match assignment with Some p -> p | None -> plan ~units_a ~units_b
  in
  let side = Capacitor.plate_side env ~cap_ff:unit_ff in
  let m1w = Rules.width rules "metal1" in
  let m1s = Rules.space_exn rules "metal1" "metal1" in
  let strap_w = max m1w (Units.of_um 2.) in
  let p2s = Rules.space_exn rules "poly2" "poly2" in
  let gap_x = max p2s (Units.of_um 2.) in
  (* Between consecutive rows: A strap of the lower row, B strap of the
     upper one, with metal spacing everywhere. *)
  let gap_y = (3 * m1s) + (2 * strap_w) in
  let pitch_x = side + gap_x and pitch_y = side + gap_y in
  let mm = Margins.inside rules ~outer:"poly2" ~inner:"metal1" in
  let obj = Lobj.create name in
  let unit ~x ~y ~net =
    let top = Prim.raw obj ~layer:"poly2" ~rect:(Rect.of_size ~x ~y ~w:side ~h:side) ~net () in
    let pad =
      Prim.raw obj ~layer:"metal1"
        ~rect:(Rect.inflate top.Amg_layout.Shape.rect (-mm))
        ~net ()
    in
    let _ = Prim.array env obj ~layer:"contact" ~net ~within:[ top; pad ] () in
    (top, pad)
  in
  let stub ~(pad : Amg_layout.Shape.t) ~to_y ~net =
    (* Vertical metal1 from the pad edge to the strap, centred on the unit. *)
    let r = pad.Amg_layout.Shape.rect in
    let cx = Rect.center_x r in
    let y0, y1 =
      if to_y > r.Rect.y1 then (r.Rect.y1, to_y) else (to_y, r.Rect.y0)
    in
    ignore
      (Prim.raw obj ~layer:"metal1"
         ~rect:(Rect.make ~x0:(cx - (m1w / 2)) ~y0 ~x1:(cx + (m1w / 2)) ~y1)
         ~net ())
  in
  let arr_w = (p.cols * side) + ((p.cols - 1) * gap_x) in
  (* Per-row strap positions. *)
  let strap_a_y i = (i * pitch_y) + side + m1s in
  let strap_b_y i = (i * pitch_y) - m1s - strap_w in
  (* Rails. *)
  let rail_a_x0 = arr_w + m1s in
  let rail_b_x1 = -m1s in
  (* Units, stubs and straps. *)
  for i = 0 to p.rows - 1 do
    let ya = strap_a_y i and yb = strap_b_y i in
    ignore
      (Prim.raw obj ~layer:"metal1"
         ~rect:(Rect.make ~x0:0 ~y0:ya ~x1:(rail_a_x0 + strap_w) ~y1:(ya + strap_w))
         ~net:net_a ());
    ignore
      (Prim.raw obj ~layer:"metal1"
         ~rect:(Rect.make ~x0:(rail_b_x1 - strap_w) ~y0:yb ~x1:arr_w ~y1:(yb + strap_w))
         ~net:net_b ());
    for j = 0 to p.cols - 1 do
      let x = j * pitch_x and y = i * pitch_y in
      match p.cells.(i).(j) with
      | A ->
          let _, pad = unit ~x ~y ~net:net_a in
          stub ~pad ~to_y:(ya + strap_w) ~net:net_a
      | B ->
          let _, pad = unit ~x ~y ~net:net_b in
          stub ~pad ~to_y:yb ~net:net_b
    done
  done;
  let top_a = strap_a_y (p.rows - 1) + strap_w in
  let bot_b = strap_b_y 0 in
  ignore
    (Prim.raw obj ~layer:"metal1"
       ~rect:(Rect.make ~x0:rail_a_x0 ~y0:(strap_a_y 0) ~x1:(rail_a_x0 + strap_w) ~y1:top_a)
       ~net:net_a ());
  ignore
    (Prim.raw obj ~layer:"metal1"
       ~rect:
         (Rect.make ~x0:(rail_b_x1 - strap_w) ~y0:bot_b ~x1:rail_b_x1
            ~y1:(strap_b_y (p.rows - 1) + strap_w))
       ~net:net_b ());
  (* Dummy ring: same-size units beyond the straps/rails, tied to the
     bottom-plate net through their own pads, stubs and a perimeter metal
     ring. *)
  let ring_rects = ref [] in
  if dummies then begin
    let dx_w = rail_b_x1 - strap_w - m1s - side in
    let dx_e = rail_a_x0 + strap_w + m1s in
    let dy_s = bot_b - m1s - side in
    let dy_n = top_a + m1s in
    (* Perimeter ring just outside the dummies. *)
    let ring_x0 = dx_w - m1s - strap_w
    and ring_x1 = dx_e + side + m1s + strap_w in
    let ring_y0 = dy_s - m1s - strap_w
    and ring_y1 = dy_n + side + m1s + strap_w in
    let ring_seg r = ring_rects := r :: !ring_rects in
    ring_seg (Rect.make ~x0:ring_x0 ~y0:ring_y0 ~x1:ring_x1 ~y1:(ring_y0 + strap_w));
    ring_seg (Rect.make ~x0:ring_x0 ~y0:(ring_y1 - strap_w) ~x1:ring_x1 ~y1:ring_y1);
    ring_seg (Rect.make ~x0:ring_x0 ~y0:ring_y0 ~x1:(ring_x0 + strap_w) ~y1:ring_y1);
    ring_seg (Rect.make ~x0:(ring_x1 - strap_w) ~y0:ring_y0 ~x1:ring_x1 ~y1:ring_y1);
    List.iter
      (fun r -> ignore (Prim.raw obj ~layer:"metal1" ~rect:r ~net:net_bot ()))
      !ring_rects;
    let dummy ~x ~y ~dir =
      let _, pad = unit ~x ~y ~net:net_bot in
      let r = pad.Amg_layout.Shape.rect in
      let cx = Rect.center_x r and cy = Rect.center_y r in
      match dir with
      | `N ->
          ignore
            (Prim.raw obj ~layer:"metal1"
               ~rect:(Rect.make ~x0:(cx - (m1w / 2)) ~y0:r.Rect.y1 ~x1:(cx + (m1w / 2)) ~y1:(ring_y1 - strap_w))
               ~net:net_bot ())
      | `S ->
          ignore
            (Prim.raw obj ~layer:"metal1"
               ~rect:(Rect.make ~x0:(cx - (m1w / 2)) ~y0:(ring_y0 + strap_w) ~x1:(cx + (m1w / 2)) ~y1:r.Rect.y0)
               ~net:net_bot ())
      | `W ->
          ignore
            (Prim.raw obj ~layer:"metal1"
               ~rect:(Rect.make ~x0:(ring_x0 + strap_w) ~y0:(cy - (m1w / 2)) ~x1:r.Rect.x0 ~y1:(cy + (m1w / 2)))
               ~net:net_bot ())
      | `E ->
          ignore
            (Prim.raw obj ~layer:"metal1"
               ~rect:(Rect.make ~x0:r.Rect.x1 ~y0:(cy - (m1w / 2)) ~x1:(ring_x1 - strap_w) ~y1:(cy + (m1w / 2)))
               ~net:net_bot ())
    in
    for j = 0 to p.cols - 1 do
      dummy ~x:(j * pitch_x) ~y:dy_n ~dir:`N;
      dummy ~x:(j * pitch_x) ~y:dy_s ~dir:`S
    done;
    for i = 0 to p.rows - 1 do
      dummy ~x:dx_w ~y:(i * pitch_y) ~dir:`W;
      dummy ~x:dx_e ~y:(i * pitch_y) ~dir:`E
    done
  end;
  (* Bottom plate: poly under every poly2 with the enclosure margin, plus a
     south tab with its contact row and metal that merges with the dummy
     ring (or stands alone when there are no dummies). *)
  let pm = Rules.enclosure_or_zero rules ~outer:"poly" ~inner:"poly2" in
  let p2_hull =
    match
      Rect.hull_list
        (List.filter_map
           (fun (s : Amg_layout.Shape.t) ->
             if Amg_layout.Shape.on_layer s "poly2" then Some s.rect else None)
           (Lobj.shapes obj))
    with
    | Some h -> h
    | None -> Env.reject "Cap_array: empty"
  in
  let plate = Rect.inflate p2_hull pm in
  (* Tab below everything built so far. *)
  let below = (Lobj.bbox_exn obj).Rect.y0 in
  let tab_h =
    Amg_layout.Derive.min_container_extent rules ~container_layer:"poly"
      ~cut_layer:"contact"
    + Rules.width rules "poly"
  in
  let tab_y1 = min (below - m1s) plate.Rect.y0 in
  let tab =
    Rect.make ~x0:plate.Rect.x0 ~y0:(tab_y1 - tab_h) ~x1:plate.Rect.x1 ~y1:tab_y1
  in
  let plate_rect = Rect.hull plate tab in
  ignore (Prim.raw obj ~layer:"poly" ~rect:plate_rect ~net:net_bot ());
  let tab_poly = Prim.raw obj ~layer:"poly" ~rect:tab ~net:net_bot () in
  let tab_metal =
    Prim.raw obj ~layer:"metal1"
      ~rect:(Rect.inflate tab (-Margins.inside rules ~outer:"poly" ~inner:"metal1"))
      ~net:net_bot ()
  in
  let _ = Prim.array env obj ~layer:"contact" ~net:net_bot ~within:[ tab_poly; tab_metal ] () in
  (* Tie the dummy ring to the tab with a short vertical metal. *)
  (match !ring_rects with
  | [] -> ()
  | _ ->
      let ring_bottom =
        List.fold_left (fun acc (r : Rect.t) -> min acc r.Rect.y0) max_int !ring_rects
      in
      let tm = tab_metal.Amg_layout.Shape.rect in
      (* Vertical tie overlapping both the tab metal and the ring's bottom
         segment (the ring spans the full width, so any x inside the tab
         metal works). *)
      ignore
        (Prim.raw obj ~layer:"metal1"
           ~rect:
             (Rect.make ~x0:tm.Rect.x0 ~y0:tm.Rect.y0
                ~x1:(tm.Rect.x0 + strap_w) ~y1:(ring_bottom + strap_w))
           ~net:net_bot ()));
  Mosfet.port_on obj ~name:net_a ~net:net_a ();
  Mosfet.port_on obj ~name:net_b ~net:net_b ();
  Mosfet.port_on obj ~name:net_bot ~net:net_bot ();
  (obj, p)
