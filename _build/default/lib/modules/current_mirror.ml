(* Current mirrors.

   [simple]: two-finger mirror (diode + output) sharing the source row.
   [symmetric]: the paper's block-B style — "a symmetrical layout module
   … with the diode transistor in the middle": the output device is split
   into two fingers flanking the diode.
   [stacked_pair]: two arrays abutted vertically with their facing straps
   merged — the cascode arrangement of block A. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Env = Amg_core.Env
module Build = Amg_core.Build
module Path = Amg_route.Path

(* The diode connection: the gates are strapped by the poly bar with a
   single contact row whose metal is separate from the gate-net row strap
   (metal2); join them with a via on the contact metal and an L-shaped
   metal2 path into the strap. *)
let connect_diode env obj ~net =
  let tech = Env.tech env in
  let shapes = Lobj.shapes obj in
  let diffs =
    List.filter_map
      (fun (s : Shape.t) ->
        match Amg_tech.Technology.layer tech s.Shape.layer with
        | Some l when Amg_tech.Layer.is_active l -> Some s.Shape.rect
        | _ -> None)
      shapes
  in
  (* The gate-contact metal: on the net, metal1, away from the diffusion
     rows. *)
  let polycon =
    List.find_opt
      (fun (s : Shape.t) ->
        Shape.on_layer s "metal1"
        && s.Shape.net = Some net
        && not (List.exists (Rect.overlaps s.Shape.rect) diffs))
      shapes
  in
  let strap =
    List.find_opt
      (fun (s : Shape.t) ->
        Shape.on_layer s "metal2" && s.Shape.net = Some net
        && Rect.width s.Shape.rect > Rect.height s.Shape.rect)
      shapes
  in
  match (polycon, strap) with
  | Some pc, Some st ->
      let px = Rect.center_x pc.Shape.rect and py = Rect.center_y pc.Shape.rect in
      let sy = Rect.center_y st.Shape.rect in
      let sx =
        min (st.Shape.rect.Rect.x1 - Amg_geometry.Units.of_um 1.)
          (max (st.Shape.rect.Rect.x0 + Amg_geometry.Units.of_um 1.) px)
      in
      let _ = Amg_route.Wire.via env obj ~at:(px, py) ~net () in
      let _ =
        Path.draw obj ~layer:"metal2"
          ~width:(Rules.width (Env.rules env) "metal2")
          ~net
          [ (px, py); (px, sy); (sx, sy) ]
      in
      ()
  | _ -> ()

let straps ~net_g ~net_s ~net_dout =
  [
    { Mos_array.strap_net = net_s; side = Dir.South; metal = Mos_array.M1 };
    { Mos_array.strap_net = net_dout; side = Dir.North; metal = Mos_array.M1 };
    { Mos_array.strap_net = net_g; side = Dir.North; metal = Mos_array.M2 };
  ]

let simple env ?(name = "mirror") ?well_tap ~polarity ~w ~l ?(net_g = "vg")
    ?(net_s = "vss") ?(net_dout = "dout") () =
  let arr =
    Mos_array.make env ~name ?well_tap ~polarity ~w ~l
      ~columns:
        [ Mos_array.Row net_g; Mos_array.Fin net_g; Mos_array.Row net_s;
          Mos_array.Fin net_g; Mos_array.Row net_dout ]
      ~straps:(straps ~net_g ~net_s ~net_dout)
      ()
  in
  connect_diode env arr.Mos_array.obj ~net:net_g;
  arr.Mos_array.obj

let symmetric env ?(name = "mirror_sym") ?well_tap ~polarity ~w ~l
    ?(net_g = "vg") ?(net_s = "vss") ?(net_dout = "dout") () =
  let arr =
    Mos_array.make env ~name ?well_tap ~polarity ~w ~l
      ~columns:
        [ Mos_array.Row net_dout; Mos_array.Fin net_g; Mos_array.Row net_s;
          Mos_array.Fin net_g; Mos_array.Row net_g; Mos_array.Fin net_g;
          Mos_array.Row net_s; Mos_array.Fin net_g; Mos_array.Row net_dout ]
      ~straps:(straps ~net_g ~net_s ~net_dout)
      ()
  in
  connect_diode env arr.Mos_array.obj ~net:net_g;
  arr.Mos_array.obj

(* Two arrays abutted vertically, the lower one's north strap carrying the
   same net as the upper one's south strap: compaction stops on the strap
   spacing and auto-connection merges the rails (block A's cascode). *)
let stacked_pair env ?(name = "cascode") ~(bottom : Mos_array.t)
    ~(top : Mos_array.t) () =
  let obj = Lobj.create name in
  Build.compact env ~into:obj bottom.Mos_array.obj Dir.South;
  Build.compact env ~into:obj ~align:`Center top.Mos_array.obj Dir.South;
  obj
