(* Coordinate-level baseline generators, in the style the paper compares
   against (ref. [11]: every rectangle written with its exact coordinates,
   every design-rule value fetched and applied by hand).

   "Former methods for equivalent generation by describing each rectangle
   with its exact coordinates needed a multiple of this source code and
   were much more difficult to construct and to maintain."  These
   implementations are the honest comparison point for the CLAIM-CODE
   benchmark: same resulting structure, hand-computed placement.

   BEGIN baseline_contact_row *)

module Rect = Amg_geometry.Rect
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env

let contact_row env ?(name = "contact_row_baseline") ~layer ?w ?l ?net () =
  let rules = Env.rules env in
  let cut = Rules.cut_size rules "contact" in
  let cut_space = Rules.cut_space rules "contact" in
  let encl_land = Rules.enclosure_or_zero rules ~outer:layer ~inner:"contact" in
  let encl_metal = Rules.enclosure_or_zero rules ~outer:"metal1" ~inner:"contact" in
  let metal_min = Rules.width rules "metal1" in
  let land_min = Rules.width rules layer in
  (* Landing size: the caller's size, raised so one contact always fits in
     both the landing layer and the metal. *)
  let need_land = cut + (2 * encl_land) in
  let need_via_metal = cut + (2 * encl_metal) in
  let h0 = max (Option.value ~default:land_min w) land_min in
  let h = max h0 (max need_land need_via_metal) in
  let l0 = max (Option.value ~default:land_min l) land_min in
  let len = max l0 (max need_land need_via_metal) in
  let obj = Lobj.create name in
  (* Landing rectangle at the origin. *)
  let _ =
    Lobj.add_shape obj ~layer ~rect:(Rect.make ~x0:0 ~y0:0 ~x1:len ~y1:h) ?net ()
  in
  (* Metal inside it: the tighter of the two enclosure constraints decides
     the inset on each side. *)
  let inset = max 0 (encl_land - encl_metal) in
  let mx0 = inset and my0 = inset in
  let mx1 = len - inset and my1 = h - inset in
  let mx1 = if mx1 - mx0 < metal_min then mx0 + metal_min else mx1 in
  let my1 = if my1 - my0 < metal_min then my0 + metal_min else my1 in
  let _ =
    Lobj.add_shape obj ~layer:"metal1"
      ~rect:(Rect.make ~x0:mx0 ~y0:my0 ~x1:mx1 ~y1:my1)
      ?net ()
  in
  (* Contact array: window is the landing shrunk by its enclosure,
     intersected with the metal shrunk by its enclosure. *)
  let wx0 = max encl_land (mx0 + encl_metal) in
  let wy0 = max encl_land (my0 + encl_metal) in
  let wx1 = min (len - encl_land) (mx1 - encl_metal) in
  let wy1 = min (h - encl_land) (my1 - encl_metal) in
  let fit extent = if extent < cut then 0 else 1 + ((extent - cut) / (cut + cut_space)) in
  let nx = fit (wx1 - wx0) and ny = fit (wy1 - wy0) in
  let place lo hi n =
    let extent = hi - lo in
    let total_gap = extent - (n * cut) in
    let equal_gap = total_gap / (n + 1) in
    if equal_gap >= cut_space || n = 1 then
      let rem = total_gap mod (n + 1) in
      List.init n (fun i ->
          let extra = min i rem in
          lo + ((i + 1) * equal_gap) + extra + (i * cut))
    else
      let margin = (total_gap - ((n - 1) * cut_space)) / 2 in
      List.init n (fun i -> lo + margin + (i * (cut + cut_space)))
  in
  List.iter
    (fun y ->
      List.iter
        (fun x ->
          ignore
            (Lobj.add_shape obj ~layer:"contact"
               ~rect:(Rect.make ~x0:x ~y0:y ~x1:(x + cut) ~y1:(y + cut))
               ?net ()))
        (place wx0 wx1 nx))
    (place wy0 wy1 ny);
  obj

(* END baseline_contact_row *)

(* BEGIN baseline_diff_pair *)

(* The Fig. 6 differential pair with every coordinate computed by hand:
   three vertical diffusion contact rows, two vertical gates between them,
   two poly contact rows on top. *)
let diff_pair env ?(name = "diff_pair_baseline") ~w ~l () =
  let rules = Env.rules env in
  let diff = "pdiff" in
  let cut = Rules.cut_size rules "contact" in
  let cut_space = Rules.cut_space rules "contact" in
  let encl_diff = Rules.enclosure_or_zero rules ~outer:diff ~inner:"contact" in
  let encl_poly = Rules.enclosure_or_zero rules ~outer:"poly" ~inner:"contact" in
  let encl_metal = Rules.enclosure_or_zero rules ~outer:"metal1" ~inner:"contact" in
  let endcap =
    Option.value ~default:0 (Rules.extension rules ~of_:"poly" ~past:diff)
  in
  let sd_ext =
    Option.value ~default:0 (Rules.extension rules ~of_:diff ~past:"poly")
  in
  let poly_diff_space =
    Option.value ~default:0 (Rules.space rules "poly" diff)
  in
  let obj = Lobj.create name in
  (* Horizontal pitch: a diffusion row is as wide as one contact plus its
     enclosures; the gate sits one contact-to-gate distance away, which is
     the poly-to-diffusion spacing plus the diffusion row overhang. *)
  let row_w = cut + (2 * encl_diff) in
  let gate_gap = encl_diff + poly_diff_space in
  let pitch = row_w + gate_gap + l + gate_gap in
  let rows_x = [ 0; pitch; 2 * pitch ] in
  let row_nets = [ "d1"; "s"; "d2" ] in
  (* Diffusion rows with their metal and contacts. *)
  List.iter2
    (fun x net ->
      let _ =
        Lobj.add_shape obj ~layer:diff
          ~rect:(Rect.make ~x0:x ~y0:0 ~x1:(x + row_w) ~y1:w)
          ~net ()
      in
      let _ =
        Lobj.add_shape obj ~layer:"metal1"
          ~rect:
            (Rect.make
               ~x0:(x + encl_diff - encl_metal)
               ~y0:(encl_diff - encl_metal)
               ~x1:(x + row_w - encl_diff + encl_metal)
               ~y1:(w - encl_diff + encl_metal))
          ~net ()
      in
      let n_cuts =
        let extent = w - (2 * encl_diff) in
        if extent < cut then 0 else 1 + ((extent - cut) / (cut + cut_space))
      in
      let extent = w - (2 * encl_diff) in
      let total_gap = extent - (n_cuts * cut) in
      let equal_gap = total_gap / (n_cuts + 1) in
      for i = 0 to n_cuts - 1 do
        let gap = max equal_gap cut_space in
        let margin =
          if equal_gap >= cut_space then equal_gap
          else (total_gap - ((n_cuts - 1) * cut_space)) / 2
        in
        let y = encl_diff + margin + (i * (cut + gap)) in
        ignore
          (Lobj.add_shape obj ~layer:"contact"
             ~rect:(Rect.make ~x0:(x + encl_diff) ~y0:y ~x1:(x + encl_diff + cut) ~y1:(y + cut))
             ~net ())
      done)
    rows_x row_nets;
  (* Gates between the rows, with the bridging diffusion. *)
  let gates_x = [ row_w + gate_gap; row_w + gate_gap + pitch ] in
  let gate_nets = [ "g1"; "g2" ] in
  List.iter2
    (fun x net ->
      let _ =
        Lobj.add_shape obj ~layer:"poly"
          ~rect:(Rect.make ~x0:x ~y0:(-endcap) ~x1:(x + l) ~y1:(w + endcap))
          ~net ()
      in
      ignore
        (Lobj.add_shape obj ~layer:diff
           ~rect:(Rect.make ~x0:(x - sd_ext) ~y0:0 ~x1:(x + l + sd_ext) ~y1:w)
           ())
    )
    gates_x gate_nets;
  (* Poly contact rows above the gates: landing poly sized to the gate
     length, connected by overlapping the gate end-cap. *)
  let pc_h = cut + (2 * encl_poly) in
  List.iter2
    (fun x net ->
      let y0 = w + poly_diff_space in
      let _ =
        Lobj.add_shape obj ~layer:"poly"
          ~rect:(Rect.make ~x0:x ~y0 ~x1:(x + l) ~y1:(y0 + pc_h))
          ~net ()
      in
      let _ =
        Lobj.add_shape obj ~layer:"metal1"
          ~rect:
            (Rect.make
               ~x0:(x + encl_poly - encl_metal)
               ~y0:(y0 + encl_poly - encl_metal)
               ~x1:(x + l - encl_poly + encl_metal)
               ~y1:(y0 + pc_h - encl_poly + encl_metal))
          ~net ()
      in
      let extent = l - (2 * encl_poly) in
      let n_cuts = if extent < cut then 0 else 1 + ((extent - cut) / (cut + cut_space)) in
      let total_gap = extent - (n_cuts * cut) in
      let equal_gap = total_gap / (n_cuts + 1) in
      for i = 0 to n_cuts - 1 do
        let gap = max equal_gap cut_space in
        let margin =
          if equal_gap >= cut_space then equal_gap
          else (total_gap - ((n_cuts - 1) * cut_space)) / 2
        in
        let cx = x + encl_poly + margin + (i * (cut + gap)) in
        ignore
          (Lobj.add_shape obj ~layer:"contact"
             ~rect:(Rect.make ~x0:cx ~y0:(y0 + encl_poly) ~x1:(cx + cut) ~y1:(y0 + encl_poly + cut))
             ~net ())
      done;
      (* Bridge from the gate end-cap up to the contact-row poly, only when
         a gap remains (with a short end-cap the row overlaps the gate). *)
      if y0 > w + endcap then
        ignore
          (Lobj.add_shape obj ~layer:"poly"
             ~rect:(Rect.make ~x0:x ~y0:(w + endcap) ~x1:(x + l) ~y1:y0)
             ~net ()))
    gates_x gate_nets;
  obj

(* END baseline_diff_pair *)

(* Line counts of the two baseline generators for the CLAIM-CODE benchmark,
   measured from this source file when running inside the repository, with
   checked-in counts as fallback. *)

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m > 0 && go 0

let region_line_count path ~mark =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let lines = String.split_on_char '\n' src in
    let rec before = function
      | [] -> []
      | l :: tl -> if contains l ("BEGIN " ^ mark) then tl else before tl
    in
    let rec count acc = function
      | [] -> None
      | l :: tl ->
          if contains l ("END " ^ mark) then Some acc
          else count (acc + if String.trim l = "" then 0 else 1) tl
    in
    count 0 (before lines)
  with Sys_error _ -> None

let source_file = "lib/modules/baseline.ml"

(* Fallback counts (non-blank lines), kept in sync by the test suite when
   the source file is available. *)
let contact_row_loc () =
  Option.value ~default:55 (region_line_count source_file ~mark:"baseline_contact_row")

let diff_pair_loc () =
  Option.value ~default:115 (region_line_count source_file ~mark:"baseline_diff_pair")
