(** Common-centroid unit-capacitor array.

    Two ratioed capacitors C_A : C_B = [units_a] : [units_b] built from
    identical poly/poly2 unit cells on a shared bottom plate, assigned to
    grid cells in point-symmetric pairs so both groups' centroids coincide
    with the array centre (the capacitor counterpart of module E's
    transistor centroid).  Group wiring is single-layer metal1: per-row A
    straps above / B straps below each row, joined by an east A rail and a
    west B rail.  An optional dummy ring at the same unit size surrounds
    the array, every dummy tied to the bottom-plate net (so extraction
    reduces dummies away as same-node capacitors). *)

type group = A | B

type plan = { rows : int; cols : int; cells : group array array }

val grid_dims : int -> int * int
(** Near-square factorisation [(rows, cols)] of a unit count. *)

val plan : units_a:int -> units_b:int -> plan
(** The symmetric assignment.  Cell [(i,j)] and its point-symmetric partner
    always carry the same group.
    @raise Amg_core.Env.Rejected when the counts cannot be assigned
    symmetrically (even grid needs both counts even; odd grid needs
    exactly one odd count). *)

val centroid : Amg_layout.Lobj.t -> net:string -> (float * float) option
(** Area-weighted centroid of a net's poly2 top plates, in nm. *)

val make :
  Amg_core.Env.t ->
  ?name:string ->
  unit_ff:float ->
  units_a:int ->
  units_b:int ->
  ?net_a:string ->
  ?net_b:string ->
  ?net_bot:string ->
  ?dummies:bool ->
  ?assignment:plan ->
  unit ->
  Amg_layout.Lobj.t * plan
(** Build the array.  Ports: [net_a], [net_b] (top-plate groups) and
    [net_bot] (shared bottom plate, south contact tab).  [assignment]
    overrides the symmetric {!plan} — used by the benchmark ablation to
    measure the centroid error of a naive row-major assignment. *)
