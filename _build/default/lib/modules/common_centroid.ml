(* Module E (§3, Fig. 10): the centroidal cross-coupled inter-digitated
   differential pair "with eight dummy transistors in the middle and four
   dummy transistors on the right and left side", with fully symmetric
   wiring.

   Finger sequence (west to east), for [pairs = k] fingers per device per
   half:

     [D x side_dummies] [A..A dA A..A] [B..B dB B..B] [D x mid_dummies]
     [B..B dB B..B] [A..A dA A..A] [D x side_dummies]

   Both devices' centroids coincide with the centre axis; the right half is
   the mirror image of the left, so gradient-induced mismatch cancels.

   Wiring plan (all x positions mirrored about the centre axis):
   - south, inside out: the common-source metal1 rail S1; the inner-span
     metal2 rail S2 for drain B; the full-span metal2 rail S3 for drain A;
     both drains reach their rails through vias and metal2 drops that cross
     S1 where metal1 may not run;
   - north: poly landing pads on every gate; dummies tie their pads to the
     source rail with metal1 drops straight down through the array; the
     input gates collect on four metal2 half-tracks (left-A high, left-B
     low, right-B high, right-A low) joined by a planar two-via crossover
     in the dummy region, giving each input identical structure: one tall
     metal1 riser, one short riser, one horizontal, two vias, and the same
     number of crossings (zero) — "the wiring is fully symmetrical and
     every net has identical crossings". *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Env = Amg_core.Env
module Build = Amg_core.Build
module Path = Amg_route.Path
module Wire = Amg_route.Wire

type spec = {
  pairs : int;         (* fingers per device per half *)
  side_dummies : int;  (* paper: 4 *)
  mid_dummies : int;   (* paper: 8 *)
}

let paper_spec = { pairs = 2; side_dummies = 4; mid_dummies = 8 }

(* Column plan.  Each device group of [n] fingers shares one drain row in
   its middle: s F s .. F d F .. s; dummies sit between source rows. *)
let group ~net_g ~net_d n =
  let rec go i acc =
    if i >= n then acc
    else
      let acc = Mos_array.Fin net_g :: acc in
      let acc =
        if i = (n / 2) - 1 || (n = 1 && i = 0) then Mos_array.Row net_d :: acc
        else if i < n - 1 then Mos_array.Row "__s" :: acc
        else acc
      in
      go (i + 1) acc
  in
  List.rev (go 0 [])

let dummies n =
  List.concat_map (fun _ -> [ Mos_array.Fin "__dum"; Mos_array.Row "__s" ])
    (List.init n Fun.id)

let columns ~spec ~net_ga ~net_gb ~net_da ~net_db =
  [ Mos_array.Row "__s" ]
  @ dummies spec.side_dummies
  @ group ~net_g:net_ga ~net_d:net_da spec.pairs @ [ Mos_array.Row "__s" ]
  @ group ~net_g:net_gb ~net_d:net_db spec.pairs @ [ Mos_array.Row "__s" ]
  @ dummies spec.mid_dummies
  @ group ~net_g:net_gb ~net_d:net_db spec.pairs @ [ Mos_array.Row "__s" ]
  @ group ~net_g:net_ga ~net_d:net_da spec.pairs @ [ Mos_array.Row "__s" ]
  @ dummies spec.side_dummies

(* x centre of every row/pad of a net. *)
let xs_of_net shapes ~layer ~net =
  List.filter_map
    (fun (s : Shape.t) ->
      if Shape.on_layer s layer && s.Shape.net = Some net then
        Some (Rect.center_x s.Shape.rect)
      else None)
    shapes

let make env ?(name = "common_centroid") ?(spec = paper_spec) ?well_tap
    ~polarity ~w ~l ?(net_ga = "inp") ?(net_gb = "inn") ?(net_da = "da")
    ?(net_db = "db") ?(net_s = "tail") () =
  if spec.pairs < 1 || spec.pairs mod 2 <> 0 && spec.pairs <> 1 then
    Env.reject "common_centroid: pairs must be 1 or even";
  let rules = Env.rules env in
  let arr =
    Mos_array.make env ~name ~gate_tracks:false ~polarity ~w ~l
      ~columns:(columns ~spec ~net_ga ~net_gb ~net_da ~net_db)
      ~straps:[]
      ()
  in
  let obj = arr.Mos_array.obj in
  Lobj.rename_net obj ~from_:"__s" ~to_:net_s;
  Lobj.rename_net obj ~from_:"__dum" ~to_:net_s;
  let bbox = Lobj.bbox_exn obj in
  let xc = Rect.center_x bbox in
  let m1w = Rules.width rules "metal1" in
  let m2w = Rules.width rules "metal2" in
  let m2s = Rules.space_exn rules "metal2" "metal2" in
  let m1s = Rules.space_exn rules "metal1" "metal1" in
  let um = Units.of_um in
  (* --- south: source rail S1 (metal1, full span); below it the drain-A
     rail S3 on METAL1 (full span) so that drain-B's metal2 drops may cross
     it; outermost the drain-B rail S2 on metal2 (inner span).  Every rail
     is escapable by a parent router: S2 is outermost on its x range, and
     S3 extends past S2's span on both sides. *)
  let s1 = Lobj.create "s1" in
  let _ =
    Lobj.add_shape s1 ~layer:"metal1"
      ~rect:(Rect.of_size ~x:bbox.Rect.x0 ~y:0 ~w:(Rect.width bbox) ~h:m1w)
      ~net:net_s ()
  in
  Build.compact env ~into:obj ~align:`Min s1 Dir.North;
  let south_base =
    match Lobj.bbox obj with Some r -> r.Rect.y0 | None -> 0
  in
  let shapes = Lobj.shapes obj in
  let da_xs = xs_of_net shapes ~layer:"pdiff" ~net:net_da
              @ xs_of_net shapes ~layer:"ndiff" ~net:net_da in
  let db_xs = xs_of_net shapes ~layer:"pdiff" ~net:net_db
              @ xs_of_net shapes ~layer:"ndiff" ~net:net_db in
  if List.length da_xs <> 2 || List.length db_xs <> 2 then
    Env.reject "common_centroid: expected two drain rows per device";
  let rail ~layer ~h ~y ~net ~x0 ~x1 =
    ignore
      (Lobj.add_shape obj ~layer ~rect:(Rect.make ~x0 ~y0:y ~x1 ~y1:(y + h))
         ~net ())
  in
  let margin = m2w in
  (* Extra half-micron so the rail-via landing pads clear S1. *)
  let s3_y = south_base - m1s - m1w - um 0.5 in
  let s2_y = s3_y - m2s - m2w - um 1. in
  rail ~layer:"metal1" ~h:m1w ~y:s3_y ~net:net_da ~x0:bbox.Rect.x0
    ~x1:bbox.Rect.x1;
  rail ~layer:"metal2" ~h:m2w ~y:s2_y ~net:net_db
    ~x0:(List.fold_left min max_int db_xs - margin)
    ~x1:(List.fold_left max min_int db_xs + margin);
  (* Drop each drain row to its rail on metal2, crossing the metal1 rails
     freely: drain A changes back to metal1 with a via at S3, drain B
     merges into its metal2 rail S2. *)
  let drop_drain ~net ~rail_y ~via_at_rail x =
    (* Find the current row metal for the via position. *)
    let row_metal =
      List.find_opt
        (fun (s : Shape.t) ->
          Shape.on_layer s "metal1" && s.Shape.net = Some net
          && abs (Rect.center_x s.Shape.rect - x) < um 1.)
        (Lobj.shapes obj)
    in
    match row_metal with
    | None -> Env.reject "common_centroid: lost drain row at x=%d" x
    | Some rm ->
        let via_y = rm.Shape.rect.Rect.y0 + um 1. in
        let _ = Wire.via env obj ~at:(x, via_y) ~net () in
        let rail_c = rail_y + (m2w / 2) in
        let _ =
          Path.draw obj ~layer:"metal2" ~width:m2w ~net [ (x, via_y); (x, rail_c) ]
        in
        if via_at_rail then ignore (Wire.via env obj ~at:(x, rail_c) ~net ())
  in
  List.iter (drop_drain ~net:net_db ~rail_y:s2_y ~via_at_rail:false) db_xs;
  List.iter
    (drop_drain ~net:net_da ~rail_y:(s3_y + ((m1w - m2w) / 2)) ~via_at_rail:true)
    da_xs;
  (* --- north: gate pads are already there; tie dummy pads straight down
     through the array to the source rail. *)
  let pads = arr.Mos_array.pads in
  let pads_top =
    List.fold_left (fun acc (_, r) -> max acc r.Rect.y1) min_int pads
  in
  List.iter
    (fun (g, pr) ->
      (* The pads list still carries the pre-rename dummy net name. *)
      if String.equal g "__dum" then
        let x = Rect.center_x pr in
        ignore
          (Path.draw obj ~layer:"metal1" ~width:m1w ~net:net_s
             [ (x, Rect.center_y pr); (x, south_base + (m1w / 2)) ]))
    pads;
  (* --- the four half-tracks and the planar crossover. *)
  let y_mid2 = pads_top + m1s + (m1w / 2) in
  let y_mid1 = y_mid2 + m1w + m1s in
  let y_lo = y_mid1 + m1w + m1s in
  let y_hi = y_lo + m2w + m2s in
  let g1 = um 2. and g2 = um 2. + m2w + m2s in
  let track ~net ~y ~x0 ~x1 =
    ignore
      (Lobj.add_shape obj ~layer:"metal2"
         ~rect:(Rect.make ~x0 ~y0:y ~x1 ~y1:(y + m2w))
         ~net ())
  in
  let side_pads net side =
    List.filter_map
      (fun (g, r) ->
        let x = Rect.center_x r in
        if String.equal g net && (if side = `Left then x < xc else x > xc) then
          Some x
        else None)
      pads
  in
  let rise ~net ~track_y x =
    (* metal1 riser from the pad at x up to the track, via at the top. *)
    let pad_y =
      match
        List.find_opt (fun (g, r) -> String.equal g net && Rect.center_x r = x) pads
      with
      | Some (_, r) -> Rect.center_y r
      | None -> pads_top
    in
    let yc = track_y + (m2w / 2) in
    let _ = Path.draw obj ~layer:"metal1" ~width:m1w ~net [ (x, pad_y); (x, yc) ] in
    let _ = Wire.via env obj ~at:(x, yc) ~net () in
    ()
  in
  let ga_left = side_pads net_ga `Left and ga_right = side_pads net_ga `Right in
  let gb_left = side_pads net_gb `Left and gb_right = side_pads net_gb `Right in
  let span xs = (List.fold_left min max_int xs, List.fold_left max min_int xs) in
  let la0, la1 = span ga_left and ra0, ra1 = span ga_right in
  let lb0, lb1 = span gb_left and rb0, rb1 = span gb_right in
  (* TL: A left at y_hi, extended east to its crossover riser xc-g1.
     BR: A right at y_lo, extended west to xc+g1.
     BL: B left at y_lo, extended east to xc-g2.
     TR: B right at y_hi, extended west to xc+g2. *)
  track ~net:net_ga ~y:y_hi ~x0:(la0 - m2w) ~x1:(xc - g1 + (m2w / 2));
  track ~net:net_ga ~y:y_lo ~x0:(xc + g1 - (m2w / 2)) ~x1:(ra1 + m2w);
  track ~net:net_gb ~y:y_lo ~x0:(lb0 - m2w) ~x1:(xc - g2 + (m2w / 2));
  track ~net:net_gb ~y:y_hi ~x0:(xc + g2 - (m2w / 2)) ~x1:(rb1 + m2w);
  ignore (la1, ra0, lb1, rb0);
  List.iter (rise ~net:net_ga ~track_y:y_hi) ga_left;
  List.iter (rise ~net:net_ga ~track_y:y_lo) ga_right;
  List.iter (rise ~net:net_gb ~track_y:y_lo) gb_left;
  List.iter (rise ~net:net_gb ~track_y:y_hi) gb_right;
  (* Crossover: net A goes via-metal1-via from its high-left track to its
     low-right track around the centre; net B mirrors it one level lower
     and one pitch wider. *)
  let crossover ~net ~from_x ~from_y ~to_x ~to_y ~y_mid =
    let _ = Wire.via env obj ~at:(from_x, from_y + (m2w / 2)) ~net () in
    let _ = Wire.via env obj ~at:(to_x, to_y + (m2w / 2)) ~net () in
    let _ =
      Path.draw obj ~layer:"metal1" ~width:m1w ~net
        [
          (from_x, from_y + (m2w / 2));
          (from_x, y_mid);
          (to_x, y_mid);
          (to_x, to_y + (m2w / 2));
        ]
    in
    ()
  in
  crossover ~net:net_ga ~from_x:(xc - g1) ~from_y:y_hi ~to_x:(xc + g1)
    ~to_y:y_lo ~y_mid:y_mid1;
  crossover ~net:net_gb ~from_x:(xc + g2) ~from_y:y_hi ~to_x:(xc - g2)
    ~to_y:y_lo ~y_mid:y_mid2;
  (* --- well tap, well and ports. *)
  if polarity = Mosfet.Pmos then begin
    (match well_tap with
    | Some tap_net ->
        let tap = Contact_row.well_tap env ~net:tap_net () in
        Lobj.remove_port tap "tap";
        Build.compact env ~into:obj ~align:`Center tap Dir.South;
        Mosfet.port_on obj ~name:tap_net ~net:tap_net ()
    | None -> ());
    let diff = Mosfet.diffusion_layer polarity in
    let device_rects =
      List.filter_map
        (fun (s : Shape.t) ->
          if
            Shape.on_layer s diff || Shape.on_layer s "poly"
            || Shape.on_layer s "ndiff"
          then Some s.Shape.rect
          else None)
        (Lobj.shapes obj)
    in
    match Rect.hull_list device_rects with
    | Some hull ->
        let margin = Rules.enclosure_or_zero rules ~outer:"nwell" ~inner:diff in
        ignore (Lobj.add_shape obj ~layer:"nwell" ~rect:(Rect.inflate hull margin) ())
    | None -> ()
  end;
  Mosfet.port_on obj ~name:net_s ~net:net_s ();
  Mosfet.port_on obj ~name:net_da ~net:net_da ~layer:"metal2" ();
  Mosfet.port_on obj ~name:net_db ~net:net_db ~layer:"metal2" ();
  Mosfet.port_on obj ~name:net_ga ~net:net_ga ~layer:"metal2" ();
  Mosfet.port_on obj ~name:net_gb ~net:net_gb ~layer:"metal2" ();
  obj

(* --- symmetry verification helpers (used by tests and the Fig. 10
   bench) --- *)

(* Centroid x of a device's gate fingers (poly shapes on its net). *)
let gate_centroid obj ~net =
  let xs =
    List.filter_map
      (fun (s : Shape.t) ->
        if Shape.on_layer s "poly" && s.Shape.net = Some net then
          Some (float_of_int (Rect.center_x s.Shape.rect))
        else None)
      (Lobj.shapes obj)
  in
  match xs with
  | [] -> None
  | _ -> Some (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))

(* Wire structure summary per net: (metal1 area, metal2 area, via count) —
   equal summaries for the two inputs mean matched wiring. *)
let wiring_summary obj ~net =
  List.fold_left
    (fun (m1, m2, vias) (s : Shape.t) ->
      if s.Shape.net <> Some net then (m1, m2, vias)
      else
        match s.Shape.layer with
        | "metal1" -> (m1 + Rect.area s.Shape.rect, m2, vias)
        | "metal2" -> (m1, m2 + Rect.area s.Shape.rect, vias)
        | "via" -> (m1, m2, vias + 1)
        | _ -> (m1, m2, vias))
    (0, 0, 0) (Lobj.shapes obj)
