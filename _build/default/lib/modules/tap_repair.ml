(* Automatic latch-up repair: insert substrate taps until the Fig. 1 cover
   check passes.

   The paper's flow relies on the module writers placing taps; this is the
   corrective extension — given a placed structure whose cover check
   fails, add minimum substrate taps near the uncovered active area.  For
   each residual rectangle the repair searches a ring of candidate
   positions around it (any tap within the latch-up distance covers it)
   and takes the first position where the tap causes no spacing violation
   against the existing geometry. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Env = Amg_core.Env
module Constraints = Amg_compact.Constraints

(* Would placing [tap] at its current position violate any pairwise rule
   against [main]?  Reuses the compactor's constraint classification so
   repair and compaction agree exactly. *)
let placement_legal rules main tap =
  List.for_all
    (fun (t : Shape.t) ->
      List.for_all
        (fun (m : Shape.t) ->
          match Constraints.relation rules m t with
          | Constraints.Separation d ->
              Rect.gap Dir.Horizontal m.Shape.rect t.Shape.rect >= d
              || Rect.gap Dir.Vertical m.Shape.rect t.Shape.rect >= d
          | Constraints.Mergeable | Constraints.Unconstrained -> true)
        (Lobj.shapes main))
    (Lobj.shapes tap)

(* Candidate tap centres around a residue: the residue centre first (it may
   be in open space), then rings of 8 positions at growing radius. *)
let candidates ~dist residue =
  let cx = Rect.center_x residue and cy = Rect.center_y residue in
  let ring r =
    [ (cx + r, cy); (cx - r, cy); (cx, cy + r); (cx, cy - r);
      (cx + r, cy + r); (cx - r, cy + r); (cx + r, cy - r); (cx - r, cy - r) ]
  in
  let step = max (Units.of_um 5.) (dist / 8) in
  (cx, cy)
  :: List.concat_map (fun k -> ring (k * step)) [ 1; 2; 3; 4; 5; 6 ]

(* The tap covers the residue iff the inflated tap contains it. *)
let covers ~dist tap_rect residue =
  Rect.contains_rect (Rect.inflate tap_rect dist) residue

let repair env ?(net = "vss") ?(max_taps = 32) obj =
  let tech = Env.tech env in
  let rules = Env.rules env in
  let dist = Rules.latchup_dist rules in
  let added = ref 0 in
  let progress = ref true in
  while !progress && Amg_drc.Latchup.uncovered ~tech obj <> [] && !added < max_taps do
    progress := false;
    match Amg_drc.Latchup.uncovered ~tech obj with
    | [] -> ()
    | residue :: _ ->
        let placed =
          List.exists
            (fun (x, y) ->
              let tap = Contact_row.substrate_tap env ~name:"repair_tap" ~net () in
              let tb = Lobj.bbox_exn tap in
              Lobj.translate tap
                ~dx:(x - Rect.center_x tb)
                ~dy:(y - Rect.center_y tb);
              let tap_mark =
                match Lobj.bbox_on tap Amg_drc.Latchup.tap_layer with
                | Some r -> r
                | None -> Lobj.bbox_exn tap
              in
              if covers ~dist tap_mark residue && placement_legal rules obj tap
              then begin
                ignore (Lobj.absorb obj tap);
                incr added;
                true
              end
              else false)
            (candidates ~dist residue)
        in
        if placed then progress := true
  done;
  !added

let repair_is_clean env ?net ?max_taps obj =
  ignore (repair env ?net ?max_taps obj);
  Amg_drc.Latchup.uncovered ~tech:(Env.tech env) obj = []
