(* Cross-coupled pair of inter-digitated current sources (block C): the
   ABBA finger pattern puts both devices' centroids on the same axis, so
   gradient-induced mismatch cancels to first order. *)

module Dir = Amg_geometry.Dir
module Env = Amg_core.Env

(* ABBA columns with the shared source between the pairs:
   dA  A  s  B  dB  B  s  A  dA. *)
let columns ~net_s ~net_da ~net_db ~net_ga ~net_gb =
  [
    Mos_array.Row net_da; Mos_array.Fin net_ga; Mos_array.Row net_s;
    Mos_array.Fin net_gb; Mos_array.Row net_db; Mos_array.Fin net_gb;
    Mos_array.Row net_s; Mos_array.Fin net_ga; Mos_array.Row net_da;
  ]

let make env ?(name = "cross_coupled") ?well_tap ~polarity ~w ~l ?(net_s = "vss")
    ?(net_da = "da") ?(net_db = "db") ?(net_ga = "ga") ?(net_gb = "gb") () =
  let arr =
    Mos_array.make env ~name ?well_tap ~polarity ~w ~l
      ~columns:(columns ~net_s ~net_da ~net_db ~net_ga ~net_gb)
      ~straps:
        [
          { Mos_array.strap_net = net_s; side = Dir.North; metal = Mos_array.M1 };
          { Mos_array.strap_net = net_da; side = Dir.South; metal = Mos_array.M1 };
          { Mos_array.strap_net = net_db; side = Dir.South; metal = Mos_array.M2 };
        ]
      ()
  in
  arr.Mos_array.obj

(* With both gates on one bias net — the matched current sources of block C
   driven from a single mirror. *)
let common_gate env ?(name = "cross_coupled_cs") ?well_tap ~polarity ~w ~l
    ?(net_s = "vss") ?(net_da = "da") ?(net_db = "db") ?(net_g = "vbias") () =
  let arr =
    Mos_array.make env ~name ?well_tap ~polarity ~w ~l
      ~columns:(columns ~net_s ~net_da ~net_db ~net_ga:net_g ~net_gb:net_g)
      ~straps:
        [
          { Mos_array.strap_net = net_s; side = Dir.North; metal = Mos_array.M1 };
          { Mos_array.strap_net = net_da; side = Dir.South; metal = Mos_array.M1 };
          { Mos_array.strap_net = net_db; side = Dir.South; metal = Mos_array.M2 };
        ]
      ()
  in
  arr.Mos_array.obj
