(** General inter-digitated MOS array engine.

    A module is a west-to-east column list alternating diffusion contact
    rows and gate fingers, plus a strap plan.  Expresses current mirrors
    (block B), cross-coupled current sources (block C), and the
    common-centroid structures of module E. *)

type column =
  | Row of string  (** diffusion contact row on the given net *)
  | Fin of string  (** gate finger with the given gate net *)

type metal = M1 | M2

type strap = {
  strap_net : string;
  side : Amg_geometry.Dir.t;  (** which side of the array the bar lands on *)
  metal : metal;              (** M2 bars connect to their rows through vias
                                  and may cross the M1 bars *)
}

type t = {
  obj : Amg_layout.Lobj.t;
  rows : (string * Amg_layout.Lobj.t) list;
  fins : (string * Amg_layout.Lobj.t) list;
  pads : (string * Amg_geometry.Rect.t) list;
      (** gate-net landing-pad metal rectangles *)
}

val make :
  Amg_core.Env.t ->
  ?name:string ->
  ?gate_tracks:bool ->
  ?well_tap:string ->
  polarity:Mosfet.polarity ->
  w:int ->
  l:int ->
  columns:column list ->
  straps:strap list ->
  unit ->
  t
(** Build the array.  Columns must alternate [Row]/[Fin], starting and
    ending with [Row].  [gate_tracks] (default true) collects multi-pad
    gate nets on stacked metal2 tracks with metal1 drops; disable it when
    the parent does its own gate wiring (common-centroid modules).  Every gate finger receives a poly landing pad with
    a metal1 port; every strapped net receives a port on its strap metal.
    PMOS arrays get their n-well automatically; [well_tap] additionally
    places a well-tie contact row (with its latch-up marker and a port) on
    the given net inside the well.
    @raise Amg_core.Env.Rejected on malformed column lists. *)
