(* Stacked transistors (§1 lists them among the required module types):
   [stages] gates in series over one diffusion column — the standard way to
   realise a very long channel (large-L current sources) in a compact
   square module.  The intermediate diffusions between the gates are the
   internal series nodes; only the two ends are contacted. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module Prim = Amg_core.Prim
module Build = Amg_core.Build

(* One horizontal gate stage crossing the vertical diffusion column. *)
let stage env ~diff ~w ~l ~net_g =
  let o = Lobj.create "stage" in
  let _ =
    Prim.tworects env o ~layer_a:"poly" ~layer_b:diff ~w ~l ~net_a:net_g
      ~orient:`Horizontal ()
  in
  o

let series env ?(name = "stacked") ~polarity ~w ~l ~stages ?(net_g = "g")
    ?(net_a = "a") ?(net_b = "b") ?(well = true) () =
  if stages < 1 then Env.reject "stacked: needs at least one stage";
  let rules = Env.rules env in
  let diff = Mosfet.diffusion_layer polarity in
  let obj = Lobj.create name in
  (* Bottom contact row, then the gate stages climbing north, then the top
     row; consecutive stages' diffusions overlap and merge into the series
     column. *)
  let row net = Contact_row.make env ~name:"row" ~layer:diff ~l:w ~net () in
  Build.compact env ~into:obj (row net_a) Dir.South;
  for _ = 1 to stages do
    Build.compact env ~into:obj ~ignore_layers:[ diff ] ~align:`Center
      (stage env ~diff ~w ~l ~net_g)
      Dir.North
  done;
  Build.compact env ~into:obj ~ignore_layers:[ diff ] ~align:`Center (row net_b)
    Dir.North;
  (* Vertical poly bar on the east strapping all gates, with its contact
     pad at the top. *)
  let bbox = Lobj.bbox_exn obj in
  let bar = Lobj.create "gatebar" in
  let bw = Rules.width rules "poly" in
  let _ =
    Lobj.add_shape bar ~layer:"poly"
      ~rect:(Rect.of_size ~x:0 ~y:0 ~w:bw ~h:(Rect.height bbox))
      ~net:net_g ()
  in
  Build.compact env ~into:obj ~align:`Center bar Dir.West;
  let polycon = Contact_row.make env ~name:"polycon" ~layer:"poly" ~net:net_g () in
  Build.compact env ~into:obj ~ignore_layers:[ "poly" ] ~align:`Max polycon
    Dir.South;
  if polarity = Mosfet.Pmos && well then ignore (Prim.around env obj ~layer:"nwell" ());
  Mosfet.port_on obj ~name:net_a ~net:net_a ();
  Mosfet.port_on obj ~name:net_b ~net:net_b ();
  Mosfet.port_on obj ~name:net_g ~net:net_g ();
  obj
