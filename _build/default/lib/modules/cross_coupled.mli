(** Cross-coupled pair of inter-digitated current sources (block C).

    ABBA finger pattern (dA A s B dB B s A dA), shared source rail on
    metal1 north, drain A on metal1 south, drain B on metal2 south crossing
    the other rails through vias.  Gates on separate nets ({!make}) or tied
    to one bias net ({!common_gate}). *)

val columns :
  net_s:string ->
  net_da:string ->
  net_db:string ->
  net_ga:string ->
  net_gb:string ->
  Mos_array.column list

val make :
  Amg_core.Env.t ->
  ?name:string ->
  ?well_tap:string ->
  polarity:Mosfet.polarity ->
  w:int ->
  l:int ->
  ?net_s:string ->
  ?net_da:string ->
  ?net_db:string ->
  ?net_ga:string ->
  ?net_gb:string ->
  unit ->
  Amg_layout.Lobj.t

val common_gate :
  Amg_core.Env.t ->
  ?name:string ->
  ?well_tap:string ->
  polarity:Mosfet.polarity ->
  w:int ->
  l:int ->
  ?net_s:string ->
  ?net_da:string ->
  ?net_db:string ->
  ?net_g:string ->
  unit ->
  Amg_layout.Lobj.t
