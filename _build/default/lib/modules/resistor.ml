(* Poly serpentine resistor.

   The resistance is realised as squares of the poly sheet: the requested
   number of squares is folded into horizontal legs connected by end bends
   (each corner square counted as 0.56 squares, the usual approximation),
   with contact-row heads at both ends. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Rules = Amg_tech.Rules
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module Build = Amg_core.Build
module Path = Amg_route.Path

let corner_squares = 0.56

(* Serpentine centre-line for [squares] squares of width [w], legs at most
   [max_leg] long.  [gap] is the leg-to-leg clearance; the caller widens it
   so the contact heads at the ends clear the neighbouring leg. *)
let serpentine ~w ~gap ~squares ~max_leg =
  if squares <= 0. then invalid_arg "Resistor.serpentine: squares <= 0";
  let total_len = int_of_float (squares *. float_of_int w) in
  let leg = max w (min max_leg total_len) in
  let pitch = w + gap in
  let rec go remaining x_start y dir acc =
    if remaining <= 0 then List.rev acc
    else begin
      let run = min leg remaining in
      let x_end = if dir > 0 then x_start + run else x_start - run in
      let acc = (x_end, y) :: acc in
      let remaining = remaining - run in
      if remaining <= 0 then List.rev acc
      else
        (* The vertical hop is resistive film too: its length counts
           against the requested squares (at least one unit of leg must
           remain so the far head lands on a horizontal run). *)
        let acc = (x_end, y + pitch) :: acc in
        go (max w (remaining - pitch)) x_end (y + pitch) (-dir) acc
    end
  in
  go total_len 0 0 1 [ (0, 0) ]

let squares_of_points ~w points =
  let bends = max 0 (List.length points - 2) in
  let len = Path.length points in
  (float_of_int len /. float_of_int w)
  -. (float_of_int bends *. (1. -. corner_squares))

let make env ?(name = "resistor") ?(layer = "poly") ~squares ?width
    ?(max_leg = Amg_geometry.Units.of_um 40.) ?(net_a = "a") ?(net_b = "b") () =
  let rules = Env.rules env in
  let w = Option.value ~default:(Rules.width rules layer) width in
  let sheet =
    match Technology.layer (Env.tech env) layer with
    | Some l -> l.Layer.sheet_res
    | None -> 0.
  in
  (* Clearance: the contact head centred on a leg end must clear the
     neighbouring leg by the poly spacing rule. *)
  let head_extent =
    Amg_layout.Derive.min_container_extent rules ~container_layer:layer
      ~cut_layer:"contact"
  in
  let spacing = Option.value ~default:w (Rules.space rules layer layer) in
  let gap = spacing + max 0 (head_extent - w) in
  let points = serpentine ~w ~gap ~squares ~max_leg in
  let body = Lobj.create name in
  (* The body carries no net: both heads contact the same resistive film. *)
  let _ = Path.draw body ~layer ~width:w points in
  let obj = Lobj.create name in
  Build.compact env ~into:obj body Dir.West;
  (* The resistor-body marker keeps the DRC short check from treating the
     film as a conductor between the two head nets. *)
  (match Lobj.bbox obj with
  | Some rect -> ignore (Lobj.add_shape obj ~layer:"resmark" ~rect ())
  | None -> ());
  (* Contact heads at the two ends of the serpentine. *)
  let head net (x, y) =
    let h = Contact_row.make env ~name:"head" ~layer ~net () in
    let hb = Lobj.bbox_exn h in
    Lobj.translate h
      ~dx:(x - Rect.center_x hb)
      ~dy:(y - Rect.center_y hb);
    (* Absorb directly: the head lands on the film end. *)
    ignore (Lobj.absorb obj h)
  in
  let first = List.nth points 0 in
  let last = List.nth points (List.length points - 1) in
  head net_a first;
  head net_b last;
  Mosfet.port_on obj ~name:net_a ~net:net_a ();
  Mosfet.port_on obj ~name:net_b ~net:net_b ();
  (obj, squares_of_points ~w points *. sheet)
