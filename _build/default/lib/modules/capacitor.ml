(* Poly/poly2 plate capacitor.

   The bottom plate is poly with a contact tab on the west; the top plate
   is poly2 inside it with its own metal1/contact array.  The capacitance
   is set by the poly2 area times the technology's poly2 area
   capacitance. *)

module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Rules = Amg_tech.Rules
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module Prim = Amg_core.Prim
module Margins = Amg_core.Margins

(* Top-plate side length (square plate) for the requested capacitance in
   fF. *)
let plate_side env ~cap_ff =
  let cap_per_um2 =
    match Technology.layer (Env.tech env) "poly2" with
    | Some l -> l.Layer.area_cap (* aF / um^2 *)
    | None -> 0.
  in
  if cap_per_um2 <= 0. then Env.reject "capacitor: poly2 has no area capacitance";
  let area_um2 = cap_ff *. 1000. /. cap_per_um2 in
  let side_um = sqrt area_um2 in
  Units.snap_up ~grid:(Env.grid env) (Units.of_um side_um)

let make env ?(name = "capacitor") ~cap_ff ?(net_top = "top") ?(net_bot = "bot") () =
  let rules = Env.rules env in
  let side = plate_side env ~cap_ff in
  let m = Rules.enclosure_or_zero rules ~outer:"poly" ~inner:"poly2" in
  (* Bottom-plate contact tab west of the top plate: wide enough for a
     contact row plus clearance to the top plate. *)
  let tab = Amg_layout.Derive.min_container_extent rules ~container_layer:"poly" ~cut_layer:"contact"
            + Rules.width rules "poly" in
  let obj = Lobj.create name in
  let bottom =
    Prim.raw obj ~layer:"poly"
      ~rect:(Rect.of_size ~x:(-m - tab) ~y:(-m) ~w:(side + (2 * m) + tab) ~h:(side + (2 * m)))
      ~net:net_bot ()
  in
  let top =
    Prim.raw obj ~layer:"poly2" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:side ~h:side)
      ~net:net_top ()
  in
  (* Top-plate metal and contact array inside the poly2. *)
  let mm = Margins.inside rules ~outer:"poly2" ~inner:"metal1" in
  let metal =
    Prim.raw obj ~layer:"metal1"
      ~rect:(Rect.inflate top.Amg_layout.Shape.rect (-mm))
      ~net:net_top ()
  in
  let _ = Prim.array env obj ~layer:"contact" ~net:net_top ~within:[ top; metal ] () in
  (* Bottom-plate contact row on the tab. *)
  let tab_window =
    Rect.make
      ~x0:(-m - tab)
      ~y0:(-m)
      ~x1:(-m - Rules.width rules "poly")
      ~y1:(side + m)
  in
  let land_ = Prim.raw obj ~layer:"poly" ~rect:tab_window ~net:net_bot () in
  let mbot =
    Prim.raw obj ~layer:"metal1"
      ~rect:(Rect.inflate tab_window (-Margins.inside rules ~outer:"poly" ~inner:"metal1"))
      ~net:net_bot ()
  in
  let _ = Prim.array env obj ~layer:"contact" ~net:net_bot ~within:[ land_; mbot ] () in
  ignore bottom;
  Mosfet.port_on obj ~name:net_top ~net:net_top ();
  Mosfet.port_on obj ~name:net_bot ~net:net_bot ();
  let cap_per_um2 =
    match Technology.layer (Env.tech env) "poly2" with
    | Some l -> l.Layer.area_cap
    | None -> 0.
  in
  (* The array call may have expanded the plates; re-fetch the top plate. *)
  let top_rect =
    match Lobj.find obj top.Amg_layout.Shape.id with
    | Some s -> s.Amg_layout.Shape.rect
    | None -> top.Amg_layout.Shape.rect
  in
  let actual_ff = cap_per_um2 *. (float_of_int (Rect.area top_rect) /. 1.0e6) /. 1000. in
  (obj, actual_ff)
