(* General inter-digitated MOS array engine.

   A module is described west-to-east as a column list alternating contact
   rows (with per-row nets) and gate fingers (with per-finger gate nets),
   plus a strap plan.  This single engine expresses the paper's block
   modules: simple and symmetric current mirrors (block B), cross-coupled
   current sources (block C), and — with dummies — the common-centroid
   differential pair of module E.

   Wiring resources:
   - row nets are strapped by metal1 bars north/south (variable row-metal
     edges let the compactor shrink foreign rows out of the way, Fig. 5);
   - additional nets use metal2 bars with via connections, so they may
     cross the metal1 straps;
   - every gate finger gets a poly landing pad; gate nets are collected on
     metal tracks above the array. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Env = Amg_core.Env
module Prim = Amg_core.Prim
module Build = Amg_core.Build
module Path = Amg_route.Path
module Wire = Amg_route.Wire

type column = Row of string | Fin of string
(* [Row net]: a diffusion contact row on the given net.
   [Fin gate_net]: a gate finger. *)

type metal = M1 | M2

type strap = { strap_net : string; side : Dir.t; metal : metal }

type t = {
  obj : Lobj.t;
  rows : (string * Lobj.t) list;     (* net, placed row object *)
  fins : (string * Lobj.t) list;     (* gate net, placed finger object *)
  pads : (string * Rect.t) list;     (* gate net, landing-pad metal rect *)
}

let validate columns =
  let rec ok = function
    | Row _ :: (Fin _ :: _ as rest) -> ok rest
    | Fin _ :: (Row _ :: _ as rest) -> ok rest
    | [ Row _ ] -> true
    | _ -> false
  in
  match columns with
  | Row _ :: _ when ok columns -> ()
  | _ ->
      Env.reject
        "mos_array: columns must alternate Row and Fin, starting and ending with Row"

let finger env ~diff ~w ~l ~net_g =
  let o = Lobj.create "finger" in
  let _ = Prim.tworects env o ~layer_a:"poly" ~layer_b:diff ~w ~l ~net_a:net_g () in
  o

let strap_bar env ~name ~layer ~len ~net =
  let o = Lobj.create name in
  let width = Rules.width (Env.rules env) layer in
  let _ = Lobj.add_shape o ~layer ~rect:(Rect.of_size ~x:0 ~y:0 ~w:len ~h:width) ~net () in
  o

(* Gate landing pad: poly + metal1 + contact, at least one contact wide. *)
let gate_pad env ~net_g =
  Contact_row.make env ~name:"gatepad" ~layer:"poly" ~net:net_g ()

let center_x_of obj =
  match Lobj.bbox obj with
  | Some r -> Rect.center_x r
  | None -> 0

let make env ?(name = "mos_array") ?(gate_tracks = true) ?well_tap ~polarity ~w ~l ~columns ~straps () =
  validate columns;
  let rules = Env.rules env in
  let diff = Mosfet.diffusion_layer polarity in
  let obj = Lobj.create name in
  (* 1. Columns, west to east. *)
  let rows = ref [] and fins = ref [] in
  List.iter
    (fun col ->
      match col with
      | Row net ->
          let row =
            Contact_row.make env ~name:"row" ~layer:diff ~w ~net
              ~var_edges:[ Dir.North; Dir.South ] ()
          in
          Build.compact env ~into:obj ~ignore_layers:[ diff ] row Dir.West;
          rows := (net, row) :: !rows
      | Fin net_g ->
          let fin = finger env ~diff ~w ~l ~net_g in
          Build.compact env ~into:obj ~ignore_layers:[ diff ] fin Dir.West;
          fins := (net_g, fin) :: !fins)
    columns;
  let rows = List.rev !rows and fins = List.rev !fins in
  let array_bbox = Lobj.bbox_exn obj in
  (* When every finger shares one gate net, strap the gates with a plain
     poly bar and a single contact row on its western extension (the
     Interdigitated style): no landing pads and no metal2 track means
     nothing fences the rows in.  Multi-net arrays fall back to per-finger
     pads with stacked metal2 tracks. *)
  let gate_nets_all =
    List.sort_uniq compare (List.map fst fins)
  in
  let single_gate_net =
    match gate_nets_all with [ _ ] -> gate_tracks | _ -> false
  in
  if single_gate_net then begin
    let net_g = List.hd gate_nets_all in
    let bar_ext =
      Amg_layout.Derive.min_container_extent rules ~container_layer:"poly"
        ~cut_layer:"contact"
      + Rules.space_exn rules "metal1" "metal1"
    in
    let span0 = Rect.width array_bbox in
    let bar = strap_bar env ~name:"gatebar" ~layer:"poly" ~len:(span0 + bar_ext) ~net:net_g in
    Build.compact env ~into:obj ~align:`Max bar Dir.South;
    let polycon =
      Contact_row.make env ~name:"polycon" ~layer:"poly" ~net:net_g ()
    in
    Build.compact env ~into:obj ~ignore_layers:[ "poly" ] ~align:`Min polycon
      Dir.South
  end;
  (* 2. Gate landing pads above each finger (multi-net arrays only). *)
  let pads =
    if single_gate_net then []
    else
      List.map
        (fun (net_g, fin) ->
        let pad = gate_pad env ~net_g in
        (* Centre the pad on its finger before compacting it down. *)
        (match (Lobj.bbox pad, Lobj.bbox_on fin "poly") with
        | Some pb, Some fb ->
            Lobj.translate pad ~dx:(Rect.center_x fb - Rect.center_x pb) ~dy:0
        | _ -> ());
        Build.compact env ~into:obj ~ignore_layers:[ "poly" ] pad Dir.South;
        let metal_rect =
          match Lobj.bbox_on pad "metal1" with
          | Some r -> r
          | None -> Rect.of_size ~x:(center_x_of pad) ~y:0 ~w:0 ~h:0
        in
        (net_g, metal_rect))
      fins
  in
  (* 2b. Gate tracks: gate nets with several pads are collected on stacked
     metal2 bars above the pads.  Each pad rises on a metal1 drop (which may
     legally cross foreign metal2 tracks) and changes layer with a via at
     its own track, so any finger pattern — nested or interleaved — routes
     without planarity restrictions. *)
  let gate_nets =
    List.fold_left
      (fun acc (g, _) -> if List.mem g acc then acc else acc @ [ g ])
      [] fins
  in
  let multi_pad_nets =
    if not gate_tracks then []
    else
      List.filter
        (fun g ->
          List.length (List.filter (fun (g', _) -> String.equal g g') pads) > 1)
        gate_nets
  in
  let pads_top =
    List.fold_left (fun acc (_, r) -> max acc r.Rect.y1) min_int pads
  in
  let m1w = Rules.width rules "metal1" in
  let m2w = Rules.width rules "metal2" in
  let m2s = Rules.space_exn rules "metal2" "metal2" in
  let track_info =
    List.map
      (fun g ->
        let xs =
          List.filter_map
            (fun (g', r) -> if String.equal g g' then Some (Rect.center_x r) else None)
            pads
        in
        let lo = List.fold_left min max_int xs and hi = List.fold_left max min_int xs in
        (g, lo, hi))
      multi_pad_nets
    |> List.sort (fun (_, lo1, hi1) (_, lo2, hi2) -> compare (hi1 - lo1) (hi2 - lo2))
  in
  List.iteri
    (fun k (g, lo, hi) ->
      let y0 = pads_top + (2 * m2w) + (k * (m2w + m2s)) in
      let yc = y0 + (m2w / 2) in
      let track = Rect.make ~x0:(lo - m2w) ~y0 ~x1:(hi + m2w) ~y1:(y0 + m2w) in
      let _ = Lobj.add_shape obj ~layer:"metal2" ~rect:track ~net:g () in
      List.iter
        (fun (g', pr) ->
          if String.equal g g' then begin
            let x = Rect.center_x pr in
            let _ =
              Path.draw obj ~layer:"metal1" ~width:m1w ~net:g
                [ (x, Rect.center_y pr); (x, yc) ]
            in
            let _ = Wire.via env obj ~at:(x, yc) ~net:g () in
            ()
          end)
        pads)
    track_info;
  (* 3. Metal1 straps (successively compacted; rows of other nets shrink
     out of the way through their variable edges). *)
  let span = Rect.width array_bbox in
  List.iter
    (fun s ->
      match s.metal with
      | M1 ->
          (* Overhang beyond the gate-track span so a parent router can
             via onto the strap clear of the metal2 underneath. *)
          let bar =
            strap_bar env ~name:(s.strap_net ^ "_strap") ~layer:"metal1"
              ~len:(span + (2 * Units.of_um 4.))
              ~net:s.strap_net
          in
          Build.compact env ~into:obj ~align:`Center bar (Dir.opposite s.side)
      | M2 -> ())
    straps;
  (* 4. Metal2 straps with via connections to their rows. *)
  List.iter
    (fun s ->
      match s.metal with
      | M2 ->
          (* Inner span only: covering just this net's rows leaves escape
             lanes at the block edges for a parent router. *)
          let xs =
            List.filter_map
              (fun (net, row) ->
                if String.equal net s.strap_net then
                  Option.map Rect.center_x (Lobj.bbox row)
                else None)
              rows
          in
          let len =
            match xs with
            | [] -> span
            | x :: _ ->
                let lo = List.fold_left min x xs and hi = List.fold_left max x xs in
                hi - lo + (2 * Rules.width rules "metal2")
          in
          let bar =
            strap_bar env ~name:(s.strap_net ^ "_strap2") ~layer:"metal2" ~len
              ~net:s.strap_net
          in
          Build.compact env ~into:obj ~align:`Center bar (Dir.opposite s.side);
          let strap_rect =
            match Lobj.bbox_on bar "metal2" with
            | Some r -> r
            | None -> array_bbox
          in
          (* The row objects hold pre-shrink geometry; look the current row
             metal up in the main object by net and x position (straps only
             shrink rows vertically). *)
          let current_row_metal ~net ~x =
            List.find_opt
              (fun (sh : Shape.t) ->
                Shape.on_layer sh "metal1"
                && sh.Shape.net = Some net
                && abs (Rect.center_x sh.Shape.rect - x) < Units.of_um 1.)
              (Lobj.shapes obj)
          in
          List.iter
            (fun (net, row) ->
              if String.equal net s.strap_net then begin
                match
                  Option.bind (Lobj.bbox_on row "metal1") (fun stale ->
                      Option.map
                        (fun (sh : Shape.t) -> sh.Shape.rect)
                        (current_row_metal ~net ~x:(Rect.center_x stale)))
                with
                | Some rm ->
                    let x = Rect.center_x rm in
                    (* Via inside the row metal, then a metal2 path down/up
                       to the strap (it may cross the metal1 straps). *)
                    let via_y =
                      if s.side = Dir.South then rm.Rect.y0 + Units.of_um 1.
                      else rm.Rect.y1 - Units.of_um 1.
                    in
                    let _ = Wire.via env obj ~at:(x, via_y) ~net:s.strap_net () in
                    let _ =
                      Path.draw obj ~layer:"metal2"
                        ~width:(Rules.width rules "metal2")
                        ~net:s.strap_net
                        [ (x, via_y); (x, Rect.center_y strap_rect) ]
                    in
                    ()
                | None -> ()
              end)
            rows
      | M1 -> ())
    straps;
  (* 5. Well for PMOS: an optional well-tap row north of the structure
     (tied to [well_tap]'s net, marked for the latch-up check), then the
     well as the hull of all device layers plus the margin. *)
  if polarity = Mosfet.Pmos then begin
    (match well_tap with
    | Some tap_net ->
        let tap = Contact_row.well_tap env ~net:tap_net () in
        Lobj.remove_port tap "tap";
        (* Approach from the side whose strap carries the tap net so the
           tap metal auto-connects with that strap instead of sitting as
           an isolated island behind the other straps. *)
        let dir =
          match
            List.find_opt
              (fun st -> String.equal st.strap_net tap_net)
              straps
          with
          | Some { side = Dir.South; _ } -> Dir.North
          | Some { side = Dir.East; _ } -> Dir.West
          | Some { side = Dir.West; _ } -> Dir.East
          | _ -> Dir.South
        in
        Build.compact env ~into:obj ~align:`Center tap dir;
        Mosfet.port_on obj ~name:tap_net ~net:tap_net ()
    | None -> ());
    let device_rects =
      List.filter_map
        (fun (sh : Shape.t) ->
          if
            Shape.on_layer sh diff || Shape.on_layer sh "poly"
            || Shape.on_layer sh "ndiff"
          then Some sh.Shape.rect
          else None)
        (Lobj.shapes obj)
    in
    match Rect.hull_list device_rects with
    | Some hull ->
        let margin = Rules.enclosure_or_zero rules ~outer:"nwell" ~inner:diff in
        ignore (Lobj.add_shape obj ~layer:"nwell" ~rect:(Rect.inflate hull margin) ())
    | None -> ()
  end;
  (* 6. Ports for every strapped net and every gate net; M2-strapped nets
     additionally expose their row metal as a metal1 port so a parent
     router can escape through the array (the strap itself may be fenced in
     by other metal2). *)
  List.iter
    (fun s ->
      Mosfet.port_on obj ~name:s.strap_net ~net:s.strap_net
        ~layer:(match s.metal with M1 -> "metal1" | M2 -> "metal2")
        ();
      match s.metal with
      | M2 -> Mosfet.port_on obj ~name:s.strap_net ~net:s.strap_net ~layer:"metal1" ()
      | M1 -> ())
    straps;
  List.iter
    (fun (net_g, rect) ->
      if Lobj.port obj net_g = None then
        if List.mem net_g multi_pad_nets then
          Mosfet.port_on obj ~name:net_g ~net:net_g ~layer:"metal2" ()
        else ignore (Lobj.add_port obj ~name:net_g ~net:net_g ~layer:"metal1" ~rect))
    pads;
  if single_gate_net then
    List.iter
      (fun g -> if Lobj.port obj g = None then Mosfet.port_on obj ~name:g ~net:g ())
      gate_nets_all;
  { obj; rows; fins; pads }
