(* Euler-path finger ordering for diffusion sharing.

   A bank of same-polarity transistors maps to a multigraph: nodes are the
   source/drain nets, one edge per channel finger.  A trail through the
   graph is exactly a legal Mos_array column list — consecutive fingers
   share the diffusion row between them.  Fewest trails = fewest diffusion
   breaks = minimal width: a connected component needs one trail when it
   has at most two odd-degree nodes, and [odd/2] trails otherwise
   (classic Euler condition).

   This is how analog module generators derive e.g. the mirror pattern
   "din | g | s | g | dout" from the schematic alone, instead of the
   designer writing the ordering down. *)

module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env

type device = {
  e_name : string;
  e_g : string;
  e_s : string;
  e_d : string;
  e_fingers : int;
}

let device ?(fingers = 1) ~name ~g ~s ~d () =
  if fingers < 1 then Env.reject "Euler.device: fingers < 1";
  { e_name = name; e_g = g; e_s = s; e_d = d; e_fingers = fingers }

(* --- multigraph ------------------------------------------------------- *)

type edge = { id : int; a : string; b : string; gate : string }

let edges_of_devices devs =
  List.concat_map
    (fun d ->
      List.init d.e_fingers (fun _ ->
          (d.e_s, d.e_d, d.e_g)))
    devs
  |> List.mapi (fun id (a, b, gate) -> { id; a; b; gate })

let other e n = if String.equal e.a n then e.b else e.a

(* Hierholzer with circuit splicing: walk a trail from [start], then keep
   splicing circuits at visited nodes until no node on the trail has an
   unused incident edge.  Returns the trail as (start_node, edge list). *)
let walk_trail ~adj ~used start =
  let next_unused n =
    List.find_opt (fun (e : edge) -> not used.(e.id)) (Hashtbl.find_opt adj n |> Option.value ~default:[])
  in
  let rec greedy n acc =
    match next_unused n with
    | None -> List.rev acc
    | Some e ->
        used.(e.id) <- true;
        greedy (other e n) (e :: acc)
  in
  let trail = ref (greedy start []) in
  let rec splice () =
    (* Find a position whose node still has unused edges; insert a circuit
       there. *)
    let rec nodes_along n = function
      | [] -> [ (n, []) ]
      | e :: rest -> (n, e :: rest) :: nodes_along (other e n) rest
    in
    let positions = nodes_along start !trail in
    match
      List.find_opt (fun (n, _) -> next_unused n <> None) positions
    with
    | None -> ()
    | Some (n, suffix) ->
        let circuit = greedy n [] in
        (* Replace the suffix starting at this node by circuit @ suffix. *)
        let prefix_len = List.length !trail - List.length suffix in
        let prefix = List.filteri (fun i _ -> i < prefix_len) !trail in
        trail := prefix @ circuit @ suffix;
        splice ()
  in
  splice ();
  (start, !trail)

let trails devs =
  let real_edges = edges_of_devices devs in
  let n_real = List.length real_edges in
  (* Connected components over the nets. *)
  let nets =
    List.concat_map (fun e -> [ e.a; e.b ]) real_edges
    |> List.sort_uniq String.compare
  in
  let parent = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace parent n n) nets;
  let rec find n =
    let p = Hashtbl.find parent n in
    if String.equal p n then n
    else begin
      let r = find p in
      Hashtbl.replace parent n r;
      r
    end
  in
  List.iter
    (fun e ->
      let ra = find e.a and rb = find e.b in
      if not (String.equal ra rb) then Hashtbl.replace parent ra rb)
    real_edges;
  let components =
    List.sort_uniq String.compare (List.map find nets)
  in
  List.concat_map
    (fun root ->
      let edges =
        List.filter (fun e -> String.equal (find e.a) root) real_edges
      in
      let comp_nets =
        List.filter (fun n -> String.equal (find n) root) nets
      in
      let degree n =
        List.fold_left
          (fun acc e ->
            acc
            + (if String.equal e.a n then 1 else 0)
            + (if String.equal e.b n then 1 else 0))
          0 edges
      in
      let odds = List.filter (fun n -> degree n mod 2 = 1) comp_nets in
      (* Keep two odd nodes as the open trail's endpoints; pair the rest
         with virtual break edges.  After pairing the component has an
         Euler trail, which we then split at the virtual edges. *)
      let rec pair_up k = function
        | a :: b :: rest ->
            { id = n_real + k; a; b; gate = "" } :: pair_up (k + 1) rest
        | _ -> []
      in
      let virtuals =
        match odds with _ :: _ :: rest -> pair_up 0 rest | _ -> []
      in
      let edges = edges @ virtuals in
      let adj : (string, edge list) Hashtbl.t = Hashtbl.create 16 in
      let add n e =
        Hashtbl.replace adj n
          (e :: (Hashtbl.find_opt adj n |> Option.value ~default:[]))
      in
      List.iter
        (fun e ->
          add e.a e;
          if not (String.equal e.a e.b) then add e.b e)
        edges;
      let max_id = List.fold_left (fun m e -> max m e.id) 0 edges in
      let used = Array.make (max_id + 1) false in
      let start = match odds with o :: _ -> o | [] -> root in
      let s0, trail = walk_trail ~adj ~used start in
      assert (List.for_all (fun (e : edge) -> used.(e.id)) edges);
      (* Split at virtual edges. *)
      let rec split cur_start cur_rev = function
        | [] -> [ (cur_start, List.rev cur_rev) ]
        | e :: rest when e.id >= n_real ->
            let node_after =
              (* The node the walk is at after traversing [e]. *)
              let node_before =
                match cur_rev with
                | last :: _ ->
                    (* end node of cur_rev walk *)
                    let rec walk n = function
                      | [] -> n
                      | x :: xs -> walk (other x n) xs
                    in
                    ignore last;
                    walk cur_start (List.rev cur_rev)
                | [] -> cur_start
              in
              other e node_before
            in
            (cur_start, List.rev cur_rev) :: split node_after [] rest
        | e :: rest -> split cur_start (e :: cur_rev) rest
      in
      split s0 [] trail
      |> List.filter (fun (_, es) -> es <> []))
    components

(* A trail as Mos_array columns: Row n0, Fin g1, Row n1, ... *)
let columns_of_trail (start, edges) =
  let rec go n = function
    | [] -> [ Mos_array.Row n ]
    | e :: rest -> Mos_array.Row n :: Mos_array.Fin e.gate :: go (other e n) rest
  in
  go start edges

let column_plans devs = List.map columns_of_trail (trails devs)

type stats = {
  fingers : int;
  trails_count : int;
  rows_shared : int;    (* contact rows in the shared layout *)
  rows_unshared : int;  (* 2 per finger without sharing *)
}

let sharing_stats devs =
  let ts = trails devs in
  let fingers = List.fold_left (fun a d -> a + d.e_fingers) 0 devs in
  {
    fingers;
    trails_count = List.length ts;
    rows_shared = fingers + List.length ts;
    rows_unshared = 2 * fingers;
  }
