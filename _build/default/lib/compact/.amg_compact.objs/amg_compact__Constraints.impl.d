lib/compact/constraints.pp.ml: Amg_geometry Amg_layout Amg_tech List Ppx_deriving_runtime String
