lib/compact/edge_graph.pp.ml: Amg_geometry Amg_layout Amg_tech Array Constraints List
