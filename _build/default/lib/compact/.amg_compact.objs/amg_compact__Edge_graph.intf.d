lib/compact/edge_graph.pp.mli: Amg_geometry Amg_layout Amg_tech
