lib/compact/successive.pp.ml: Amg_geometry Amg_layout Amg_tech Constraints List Logs String
