lib/compact/constraints.pp.mli: Amg_geometry Amg_layout Amg_tech Ppx_deriving_runtime
