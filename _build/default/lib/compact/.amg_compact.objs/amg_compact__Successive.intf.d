lib/compact/successive.pp.mli: Amg_geometry Amg_layout Amg_tech
