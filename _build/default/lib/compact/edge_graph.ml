(* Baseline: classical one-dimensional constraint-graph ("edge graph")
   compaction, the general approach the paper contrasts with [17, 18].

   All shapes of a finished object are compacted simultaneously: every
   constrained pair contributes an arc, positions are solved by longest
   path.  Pairs that are currently electrically connected (same net, same
   layer, touching) are kept rigid so connectivity survives.  This is the
   comparison point for the paper's claim that successive compaction "speeds
   up the compaction time" by never creating the full edge graph. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Interval = Amg_geometry.Interval
module Rules = Amg_tech.Rules
module Shape = Amg_layout.Shape
module Lobj = Amg_layout.Lobj

type arc = { src : int; dst : int; weight : int }

type graph = { node_count : int; arcs : arc list }

let span_of axis (s : Shape.t) = Rect.span axis s.rect

(* Build the full constraint graph for compaction along [axis].  Node ids
   are indices into the shapes array; node positions are the lo coordinates
   of each shape's extent along the axis. *)
let build_graph rules axis shapes =
  let n = Array.length shapes in
  let arcs = ref [] in
  let add src dst weight = arcs := { src; dst; weight } :: !arcs in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let a = shapes.(i) and b = shapes.(j) in
        let ia = span_of axis a and ib = span_of axis b in
        (* Only emit each unordered pair once, oriented low -> high. *)
        let lower_first =
          ia.Interval.lo < ib.Interval.lo
          || (ia.Interval.lo = ib.Interval.lo && i < j)
        in
        if lower_first then
          match Constraints.relation rules a b with
          | Constraints.Separation sep
            when Constraints.shadows ~axis ~sep a.Shape.rect b.Shape.rect ->
              add i j (Interval.length ia + sep)
          | Constraints.Separation _ | Constraints.Unconstrained -> ()
          | Constraints.Mergeable ->
              if Rect.touches a.Shape.rect b.Shape.rect then begin
                (* Rigid: preserve the current offset in both directions. *)
                let d = ib.Interval.lo - ia.Interval.lo in
                add i j d;
                add j i (-d)
              end
      end
    done
  done;
  { node_count = n; arcs = !arcs }

(* Longest path from an implicit source (position 0 lower bound for every
   node).  Rigid opposite arcs may form zero-gain cycles, so we iterate to a
   fixpoint, Bellman-Ford style, and fail on positive cycles. *)
let solve g =
  let pos = Array.make g.node_count 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= g.node_count + 1 do
    changed := false;
    incr rounds;
    List.iter
      (fun { src; dst; weight } ->
        if pos.(src) + weight > pos.(dst) then begin
          pos.(dst) <- pos.(src) + weight;
          changed := true
        end)
      g.arcs
  done;
  if !changed then failwith "Edge_graph.solve: positive cycle in constraints";
  pos

(* Compact the whole object along one axis; mutates shape positions. *)
let compact_axis ~rules obj axis =
  let shapes = Array.of_list (Lobj.shapes obj) in
  let g = build_graph rules axis shapes in
  let pos = solve g in
  Array.iteri
    (fun i (s : Shape.t) ->
      let cur = (span_of axis s).Interval.lo in
      let d = pos.(i) - cur in
      if d <> 0 then
        let rect =
          match axis with
          | Dir.Horizontal -> Rect.translate s.rect ~dx:d ~dy:0
          | Dir.Vertical -> Rect.translate s.rect ~dx:0 ~dy:d
        in
        match Lobj.find obj s.Shape.id with
        | Some cur_s -> Lobj.replace obj (Shape.with_rect cur_s rect)
        | None -> ())
    shapes;
  List.length g.arcs

let compact_xy ~rules obj =
  let ax = compact_axis ~rules obj Dir.Horizontal in
  let ay = compact_axis ~rules obj Dir.Vertical in
  ax + ay
