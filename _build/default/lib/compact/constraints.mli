(** Pairwise compaction constraints.

    Distance is measured in the L∞ metric: a separation rule [sep] between
    two shapes is violated iff both their x-gap and y-gap are below [sep].
    Consequently a pair constrains movement along an axis only when the
    cross-axis projections, inflated by [sep], overlap ("shadowing"). *)

type relation =
  | Unconstrained
      (** may overlap freely (different layers without a spacing rule, or
          same potential on different layers, or an ignored layer) *)
  | Mergeable
      (** same potential, same layer: may abut or overlap — "edges on the
          same potential are not considered during compaction, because they
          can be merged" (§2.3) — but may not pass through each other *)
  | Separation of int  (** minimum L∞ distance in nm *)
[@@deriving show, eq]

val relation :
  Amg_tech.Rules.t ->
  ?ignore_layers:string list ->
  Amg_layout.Shape.t ->
  Amg_layout.Shape.t ->
  relation
(** Classify a pair under the given design rules.  [ignore_layers] is the
    compact call's "layers which are not relevant during this compaction
    step": their {e same-layer} spacing is waived (the geometries merge),
    while cross-layer rules always hold.  A rectangle fully containing the
    other on a different layer (cut-in-landing) is unconstrained. *)

val shadows :
  axis:Amg_geometry.Dir.axis ->
  sep:int ->
  Amg_geometry.Rect.t ->
  Amg_geometry.Rect.t ->
  bool

val pair_limit :
  Amg_tech.Rules.t ->
  ?ignore_layers:string list ->
  Amg_geometry.Dir.t ->
  Amg_layout.Shape.t ->
  Amg_layout.Shape.t ->
  int option
(** Signed translation bound that stationary shape [b] imposes on shape [a]
    moving in the given direction, or [None] when the pair does not
    constrain the move. *)

val tightest : Amg_geometry.Dir.t -> int list -> int option
(** Tightest of several bounds for a mover travelling in the direction:
    the maximum for South/West movement, the minimum for North/East. *)
