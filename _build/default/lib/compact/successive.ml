module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Interval = Amg_geometry.Interval
module Rules = Amg_tech.Rules
module Shape = Amg_layout.Shape
module Edge = Amg_layout.Edge
module Lobj = Amg_layout.Lobj
module Derive = Amg_layout.Derive

let src = Logs.Src.create "amg.compact" ~doc:"successive compactor"

module Log = (val Logs.src_log src : Logs.LOG)

type side = Mover | Target

type limit = { bound : int; mover : Shape.t; target : Shape.t; rel : Constraints.relation }

type align = [ `Keep | `Center | `Min | `Max ]

(* Cross-axis pre-alignment of the moving object relative to the target's
   bounding box. *)
let apply_align ~align ~(d : Dir.t) ~main obj =
  match (align, Lobj.bbox main, Lobj.bbox obj) with
  | `Keep, _, _ | _, None, _ | _, _, None -> ()
  | (`Center | `Min | `Max), Some mb, Some ob ->
      let cross = Dir.cross_axis d in
      let mi = Rect.span cross mb and oi = Rect.span cross ob in
      let shift =
        match align with
        | `Center ->
            ((mi.Interval.lo + mi.Interval.hi) - (oi.Interval.lo + oi.Interval.hi)) / 2
        | `Min -> mi.Interval.lo - oi.Interval.lo
        | `Max -> mi.Interval.hi - oi.Interval.hi
        | `Keep -> 0
      in
      (match cross with
      | Dir.Horizontal -> Lobj.translate obj ~dx:shift ~dy:0
      | Dir.Vertical -> Lobj.translate obj ~dx:0 ~dy:shift)

let collect_limits rules ?ignore_layers d ~main obj =
  List.concat_map
    (fun (a : Shape.t) ->
      List.filter_map
        (fun (b : Shape.t) ->
          match Constraints.pair_limit rules ?ignore_layers d a b with
          | Some bound ->
              Some { bound; mover = a; target = b; rel = Constraints.relation rules ?ignore_layers a b }
          | None -> None)
        (Lobj.shapes main))
    (Lobj.shapes obj)

let tightest_limit d limits =
  Constraints.tightest d (List.map (fun l -> l.bound) limits)

(* Minimum extent a shape may be shrunk to along [axis]: its layer's minimum
   width, raised to the one-cut minimum when it is a container of a
   registered cut array. *)
let min_extent rules owner (s : Shape.t) =
  let cut_layers = Lobj.array_cut_layers_of_container owner s.id in
  List.fold_left
    (fun acc cut_layer ->
      max acc (Derive.min_container_extent rules ~container_layer:s.layer ~cut_layer))
    (Rules.width rules s.layer) cut_layers

(* Shrink the [facing] edge of shape [s] (owned by [owner]) inward by
   [amount], clamped to the minimum extent; rebuilds derived arrays.
   A shrink that would slide the shape away from its array's other
   containers (leaving the array without a single cut, i.e. disconnecting
   the structure) is rolled back.  Returns how much was actually shrunk. *)
let shrink_edge rules owner (s : Shape.t) facing amount =
  let axis = Dir.axis facing in
  let extent = Interval.length (Rect.span axis s.rect) in
  let slack = extent - min_extent rules owner s in
  let step = min amount slack in
  if step <= 0 then 0
  else begin
    let r = Rect.grow_side s.rect facing (-step) in
    Lobj.replace owner (Shape.with_rect s r);
    Lobj.rederive owner rules;
    let arrays = Lobj.arrays_of_container owner s.Shape.id in
    if List.exists (fun a -> Lobj.array_member_count owner a = 0) arrays then begin
      Lobj.replace owner s;
      Lobj.rederive owner rules;
      0
    end
    else step
  end

(* One round of the variable-edge optimization of §2.3: while the binding
   constraint pair has a variable facing edge, move that edge inward until
   the pair "is no longer relevant", i.e. until another (eventually fixed)
   constraint defines the minimum distance. *)
let relax_variable_edges rules ?ignore_layers d ~main obj =
  let max_rounds = 64 in
  let rec loop round =
    if round >= max_rounds then ()
    else
      let limits = collect_limits rules ?ignore_layers d ~main obj in
      match tightest_limit d limits with
      | None -> ()
      | Some best ->
          let binding =
            List.filter
              (fun l ->
                l.bound = best
                && match l.rel with Constraints.Separation _ -> true | _ -> false)
              limits
          in
          let second =
            List.filter (fun l -> l.bound <> best) limits |> tightest_limit d
          in
          (* How much slack until the next constraint binds; unlimited when
             this pair is the only constraint. *)
          let want =
            match second with Some s -> abs (best - s) | None -> max_int / 2
          in
          let progressed = ref false in
          List.iter
            (fun l ->
              if not !progressed then begin
                (* The target's facing edge looks back at the mover
                   (opposite d); the mover's facing edge looks ahead (d). *)
                let try_side role =
                  let owner, shape, facing =
                    match role with
                    | Target -> (main, l.target, Dir.opposite d)
                    | Mover -> (obj, l.mover, d)
                  in
                  (* Re-fetch: a previous shrink may have replaced it. *)
                  match Lobj.find owner shape.Shape.id with
                  | Some s when Edge.is_variable s.Shape.sides facing ->
                      shrink_edge rules owner s facing want > 0
                  | _ -> false
                in
                if try_side Target || try_side Mover then progressed := true
              end)
            binding;
          if !progressed then loop (round + 1)
  in
  loop 0

(* Fallback when no pair constrains the move: abut bounding boxes. *)
let bbox_abut_delta d ~main obj =
  match (Lobj.bbox main, Lobj.bbox obj) with
  | Some mb, Some ob ->
      let axis = Dir.axis d in
      let mi = Rect.span axis mb and oi = Rect.span axis ob in
      if Dir.sign d < 0 then mi.Interval.hi - oi.Interval.lo
      else mi.Interval.lo - oi.Interval.hi
  | _ -> 0

let translate_along d obj delta =
  match Dir.axis d with
  | Dir.Horizontal -> Lobj.translate obj ~dx:delta ~dy:0
  | Dir.Vertical -> Lobj.translate obj ~dx:0 ~dy:delta

(* Would growing shape [s] of [owner] to [r'] violate a separation against
   any other shape of [main] or [obj]? *)
let extension_safe rules ?ignore_layers ~main ~obj (s : Shape.t) r' =
  let ok (other : Shape.t) =
    other == s
    ||
    match Constraints.relation rules ?ignore_layers s other with
    | Constraints.Unconstrained | Constraints.Mergeable -> true
    | Constraints.Separation sep ->
        let dx = Rect.gap Dir.Horizontal r' other.Shape.rect in
        let dy = Rect.gap Dir.Vertical r' other.Shape.rect in
        max dx dy >= sep
  in
  List.for_all ok (Lobj.shapes main) && List.for_all ok (Lobj.shapes obj)

(* Auto-connection (§2.3, Fig. 5a): after placement, same-layer same-net
   shape pairs whose cross-axis spans overlap but which still have a gap
   along the movement axis are connected by stretching the target shape's
   facing edge up to the mover. *)
let auto_connect rules ?ignore_layers d ~main obj =
  let axis = Dir.axis d in
  let cross = Dir.cross_axis d in
  (* Cut layers (fixed-size openings) must never be stretched. *)
  let stretchable (s : Shape.t) = Rules.cut_size_opt rules s.Shape.layer = None in
  List.iter
    (fun (a : Shape.t) ->
      List.iter
        (fun (b : Shape.t) ->
          if
            String.equal a.Shape.layer b.Shape.layer
            && Shape.same_net a b && stretchable b
          then begin
            let ia = Rect.span cross a.rect and ib = Rect.span cross b.rect in
            if Interval.overlaps ia ib then begin
              let sa = Rect.span axis a.rect and sb = Rect.span axis b.rect in
              let gap = max (sa.Interval.lo - sb.Interval.hi) (sb.Interval.lo - sa.Interval.hi) in
              if gap > 0 then begin
                (* Extend b toward a. *)
                let facing =
                  if sb.Interval.hi <= sa.Interval.lo then
                    (* b is on the low side: grow its high edge *)
                    match axis with Dir.Horizontal -> Dir.East | Vertical -> Dir.North
                  else match axis with Dir.Horizontal -> Dir.West | Vertical -> Dir.South
                in
                match Lobj.find main b.Shape.id with
                | Some cur ->
                    let r' = Rect.grow_side cur.Shape.rect facing gap in
                    if extension_safe rules ?ignore_layers ~main ~obj cur r' then
                      Lobj.replace main (Shape.with_rect cur r')
                | None -> ()
              end
            end
          end)
        (Lobj.shapes main))
    (Lobj.shapes obj)

let delta rules ?ignore_layers d ~main obj =
  let limits = collect_limits rules ?ignore_layers d ~main obj in
  match tightest_limit d limits with
  | Some bound -> bound
  | None -> bbox_abut_delta d ~main obj

(* Start the mover outside the main structure, beyond its far edge in the
   opposite direction, so that it genuinely "approaches" — otherwise a
   mover generated at the origin may begin inside the structure and
   position-dependent relations (containment) misfire. *)
let stage_outside ~grid d ~main obj =
  match (Lobj.bbox main, Lobj.bbox obj) with
  | Some mb, Some ob ->
      let axis = Dir.axis d in
      let mi = Rect.span axis mb and oi = Rect.span axis ob in
      let shift =
        if Dir.sign d < 0 then
          (* moving low-ward: start above/right of main *)
          max 0 (mi.Interval.hi + grid - oi.Interval.lo)
        else min 0 (mi.Interval.lo - grid - oi.Interval.hi)
      in
      if shift <> 0 then translate_along d obj shift
  | _ -> ()

(* The paper's compact(obj, DIR, layers): place [obj] against [main] moving
   in direction [d], then absorb it into [main].  [main] empty means the
   first compaction command simply copies the object in (§2.5). *)
let compact ~rules ~into:main ?ignore_layers ?(align = (`Keep : align))
    ?(variable_edges = true) obj d =
  (match Lobj.bbox main with
  | None -> ()
  | Some _ ->
      apply_align ~align ~d ~main obj;
      stage_outside ~grid:(Rules.grid rules) d ~main obj;
      if variable_edges then relax_variable_edges rules ?ignore_layers d ~main obj;
      let dl = delta rules ?ignore_layers d ~main obj in
      Log.debug (fun m ->
          m "compact %s into %s %s: delta=%d" (Lobj.name obj) (Lobj.name main)
            (Dir.to_string d) dl);
      translate_along d obj dl;
      auto_connect rules ?ignore_layers d ~main obj);
  ignore (Lobj.absorb main obj)
