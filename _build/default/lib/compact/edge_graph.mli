(** Baseline: general constraint-graph ("edge graph") compaction.

    The classical one-dimensional symbolic compaction the paper contrasts
    with (§2.3, refs [17, 18]): all shapes move simultaneously, every
    constrained pair becomes an arc, and positions are solved by longest
    path.  Used by the CLAIM-SPEED benchmark to quantify the speed-up of
    the successive approach. *)

type arc = { src : int; dst : int; weight : int }

type graph = { node_count : int; arcs : arc list }

val build_graph :
  Amg_tech.Rules.t -> Amg_geometry.Dir.axis -> Amg_layout.Shape.t array -> graph

val solve : graph -> int array
(** Longest-path positions (lower bound 0 per node).
    @raise Failure on a positive cycle. *)

val compact_axis :
  rules:Amg_tech.Rules.t -> Amg_layout.Lobj.t -> Amg_geometry.Dir.axis -> int
(** Compact along one axis in place; returns the number of arcs built
    (the cost the successive method avoids). *)

val compact_xy : rules:Amg_tech.Rules.t -> Amg_layout.Lobj.t -> int
(** Horizontal then vertical pass; returns total arcs built. *)
