(* All geometry in this project is carried in integer nanometres.  Design
   rules of a 1 um technology are therefore exact integers and no floating
   point rounding can ever produce an off-grid or rule-violating layout. *)

type nm = int

let nm_per_um = 1000

let of_um f = int_of_float (Float.round (f *. float_of_int nm_per_um))

let to_um n = float_of_int n /. float_of_int nm_per_um

let um = of_um

let pp_nm ppf n = Fmt.pf ppf "%gum" (to_um n)

(* Round [n] up (resp. down) to the nearest multiple of [grid] > 0. *)
let snap_up ~grid n =
  if grid <= 0 then invalid_arg "Units.snap_up: grid must be positive";
  let r = n mod grid in
  if r = 0 then n else if n >= 0 then n + (grid - r) else n - r

let snap_down ~grid n =
  if grid <= 0 then invalid_arg "Units.snap_down: grid must be positive";
  let r = n mod grid in
  if r = 0 then n else if n >= 0 then n - r else n - (grid + r)
