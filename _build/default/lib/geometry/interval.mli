(** Closed one-dimensional integer intervals.

    Rectangles are products of two intervals; all the per-axis reasoning of
    the compactor (shadow tests) and of the latch-up cover check (the
    per-axis half of Fig. 1's 16 overlap cases) lives here. *)

type t = { lo : int; hi : int } [@@deriving show, eq, ord]

type overlap =
  | Disjoint   (** no interior overlap *)
  | Covers     (** the other interval covers this one entirely *)
  | Low_end    (** overlap removes the low end, a high residue remains *)
  | High_end   (** overlap removes the high end, a low residue remains *)
  | Inside     (** strictly inside; two residues remain *)
[@@deriving show, eq, ord]

val make : int -> int -> t
(** [make a b] is the interval from [min a b] to [max a b]. *)

val length : t -> int

val is_point : t -> bool

val contains : t -> int -> bool

val contains_interval : t -> t -> bool
(** [contains_interval outer inner] is true iff [inner ⊆ outer]. *)

val inter : t -> t -> t option
(** Intersection, or [None] when the intervals do not even touch. *)

val overlaps : t -> t -> bool
(** True iff the interiors intersect (touching end-points do not count). *)

val touches : t -> t -> bool
(** True iff the closed intervals intersect (shared end-point counts). *)

val hull : t -> t -> t

val translate : t -> int -> t

val inflate : t -> int -> t
(** Grow by [d] at both ends (shrink when [d < 0]; result is normalised). *)

val classify : of_:t -> over:t -> overlap
(** [classify ~of_:b ~over:a] describes how [b] overlaps [a]. *)

val subtract : t -> t -> t list
(** [subtract a b] is the part of [a] not covered by the open interior of
    [b]: zero, one or two intervals. *)
