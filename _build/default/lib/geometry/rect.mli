(** Axis-aligned integer rectangles.

    The layout database stores only rectangles ("polygons are converted into
    simple rectangular structures", §2.1).  Coordinates are nanometres;
    rectangles are normalised so [x0 <= x1] and [y0 <= y1]. *)

type t = { x0 : int; y0 : int; x1 : int; y1 : int } [@@deriving show, eq, ord]

val make : x0:int -> y0:int -> x1:int -> y1:int -> t
(** Normalising constructor. *)

val of_corners : int * int -> int * int -> t

val of_size : x:int -> y:int -> w:int -> h:int -> t
(** Lower-left corner plus size. @raise Invalid_argument on negative size. *)

val of_center : cx:int -> cy:int -> w:int -> h:int -> t
(** Centred rectangle (integer division; use even sizes for exactness).
    @raise Invalid_argument on negative size. *)

val width : t -> int
val height : t -> int
val area : t -> int
val center_x : t -> int
val center_y : t -> int

val is_degenerate : t -> bool
(** True when the rectangle has zero width or height. *)

val x_span : t -> Interval.t
val y_span : t -> Interval.t

val span : Dir.axis -> t -> Interval.t
(** Extent along the given axis. *)

val side : t -> Dir.t -> int
(** Coordinate of the given edge. *)

val edge_interval : t -> Dir.t -> Interval.t
(** Extent of the given edge along the perpendicular axis. *)

val translate : t -> dx:int -> dy:int -> t

val inflate : t -> int -> t
(** Grow by [d] on every side (negative [d] shrinks; result normalised). *)

val inflate_xy : t -> dx:int -> dy:int -> t

val with_side : t -> Dir.t -> int -> t
(** Move one edge to an absolute coordinate (normalises if edges cross). *)

val grow_side : t -> Dir.t -> int -> t
(** Move one edge outward by [amount] (inward when negative). *)

val inter : t -> t -> t option
(** Intersection with non-empty interior, or [None]. *)

val overlaps : t -> t -> bool
(** Interiors intersect; sharing only an edge does not count. *)

val touches : t -> t -> bool
(** Closed rectangles intersect; sharing an edge or corner counts. *)

val contains_rect : t -> t -> bool
(** [contains_rect outer inner]. *)

val contains_point : t -> x:int -> y:int -> bool

val hull : t -> t -> t
(** Smallest rectangle containing both. *)

val hull_list : t list -> t option

val gap : Dir.axis -> t -> t -> int
(** Separation along [axis] between the two rectangles' projections;
    negative when the projections overlap. *)

val subtract : t -> t -> t list
(** [subtract a b] is the part of [a] not covered by [b], as up to four
    disjoint rectangles.  This is the successive-subtraction kernel of the
    paper's Fig. 1 latch-up check and handles all 16 overlap cases. *)

val overlap_case : t -> t -> Interval.overlap * Interval.overlap
(** Per-axis classification of how the second rectangle overlaps the first
    (the horizontal and vertical cases of Fig. 1). *)

val pp_um : Format.formatter -> t -> unit
(** Prints corners in micrometres. *)
