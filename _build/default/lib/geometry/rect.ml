type t = { x0 : int; y0 : int; x1 : int; y1 : int }
[@@deriving show { with_path = false }, eq, ord]

let make ~x0 ~y0 ~x1 ~y1 =
  { x0 = min x0 x1; y0 = min y0 y1; x1 = max x0 x1; y1 = max y0 y1 }

let of_corners (x0, y0) (x1, y1) = make ~x0 ~y0 ~x1 ~y1

let of_size ~x ~y ~w ~h =
  if w < 0 || h < 0 then invalid_arg "Rect.of_size: negative size";
  { x0 = x; y0 = y; x1 = x + w; y1 = y + h }

let of_center ~cx ~cy ~w ~h =
  if w < 0 || h < 0 then invalid_arg "Rect.of_center: negative size";
  (* Keep integer coordinates: the caller is responsible for even sizes when
     exact centering matters. *)
  { x0 = cx - (w / 2); y0 = cy - (h / 2); x1 = cx - (w / 2) + w; y1 = cy - (h / 2) + h }

let width r = r.x1 - r.x0
let height r = r.y1 - r.y0
let area r = width r * height r
let center_x r = (r.x0 + r.x1) / 2
let center_y r = (r.y0 + r.y1) / 2
let is_degenerate r = r.x0 >= r.x1 || r.y0 >= r.y1

let x_span r = Interval.make r.x0 r.x1
let y_span r = Interval.make r.y0 r.y1

let span axis r =
  match (axis : Dir.axis) with Horizontal -> x_span r | Vertical -> y_span r

let side r (d : Dir.t) =
  match d with North -> r.y1 | South -> r.y0 | East -> r.x1 | West -> r.x0

(* Extent of the [d] edge along the perpendicular axis. *)
let edge_interval r (d : Dir.t) = span (Dir.cross_axis d) r

let translate r ~dx ~dy =
  { x0 = r.x0 + dx; y0 = r.y0 + dy; x1 = r.x1 + dx; y1 = r.y1 + dy }

let inflate r d = make ~x0:(r.x0 - d) ~y0:(r.y0 - d) ~x1:(r.x1 + d) ~y1:(r.y1 + d)

let inflate_xy r ~dx ~dy =
  make ~x0:(r.x0 - dx) ~y0:(r.y0 - dy) ~x1:(r.x1 + dx) ~y1:(r.y1 + dy)

(* Move a single edge to absolute coordinate [pos]; normalises if crossed. *)
let with_side r (d : Dir.t) pos =
  match d with
  | North -> make ~x0:r.x0 ~y0:r.y0 ~x1:r.x1 ~y1:pos
  | South -> make ~x0:r.x0 ~y0:pos ~x1:r.x1 ~y1:r.y1
  | East -> make ~x0:r.x0 ~y0:r.y0 ~x1:pos ~y1:r.y1
  | West -> make ~x0:pos ~y0:r.y0 ~x1:r.x1 ~y1:r.y1

let grow_side r d amount = with_side r d (side r d + (Dir.sign d * amount))

let inter a b =
  let x0 = max a.x0 b.x0
  and y0 = max a.y0 b.y0
  and x1 = min a.x1 b.x1
  and y1 = min a.y1 b.y1 in
  if x0 < x1 && y0 < y1 then Some { x0; y0; x1; y1 } else None

let overlaps a b =
  (not (is_degenerate a))
  && (not (is_degenerate b))
  && a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1

let touches a b = a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1

let contains_rect outer inner =
  outer.x0 <= inner.x0 && outer.y0 <= inner.y0 && inner.x1 <= outer.x1
  && inner.y1 <= outer.y1

let contains_point r ~x ~y = r.x0 <= x && x <= r.x1 && r.y0 <= y && y <= r.y1

let hull a b =
  { x0 = min a.x0 b.x0;
    y0 = min a.y0 b.y0;
    x1 = max a.x1 b.x1;
    y1 = max a.y1 b.y1 }

let hull_list = function
  | [] -> None
  | r :: rs -> Some (List.fold_left hull r rs)

(* Minimum axis-aligned separation between two non-overlapping rectangles
   along [axis], ignoring the other axis.  Negative when they overlap. *)
let gap axis a b =
  let ia = span axis a and ib = span axis b in
  max (ib.Interval.lo - ia.Interval.hi) (ia.Interval.lo - ib.Interval.hi)

(* Subtract [b] from [a].  This is the kernel used by the latch-up rule check
   of the paper's Fig. 1: the residue is returned as up to four disjoint
   rectangles (bottom strip, top strip, left and right middle pieces), which
   covers all 16 horizontal x vertical overlap cases. *)
let subtract a b =
  match inter a b with
  | None -> [ a ]
  | Some i ->
      let pieces = ref [] in
      let add x0 y0 x1 y1 =
        if x0 < x1 && y0 < y1 then pieces := { x0; y0; x1; y1 } :: !pieces
      in
      add a.x0 a.y0 a.x1 i.y0;   (* bottom strip *)
      add a.x0 i.y1 a.x1 a.y1;   (* top strip *)
      add a.x0 i.y0 i.x0 i.y1;   (* left middle *)
      add i.x1 i.y0 a.x1 i.y1;   (* right middle *)
      List.rev !pieces

(* The Fig. 1 classification: how does [b] overlap [a], per axis. *)
let overlap_case a b =
  ( Interval.classify ~of_:(x_span b) ~over:(x_span a),
    Interval.classify ~of_:(y_span b) ~over:(y_span a) )

let pp_um ppf r =
  Fmt.pf ppf "[%g,%g - %g,%g]um" (Units.to_um r.x0) (Units.to_um r.y0)
    (Units.to_um r.x1) (Units.to_um r.y1)
