(** Length units.

    All geometry in the library is expressed in integer nanometres so that
    design-rule arithmetic is exact.  Helpers here convert between micrometres
    (the unit used in technology documentation and in the paper) and the
    internal representation. *)

type nm = int
(** A length or coordinate in nanometres. *)

val nm_per_um : int
(** Nanometres per micrometre (1000). *)

val of_um : float -> nm
(** [of_um f] converts micrometres to nanometres, rounding to the nearest
    integer nanometre. *)

val to_um : nm -> float
(** [to_um n] converts nanometres back to micrometres. *)

val um : float -> nm
(** Alias of {!of_um}; [um 1.5] reads naturally at call sites. *)

val pp_nm : Format.formatter -> nm -> unit
(** Prints a length as micrometres, e.g. [1500] prints as ["1.5um"]. *)

val snap_up : grid:int -> nm -> nm
(** [snap_up ~grid n] rounds [n] up to the next multiple of [grid].
    @raise Invalid_argument if [grid <= 0]. *)

val snap_down : grid:int -> nm -> nm
(** [snap_down ~grid n] rounds [n] down to the previous multiple of [grid].
    @raise Invalid_argument if [grid <= 0]. *)
