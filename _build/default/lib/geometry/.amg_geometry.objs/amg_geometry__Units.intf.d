lib/geometry/units.pp.mli: Format
