lib/geometry/region.pp.ml: List Rect
