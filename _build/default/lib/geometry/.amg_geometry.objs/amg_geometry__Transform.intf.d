lib/geometry/transform.pp.mli: Ppx_deriving_runtime Rect
