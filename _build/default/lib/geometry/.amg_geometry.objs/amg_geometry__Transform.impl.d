lib/geometry/transform.pp.ml: List Ppx_deriving_runtime Rect
