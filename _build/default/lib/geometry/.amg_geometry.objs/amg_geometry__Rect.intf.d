lib/geometry/rect.pp.mli: Dir Format Interval Ppx_deriving_runtime
