lib/geometry/interval.pp.mli: Ppx_deriving_runtime
