lib/geometry/interval.pp.ml: Ppx_deriving_runtime
