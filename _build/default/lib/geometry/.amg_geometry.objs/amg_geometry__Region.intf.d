lib/geometry/region.pp.mli: Rect
