lib/geometry/dir.pp.ml: Ppx_deriving_runtime String
