lib/geometry/units.pp.ml: Float Fmt
