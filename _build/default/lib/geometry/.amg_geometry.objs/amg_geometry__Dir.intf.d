lib/geometry/dir.pp.mli: Ppx_deriving_runtime
