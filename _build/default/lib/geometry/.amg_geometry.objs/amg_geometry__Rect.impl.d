lib/geometry/rect.pp.ml: Dir Fmt Interval List Ppx_deriving_runtime Units
