(** Compass directions.

    The compactor abuts an object against the main structure by moving it in
    one of the four compass directions, exactly as the paper's
    [compact(obj, SOUTH, "poly")] calls do. *)

type t = North | South | East | West [@@deriving show, eq, ord]

type axis = Horizontal | Vertical [@@deriving show, eq, ord]

val all : t list
(** The four directions, in [North; South; East; West] order. *)

val axis : t -> axis
(** Axis of movement: [East]/[West] move horizontally, [North]/[South]
    vertically. *)

val cross_axis : t -> axis
(** The axis perpendicular to the movement, used for shadow tests. *)

val opposite : t -> t
(** [opposite North = South], etc. *)

val sign : t -> int
(** [+1] for coordinate-increasing directions ([North], [East]), [-1]
    otherwise. *)

val of_string : string -> t option
(** Parses ["NORTH"], ["south"], ["E"], ["left"], … *)

val to_string : t -> string
(** Upper-case canonical name as used in the layout language. *)
