type orientation = R0 | R90 | R180 | R270 | MX | MY | MXR90 | MYR90
[@@deriving show { with_path = false }, eq, ord]

type t = { orient : orientation; dx : int; dy : int }
[@@deriving show { with_path = false }, eq, ord]

let identity = { orient = R0; dx = 0; dy = 0 }

let translation ~dx ~dy = { orient = R0; dx; dy }

let of_orientation orient = { orient; dx = 0; dy = 0 }

(* Apply only the orientation part to a point around the origin.
   MX mirrors across the x axis (flips y); MY mirrors across the y axis. *)
let orient_point orient (x, y) =
  match orient with
  | R0 -> (x, y)
  | R90 -> (-y, x)
  | R180 -> (-x, -y)
  | R270 -> (y, -x)
  | MX -> (x, -y)
  | MY -> (-x, y)
  | MXR90 -> (-y, -x)
  | MYR90 -> (y, x)

let point t (x, y) =
  let x', y' = orient_point t.orient (x, y) in
  (x' + t.dx, y' + t.dy)

let rect t (r : Rect.t) =
  let x0, y0 = point t (r.x0, r.y0) and x1, y1 = point t (r.x1, r.y1) in
  Rect.make ~x0 ~y0 ~x1 ~y1

(* Composition of the eight-element orientation group (dihedral D4). *)
let compose_orient a b =
  (* Result applies b first, then a: probe the composed map on basis points. *)
  let probe = [ (1, 0); (0, 1) ] in
  let image = List.map (fun p -> orient_point a (orient_point b p)) probe in
  match image with
  | [ (1, 0); (0, 1) ] -> R0
  | [ (0, 1); (-1, 0) ] -> R90
  | [ (-1, 0); (0, -1) ] -> R180
  | [ (0, -1); (1, 0) ] -> R270
  | [ (1, 0); (0, -1) ] -> MX
  | [ (-1, 0); (0, 1) ] -> MY
  | [ (0, -1); (-1, 0) ] -> MXR90
  | [ (0, 1); (1, 0) ] -> MYR90
  | _ -> assert false

(* [compose a b] applies [b] first, then [a]. *)
let compose a b =
  let bx, by = point a (b.dx, b.dy) in
  { orient = compose_orient a.orient b.orient; dx = bx; dy = by }

(* Mirror a rectangle across the vertical line x = axis_x. *)
let mirror_rect_x ~axis_x (r : Rect.t) =
  Rect.make ~x0:((2 * axis_x) - r.x1) ~y0:r.y0 ~x1:((2 * axis_x) - r.x0) ~y1:r.y1

(* Mirror a rectangle across the horizontal line y = axis_y. *)
let mirror_rect_y ~axis_y (r : Rect.t) =
  Rect.make ~x0:r.x0 ~y0:((2 * axis_y) - r.y1) ~x1:r.x1 ~y1:((2 * axis_y) - r.y0)
