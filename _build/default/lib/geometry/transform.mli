(** Rigid layout transforms: the eight axis-aligned orientations (dihedral
    group D4) plus a translation.  Used for symmetric module construction
    (mirrored halves of differential pairs, cross-coupled quads). *)

type orientation = R0 | R90 | R180 | R270 | MX | MY | MXR90 | MYR90
[@@deriving show, eq, ord]
(** [MX] mirrors across the x axis (flips y), [MY] across the y axis;
    [MXR90]/[MYR90] are the mirrored rotations. *)

type t = { orient : orientation; dx : int; dy : int } [@@deriving show, eq, ord]
(** Orientation applied first (around the origin), then translation. *)

val identity : t
val translation : dx:int -> dy:int -> t
val of_orientation : orientation -> t

val orient_point : orientation -> int * int -> int * int

val point : t -> int * int -> int * int

val rect : t -> Rect.t -> Rect.t

val compose_orient : orientation -> orientation -> orientation
(** [compose_orient a b] applies [b] first, then [a]. *)

val compose : t -> t -> t
(** [compose a b] applies [b] first, then [a]. *)

val mirror_rect_x : axis_x:int -> Rect.t -> Rect.t
(** Mirror across the vertical line [x = axis_x]. *)

val mirror_rect_y : axis_y:int -> Rect.t -> Rect.t
(** Mirror across the horizontal line [y = axis_y]. *)
