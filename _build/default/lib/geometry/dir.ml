type t = North | South | East | West [@@deriving show { with_path = false }, eq, ord]

type axis = Horizontal | Vertical [@@deriving show { with_path = false }, eq, ord]

let all = [ North; South; East; West ]

let axis = function
  | East | West -> Horizontal
  | North | South -> Vertical

let cross_axis d =
  match axis d with Horizontal -> Vertical | Vertical -> Horizontal

let opposite = function
  | North -> South
  | South -> North
  | East -> West
  | West -> East

let sign = function North | East -> 1 | South | West -> -1

let of_string s =
  match String.uppercase_ascii s with
  | "NORTH" | "N" | "TOP" | "UP" -> Some North
  | "SOUTH" | "S" | "BOTTOM" | "DOWN" -> Some South
  | "EAST" | "E" | "RIGHT" -> Some East
  | "WEST" | "W" | "LEFT" -> Some West
  | _ -> None

let to_string = function
  | North -> "NORTH"
  | South -> "SOUTH"
  | East -> "EAST"
  | West -> "WEST"
