type t = { lo : int; hi : int } [@@deriving show { with_path = false }, eq, ord]

type overlap =
  | Disjoint
  | Covers
  | Low_end
  | High_end
  | Inside
[@@deriving show { with_path = false }, eq, ord]

let make lo hi = if lo <= hi then { lo; hi } else { lo = hi; hi = lo }

let length i = i.hi - i.lo

let is_point i = i.lo = i.hi

let contains i x = i.lo <= x && x <= i.hi

let contains_interval outer inner = outer.lo <= inner.lo && inner.hi <= outer.hi

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let overlaps a b = a.lo < b.hi && b.lo < a.hi

let touches a b = a.lo <= b.hi && b.lo <= a.hi

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let translate i d = { lo = i.lo + d; hi = i.hi + d }

let inflate i d = make (i.lo - d) (i.hi + d)

(* Classify how [b] overlaps [a]; this is the per-axis half of the 16-case
   analysis of the paper's Fig. 1 latch-up cover check. *)
let classify ~of_:b ~over:a =
  if b.hi <= a.lo || b.lo >= a.hi then Disjoint
  else if b.lo <= a.lo && b.hi >= a.hi then Covers
  else if b.lo <= a.lo then Low_end
  else if b.hi >= a.hi then High_end
  else Inside

(* Remove [b] from [a]: zero, one or two residual sub-intervals. *)
let subtract a b =
  match classify ~of_:b ~over:a with
  | Disjoint -> [ a ]
  | Covers -> []
  | Low_end -> [ { lo = b.hi; hi = a.hi } ]
  | High_end -> [ { lo = a.lo; hi = b.lo } ]
  | Inside -> [ { lo = a.lo; hi = b.lo }; { lo = b.hi; hi = a.hi } ]
