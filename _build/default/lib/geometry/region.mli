(** Regions: unordered collections of (possibly overlapping) rectangles.

    Provides the successive-subtraction cover test used by the latch-up rule
    (Fig. 1) and exact union-area measurement used by the optimizer's rating
    function. *)

type t = Rect.t list

val empty : t

val of_rects : Rect.t list -> t
(** Drops degenerate rectangles. *)

val is_empty : t -> bool

val residue : solids:Rect.t list -> covers:Rect.t list -> Rect.t list
(** [residue ~solids ~covers] is what remains of [solids] after subtracting
    every rectangle of [covers], computed by successive subtraction exactly as
    in the paper's latch-up check: every cover splits each remaining solid
    into at most four residual rectangles. *)

val covered : solids:Rect.t list -> covers:Rect.t list -> bool
(** True iff the union of [covers] covers the union of [solids]
    ("the latch-up rule is fulfilled"). *)

val area : Rect.t list -> int
(** Exact area of the union (overlaps counted once), by slab sweep. *)

val hull : Rect.t list -> Rect.t option

val contains_point : t -> x:int -> y:int -> bool

val inter_rect : t -> Rect.t -> t
(** Clip every rectangle to the given window. *)

val translate : t -> dx:int -> dy:int -> t
