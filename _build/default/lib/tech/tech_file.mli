(** Reader/writer for the textual technology description file.

    The paper keeps all design rules in a technology description file so that
    module source code stays technology independent (§1, §2.1).  The format
    here is line oriented with distances in micrometres; see the project
    README for a full example.  {!to_string} and {!parse_string} round-trip. *)

exception Parse_error of int * string
(** Line number and message. *)

val parse_string : string -> Technology.t
(** @raise Parse_error on malformed input. *)

val load : string -> Technology.t
(** Read a technology from a file. @raise Parse_error, [Sys_error]. *)

val to_string : Technology.t -> string
(** Canonical textual form (sorted rule sections). *)

val save : Technology.t -> string -> unit
