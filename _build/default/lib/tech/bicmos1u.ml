(* A generic, self-consistent 1 um BiCMOS rule deck.

   The paper used a proprietary 1 um Siemens BiCMOS technology; this deck is
   the synthetic substitute documented in DESIGN.md: the rule *structure*
   (which widths, spacings, enclosures and extensions exist) matches what the
   algorithms need, and the values are typical published 1 um-generation
   numbers, so areas come out in the same regime as the paper's. *)

let source =
  {|technology generic-bicmos-1u
grid 0.05
latchup 50

# name     kind      mask  electrical                  drawing
layer nwell    well      gds=1  res=2000 acap=80  fcap=0   fill=outline color=#999999
layer pbase    implant   gds=5  res=600  acap=120 fcap=0   fill=dots    color=#aa7744
layer pdiff    diffusion gds=3  res=60   acap=350 fcap=300 fill=hatch   color=#2e8b57
layer ndiff    diffusion gds=4  res=45   acap=300 fcap=250 fill=hatch   color=#66aa22
layer poly     poly      gds=10 res=25   acap=60  fcap=50  fill=hatch   color=#cc2222
layer poly2    poly      gds=11 res=30   acap=55  fcap=45  fill=backhatch color=#dd7711
layer contact  cut       gds=20 res=0    acap=0   fcap=0   fill=solid   color=#222222
layer metal1   metal1    gds=30 res=0.06 acap=30  fcap=40  fill=backhatch color=#2244cc
layer via      cut       gds=40 res=0    acap=0   fcap=0   fill=cross   color=#444444
layer metal2   metal2    gds=50 res=0.03 acap=20  fcap=30  fill=dots    color=#8833bb
layer subtap   marker    gds=60 res=0    acap=0   fcap=0   fill=outline color=#cc8888 nonconducting
layer resmark  marker    gds=61 res=0    acap=0   fcap=0   fill=outline color=#88cc88 nonconducting

width nwell 4
width pbase 3
width pdiff 2
width ndiff 2
width poly 1
width poly2 1.5
width metal1 1.5
width metal2 2

space nwell nwell 4
space nwell pdiff 2
space pdiff pdiff 2
space ndiff ndiff 2
space pdiff ndiff 3
space pbase pbase 3
space pbase ndiff 2
space poly poly 1.5
space poly pdiff 0.5
space poly ndiff 0.5
space poly2 poly2 1.5
space metal1 metal1 1.5
space metal2 metal2 2
space contact contact 1.5
space via via 1.5

enclose poly contact 0.5
enclose pdiff contact 0.75
enclose ndiff contact 0.75
enclose poly2 contact 0.75
enclose metal1 contact 0.5
enclose metal1 via 0.5
enclose metal2 via 0.5
enclose nwell pdiff 2
enclose nwell ndiff 1.5
enclose pbase ndiff 1.5
enclose pbase pdiff 1
enclose poly poly2 1

extend poly pdiff 1
extend poly ndiff 1
extend pdiff poly 1.5
extend ndiff poly 1.5

minarea poly 2.25
minarea poly2 2.25
minarea metal1 4
minarea metal2 4
minarea pdiff 4
minarea ndiff 4

cutsize contact 1
cutsize via 1
cutspace contact 1.5
cutspace via 1.5
|}

let tech = lazy (Tech_file.parse_string source)

let get () = Lazy.force tech
