type kind =
  | Well
  | Diffusion
  | Implant
  | Poly
  | Metal of int
  | Cut
  | Marker
[@@deriving show { with_path = false }, eq, ord]

type t = {
  name : string;
  kind : kind;
  gds : int;
  conducting : bool;
  sheet_res : float;      (* ohm / square *)
  area_cap : float;       (* aF / um^2 to substrate *)
  fringe_cap : float;     (* aF / um of perimeter *)
  fill : Patterns.t;
}
[@@deriving show { with_path = false }, eq, ord]

let make ~name ~kind ~gds ?(conducting = true) ?(sheet_res = 0.) ?(area_cap = 0.)
    ?(fringe_cap = 0.) ~fill () =
  { name; kind; gds; conducting; sheet_res; area_cap; fringe_cap; fill }

let is_cut l = match l.kind with Cut -> true | _ -> false

(* Active ("locos") areas are the ones the latch-up rule must see covered by
   the inflated substrate-contact rectangles. *)
let is_active l = match l.kind with Diffusion -> true | _ -> false

let is_metal l = match l.kind with Metal _ -> true | _ -> false

let is_routing l =
  match l.kind with Metal _ | Poly -> true | Diffusion -> true | _ -> false

let kind_of_string = function
  | "well" -> Some Well
  | "diffusion" | "diff" -> Some Diffusion
  | "implant" -> Some Implant
  | "poly" -> Some Poly
  | "metal1" -> Some (Metal 1)
  | "metal2" -> Some (Metal 2)
  | "metal3" -> Some (Metal 3)
  | "cut" -> Some Cut
  | "marker" -> Some Marker
  | _ -> None

let kind_to_string = function
  | Well -> "well"
  | Diffusion -> "diffusion"
  | Implant -> "implant"
  | Poly -> "poly"
  | Metal n -> Printf.sprintf "metal%d" n
  | Cut -> "cut"
  | Marker -> "marker"
