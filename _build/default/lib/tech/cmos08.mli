(** Second built-in deck: a generic 0.8 um single-poly CMOS process.

    Used to demonstrate the paper's technology independence: the unchanged
    module sources rebuild DRC-clean under this deck.  It has no poly2 and
    no p-base, so poly2 capacitors and bipolars correctly reject. *)

val source : string

val get : unit -> Technology.t
