type style =
  | Solid
  | Hatch        (* 45 degree lines, as in the paper's Fig. 4 *)
  | Back_hatch   (* 135 degree lines *)
  | Cross_hatch
  | Dots
  | Outline
[@@deriving show { with_path = false }, eq, ord]

type t = { style : style; color : string } [@@deriving show { with_path = false }, eq, ord]

let make ?(style = Solid) color = { style; color }

let style_of_string = function
  | "solid" -> Some Solid
  | "hatch" -> Some Hatch
  | "backhatch" -> Some Back_hatch
  | "cross" -> Some Cross_hatch
  | "dots" -> Some Dots
  | "outline" -> Some Outline
  | _ -> None

let style_to_string = function
  | Solid -> "solid"
  | Hatch -> "hatch"
  | Back_hatch -> "backhatch"
  | Cross_hatch -> "cross"
  | Dots -> "dots"
  | Outline -> "outline"
