(* A second rule deck: a generic 0.8 um single-poly CMOS process.

   Its purpose is the paper's headline property — module sources are
   technology independent because the environment fulfils the rules
   automatically (§4): every generator in this repository builds DRC-clean
   under both this deck and {!Bicmos1u} without a single source change
   (see the tests and the TECH-INDEP bench section).

   No poly2 and no pbase: capacitors and bipolars are BiCMOS-only
   (generators that need an absent layer reject, which is itself the
   correct technology-independence behaviour). *)

let source =
  {|technology generic-cmos-08u
grid 0.05
latchup 40

layer nwell    well      gds=1  res=1500 acap=60  fcap=0   fill=outline color=#999999
layer pdiff    diffusion gds=3  res=70   acap=420 fcap=330 fill=hatch   color=#2e8b57
layer ndiff    diffusion gds=4  res=55   acap=360 fcap=280 fill=hatch   color=#66aa22
layer poly     poly      gds=10 res=28   acap=75  fcap=60  fill=hatch   color=#cc2222
layer contact  cut       gds=20 res=0    acap=0   fcap=0   fill=solid   color=#222222
layer metal1   metal1    gds=30 res=0.07 acap=35  fcap=45  fill=backhatch color=#2244cc
layer via      cut       gds=40 res=0.05 acap=0   fcap=0   fill=cross   color=#444444
layer metal2   metal2    gds=50 res=0.04 acap=22  fcap=34  fill=dots    color=#8833bb
layer subtap   marker    gds=60 res=0    acap=0   fcap=0   fill=outline color=#cc8888 nonconducting
layer resmark  marker    gds=61 res=0    acap=0   fcap=0   fill=outline color=#88cc88 nonconducting

width nwell 3.2
width pdiff 1.6
width ndiff 1.6
width poly 0.8
width metal1 1.2
width metal2 1.6

space nwell nwell 3.2
space nwell pdiff 1.6
space pdiff pdiff 1.6
space ndiff ndiff 1.6
space pdiff ndiff 2.4
space poly poly 1.2
space poly pdiff 0.4
space poly ndiff 0.4
space metal1 metal1 1.2
space metal2 metal2 1.6
space contact contact 1.2
space via via 1.2

enclose poly contact 0.4
enclose pdiff contact 0.6
enclose ndiff contact 0.6
enclose metal1 contact 0.4
enclose metal1 via 0.4
enclose metal2 via 0.4
enclose nwell pdiff 1.6
enclose nwell ndiff 1.2

extend poly pdiff 0.8
extend poly ndiff 0.8
extend pdiff poly 1.2
extend ndiff poly 1.2

minarea poly 1.44
minarea metal1 2.56
minarea metal2 2.56

cutsize contact 0.8
cutsize via 0.8
cutspace contact 1.2
cutspace via 1.2
|}

let tech = lazy (Tech_file.parse_string source)

let get () = Lazy.force tech
