(** Layer fill patterns (the paper's Fig. 4).

    Each mask layer carries a drawing style and colour used by the SVG
    exporter so that generated layouts render like the figures in the
    paper. *)

type style = Solid | Hatch | Back_hatch | Cross_hatch | Dots | Outline
[@@deriving show, eq, ord]

type t = { style : style; color : string } [@@deriving show, eq, ord]

val make : ?style:style -> string -> t
(** [make ~style color] with [color] an SVG colour (e.g. ["#cc0000"]).
    [style] defaults to [Solid]. *)

val style_of_string : string -> style option
val style_to_string : style -> string
