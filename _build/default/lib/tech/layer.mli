(** Mask layer descriptors.

    A technology declares a set of layers; every shape in the layout database
    references one by name.  Electrical parameters (sheet resistance,
    capacitances) feed the optimizer's rating function. *)

type kind =
  | Well        (** n-well / p-well *)
  | Diffusion   (** active areas ("locos" in the paper) *)
  | Implant     (** select/implant layers, p-base *)
  | Poly        (** polysilicon levels *)
  | Metal of int
  | Cut         (** contacts and vias: fixed-size openings *)
  | Marker      (** non-mask helper layers *)
[@@deriving show, eq, ord]

type t = {
  name : string;
  kind : kind;
  gds : int;             (** GDS layer number for export *)
  conducting : bool;
  sheet_res : float;     (** ohm per square *)
  area_cap : float;      (** aF per um^2, plate capacitance to substrate *)
  fringe_cap : float;    (** aF per um of perimeter *)
  fill : Patterns.t;     (** drawing style (Fig. 4) *)
}
[@@deriving show, eq, ord]

val make :
  name:string ->
  kind:kind ->
  gds:int ->
  ?conducting:bool ->
  ?sheet_res:float ->
  ?area_cap:float ->
  ?fringe_cap:float ->
  fill:Patterns.t ->
  unit ->
  t

val is_cut : t -> bool

val is_active : t -> bool
(** True for diffusion layers — the areas the latch-up cover check must see
    enclosed by substrate-contact neighbourhoods. *)

val is_metal : t -> bool

val is_routing : t -> bool
(** Layers wires may run on (metals, poly, diffusion). *)

val kind_of_string : string -> kind option
val kind_to_string : kind -> string
