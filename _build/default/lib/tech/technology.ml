type t = {
  name : string;
  layers : (string, Layer.t) Hashtbl.t;
  order : string list ref;   (* drawing order, bottom first *)
  rules : Rules.t;
}

let create ~name ~rules () =
  { name; layers = Hashtbl.create 31; order = ref []; rules }

let add_layer t layer =
  if Hashtbl.mem t.layers layer.Layer.name then
    Fmt.invalid_arg "Technology.add_layer: duplicate layer %s" layer.Layer.name;
  Hashtbl.replace t.layers layer.Layer.name layer;
  t.order := !(t.order) @ [ layer.Layer.name ]

let name t = t.name
let rules t = t.rules

let layer t name = Hashtbl.find_opt t.layers name

let layer_exn t lname =
  match layer t lname with
  | Some l -> l
  | None -> Fmt.invalid_arg "Technology %s: unknown layer %s" t.name lname

let mem_layer t lname = Hashtbl.mem t.layers lname

let layers t = List.map (fun n -> Hashtbl.find t.layers n) !(t.order)

let layer_names t = !(t.order)

(* Index of a layer in drawing order; lower draws first (below). *)
let draw_index t lname =
  let rec go i = function
    | [] -> max_int
    | n :: tl -> if String.equal n lname then i else go (i + 1) tl
  in
  go 0 !(t.order)

let active_layers t = List.filter Layer.is_active (layers t)

let cut_layers t = List.filter Layer.is_cut (layers t)

let check_layer t lname =
  if not (mem_layer t lname) then
    Fmt.failwith "unknown layer %S in technology %s" lname t.name
