(** Built-in generic 1 um BiCMOS technology.

    The synthetic substitute for the paper's proprietary 1 um Siemens BiCMOS
    process (see DESIGN.md §2).  Layers: nwell, pbase, pdiff, ndiff, poly,
    poly2, contact, metal1, via, metal2. *)

val source : string
(** The deck in {!Tech_file} concrete syntax (also usable as a template for
    user technologies). *)

val get : unit -> Technology.t
(** The parsed deck (memoised). *)
