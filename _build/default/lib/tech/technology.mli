(** A technology: a named set of layers plus its design-rule tables.

    The paper stores these in a "technology description file"; {!Tech_file}
    provides the concrete syntax, {!Bicmos1u} the built-in generic 1 um
    BiCMOS deck used throughout the examples and benchmarks. *)

type t

val create : name:string -> rules:Rules.t -> unit -> t

val add_layer : t -> Layer.t -> unit
(** Layers are drawn in insertion order (first = bottom).
    @raise Invalid_argument on duplicate layer names. *)

val name : t -> string
val rules : t -> Rules.t

val layer : t -> string -> Layer.t option
val layer_exn : t -> string -> Layer.t
val mem_layer : t -> string -> bool

val layers : t -> Layer.t list
(** In drawing order, bottom first. *)

val layer_names : t -> string list

val draw_index : t -> string -> int
(** Position in drawing order ([max_int] for unknown layers). *)

val active_layers : t -> Layer.t list
val cut_layers : t -> Layer.t list

val check_layer : t -> string -> unit
(** @raise Failure with a useful message when the layer is unknown. *)
