lib/tech/bicmos1u.pp.ml: Lazy Tech_file
