lib/tech/layer.pp.ml: Patterns Ppx_deriving_runtime Printf
