lib/tech/tech_file.pp.ml: Amg_geometry Buffer Float Fmt Layer List Patterns Printf Rules String Technology
