lib/tech/patterns.pp.ml: Ppx_deriving_runtime
