lib/tech/lint.pp.ml: Fmt Format Hashtbl Layer List Printf Rules String Technology
