lib/tech/technology.pp.mli: Layer Rules
