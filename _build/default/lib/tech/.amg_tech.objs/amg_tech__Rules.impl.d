lib/tech/rules.pp.ml: Fmt Hashtbl List Option String
