lib/tech/cmos08.pp.mli: Technology
