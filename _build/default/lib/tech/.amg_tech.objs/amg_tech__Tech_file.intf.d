lib/tech/tech_file.pp.mli: Technology
