lib/tech/rules.pp.mli:
