lib/tech/lint.pp.mli: Format Technology
