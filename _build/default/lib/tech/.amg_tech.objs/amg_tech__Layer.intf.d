lib/tech/layer.pp.mli: Patterns Ppx_deriving_runtime
