lib/tech/patterns.pp.mli: Ppx_deriving_runtime
