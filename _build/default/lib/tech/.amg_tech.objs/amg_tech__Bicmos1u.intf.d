lib/tech/bicmos1u.pp.mli: Technology
