lib/tech/cmos08.pp.ml: Lazy Tech_file
