lib/tech/technology.pp.ml: Fmt Hashtbl Layer List Rules String
