type mos_polarity = Nmos | Pmos [@@deriving show { with_path = false }, eq, ord]

type mos = {
  m_name : string;
  polarity : mos_polarity;
  w : int;  (* nm *)
  l : int;  (* nm *)
  g : string;
  d : string;
  s : string;
  b : string;
}
[@@deriving show { with_path = false }, eq, ord]

type bjt = { q_name : string; c : string; bb : string; e : string }
[@@deriving show { with_path = false }, eq, ord]

type res = { r_name : string; ra : string; rb : string; ohms : float }
[@@deriving show { with_path = false }, eq, ord]

type cap = { c_name : string; ca : string; cb : string; ff : float }
[@@deriving show { with_path = false }, eq, ord]

type t = Mos of mos | Bjt of bjt | Res of res | Cap of cap
[@@deriving show { with_path = false }, eq, ord]

let name = function
  | Mos m -> m.m_name
  | Bjt q -> q.q_name
  | Res r -> r.r_name
  | Cap c -> c.c_name

let nets = function
  | Mos m -> [ m.g; m.d; m.s; m.b ]
  | Bjt q -> [ q.c; q.bb; q.e ]
  | Res r -> [ r.ra; r.rb ]
  | Cap c -> [ c.ca; c.cb ]

let mos ~name ~polarity ~w ~l ~g ~d ~s ~b =
  Mos { m_name = name; polarity; w; l; g; d; s; b }

let bjt ~name ~c ~b ~e = Bjt { q_name = name; c; bb = b; e }

let res ~name ~a ~b ~ohms = Res { r_name = name; ra = a; rb = b; ohms }

let cap ~name ~a ~b ~ff = Cap { c_name = name; ca = a; cb = b; ff }

(* Diode-connected MOS: gate tied to drain. *)
let is_diode = function Mos m -> String.equal m.g m.d | _ -> false
