type t = {
  name : string;
  devices : Device.t list;
  external_ports : string list;
}

let create ~name ?(external_ports = []) devices =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let n = Device.name d in
      if Hashtbl.mem seen n then Fmt.invalid_arg "Netlist.create: duplicate device %s" n;
      Hashtbl.replace seen n ())
    devices;
  { name; devices; external_ports }

let devices t = t.devices

let name t = t.name

let external_ports t = t.external_ports

let find t dname =
  List.find_opt (fun d -> String.equal (Device.name d) dname) t.devices

let nets t =
  List.concat_map Device.nets t.devices |> List.sort_uniq String.compare

let devices_on_net t net =
  List.filter (fun d -> List.mem net (Device.nets d)) t.devices

let mos_devices t =
  List.filter_map (function Device.Mos m -> Some m | _ -> None) t.devices

let bjt_devices t =
  List.filter_map (function Device.Bjt q -> Some q | _ -> None) t.devices

let device_count t = List.length t.devices

let pp ppf t =
  Fmt.pf ppf "@[<v>netlist %s (%d devices)@," t.name (device_count t);
  List.iter (fun d -> Fmt.pf ppf "  %a@," Device.pp d) t.devices;
  Fmt.pf ppf "@]"
