(** SPICE netlist reader (classic card subset).

    Parses M/Q/R/C element cards with engineering-suffixed values,
    [.subckt]/[.ends] wrappers (the subckt's pins become the netlist's
    external ports), [*] comment lines, and [+] continuations.  MOS
    dimensions come from [w=]/[l=] parameters in metres.  With the
    partitioner and the assembly engine this closes the loop: text netlist
    in, generated layout out ([amgen synth]). *)

exception Parse_error of string

val value_of_string : string -> float
(** ["2k"] → 2000., ["400f"] → 4e-13, ["4.7meg"] → 4.7e6.
    @raise Parse_error on malformed numbers. *)

val parse_string : ?name:string -> string -> Netlist.t
(** @raise Parse_error with a line number on malformed cards. *)

val load : ?name:string -> string -> Netlist.t
