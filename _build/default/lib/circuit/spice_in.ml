(* SPICE netlist reader: the classic card subset every 1996 flow produced
   (M/Q/R/C elements, .subckt/.ends, engineering suffixes).  Together with
   the partitioner and the assembly engine this closes the loop: a text
   netlist in, a generated layout out. *)

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* Engineering-suffixed value: "2k", "400f", "10u", "4.7meg". *)
let value_of_string s =
  let s = String.lowercase_ascii s in
  let num_part, mult =
    let n = String.length s in
    let suffixes =
      [ ("meg", 1e6); ("mil", 25.4e-6); ("t", 1e12); ("g", 1e9); ("k", 1e3);
        ("m", 1e-3); ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15) ]
    in
    let rec try_suffix = function
      | [] -> (s, 1.)
      | (suf, m) :: rest ->
          let ls = String.length suf in
          if n > ls && String.sub s (n - ls) ls = suf then
            (String.sub s 0 (n - ls), m)
          else try_suffix rest
    in
    try_suffix suffixes
  in
  match float_of_string_opt num_part with
  | Some f -> f *. mult
  | None -> fail "bad numeric value %S" s

(* Key=value parameters on a card ("w=10u l=2u"). *)
let split_params words =
  List.partition_map
    (fun w ->
      match String.index_opt w '=' with
      | Some i ->
          Right
            ( String.lowercase_ascii (String.sub w 0 i),
              String.sub w (i + 1) (String.length w - i - 1) )
      | None -> Left w)
    words

let param params key =
  Option.map value_of_string (List.assoc_opt key params)

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let words line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun w -> w <> "")

(* Continuation lines start with '+'. *)
let logical_lines src =
  let raw = String.split_on_char '\n' src in
  List.fold_left
    (fun acc line ->
      let line = strip_comment line in
      let t = String.trim line in
      if t = "" then acc
      else if String.length t > 0 && t.[0] = '+' then
        match acc with
        | last :: rest ->
            (last ^ " " ^ String.sub t 1 (String.length t - 1)) :: rest
        | [] -> fail "continuation line with nothing to continue"
      else t :: acc)
    [] raw
  |> List.rev

let nm_of_metres v = int_of_float ((v *. 1e9) +. 0.5)

let parse_string ?(name = "netlist") src =
  let devices = ref [] in
  let ports = ref [] in
  let subckt_name = ref None in
  let add d = devices := d :: !devices in
  let lines = logical_lines src in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let ws = words line in
      match ws with
      | [] -> ()
      | first :: rest -> (
          let lower = String.lowercase_ascii first in
          if lower = ".subckt" then (
            match rest with
            | nm :: ps ->
                subckt_name := Some nm;
                ports := ps
            | [] -> fail "line %d: .subckt needs a name" lineno)
          else if lower = ".ends" || lower = ".end" then ()
          else if first.[0] = '*' then ()
          else
            match Char.lowercase_ascii first.[0] with
            | 'm' -> (
                let pos, params = split_params rest in
                match pos with
                | d :: g :: s :: b :: model :: _ ->
                    let polarity =
                      let m = String.lowercase_ascii model in
                      if String.length m > 0 && m.[0] = 'p' then Device.Pmos
                      else Device.Nmos
                    in
                    let dim key =
                      match param params key with
                      | Some v -> nm_of_metres v
                      | None -> fail "line %d: %s needs %s=" lineno first key
                    in
                    add
                      (Device.mos ~name:first ~polarity ~w:(dim "w")
                         ~l:(dim "l") ~g ~d ~s ~b)
                | _ -> fail "line %d: M card needs d g s b model" lineno)
            | 'q' -> (
                match rest with
                | c :: b :: e :: _model ->
                    ignore _model;
                    add (Device.bjt ~name:first ~c ~b ~e)
                | _ -> fail "line %d: Q card needs c b e" lineno)
            | 'r' -> (
                match rest with
                | a :: b :: v :: _ ->
                    add (Device.res ~name:first ~a ~b ~ohms:(value_of_string v))
                | _ -> fail "line %d: R card needs a b value" lineno)
            | 'c' -> (
                match rest with
                | a :: b :: v :: _ ->
                    add
                      (Device.cap ~name:first ~a ~b
                         ~ff:(value_of_string v /. 1e-15))
                | _ -> fail "line %d: C card needs a b value" lineno)
            | '.' | '*' -> ()
            | _ -> fail "line %d: unsupported card %S" lineno first))
    lines;
  let name = Option.value ~default:name !subckt_name in
  Netlist.create ~name ~external_ports:!ports (List.rev !devices)

let load ?name path =
  let ic = open_in path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse_string ?name src
