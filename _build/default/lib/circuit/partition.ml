(* Knowledge-based partitioning of a schematic into module clusters (§3).

   "The knowledge based partitioning of the modules takes additional analog
   properties like matching and symmetry requirements … into account."
   Matching requirements arrive as per-device hints; structural rules then
   recognise the classic analog sub-circuits, in priority order:

   1. current mirrors: a diode-connected device plus the devices sharing
      its gate and source;
   2. differential pairs: two equal devices sharing their source with
      distinct gates;
   3. cascodes: a device stacked on another (source on the other's drain);
   4. matched current-source banks: equal devices sharing gate and source;
   5. bipolar pairs; passives; leftovers as single devices.

   The matching hint picks the layout style, as in the paper's §3: low →
   plain inter-digitated, moderate → symmetric (diode in the middle),
   high → cross-coupled / common-centroid. *)

type matching = Low | Moderate | High [@@deriving show { with_path = false }, eq, ord]

type style =
  | Single
  | Interdigitated
  | Diff_pair_style
  | Common_centroid_style
  | Mirror_simple_style
  | Mirror_symmetric_style
  | Cross_coupled_style
  | Cascode_style
  | Bjt_pair_style
  | Passive
[@@deriving show { with_path = false }, eq, ord]

type cluster = {
  cluster_name : string;
  device_names : string list;
  style : style;
  matching : matching;
}
[@@deriving show { with_path = false }, eq, ord]

let hint hints dname =
  Option.value ~default:Low (List.assoc_opt dname hints)

let group_hint hints names =
  List.fold_left
    (fun acc n -> match (acc, hint hints n) with
      | High, _ | _, High -> High
      | Moderate, _ | _, Moderate -> Moderate
      | Low, Low -> Low)
    Low names

let same_dims (a : Device.mos) (b : Device.mos) = a.w = b.w && a.l = b.l

let partition ?(hints = []) netlist =
  let taken = Hashtbl.create 16 in
  let free (m : Device.mos) = not (Hashtbl.mem taken m.m_name) in
  let take names = List.iter (fun n -> Hashtbl.replace taken n ()) names in
  let clusters = ref [] in
  let emit ~name ~names ~style =
    take names;
    clusters :=
      { cluster_name = name; device_names = names; style; matching = group_hint hints names }
      :: !clusters
  in
  let mos = Netlist.mos_devices netlist in
  (* 1. Mirrors around each diode-connected device. *)
  List.iter
    (fun (d : Device.mos) ->
      if free d && String.equal d.g d.d then begin
        let followers =
          List.filter
            (fun (m : Device.mos) ->
              free m
              && (not (String.equal m.m_name d.m_name))
              && m.polarity = d.polarity
              && String.equal m.g d.g && String.equal m.s d.s
              && not (String.equal m.g m.d))
            mos
        in
        if followers <> [] then begin
          let names = d.m_name :: List.map (fun (m : Device.mos) -> m.m_name) followers in
          let style =
            match group_hint hints names with
            | Low -> Mirror_simple_style
            | Moderate | High -> Mirror_symmetric_style
          in
          emit ~name:("mirror_" ^ d.m_name) ~names ~style
        end
      end)
    mos;
  (* 2. Differential pairs. *)
  List.iter
    (fun (a : Device.mos) ->
      if free a then
        match
          List.find_opt
            (fun (b : Device.mos) ->
              free b
              && (not (String.equal b.m_name a.m_name))
              && b.polarity = a.polarity && same_dims a b
              && String.equal b.s a.s
              && (not (String.equal b.g a.g))
              && not (String.equal b.d a.d))
            mos
        with
        | Some b ->
            let names = [ a.m_name; b.m_name ] in
            let style =
              match group_hint hints names with
              | High -> Common_centroid_style
              | Low | Moderate -> Diff_pair_style
            in
            emit ~name:("pair_" ^ a.m_name) ~names ~style
        | None -> ())
    mos;
  (* 3. Cascode stacks: b sits on a (b.s = a.d). *)
  List.iter
    (fun (a : Device.mos) ->
      if free a then
        match
          List.find_opt
            (fun (b : Device.mos) ->
              free b
              && (not (String.equal b.m_name a.m_name))
              && b.polarity = a.polarity && String.equal b.s a.d)
            mos
        with
        | Some b ->
            emit ~name:("cascode_" ^ a.m_name) ~names:[ a.m_name; b.m_name ]
              ~style:Cascode_style
        | None -> ())
    mos;
  (* 4. Matched current-source banks: same gate, same source, equal dims. *)
  List.iter
    (fun (a : Device.mos) ->
      if free a then begin
        let bank =
          List.filter
            (fun (b : Device.mos) ->
              free b && b.polarity = a.polarity && same_dims a b
              && String.equal b.g a.g && String.equal b.s a.s)
            mos
        in
        if List.length bank >= 2 then begin
          let names = List.map (fun (m : Device.mos) -> m.m_name) bank in
          let style =
            match group_hint hints names with
            | High -> Cross_coupled_style
            | Low | Moderate -> Interdigitated
          in
          emit ~name:("sources_" ^ a.m_name) ~names ~style
        end
      end)
    mos;
  (* 5. Remaining MOS devices as singles. *)
  List.iter
    (fun (m : Device.mos) ->
      if free m then
        emit ~name:("single_" ^ m.m_name) ~names:[ m.m_name ]
          ~style:(if m.w >= 4 * m.l then Interdigitated else Single))
    mos;
  (* 6. Bipolar devices: pair symmetric emitter followers, else singles. *)
  let bjts = Netlist.bjt_devices netlist in
  let btaken = Hashtbl.create 8 in
  List.iter
    (fun (a : Device.bjt) ->
      if not (Hashtbl.mem btaken a.q_name) then begin
        match
          List.find_opt
            (fun (b : Device.bjt) ->
              (not (Hashtbl.mem btaken b.q_name))
              && not (String.equal b.q_name a.q_name))
            bjts
        with
        | Some b ->
            Hashtbl.replace btaken a.q_name ();
            Hashtbl.replace btaken b.q_name ();
            clusters :=
              { cluster_name = "bjt_" ^ a.q_name;
                device_names = [ a.q_name; b.q_name ];
                style = Bjt_pair_style;
                matching = group_hint hints [ a.q_name; b.q_name ] }
              :: !clusters
        | None ->
            Hashtbl.replace btaken a.q_name ();
            clusters :=
              { cluster_name = "bjt_" ^ a.q_name;
                device_names = [ a.q_name ];
                style = Bjt_pair_style;
                matching = hint hints a.q_name }
              :: !clusters
      end)
    bjts;
  (* 7. Passives. *)
  List.iter
    (fun d ->
      match d with
      | Device.Res _ | Device.Cap _ ->
          clusters :=
            { cluster_name = "passive_" ^ Device.name d;
              device_names = [ Device.name d ];
              style = Passive;
              matching = hint hints (Device.name d) }
            :: !clusters
      | Device.Mos _ | Device.Bjt _ -> ())
    (Netlist.devices netlist);
  List.rev !clusters
