lib/circuit/spice_in.pp.mli: Netlist
