lib/circuit/device.pp.ml: Ppx_deriving_runtime String
