lib/circuit/partition.pp.ml: Device Hashtbl List Netlist Option Ppx_deriving_runtime String
