lib/circuit/netlist.pp.ml: Device Fmt Hashtbl List String
