lib/circuit/spice_in.pp.ml: Char Device Fmt List Netlist Option String
