(** SPICE netlist export for schematic and extracted circuits.

    The 1996 flow the paper sits in hands extracted layouts to a circuit
    simulator for post-layout verification; this module produces that
    hand-off.  Device cards follow classic SPICE3 syntax ([M] / [Q] / [R] /
    [C]); MOS dimensions are emitted in metres with engineering suffixes. *)

val node : string -> string
(** Sanitise a net name into a legal SPICE node ([""] becomes ground ["0"];
    hierarchy separators become underscores). *)

val si_value : float -> string
(** Engineering notation with SPICE magnitude suffixes
    (e.g. [2000.] → ["2k"], [4e-13] → ["400f"]). *)

val device_card : Amg_circuit.Device.t -> string
(** One SPICE card for a schematic device. *)

val subckt_of_netlist : Amg_circuit.Netlist.t -> string list
(** Netlist as a [.subckt] (when it has external ports) or a flat card
    list, one line per element. *)

val of_netlist : ?title:string -> Amg_circuit.Netlist.t -> string
(** Complete SPICE deck for a schematic netlist, ending in [.end]. *)

val of_extracted :
  ?title:string ->
  ?nmos_bulk:string ->
  ?pmos_bulk:string ->
  Devices.extracted ->
  string
(** Complete SPICE deck for an extracted circuit.  Extracted devices carry
    no names or bulk terminals, so names are positional ([M0], [M1], …) and
    bulks default to [vss] / [vdd].  Detected shorts are emitted as comment
    lines so the deck documents extraction problems instead of hiding
    them. *)

val write_file : string -> string -> unit
(** [write_file path deck] writes the deck to [path]. *)
