(* Electrical connectivity extraction.

   Conducting shapes are reduced to "pieces": diffusion rectangles are
   split by the gate poly crossing them (the channel interrupts the
   diffusion), and anything under a [resmark] is a resistor body and does
   not conduct.  Pieces merge when they touch on the same layer; contact
   and via cuts merge their overlapped landing/metal pieces across layers.
   Every resulting node carries the set of user net labels found on its
   pieces — more than one distinct label on a node is an extracted short. *)

module Rect = Amg_geometry.Rect
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape

type piece = {
  p_layer : string;
  p_rect : Rect.t;
  p_net : string option;
  p_src : int;          (* id of the originating shape *)
  p_conducting : bool;  (* false for resistor bodies *)
}

type t = {
  pieces : piece array;
  parent : int array;
  tech : Technology.t;
  labels : (int, string list) Hashtbl.t; (* root -> sorted distinct labels *)
}

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.parent.(i) <- r;
    r
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri <> rj then t.parent.(ri) <- rj

let kind_of tech (s : Shape.t) =
  match Technology.layer tech s.Shape.layer with
  | Some l -> Some l.Layer.kind
  | None -> None

let is_kind tech s k = kind_of tech s = Some k

(* Split the diffusion shapes by every overlapping poly rectangle. *)
let split_diffusion tech shapes (s : Shape.t) =
  let gates =
    List.filter_map
      (fun (p : Shape.t) ->
        if is_kind tech p Layer.Poly && Rect.overlaps p.Shape.rect s.Shape.rect then
          Some p.Shape.rect
        else None)
      shapes
  in
  List.fold_left
    (fun acc g -> List.concat_map (fun r -> Rect.subtract r g) acc)
    [ s.Shape.rect ] gates

let build ~tech obj =
  let shapes = Lobj.shapes obj in
  let resmarks = Lobj.rects_on obj "resmark" in
  let in_resmark r = List.exists (fun m -> Rect.contains_rect m r) resmarks in
  let pieces = ref [] in
  let add (s : Shape.t) rect =
    pieces :=
      { p_layer = s.Shape.layer; p_rect = rect; p_net = s.Shape.net;
        p_src = s.Shape.id; p_conducting = not (in_resmark s.Shape.rect) }
      :: !pieces
  in
  List.iter
    (fun (s : Shape.t) ->
      match Technology.layer tech s.Shape.layer with
      (* Only routing layers conduct laterally; wells and implants are
         junction-isolated and never short the circuit. *)
      | Some l when l.Layer.conducting && Layer.is_routing l ->
          if Layer.is_active l then
            List.iter (add s) (split_diffusion tech shapes s)
          else add s s.Shape.rect
      | _ -> ())
    shapes;
  let pieces = Array.of_list (List.rev !pieces) in
  let t =
    { pieces; parent = Array.init (Array.length pieces) Fun.id; tech;
      labels = Hashtbl.create 32 }
  in
  let n = Array.length pieces in
  (* Same-layer touching pieces conduct into one node. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = pieces.(i) and b = pieces.(j) in
      if
        a.p_conducting && b.p_conducting
        && String.equal a.p_layer b.p_layer
        && Rect.touches a.p_rect b.p_rect
      then union t i j
    done
  done;
  (* Cuts merge across layers, but only between the layers the rules say
     the cut lands on (its enclosure rules) — a contact inside a big well
     rectangle does not make the well a wire. *)
  let rules = Technology.rules tech in
  List.iter
    (fun (c : Shape.t) ->
      match Technology.layer tech c.Shape.layer with
      | Some l when Layer.is_cut l ->
          let landing =
            List.map fst (Amg_tech.Rules.enclosing_layers rules ~inner:c.Shape.layer)
          in
          let hits = ref [] in
          Array.iteri
            (fun i p ->
              if
                p.p_conducting
                && List.mem p.p_layer landing
                && Rect.overlaps p.p_rect c.Shape.rect
              then hits := i :: !hits)
            pieces;
          (* A cut reaches the metal(s) above and only the TOPMOST of the
             overlapped non-metal landing layers: a contact on a poly2 top
             plate does not also reach the poly bottom plate under it. *)
          let is_metal_piece i =
            match Technology.layer tech pieces.(i).p_layer with
            | Some pl -> Layer.is_metal pl
            | None -> false
          in
          let metals, landings = List.partition is_metal_piece !hits in
          let top_index layer = Technology.draw_index tech layer in
          let top_layer =
            List.fold_left
              (fun acc i ->
                let l = pieces.(i).p_layer in
                match acc with
                | None -> Some l
                | Some cur -> if top_index l > top_index cur then Some l else acc)
              None landings
          in
          let landings =
            match top_layer with
            | None -> []
            | Some l -> List.filter (fun i -> String.equal pieces.(i).p_layer l) landings
          in
          (match metals @ landings with
          | first :: rest -> List.iter (fun i -> union t first i) rest
          | [] -> ())
      | _ -> ())
    shapes;
  (* Collect labels. *)
  Array.iteri
    (fun i p ->
      if p.p_conducting then
        match p.p_net with
        | None -> ()
        | Some net ->
            let r = find t i in
            let cur = Option.value ~default:[] (Hashtbl.find_opt t.labels r) in
            if not (List.mem net cur) then
              Hashtbl.replace t.labels r (List.sort compare (net :: cur)))
    pieces;
  t

(* The node (union-find root) of the conducting piece at a point on a
   layer, if any. *)
let node_at t ~layer ~x ~y =
  let found = ref None in
  Array.iteri
    (fun i p ->
      if
        !found = None && p.p_conducting
        && String.equal p.p_layer layer
        && Rect.contains_point p.p_rect ~x ~y
      then found := Some (find t i))
    t.pieces;
  !found

(* Preferred net name of a node: its single label, a "name1+name2" short
   marker for conflicting labels, or a synthetic node name. *)
let net_name t node =
  match Hashtbl.find_opt t.labels node with
  | Some [ l ] -> l
  | Some ls -> String.concat "+" ls
  | None -> Printf.sprintf "n%d" node

(* Every user net label present anywhere in the layout; synthetic "n%d"
   names are never in this list, so it distinguishes internal nodes from
   user nets even when a user net happens to be called "n5". *)
let labeled_nets t =
  Hashtbl.fold (fun _root labels acc -> labels @ acc) t.labels []
  |> List.sort_uniq String.compare

(* Nodes carrying more than one distinct user label: extracted shorts. *)
let shorts t =
  Hashtbl.fold
    (fun _root labels acc ->
      match labels with _ :: _ :: _ -> labels :: acc | _ -> acc)
    t.labels []

(* Number of distinct nodes carrying the given user label: 1 means the net
   is physically one piece; more means it relies on labels only. *)
let label_node_count t label =
  let roots = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      if p.p_conducting && p.p_net = Some label then
        Hashtbl.replace roots (find t i) ())
    t.pieces;
  Hashtbl.length roots

(* The connected components carrying the given label, each as its pieces'
   (layer, rect) list — used by repair passes to find and wire up
   disconnected islands of a net. *)
let label_components t label =
  let tbl = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      if p.p_conducting && p.p_net = Some label then begin
        let r = find t i in
        let cur = Option.value ~default:[] (Hashtbl.find_opt tbl r) in
        Hashtbl.replace tbl r ((p.p_layer, p.p_rect) :: cur)
      end)
    t.pieces;
  Hashtbl.fold (fun _ pieces acc -> pieces :: acc) tbl []

(* Distinct conducting nodes. *)
let node_count t =
  let roots = Hashtbl.create 32 in
  Array.iteri
    (fun i p -> if p.p_conducting then Hashtbl.replace roots (find t i) ())
    t.pieces;
  Hashtbl.length roots
