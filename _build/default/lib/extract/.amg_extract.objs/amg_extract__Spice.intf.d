lib/extract/spice.pp.mli: Amg_circuit Devices
