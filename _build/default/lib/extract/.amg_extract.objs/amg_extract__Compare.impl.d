lib/extract/compare.pp.ml: Amg_circuit Amg_geometry Devices Float Fmt Hashtbl List Ppx_deriving_runtime Printf String
