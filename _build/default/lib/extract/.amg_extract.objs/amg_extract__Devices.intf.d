lib/extract/devices.pp.mli: Amg_circuit Amg_layout Amg_tech Format Ppx_deriving_runtime
