lib/extract/spice.pp.ml: Amg_circuit Buffer Devices Float Fun List Printf String
