lib/extract/devices.pp.ml: Amg_circuit Amg_geometry Amg_layout Amg_tech Connectivity Fmt Hashtbl List Ppx_deriving_runtime String
