lib/extract/connectivity.pp.mli: Amg_geometry Amg_layout Amg_tech
