lib/extract/connectivity.pp.ml: Amg_geometry Amg_layout Amg_tech Array Fun Hashtbl List Option Printf String
