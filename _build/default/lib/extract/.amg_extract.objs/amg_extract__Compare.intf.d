lib/extract/compare.pp.mli: Amg_circuit Devices Format Ppx_deriving_runtime
