(* Layout-versus-schematic comparison.

   Both sides are normalised first: parallel MOS merged, source/drain
   unordered, dummies (gate tied to a terminal) dropped from the layout
   side, bulk ignored.  Devices match on terminal nets; sizes must agree
   within a relative tolerance. *)

module Units = Amg_geometry.Units
module D = Amg_circuit.Device
module Netlist = Amg_circuit.Netlist

type mismatch =
  | Missing_device of string         (* in schematic, not in layout *)
  | Extra_device of string           (* in layout, not in schematic *)
  | Size_mismatch of string * string (* device, detail *)
  | Short of string list
[@@deriving show { with_path = false }, eq]

type result = { matched : int; mismatches : mismatch list }

let clean r = r.mismatches = []

let mos_key polarity l g s d =
  let s, d = if String.compare s d <= 0 then (s, d) else (d, s) in
  Printf.sprintf "%s L=%d %s %s %s"
    (match (polarity : D.mos_polarity) with Pmos -> "P" | Nmos -> "N")
    l g s d

let golden_mos netlist =
  Netlist.mos_devices netlist
  |> List.map (fun (m : D.mos) ->
         ({ Devices.x_polarity = m.D.polarity; x_w = m.D.w; x_l = m.D.l;
            x_g = m.D.g; x_s = m.D.s; x_d = m.D.d }
           : Devices.mos))
  |> Devices.merge_parallel

let describe_mos (m : Devices.mos) =
  Printf.sprintf "%s W=%.1f L=%.1f g=%s s/d=%s/%s"
    (match m.Devices.x_polarity with D.Pmos -> "PMOS" | D.Nmos -> "NMOS")
    (Units.to_um m.Devices.x_w) (Units.to_um m.Devices.x_l) m.Devices.x_g
    m.Devices.x_s m.Devices.x_d

let compare_mos ~tol golden extracted =
  let key (m : Devices.mos) =
    mos_key m.Devices.x_polarity m.Devices.x_l m.Devices.x_g m.Devices.x_s
      m.Devices.x_d
  in
  let ext = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace ext (key m) m) extracted;
  let matched = ref 0 and mismatches = ref [] in
  List.iter
    (fun g ->
      match Hashtbl.find_opt ext (key g) with
      | None -> mismatches := Missing_device (describe_mos g) :: !mismatches
      | Some e ->
          Hashtbl.remove ext (key g);
          let dw =
            Float.abs (float_of_int (e.Devices.x_w - g.Devices.x_w))
            /. float_of_int g.Devices.x_w
          in
          if dw > tol then
            mismatches :=
              Size_mismatch
                ( describe_mos g,
                  Printf.sprintf "layout W=%.1f um vs schematic W=%.1f um"
                    (Units.to_um e.Devices.x_w) (Units.to_um g.Devices.x_w) )
              :: !mismatches
          else incr matched)
    golden;
  Hashtbl.iter
    (fun _ e -> mismatches := Extra_device (describe_mos e) :: !mismatches)
    ext;
  (!matched, !mismatches)

let compare_terminal_sets ~kind golden extracted describe =
  (* Unordered terminal matching for two-terminal or three-terminal
     devices represented as string tuples; each golden device consumes at
     most one extracted device (parallel bipolars are distinct). *)
  let remove_one x l =
    let rec go acc = function
      | [] -> None
      | y :: tl -> if y = x then Some (List.rev_append acc tl) else go (y :: acc) tl
    in
    go [] l
  in
  let remaining = ref extracted in
  let matched = ref 0 and mismatches = ref [] in
  List.iter
    (fun g ->
      match remove_one g !remaining with
      | Some rest ->
          remaining := rest;
          incr matched
      | None ->
          mismatches := Missing_device (kind ^ " " ^ describe g) :: !mismatches)
    golden;
  List.iter
    (fun e -> mismatches := Extra_device (kind ^ " " ^ describe e) :: !mismatches)
    !remaining;
  (!matched, !mismatches)

let run ?(tol = 0.05) ~golden (e : Devices.extracted) =
  let live =
    List.filter (fun m -> not (Devices.is_dummy m)) e.Devices.mosfets
  in
  let m_matched, m_mis = compare_mos ~tol (golden_mos golden) live in
  (* Bipolars: compare unordered (c, b, e) triples. *)
  let golden_bjts =
    Netlist.bjt_devices golden
    |> List.map (fun (q : D.bjt) -> (q.D.c, q.D.bb, q.D.e))
    |> List.sort compare
  in
  let b_matched, b_mis =
    compare_terminal_sets ~kind:"NPN" golden_bjts (List.sort compare e.Devices.bjts)
      (fun (c, b, em) -> Printf.sprintf "c=%s b=%s e=%s" c b em)
  in
  (* Passives: match on terminal pairs, values within 25%. *)
  let norm_pair a b = if String.compare a b <= 0 then (a, b) else (b, a) in
  let golden_res =
    List.filter_map
      (function D.Res r -> Some (norm_pair r.D.ra r.D.rb) | _ -> None)
      (Netlist.devices golden)
  in
  let r_matched, r_mis =
    compare_terminal_sets ~kind:"RES" (List.sort compare golden_res)
      (List.sort compare (List.map (fun (a, b, _) -> norm_pair a b) e.Devices.resistors))
      (fun (a, b) -> a ^ "/" ^ b)
  in
  let golden_caps =
    List.filter_map
      (function D.Cap c -> Some (norm_pair c.D.ca c.D.cb) | _ -> None)
      (Netlist.devices golden)
  in
  let c_matched, c_mis =
    compare_terminal_sets ~kind:"CAP" (List.sort compare golden_caps)
      (List.sort compare (List.map (fun (a, b, _) -> norm_pair a b) e.Devices.capacitors))
      (fun (a, b) -> a ^ "/" ^ b)
  in
  let shorts = List.map (fun nets -> Short nets) e.Devices.short_nets in
  {
    matched = m_matched + b_matched + r_matched + c_matched;
    mismatches = m_mis @ b_mis @ r_mis @ c_mis @ shorts;
  }

let pp_result ppf r =
  if clean r then Fmt.pf ppf "LVS clean: %d devices matched@." r.matched
  else begin
    Fmt.pf ppf "LVS: %d matched, %d problems:@." r.matched (List.length r.mismatches);
    List.iter (fun m -> Fmt.pf ppf "  %s@." (show_mismatch m)) r.mismatches
  end
