(** Device recognition: MOS transistors from gate crossings, bipolars from
    base/well containment, resistors from marked films, capacitors from
    plate overlaps.  Parallel MOS fingers are merged with summed widths —
    the reduction every LVS performs before comparing. *)

type mos = {
  x_polarity : Amg_circuit.Device.mos_polarity;
  x_w : int;   (** summed channel width, nm *)
  x_l : int;   (** channel length, nm *)
  x_g : string;
  x_s : string;
  x_d : string; (** source/drain order is geometric; compare unordered *)
}
[@@deriving show, eq, ord]

type extracted = {
  mosfets : mos list;
  bjts : (string * string * string) list;      (** collector, base, emitter *)
  resistors : (string * string * float) list;  (** terminal nets, ohms *)
  capacitors : (string * string * float) list; (** top, bottom, fF *)
  short_nets : string list list;
      (** label sets of nodes carrying conflicting user nets *)
}

val extract : tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> extracted

val merge_parallel : mos list -> mos list

val reduce_resistors :
  internal:(string -> bool) ->
  (string * string * float) list ->
  (string * string * float) list
(** Series/parallel resistor reduction: chains through [internal] nodes
    (appearing in exactly two resistor terminals) merge with summed
    values; parallel resistors between one node pair combine
    reciprocally.  [extract] passes an [internal] predicate that is true
    only for unlabeled nodes touched by no other device. *)

val merge_parallel_caps :
  (string * string * float) list -> (string * string * float) list
(** Drop capacitors whose plates share a node (dummy units tied to the
    bottom plate) and sum parallel capacitors between the same node pair
    (unit-capacitor arrays) — the reduction every LVS performs. *)

val is_dummy : mos -> bool
(** Gate tied to source or drain — dummy fingers and off devices. *)

val pp_extracted : Format.formatter -> extracted -> unit
