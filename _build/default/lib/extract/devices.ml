(* Device recognition on top of the extracted connectivity.

   - MOS: every full crossing of a poly shape over a diffusion shape is a
     transistor; W and L are measured from the channel rectangle, the
     source/drain nodes are probed just outside the channel.
   - Bipolar: an emitter is an n-diffusion inside a p-base inside an
     n-well; base and collector contacts are the p-diffusion inside the
     base and the n-diffusion in the well outside it.
   - Resistors: a [resmark] region bridges the conducting nodes of the
     head shapes that touch its film.
   - Capacitors: a poly2 plate over a poly plate.

   Parallel MOS devices (same gate/source/drain nodes and length) merge
   into one with their widths summed — the finger reduction every LVS does
   before comparing. *)

module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module D = Amg_circuit.Device

type mos = {
  x_polarity : D.mos_polarity;
  x_w : int;
  x_l : int;
  x_g : string;
  x_s : string;
  x_d : string;
}
[@@deriving show { with_path = false }, eq, ord]

type extracted = {
  mosfets : mos list;
  bjts : (string * string * string) list; (* collector, base, emitter *)
  resistors : (string * string * float) list; (* a, b, ohms *)
  capacitors : (string * string * float) list; (* top, bottom, fF *)
  short_nets : string list list;
}

let polarity_of_diff = function
  | "pdiff" -> D.Pmos
  | _ -> D.Nmos

let extract_mosfets ~tech conn obj =
  let shapes = Lobj.shapes obj in
  let polys =
    List.filter
      (fun (s : Shape.t) ->
        match Technology.layer tech s.Shape.layer with
        | Some l -> l.Layer.kind = Layer.Poly
        | None -> false)
      shapes
  in
  let diffs =
    List.filter
      (fun s ->
        match Technology.layer tech s.Shape.layer with
        | Some l -> Layer.is_active l
        | None -> false)
      shapes
  in
  List.concat_map
    (fun (p : Shape.t) ->
      List.filter_map
        (fun (d : Shape.t) ->
          let pr = p.Shape.rect and dr = d.Shape.rect in
          match Rect.inter pr dr with
          | None -> None
          | Some channel ->
              let vertical = pr.Rect.y0 <= dr.Rect.y0 && pr.Rect.y1 >= dr.Rect.y1 in
              let horizontal = pr.Rect.x0 <= dr.Rect.x0 && pr.Rect.x1 >= dr.Rect.x1 in
              if not (vertical || horizontal) then None
              else begin
                let gate_node =
                  Connectivity.node_at conn ~layer:p.Shape.layer
                    ~x:(Rect.center_x pr) ~y:(Rect.center_y pr)
                in
                let probe ~x ~y = Connectivity.node_at conn ~layer:d.Shape.layer ~x ~y in
                let s_node, d_node, w, l =
                  if vertical then
                    ( probe ~x:(channel.Rect.x0 - 1) ~y:(Rect.center_y channel),
                      probe ~x:(channel.Rect.x1 + 1) ~y:(Rect.center_y channel),
                      Rect.height channel, Rect.width channel )
                  else
                    ( probe ~x:(Rect.center_x channel) ~y:(channel.Rect.y0 - 1),
                      probe ~x:(Rect.center_x channel) ~y:(channel.Rect.y1 + 1),
                      Rect.width channel, Rect.height channel )
                in
                match (gate_node, s_node, d_node) with
                | Some g, Some s, Some dd ->
                    Some
                      { x_polarity = polarity_of_diff d.Shape.layer;
                        x_w = w; x_l = l;
                        x_g = Connectivity.net_name conn g;
                        x_s = Connectivity.net_name conn s;
                        x_d = Connectivity.net_name conn dd }
                | _ -> None
              end)
        diffs)
    polys

(* Merge parallel fingers: same polarity, same L, same gate and the same
   unordered {source, drain} pair; widths add. *)
let merge_parallel mosfets =
  let key m =
    let s, d = if String.compare m.x_s m.x_d <= 0 then (m.x_s, m.x_d) else (m.x_d, m.x_s) in
    (m.x_polarity, m.x_l, m.x_g, s, d)
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun m ->
      let k = key m in
      match Hashtbl.find_opt tbl k with
      | None -> Hashtbl.replace tbl k m
      | Some prev -> Hashtbl.replace tbl k { prev with x_w = prev.x_w + m.x_w })
    mosfets;
  Hashtbl.fold (fun _ m acc -> m :: acc) tbl [] |> List.sort compare_mos

let extract_bjts ~tech conn obj =
  ignore tech;
  let bases = Lobj.rects_on obj "pbase" in
  let wells = Lobj.rects_on obj "nwell" in
  let ndiffs =
    List.filter (fun (s : Shape.t) -> Shape.on_layer s "ndiff") (Lobj.shapes obj)
  in
  let pdiffs =
    List.filter (fun (s : Shape.t) -> Shape.on_layer s "pdiff") (Lobj.shapes obj)
  in
  List.concat_map
    (fun base ->
      let well = List.find_opt (fun w -> Rect.contains_rect w base) wells in
      match well with
      | None -> []
      | Some well ->
          let node_of (s : Shape.t) =
            Connectivity.node_at conn ~layer:s.Shape.layer
              ~x:(Rect.center_x s.Shape.rect) ~y:(Rect.center_y s.Shape.rect)
          in
          let emitters =
            List.filter (fun (s : Shape.t) -> Rect.contains_rect base s.Shape.rect) ndiffs
          in
          let base_contact =
            List.find_opt
              (fun (s : Shape.t) -> Rect.contains_rect base s.Shape.rect)
              pdiffs
          in
          let collector_contact =
            List.find_opt
              (fun (s : Shape.t) ->
                Rect.contains_rect well s.Shape.rect
                && not (Rect.overlaps base s.Shape.rect))
              ndiffs
          in
          (match (emitters, base_contact, collector_contact) with
          | e :: _, Some b, Some c -> (
              match (node_of c, node_of b, node_of e) with
              | Some cn, Some bn, Some en ->
                  [ ( Connectivity.net_name conn cn,
                      Connectivity.net_name conn bn,
                      Connectivity.net_name conn en ) ]
              | _ -> [])
          | _ -> []))
    bases

let extract_resistors ~tech conn obj =
  let marks = Lobj.rects_on obj "resmark" in
  List.filter_map
    (fun mark ->
      (* Film pieces inside the mark; heads are conducting shapes of the
         same layer touching the film. *)
      let films =
        List.filter
          (fun (s : Shape.t) ->
            (match Technology.layer tech s.Shape.layer with
            | Some l -> l.Layer.conducting && not (Layer.is_cut l)
            | None -> false)
            && Rect.contains_rect mark s.Shape.rect)
          (Lobj.shapes obj)
      in
      match films with
      | [] -> None
      | (f : Shape.t) :: _ ->
          let sheet =
            match Technology.layer tech f.Shape.layer with
            | Some l -> l.Layer.sheet_res
            | None -> 0.
          in
          let heads =
            List.filter
              (fun (s : Shape.t) ->
                Shape.on_layer s f.Shape.layer
                && (not (Rect.contains_rect mark s.Shape.rect))
                && List.exists
                     (fun (film : Shape.t) -> Rect.touches s.Shape.rect film.Shape.rect)
                     films)
              (Lobj.shapes obj)
          in
          let nodes =
            List.filter_map
              (fun (s : Shape.t) ->
                Connectivity.node_at conn ~layer:s.Shape.layer
                  ~x:(Rect.center_x s.Shape.rect) ~y:(Rect.center_y s.Shape.rect))
              heads
            |> List.sort_uniq compare
          in
          (* Value estimate: film centre-line length over width. *)
          let film_area = List.fold_left (fun a (s : Shape.t) -> a + Rect.area s.Shape.rect) 0 films in
          let w =
            List.fold_left (fun a (s : Shape.t) ->
                min a (min (Rect.width s.Shape.rect) (Rect.height s.Shape.rect)))
              max_int films
          in
          let squares = if w = 0 then 0. else float_of_int film_area /. float_of_int (w * w) in
          (match nodes with
          | [ a; b ] ->
              Some
                ( Connectivity.net_name conn a,
                  Connectivity.net_name conn b,
                  squares *. sheet )
          | _ -> None))
    marks

let extract_capacitors ~tech conn obj =
  let poly2s = List.filter (fun (s : Shape.t) -> Shape.on_layer s "poly2") (Lobj.shapes obj) in
  let polys = List.filter (fun (s : Shape.t) -> Shape.on_layer s "poly") (Lobj.shapes obj) in
  let cap_per_um2 =
    match Technology.layer tech "poly2" with
    | Some l -> l.Layer.area_cap
    | None -> 0.
  in
  List.concat_map
    (fun (top : Shape.t) ->
      List.filter_map
        (fun (bot : Shape.t) ->
          match Rect.inter top.Shape.rect bot.Shape.rect with
          | Some overlap when Rect.area overlap > 0 -> (
              let tn =
                Connectivity.node_at conn ~layer:"poly2"
                  ~x:(Rect.center_x top.Shape.rect) ~y:(Rect.center_y top.Shape.rect)
              in
              let bn =
                Connectivity.node_at conn ~layer:"poly"
                  ~x:(Rect.center_x bot.Shape.rect) ~y:(Rect.center_y bot.Shape.rect)
              in
              match (tn, bn) with
              | Some t, Some b ->
                  let ff =
                    cap_per_um2 *. (float_of_int (Rect.area overlap) /. 1.0e6) /. 1000.
                  in
                  Some (Connectivity.net_name conn t, Connectivity.net_name conn b, ff)
              | _ -> None)
          | _ -> None)
        polys)
    poly2s

(* Standard LVS reductions on resistors: chains through internal nodes
   (nodes that appear in exactly two resistor terminals and nowhere else)
   merge with summed values — a strip resistor realised as several film
   segments linked by metal is one schematic device.  Parallel resistors
   between the same node pair combine reciprocally. *)
let reduce_resistors ~internal resistors =
  let merge_series rs =
    let occurrences node =
      List.filteri
        (fun _ (a, b, _) -> String.equal a node || String.equal b node)
        rs
    in
    let candidate =
      List.concat_map (fun (a, b, _) -> [ a; b ]) rs
      |> List.sort_uniq String.compare
      |> List.find_opt (fun n -> internal n && List.length (occurrences n) = 2)
    in
    match candidate with
    | None -> None
    | Some n -> (
        match occurrences n with
        | [ ((a1, b1, v1) as r1); ((a2, b2, v2) as r2) ] ->
            let other (a, b, _) = if String.equal a n then b else a in
            let x = other r1 and y = other r2 in
            ignore (a1, b1, a2, b2);
            Some
              ((x, y, v1 +. v2)
              :: List.filter (fun r -> r != r1 && r != r2) rs)
        | _ -> None)
  in
  let rec series rs = match merge_series rs with Some rs' -> series rs' | None -> rs in
  let parallel rs =
    let tbl = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun (a, b, v) ->
        let key = if String.compare a b <= 0 then (a, b) else (b, a) in
        match Hashtbl.find_opt tbl key with
        | None ->
            order := key :: !order;
            Hashtbl.replace tbl key ((a, b), v)
        | Some (first, acc) ->
            let v' =
              if acc = 0. || v = 0. then 0.
              else 1. /. ((1. /. acc) +. (1. /. v))
            in
            Hashtbl.replace tbl key (first, v'))
      rs;
    List.rev_map
      (fun key ->
        let (a, b), v = Hashtbl.find tbl key in
        (a, b, v))
      !order
  in
  parallel (series resistors)

(* Standard LVS reductions on capacitors: plates on the same node are not a
   device (dummy units tied to the bottom plate), and parallel capacitors
   between the same node pair merge with summed values (unit-capacitor
   arrays). *)
let merge_parallel_caps caps =
  let live = List.filter (fun (a, b, _) -> not (String.equal a b)) caps in
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (a, b, ff) ->
      let key = if String.compare a b <= 0 then (a, b) else (b, a) in
      (match Hashtbl.find_opt tbl key with
      | None ->
          order := key :: !order;
          Hashtbl.replace tbl key ((a, b), ff)
      | Some (first, acc) -> Hashtbl.replace tbl key (first, acc +. ff)))
    live;
  List.rev_map
    (fun key ->
      let (a, b), ff = Hashtbl.find tbl key in
      (a, b, ff))
    !order

let extract ~tech obj =
  let conn = Connectivity.build ~tech obj in
  let mosfets = merge_parallel (extract_mosfets ~tech conn obj) in
  let bjts = extract_bjts ~tech conn obj in
  let capacitors = merge_parallel_caps (extract_capacitors ~tech conn obj) in
  (* A node is internal to a resistor chain only if it carries no user
     label and no other device type touches it. *)
  let labeled = Connectivity.labeled_nets conn in
  let other_nets =
    List.concat_map (fun m -> [ m.x_g; m.x_s; m.x_d ]) mosfets
    @ List.concat_map (fun (c, b, e) -> [ c; b; e ]) bjts
    @ List.concat_map (fun (a, b, _) -> [ a; b ]) capacitors
  in
  let internal n = (not (List.mem n labeled)) && not (List.mem n other_nets) in
  {
    mosfets;
    bjts;
    resistors = reduce_resistors ~internal (extract_resistors ~tech conn obj);
    capacitors;
    short_nets = Connectivity.shorts conn;
  }

(* A dummy transistor has gate, source and drain all tied to one rail (the
   module-E dummies).  A diode-connected device (gate tied to the drain
   only) is a real device and stays live. *)
let is_dummy m = String.equal m.x_g m.x_s && String.equal m.x_g m.x_d

let pp_extracted ppf e =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun m ->
      Fmt.pf ppf "MOS %s W=%.1f L=%.1f g=%s s=%s d=%s%s@,"
        (match m.x_polarity with D.Pmos -> "P" | D.Nmos -> "N")
        (Units.to_um m.x_w) (Units.to_um m.x_l) m.x_g m.x_s m.x_d
        (if is_dummy m then " (dummy)" else ""))
    e.mosfets;
  List.iter (fun (c, b, em) -> Fmt.pf ppf "NPN c=%s b=%s e=%s@," c b em) e.bjts;
  List.iter (fun (a, b, r) -> Fmt.pf ppf "RES %s %s %.0f ohm@," a b r) e.resistors;
  List.iter (fun (t, b, c) -> Fmt.pf ppf "CAP %s %s %.1f fF@," t b c) e.capacitors;
  List.iter
    (fun nets -> Fmt.pf ppf "SHORT between %s@," (String.concat ", " nets))
    e.short_nets;
  Fmt.pf ppf "@]"
