(** Layout-versus-schematic comparison ("LVS").

    Devices match on their terminal net names (source/drain unordered,
    bulk ignored); MOS widths must agree within a relative tolerance after
    parallel-finger merging; dummy fingers on the layout side are dropped;
    extracted label conflicts are reported as shorts. *)

type mismatch =
  | Missing_device of string
  | Extra_device of string
  | Size_mismatch of string * string
  | Short of string list
[@@deriving show, eq]

type result = { matched : int; mismatches : mismatch list }

val clean : result -> bool

val golden_mos : Amg_circuit.Netlist.t -> Devices.mos list
(** The schematic's MOS devices in extracted form, parallel-merged. *)

val run :
  ?tol:float -> golden:Amg_circuit.Netlist.t -> Devices.extracted -> result
(** [tol] is the relative width tolerance (default 5%). *)

val pp_result : Format.formatter -> result -> unit
