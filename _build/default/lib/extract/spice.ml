(* SPICE netlist export — the hand-off format every 1996 analog flow used
   downstream of layout extraction: the extracted circuit goes to a
   simulator for post-layout verification. *)

module Device = Amg_circuit.Device
module Netlist = Amg_circuit.Netlist

(* SPICE node names: alphanumerics plus a few safe punctuation characters.
   Hierarchical nets like "pair/out" become "pair_out". *)
let node name =
  if String.equal name "" then "0"
  else
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> c
        | _ -> '_')
      name

(* Engineering notation with SPICE suffixes, trimmed of trailing zeros. *)
let si_value v =
  let mag = Float.abs v in
  let scaled, suffix =
    if mag = 0.0 then (v, "")
    else if mag >= 1e9 then (v /. 1e9, "g")
    else if mag >= 1e6 then (v /. 1e6, "meg")
    else if mag >= 1e3 then (v /. 1e3, "k")
    else if mag >= 1.0 then (v, "")
    else if mag >= 1e-3 then (v *. 1e3, "m")
    else if mag >= 1e-6 then (v *. 1e6, "u")
    else if mag >= 1e-9 then (v *. 1e9, "n")
    else if mag >= 1e-12 then (v *. 1e12, "p")
    else (v *. 1e15, "f")
  in
  let s = Printf.sprintf "%.6g" scaled in
  s ^ suffix

let micron_value nm = si_value (float_of_int nm *. 1e-9) (* nm -> m *)

let mos_model = function Device.Nmos -> "nmos1u" | Device.Pmos -> "pmos1u"

let mos_card ~name ~polarity ~g ~d ~s ~b ~w ~l =
  Printf.sprintf "M%s %s %s %s %s %s w=%s l=%s" name (node d) (node g) (node s)
    (node b) (mos_model polarity) (micron_value w) (micron_value l)

let bjt_card ~name ~c ~b ~e =
  Printf.sprintf "Q%s %s %s %s npn1u" name (node c) (node b) (node e)

let res_card ~name ~a ~b ~ohms =
  Printf.sprintf "R%s %s %s %s" name (node a) (node b) (si_value ohms)

let cap_card ~name ~a ~b ~ff =
  Printf.sprintf "C%s %s %s %s" name (node a) (node b) (si_value (ff *. 1e-15))

let device_card = function
  | Device.Mos m ->
      mos_card ~name:m.Device.m_name ~polarity:m.Device.polarity ~g:m.Device.g
        ~d:m.Device.d ~s:m.Device.s ~b:m.Device.b ~w:m.Device.w ~l:m.Device.l
  | Device.Bjt q ->
      bjt_card ~name:q.Device.q_name ~c:q.Device.c ~b:q.Device.bb ~e:q.Device.e
  | Device.Res r ->
      res_card ~name:r.Device.r_name ~a:r.Device.ra ~b:r.Device.rb
        ~ohms:r.Device.ohms
  | Device.Cap c ->
      cap_card ~name:c.Device.c_name ~a:c.Device.ca ~b:c.Device.cb ~ff:c.Device.ff

let subckt_of_netlist (nl : Netlist.t) =
  let ports = List.map node (Netlist.external_ports nl) in
  let header =
    if ports = [] then [ Printf.sprintf "* circuit %s" (Netlist.name nl) ]
    else
      [ Printf.sprintf ".subckt %s %s" (node (Netlist.name nl))
          (String.concat " " ports) ]
  in
  let footer = if ports = [] then [] else [ ".ends" ] in
  header @ List.map device_card (Netlist.devices nl) @ footer

let of_netlist ?(title = "amg extracted netlist") (nl : Netlist.t) =
  String.concat "\n"
    (("* " ^ title) :: (subckt_of_netlist nl @ [ ".end"; "" ]))

(* Extracted devices carry no names or bulk nets; synthesize stable names
   from position in the list and default bulks from polarity. *)
let of_extracted ?(title = "amg extracted netlist") ?(nmos_bulk = "vss")
    ?(pmos_bulk = "vdd") (x : Devices.extracted) =
  let buf = Buffer.create 1024 in
  let line s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  line ("* " ^ title);
  List.iteri
    (fun i (m : Devices.mos) ->
      let b =
        match m.Devices.x_polarity with
        | Device.Nmos -> nmos_bulk
        | Device.Pmos -> pmos_bulk
      in
      line
        (mos_card ~name:(string_of_int i) ~polarity:m.Devices.x_polarity
           ~g:m.Devices.x_g ~d:m.Devices.x_d ~s:m.Devices.x_s ~b
           ~w:m.Devices.x_w ~l:m.Devices.x_l))
    x.Devices.mosfets;
  List.iteri
    (fun i (c, b, e) -> line (bjt_card ~name:(string_of_int i) ~c ~b ~e))
    x.Devices.bjts;
  List.iteri
    (fun i (a, b, ohms) -> line (res_card ~name:(string_of_int i) ~a ~b ~ohms))
    x.Devices.resistors;
  List.iteri
    (fun i (a, b, ff) -> line (cap_card ~name:(string_of_int i) ~a ~b ~ff))
    x.Devices.capacitors;
  List.iter
    (fun labels ->
      line ("* SHORT: conflicting nets on one node: " ^ String.concat " " labels))
    x.Devices.short_nets;
  line ".end";
  Buffer.contents buf

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)
