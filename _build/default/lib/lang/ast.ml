(* Abstract syntax of the procedural layout description language (§2.1).

   The surface syntax follows the paper's Figs. 2 and 7:

     gatecon = ContactRow(layer = "poly", W = 1)

     ENT ContactRow(layer, <W>, <L>)
       INBOX(layer, W, L)
       INBOX("metal1")
       ARRAY("contact")

   extended with the loop, conditional and backtracking constructs the
   paper describes in prose (IF/ELSE/END, FOR/TO/END, CHOOSE/ORELSE/END). *)

type binop =
  | Add | Sub | Mul | Div
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
[@@deriving show { with_path = false }, eq]

type unop = Neg | Not [@@deriving show { with_path = false }, eq]

type expr =
  | Num of float                   (* micrometres / scalars *)
  | Str of string
  | Bool of bool
  | Ident of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * arg list
[@@deriving show { with_path = false }, eq]

and arg = { arg_name : string option; arg_value : expr }
[@@deriving show { with_path = false }, eq]

type stmt =
  | Assign of string * expr                  (* x = expr (copies objects) *)
  | Expr of expr
  | If of expr * stmt list * stmt list
  | For of string * expr * expr * stmt list  (* FOR i = a TO b *)
  | Choose of stmt list list                 (* CHOOSE … ORELSE … END *)
[@@deriving show { with_path = false }, eq]

type param = { pname : string; optional : bool }
[@@deriving show { with_path = false }, eq]

type entity = { ent_name : string; params : param list; body : stmt list }
[@@deriving show { with_path = false }, eq]

type program = { entities : entity list; top : stmt list }
[@@deriving show { with_path = false }, eq]

let find_entity program name =
  List.find_opt (fun e -> String.equal e.ent_name name) program.entities
