(* Pretty-printer from the AST back to layout-language source.  The output
   re-parses to the same AST (round-trip property in the tests), which also
   documents the concrete syntax precisely. *)

let binop_str = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
  | Ast.Eq -> "==" | Ast.Ne -> "!=" | Ast.Lt -> "<" | Ast.Le -> "<="
  | Ast.Gt -> ">" | Ast.Ge -> ">=" | Ast.And -> "&&" | Ast.Or -> "||"

let precedence = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 3
  | Ast.Add | Ast.Sub -> 4
  | Ast.Mul | Ast.Div -> 5

let number_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let rec expr_str ?(prec = 0) (e : Ast.expr) =
  match e with
  | Ast.Num f -> number_str f
  | Ast.Str s -> Printf.sprintf "%S" s
  | Ast.Bool true -> "TRUE"
  | Ast.Bool false -> "FALSE"
  | Ast.Ident x -> x
  | Ast.Unop (Ast.Neg, e) -> "-" ^ expr_str ~prec:10 e
  | Ast.Unop (Ast.Not, e) -> "!" ^ expr_str ~prec:10 e
  | Ast.Binop (op, a, b) ->
      let p = precedence op in
      let s =
        Printf.sprintf "%s %s %s" (expr_str ~prec:p a) (binop_str op)
          (expr_str ~prec:(p + 1) b)
      in
      if p < prec then "(" ^ s ^ ")" else s
  | Ast.Call (name, args) ->
      let arg_str (a : Ast.arg) =
        match a.Ast.arg_name with
        | Some n -> n ^ " = " ^ expr_str a.Ast.arg_value
        | None -> expr_str a.Ast.arg_value
      in
      Printf.sprintf "%s(%s)" name (String.concat ", " (List.map arg_str args))

let rec stmt_lines ~indent (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Ast.Assign (x, e) -> [ pad ^ x ^ " = " ^ expr_str e ]
  | Ast.Expr e -> [ pad ^ expr_str e ]
  | Ast.If (cond, then_b, else_b) ->
      [ pad ^ "IF " ^ expr_str cond ]
      @ block_lines ~indent:(indent + 2) then_b
      @ (if else_b = [] then []
         else (pad ^ "ELSE") :: block_lines ~indent:(indent + 2) else_b)
      @ [ pad ^ "END" ]
  | Ast.For (v, lo, hi, body) ->
      [ Printf.sprintf "%sFOR %s = %s TO %s" pad v (expr_str lo) (expr_str hi) ]
      @ block_lines ~indent:(indent + 2) body
      @ [ pad ^ "END" ]
  | Ast.Choose branches ->
      (pad ^ "CHOOSE")
      :: (List.concat
            (List.mapi
               (fun i b ->
                 (if i = 0 then [] else [ pad ^ "ORELSE" ])
                 @ block_lines ~indent:(indent + 2) b)
               branches)
         @ [ pad ^ "END" ])

and block_lines ~indent stmts = List.concat_map (stmt_lines ~indent) stmts

let entity_lines (e : Ast.entity) =
  let param (p : Ast.param) =
    if p.Ast.optional then "<" ^ p.Ast.pname ^ ">" else p.Ast.pname
  in
  (Printf.sprintf "ENT %s(%s)" e.Ast.ent_name
     (String.concat ", " (List.map param e.Ast.params)))
  :: block_lines ~indent:2 e.Ast.body

let program_str (p : Ast.program) =
  let tops = block_lines ~indent:0 p.Ast.top in
  let ents = List.concat_map (fun e -> entity_lines e @ [ "" ]) p.Ast.entities in
  String.concat "\n" (tops @ (if tops = [] then [] else [ "" ]) @ ents) ^ "\n"
