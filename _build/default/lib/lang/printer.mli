(** Pretty-printer from the AST back to layout-language source.

    The output re-parses to the same AST ({!Parser.parse_program} of
    {!program_str} is the identity up to [Ast.equal_program]); the
    round-trip property is checked in the test suite.  Useful for
    normalising hand-written sources and for emitting generated module
    descriptions. *)

val number_str : float -> string
(** Shortest lossless rendering: integers without a decimal point. *)

val expr_str : ?prec:int -> Ast.expr -> string
(** Render an expression, parenthesising only where the surrounding
    precedence [prec] requires it. *)

val stmt_lines : indent:int -> Ast.stmt -> string list
(** Render one statement as source lines, indented by [indent] spaces. *)

val entity_lines : Ast.entity -> string list
(** Render an [ENT] definition; the body is indented two spaces so the
    margin rule terminates it correctly. *)

val program_str : Ast.program -> string
(** Render a whole program: top-level statements first, then entities. *)
