lib/lang/lexer.pp.ml: Buffer Fmt List Ppx_deriving_runtime String
