lib/lang/value.pp.ml: Amg_layout Fmt
