lib/lang/printer.pp.ml: Ast Float List Printf String
