lib/lang/interp.pp.mli: Amg_core Amg_layout Ast Hashtbl Value
