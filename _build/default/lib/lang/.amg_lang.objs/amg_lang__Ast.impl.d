lib/lang/ast.pp.ml: List Ppx_deriving_runtime String
