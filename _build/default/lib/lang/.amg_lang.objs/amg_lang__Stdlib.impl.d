lib/lang/stdlib.pp.ml: String
