lib/lang/interp.pp.ml: Amg_compact Amg_core Amg_geometry Amg_layout Amg_route Ast Buffer Float Fmt Fun Hashtbl List Option Parser String Value
