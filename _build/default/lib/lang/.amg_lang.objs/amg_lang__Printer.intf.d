lib/lang/printer.pp.mli: Ast
