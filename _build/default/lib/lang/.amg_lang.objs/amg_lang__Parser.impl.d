lib/lang/parser.pp.ml: Array Ast Fmt Lexer List
