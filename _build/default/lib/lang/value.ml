module Lobj = Amg_layout.Lobj

type t =
  | Num of float     (* scalars; lengths are micrometres *)
  | Str of string
  | Bool of bool
  | Obj of Lobj.t
  | Unit             (* also the value of an omitted optional parameter *)

let type_name = function
  | Num _ -> "number"
  | Str _ -> "string"
  | Bool _ -> "bool"
  | Obj _ -> "object"
  | Unit -> "unit"

let truthy = function
  | Bool b -> b
  | Num f -> f <> 0.
  | Unit -> false
  | Str s -> s <> ""
  | Obj _ -> true

let pp ppf = function
  | Num f -> Fmt.pf ppf "%g" f
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.pf ppf "%b" b
  | Obj o -> Fmt.pf ppf "<object %s>" (Lobj.name o)
  | Unit -> Fmt.pf ppf "()"
