(** Interpreter for the procedural layout description language.

    Entity bodies build an implicit current object through the primitive
    functions; [compact(obj, DIR, layers…)] places sub-objects with the
    successive compactor; assignment of an object value copies its data
    structure; [CHOOSE]/[ORELSE] backtracks over design-rule rejections. *)

exception Runtime_error of string

type ctx
(** Interpreter context: environment, program, and collected PRINT output. *)

type frame

val create_ctx : Amg_core.Env.t -> Ast.program -> ctx

val output : ctx -> string
(** Everything PRINT produced. *)

val run : Amg_core.Env.t -> Ast.program -> ctx * (string, Value.t) Hashtbl.t
(** Execute the top-level statements; returns the context and the top-level
    variable bindings (generated objects among them). *)

val build :
  Amg_core.Env.t ->
  Ast.program ->
  string ->
  (string * Value.t) list ->
  Amg_layout.Lobj.t
(** [build env program entity args] instantiates one entity with keyword
    arguments and returns its layout object.
    @raise Runtime_error on type or arity errors, unknown entities.
    @raise Amg_core.Env.Rejected when generation fails every variant. *)

val parse_and_build :
  Amg_core.Env.t ->
  string ->
  string ->
  (string * Value.t) list ->
  Amg_layout.Lobj.t
(** Parse source text, then {!build}. *)
