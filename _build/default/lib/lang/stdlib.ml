(* Module sources in the layout language, mirroring the paper's Figs. 2
   and 7.  These are used by the examples, the tests and the code-length
   benchmark (CLAIM-CODE). *)

(* Fig. 2: "with these three primitive function-calls a complete
   parameterizable contact row is described without specifying or
   calculating an exact coordinate and without evaluating a design rule." *)
let contact_row = {|
ENT ContactRow(layer, <W>, <L>, <net>)
  INBOX(layer, W, L, net = net)
  INBOX("metal1", net = net)
  ARRAY("contact", net = net)
|}

(* Fig. 7: the simple MOS differential pair.  The transistor has its poly
   contact row compacted onto the gate from the north and its diffusion
   contact row from the east; the pair shares the middle diffusion row. *)
let diff_pair = {|
ENT Trans(<W>, <L>)
  TWORECTS("poly", "pdiff", W, L, neta = "g")
  polycon = ContactRow(layer = "poly", L = L, net = "g")
  diffcon = ContactRow(layer = "pdiff", W = W, net = "sd")
  compact(polycon, SOUTH, "poly", align = "CENTER")
  compact(diffcon, EAST, "pdiff", align = "MIN")

ENT DiffPair(<W>, <L>)
  trans1 = Trans(W = W, L = L)
  RENAME_NET(trans1, "g", "g1")
  RENAME_NET(trans1, "sd", "d1")
  trans2 = trans1
  RENAME_NET(trans2, "g1", "g2")
  RENAME_NET(trans2, "d1", "s")
  diffcon = ContactRow(layer = "pdiff", W = W, net = "d2")
  compact(trans1, WEST)
  compact(trans2, WEST, "pdiff", align = "MIN")
  compact(diffcon, WEST, "pdiff", align = "MIN")
  PORT("g1", "g1", "poly")
  PORT("g2", "g2", "poly")
  PORT("d1", "d1", "metal1")
  PORT("d2", "d2", "metal1")
  PORT("s", "s", "metal1")
|}

(* A contact row demonstrating CHOOSE backtracking: the requested width is
   tried first; when the design rules reject it, the branch is abandoned
   and the minimum-width fallback is used instead — no if-then cascade
   needed (§2.1). *)
let choose_demo = {|
ENT FlexRow(W, L)
  CHOOSE
    INBOX("pdiff", W, L)
  ORELSE
    INBOX("pdiff", 2, L)
  END
  INBOX("metal1")
  ARRAY("contact")
|}

(* A topology-variant module: a single row is tried first and explicitly
   rejected when the result exceeds the width budget; the fallback folds
   the row into two stacked halves.  Uses the geometry-query builtins. *)
let fit_row = {|
ENT FitRow(L, MaxW)
  CHOOSE
    INBOX("pdiff", 2, L, net = "x")
    INBOX("metal1", net = "x")
    ARRAY("contact", net = "x")
    IF WIDTH_OF() > MaxW
      REJECT("single row too wide")
    END
  ORELSE
    half = ContactRow(layer = "pdiff", L = L / 2, net = "x")
    half2 = half
    compact(half, NORTH)
    compact(half2, NORTH, "pdiff", align = "MIN")
  END
|}

(* A tap ladder: FOR loop + derived net names ("tap" + i), the idiom for
   array-style generators in the language. *)
let ladder = {|
ENT Ladder(N, <W>)
  FOR i = 1 TO N
    seg = ContactRow(layer = "pdiff", W = W, net = "tap" + i)
    compact(seg, SOUTH, align = "MIN")
  END
|}

let all = String.concat "\n" [ contact_row; diff_pair; fit_row; ladder ]
