(** A five-transistor OTA: the second full application of the environment.

    Different topology from the paper's amplifier (NMOS input pair, PMOS
    mirror load, no bipolar stage), generated entirely by the same
    partition → module-library → {!Assembly} pipeline — demonstrating the
    paper's claim that "further amplifiers or modules" need no new layout
    code. *)

type report = {
  obj : Amg_layout.Lobj.t;
  width_um : float;
  height_um : float;
  area_um2 : float;
  routing : Amg_route.Global.result;
  build_time_s : float;
}

val netlist : unit -> Amg_circuit.Netlist.t
(** The transistor-level schematic (external ports: inp, inn, out, vbias,
    vdd, vss). *)

val hints : (string * Amg_circuit.Partition.matching) list

val clusters : unit -> Amg_circuit.Partition.cluster list

val build : Amg_core.Env.t -> report
(** Generate the complete layout: three rows (tail / input pair / mirror),
    routed and supply-connected. *)
