(* The complete amplifier layout (§3, Fig. 9).

   The paper placed the generated modules and routed the global nets by
   hand; this module is the scripted equivalent of that manual step:

   - a three-row floorplan with reserved routing channels between the
     rows, each carrying a substrate-tap row (latch-up coverage);
   - metal1 supply rails (the tap rows double as the vss rails, vdd gets
     its own bars) with metal2 risers from every supply port, tied
     together per net by edge risers;
   - the global comb router connecting every internal signal net through
     the channels and the east spine.

   The result is physically complete: full DRC including latch-up, clean
   layout-versus-schematic, and every net a single electrical node. *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Port = Amg_layout.Port
module Env = Amg_core.Env
module Build = Amg_core.Build
module Path = Amg_route.Path
module Wire = Amg_route.Wire
module Partition = Amg_circuit.Partition

type report = {
  obj : Lobj.t;
  width_um : float;
  height_um : float;
  area_um2 : float;
  block_areas : (string * float) list;
  routing : Amg_route.Global.result;
  build_time_s : float;
}

let um = Units.of_um

let find_cluster clusters prefix =
  match
    List.find_opt
      (fun (c : Partition.cluster) ->
        String.length c.Partition.cluster_name >= String.length prefix
        && String.sub c.Partition.cluster_name 0 (String.length prefix) = prefix)
      clusters
  with
  | Some c -> c
  | None -> Env.reject "Amplifier: no cluster %s*" prefix

let build env =
  let t0 = Sys.time () in
  let netlist = Schematic.netlist () in
  let clusters = Schematic.clusters () in
  let gen prefix = Blocks.generate env netlist (find_cluster clusters prefix) in
  let block_a = gen "cascode_MA1" in
  let block_b = gen "mirror_MB1" in
  let block_c = gen "sources_MC1" in
  let block_mt = gen "single_MT" in
  let block_d = gen "single_MD1" in
  let block_e = gen "pair_ME1" in
  let block_f = gen "bjt_Q1" in
  let block_rz = gen "passive_RZ" in
  let block_cc = gen "passive_CC" in
  let blocks =
    [
      ("A", block_a); ("B", block_b); ("C", block_c); ("MT", block_mt);
      ("D", block_d); ("E", block_e); ("F", block_f); ("RZ", block_rz);
      ("CC", block_cc);
    ]
  in
  let block_areas =
    List.map
      (fun (n, b) -> (n, float_of_int (Lobj.bbox_area b) /. 1.0e6))
      blocks
  in
  (* Three rows: supplies/bias on top, the input pair in the middle, the
     output path at the bottom.  The generic assembly stacks them with
     reserved routing channels, tap rows, supply rails and global comb
     routing (see {!Assembly}). *)
  let row_top = Assembly.pack_row env ~name:"row_top" [ block_c; block_mt; block_a ] in
  let row_mid = Assembly.pack_row env ~name:"row_mid" [ block_e; block_cc ] in
  let row_low = Assembly.pack_row env ~name:"row_low" [ block_b; block_d; block_rz; block_f ] in
  let asm =
    Assembly.assemble env ~name:"bicmos_amp" ~netlist
      ~rows:[ row_low; row_mid; row_top ] ()
  in
  let amp = asm.Assembly.obj and routing = asm.Assembly.routing in
  let bbox = Lobj.bbox_exn amp in
  let t1 = Sys.time () in
  {
    obj = amp;
    width_um = Units.to_um (Rect.width bbox);
    height_um = Units.to_um (Rect.height bbox);
    area_um2 = float_of_int (Rect.area bbox) /. 1.0e6;
    block_areas;
    routing;
    build_time_s = t1 -. t0;
  }

(* The paper's result for comparison: 592 x 481 um^2 in the 1 um Siemens
   BiCMOS technology. *)
let paper_width_um = 592.
let paper_height_um = 481.
let paper_area_um2 = paper_width_um *. paper_height_um
