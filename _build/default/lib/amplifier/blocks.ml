(* Cluster-to-module dispatch: realise each partition cluster with the
   library module its style calls for (§3's table of block choices). *)

module D = Amg_circuit.Device
module Netlist = Amg_circuit.Netlist
module Partition = Amg_circuit.Partition
module M = Amg_modules
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env
module Units = Amg_geometry.Units

let polarity_of = function D.Nmos -> M.Mosfet.Nmos | D.Pmos -> M.Mosfet.Pmos

let mos_exn netlist name =
  match Netlist.find netlist name with
  | Some (D.Mos m) -> m
  | _ -> Env.reject "Blocks: %s is not a MOS device" name

let bjt_exn netlist name =
  match Netlist.find netlist name with
  | Some (D.Bjt q) -> q
  | _ -> Env.reject "Blocks: %s is not a bipolar device" name

let generate env netlist (c : Partition.cluster) =
  let name = c.Partition.cluster_name in
  match (c.Partition.style, c.Partition.device_names) with
  | Partition.Mirror_simple_style, diode :: out :: _ ->
      let d = mos_exn netlist diode and o = mos_exn netlist out in
      let well_tap = if d.D.polarity = D.Pmos then Some d.D.b else None in
      M.Current_mirror.simple env ~name ?well_tap
        ~polarity:(polarity_of d.D.polarity)
        ~w:d.D.w ~l:d.D.l ~net_g:d.D.g ~net_s:d.D.s ~net_dout:o.D.d ()
  | Partition.Mirror_symmetric_style, diode :: out :: _ ->
      let d = mos_exn netlist diode and o = mos_exn netlist out in
      let well_tap = if d.D.polarity = D.Pmos then Some d.D.b else None in
      M.Current_mirror.symmetric env ~name ?well_tap
        ~polarity:(polarity_of d.D.polarity)
        ~w:(d.D.w / 2) ~l:d.D.l ~net_g:d.D.g ~net_s:d.D.s ~net_dout:o.D.d ()
  | Partition.Cross_coupled_style, [ a; b ] ->
      let da = mos_exn netlist a and db = mos_exn netlist b in
      let well_tap = if da.D.polarity = D.Pmos then Some da.D.b else None in
      M.Cross_coupled.common_gate env ~name ?well_tap
        ~polarity:(polarity_of da.D.polarity)
        ~w:(da.D.w / 2) ~l:da.D.l ~net_s:da.D.s ~net_da:da.D.d ~net_db:db.D.d
        ~net_g:da.D.g ()
  | Partition.Common_centroid_style, [ a; b ] ->
      let da = mos_exn netlist a and db = mos_exn netlist b in
      let spec = M.Common_centroid.paper_spec in
      let fingers_per_device = 2 * spec.M.Common_centroid.pairs in
      let well_tap = if da.D.polarity = D.Pmos then Some da.D.b else None in
      M.Common_centroid.make env ~name ~spec ?well_tap
        ~polarity:(polarity_of da.D.polarity)
        ~w:(da.D.w / fingers_per_device)
        ~l:da.D.l ~net_ga:da.D.g ~net_gb:db.D.g ~net_da:da.D.d ~net_db:db.D.d
        ~net_s:da.D.s ()
  | Partition.Diff_pair_style, [ a; b ] ->
      let da = mos_exn netlist a and db = mos_exn netlist b in
      M.Diff_pair.make env ~name ~polarity:(polarity_of da.D.polarity) ~w:da.D.w
        ~l:da.D.l ~net_g1:da.D.g ~net_g2:db.D.g ~net_d1:da.D.d ~net_d2:db.D.d
        ~net_s:da.D.s ()
  | Partition.Cascode_style, [ a; b ] ->
      (* [b] sits on [a]: the shared net is a.d = b.s. *)
      let da = mos_exn netlist a and db = mos_exn netlist b in
      let mid = da.D.d in
      let arr (m : D.mos) side =
        (* The shared rail faces the other device; the outer terminal gets
           its own strap so the parent can reach it. *)
        let outer_net, outer_side =
          if side = Amg_geometry.Dir.North then (m.D.s, Amg_geometry.Dir.South)
          else (m.D.d, Amg_geometry.Dir.North)
        in
        M.Mos_array.make env ~name:(name ^ "_" ^ m.D.m_name)
          ~polarity:(polarity_of m.D.polarity) ~w:m.D.w ~l:m.D.l
          ~columns:
            [ Amg_modules.Mos_array.Row m.D.s; Amg_modules.Mos_array.Fin m.D.g;
              Amg_modules.Mos_array.Row m.D.d ]
          ~straps:
            [ { M.Mos_array.strap_net = mid; side; metal = M.Mos_array.M1 };
              { M.Mos_array.strap_net = outer_net; side = outer_side; metal = M.Mos_array.M1 } ]
          ()
      in
      M.Current_mirror.stacked_pair env ~name
        ~bottom:(arr da Amg_geometry.Dir.North)
        ~top:(arr db Amg_geometry.Dir.South)
        ()
  | Partition.Interdigitated, [ a ] ->
      let m = mos_exn netlist a in
      let fingers = max 2 (m.D.w / Units.of_um 12.) in
      let well_tap = if m.D.polarity = D.Pmos then Some m.D.b else None in
      M.Interdigitated.make env ~name ?well_tap
        ~polarity:(polarity_of m.D.polarity)
        ~w:(m.D.w / fingers) ~l:m.D.l ~fingers ~net_g:m.D.g ~net_s:m.D.s
        ~net_d:m.D.d ()
  | Partition.Single, [ a ] ->
      let m = mos_exn netlist a in
      M.Mosfet.make env ~name ~polarity:(polarity_of m.D.polarity) ~w:m.D.w
        ~l:m.D.l ~net_g:m.D.g ~net_s:m.D.s ~net_d:m.D.d ()
  | Partition.Bjt_pair_style, [ a; b ] ->
      let qa = bjt_exn netlist a and qb = bjt_exn netlist b in
      M.Bipolar.symmetric_pair env ~name ~we:(Units.of_um 2.) ~le:(Units.of_um 8.)
        ~nets_1:(qa.D.e, qa.D.bb, qa.D.c)
        ~nets_2:(qb.D.e, qb.D.bb, qb.D.c)
        ()
  | Partition.Bjt_pair_style, [ a ] ->
      let qa = bjt_exn netlist a in
      M.Bipolar.make env ~name ~we:(Units.of_um 2.) ~le:(Units.of_um 8.)
        ~net_e:qa.D.e ~net_b:qa.D.bb ~net_c:qa.D.c ()
  | Partition.Passive, [ a ] -> (
      match Netlist.find netlist a with
      | Some (D.Res r) ->
          let sheet = 25. in
          let obj, _ =
            M.Resistor.make env ~name ~squares:(r.D.ohms /. sheet) ~net_a:r.D.ra
              ~net_b:r.D.rb ()
          in
          obj
      | Some (D.Cap cc) ->
          let obj, _ =
            M.Capacitor.make env ~name ~cap_ff:cc.D.ff ~net_top:cc.D.ca
              ~net_bot:cc.D.cb ()
          in
          obj
      | _ -> Env.reject "Blocks: passive cluster %s has no passive device" name)
  | style, names ->
      Env.reject "Blocks: cannot realise cluster %s (style %s, %d devices)" name
        (Partition.show_style style)
        (List.length names)
