(* A classic five-transistor OTA, assembled with the same partition ->
   module -> {!Assembly} pipeline as the paper's amplifier.

   This is the second application of the environment: the paper's claim is
   that the module library plus the compaction/assembly machinery handles
   "further amplifiers or modules" without new layout code, and this
   circuit — a different topology, NMOS input instead of PMOS, no bipolar
   stage — exercises exactly that. *)

module D = Amg_circuit.Device
module Netlist = Amg_circuit.Netlist
module Partition = Amg_circuit.Partition
module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Lobj = Amg_layout.Lobj
module Env = Amg_core.Env

type report = {
  obj : Lobj.t;
  width_um : float;
  height_um : float;
  area_um2 : float;
  routing : Amg_route.Global.result;
  build_time_s : float;
}

let um = Units.of_um

let netlist () =
  Netlist.create ~name:"ota5"
    ~external_ports:[ "inp"; "inn"; "out"; "vbias"; "vdd"; "vss" ]
    [
      (* NMOS input pair. *)
      D.mos ~name:"M1" ~polarity:D.Nmos ~w:(um 20.) ~l:(um 1.) ~g:"inp"
        ~d:"n1" ~s:"tail" ~b:"vss";
      D.mos ~name:"M2" ~polarity:D.Nmos ~w:(um 20.) ~l:(um 1.) ~g:"inn"
        ~d:"out" ~s:"tail" ~b:"vss";
      (* PMOS mirror load, diode on the pair's first drain. *)
      D.mos ~name:"M3" ~polarity:D.Pmos ~w:(um 16.) ~l:(um 2.) ~g:"n1"
        ~d:"n1" ~s:"vdd" ~b:"vdd";
      D.mos ~name:"M4" ~polarity:D.Pmos ~w:(um 16.) ~l:(um 2.) ~g:"n1"
        ~d:"out" ~s:"vdd" ~b:"vdd";
      (* NMOS tail current source. *)
      D.mos ~name:"MT" ~polarity:D.Nmos ~w:(um 24.) ~l:(um 2.) ~g:"vbias"
        ~d:"tail" ~s:"vss" ~b:"vss";
    ]

let hints =
  [
    ("M1", Partition.High); ("M2", Partition.High);
    ("M3", Partition.Moderate); ("M4", Partition.Moderate);
    ("MT", Partition.Low);
  ]

let clusters () = Partition.partition ~hints (netlist ())

let find_cluster clusters prefix =
  match
    List.find_opt
      (fun (c : Partition.cluster) ->
        String.length c.Partition.cluster_name >= String.length prefix
        && String.sub c.Partition.cluster_name 0 (String.length prefix) = prefix)
      clusters
  with
  | Some c -> c
  | None -> Env.reject "Ota: no cluster %s*" prefix

let build env =
  let t0 = Sys.time () in
  let netlist = netlist () in
  let clusters = clusters () in
  let gen prefix = Blocks.generate env netlist (find_cluster clusters prefix) in
  let pair = gen "pair_M1" in
  let mirror = gen "mirror_M3" in
  let tail = gen "single_MT" in
  (* NMOS devices at the bottom near the substrate taps, PMOS mirror at the
     top near vdd. *)
  let row_low = Assembly.pack_row env ~name:"row_low" [ tail ] in
  let row_mid = Assembly.pack_row env ~name:"row_mid" [ pair ] in
  let row_top = Assembly.pack_row env ~name:"row_top" [ mirror ] in
  let asm =
    Assembly.assemble env ~name:"ota5" ~netlist
      ~rows:[ row_low; row_mid; row_top ] ()
  in
  let bbox = Lobj.bbox_exn asm.Assembly.obj in
  let t1 = Sys.time () in
  {
    obj = asm.Assembly.obj;
    width_um = Units.to_um (Rect.width bbox);
    height_um = Units.to_um (Rect.height bbox);
    area_um2 = float_of_int (Rect.area bbox) /. 1.0e6;
    routing = asm.Assembly.routing;
    build_time_s = t1 -. t0;
  }
