lib/amplifier/assembly.pp.ml: Amg_circuit Amg_core Amg_extract Amg_geometry Amg_layout Amg_modules Amg_route Amg_tech List Option String
