lib/amplifier/blocks.pp.ml: Amg_circuit Amg_core Amg_geometry Amg_layout Amg_modules List
