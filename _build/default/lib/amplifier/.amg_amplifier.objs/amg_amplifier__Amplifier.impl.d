lib/amplifier/amplifier.pp.ml: Amg_circuit Amg_core Amg_geometry Amg_layout Amg_route Amg_tech Assembly Blocks List Schematic String Sys
