lib/amplifier/synth.pp.mli: Amg_circuit Amg_core Amg_layout Amg_route
