lib/amplifier/schematic.pp.ml: Amg_circuit Amg_geometry
