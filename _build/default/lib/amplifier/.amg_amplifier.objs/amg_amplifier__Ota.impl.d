lib/amplifier/ota.pp.ml: Amg_circuit Amg_core Amg_geometry Amg_layout Amg_route Assembly Blocks List String Sys
