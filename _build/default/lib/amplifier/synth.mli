(** Netlist-to-layout synthesis: partition → module library → assembly as
    one call, so any schematic (e.g. read from a SPICE file by
    {!Amg_circuit.Spice_in}) becomes a placed, routed, supply-connected
    layout. *)

type report = {
  obj : Amg_layout.Lobj.t;
  width_um : float;
  height_um : float;
  area_um2 : float;
  clusters : Amg_circuit.Partition.cluster list;
  routing : Amg_route.Global.result;
  build_time_s : float;
}

val build :
  Amg_core.Env.t ->
  ?name:string ->
  ?hints:(string * Amg_circuit.Partition.matching) list ->
  Amg_circuit.Netlist.t ->
  report
(** Rows are assigned by polarity: NMOS clusters at the bottom (near the
    substrate-tap rows), PMOS at the top (near vdd), bipolar and passives
    in the middle.
    @raise Amg_core.Env.Rejected when the netlist has no devices. *)
