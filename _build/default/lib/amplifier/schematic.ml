(* Transistor-level netlist of the broad-band BiCMOS amplifier (§3,
   Fig. 8, after ref. [10]).

   The exact Siemens device sizes are unpublished; this is the documented
   substitute (DESIGN.md §2): same block structure A-F with plausible 1 um
   device sizes, so the knowledge-based partitioning reproduces exactly
   the module selection the paper describes:

   - block A: cascode transistors of the bias circuit (no matching);
   - block B: current mirror with moderate matching (symmetric, diode in
     the middle);
   - block C: current sources with high symmetry and matching
     (cross-coupled inter-digitated);
   - block D: second gain stage (no special matching) with the
     compensation network;
   - block E: input differential pair (centroidal cross-coupled
     inter-digitated with dummies);
   - block F: bipolar output stage, composed symmetrically. *)

module D = Amg_circuit.Device
module Netlist = Amg_circuit.Netlist
module Partition = Amg_circuit.Partition

let um = Amg_geometry.Units.of_um

let netlist () =
  Netlist.create ~name:"bicmos_amp"
    ~external_ports:[ "inp"; "inn"; "out"; "vdd"; "vss"; "ibias" ]
    [
      (* Block A: bias cascode. *)
      D.mos ~name:"MA1" ~polarity:D.Nmos ~w:(um 12.) ~l:(um 2.) ~g:"vb1"
        ~d:"vb1" ~s:"vss" ~b:"vss";
      D.mos ~name:"MA2" ~polarity:D.Nmos ~w:(um 12.) ~l:(um 2.) ~g:"vb2"
        ~d:"vbp" ~s:"vb1" ~b:"vss";
      (* Block B: load current mirror, moderate matching. *)
      D.mos ~name:"MB1" ~polarity:D.Nmos ~w:(um 20.) ~l:(um 2.) ~g:"nm"
        ~d:"nm" ~s:"vss" ~b:"vss";
      D.mos ~name:"MB2" ~polarity:D.Nmos ~w:(um 20.) ~l:(um 2.) ~g:"nm"
        ~d:"outm" ~s:"vss" ~b:"vss";
      (* Block C: matched current sources, high symmetry. *)
      D.mos ~name:"MC1" ~polarity:D.Pmos ~w:(um 24.) ~l:(um 2.) ~g:"vbp"
        ~d:"nm" ~s:"vdd" ~b:"vdd";
      D.mos ~name:"MC2" ~polarity:D.Pmos ~w:(um 24.) ~l:(um 2.) ~g:"vbp"
        ~d:"outm" ~s:"vdd" ~b:"vdd";
      (* Tail current source for the input pair. *)
      D.mos ~name:"MT" ~polarity:D.Pmos ~w:(um 48.) ~l:(um 2.) ~g:"vbp"
        ~d:"tail" ~s:"vdd" ~b:"vdd";
      (* Block E: input pair, high matching. *)
      D.mos ~name:"ME1" ~polarity:D.Pmos ~w:(um 40.) ~l:(um 2.) ~g:"inp"
        ~d:"nm" ~s:"tail" ~b:"vdd";
      D.mos ~name:"ME2" ~polarity:D.Pmos ~w:(um 40.) ~l:(um 2.) ~g:"inn"
        ~d:"outm" ~s:"tail" ~b:"vdd";
      (* Block D: second stage and compensation. *)
      D.mos ~name:"MD1" ~polarity:D.Nmos ~w:(um 32.) ~l:(um 1.) ~g:"outm"
        ~d:"outd" ~s:"vss" ~b:"vss";
      D.res ~name:"RZ" ~a:"outd" ~b:"zc" ~ohms:2000.;
      D.cap ~name:"CC" ~a:"zc" ~b:"outm" ~ff:400.;
      (* Block F: bipolar output followers, composed symmetrically. *)
      D.bjt ~name:"Q1" ~c:"vdd" ~b:"outd" ~e:"out";
      D.bjt ~name:"Q2" ~c:"vdd" ~b:"outd" ~e:"out";
    ]

(* Matching hints as indicated in the paper's schematic partition. *)
let hints =
  [
    ("MA1", Partition.Low); ("MA2", Partition.Low);
    ("MB1", Partition.Moderate); ("MB2", Partition.Moderate);
    ("MC1", Partition.High); ("MC2", Partition.High);
    ("MT", Partition.Low);
    ("ME1", Partition.High); ("ME2", Partition.High);
    ("MD1", Partition.Low);
    ("Q1", Partition.Moderate); ("Q2", Partition.Moderate);
  ]

let clusters () = Partition.partition ~hints (netlist ())
