(* Generic block-level assembly: a stack of module rows with reserved
   routing channels, substrate-tap rows, supply rails and global signal
   routing.  Extracted from the amplifier build so that any partitioned
   circuit can be assembled the same way (the OTA in {!Ota} is the second
   user).

   The paper placed the generated modules and routed the global nets by
   hand; this is the scripted equivalent of that manual step. *)

module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Port = Amg_layout.Port
module Env = Amg_core.Env
module Path = Amg_route.Path
module Wire = Amg_route.Wire

type result = { obj : Lobj.t; routing : Amg_route.Global.result }

let um = Units.of_um

(* Place a list of blocks in one row, west to east, with a routing
   clearance between them (the gap gives the global router escape lanes at
   the block edges). *)
let pack_row _env ~name ?gap blocks =
  let row = Lobj.create name in
  let gap = Option.value ~default:(um 8.) gap in
  let x = ref 0 in
  List.iter
    (fun b ->
      let bb = Lobj.bbox_exn b in
      Lobj.translate b ~dx:(!x - bb.Rect.x0) ~dy:(-bb.Rect.y0);
      x := !x + Rect.width bb + gap;
      ignore (Lobj.absorb row b))
    blocks;
  row

(* A full-width substrate-tap row. *)
let tap_row env ~width ~n =
  Amg_modules.Contact_row.substrate_tap env ~name:("taprow" ^ string_of_int n)
    ~l:width ()

let assemble env ~name ~netlist ~rows ?(track_zone = um 32.)
    ?(tap_band = um 6.) ?(vdd = "vdd") ?(vss = "vss") () =
  if rows = [] then Env.reject "Assembly: no rows";
  let amp = Lobj.create name in
  let place obj ~y =
    let b = Lobj.bbox_exn obj in
    Lobj.translate obj ~dx:(-b.Rect.x0) ~dy:(y - b.Rect.y0);
    ignore (Lobj.absorb amp obj);
    y + Rect.height b
  in
  (* Stack the rows bottom to top; between consecutive rows a routing
     channel (metal1 track zone) topped by a tap band. *)
  let channels =
    match rows with
    | [] -> []
    | first :: rest ->
        let y = ref (place first ~y:0) in
        List.map
          (fun row ->
            let ch =
              { Amg_route.Global.ch_y0 = !y + um 2.;
                ch_y1 = !y + um 2. + track_zone }
            in
            y := place row ~y:(ch.Amg_route.Global.ch_y1 + tap_band + um 2.);
            ch)
          rest
  in
  let width () = Rect.width (Lobj.bbox_exn amp) in
  (* Tap rows: the band above each channel's track zone, plus one below the
     stack for latch-up coverage and one above for the supply rails. *)
  let tap_counter = ref 0 in
  let add_tap ~y =
    incr tap_counter;
    let tap = tap_row env ~width:(width ()) ~n:!tap_counter in
    let b = Lobj.bbox_exn tap in
    Lobj.translate tap ~dx:(-b.Rect.x0) ~dy:(y - b.Rect.y0);
    ignore (Lobj.absorb amp tap)
  in
  List.iter
    (fun (ch : Amg_route.Global.channel) ->
      add_tap ~y:(ch.Amg_route.Global.ch_y1 + um 1.))
    channels;
  let bottom = (Lobj.bbox_exn amp).Rect.y0 in
  add_tap ~y:(bottom - um 5.);
  (* Supply distribution: tap rows are full-width metal1 vss rails (one
     added above the stack as well); vdd gets its own metal1 bars outside
     the taps.  Every supply port rises on metal2 to its nearest rail —
     metal2 risers cross metal1 freely, so rail order does not matter. *)
  let rules = Env.rules env in
  let m1s = Rules.space_exn rules "metal1" "metal1" in
  let top = (Lobj.bbox_exn amp).Rect.y1 in
  add_tap ~y:(top + um 2.);
  let bar ~net ~y =
    let b = Lobj.bbox_exn amp in
    let rect = Rect.make ~x0:b.Rect.x0 ~y0:y ~x1:b.Rect.x1 ~y1:(y + um 4.) in
    ignore (Lobj.add_shape amp ~layer:"metal1" ~rect ~net ());
    rect
  in
  let _vdd_top = bar ~net:vdd ~y:((Lobj.bbox_exn amp).Rect.y1 + m1s) in
  let _vdd_bot = bar ~net:vdd ~y:((Lobj.bbox_exn amp).Rect.y0 - m1s - um 4.) in
  (* Hook every supply port to the nearest same-net rail (vss rails are the
     tap-row metals). *)
  let rail_rects net =
    List.filter_map
      (fun (s : Shape.t) ->
        if
          Shape.on_layer s "metal1"
          && s.Shape.net = Some net
          && Rect.width s.Shape.rect > Rect.width (Lobj.bbox_exn amp) / 2
        then Some s.Shape.rect
        else None)
      (Lobj.shapes amp)
  in
  let rails_of net = List.map Rect.center_y (rail_rects net) in
  let unhooked = ref [] in
  List.iter
    (fun (p : Port.t) ->
      if List.mem p.Port.net [ vdd; vss ] then begin
        let py = Rect.center_y p.Port.rect in
        let rails =
          List.sort
            (fun a b -> compare (abs (a - py)) (abs (b - py)))
            (rails_of p.Port.net)
        in
        let ok =
          List.exists
            (fun rail_y ->
              match
                Amg_route.Global.drop env amp ~net:p.Port.net ~track_y:rail_y p
              with
              | Ok _ -> true
              | Error _ -> false)
            rails
        in
        if not ok then unhooked := (p.Port.net, p.Port.name) :: !unhooked
      end)
    (Lobj.ports amp);
  (* Global signal routing: the schematic's internal nets, through the
     channels and the east spine. *)
  let signal_nets =
    let external_ = Amg_circuit.Netlist.external_ports netlist @ [ vdd; vss ] in
    let nets =
      List.filter
        (fun n -> not (List.mem n external_))
        (Amg_circuit.Netlist.nets netlist)
    in
    (* Small-pin nets first: they have the fewest corridor choices. *)
    let min_port_width net =
      List.fold_left
        (fun acc (p : Port.t) ->
          if String.equal p.Port.net net then min acc (Rect.width p.Port.rect)
          else acc)
        max_int (Lobj.ports amp)
    in
    List.stable_sort
      (fun a b -> compare (min_port_width a) (min_port_width b))
      nets
  in
  let routing =
    Amg_route.Global.comb_route env amp ~share_tracks:true ~nets:signal_nets
      ~channels
      ~spine_x0:((Lobj.bbox_exn amp).Rect.x1 + um 4.)
      ()
  in
  let routing =
    { routing with
      Amg_route.Global.unrouted =
        routing.Amg_route.Global.unrouted
        @ List.map
            (fun (net, port) -> (net, "supply hookup failed at " ^ port))
            !unhooked }
  in
  (* Tie the supply rails of each net together with metal2 edge risers
     (metal2 crosses the other net's metal1 rails freely): vdd on the east
     beyond the spine, vss on the west. *)
  let m2w = Rules.width rules "metal2" in
  let tie ~net ~x =
    let rects = rail_rects net in
    let b = Lobj.bbox_exn amp in
    let east = x > Rect.center_x b in
    let ys =
      List.map
        (fun (r : Rect.t) ->
          let y = Rect.center_y r in
          (* Extend the rail's own metal out to the riser, then via. *)
          let x0 = if east then r.Rect.x1 - um 1. else r.Rect.x0 + um 1. in
          ignore
            (Path.draw amp ~layer:"metal1" ~width:(um 2.) ~net [ (x0, y); (x, y) ]);
          ignore (Wire.via env amp ~at:(x, y) ~net ());
          y)
        rects
    in
    match (ys : int list) with
    | [] -> ()
    | y :: _ ->
        let lo = List.fold_left min y ys and hi = List.fold_left max y ys in
        ignore (Path.draw amp ~layer:"metal2" ~width:m2w ~net [ (x, lo); (x, hi) ])
  in
  tie ~net:vdd ~x:((Lobj.bbox_exn amp).Rect.x1 + um 6.);
  tie ~net:vss ~x:((Lobj.bbox_exn amp).Rect.x0 - um 6.);
  (* Connectivity repair: hookups anchor on the piece nearest the rail, so
     a block with several same-net islands (e.g. a well tap plus a source
     strap) may leave one floating.  Extract the connectivity, find the
     remaining islands of each supply net, and drop each to its nearest
     rail until the net is one node. *)
  let repair_supply net =
    let rec pass n =
      if n <= 0 then ()
      else begin
        let conn = Amg_extract.Connectivity.build ~tech:(Env.tech env) amp in
        let comps = Amg_extract.Connectivity.label_components conn net in
        if List.length comps > 1 then begin
          (* The component containing a full-width rail is the hooked one;
             drop every other component's largest metal1 piece. *)
          let width = Rect.width (Lobj.bbox_exn amp) in
          let is_rail (_, r) = Rect.width r > width / 2 in
          let islands = List.filter (fun c -> not (List.exists is_rail c)) comps in
          let progressed = ref false in
          List.iter
            (fun pieces ->
              let m1 =
                List.filter (fun (l, _) -> String.equal l "metal1") pieces
                |> List.sort (fun (_, a) (_, b) -> compare (Rect.area b) (Rect.area a))
              in
              match m1 with
              | (_, rect) :: _ ->
                  let port =
                    Port.make ~name:("repair_" ^ net) ~net ~layer:"metal1" ~rect
                  in
                  let py = Rect.center_y rect in
                  let rails =
                    List.sort
                      (fun a b -> compare (abs (a - py)) (abs (b - py)))
                      (rails_of net)
                  in
                  if
                    List.exists
                      (fun rail_y ->
                        match
                          Amg_route.Global.drop env amp ~net ~track_y:rail_y port
                        with
                        | Ok _ -> true
                        | Error _ -> false)
                      rails
                  then progressed := true
              | [] -> ())
            islands;
          if !progressed then pass (n - 1)
        end
      end
    in
    pass 4
  in
  repair_supply vdd;
  repair_supply vss;
  { obj = amp; routing }
