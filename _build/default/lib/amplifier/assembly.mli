(** Generic block-level assembly.

    Stacks rows of generated modules bottom-to-top with a reserved routing
    channel between consecutive rows, adds substrate-tap rows (latch-up
    coverage + vss rails), vdd bars, metal2 risers from every supply port,
    per-net edge ties, global comb routing of every internal signal net,
    and a connectivity-repair pass that guarantees each supply net is one
    electrical node.

    This is the scripted equivalent of the paper's manual placement and
    global wiring step, factored out of the amplifier so any partitioned
    circuit can reuse it ({!Amplifier} and {!Ota} are the two users). *)

type result = { obj : Amg_layout.Lobj.t; routing : Amg_route.Global.result }

val pack_row :
  Amg_core.Env.t ->
  name:string ->
  ?gap:int ->
  Amg_layout.Lobj.t list ->
  Amg_layout.Lobj.t
(** Place blocks in one row, west to east, [gap] (default 8 um) apart —
    the clearance gives the global router escape lanes at block edges. *)

val tap_row :
  Amg_core.Env.t -> width:int -> n:int -> Amg_layout.Lobj.t
(** A full-width substrate-tap row (named [taprowN]). *)

val assemble :
  Amg_core.Env.t ->
  name:string ->
  netlist:Amg_circuit.Netlist.t ->
  rows:Amg_layout.Lobj.t list ->
  ?track_zone:int ->
  ?tap_band:int ->
  ?vdd:string ->
  ?vss:string ->
  unit ->
  result
(** [assemble env ~name ~netlist ~rows ()] stacks the packed [rows]
    (bottom first) and completes the layout.  [track_zone] (default 32 um)
    is each channel's metal1 trunk band, [tap_band] (default 6 um) the tap
    row above it.  Internal signal nets are every netlist net that is
    neither an external port nor a supply.  Failed hookups are reported in
    [routing.unrouted].
    @raise Amg_core.Env.Rejected when [rows] is empty. *)
