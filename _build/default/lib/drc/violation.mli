(** DRC violation records. *)

type kind =
  | Width of { layer : string; required : int; actual : int }
  | Spacing of { layer_a : string; layer_b : string; required : int; actual : int }
  | Short of { layer : string; net_a : string; net_b : string }
      (** two different nets touch on the same layer *)
  | Enclosure of { outer : string; inner : string; required : int }
  | Extension of { of_ : string; past : string; required : int; actual : int }
  | Cut_size of { layer : string; required : int; actual_w : int; actual_h : int }
  | Min_area of { layer : string; required : int; actual : int }
      (** areas in nm^2, over a connected same-layer region *)
  | Latchup of { uncovered : Amg_geometry.Rect.t list }
[@@deriving show, eq]

type t = { kind : kind; where : Amg_geometry.Rect.t } [@@deriving show, eq]

val make : kind -> Amg_geometry.Rect.t -> t

val describe : t -> string
(** One-line human-readable description (distances in um). *)

val pp_report : Format.formatter -> t list -> unit
