(** Design-rule checker.

    Verifies a finished layout object against its technology: minimum
    widths, exact cut sizes, L∞ spacings (with same-net merging allowed and
    different-net abutment reported as a short), cut enclosures, gate
    extensions, and the latch-up cover rule.

    Enclosure policy for cuts: a cut must be enclosed by {e every} metal
    layer that declares an enclosure rule for it (a via needs both metals)
    and by {e at least one} non-metal landing layer (a contact may land on
    poly, diffusion or poly2). *)

type check = Widths | Spacings | Enclosures | Extensions | Latch_up
[@@deriving show, eq]

val all_checks : check list

val check_widths :
  tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> Violation.t list

val check_spacings :
  tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> Violation.t list

val check_enclosures :
  tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> Violation.t list

val check_extensions :
  tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> Violation.t list

val run :
  ?checks:check list ->
  tech:Amg_tech.Technology.t ->
  Amg_layout.Lobj.t ->
  Violation.t list
(** Run the selected checks (default: all). *)
