(* The latch-up rule check of the paper's Fig. 1.

   "Temporary rectangles which are placed around the substrate contacts
   [must] enclose all locos areas of MOS-transistors.  The size of these
   temporary rectangles is specified in the design rules.  …  If after
   examining all enclosing rectangles no parts of the solid rectangles are
   remaining, the latch-up rule is fulfilled."

   Substrate/well taps are identified by the [subtap] marker layer that the
   contact generators draw over every tap.  Each tap rectangle is inflated
   by the technology's latch-up distance; the diffusion ("locos") rectangles
   are then reduced by successive subtraction (each overlap case of the
   16-case analysis leaves 0–4 residual rectangles). *)

module Rect = Amg_geometry.Rect
module Region = Amg_geometry.Region
module Rules = Amg_tech.Rules
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape

let tap_layer = "subtap"

(* The temporary rectangles: taps inflated by the latch-up distance. *)
let cover_rects ~tech obj =
  let dist = Rules.latchup_dist (Technology.rules tech) in
  List.map (fun r -> Rect.inflate r dist) (Lobj.rects_on obj tap_layer)

let active_rects ~tech obj =
  List.filter_map
    (fun (s : Shape.t) ->
      match Technology.layer tech s.Shape.layer with
      | Some l when Layer.is_active l -> Some s.Shape.rect
      | _ -> None)
    (Lobj.shapes obj)

(* Residual active-area rectangles not reachable from any tap; empty means
   the rule is fulfilled. *)
let uncovered ~tech obj =
  Region.residue ~solids:(active_rects ~tech obj) ~covers:(cover_rects ~tech obj)

let check ~tech obj =
  match uncovered ~tech obj with
  | [] -> []
  | residues ->
      let where =
        match Rect.hull_list residues with
        | Some r -> r
        | None -> Rect.of_size ~x:0 ~y:0 ~w:0 ~h:0
      in
      [ Violation.make (Violation.Latchup { uncovered = residues }) where ]

(* Well-tap rule: every well region must contain at least one tap (a
   [subtap]-marked contact inside the well), or the well floats and the
   parasitic thyristor has no clamped base — the well-side half of the
   latch-up protection.  Well rectangles merge into regions when they
   touch, exactly like the checker's same-layer components. *)
let untapped_wells ~tech obj =
  let wells =
    List.filter_map
      (fun (s : Shape.t) ->
        match Technology.layer tech s.Shape.layer with
        | Some l when l.Layer.kind = Layer.Well -> Some s.Shape.rect
        | _ -> None)
      (Lobj.shapes obj)
  in
  let taps = Lobj.rects_on obj tap_layer in
  (* Merge touching well rects into regions. *)
  let wells = Array.of_list wells in
  let n = Array.length wells in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else begin
    let r = find parent.(i) in parent.(i) <- r; r end
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rect.touches wells.(i) wells.(j) then begin
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      end
    done
  done;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i r ->
      let root = find i in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups root) in
      Hashtbl.replace groups root (r :: cur))
    wells;
  (* Wells that ARE a device terminal (a bipolar collector well, marked by
     the base implant inside it) are biased through the device, not a body
     tap: exempt. *)
  let implants =
    List.filter_map
      (fun (s : Shape.t) ->
        match Technology.layer tech s.Shape.layer with
        | Some l when l.Layer.kind = Layer.Implant -> Some s.Shape.rect
        | _ -> None)
      (Lobj.shapes obj)
  in
  Hashtbl.fold
    (fun _root rects acc ->
      let tapped =
        List.exists
          (fun tap -> List.exists (fun w -> Rect.overlaps w tap) rects)
          taps
      in
      let device_well =
        List.exists
          (fun im -> List.exists (fun w -> Rect.overlaps w im) rects)
          implants
      in
      if tapped || device_well then acc
      else
        match Rect.hull_list rects with
        | Some hull -> hull :: acc
        | None -> acc)
    groups []

let check_well_taps ~tech obj =
  List.map
    (fun hull ->
      Violation.make (Violation.Latchup { uncovered = [ hull ] }) hull)
    (untapped_wells ~tech obj)
