(** Latch-up rule check (the paper's Fig. 1).

    Every diffusion ("locos") rectangle must be covered by the union of
    temporary rectangles obtained by inflating each substrate/well tap by
    the technology's latch-up distance.  Coverage is established by
    successive subtraction, exactly the 16-overlap-case procedure the paper
    illustrates. *)

val tap_layer : string
(** The marker layer ("subtap") that tap generators draw over every
    substrate/well contact. *)

val cover_rects :
  tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> Amg_geometry.Rect.t list
(** The inflated temporary rectangles. *)

val active_rects :
  tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> Amg_geometry.Rect.t list

val uncovered :
  tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> Amg_geometry.Rect.t list
(** Residual active area out of reach of every tap; [] iff the rule is
    fulfilled. *)

val check : tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> Violation.t list

val untapped_wells :
  tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> Amg_geometry.Rect.t list
(** Hulls of well regions (touching well rectangles merged) that contain no
    tap — floating wells whose parasitic thyristor base is unclamped.  The
    well-side half of the latch-up protection. *)

val check_well_taps :
  tech:Amg_tech.Technology.t -> Amg_layout.Lobj.t -> Violation.t list
