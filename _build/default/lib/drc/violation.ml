module Rect = Amg_geometry.Rect

type kind =
  | Width of { layer : string; required : int; actual : int }
  | Spacing of { layer_a : string; layer_b : string; required : int; actual : int }
  | Short of { layer : string; net_a : string; net_b : string }
  | Enclosure of { outer : string; inner : string; required : int }
  | Extension of { of_ : string; past : string; required : int; actual : int }
  | Cut_size of { layer : string; required : int; actual_w : int; actual_h : int }
  | Min_area of { layer : string; required : int; actual : int }
      (** areas in nm^2, over a connected same-layer region *)
  | Latchup of { uncovered : Rect.t list }
[@@deriving show { with_path = false }, eq]

type t = { kind : kind; where : Rect.t } [@@deriving show { with_path = false }, eq]

let make kind where = { kind; where }

let describe v =
  let um = Amg_geometry.Units.to_um in
  match v.kind with
  | Width { layer; required; actual } ->
      Printf.sprintf "width %s: %.2fum < %.2fum" layer (um actual) (um required)
  | Spacing { layer_a; layer_b; required; actual } ->
      Printf.sprintf "spacing %s/%s: %.2fum < %.2fum" layer_a layer_b (um actual)
        (um required)
  | Short { layer; net_a; net_b } ->
      Printf.sprintf "short on %s between nets %s and %s" layer net_a net_b
  | Enclosure { outer; inner; required } ->
      Printf.sprintf "enclosure: %s must enclose %s by %.2fum" outer inner
        (um required)
  | Extension { of_; past; required; actual } ->
      Printf.sprintf "extension: %s past %s %.2fum < %.2fum" of_ past (um actual)
        (um required)
  | Cut_size { layer; required; actual_w; actual_h } ->
      Printf.sprintf "cut size %s: %.2fx%.2fum, must be %.2fum square" layer
        (um actual_w) (um actual_h) (um required)
  | Min_area { layer; required; actual } ->
      Printf.sprintf "min area %s: %.2fum2 < %.2fum2" layer
        (float_of_int actual /. 1.0e6)
        (float_of_int required /. 1.0e6)
  | Latchup { uncovered } ->
      Printf.sprintf "latch-up: %d active region(s) too far from a substrate tap"
        (List.length uncovered)

let pp_report ppf vs =
  if vs = [] then Fmt.pf ppf "DRC clean@."
  else begin
    Fmt.pf ppf "%d DRC violation(s):@." (List.length vs);
    List.iter
      (fun v -> Fmt.pf ppf "  %s at %a@." (describe v) Rect.pp_um v.where)
      vs
  end
