lib/drc/checker.pp.mli: Amg_layout Amg_tech Ppx_deriving_runtime Violation
