lib/drc/checker.pp.ml: Amg_compact Amg_geometry Amg_layout Amg_tech Array Hashtbl Latchup List Option Ppx_deriving_runtime String Violation
