lib/drc/violation.pp.ml: Amg_geometry Fmt List Ppx_deriving_runtime Printf
