lib/drc/latchup.pp.mli: Amg_geometry Amg_layout Amg_tech Violation
