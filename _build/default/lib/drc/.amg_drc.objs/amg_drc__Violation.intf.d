lib/drc/violation.pp.mli: Amg_geometry Format Ppx_deriving_runtime
