(** Orthogonal wire paths.

    A polyline of centre-line points rendered as overlapping rectangles of a
    given width with square corners — the multi-bend generalisation of the
    paper's angle adaptor. *)

type point = int * int

val segment_rect : width:int -> point -> point -> Amg_geometry.Rect.t
(** Rectangle covering one axis-aligned segment, end squares included.
    @raise Invalid_argument on diagonal segments. *)

val rects : width:int -> point list -> Amg_geometry.Rect.t list

val draw :
  Amg_layout.Lobj.t ->
  layer:string ->
  width:int ->
  ?net:string ->
  point list ->
  Amg_layout.Shape.t list
(** Add the path's rectangles to the object. *)

val length : point list -> int
(** Centre-line length. *)

val crossings : point list -> point list -> int
(** Perpendicular centre-line crossings between two paths; used to verify
    the "every net has identical crossings" symmetry property (§3). *)
