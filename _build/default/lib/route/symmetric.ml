(* Mirrored-pair routing for fully symmetric wiring (§3, Fig. 10):
   "the wiring is fully symmetrical and every net has identical crossings".

   A wiring plan is drawn once for the left net as a set of paths; the
   right net gets the exact mirror image across the symmetry axis.  By
   construction every crossing on the left has its twin on the right, so
   both nets see identical parasitic environments. *)

module Transform = Amg_geometry.Transform
module Lobj = Amg_layout.Lobj

type plan = { layer : string; width : int; points : Path.point list }

let plan ~layer ~width points = { layer; width; points }

let mirror_point ~axis_x (x, y) = ((2 * axis_x) - x, y)

let mirror_plan ~axis_x p =
  { p with points = List.map (mirror_point ~axis_x) p.points }

(* Draw a plan for the left net and its mirror image for the right net. *)
let draw_pair obj ~axis_x ~net_left ~net_right plans =
  List.concat_map
    (fun p ->
      let left = Path.draw obj ~layer:p.layer ~width:p.width ~net:net_left p.points in
      let right =
        let m = mirror_plan ~axis_x p in
        Path.draw obj ~layer:m.layer ~width:m.width ~net:net_right m.points
      in
      left @ right)
    plans

(* Verify the symmetry property: for every plan, the mirrored point list
   must be present among the right-hand plans (order-insensitive). *)
let is_symmetric ~axis_x ~left ~right =
  let norm p = (p.layer, p.width, p.points) in
  let mirrored = List.map (fun p -> norm (mirror_plan ~axis_x p)) left in
  List.length left = List.length right
  && List.for_all (fun p -> List.mem (norm p) mirrored) right

(* Crossing counts of each left plan against a list of obstacle paths and
   of its mirror against the mirrored obstacles are equal by construction;
   this helper exposes the count for tests and the Fig. 10 bench. *)
let crossing_count plans_a plans_b =
  List.fold_left
    (fun acc pa ->
      List.fold_left (fun acc pb -> acc + Path.crossings pa.points pb.points) acc plans_b)
    0 plans_a
