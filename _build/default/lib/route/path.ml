(* Orthogonal wire paths: a polyline of points rendered as overlapping
   rectangles of a given width, with square corners — the generalisation of
   the paper's angle adaptor to multi-bend wires. *)

module Rect = Amg_geometry.Rect
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape

type point = int * int

(* Rectangle covering the segment from [a] to [b] with the given width;
   both end squares are included so consecutive segments overlap at the
   corner.  @raise Invalid_argument on diagonal segments. *)
let segment_rect ~width (ax, ay) (bx, by) =
  let h = width / 2 in
  if ax = bx then
    Rect.make ~x0:(ax - h) ~y0:(min ay by - h) ~x1:(ax - h + width)
      ~y1:(max ay by + (width - h))
  else if ay = by then
    Rect.make ~x0:(min ax bx - h) ~y0:(ay - h) ~x1:(max ax bx + (width - h))
      ~y1:(ay - h + width)
  else invalid_arg "Path.segment_rect: diagonal segment"

let rects ~width = function
  | [] | [ _ ] -> []
  | points ->
      let rec go acc = function
        | a :: (b :: _ as rest) -> go (segment_rect ~width a b :: acc) rest
        | [ _ ] | [] -> List.rev acc
      in
      go [] points

let draw obj ~layer ~width ?net points =
  List.map
    (fun rect -> Lobj.add_shape obj ~layer ~rect ?net ())
    (rects ~width points)

(* Total wire length of the polyline (centre-line). *)
let length points =
  let rec go acc = function
    | (ax, ay) :: ((bx, by) :: _ as rest) ->
        go (acc + abs (bx - ax) + abs (by - ay)) rest
    | [ _ ] | [] -> acc
  in
  go 0 points

(* Number of times the open segments of [a] cross those of [b]
   (perpendicular crossings of centre-lines).  Used to verify the "every
   net has identical crossings" property of the module-E wiring. *)
let crossings a b =
  let segs points =
    let rec go acc = function
      | p :: (q :: _ as rest) -> go ((p, q) :: acc) rest
      | [ _ ] | [] -> acc
    in
    go [] points
  in
  let crosses ((ax, ay), (bx, by)) ((cx, cy), (dx, dy)) =
    let strictly_between lo hi v = min lo hi < v && v < max lo hi in
    if ax = bx && cy = dy then
      (* vertical x horizontal *)
      strictly_between cx dx ax && strictly_between ay by cy
    else if ay = by && cx = dx then
      strictly_between ax bx cx && strictly_between cy dy ay
    else false
  in
  List.fold_left
    (fun acc sa ->
      List.fold_left (fun acc sb -> if crosses sa sb then acc + 1 else acc) acc (segs b))
    0 (segs a)
