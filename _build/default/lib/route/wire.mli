(** Point-to-point wiring helpers: via stacks, point contacts, and simple
    L-shaped port-to-port connections — the paper's "several routing
    routines [that] support the internal wiring of the modules" (§1). *)

val pad_size : Amg_tech.Rules.t -> layer:string -> cut:string -> int
(** Landing-pad size for a cut on a layer: cut size plus both enclosure
    margins. *)

val via :
  Amg_core.Env.t ->
  Amg_layout.Lobj.t ->
  at:int * int ->
  ?net:string ->
  unit ->
  Amg_layout.Shape.t * Amg_layout.Shape.t * Amg_layout.Shape.t
(** Metal1-metal2 via stack centred at a point: returns (metal1 pad,
    metal2 pad, cut). *)

val contact_at :
  Amg_core.Env.t ->
  Amg_layout.Lobj.t ->
  at:int * int ->
  landing:string ->
  ?net:string ->
  unit ->
  Amg_layout.Shape.t * Amg_layout.Shape.t * Amg_layout.Shape.t
(** Single contact at a point landing on the given layer: returns (landing
    pad, metal1 pad, cut). *)

val port_center : Amg_layout.Port.t -> int * int

val connect_ports :
  Amg_core.Env.t ->
  Amg_layout.Lobj.t ->
  ?width:int ->
  ?net:string ->
  Amg_layout.Port.t ->
  Amg_layout.Port.t ->
  Amg_layout.Shape.t list
(** Connect two same-layer ports with a straight or single-bend path
    (horizontal first).  Net defaults to the first port's net.
    @raise Amg_core.Env.Rejected when the ports are on different layers. *)
