lib/route/global.pp.ml: Amg_core Amg_geometry Amg_layout Amg_tech Hashtbl List Option Path Printf String Wire
