lib/route/channel.pp.mli: Amg_core Amg_layout
