lib/route/wire.pp.mli: Amg_core Amg_layout Amg_tech
