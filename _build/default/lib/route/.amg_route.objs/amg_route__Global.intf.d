lib/route/global.pp.mli: Amg_core Amg_layout Stdlib
