lib/route/symmetric.pp.ml: Amg_geometry Amg_layout List Path
