lib/route/channel.pp.ml: Amg_core Amg_geometry Amg_layout Amg_tech Hashtbl List Printf String Wire
