lib/route/symmetric.pp.mli: Amg_layout Path
