lib/route/path.pp.mli: Amg_geometry Amg_layout
