lib/route/wire.pp.ml: Amg_core Amg_geometry Amg_layout Amg_tech Option Path String
