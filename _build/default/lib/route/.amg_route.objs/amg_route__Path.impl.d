lib/route/path.pp.ml: Amg_geometry Amg_layout List
