(** Mirrored-pair routing for fully symmetric wiring (§3, Fig. 10).

    A wiring plan is drawn once for the left net; the right net receives the
    exact mirror image across a vertical symmetry axis, so "every net has
    identical crossings" by construction. *)

type plan = { layer : string; width : int; points : Path.point list }

val plan : layer:string -> width:int -> Path.point list -> plan

val mirror_point : axis_x:int -> Path.point -> Path.point

val mirror_plan : axis_x:int -> plan -> plan

val draw_pair :
  Amg_layout.Lobj.t ->
  axis_x:int ->
  net_left:string ->
  net_right:string ->
  plan list ->
  Amg_layout.Shape.t list
(** Draw every plan for the left net and its mirror for the right net. *)

val is_symmetric : axis_x:int -> left:plan list -> right:plan list -> bool
(** True when [right] is exactly the mirror image of [left]. *)

val crossing_count : plan list -> plan list -> int
(** Total perpendicular crossings between two plan sets. *)
