(* Global comb router for block-level assembly.

   The paper routed the amplifier's global nets by hand (§3); this module
   is the scripted equivalent: a deterministic comb topology that is easy
   to verify and always layer-legal.

   - Horizontal *trunks* run on metal1 inside reserved routing channels
     (horizontal bands between block rows).  One track per net per
     channel, staggered by a fixed pitch.
   - *Pin drops* run on metal2 from each block port straight into its
     net's track, with a via at the trunk; metal2 may cross foreign metal1
     freely, and drops of different nets have different x.
   - Nets spanning several channels are joined by a metal2 *spine* segment
     at the east edge, one x column per net.

   Every drop searches sideways for a clear corridor (no foreign metal2 in
   the way, via landing clear of foreign metal1), like the supply hook-ups.
*)

module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Port = Amg_layout.Port
module Env = Amg_core.Env

type channel = { ch_y0 : int; ch_y1 : int }

type result = {
  routed : string list;
  unrouted : (string * string) list; (* net, reason *)
  tracks : int; (* maximum tracks used in any channel *)
}

let um = Units.of_um

(* Is the vertical metal2 corridor at [x] between the two y's clear of
   foreign-net metal2, with the via landing at [via_y] clear of foreign
   metal1? *)
let corridor_clear env obj ~net ~x ~y_from ~y_to ~via_y =
  let rules = Env.rules env in
  let m2w = Rules.width rules "metal2" in
  let m2s = Rules.space_exn rules "metal2" "metal2" in
  (* Clearance covers the wire, its via pads (which overhang the segment
     ends), and the spacing rule, inflated uniformly so diagonal (L-inf)
     proximity is caught as well. *)
  ignore m2w;
  let half = (Wire.pad_size rules ~layer:"metal2" ~cut:"via" / 2) + m2s in
  let corridor =
    Rect.inflate
      (Rect.make ~x0:x ~y0:(min y_from y_to) ~x1:x ~y1:(max y_from y_to))
      half
  in
  let pad =
    let side = Wire.pad_size rules ~layer:"metal1" ~cut:"via" in
    Rect.inflate
      (Rect.of_center ~cx:x ~cy:via_y ~w:side ~h:side)
      (Option.value ~default:0 (Rules.space rules "metal1" "metal1"))
  in
  List.for_all
    (fun (s : Shape.t) ->
      s.Shape.net = Some net
      ||
      if Shape.on_layer s "metal2" then not (Rect.overlaps s.Shape.rect corridor)
      else if Shape.on_layer s "metal1" then not (Rect.overlaps s.Shape.rect pad)
      else true)
    (Lobj.shapes obj)

(* Candidate x positions for a drop, centre first, then alternating 1 um
   steps outward across the whole port plus half a via pad on either side
   (the pad only has to overlap the port metal to connect). *)
let candidates env (p : Port.t) =
  let rules = Env.rules env in
  let slack = Wire.pad_size rules ~layer:p.Port.layer ~cut:"via" / 2 in
  let cx = Rect.center_x p.Port.rect in
  let step = um 1. in
  let reach = 2 + ((Rect.width p.Port.rect + (2 * slack)) / step) in
  let inside =
    List.filter
      (fun x -> x >= p.Port.rect.Rect.x0 - slack && x <= p.Port.rect.Rect.x1 + slack)
      (List.init ((2 * reach) + 1) (fun i ->
           let k = ((i + 1) / 2) * if i mod 2 = 0 then 1 else -1 in
           cx + (k * step)))
  in
  if inside = [] then [ cx ] else inside

(* Drop from a port to the track at [track_y].

   A port is a hull and can be hollow, so the drop first picks an *anchor*:
   an actual same-net shape on the port's layer inside the port, nearest
   the track.  The metal2 riser runs from the anchor to the track, with a
   via at the anchor when it is metal1 (its pad checked against foreign
   metal1) and always a via at the trunk. *)
let drop env obj ?(avoid = []) ~net ~track_y (p : Port.t) =
  let rules = Env.rules env in
  let m2w = Rules.width rules "metal2" in
  let on_m1 = String.equal p.Port.layer "metal1" in
  let anchors =
    List.filter
      (fun (s : Shape.t) ->
        Shape.on_layer s p.Port.layer
        && s.Shape.net = Some net
        && Rect.overlaps s.Shape.rect p.Port.rect)
      (Lobj.shapes obj)
    |> List.sort
         (fun (a : Shape.t) (b : Shape.t) ->
           compare
             (abs (Rect.center_y a.Shape.rect - track_y))
             (abs (Rect.center_y b.Shape.rect - track_y)))
  in
  let pin_pad_clear ~x ~py =
    (not on_m1)
    ||
    let side = Wire.pad_size rules ~layer:"metal1" ~cut:"via" in
    let pad =
      Rect.inflate
        (Rect.of_center ~cx:x ~cy:py ~w:side ~h:side)
        (Option.value ~default:0 (Rules.space rules "metal1" "metal1"))
    in
    List.for_all
      (fun (s : Shape.t) ->
        s.Shape.net = Some net
        || (not (Shape.on_layer s "metal1"))
        || not (Rect.overlaps s.Shape.rect pad))
      (Lobj.shapes obj)
  in
  let try_anchor (a : Shape.t) =
    let py = Rect.center_y a.Shape.rect in
    let fake =
      Amg_layout.Port.make ~name:"anchor" ~net ~layer:p.Port.layer
        ~rect:a.Shape.rect
    in
    let try_x x =
      pin_pad_clear ~x ~py
      && corridor_clear env obj ~net ~x ~y_from:py ~y_to:track_y ~via_y:track_y
    in
    (* Prefer positions away from other nets' small pins so we do not
       wall them in. *)
    let penalty x =
      if List.exists (fun ax -> abs (x - ax) < um 5.) avoid then 1 else 0
    in
    let ordered =
      List.stable_sort
        (fun a b -> compare (penalty a) (penalty b))
        (candidates env fake)
    in
    Option.map (fun x -> (x, py)) (List.find_opt try_x ordered)
  in
  let rec first = function
    | [] ->
        Error
          (Printf.sprintf "no clear corridor for pin %s at [%d,%d-%d,%d]"
             p.Port.name p.Port.rect.Rect.x0 p.Port.rect.Rect.y0
             p.Port.rect.Rect.x1 p.Port.rect.Rect.y1)
    | a :: rest -> (
        match try_anchor a with Some r -> Ok r | None -> first rest)
  in
  match first anchors with
  | Error e -> Error e
  | Ok (x, py) ->
      if on_m1 then ignore (Wire.via env obj ~at:(x, py) ~net ());
      let _ =
        Path.draw obj ~layer:"metal2" ~width:m2w ~net [ (x, py); (x, track_y) ]
      in
      ignore (Wire.via env obj ~at:(x, track_y) ~net ());
      Ok x

(* Nearest channel to a y coordinate. *)
let nearest_channel channels y =
  let dist c = min (abs (y - c.ch_y0)) (abs (y - c.ch_y1)) in
  match channels with
  | [] -> None
  | c :: cs -> Some (List.fold_left (fun best c -> if dist c < dist best then c else best) c cs)

(* Route the given nets.  [channels] are the reserved horizontal bands
   (they must be empty of metal1); [spine_x0] is the west edge of the
   reserved spine region on the east side.

   With [share_tracks] (left-edge channel routing) nets whose horizontal
   extents do not overlap share a track: intervals are collected in a
   pre-pass, sorted by left edge, and each is placed on the first track
   whose previous occupant ends before it starts. *)
let comb_route env obj ?(share_tracks = false) ~nets ~channels ~spine_x0 () =
  let rules = Env.rules env in
  let m1w = Rules.width rules "metal1" in
  let m2w = Rules.width rules "metal2" in
  let pitch = um 4. in
  (* Pre-pass for track sharing: per channel, each net's x interval
     (pins plus the spine when it spans several channels). *)
  let shared_assignment = Hashtbl.create 8 in
  let tracks_used = Hashtbl.create 4 in
  if share_tracks then begin
    let intervals = Hashtbl.create 8 in
    List.iteri
      (fun i net ->
        let pins =
          List.filter (fun (p : Port.t) -> String.equal p.Port.net net) (Lobj.ports obj)
        in
        if List.length pins >= 2 then begin
          let chs = Hashtbl.create 4 in
          List.iter
            (fun (p : Port.t) ->
              match nearest_channel channels (Rect.center_y p.Port.rect) with
              | Some c ->
                  let x = Rect.center_x p.Port.rect in
                  let lo, hi =
                    Option.value ~default:(x, x)
                      (Hashtbl.find_opt chs (c.ch_y0, c.ch_y1))
                  in
                  Hashtbl.replace chs (c.ch_y0, c.ch_y1) (min lo x, max hi x)
              | None -> ())
            pins;
          let multi = Hashtbl.length chs > 1 in
          Hashtbl.iter
            (fun ch (lo, hi) ->
              let hi = if multi then max hi (spine_x0 + (i * pitch)) else hi in
              (* Slack for drop shifts and via pads. *)
              let cur = Option.value ~default:[] (Hashtbl.find_opt intervals ch) in
              Hashtbl.replace intervals ch ((net, lo - um 6., hi + um 6.) :: cur))
            chs
        end)
      nets;
    Hashtbl.iter
      (fun ch ivs ->
        let sorted = List.sort (fun (_, l1, _) (_, l2, _) -> compare l1 l2) ivs in
        (* track index -> rightmost end *)
        let track_end = Hashtbl.create 8 in
        List.iter
          (fun (net, lo, hi) ->
            let rec place k =
              match Hashtbl.find_opt track_end k with
              | Some e when e > lo -> place (k + 1)
              | _ ->
                  Hashtbl.replace track_end k hi;
                  Hashtbl.replace shared_assignment (net, ch) k
            in
            place 0)
          sorted;
        Hashtbl.replace tracks_used ch (Hashtbl.length track_end))
      intervals
  end;
  (* Tracks are allocated per channel, bottom up. *)
  let next_track = Hashtbl.create 4 in
  let track_of_index (c : int * int) k =
    let y0, y1 = c in
    let y = y0 + um 1. + (k * pitch) + (m1w / 2) in
    if y + (m1w / 2) + um 1. > y1 then None else Some y
  in
  let alloc_track ~net (c : int * int) =
    if share_tracks then
      match Hashtbl.find_opt shared_assignment (net, c) with
      | Some k -> track_of_index c k
      | None -> None
    else begin
      let k = Option.value ~default:0 (Hashtbl.find_opt next_track c) in
      match track_of_index c k with
      | Some y ->
          Hashtbl.replace next_track c (k + 1);
          Some y
      | None -> None
    end
  in
  let routed = ref [] and unrouted = ref [] in
  List.iteri
    (fun i net ->
      let pins = List.filter (fun (p : Port.t) -> String.equal p.Port.net net) (Lobj.ports obj) in
      let avoid =
        List.filter_map
          (fun (p : Port.t) ->
            if
              (not (String.equal p.Port.net net))
              && Rect.width p.Port.rect <= um 8.
            then Some (Rect.center_x p.Port.rect)
            else None)
          (Lobj.ports obj)
      in
      match pins with
      | [] | [ _ ] -> unrouted := (net, "fewer than two pins") :: !unrouted
      | _ -> (
          (* Group pins by their nearest channel. *)
          let by_channel = Hashtbl.create 4 in
          let ok = ref true in
          List.iter
            (fun (p : Port.t) ->
              match nearest_channel channels (Rect.center_y p.Port.rect) with
              | Some c ->
                  let cur = Option.value ~default:[] (Hashtbl.find_opt by_channel (c.ch_y0, c.ch_y1)) in
                  Hashtbl.replace by_channel (c.ch_y0, c.ch_y1) (p :: cur)
              | None -> ok := false)
            pins;
          if not !ok then unrouted := (net, "no channel") :: !unrouted
          else begin
            let spine_x = spine_x0 + (i * pitch) in
            let multi = Hashtbl.length by_channel > 1 in
            let track_ys = ref [] in
            let failures = ref [] in
            Hashtbl.iter
              (fun ch ch_pins ->
                match alloc_track ~net ch with
                | None -> failures := "channel full" :: !failures
                | Some track_y ->
                track_ys := track_y :: !track_ys;
                (* Drops first (they may shift x), then the trunk spanning
                   all of them, extended to the spine when needed. *)
                let xs =
                  List.filter_map
                    (fun p ->
                      match drop env obj ~avoid ~net ~track_y p with
                      | Ok x -> Some x
                      | Error e ->
                          failures := e :: !failures;
                          None)
                    ch_pins
                in
                match xs with
                | [] ->
                    failures :=
                      Printf.sprintf "no drop succeeded in channel y=%d" (fst ch)
                      :: !failures
                | _ ->
                    let lo = List.fold_left min (List.hd xs) xs in
                    let hi = List.fold_left max (List.hd xs) xs in
                    let hi = if multi then max hi spine_x else hi in
                    let _ =
                      Path.draw obj ~layer:"metal1" ~width:m1w ~net
                        [ (lo, track_y); (hi, track_y) ]
                    in
                    if multi then ignore (Wire.via env obj ~at:(spine_x, track_y) ~net ()))
              by_channel;
            (* Spine segment joining the channels. *)
            if multi then begin
              let ys = List.sort compare !track_ys in
              let _ =
                Path.draw obj ~layer:"metal2" ~width:m2w ~net
                  [ (spine_x, List.hd ys); (spine_x, List.nth ys (List.length ys - 1)) ]
              in
              ()
            end;
            if !failures = [] then routed := net :: !routed
            else unrouted := (net, String.concat "; " !failures) :: !unrouted
          end))
    nets;
  let max_tracks = Hashtbl.fold (fun _ n acc -> max acc n) tracks_used 0 in
  { routed = List.rev !routed; unrouted = List.rev !unrouted;
    tracks = (if share_tracks then max_tracks else List.length nets) }
