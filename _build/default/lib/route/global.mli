(** Global comb router for block-level assemblies.

    Horizontal metal1 trunks in reserved channels (one staggered track per
    net), metal2 pin drops with vias, and a metal2 east-edge spine joining
    a net's tracks across channels.  The scripted stand-in for the paper's
    manual global routing of the amplifier (§3). *)

type channel = { ch_y0 : int; ch_y1 : int }

type result = {
  routed : string list;
  unrouted : (string * string) list;  (** net, reason *)
  tracks : int;  (** maximum tracks used in any channel *)
}

val corridor_clear :
  Amg_core.Env.t ->
  Amg_layout.Lobj.t ->
  net:string ->
  x:int ->
  y_from:int ->
  y_to:int ->
  via_y:int ->
  bool
(** Vertical metal2 corridor free of foreign metal2, via landing clear of
    foreign metal1. *)

val drop :
  Amg_core.Env.t ->
  Amg_layout.Lobj.t ->
  ?avoid:int list ->
  net:string ->
  track_y:int ->
  Amg_layout.Port.t ->
  (int, string) Stdlib.result
(** Connect one port down/up to a track; returns the x used.  [avoid]
    lists x centres of other nets' small pins — clear positions away from
    them are preferred so those pins are not walled in. *)

val comb_route :
  Amg_core.Env.t ->
  Amg_layout.Lobj.t ->
  ?share_tracks:bool ->
  nets:string list ->
  channels:channel list ->
  spine_x0:int ->
  unit ->
  result
(** Route each net with at least two ports.  Channels must be free of
    foreign metal1 at the used tracks; net index determines the spine
    offsets, so results are deterministic.  With [share_tracks] (default
    false), non-overlapping nets share tracks by the classic left-edge
    channel-routing assignment. *)
