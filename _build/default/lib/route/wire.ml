module Rect = Amg_geometry.Rect
module Rules = Amg_tech.Rules
module Lobj = Amg_layout.Lobj
module Port = Amg_layout.Port
module Env = Amg_core.Env

(* Landing pad size for a cut on [layer]: cut plus enclosure both sides. *)
let pad_size rules ~layer ~cut =
  Rules.cut_size rules cut + (2 * Rules.enclosure_or_zero rules ~outer:layer ~inner:cut)

(* Place a via stack at (x, y): the cut plus landing pads on both metals. *)
let via env obj ~at:(x, y) ?net () =
  let rules = Env.rules env in
  let cut = Rules.cut_size rules "via" in
  let centered size = Rect.of_center ~cx:x ~cy:y ~w:size ~h:size in
  let m1 = Lobj.add_shape obj ~layer:"metal1" ~rect:(centered (pad_size rules ~layer:"metal1" ~cut:"via")) ?net () in
  let m2 = Lobj.add_shape obj ~layer:"metal2" ~rect:(centered (pad_size rules ~layer:"metal2" ~cut:"via")) ?net () in
  let v = Lobj.add_shape obj ~layer:"via" ~rect:(centered cut) ?net () in
  (m1, m2, v)

(* Substrate/diffusion contact at a point: cut, landing diffusion, metal1. *)
let contact_at env obj ~at:(x, y) ~landing ?net () =
  let rules = Env.rules env in
  let cut = Rules.cut_size rules "contact" in
  let centered size = Rect.of_center ~cx:x ~cy:y ~w:size ~h:size in
  let land_ =
    Lobj.add_shape obj ~layer:landing
      ~rect:(centered (pad_size rules ~layer:landing ~cut:"contact"))
      ?net ()
  in
  let m1 =
    Lobj.add_shape obj ~layer:"metal1"
      ~rect:(centered (pad_size rules ~layer:"metal1" ~cut:"contact"))
      ?net ()
  in
  let c = Lobj.add_shape obj ~layer:"contact" ~rect:(centered cut) ?net () in
  (land_, m1, c)

let port_center (p : Port.t) =
  (Rect.center_x p.Port.rect, Rect.center_y p.Port.rect)

(* Connect two ports on the same routing layer with an L (or straight)
   path; the bend runs horizontally from [a] first. *)
let connect_ports env obj ?width ?net (a : Port.t) (b : Port.t) =
  if not (String.equal a.Port.layer b.Port.layer) then
    Env.reject "Wire.connect_ports: ports on different layers (%s vs %s)"
      a.Port.layer b.Port.layer;
  let rules = Env.rules env in
  let w = Option.value ~default:(Rules.width rules a.Port.layer) width in
  let net = match net with Some n -> Some n | None -> Some a.Port.net in
  let ax, ay = port_center a and bx, by = port_center b in
  let points =
    if ax = bx || ay = by then [ (ax, ay); (bx, by) ]
    else [ (ax, ay); (bx, ay); (bx, by) ]
  in
  Path.draw obj ~layer:a.Port.layer ~width:w ?net points
