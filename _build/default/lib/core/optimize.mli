(** Compaction-order optimization (§2.4).

    The successive compactor's result depends on the order in which objects
    are compacted; optimization mode re-runs the sequence over permutations
    of the order and keeps the result the {!Rating} function likes best. *)

type step = {
  obj : Amg_layout.Lobj.t;
  dir : Amg_geometry.Dir.t;
  ignore_layers : string list;
  align : Amg_compact.Successive.align;
  variable_edges : bool;
}

val step :
  ?ignore_layers:string list ->
  ?align:Amg_compact.Successive.align ->
  ?variable_edges:bool ->
  Amg_layout.Lobj.t ->
  Amg_geometry.Dir.t ->
  step
(** One [compact(obj, dir, …)] call of a module description. *)

val apply : Env.t -> name:string -> step list -> Amg_layout.Lobj.t
(** Run the steps in the given order against a fresh main object; every
    step compacts a fresh copy of its object, so the same steps can be
    replayed in any order. *)

val permutations : 'a list -> 'a list Seq.t
(** All permutations, lazily. *)

val evaluate_orders :
  Env.t ->
  name:string ->
  ?rating:Rating.t ->
  ?max_orders:int ->
  step list ->
  (Amg_layout.Lobj.t * float * step list) list
(** Build and rate every order (up to [max_orders], default 720 = 6!);
    rejected orders are skipped. *)

val optimize :
  Env.t ->
  name:string ->
  ?rating:Rating.t ->
  ?max_orders:int ->
  step list ->
  Amg_layout.Lobj.t * float * step list
(** The best order's result, its rating, and the order itself.
    @raise Env.Rejected when every order is rejected. *)

val optimize_bb :
  Env.t ->
  name:string ->
  ?rating:Rating.t ->
  step list ->
  Amg_layout.Lobj.t * float * step list * int
(** Branch-and-bound over orders: same optimum as the exhaustive search
    (placing an object never shrinks the bounding box, so the partial area
    is a sound lower bound), usually visiting far fewer nodes.  The last
    component is the number of search nodes explored.
    @raise Env.Rejected when every order is rejected. *)

val optimize_local :
  Env.t ->
  name:string ->
  ?rating:Rating.t ->
  ?restarts:int ->
  ?seed:int ->
  step list ->
  Amg_layout.Lobj.t * float * step list * int
(** Heuristic order search for step counts beyond exhaustive reach:
    first-improvement hill climbing over pairwise swaps, with
    [restarts] deterministically shuffled starting orders ([seed] makes
    runs reproducible).  Never worse than the best starting order; not
    guaranteed optimal.  The last component is the number of full
    rebuild-and-rate evaluations performed.
    @raise Env.Rejected when every order is rejected. *)
