module Technology = Amg_tech.Technology
module Rules = Amg_tech.Rules

type t = { tech : Technology.t }

let create tech = { tech }

let bicmos () = create (Amg_tech.Bicmos1u.get ())

let tech t = t.tech

let rules t = Technology.rules t.tech

let grid t = Rules.grid (rules t)

let um = Amg_geometry.Units.of_um

exception Rejected of string

let reject fmt = Fmt.kstr (fun m -> raise (Rejected m)) fmt
