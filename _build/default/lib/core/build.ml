(* Thin wrappers binding the compactor to a generator environment, so module
   sources read like the paper's compact(obj, DIR, layer) calls. *)

module Dir = Amg_geometry.Dir
module Lobj = Amg_layout.Lobj
module Successive = Amg_compact.Successive

let compact env ~into ?ignore_layers ?align ?variable_edges obj dir =
  Successive.compact ~rules:(Env.rules env) ~into ?ignore_layers ?align
    ?variable_edges obj dir

let south = Dir.South
let north = Dir.North
let east = Dir.East
let west = Dir.West
