(* Backtracking over topology variants (§2.1, §2.4).

   "Due to design-rule constraints, the designer has to specify different
   topology alternatives for parameterizable modules.  For this purpose
   backtracking is supported … because no complex if-then-structures with
   deep hierarchies have to be programmed."

   A computation is a tree of alternatives; a branch that raises
   [Env.Rejected] is abandoned and the next alternative is tried.  The
   rating function of §2.4 selects among the surviving results. *)

type 'a t =
  | Return : 'a -> 'a t
  | Delay : (unit -> 'a) -> 'a t
  | Alt : 'a t list -> 'a t
  | Bind : 'b t * ('b -> 'a t) -> 'a t

let return x = Return x

let delay f = Delay f

let alt ts = Alt ts

let of_list xs = Alt (List.map (fun x -> Return x) xs)

let fail msg = Delay (fun () -> Env.reject "%s" msg)

let bind m f = Bind (m, f)

let map f m = Bind (m, fun x -> Return (f x))

let ( let* ) = bind
let ( let+ ) m f = map f m

(* Depth-first enumeration; every [Env.Rejected] turns into an [Error]. *)
let rec run : type a. a t -> (a, string) result list = function
  | Return x -> [ Ok x ]
  | Delay f -> ( try [ Ok (f ()) ] with Env.Rejected m -> [ Error m ])
  | Alt ts -> List.concat_map run ts
  | Bind (m, f) ->
      run m
      |> List.concat_map (function
           | Error m -> [ Error m ]
           | Ok v -> ( try run (f v) with Env.Rejected m -> [ Error m ]))

let successes m =
  List.filter_map (function Ok x -> Some x | Error _ -> None) (run m)

let failures m =
  List.filter_map (function Error e -> Some e | Ok _ -> None) (run m)

(* First success, depth first — plain backtracking. *)
let first m =
  let rec go : type a. a t -> a option = function
    | Return x -> Some x
    | Delay f -> ( try Some (f ()) with Env.Rejected _ -> None)
    | Alt ts ->
        List.fold_left
          (fun acc t -> match acc with Some _ -> acc | None -> go t)
          None ts
    | Bind (m, f) -> (
        (* Try each solution of [m] in order until one continuation
           succeeds. *)
        let rec try_solutions = function
          | [] -> None
          | Ok v :: rest -> (
              match (try go (f v) with Env.Rejected _ -> None) with
              | Some r -> Some r
              | None -> try_solutions rest)
          | Error _ :: rest -> try_solutions rest
        in
        try_solutions (run m))
  in
  go m

let first_exn m =
  match first m with
  | Some x -> x
  | None -> Env.reject "Variants.first_exn: all alternatives rejected"

(* Rate every surviving variant and keep the best (lowest rating) —
   "the rating function is also applied to select the best variant"
   (§2.4). *)
let best ~rate m =
  let rated = List.map (fun x -> (x, rate x)) (successes m) in
  List.fold_left
    (fun acc (x, r) ->
      match acc with
      | Some (_, br) when br <= r -> acc
      | _ -> Some (x, r))
    None rated

let best_exn ~rate m =
  match best ~rate m with
  | Some xr -> xr
  | None -> Env.reject "Variants.best_exn: all alternatives rejected"
