(* Optimal slicing floorplans by dynamic programming over block subsets.

   The paper's amplifier was floorplanned by hand; this is the automated
   option: every way of packing a set of blocks that can be expressed as
   recursive horizontal/vertical cuts (a slicing tree) is explored by
   combining, for every subset of blocks, the Pareto-optimal (w, h)
   shapes of its two-part splits.  For the block counts a module
   generator sees (≤ ~10) the exact optimum is cheap.

   Shapes are Pareto-pruned: a candidate (w, h) survives only if no other
   candidate is at most as wide AND at most as tall. *)

module Rect = Amg_geometry.Rect

type block = { fp_name : string; fp_w : int; fp_h : int }

let block ~name ~w ~h =
  if w <= 0 || h <= 0 then Env.reject "Floorplan.block: non-positive size";
  { fp_name = name; fp_w = w; fp_h = h }

type tree =
  | Leaf of int            (* block index *)
  | Beside of tree * tree  (* vertical cut: left | right *)
  | Above of tree * tree   (* horizontal cut: upper / lower *)

type shape = { sh_w : int; sh_h : int; sh_tree : tree }

(* Keep only Pareto-optimal shapes (no other shape dominates). *)
let pareto shapes =
  let sorted =
    List.sort
      (fun a b ->
        match compare a.sh_w b.sh_w with 0 -> compare a.sh_h b.sh_h | c -> c)
      shapes
  in
  (* After sorting by width, a shape survives iff its height beats every
     earlier (narrower-or-equal) shape. *)
  let _, front =
    List.fold_left
      (fun (best_h, acc) s ->
        if s.sh_h < best_h then (s.sh_h, s :: acc) else (best_h, acc))
      (max_int, []) sorted
  in
  List.rev front

(* All Pareto shapes of every subset, bottom-up over the subset lattice. *)
let shapes_by_subset ?(spacing = 0) blocks =
  let n = Array.length blocks in
  if n > 14 then Env.reject "Floorplan: too many blocks (max 14)";
  let table = Array.make (1 lsl n) [] in
  for i = 0 to n - 1 do
    table.(1 lsl i) <-
      [ { sh_w = blocks.(i).fp_w; sh_h = blocks.(i).fp_h; sh_tree = Leaf i } ]
  done;
  for set = 1 to (1 lsl n) - 1 do
    if table.(set) = [] && set land (set - 1) <> 0 then begin
      (* Enumerate proper sub-splits; visiting each unordered pair once. *)
      let acc = ref [] in
      let sub = ref ((set - 1) land set) in
      while !sub > 0 do
        let rest = set lxor !sub in
        if !sub < rest then begin
          let combine a b =
            [
              { sh_w = a.sh_w + b.sh_w + spacing;
                sh_h = max a.sh_h b.sh_h;
                sh_tree = Beside (a.sh_tree, b.sh_tree) };
              { sh_w = max a.sh_w b.sh_w;
                sh_h = a.sh_h + b.sh_h + spacing;
                sh_tree = Above (a.sh_tree, b.sh_tree) };
            ]
          in
          List.iter
            (fun a ->
              List.iter (fun b -> acc := combine a b @ !acc) table.(rest))
            table.(!sub)
        end;
        sub := (!sub - 1) land set
      done;
      table.(set) <- pareto !acc
    end
  done;
  table

type result = {
  width : int;
  height : int;
  area : int;
  positions : (string * Rect.t) list;  (* block name -> placed rectangle *)
}

(* Recover placements by walking the tree. *)
let positions ~spacing blocks tree =
  let rec dims = function
    | Leaf i -> (blocks.(i).fp_w, blocks.(i).fp_h)
    | Beside (a, b) ->
        let wa, ha = dims a and wb, hb = dims b in
        (wa + wb + spacing, max ha hb)
    | Above (a, b) ->
        let wa, ha = dims a and wb, hb = dims b in
        (max wa wb, ha + hb + spacing)
  in
  let out = ref [] in
  let rec place t ~x ~y =
    match t with
    | Leaf i ->
        out :=
          ( blocks.(i).fp_name,
            Rect.of_size ~x ~y ~w:blocks.(i).fp_w ~h:blocks.(i).fp_h )
          :: !out
    | Beside (a, b) ->
        let wa, _ = dims a in
        place a ~x ~y;
        place b ~x:(x + wa + spacing) ~y
    | Above (a, b) ->
        let _, hb = dims b in
        place b ~x ~y;
        place a ~x ~y:(y + hb + spacing)
  in
  place tree ~x:0 ~y:0;
  (dims tree, List.rev !out)

let optimize ?(spacing = 0) ?aspect blocks =
  if blocks = [] then Env.reject "Floorplan: no blocks";
  let arr = Array.of_list blocks in
  let table = shapes_by_subset ~spacing arr in
  let full = table.((1 lsl Array.length arr) - 1) in
  let cost s =
    let area = float_of_int s.sh_w *. float_of_int s.sh_h in
    match aspect with
    | None -> area
    | Some target ->
        let r = float_of_int s.sh_w /. float_of_int s.sh_h in
        let p = if r > target then r /. target else target /. r in
        area *. p
  in
  let best =
    List.fold_left
      (fun acc s ->
        match acc with
        | Some b when cost b <= cost s -> acc
        | _ -> Some s)
      None full
  in
  match best with
  | None -> Env.reject "Floorplan: no feasible shape"
  | Some s ->
      let (w, h), pos = positions ~spacing arr s.sh_tree in
      { width = w; height = h; area = w * h; positions = pos }

(* The baseline the amplifier uses: one row of blocks per group, rows
   stacked — for the ablation comparison. *)
let rows_area ?(spacing = 0) rows =
  let row_dims blocks =
    List.fold_left
      (fun (w, h) b -> (w + b.fp_w + (if w = 0 then 0 else spacing), max h b.fp_h))
      (0, 0) blocks
  in
  let w, h =
    List.fold_left
      (fun (w, h) row ->
        let rw, rh = row_dims row in
        (max w rw, h + rh + (if h = 0 then 0 else spacing)))
      (0, 0) rows
  in
  w * h
