(** Environment-bound compaction, so module sources read like the paper's
    [compact(obj, SOUTH, "poly")] calls. *)

val compact :
  Env.t ->
  into:Amg_layout.Lobj.t ->
  ?ignore_layers:string list ->
  ?align:Amg_compact.Successive.align ->
  ?variable_edges:bool ->
  Amg_layout.Lobj.t ->
  Amg_geometry.Dir.t ->
  unit

val south : Amg_geometry.Dir.t
val north : Amg_geometry.Dir.t
val east : Amg_geometry.Dir.t
val west : Amg_geometry.Dir.t
