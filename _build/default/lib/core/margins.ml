(* "The necessary overlap between all involved layers is considered
   automatically" (§2.2).

   The margin by which an outer-layer rectangle must extend past an
   inner-layer rectangle placed inside it is:
   - the explicit enclosure rule when one exists (e.g. metal1 over contact);
   - otherwise, derived through a shared cut layer: if both layers must
     enclose the same cut (poly and metal1 both enclose contact), the outer
     one needs enclosure(outer, cut) - enclosure(inner, cut) so that a cut
     legal in the inner rectangle is automatically legal in the outer one;
   - zero when the layers are unrelated (they may coincide). *)

module Rules = Amg_tech.Rules

(* Cut layers that [layer] must enclose, with margins. *)
let cuts_enclosed_by rules layer =
  let acc = ref [] in
  Rules.iter_enclosures rules (fun ~outer ~inner d ->
      if String.equal outer layer then acc := (inner, d) :: !acc);
  List.sort compare !acc

let inside rules ~outer ~inner =
  match Rules.enclosure rules ~outer ~inner with
  | Some d -> d
  | None ->
      (* Derive through a common cut. *)
      let outer_cuts = cuts_enclosed_by rules outer in
      let derived =
        List.filter_map
          (fun (cut, d_outer) ->
            match List.assoc_opt cut (cuts_enclosed_by rules inner) with
            | Some d_inner -> Some (d_outer - d_inner)
            | None -> None)
          outer_cuts
      in
      List.fold_left max 0 derived
