(** The rating function (§2.4): area plus electrical conditions.

    Lower is better.  Electrical cost is the estimated parasitic
    capacitance of the declared sensitive nets; an optional aspect-ratio
    term lets a parent module prefer a shape that floorplans well. *)

type t = {
  area_weight : float;        (** cost per um² of bounding box *)
  cap_weight : float;         (** cost per fF on a sensitive net *)
  sensitive_nets : string list;
  aspect_weight : float;      (** cost per unit aspect deviation *)
  target_aspect : float;      (** desired width / height *)
}

val area_only : t
val default : t

val with_sensitive_nets : ?cap_weight:float -> t -> string list -> t
val with_aspect : ?aspect_weight:float -> t -> float -> t

val rate : Env.t -> t -> Amg_layout.Lobj.t -> float
