(** Automatic inter-layer overlap margins (§2.2).

    When a rectangle is placed inside rectangles of other layers, "the
    necessary overlap between all involved layers is considered
    automatically": explicit enclosure rules are used when present, and
    otherwise the margin is derived through a cut layer that both layers
    must enclose, so that any cut legal in the inner rectangle is legal in
    all outer ones. *)

val cuts_enclosed_by : Amg_tech.Rules.t -> string -> (string * int) list
(** Cut layers the given layer must enclose, with margins, sorted. *)

val inside : Amg_tech.Rules.t -> outer:string -> inner:string -> int
(** Margin by which [outer] must extend past [inner]; 0 for unrelated
    layers. *)
