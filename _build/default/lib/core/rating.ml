(* The rating function of §2.4: "Each solution is evaluated by a rating
   function which considers the area and electrical conditions." *)

module Lobj = Amg_layout.Lobj
module Parasitics = Amg_layout.Parasitics

type t = {
  area_weight : float;        (* per um^2 of bounding box *)
  cap_weight : float;         (* per fF on a sensitive net *)
  sensitive_nets : string list;
  aspect_weight : float;      (* per unit deviation from target aspect *)
  target_aspect : float;      (* width / height *)
}

let area_only = {
  area_weight = 1.0;
  cap_weight = 0.;
  sensitive_nets = [];
  aspect_weight = 0.;
  target_aspect = 1.0;
}

let default = area_only

let with_sensitive_nets ?(cap_weight = 50.) t nets =
  { t with cap_weight; sensitive_nets = nets }

let with_aspect ?(aspect_weight = 100.) t target =
  { t with aspect_weight; target_aspect = target }

let rate env t obj =
  let area_um2 = float_of_int (Lobj.bbox_area obj) /. 1.0e6 in
  let cap_cost =
    if t.cap_weight = 0. || t.sensitive_nets = [] then 0.
    else
      List.fold_left
        (fun acc net -> acc +. Parasitics.net_total ~tech:(Env.tech env) obj net)
        0. t.sensitive_nets
  in
  let aspect_cost =
    if t.aspect_weight = 0. then 0.
    else
      match Lobj.bbox obj with
      | None -> 0.
      | Some r ->
          let w = float_of_int (Amg_geometry.Rect.width r)
          and h = float_of_int (Amg_geometry.Rect.height r) in
          if h = 0. then 0. else Float.abs ((w /. h) -. t.target_aspect)
  in
  (t.area_weight *. area_um2)
  +. (t.cap_weight *. cap_cost)
  +. (t.aspect_weight *. aspect_cost)
