(* The primitive shape functions of §2.2:

   - [inbox]: "inserting a rectangle inside other rectangles" — with
     automatic overlap margins and automatic expansion of the outer
     rectangles when the new one cannot be placed;
   - [array]: "creating an array of rectangles inside other rectangles" —
     the maximum number of equidistant cuts, expanding the outers when not
     even one fits;
   - [around]: "placing a rectangle around a structure";
   - [ring]: "placing a ring around a structure";
   - [tworects]: "creating two overlapping rectangles" — the transistor;
   - [angle]: "producing an angle adaptor for wiring purposes". *)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Rules = Amg_tech.Rules
module Technology = Amg_tech.Technology
module Layer = Amg_tech.Layer
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Edge = Amg_layout.Edge
module Derive = Amg_layout.Derive

(* Shapes eligible to contain new geometry: user-placed, non-cut,
   non-marker. *)
let containers env obj =
  List.filter
    (fun (s : Shape.t) ->
      s.Shape.origin = Shape.User
      &&
      match Technology.layer (Env.tech env) s.Shape.layer with
      | Some l -> (not (Layer.is_cut l)) && l.Layer.kind <> Layer.Marker
      | None -> false)
    (Lobj.shapes obj)

(* Grow every container symmetrically by [amount] total along [axis];
   per-side growth is snapped up to the grid.  Ids are stable, so array
   registrations survive. *)
let expand_axis env obj cs axis amount =
  let grid = Env.grid env in
  let per_side = Units.snap_up ~grid ((amount + 1) / 2) in
  List.iter
    (fun (c : Shape.t) ->
      match Lobj.find obj c.Shape.id with
      | None -> ()
      | Some cur ->
          let rect =
            match (axis : Dir.axis) with
            | Horizontal -> Rect.inflate_xy cur.Shape.rect ~dx:per_side ~dy:0
            | Vertical -> Rect.inflate_xy cur.Shape.rect ~dx:0 ~dy:per_side
          in
          Lobj.replace obj (Shape.with_rect cur rect))
    cs

(* Intersection of the containers, each shrunk by its automatic margin for
   [inner_layer]. *)
let inner_window env obj cs inner_layer =
  let rules = Env.rules env in
  let shrunk =
    List.map
      (fun (c : Shape.t) ->
        let cur = match Lobj.find obj c.Shape.id with Some s -> s | None -> c in
        Rect.inflate cur.Shape.rect
          (-Margins.inside rules ~outer:cur.Shape.layer ~inner:inner_layer))
      cs
  in
  match shrunk with
  | [] -> None
  | r :: rs ->
      List.fold_left
        (fun acc r -> Option.bind acc (fun a -> Rect.inter a r))
        (if Rect.is_degenerate r then None else Some r)
        rs

let center_span ~grid ~lo ~hi want =
  let slack = hi - lo - want in
  let x0 = Units.snap_down ~grid (lo + (slack / 2)) in
  let x0 = max lo (min x0 (hi - want)) in
  (x0, x0 + want)

let inbox env obj ~layer ?w ?l ?net ?sides ?keep_clear () =
  Technology.check_layer (Env.tech env) layer;
  let rules = Env.rules env in
  let minw = Rules.width rules layer in
  let validate dim =
    match dim with
    | Some v when v < minw ->
        Env.reject "inbox %s: requested size %a below minimum width %a" layer
          Units.pp_nm v Units.pp_nm minw
    | _ -> ()
  in
  validate w;
  validate l;
  let cs = containers env obj in
  let shape =
    match cs with
    | [] ->
        (* First rectangle of the object: origin-anchored, defaults to the
           minimum width ("the minimum possible length … is selected
           according to the design-rules", §2.2). *)
        let lx = Option.value ~default:minw l and wy = Option.value ~default:minw w in
        Lobj.add_shape obj ~layer ~rect:(Rect.of_size ~x:0 ~y:0 ~w:lx ~h:wy) ?net
          ?sides ?keep_clear ()
    | _ ->
        let grid = Env.grid env in
        let rec place attempt =
          if attempt > 8 then
            Env.reject "inbox %s: cannot fit inside the existing structure" layer;
          match inner_window env obj cs layer with
          | None ->
              (* Disjoint after shrinking: expand everything and retry. *)
              expand_axis env obj cs Dir.Horizontal (2 * minw);
              expand_axis env obj cs Dir.Vertical (2 * minw);
              place (attempt + 1)
          | Some win ->
              let want_x = max minw (Option.value ~default:(Rect.width win) l) in
              let want_y = max minw (Option.value ~default:(Rect.height win) w) in
              let gx = want_x - Rect.width win and gy = want_y - Rect.height win in
              if gx > 0 || gy > 0 then begin
                if gx > 0 then expand_axis env obj cs Dir.Horizontal gx;
                if gy > 0 then expand_axis env obj cs Dir.Vertical gy;
                place (attempt + 1)
              end
              else
                let x0, x1 = center_span ~grid ~lo:win.Rect.x0 ~hi:win.Rect.x1 want_x in
                let y0, y1 = center_span ~grid ~lo:win.Rect.y0 ~hi:win.Rect.y1 want_y in
                Lobj.add_shape obj ~layer ~rect:(Rect.make ~x0 ~y0 ~x1 ~y1) ?net
                  ?sides ?keep_clear ()
        in
        place 0
  in
  Lobj.rederive obj rules;
  shape

let array env obj ~layer ?net ?within () =
  Technology.check_layer (Env.tech env) layer;
  let rules = Env.rules env in
  let cs = match within with Some cs -> cs | None -> containers env obj in
  if cs = [] then Env.reject "array %s: no containers in object" layer;
  let cut = Rules.cut_size rules layer in
  let rec fit attempt =
    if attempt > 8 then
      Env.reject "array %s: cannot fit one cut inside the structure" layer;
    let current =
      List.map
        (fun (c : Shape.t) ->
          let cur = match Lobj.find obj c.Shape.id with Some s -> s | None -> c in
          (cur.Shape.layer, cur.Shape.rect))
        cs
    in
    match Derive.cut_window rules ~containers:current ~cut_layer:layer with
    | None ->
        expand_axis env obj cs Dir.Horizontal (2 * cut);
        expand_axis env obj cs Dir.Vertical (2 * cut);
        fit (attempt + 1)
    | Some win ->
        let gx = cut - Rect.width win and gy = cut - Rect.height win in
        if gx > 0 || gy > 0 then begin
          if gx > 0 then expand_axis env obj cs Dir.Horizontal gx;
          if gy > 0 then expand_axis env obj cs Dir.Vertical gy;
          fit (attempt + 1)
        end
  in
  fit 0;
  let id =
    Lobj.register_array obj ~cut_layer:layer
      ~container_ids:(List.map (fun (c : Shape.t) -> c.Shape.id) cs)
      ?net ()
  in
  Lobj.rederive obj rules;
  id

type gate_orient = [ `Vertical | `Horizontal ]

let tworects env obj ~layer_a ~layer_b ~w ~l ?net_a ?net_b
    ?(orient : gate_orient = `Vertical) () =
  let tech = Env.tech env in
  Technology.check_layer tech layer_a;
  Technology.check_layer tech layer_b;
  let rules = Env.rules env in
  if w <= 0 || l <= 0 then Env.reject "tworects: non-positive W or L";
  let endcap = Option.value ~default:0 (Rules.extension rules ~of_:layer_a ~past:layer_b) in
  let sd = Option.value ~default:0 (Rules.extension rules ~of_:layer_b ~past:layer_a) in
  let ra, rb =
    match orient with
    | `Vertical ->
        (* Gate stripe vertical: channel is l wide (x) and w tall (y). *)
        ( Rect.make ~x0:0 ~y0:(-endcap) ~x1:l ~y1:(w + endcap),
          Rect.make ~x0:(-sd) ~y0:0 ~x1:(l + sd) ~y1:w )
    | `Horizontal ->
        ( Rect.make ~x0:(-endcap) ~y0:0 ~x1:(w + endcap) ~y1:l,
          Rect.make ~x0:0 ~y0:(-sd) ~x1:w ~y1:(l + sd) )
  in
  let a = Lobj.add_shape obj ~layer:layer_a ~rect:ra ?net:net_a () in
  let b = Lobj.add_shape obj ~layer:layer_b ~rect:rb ?net:net_b () in
  (a, b)

let around env obj ~layer ?margin ?net () =
  Technology.check_layer (Env.tech env) layer;
  let rules = Env.rules env in
  match Lobj.bbox obj with
  | None -> Env.reject "around %s: empty object" layer
  | Some bbox ->
      let m =
        match margin with
        | Some m -> m
        | None ->
            List.fold_left
              (fun acc (s : Shape.t) ->
                max acc (Margins.inside rules ~outer:layer ~inner:s.Shape.layer))
              0 (Lobj.shapes obj)
      in
      Lobj.add_shape obj ~layer ~rect:(Rect.inflate bbox m) ?net ()

let ring env obj ~layer ?width ?margin ?net () =
  Technology.check_layer (Env.tech env) layer;
  let rules = Env.rules env in
  match Lobj.bbox obj with
  | None -> Env.reject "ring %s: empty object" layer
  | Some bbox ->
      let w = Option.value ~default:(Rules.width rules layer) width in
      let m =
        match margin with
        | Some m -> m
        | None ->
            (* Clear the structure by the largest spacing rule between the
               ring layer and any contained layer. *)
            List.fold_left
              (fun acc (s : Shape.t) ->
                match Rules.space rules layer s.Shape.layer with
                | Some d -> max acc d
                | None -> acc)
              0 (Lobj.shapes obj)
      in
      let inner = Rect.inflate bbox m in
      let outer = Rect.inflate inner w in
      let add rect = Lobj.add_shape obj ~layer ~rect ?net () in
      [
        add (Rect.make ~x0:outer.Rect.x0 ~y0:outer.Rect.y0 ~x1:outer.Rect.x1 ~y1:inner.Rect.y0);
        add (Rect.make ~x0:outer.Rect.x0 ~y0:inner.Rect.y1 ~x1:outer.Rect.x1 ~y1:outer.Rect.y1);
        add (Rect.make ~x0:outer.Rect.x0 ~y0:inner.Rect.y0 ~x1:inner.Rect.x0 ~y1:inner.Rect.y1);
        add (Rect.make ~x0:inner.Rect.x1 ~y0:inner.Rect.y0 ~x1:outer.Rect.x1 ~y1:inner.Rect.y1);
      ]

let angle env obj ~layer ~width ~corner:(cx, cy) ~leg1:(d1, len1) ~leg2:(d2, len2)
    ?net () =
  Technology.check_layer (Env.tech env) layer;
  if Dir.axis d1 = Dir.axis d2 then
    Env.reject "angle %s: legs must be perpendicular" layer;
  if width <= 0 || len1 < 0 || len2 < 0 then Env.reject "angle %s: bad sizes" layer;
  let h = width / 2 in
  let square =
    Rect.make ~x0:(cx - h) ~y0:(cy - h) ~x1:(cx - h + width) ~y1:(cy - h + width)
  in
  let leg d len = Rect.grow_side square d len in
  let a = Lobj.add_shape obj ~layer ~rect:(leg d1 len1) ?net () in
  let b = Lobj.add_shape obj ~layer ~rect:(leg d2 len2) ?net () in
  (a, b)

let raw obj ~layer ~rect ?net ?sides ?keep_clear () =
  Lobj.add_shape obj ~layer ~rect ?net ?sides ?keep_clear ()
