lib/core/floorplan.pp.ml: Amg_geometry Array Env List
