lib/core/build.pp.ml: Amg_compact Amg_geometry Amg_layout Env
