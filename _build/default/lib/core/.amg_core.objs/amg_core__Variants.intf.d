lib/core/variants.pp.mli:
