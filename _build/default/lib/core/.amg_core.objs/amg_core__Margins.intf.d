lib/core/margins.pp.mli: Amg_tech
