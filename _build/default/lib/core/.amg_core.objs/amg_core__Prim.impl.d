lib/core/prim.pp.ml: Amg_geometry Amg_layout Amg_tech Env List Margins Option
