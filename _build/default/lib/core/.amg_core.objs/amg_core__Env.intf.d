lib/core/env.pp.mli: Amg_tech Format
