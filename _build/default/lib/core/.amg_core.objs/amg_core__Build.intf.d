lib/core/build.pp.mli: Amg_compact Amg_geometry Amg_layout Env
