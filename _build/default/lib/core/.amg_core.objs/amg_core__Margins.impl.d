lib/core/margins.pp.ml: Amg_tech List String
