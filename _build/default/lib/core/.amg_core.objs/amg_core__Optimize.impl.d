lib/core/optimize.pp.ml: Amg_compact Amg_geometry Amg_layout Array Env List Rating Seq
