lib/core/variants.pp.ml: Env List
