lib/core/floorplan.pp.mli: Amg_geometry
