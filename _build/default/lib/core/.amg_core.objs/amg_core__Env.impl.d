lib/core/env.pp.ml: Amg_geometry Amg_tech Fmt
