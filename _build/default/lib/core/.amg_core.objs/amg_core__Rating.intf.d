lib/core/rating.pp.mli: Amg_layout Env
