lib/core/prim.pp.mli: Amg_geometry Amg_layout Env
