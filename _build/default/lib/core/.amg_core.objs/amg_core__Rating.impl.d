lib/core/rating.pp.ml: Amg_geometry Amg_layout Env Float List
