lib/core/optimize.pp.mli: Amg_compact Amg_geometry Amg_layout Env Rating Seq
