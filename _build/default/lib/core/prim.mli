(** Primitive shape functions (§2.2).

    These are the paper's geometry primitives: they place geometry
    {e relatively}, evaluate the design rules automatically, and expand
    surrounding geometry when a new rectangle does not fit, so that module
    descriptions never mention absolute coordinates. *)

val containers : Env.t -> Amg_layout.Lobj.t -> Amg_layout.Shape.t list
(** Shapes eligible to contain new geometry: user-placed, non-cut,
    non-marker. *)

val inbox :
  Env.t ->
  Amg_layout.Lobj.t ->
  layer:string ->
  ?w:int ->
  ?l:int ->
  ?net:string ->
  ?sides:Amg_layout.Edge.sides ->
  ?keep_clear:bool ->
  unit ->
  Amg_layout.Shape.t
(** The paper's [INBOX(layer, W, L)].  [w] is the vertical, [l] the
    horizontal size; an omitted size defaults to the design-rule minimum
    (first rectangle) or fills the available window (subsequent
    rectangles).  When the rectangle cannot be placed inside the existing
    structure "all outer rectangles are expanded".
    @raise Env.Rejected when a requested size is below the minimum width or
    no placement exists. *)

val array :
  Env.t ->
  Amg_layout.Lobj.t ->
  layer:string ->
  ?net:string ->
  ?within:Amg_layout.Shape.t list ->
  unit ->
  int
(** The paper's [ARRAY(cut_layer)]: registers a derived, equidistant cut
    array inside the containers ([within] overrides the default container
    set), expanding the outer geometries until at least one cut fits.
    Returns the array id; members are rebuilt automatically on any
    container change.
    @raise Env.Rejected when no containers exist or expansion fails. *)

type gate_orient = [ `Vertical | `Horizontal ]

val tworects :
  Env.t ->
  Amg_layout.Lobj.t ->
  layer_a:string ->
  layer_b:string ->
  w:int ->
  l:int ->
  ?net_a:string ->
  ?net_b:string ->
  ?orient:gate_orient ->
  unit ->
  Amg_layout.Shape.t * Amg_layout.Shape.t
(** The paper's [TWORECTS(a, b, W, L)]: two overlapping rectangles forming
    a transistor — gate stripe on [layer_a] crossing an active rectangle on
    [layer_b], with end-cap and source/drain extensions taken from the
    design rules.  [w] is the channel width, [l] the channel length. *)

val around :
  Env.t ->
  Amg_layout.Lobj.t ->
  layer:string ->
  ?margin:int ->
  ?net:string ->
  unit ->
  Amg_layout.Shape.t
(** "Placing a rectangle around a structure": the bounding box inflated by
    [margin] (default: the largest automatic enclosure margin of the ring
    layer over any contained layer — e.g. an n-well placed around p-diffusion
    gets the well-enclosure margin). *)

val ring :
  Env.t ->
  Amg_layout.Lobj.t ->
  layer:string ->
  ?width:int ->
  ?margin:int ->
  ?net:string ->
  unit ->
  Amg_layout.Shape.t list
(** "Placing a ring around a structure": four rectangles forming a closed
    frame of the given [width] (default minimum width), cleared from the
    structure by [margin] (default: the largest spacing rule between the
    ring layer and any contained layer). *)

val angle :
  Env.t ->
  Amg_layout.Lobj.t ->
  layer:string ->
  width:int ->
  corner:int * int ->
  leg1:Amg_geometry.Dir.t * int ->
  leg2:Amg_geometry.Dir.t * int ->
  ?net:string ->
  unit ->
  Amg_layout.Shape.t * Amg_layout.Shape.t
(** "Producing an angle adaptor for wiring purposes": an L-bend of two
    overlapping rectangles sharing the corner square centred at [corner].
    @raise Env.Rejected when the legs are parallel. *)

val raw :
  Amg_layout.Lobj.t ->
  layer:string ->
  rect:Amg_geometry.Rect.t ->
  ?net:string ->
  ?sides:Amg_layout.Edge.sides ->
  ?keep_clear:bool ->
  unit ->
  Amg_layout.Shape.t
(** Escape hatch: place a rectangle at absolute coordinates.  Used by the
    coordinate-level baseline generators for the code-length comparison. *)
