(** Optimal slicing floorplans.

    Exact minimum-area (optionally aspect-penalised) packing of a block
    set over all slicing trees, by dynamic programming on block subsets
    with Pareto-pruned (w, h) shape lists.  The automated alternative to
    the paper's manual amplifier floorplan; exact and fast for the block
    counts a module generator sees (≤ 14). *)

type block = { fp_name : string; fp_w : int; fp_h : int }

val block : name:string -> w:int -> h:int -> block
(** @raise Env.Rejected on non-positive sizes. *)

type tree = Leaf of int | Beside of tree * tree | Above of tree * tree

type result = {
  width : int;
  height : int;
  area : int;
  positions : (string * Amg_geometry.Rect.t) list;
      (** non-overlapping placements, origin at (0,0) *)
}

val optimize : ?spacing:int -> ?aspect:float -> block list -> result
(** Best slicing floorplan.  [spacing] is inserted at every cut (routing
    clearance); [aspect] penalises the area by how far w/h strays from
    the target ratio.
    @raise Env.Rejected on an empty list or more than 14 blocks. *)

val rows_area : ?spacing:int -> block list list -> int
(** Bounding-box area of the row-stack baseline (each inner list one row,
    rows stacked) — the ablation comparison. *)
