(* The physical-design toolbox around the generator: Euler-path finger
   ordering, exact slicing floorplans, detailed channel routing with
   doglegs, and automatic latch-up repair.

     dune exec examples/physical_design.exe
*)

module Env = Amg_core.Env
module F = Amg_core.Floorplan
module Euler = Amg_modules.Euler
module MA = Amg_modules.Mos_array
module Channel = Amg_route.Channel
module Rect = Amg_geometry.Rect
module Lobj = Amg_layout.Lobj

let um = Amg_geometry.Units.of_um

let () =
  let env = Env.bicmos () in
  let tech = Env.tech env in

  (* 1. Euler ordering: the mirror pattern derived from the schematic. *)
  Fmt.pr "=== Euler-path finger ordering ===@.";
  let bank =
    [
      Euler.device ~name:"M1" ~g:"vg" ~s:"vss" ~d:"vg" ();
      Euler.device ~name:"M2" ~g:"vg" ~s:"vss" ~d:"dout" ();
    ]
  in
  List.iter
    (fun cols ->
      Fmt.pr "  columns: %s@."
        (String.concat " "
           (List.map
              (function MA.Row n -> "[" ^ n ^ "]" | MA.Fin g -> g)
              cols)))
    (Euler.column_plans bank);
  let st = Euler.sharing_stats bank in
  Fmt.pr "  %d fingers in %d trail(s): %d contact rows instead of %d@."
    st.Euler.fingers st.Euler.trails_count st.Euler.rows_shared
    st.Euler.rows_unshared;

  (* 2. Exact slicing floorplan of mismatched blocks. *)
  Fmt.pr "@.=== slicing floorplan ===@.";
  let blocks =
    [
      F.block ~name:"bias" ~w:(um 30.) ~h:(um 18.);
      F.block ~name:"pair" ~w:(um 60.) ~h:(um 40.);
      F.block ~name:"mirror" ~w:(um 28.) ~h:(um 22.);
      F.block ~name:"out" ~w:(um 25.) ~h:(um 30.);
      F.block ~name:"comp" ~w:(um 35.) ~h:(um 24.);
    ]
  in
  let r = F.optimize ~spacing:(um 8.) blocks in
  Fmt.pr "  optimum: %.0f x %.0f um = %.0f um2@."
    (float_of_int r.F.width /. 1000.)
    (float_of_int r.F.height /. 1000.)
    (float_of_int r.F.area /. 1e6);
  List.iter
    (fun (n, (rc : Rect.t)) ->
      Fmt.pr "    %-8s at (%.0f, %.0f)@." n
        (float_of_int rc.Rect.x0 /. 1000.)
        (float_of_int rc.Rect.y0 /. 1000.))
    r.F.positions;
  Fmt.pr "  row-stack baseline: %.0f um2@."
    (float_of_int (F.rows_area ~spacing:(um 8.) [ blocks ]) /. 1e6);

  (* 3. Channel routing with a vertical-constraint cycle only doglegs can
     break. *)
  Fmt.pr "@.=== channel routing ===@.";
  let spec =
    {
      Channel.top = [ (um 0., "a"); (um 20., "b") ];
      bottom = [ (um 0., "b"); (um 10., "a"); (um 20., "a") ];
    }
  in
  (match Channel.assign spec with
  | exception Amg_robust.Diag.Fail d ->
      Fmt.pr "  without doglegs: %s@." d.Amg_robust.Diag.message
  | _ -> ());
  let obj = Lobj.create "channel" in
  let res = Channel.route_dogleg env obj ~spec ~y_top:(um 40.) ~y_bottom:0 ~x0:0 in
  Fmt.pr "  with doglegs: %d tracks (density %d), height %.1f um@."
    res.Channel.track_count res.Channel.density
    (float_of_int res.Channel.height /. 1000.);
  let vios =
    Amg_drc.Checker.run
      ~checks:[ Amg_drc.Checker.Widths; Spacings; Enclosures ] ~tech obj
  in
  Fmt.pr "  DRC: %d violations@." (List.length vios);

  (* 4. Latch-up repair on an untapped structure. *)
  Fmt.pr "@.=== automatic latch-up repair ===@.";
  let bare = Lobj.create "untapped" in
  for i = 0 to 3 do
    ignore
      (Lobj.add_shape bare ~layer:"ndiff"
         ~rect:(Rect.of_size ~x:(um (float_of_int i *. 80.)) ~y:0 ~w:(um 30.) ~h:(um 6.))
         ())
  done;
  Fmt.pr "  uncovered regions before: %d@."
    (List.length (Amg_drc.Latchup.uncovered ~tech bare));
  let added = Amg_modules.Tap_repair.repair env bare in
  Fmt.pr "  taps inserted: %d; uncovered after: %d; full DRC: %d@." added
    (List.length (Amg_drc.Latchup.uncovered ~tech bare))
    (List.length (Amg_drc.Checker.run ~tech bare))
