(* Benchmark harness: regenerates every evaluation artifact of the paper
   (DESIGN.md's per-experiment index).  Each section prints paper-vs-measured;
   Bechamel micro-benchmarks time the underlying kernels.

     dune exec bench/main.exe
*)

module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Units = Amg_geometry.Units
module Region = Amg_geometry.Region
module Lobj = Amg_layout.Lobj
module Shape = Amg_layout.Shape
module Env = Amg_core.Env
module Build = Amg_core.Build
module Optimize = Amg_core.Optimize
module Rating = Amg_core.Rating
module Successive = Amg_compact.Successive
module Edge_graph = Amg_compact.Edge_graph
module Budget = Amg_robust.Budget
module Pcache = Amg_core.Prefix_cache
module Wire = Amg_robust.Wire
module Server = Amg_serve.Server
module Client = Amg_serve.Client
module Store = Amg_store.Store
module Sweep = Amg_sweep.Sweep
module M = Amg_modules
module A = Amg_amplifier.Amplifier

let um = Units.of_um

let section title =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "============================================================@."

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let median_time ?(repeats = 5) f =
  let times = List.init repeats (fun _ -> snd (wall f)) |> List.sort compare in
  List.nth times (repeats / 2)

(* Min-of-N: the robust estimator when comparing deterministic runs of
   the same work — every repeat computes identical results, so the
   fastest observation is the one least polluted by GC pauses and
   scheduler preemption.  Medians still admit systematic drift (later
   measurements run on a larger heap); minima don't. *)
let min_time ?(repeats = 5) f =
  List.fold_left min infinity (List.init repeats (fun _ -> snd (wall f)))

let area_um2 obj = float_of_int (Lobj.bbox_area obj) /. 1.0e6

let drc_count env obj =
  List.length
    (Amg_drc.Checker.run
       ~checks:[ Amg_drc.Checker.Widths; Spacings; Enclosures; Extensions ]
       ~tech:(Env.tech env) obj)

(* ------------------------------------------------------------------ *)
(* FIG1: the latch-up cover check and its 16 overlap cases.            *)
(* ------------------------------------------------------------------ *)

let fig1 env =
  section "FIG1  latch-up rule: 16-case cover check (paper Fig. 1)";
  let solid = Rect.of_size ~x:0 ~y:0 ~w:(um 100.) ~h:(um 100.) in
  let spans = [ (-20., 120.); (-20., 60.); (40., 120.); (30., 70.) ] in
  let cases = ref 0 and ok = ref 0 in
  List.iter
    (fun (x0, x1) ->
      List.iter
        (fun (y0, y1) ->
          incr cases;
          let cover = Rect.make ~x0:(um x0) ~y0:(um y0) ~x1:(um x1) ~y1:(um y1) in
          let res = Rect.subtract solid cover in
          let inter =
            match Rect.inter solid cover with Some i -> Rect.area i | None -> 0
          in
          let sum = List.fold_left (fun a r -> a + Rect.area r) 0 res in
          if sum = Rect.area solid - inter then incr ok)
        spans)
    spans;
  Fmt.pr "overlap cases exercised: %d/16, exact residue in all: %b@." !cases (!ok = 16);
  (* Scaling: one long active strip covered by the union of n taps. *)
  Fmt.pr "@.%6s %10s %12s@." "taps" "covered" "time/ms";
  List.iter
    (fun n ->
      let o = Lobj.create "strip" in
      let len = um (float_of_int (n * 60)) in
      let _ =
        Lobj.add_shape o ~layer:"ndiff" ~rect:(Rect.of_size ~x:0 ~y:0 ~w:len ~h:(um 4.)) ()
      in
      for i = 0 to n - 1 do
        ignore
          (Lobj.add_shape o ~layer:"subtap"
             ~rect:(Rect.of_size ~x:(um (float_of_int ((i * 60) + 25))) ~y:(um 6.) ~w:(um 2.) ~h:(um 2.))
             ())
      done;
      let uncovered, dt =
        wall (fun () -> Amg_drc.Latchup.uncovered ~tech:(Env.tech env) o)
      in
      Fmt.pr "%6d %10b %12.3f@." n (uncovered = []) (dt *. 1000.))
    [ 4; 16; 64; 256 ]

(* ------------------------------------------------------------------ *)
(* FIG3: contact-row parameter variants.                               *)
(* ------------------------------------------------------------------ *)

let fig3 env =
  section "FIG3  contact row: omitted parameters take design-rule minima";
  Fmt.pr "%-14s %8s %8s %10s@." "variant" "W/um" "L/um" "contacts";
  List.iter
    (fun (label, w, l) ->
      let o = M.Contact_row.make env ~layer:"poly" ?w ?l () in
      let b = Lobj.bbox_exn o in
      Fmt.pr "%-14s %8.2f %8.2f %10d@." label
        (Units.to_um (Rect.height b))
        (Units.to_um (Rect.width b))
        (List.length (Lobj.shapes_on o "contact")))
    [ ("both omitted", None, None);
      ("W given", Some (um 2.), None);
      ("W and L", Some (um 2.), Some (um 10.)) ];
  Fmt.pr "(paper Fig. 3 shows exactly these three variants)@."

(* ------------------------------------------------------------------ *)
(* FIG5: variable edges.                                               *)
(* ------------------------------------------------------------------ *)

let fig5 env =
  section "FIG5  variable edges: strap insertion with and without shrinking";
  let rules = Env.rules env in
  let scenario variable =
    let main = Lobj.create "main" in
    (* Five alternating rows, the strap must reach the d rows. *)
    for i = 0 to 4 do
      let net = if i mod 2 = 0 then "s" else "d" in
      let sides =
        if variable then
          Amg_layout.Edge.set Amg_layout.Edge.all_fixed Dir.North
            Amg_layout.Edge.Variable
        else Amg_layout.Edge.all_fixed
      in
      ignore
        (Lobj.add_shape main ~layer:"metal1"
           ~rect:(Rect.of_size ~x:(i * um 4.) ~y:0 ~w:(um 2.) ~h:(um 20.))
           ~net ~sides ())
    done;
    let strap = Lobj.create "strap" in
    let _ =
      Lobj.add_shape strap ~layer:"metal1"
        ~rect:(Rect.of_size ~x:0 ~y:0 ~w:(um 18.) ~h:(um 2.))
        ~net:"d" ()
    in
    Successive.compact ~rules ~into:main strap Dir.South;
    area_um2 main
  in
  let fixed = scenario false and variable = scenario true in
  Fmt.pr "strap over 5 rows, fixed edges:    %8.1f um2@." fixed;
  Fmt.pr "strap over 5 rows, variable edges: %8.1f um2@." variable;
  Fmt.pr "area reduction: %.1f%%  (paper: \"a substantial reduction of the layout area\")@."
    (100. *. (fixed -. variable) /. fixed)

(* ------------------------------------------------------------------ *)
(* FIG6/7: the simple MOS differential pair.                           *)
(* ------------------------------------------------------------------ *)

let fig6 env =
  section "FIG6/7  simple MOS differential pair, before/after compaction";
  let w = um 10. and l = um 5. in
  let trans () =
    M.Mosfet.make env ~polarity:M.Mosfet.Pmos ~w ~l ~sd_contacts:`West ~well:false ()
  in
  (* Fig. 6a's "before": the three sub-objects placed side by side at plain
     diffusion spacing, without merging. *)
  let t1 = trans () in
  let d2 = M.Contact_row.make env ~layer:"pdiff" ~w () in
  let tb = Lobj.bbox_exn t1 and rb = Lobj.bbox_exn d2 in
  let sp = um 2. in
  let loose_w = (2 * Rect.width tb) + Rect.width rb + (2 * sp) in
  let loose_h = max (Rect.height tb) (Rect.height rb) in
  let loose = float_of_int (loose_w * loose_h) /. 1.0e6 in
  let dp, dt =
    wall (fun () -> M.Diff_pair.make env ~polarity:M.Mosfet.Pmos ~w ~l ~well:false ())
  in
  Fmt.pr "sub-objects side by side before compaction:  %8.1f um2@." loose;
  Fmt.pr "after successive compaction:                 %8.1f um2 (%.0f%% of loose)@."
    (area_um2 dp)
    (100. *. area_um2 dp /. loose);
  Fmt.pr "generation time: %.1f ms, %d shapes, DRC violations: %d@." (dt *. 1000.)
    (Lobj.shape_count dp) (drc_count env dp);
  (* The same module from the paper's own language source (Fig. 7). *)
  let from_lang =
    Amg_lang.Interp.parse_and_build env Amg_lang.Stdlib.all "DiffPair"
      [ ("W", Amg_lang.Value.Num 10.); ("L", Amg_lang.Value.Num 5.) ]
  in
  Fmt.pr "same module from the Fig. 7 language source: %8.1f um2, DRC violations: %d@."
    (area_um2 from_lang) (drc_count env from_lang)

(* ------------------------------------------------------------------ *)
(* FIG9: the BiCMOS amplifier.                                         *)
(* ------------------------------------------------------------------ *)

let fig9 env =
  section "FIG9  broad-band BiCMOS amplifier";
  let r, dt = wall (fun () -> A.build env) in
  Fmt.pr "generated: %.1f x %.1f um = %.0f um2 in %.2f s (%d shapes)@." r.A.width_um
    r.A.height_um r.A.area_um2 dt
    (Lobj.shape_count r.A.obj);
  Fmt.pr "paper:     %.0f x %.0f um = %.0f um2 (1 um Siemens BiCMOS, larger devices)@."
    A.paper_width_um A.paper_height_um A.paper_area_um2;
  Fmt.pr "area ratio (generated/paper): %.2f@." (r.A.area_um2 /. A.paper_area_um2);
  Fmt.pr "@.per-block areas (paper Fig. 9's blocks):@.";
  List.iter (fun (n, a) -> Fmt.pr "  block %-3s %9.1f um2@." n a) r.A.block_areas;
  let vios = Amg_drc.Checker.run ~tech:(Env.tech env) r.A.obj in
  Fmt.pr "full DRC including latch-up: %d violations@." (List.length vios);
  Fmt.pr "density: %.2f@."
    (Amg_layout.Stats.of_lobj r.A.obj).Amg_layout.Stats.density;
  Fmt.pr "global routing: %d nets routed (%s)@."
    (List.length r.A.routing.Amg_route.Global.routed)
    (String.concat ", " r.A.routing.Amg_route.Global.routed);
  List.iter
    (fun (n, why) -> Fmt.pr "  not routed: %s (%s)@." n why)
    r.A.routing.Amg_route.Global.unrouted;
  (* Layout-versus-schematic: the generated amplifier must contain exactly
     the schematic's devices with merged finger widths. *)
  let extracted = Amg_extract.Devices.extract ~tech:(Env.tech env) r.A.obj in
  let lvs = Amg_extract.Compare.run ~golden:(Amg_amplifier.Schematic.netlist ()) extracted in
  Fmt.pr "%a" Amg_extract.Compare.pp_result lvs;
  (* Physical connectivity audit: every supply and routed net is one
     electrical node. *)
  let conn = Amg_extract.Connectivity.build ~tech:(Env.tech env) r.A.obj in
  let single =
    List.for_all
      (fun net -> Amg_extract.Connectivity.label_node_count conn net = 1)
      ([ "vdd"; "vss" ] @ r.A.routing.Amg_route.Global.routed)
  in
  Fmt.pr "connectivity audit: every supply and routed net is one node: %b@." single

(* ------------------------------------------------------------------ *)
(* APP-OTA: second full application through the same pipeline (§4's    *)
(* "further amplifiers or modules").                                   *)
(* ------------------------------------------------------------------ *)

let app_ota env =
  section "APP-OTA  five-transistor OTA: second application, zero new layout code";
  let module Ota = Amg_amplifier.Ota in
  let r, dt = wall (fun () -> Ota.build env) in
  Fmt.pr "generated: %.1f x %.1f um = %.0f um2 in %.2f s (%d shapes)@."
    r.Ota.width_um r.Ota.height_um r.Ota.area_um2 dt (Lobj.shape_count r.Ota.obj);
  Fmt.pr "partition: %s@."
    (String.concat ", "
       (List.map
          (fun (c : Amg_circuit.Partition.cluster) -> c.Amg_circuit.Partition.cluster_name)
          (Ota.clusters ())));
  let vios = Amg_drc.Checker.run ~tech:(Env.tech env) r.Ota.obj in
  Fmt.pr "full DRC including latch-up: %d violations@." (List.length vios);
  Fmt.pr "global routing: %d nets routed (%s), %d unrouted@."
    (List.length r.Ota.routing.Amg_route.Global.routed)
    (String.concat ", " r.Ota.routing.Amg_route.Global.routed)
    (List.length r.Ota.routing.Amg_route.Global.unrouted);
  let extracted = Amg_extract.Devices.extract ~tech:(Env.tech env) r.Ota.obj in
  let lvs = Amg_extract.Compare.run ~golden:(Ota.netlist ()) extracted in
  Fmt.pr "%a" Amg_extract.Compare.pp_result lvs;
  let conn = Amg_extract.Connectivity.build ~tech:(Env.tech env) r.Ota.obj in
  let single =
    List.for_all
      (fun net -> Amg_extract.Connectivity.label_node_count conn net = 1)
      ([ "vdd"; "vss" ] @ r.Ota.routing.Amg_route.Global.routed)
  in
  Fmt.pr "connectivity audit: every supply and routed net is one node: %b@." single

(* ------------------------------------------------------------------ *)
(* FIG10: module E.                                                    *)
(* ------------------------------------------------------------------ *)

let count_source_lines path fallback =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    String.split_on_char '\n' src
    |> List.filter (fun l -> String.trim l <> "")
    |> List.length
  with Sys_error _ -> fallback

let fig10 env =
  section "FIG10  module E: centroidal cross-coupled pair with dummies";
  let build () =
    M.Common_centroid.make env ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 2.) ()
  in
  let cc = build () in
  let t = median_time build in
  let st = Amg_layout.Stats.of_lobj cc in
  Fmt.pr "generation time: %.1f ms (paper: 5 s on 1996 hardware)@." (t *. 1000.);
  Fmt.pr "shapes: %d, size %.1f um2@." st.Amg_layout.Stats.shape_count
    st.Amg_layout.Stats.bbox_area_um2;
  (match
     ( M.Common_centroid.gate_centroid cc ~net:"inp",
       M.Common_centroid.gate_centroid cc ~net:"inn" )
   with
  | Some a, Some b ->
      Fmt.pr "gate centroid delta: %.4f um (common centroid: 0 by construction)@."
        (Float.abs (a -. b) /. 1000.)
  | _ -> ());
  let m1a, m2a, va = M.Common_centroid.wiring_summary cc ~net:"inp" in
  let m1b, m2b, vb = M.Common_centroid.wiring_summary cc ~net:"inn" in
  Fmt.pr "input wiring inp: m1 %.0f um2, m2 %.0f um2, %d vias@."
    (float_of_int m1a /. 1e6) (float_of_int m2a /. 1e6) va;
  Fmt.pr "input wiring inn: m1 %.0f um2, m2 %.0f um2, %d vias@."
    (float_of_int m1b /. 1e6) (float_of_int m2b /. 1e6) vb;
  Fmt.pr "via counts identical: %b (paper: \"every net has identical crossings\")@."
    (va = vb);
  Fmt.pr "DRC violations: %d@." (drc_count env cc);
  Fmt.pr "module source: %d non-blank lines (paper: ~180 lines)@."
    (count_source_lines "lib/modules/common_centroid.ml" 280);
  (* The capacitor counterpart: common-centroid unit-cap array, with the
     ablation that motivates the symmetric assignment — a naive row-major
     assignment displaces the group centroids. *)
  Fmt.pr "@.unit-capacitor array (4:4 units + dummy ring):@.";
  let delta obj =
    match
      (M.Cap_array.centroid obj ~net:"ca", M.Cap_array.centroid obj ~net:"cb")
    with
    | Some (ax, ay), Some (bx, by) ->
        sqrt (((ax -. bx) ** 2.) +. ((ay -. by) ** 2.)) /. 1000.
    | _ -> nan
  in
  let sym_obj, p =
    M.Cap_array.make env ~unit_ff:20. ~units_a:4 ~units_b:4 ()
  in
  let naive =
    (* First four cells row-major to A — what a loop without the matching
       knowledge would do. *)
    let cells = Array.map Array.copy p.M.Cap_array.cells in
    let k = ref 0 in
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j _ ->
            cells.(i).(j) <- (if !k < 4 then M.Cap_array.A else M.Cap_array.B);
            incr k)
          row)
      cells;
    { p with M.Cap_array.cells }
  in
  let naive_obj, _ =
    M.Cap_array.make env ~unit_ff:20. ~units_a:4 ~units_b:4 ~assignment:naive ()
  in
  Fmt.pr "  symmetric assignment: centroid offset %.3f um, DRC %d@."
    (delta sym_obj) (drc_count env sym_obj);
  Fmt.pr "  naive row-major:      centroid offset %.3f um, DRC %d@."
    (delta naive_obj) (drc_count env naive_obj);
  let caps obj =
    (Amg_extract.Devices.extract ~tech:(Env.tech env) obj).Amg_extract.Devices.capacitors
  in
  List.iter
    (fun (a, b, ff) -> Fmt.pr "  extracted C(%s,%s) = %.1f fF@." a b ff)
    (caps sym_obj)

(* ------------------------------------------------------------------ *)
(* CLAIM-CODE: code-length comparison.                                 *)
(* ------------------------------------------------------------------ *)

let claim_code _env =
  section "CLAIM-CODE  procedural language vs coordinate-level generators";
  let dsl_lines src =
    String.split_on_char '\n' src
    |> List.filter (fun l -> String.trim l <> "")
    |> List.length
  in
  let row_dsl = dsl_lines Amg_lang.Stdlib.contact_row in
  let dp_dsl = dsl_lines Amg_lang.Stdlib.all in
  let row_base = M.Baseline.contact_row_loc () in
  let dp_base = M.Baseline.diff_pair_loc () in
  Fmt.pr "%-14s %14s %18s %8s@." "module" "language/LoC" "coordinates/LoC" "ratio";
  Fmt.pr "%-14s %14d %18d %8.1f@." "ContactRow" row_dsl row_base
    (float_of_int row_base /. float_of_int row_dsl);
  Fmt.pr "%-14s %14d %18d %8.1f@." "DiffPair" dp_dsl dp_base
    (float_of_int dp_base /. float_of_int dp_dsl);
  Fmt.pr "(paper: coordinate methods \"needed a multiple of this source code\")@."

(* ------------------------------------------------------------------ *)
(* CLAIM-SPEED: successive vs edge-graph compaction.                   *)
(* ------------------------------------------------------------------ *)

let claim_speed env =
  section "CLAIM-SPEED  successive compaction vs full constraint graph";
  let rules = Env.rules env in
  Fmt.pr "%6s %10s %14s %14s %10s@." "rows" "shapes" "successive/ms" "edge-graph/ms" "arcs";
  List.iter
    (fun n ->
      (* n contact rows packed west-to-east. *)
      let build_successive () =
        let main = Lobj.create "pack" in
        for i = 0 to n - 1 do
          let row =
            M.Contact_row.make env ~layer:"metal1"
              ~net:("n" ^ string_of_int i) ~w:(um 8.) ()
          in
          Build.compact env ~into:main row Dir.West
        done;
        main
      in
      let main, t_succ = wall build_successive in
      (* The baseline compacts the same shapes all at once from a loose
         placement. *)
      let loose = Lobj.create "loose" in
      List.iter
        (fun (s : Shape.t) ->
          ignore
            (Lobj.add_shape loose ~layer:s.Shape.layer
               ~rect:(Rect.translate s.Shape.rect ~dx:(um 40.) ~dy:0)
               ?net:s.Shape.net ()))
        (Lobj.shapes main);
      let arcs = ref 0 in
      let t_graph =
        snd (wall (fun () -> arcs := Edge_graph.compact_xy ~rules loose))
      in
      (* Incremental cost: adding one more object is a single pairwise scan
         for the successive method, but a full graph rebuild for the
         baseline ("this speeds up the compaction time", §2.3). *)
      let extra =
        M.Contact_row.make env ~layer:"metal1" ~net:"extra" ~w:(um 8.) ()
      in
      let t_incr =
        snd (wall (fun () -> Build.compact env ~into:main extra Dir.West))
      in
      let t_rebuild = snd (wall (fun () -> ignore (Edge_graph.compact_xy ~rules loose))) in
      Fmt.pr "%6d %10d %14.2f %14.2f %10d   +1 object: %.2f ms vs %.2f ms rebuild@."
        n (Lobj.shape_count main) (t_succ *. 1000.) (t_graph *. 1000.) !arcs
        (t_incr *. 1000.) (t_rebuild *. 1000.))
    [ 8; 16; 32; 64 ];
  Fmt.pr "(the successive method touches only the new object's pairs; the@.";
  Fmt.pr " general method rebuilds its quadratic arc set on every change)@."

(* ------------------------------------------------------------------ *)
(* CLAIM-OPT: compaction-order optimization and variant selection.     *)
(* ------------------------------------------------------------------ *)

let claim_opt env =
  section "CLAIM-OPT  optimization mode: order permutations + rating";
  let mk name w h net =
    let o = Lobj.create name in
    let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w ~h) ~net () in
    o
  in
  let steps =
    [
      Optimize.step (mk "wide" (um 12.) (um 2.) "a") Dir.South;
      Optimize.step (mk "tall" (um 2.) (um 8.) "b") Dir.West;
      Optimize.step (mk "mid" (um 6.) (um 2.) "c") Dir.South;
      Optimize.step (mk "small" (um 2.) (um 2.) "d") Dir.West;
    ]
  in
  let results, dt = wall (fun () -> Optimize.evaluate_orders env ~name:"opt" steps) in
  let ratings = List.map (fun (_, r, _) -> r) results in
  let best = List.fold_left min infinity ratings in
  let worst = List.fold_left max 0. ratings in
  let default = match ratings with r :: _ -> r | [] -> nan in
  Fmt.pr "orders evaluated: %d (4! = 24) in %.1f ms@." (List.length results) (dt *. 1000.);
  Fmt.pr "bounding-box area: best %.1f um2, default order %.1f um2, worst %.1f um2@."
    best default worst;
  Fmt.pr "best/worst improvement: %.1f%%@." (100. *. (worst -. best) /. worst);
  (* Topology variants selected by the rating function (§2.4): an
     inter-digitated device with 2 or 8 fingers; the aspect-ratio target
     picks the variant. *)
  let variant fingers () =
    M.Interdigitated.make env
      ~name:(Printf.sprintf "fingers%d" fingers)
      ~polarity:M.Mosfet.Nmos
      ~w:(um (64. /. float_of_int fingers))
      ~l:(um 2.) ~fingers ~well:false ()
  in
  let v =
    Amg_core.Variants.alt
      [ Amg_core.Variants.delay (variant 2); Amg_core.Variants.delay (variant 8) ]
  in
  let pick weights =
    match Amg_core.Variants.best ~rate:(Rating.rate env weights) v with
    | Some (o, _) -> Lobj.name o
    | None -> "none"
  in
  let square = Rating.with_aspect Rating.area_only 1.0 in
  let flat = Rating.with_aspect Rating.area_only 6.0 in
  Fmt.pr "@.topology variants of a W=64um device:@.";
  Fmt.pr "  rating for square aspect picks: %s@." (pick square);
  Fmt.pr "  rating for flat aspect picks:   %s@." (pick flat);
  (* Ablation: branch-and-bound explores a fraction of the order tree while
     returning the same optimum. *)
  let mk2 name w h net =
    let o = Lobj.create name in
    let _ = Lobj.add_shape o ~layer:"metal1" ~rect:(Rect.of_size ~x:0 ~y:0 ~w ~h) ~net () in
    o
  in
  let steps6 =
    List.mapi
      (fun i (w, h, d) ->
        Optimize.step (mk2 (Printf.sprintf "s%d" i) w h (Printf.sprintf "n%d" i)) d)
      [
        (um 12., um 2., Dir.South); (um 2., um 8., Dir.West);
        (um 6., um 2., Dir.South); (um 2., um 2., Dir.West);
        (um 8., um 2., Dir.South); (um 2., um 4., Dir.West);
      ]
  in
  let (_, r_ex, _), t_ex = wall (fun () -> Optimize.optimize env ~name:"bb" steps6) in
  let (_, r_bb, _, nodes), t_bb =
    wall (fun () -> Optimize.optimize_bb env ~name:"bb" steps6)
  in
  Fmt.pr "@.ablation, 6 objects (720 orders):@.";
  Fmt.pr "  exhaustive:   best %.1f in %.1f ms@." r_ex (t_ex *. 1000.);
  Fmt.pr "  branch&bound: best %.1f in %.1f ms, %d nodes explored (full tree: 1957)@."
    r_bb (t_bb *. 1000.) nodes;
  let (_, r_lo, _, evals), t_lo =
    wall (fun () -> Optimize.optimize_local env ~name:"bb" steps6)
  in
  Fmt.pr "  local search: best %.1f in %.1f ms, %d evaluations@." r_lo
    (t_lo *. 1000.) evals;
  (* Beyond exhaustive reach: 9 objects = 362 880 orders.  Branch-and-bound
     stays exact; local search trades the guarantee for a tiny evaluation
     count. *)
  let steps9 =
    List.mapi
      (fun i (w, h, d) ->
        Optimize.step (mk2 (Printf.sprintf "t%d" i) w h (Printf.sprintf "m%d" i)) d)
      [
        (um 12., um 2., Dir.South); (um 2., um 8., Dir.West);
        (um 6., um 2., Dir.South); (um 2., um 2., Dir.West);
        (um 8., um 2., Dir.South); (um 2., um 4., Dir.West);
        (um 4., um 4., Dir.South); (um 2., um 6., Dir.West);
        (um 10., um 2., Dir.South);
      ]
  in
  let (_, r_bb9, _, nodes9), t_bb9 =
    wall (fun () -> Optimize.optimize_bb env ~name:"big" steps9)
  in
  let (_, r_lo9, _, evals9), t_lo9 =
    wall (fun () -> Optimize.optimize_local env ~name:"big" steps9)
  in
  Fmt.pr "@.scaling, 9 objects (362 880 orders):@.";
  Fmt.pr "  branch&bound: best %.1f in %.0f ms, %d nodes@." r_bb9
    (t_bb9 *. 1000.) nodes9;
  Fmt.pr "  local search: best %.1f in %.0f ms, %d evaluations (gap to exact: %.1f%%)@."
    r_lo9 (t_lo9 *. 1000.) evals9
    (100. *. (r_lo9 -. r_bb9) /. r_bb9)

(* ------------------------------------------------------------------ *)
(* TECH-INDEP: the same sources in a second technology.                *)
(* ------------------------------------------------------------------ *)

let tech_indep () =
  section "TECH-INDEP  unchanged module sources in two technologies (§4)";
  let envs =
    [ ("bicmos-1u", Env.bicmos ()); ("cmos-0.8u", Env.create (Amg_tech.Cmos08.get ())) ]
  in
  let builders =
    [
      ("contact_row", fun env -> M.Contact_row.make env ~layer:"poly" ~l:(um 8.) ());
      ("diff_pair", fun env -> M.Diff_pair.make env ~polarity:M.Mosfet.Pmos ~w:(um 8.) ~l:(um 4.) ());
      ("interdigitated",
       fun env ->
         M.Interdigitated.make env ~polarity:M.Mosfet.Nmos ~w:(um 8.) ~l:(um 1.6) ~fingers:4 ());
      ("mirror_symmetric",
       fun env -> M.Current_mirror.symmetric env ~polarity:M.Mosfet.Nmos ~w:(um 6.4) ~l:(um 1.6) ());
      ("module_e",
       fun env -> M.Common_centroid.make env ~polarity:M.Mosfet.Pmos ~w:(um 8.) ~l:(um 1.6) ());
      ("resistor_pair",
       fun env -> fst (M.Resistor_pair.make env ~squares:40. ()));
      ("stacked",
       fun env -> M.Stacked.series env ~polarity:M.Mosfet.Nmos ~w:(um 6.4) ~l:(um 1.6) ~stages:3 ());
    ]
  in
  Fmt.pr "%-18s" "module";
  List.iter (fun (n, _) -> Fmt.pr " %14s" (n ^ "/um2")) envs;
  Fmt.pr " %10s@." "violations";
  List.iter
    (fun (name, build) ->
      Fmt.pr "%-18s" name;
      let vio_total = ref 0 in
      List.iter
        (fun (_, env) ->
          let obj = build env in
          vio_total := !vio_total + drc_count env obj;
          Fmt.pr " %14.1f" (area_um2 obj))
        envs;
      Fmt.pr " %10d@." !vio_total)
    builders;
  Fmt.pr "(identical sources; all design-rule values come from the deck)@."

(* ------------------------------------------------------------------ *)
(* FLOORPLAN-ABL: exact slicing floorplan vs the scripted row stack,    *)
(* on the amplifier's real block dimensions.                            *)
(* ------------------------------------------------------------------ *)

let floorplan_ablation env =
  section "FLOORPLAN-ABL  slicing optimum vs the scripted three-row stack";
  let netlist = Amg_amplifier.Schematic.netlist () in
  let clusters = Amg_amplifier.Schematic.clusters () in
  let blocks =
    List.map
      (fun (c : Amg_circuit.Partition.cluster) ->
        let b = Amg_amplifier.Blocks.generate env netlist c in
        let bb = Lobj.bbox_exn b in
        Amg_core.Floorplan.block ~name:c.Amg_circuit.Partition.cluster_name
          ~w:(Rect.width bb) ~h:(Rect.height bb))
      clusters
  in
  let spacing = um 8. in
  let rows3 =
    (* The hand floorplan's grouping (Amplifier.build): C/MT/A on top,
       E/CC in the middle, B/D/RZ/F at the bottom. *)
    let by prefix =
      List.filter
        (fun (b : Amg_core.Floorplan.block) ->
          List.exists
            (fun p ->
              String.length b.Amg_core.Floorplan.fp_name >= String.length p
              && String.sub b.Amg_core.Floorplan.fp_name 0 (String.length p) = p)
            prefix)
        blocks
    in
    [ by [ "mirror"; "single_MD"; "passive_RZ"; "bjt" ];
      by [ "pair"; "passive_CC" ];
      by [ "sources"; "single_MT"; "cascode" ] ]
  in
  let rows = Amg_core.Floorplan.rows_area ~spacing rows3 in
  let (opt, dt) = wall (fun () -> Amg_core.Floorplan.optimize ~spacing blocks) in
  let sum =
    List.fold_left
      (fun a (b : Amg_core.Floorplan.block) ->
        a + (b.Amg_core.Floorplan.fp_w * b.Amg_core.Floorplan.fp_h))
      0 blocks
  in
  Fmt.pr "blocks: %d, total block area %.0f um2@." (List.length blocks)
    (float_of_int sum /. 1e6);
  Fmt.pr "three-row stack (the script's plan): %.0f um2@."
    (float_of_int rows /. 1e6);
  Fmt.pr "optimal slicing floorplan:           %.0f um2 (%.1f%% smaller, %.0f ms)@."
    (float_of_int opt.Amg_core.Floorplan.area /. 1e6)
    (100.
    *. (float_of_int rows -. float_of_int opt.Amg_core.Floorplan.area)
    /. float_of_int rows)
    (dt *. 1000.);
  Fmt.pr "(the row stack buys straight routing channels; the slicing plan@.";
  Fmt.pr " is the pure-packing lower bound an automated placer could reach)@."

(* ------------------------------------------------------------------ *)
(* ROUTE-ABL: one-track-per-net (the global comb router's policy) vs   *)
(* left-edge track sharing vs doglegs, on random channels.             *)
(* ------------------------------------------------------------------ *)

let route_ablation () =
  section "ROUTE-ABL  channel tracks: per-net vs left-edge vs doglegs";
  (* Deterministic pseudo-random pin sets. *)
  let state = ref 123 in
  let rand bound =
    state := ((!state * 1664525) + 1013904223) land 0x3FFFFFFF;
    !state mod bound
  in
  Fmt.pr "%8s %8s %10s %10s %10s %10s@." "pins" "nets" "density" "per-net"
    "left-edge" "doglegs";
  List.iter
    (fun (npins, nnets) ->
      let spec =
        let pin used =
          let rec fresh () =
            let x = rand 40 * um 2. in
            if List.mem x !used then fresh ()
            else begin
              used := x :: !used;
              x
            end
          in
          (fresh (), Printf.sprintf "n%d" (rand nnets))
        in
        let ut = ref [] and ub = ref [] in
        {
          Amg_route.Channel.top = List.init npins (fun _ -> pin ut);
          bottom = List.init npins (fun _ -> pin ub);
        }
      in
      let per_net = List.length (Amg_route.Channel.nets_of spec) in
      let plain =
        match Amg_route.Channel.assign spec with
        | _, n -> string_of_int n
        | exception Amg_robust.Diag.Fail _ -> "cyclic"
      in
      let dogleg =
        match Amg_route.Channel.assign_dogleg spec with
        | _, _, n -> string_of_int n
        | exception Amg_robust.Diag.Fail _ -> "cyclic"
      in
      Fmt.pr "%8d %8d %10d %10d %10s %10s@." (2 * npins) per_net
        (Amg_route.Channel.density spec) per_net plain dogleg)
    [ (6, 4); (10, 6); (14, 8); (18, 10) ];
  Fmt.pr "(per-net is what the block-level comb router uses; the detailed@.";
  Fmt.pr " channel router packs disjoint intervals onto shared tracks)@."

(* ------------------------------------------------------------------ *)
(* COMPACT-SCALING: compaction and order optimization vs object count, *)
(* the workload the indexed shape store is sized for.  Medians go to    *)
(* BENCH_compact.json so runs are diffable.                             *)
(* ------------------------------------------------------------------ *)

(* Deterministic workload: n contact rows of cycling widths, alternating
   compaction directions, so the main structure grows on both axes. *)
let compact_steps env n =
  List.init n (fun i ->
      let w = um (float_of_int (20 + (i mod 4) * 12)) in
      let row =
        M.Contact_row.make env ~layer:"metal1"
          ~net:(Printf.sprintf "n%d" i) ~w ()
      in
      Optimize.step row (if i mod 2 = 0 then Dir.South else Dir.West))

(* Past exhaustive reach the bb search runs under a deterministic eval
   cap (a per-sub-search node quota), so the n=8 and n=12 rows report a
   real best-so-far instead of being skipped. *)
let bb_node_cap n = if n <= 6 then None else Some (500 * n)

(* Returns its result rows; [write_bench_json] merges them with the
   parallel-scaling rows into one BENCH_compact.json.

   Methodology: [*_cold_s] is the first run at that n — the prefix cache
   holds nothing for these steps yet, so it measures a from-scratch
   search; [*_s] is the median of 3 further runs sharing the cache, the
   steady state of a generator that re-optimizes the same module.  Both
   return byte-identical results (the cache only changes time), and
   [apply] never touches the cache, so [apply_s] stays a raw compaction
   measurement. *)
let compact_scaling env =
  section "COMPACT-SCALING  apply / optimize_bb / optimize_local vs n";
  (* Settle the heap left behind by the preceding sections so the medians
     compare across runs (and against a standalone build of this section). *)
  Gc.compact ();
  Fmt.pr "%4s %10s %11s %11s %8s %8s %22s@." "n" "apply/ms" "localC/ms"
    "localW/ms" "rating" "evals" "bb cold/warm";
  let rows =
    List.map
      (fun n ->
        let steps = compact_steps env n in
        let t_apply =
          median_time ~repeats:5 (fun () ->
              ignore (Optimize.apply env ~name:"pack" steps))
        in
        let (_, r_local, _, evals), t_local_cold =
          wall (fun () -> Optimize.optimize_local env ~name:"pack" steps)
        in
        let t_local =
          median_time ~repeats:3 (fun () ->
              ignore (Optimize.optimize_local env ~name:"pack" steps))
        in
        let run_bb () =
          match bb_node_cap n with
          | None -> Optimize.optimize_bb env ~name:"pack" steps
          | Some cap ->
              let budget = Budget.create ~max_evals:cap () in
              Optimize.optimize_bb env ~name:"pack" ~budget steps
        in
        let (_, r_bb, _, nodes), t_bb_cold = wall run_bb in
        let t_bb = median_time ~repeats:3 (fun () -> ignore (run_bb ())) in
        let bb = (t_bb_cold, t_bb, r_bb, nodes, bb_node_cap n <> None) in
        Fmt.pr "%4d %10.2f %11.2f %11.2f %8.1f %8d %10.1f/%.1f ms%s@." n
          (t_apply *. 1000.)
          (t_local_cold *. 1000.)
          (t_local *. 1000.) r_local evals (t_bb_cold *. 1000.)
          (t_bb *. 1000.)
          (if bb_node_cap n <> None then " (capped)" else "");
        (* One instrumented (untimed) build per n: the work counters are
           deterministic, so they diff cleanly across runs — unlike wall
           times.  Captured after the timing loops so the probes' cost
           never lands in the medians. *)
        let counters =
          Amg_obs.Obs.enable ();
          ignore (Optimize.apply env ~name:"pack" steps);
          Amg_obs.Obs.disable ();
          let c = Amg_obs.Obs.counter in
          let r =
            [
              ("pairs_considered", c "compact.pairs_considered");
              ("limits", c "compact.limits");
              ("merge_limits", c "compact.merge_limits");
              ("placements", c "compact.placements");
              ("same_potential_merges", c "compact.same_potential_merges");
              ("var_edge_shrinks", c "compact.var_edge_shrinks");
              ("sindex_queries", c "sindex.queries");
              ("sindex_scanned", c "sindex.scanned");
              ("sindex_hits", c "sindex.hits");
            ]
          in
          Amg_obs.Obs.reset ();
          r
        in
        (n, t_apply, t_local_cold, t_local, r_local, evals, bb, counters))
      [ 4; 6; 8; 12 ]
  in
  rows

(* ------------------------------------------------------------------ *)
(* PARALLEL-SCALING: optimize_local with a domain pool, sequential vs  *)
(* 2 and 4 domains.  The determinism contract makes every row directly *)
(* comparable: identical rating, order and evaluation count for every  *)
(* domain count — only the wall time may differ.                       *)
(* ------------------------------------------------------------------ *)

let parallel_scaling env =
  section "PARALLEL-SCALING  optimize_local, sequential vs N domains";
  Gc.compact ();
  Fmt.pr "(host offers %d recommended domain(s); speedups need real cores)@."
    (Amg_parallel.Pool.recommended ());
  Fmt.pr
    "(requested sizes beyond that are clamped by the pool: oversubscribed \
     domains add only GC-sync and scheduling cost, never compute — rows \
     measure the clamped pools, results are identical either way)@.";
  Fmt.pr "%4s %8s %12s %10s %8s %8s %10s@." "n" "domains" "local/ms"
    "speedup" "rating" "evals" "same-seq";
  let violations = ref 0 in
  let rows =
  List.concat_map
    (fun n ->
      let steps = compact_steps env n in
      let _, r_seq, o_seq, evals_seq =
        Optimize.optimize_local env ~name:"pack" ~domains:1 steps
      in
      let names o = List.map (fun s -> Lobj.name s.Optimize.obj) o in
      (* The searches share the process prefix cache, whose admission
         hysteresis keeps deepening entries over the first few repeats —
         left uncontrolled, later domain counts measure a warmer cache
         than sequential did, and the speedup column reports cache
         trajectory, not scheduling.  Two untimed passes saturate
         admission before anything is timed; every timing then compacts
         the heap first (heap growth drifts later measurements) and takes
         min-of-5 (the repeats compute identical results, so the fastest
         observation is the least noise-polluted). *)
      ignore (Optimize.optimize_local env ~name:"pack" ~domains:1 steps);
      ignore (Optimize.optimize_local env ~name:"pack" ~domains:1 steps);
      let measure d =
        Gc.compact ();
        min_time ~repeats:5 (fun () ->
            ignore (Optimize.optimize_local env ~name:"pack" ~domains:d steps))
      in
      let t_seq = measure 1 in
      List.map
        (fun d ->
          let t =
            if d = 1 then t_seq
            else begin
              (* A pool wider than one must never lose to the sequential
                 run on these small searches — the spin-then-park worker
                 keeps the per-job wakeup off the critical path.  One
                 re-measure rejects scheduler noise before flagging. *)
              let t = measure d in
              if t_seq /. t < 0.95 then Float.min t (measure d) else t
            end
          in
          let _, r, o, evals =
            Optimize.optimize_local env ~name:"pack" ~domains:d steps
          in
          let same =
            Float.equal r r_seq && names o = names o_seq && evals = evals_seq
          in
          (* overhead_x = t / t_seq: how much slower than sequential this
             domain count runs (1.0 = parity; the speedup's reciprocal,
             kept explicitly so scheduling regressions are visible as a
             number that should stay near or below 1). *)
          Fmt.pr "%4d %8d %12.2f %10.2f %8.1f %8d %10b@." n d (t *. 1000.)
            (t_seq /. t) r evals same;
          if d > 1 && t_seq /. t < 0.95 then begin
            incr violations;
            Fmt.pr "  FAIL n=%d domains=%d slower than sequential (speedup %.2f < 0.95)@."
              n d (t_seq /. t)
          end;
          (n, d, t, t_seq /. t, t /. t_seq, r, evals, same))
        [ 1; 2; 4 ])
    [ 8; 12 ]
  in
  if !violations > 0 then begin
    Fmt.pr "parallel-scaling: %d row(s) slower than sequential@." !violations;
    exit 1
  end;
  rows

(* The JSON schema is fixed: every row carries the same keys in the same
   order, and timings are rounded to 0.1 ms, so diffs between runs touch
   only the digits that actually moved.  [*_cold_s] is the first
   (cache-cold) run, [*_s] the median of 3 cache-warm repeats — see
   [compact_scaling]; [bb_capped] marks rows searched under the
   deterministic node cap.  The per-row "counters" object holds the
   deterministic work counters from one instrumented cache-free build;
   the top-level "prefix_cache" object is this process's cumulative cache
   traffic (machine-dependent in detail, but hits must be far from 0). *)
let write_bench_json compact_rows parallel_rows =
  let oc = open_out "BENCH_compact.json" in
  let bb_json (t_cold, t, r, nodes, capped) =
    Printf.sprintf
      "\"bb_cold_s\":%.4f,\"bb_s\":%.4f,\"bb_rating\":%.4f,\"bb_nodes\":%d,\"bb_capped\":%b"
      t_cold t r nodes capped
  in
  let counters_json cs =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v) cs)
  in
  let cs = Pcache.stats (Pcache.default ()) in
  let bytes_per_entry =
    if cs.Pcache.entries = 0 then 0
    else cs.Pcache.bytes / cs.Pcache.entries
  in
  (* Per-depth rows: only buckets with any traffic, so the schema stays
     stable for a given workload without a dozen all-zero lines. *)
  let per_depth_json =
    String.concat ","
      (List.filter_map
         (fun (d : Pcache.depth_stats) ->
           if
             d.Pcache.d_hits = 0 && d.Pcache.d_misses = 0
             && d.Pcache.d_evictions = 0 && d.Pcache.d_entries = 0
           then None
           else
             Some
               (Printf.sprintf
                  "{\"depth\":%d,\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"entries\":%d,\"bytes\":%d}"
                  d.Pcache.d_depth d.Pcache.d_hits d.Pcache.d_misses
                  d.Pcache.d_evictions d.Pcache.d_entries d.Pcache.d_bytes))
         cs.Pcache.per_depth)
  in
  Printf.fprintf oc
    "{\n  \"workload\": \"contact rows, w=20+(i mod 4)*12 um, S/W alternating\",\n  \"times\": \"cold = first run, warm = median of 3 repeats sharing the prefix cache; wall seconds, rounded to 0.1 ms\",\n  \"host_recommended_domains\": %d,\n  \"parallel_note\": \"requested domains are clamped to the recommended count (oversubscription adds cost, never compute); overhead_x = t / t_seq\",\n  \"prefix_cache\": {\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"admitted\":%d,\"rejected\":%d,\"entries\":%d,\"bytes\":%d,\"bytes_per_entry\":%d,\n    \"per_depth\":[%s]},\n  \"rows\": [\n%s\n  ],\n  \"parallel_scaling\": [\n%s\n  ]\n}\n"
    (Amg_parallel.Pool.recommended ())
    cs.Pcache.hits cs.Pcache.misses cs.Pcache.evictions cs.Pcache.admitted
    cs.Pcache.rejected cs.Pcache.entries cs.Pcache.bytes bytes_per_entry
    per_depth_json
    (String.concat ",\n"
       (List.map
          (fun (n, ta, tlc, tl, r, evals, bb, counters) ->
            Printf.sprintf
              "    {\"n\":%d,\"apply_s\":%.4f,\"local_cold_s\":%.4f,\"local_s\":%.4f,\"local_rating\":%.4f,\"local_evals\":%d,%s,\"counters\":{%s}}"
              n ta tlc tl r evals (bb_json bb) (counters_json counters))
          compact_rows))
    (String.concat ",\n"
       (List.map
          (fun (n, d, t, speedup, overhead, r, evals, same) ->
            Printf.sprintf
              "    {\"n\":%d,\"domains\":%d,\"local_s\":%.4f,\"speedup\":%.3f,\"overhead_x\":%.3f,\"local_rating\":%.4f,\"local_evals\":%d,\"same_as_seq\":%b}"
              n d t speedup overhead r evals same)
          parallel_rows));
  close_out oc;
  Fmt.pr "(timings written to BENCH_compact.json)@."

(* ------------------------------------------------------------------ *)
(* Smoke mode (CI): `bench compact_scaling 4,6` re-runs the optimizer  *)
(* rows for the given n and asserts the ratings match the committed    *)
(* BENCH_compact.json exactly and that the prefix cache actually hits  *)
(* for optimize_local.  Never rewrites the JSON; exits 1 on mismatch.  *)
(* ------------------------------------------------------------------ *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

(* The committed value of "key":<float> at or after [from]; None when the
   key is absent or null.  The JSON is machine-written with a fixed key
   order, so plain substring scanning is reliable here. *)
let float_after s key from =
  match find_sub s (Printf.sprintf "\"%s\":" key) from with
  | None -> None
  | Some i -> (
      let j = i + String.length key + 3 in
      let k = ref j in
      while
        !k < String.length s
        &&
        match s.[!k] with
        | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
        | _ -> false
      do
        incr k
      done;
      if !k = j then None
      else Some (float_of_string (String.sub s j (!k - j))))

let compact_smoke env ns =
  let json =
    let ic = open_in "BENCH_compact.json" in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let failures = ref 0 in
  let check what n expected got =
    (* Compare at the JSON's own 0.1 ms-era rounding: 4 decimals. *)
    let same =
      match expected with
      | None -> false
      | Some e -> Printf.sprintf "%.4f" e = Printf.sprintf "%.4f" got
    in
    if same then Fmt.pr "  ok   n=%d %s = %.4f@." n what got
    else begin
      incr failures;
      Fmt.pr "  FAIL n=%d %s: committed %s, got %.4f@." n what
        (match expected with
        | Some e -> Printf.sprintf "%.4f" e
        | None -> "absent")
        got
    end
  in
  Fmt.pr "bench smoke: compact_scaling n in {%s}@."
    (String.concat "," (List.map string_of_int ns));
  List.iter
    (fun n ->
      let row =
        match find_sub json (Printf.sprintf "{\"n\":%d,\"apply_s\"" n) 0 with
        | Some i -> i
        | None ->
            Fmt.pr "  FAIL no committed row for n=%d@." n;
            incr failures;
            0
      in
      let steps = compact_steps env n in
      let st0 = Pcache.stats (Pcache.default ()) in
      (* Twice: the second run must resume from the first one's prefixes. *)
      let _, r1, _, _ = Optimize.optimize_local env ~name:"pack" steps in
      let st1 = Pcache.stats (Pcache.default ()) in
      let _, r2, _, _ = Optimize.optimize_local env ~name:"pack" steps in
      let st2 = Pcache.stats (Pcache.default ()) in
      let hits = st2.Pcache.hits - st0.Pcache.hits in
      check "local_rating" n (float_after json "local_rating" row) r1;
      if not (Float.equal r1 r2) then begin
        incr failures;
        Fmt.pr "  FAIL n=%d warm rerun rating %.4f <> cold %.4f@." n r2 r1
      end;
      if hits = 0 then begin
        incr failures;
        Fmt.pr "  FAIL n=%d optimize_local never hit the prefix cache@." n
      end
      else Fmt.pr "  ok   n=%d prefix-cache hits %d@." n hits;
      (* Warm hit-rate floor: the second run walks prefixes the first one
         published, so its lookups must overwhelmingly hit.  A rate below
         the floor means the cache is thrashing (eviction storm, admission
         bug, keying change) even though results still agree — exactly the
         regression this smoke job exists to catch. *)
      let warm_hits = st2.Pcache.hits - st1.Pcache.hits in
      let warm_misses = st2.Pcache.misses - st1.Pcache.misses in
      let warm_rate =
        if warm_hits + warm_misses = 0 then 0.
        else float_of_int warm_hits /. float_of_int (warm_hits + warm_misses)
      in
      if warm_rate < 0.9 then begin
        incr failures;
        Fmt.pr "  FAIL n=%d warm hit-rate %.3f < 0.9 (%d hits, %d misses)@." n
          warm_rate warm_hits warm_misses
      end
      else
        Fmt.pr "  ok   n=%d warm hit-rate %.3f (%d hits, %d misses)@." n
          warm_rate warm_hits warm_misses;
      let _, r_bb, _, _ =
        match bb_node_cap n with
        | None -> Optimize.optimize_bb env ~name:"pack" steps
        | Some cap ->
            let budget = Budget.create ~max_evals:cap () in
            Optimize.optimize_bb env ~name:"pack" ~budget steps
      in
      check "bb_rating" n (float_after json "bb_rating" row) r_bb)
    ns;
  if !failures > 0 then begin
    Fmt.pr "bench smoke: %d failure(s)@." !failures;
    exit 1
  end;
  Fmt.pr "bench smoke: all checks passed@."

(* ------------------------------------------------------------------ *)
(* Serving benchmark (daemon): `bench serve [CLIENTS] [SECONDS] [P99]`.*)
(* Phase 1 measures the request latency of the n=12 contact-row pack   *)
(* through an in-process daemon: cold (a fresh tenant per request),    *)
(* warm (an identical repeat — replays the whole-result memo) and      *)
(* search-warm (a budgeted repeat — re-runs the search against the     *)
(* resident prefix cache).  Phase 2 runs CLIENTS closed-loop           *)
(* connections for SECONDS over a warm mix and reports client-side     *)
(* p50/p99 and throughput.  The numbers are spliced into               *)
(* BENCH_compact.json as "serving"; exits 1 when result identity, the  *)
(* warm speedup, the error count or the p99 bound regresses.           *)
(* ------------------------------------------------------------------ *)

(* The n-row pack of compact_scaling, written in the layout language:
   widths cycle W, W+12, W+24, W+36 um and the compaction direction
   alternates SOUTH/WEST — the language has no modulo, so the cycle is
   unrolled here. *)
let serve_source n =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "ENT Pack%d(<W>)\n" n);
  for i = 0 to n - 1 do
    let w =
      match i mod 4 * 12 with
      | 0 -> "W"
      | off -> Printf.sprintf "W + %d" off
    in
    Buffer.add_string b
      (Printf.sprintf
         "  x%d = ContactRow(layer = \"metal1\", W = %s, L = 6, net = \
          \"n%d\")\n"
         i w i);
    Buffer.add_string b
      (Printf.sprintf "  compact(x%d, %s, align = \"MIN\")\n" i
         (if i mod 2 = 0 then "SOUTH" else "WEST"))
  done;
  Buffer.contents b ^ Amg_lang.Stdlib.all

let percentile p xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else a.(min (n - 1) (max 0 (int_of_float (ceil (p *. float_of_int n)) - 1)))

(* Merge the scraped [serve.latency] histograms of op="build" label sets
   (one per status/cache-outcome combination) into one
   {!Amg_obs.Metrics.hsnap}, so the server-side percentiles come from the
   same bucket math the registry uses. *)
let server_build_hist payload =
  let module J = Amg_robust.Diag.Json in
  let nums = function
    | Some (J.Jarr xs) ->
        Some
          (Array.of_list
             (List.map (function J.Jnum f -> f | _ -> nan) xs))
    | _ -> None
  in
  match J.of_string payload with
  | Error _ -> None
  | Ok v -> (
      match J.member "metrics" v with
      | Some (J.Jarr items) -> (
          let parts =
            List.filter_map
              (fun item ->
                match (J.member "name" item, J.member "labels" item) with
                | Some (J.Jstr "serve.latency"), Some labels
                  when J.member "op" labels = Some (J.Jstr "build") -> (
                    match
                      ( nums (J.member "bounds" item),
                        nums (J.member "counts" item),
                        J.member "sum" item )
                    with
                    | Some bounds, Some counts, Some (J.Jnum sum) ->
                        Some (bounds, counts, sum)
                    | _ -> None)
                | _ -> None)
              items
          in
          match parts with
          | [] -> None
          | (bounds0, counts0, _) :: _ ->
              let counts = Array.make (Array.length counts0) 0 in
              let sum = ref 0. in
              List.iter
                (fun (_, cs, s) ->
                  Array.iteri
                    (fun i c -> counts.(i) <- counts.(i) + int_of_float c)
                    cs;
                  sum := !sum +. s)
                parts;
              Some
                {
                  Amg_obs.Metrics.h_bounds = bounds0;
                  h_counts = counts;
                  h_count = Array.fold_left ( + ) 0 counts;
                  h_sum = !sum;
                })
      | _ -> None)

(* Splice (or replace) a machine-written top-level section at the end of
   the committed BENCH_compact.json without disturbing the keys before
   it.  Sections are spliced in a fixed order (serving, then sweep), so
   cutting at the key's first occurrence also discards anything after
   it — re-splicing restores the later sections. *)
let splice_section key value =
  let json =
    let ic = open_in "BENCH_compact.json" in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let base =
    match find_sub json (Printf.sprintf ",\n  \"%s\"" key) 0 with
    | Some i -> String.sub json 0 i
    | None ->
        (* drop the final closing brace *)
        let n = ref (String.length json - 1) in
        while !n > 0 && json.[!n] <> '}' do
          decr n
        done;
        String.sub json 0 !n
  in
  let base =
    let n = ref (String.length base) in
    while !n > 0 && (base.[!n - 1] = '\n' || base.[!n - 1] = ' ') do
      decr n
    done;
    String.sub base 0 !n
  in
  let oc = open_out "BENCH_compact.json" in
  output_string oc
    (base ^ Printf.sprintf ",\n  \"%s\": " key ^ value ^ "\n}\n");
  close_out oc

let splice_serving = splice_section "serving"

let serve_bench nclients seconds p99_bound_ms =
  section
    (Printf.sprintf "serving (daemon): %d clients, %.0f s closed loop"
       nclients seconds);
  let n = 12 in
  let entity = Printf.sprintf "Pack%d" n in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "amgbench.%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "d.sock" in
  let t = Server.start (Server.config ~source:(serve_source n) socket) in
  let failures = ref 0 in
  let ensure ok what =
    if ok then Fmt.pr "  ok   %s@." what
    else begin
      incr failures;
      Fmt.pr "  FAIL %s@." what
    end
  in
  let request ?max_evals ~tenant id =
    Wire.build ~id ~jobs:1 ~optimize:Wire.Local ~format:Wire.Cif ~stats:true
      ~tenant ?max_evals
      ~params:[ ("W", Wire.Pnum 20.) ]
      entity
  in
  let serving =
    Fun.protect
      ~finally:(fun () ->
        Server.stop t;
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
    @@ fun () ->
    let c = Client.connect socket in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let timed req =
      let t0 = Unix.gettimeofday () in
      match Client.roundtrip c req with
      | Error e -> failwith ("bench serve: " ^ e)
      | Ok resp -> (resp, (Unix.gettimeofday () -. t0) *. 1000.)
    in
    (* cold: a fresh tenant (fresh cache scope, fresh memo key) each time *)
    let cold =
      List.init 3 (fun i ->
          let tenant = Printf.sprintf "cold-%d" i in
          timed (request ~tenant tenant))
    in
    let cold_p50 = percentile 0.5 (List.map snd cold) in
    (* Mid-load scrape drill: while a cold build occupies the serialized
       compute section, metrics and health must answer straight from the
       connection thread, never queueing behind the build. *)
    let scrape_ms =
      let builder =
        Thread.create
          (fun () ->
            let c2 = Client.connect socket in
            Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
            ignore
              (Client.roundtrip c2 (request ~tenant:"scrape-cold" "scrape-cold")))
          ()
      in
      Thread.yield ();
      let t0 = Unix.gettimeofday () in
      let h = Client.roundtrip c (Wire.health ()) in
      let m = Client.roundtrip c (Wire.metrics ~json:true ()) in
      let ms = (Unix.gettimeofday () -. t0) *. 1000. in
      Thread.join builder;
      let ok = function
        | Ok (r : Wire.response) -> r.Wire.status = Wire.status_ok
        | Error _ -> false
      in
      ensure (ok h && ok m) "metrics/health answered during a cold build";
      let bound = Float.max 50. (cold_p50 /. 2.) in
      ensure (ms <= bound)
        (Printf.sprintf "mid-load scrape in %.2f ms (bound %.0f ms)" ms bound);
      ms
    in
    let prime = timed (request ~tenant:"warm" "prime") in
    (* identical unbudgeted repeats replay the whole-result memo *)
    let warm =
      List.init 5 (fun i ->
          timed (request ~tenant:"warm" (Printf.sprintf "warm-%d" i)))
    in
    (* budgeted repeats bypass the memo and re-run the search against the
       resident prefix cache *)
    let swarm =
      List.init 3 (fun i ->
          timed
            (request ~max_evals:1_000_000 ~tenant:"warm"
               (Printf.sprintf "swarm-%d" i)))
    in
    let payload (r : Wire.response) = Option.value ~default:"" r.Wire.payload in
    let rating (r : Wire.response) = Option.value ~default:nan r.Wire.rating in
    let all = cold @ (prime :: warm) @ swarm in
    let p0 = payload (fst (List.hd all)) and r0 = rating (fst (List.hd all)) in
    ensure (p0 <> "") "responses carry a CIF payload";
    ensure
      (List.for_all (fun (r, _) -> String.equal (payload r) p0) all)
      "identical CIF bytes across cold/warm/search-warm";
    ensure
      (List.for_all (fun (r, _) -> Float.equal (rating r) r0) all)
      "identical ratings across cold/warm/search-warm";
    ensure
      (List.for_all (fun (r, _) -> r.Wire.status = Wire.status_ok) all)
      "status 0 everywhere";
    let cache_hits (r : Wire.response) =
      match r.Wire.stats with Some s -> s.Wire.cache_hits | None -> 0
    in
    let swarm_hits = List.fold_left (fun a (r, _) -> a + cache_hits r) 0 swarm in
    ensure (swarm_hits > 0)
      (Printf.sprintf "search-warm requests hit the resident prefix cache (%d)"
         swarm_hits);
    let warm_p50 = percentile 0.5 (List.map snd warm) in
    let swarm_p50 = percentile 0.5 (List.map snd swarm) in
    let speedup = cold_p50 /. warm_p50 in
    let sspeedup = cold_p50 /. swarm_p50 in
    Fmt.pr
      "  cold p50 %.1f ms; warm p50 %.2f ms (%.1fx); search-warm p50 %.1f ms \
       (%.1fx)@."
      cold_p50 warm_p50 speedup swarm_p50 sspeedup;
    ensure (speedup >= 5.)
      (Printf.sprintf "warm p50 at least 5x faster than cold (%.1fx)" speedup);
    (* phase 2: a closed loop of pings, warm optimized packs and plain
       DiffPair builds *)
    let lat = Array.make nclients [] in
    let blat = Array.make nclients [] in
    let errors = Array.make nclients 0 in
    let conn_retries = Array.make nclients 0 in
    let stop_at = Unix.gettimeofday () +. seconds in
    let worker i =
      (* a transient connect failure (accept backlog pressure under many
         simultaneous dials) is retried with bounded deterministic
         backoff, and counted rather than hidden *)
      let c =
        Client.connect_retry ~attempts:5 ~seed:(i + 1)
          ~on_retry:(fun _ -> conn_retries.(i) <- conn_retries.(i) + 1)
          socket
      in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let k = ref 0 in
      while Unix.gettimeofday () < stop_at do
        let id = Printf.sprintf "w%d-%d" i !k in
        let is_build = !k mod 3 <> 0 in
        let req =
          match !k mod 3 with
          | 0 -> Wire.ping ~id ()
          | 1 -> request ~tenant:"warm" id
          | _ ->
              Wire.build ~id ~jobs:1 ~format:Wire.Cif
                ~params:[ ("W", Wire.Pnum 10.); ("L", Wire.Pnum 5.) ]
                "DiffPair"
        in
        let t0 = Unix.gettimeofday () in
        (try
           match Client.roundtrip c req with
           | Ok resp when resp.Wire.status = Wire.status_ok ->
               let ms = (Unix.gettimeofday () -. t0) *. 1000. in
               lat.(i) <- ms :: lat.(i);
               if is_build then blat.(i) <- ms :: blat.(i)
           | Ok _ | Error _ -> errors.(i) <- errors.(i) + 1
         with _ -> errors.(i) <- errors.(i) + 1);
        incr k
      done
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init nclients (fun i -> Thread.create worker i) in
    List.iter Thread.join threads;
    let elapsed = Unix.gettimeofday () -. t0 in
    let lats = Array.to_list lat |> List.concat in
    let total = List.length lats in
    let errs = Array.fold_left ( + ) 0 errors in
    let retries = Array.fold_left ( + ) 0 conn_retries in
    let p50 = percentile 0.5 lats and p99 = percentile 0.99 lats in
    let rps = float_of_int total /. elapsed in
    Fmt.pr
      "  loop: %d requests in %.1f s (%.0f rps); p50 %.2f ms, p99 %.2f ms, \
       %d errors, %d connect retries@."
      total elapsed rps p50 p99 errs retries;
    ensure (errs = 0) "no errors in the closed loop";
    ensure (total > 0) "the loop made progress";
    ensure (p99 <= p99_bound_ms)
      (Printf.sprintf "loop p99 %.2f ms within the %.0f ms bound" p99
         p99_bound_ms);
    (* Cross-check: the daemon's own latency histograms (scraped over the
       wire) must tell the same story as the client-side stopwatch.  The
       registry quantile is a bucket upper bound (factor-2 buckets) and
       the client adds wire overhead, so the agreement bound is a
       generous factor, not an equality. *)
    let client_bp50 = percentile 0.5 (Array.to_list blat |> List.concat) in
    let client_bp99 = percentile 0.99 (Array.to_list blat |> List.concat) in
    let server_p50, server_p99 =
      match Client.roundtrip c (Wire.metrics ~json:true ()) with
      | Ok { Wire.payload = Some p; _ } -> (
          match server_build_hist p with
          | Some h ->
              ( Amg_obs.Metrics.quantile h 0.5 *. 1000.,
                Amg_obs.Metrics.quantile h 0.99 *. 1000. )
          | None -> (0., 0.))
      | _ -> (0., 0.)
    in
    Fmt.pr
      "  build latency: server p50 %.2f ms / p99 %.2f ms (scraped); client \
       p50 %.2f ms / p99 %.2f ms@."
      server_p50 server_p99 client_bp50 client_bp99;
    ensure (server_p50 > 0.) "scraped server latency histogram is populated";
    let agree factor a b = a <= b *. factor && b <= a *. factor in
    ensure
      (agree 4. server_p50 client_bp50)
      (Printf.sprintf "server/client build p50 agree (%.2f vs %.2f ms)"
         server_p50 client_bp50);
    ensure
      (agree 8. server_p99 client_bp99)
      (Printf.sprintf "server/client build p99 agree (%.2f vs %.2f ms)"
         server_p99 client_bp99);
    Printf.sprintf
      "{\"clients\":%d,\"seconds\":%.0f,\"n\":%d,\"cold_p50_ms\":%.2f,\"warm_p50_ms\":%.2f,\"warm_speedup_x\":%.1f,\"search_warm_p50_ms\":%.2f,\"search_warm_speedup_x\":%.1f,\"search_warm_cache_hits\":%d,\n    \"loop_requests\":%d,\"loop_errors\":%d,\"conn_retries\":%d,\"throughput_rps\":%.1f,\"loop_p50_ms\":%.2f,\"loop_p99_ms\":%.2f,\n    \"scrape_ms\":%.2f,\"server_build_p50_ms\":%.2f,\"server_build_p99_ms\":%.2f}"
      nclients seconds n cold_p50 warm_p50 speedup swarm_p50 sspeedup
      swarm_hits total errs retries rps p50 p99 scrape_ms server_p50 server_p99
  in
  splice_serving serving;
  Fmt.pr "(serving section spliced into BENCH_compact.json)@.";
  if !failures > 0 then begin
    Fmt.pr "bench serve: %d failure(s)@." !failures;
    exit 1
  end;
  Fmt.pr "bench serve: all checks passed@."

(* ------------------------------------------------------------------ *)
(* Sweep benchmark: `bench sweep [N]`.  One N-instance parameter grid  *)
(* over a two-parameter pack entity, swept five ways: shuffled or the  *)
(* locality walk, prefix cache off or on, and with a result store cold *)
(* then warm.  The determinism contract makes every pass emit the      *)
(* same bytes, so the timings are directly comparable; the section is  *)
(* spliced into BENCH_compact.json as "sweep" and exits 1 when row     *)
(* identity, the store hit count or the warm speedup floor regresses.  *)
(* ------------------------------------------------------------------ *)

(* Like [serve_source], but parameterized on the contact-row length as
   well, so the sweep has a genuine two-axis grid. *)
let sweep_source n =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "ENT SweepPack%d(<W>, <L>)\n" n);
  for i = 0 to n - 1 do
    let w =
      match i mod 4 * 12 with
      | 0 -> "W"
      | off -> Printf.sprintf "W + %d" off
    in
    Buffer.add_string b
      (Printf.sprintf
         "  x%d = ContactRow(layer = \"metal1\", W = %s, L = L, net = \
          \"n%d\")\n"
         i w i);
    Buffer.add_string b
      (Printf.sprintf "  compact(x%d, %s, align = \"MIN\")\n" i
         (if i mod 2 = 0 then "SOUTH" else "WEST"))
  done;
  Buffer.contents b ^ Amg_lang.Stdlib.all

let sweep_bench instances =
  section
    (Printf.sprintf
       "sweep: %d-instance grid, locality/cache/store vs shuffled cache-off"
       instances);
  let env = Env.bicmos () in
  let n = 8 in
  let source = sweep_source n in
  (* Axes sized to the requested instance count: W gets the larger
     factor, L the smaller; both step by one grid unit of their range. *)
  let wn = int_of_float (ceil (sqrt (float_of_int instances))) in
  let ln = (instances + wn - 1) / wn in
  let spec_src =
    Printf.sprintf
      "{ \"entity\": \"SweepPack%d\", \"params\": { \"W\": { \"from\": 20, \
       \"to\": %d, \"step\": 4 }, \"L\": { \"from\": 6, \"to\": %d, \"step\": 1 \
       } }, \"optimize\": \"local\" }"
      n
      (20 + ((wn - 1) * 4))
      (6 + ln - 1)
  in
  let spec = Sweep.parse_spec spec_src in
  let failures = ref 0 in
  let ensure ok what =
    if ok then Fmt.pr "  ok   %s@." what
    else begin
      incr failures;
      Fmt.pr "  FAIL %s@." what
    end
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "amgsweep.%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o700;
  let store_path = Filename.concat dir "store.amg" in
  let run_pass ~label ~shuffle ~cache ~store =
    Gc.compact ();
    let buf = Buffer.create 8192 in
    let on_line l =
      Buffer.add_string buf l;
      Buffer.add_char buf '\n'
    in
    let t0 = Unix.gettimeofday () in
    let res =
      Sweep.run ~domains:2 ~chunk:8 ~shuffle ?cache ?store ~on_line ~env
        ~source spec
    in
    let t = Unix.gettimeofday () -. t0 in
    Fmt.pr "  %-28s %8.1f ms  (%d rows, %d store hits)@." label (t *. 1000.)
      res.Sweep.rows res.Sweep.store_hits;
    (t, res, Buffer.contents buf)
  in
  let result =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.unlink store_path with Unix.Unix_error _ -> ());
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
    @@ fun () ->
    let nocache = Pcache.disabled in
    let t_shuf_off, r0, rows0 =
      run_pass ~label:"shuffled, cache off" ~shuffle:true ~cache:(Some nocache)
        ~store:None
    in
    let t_loc_off, _, rows1 =
      run_pass ~label:"locality, cache off" ~shuffle:false
        ~cache:(Some nocache) ~store:None
    in
    let t_shuf_on, _, rows2 =
      run_pass ~label:"shuffled, cache on" ~shuffle:true ~cache:None
        ~store:None
    in
    let st, diags = Store.open_ store_path in
    List.iter (fun d -> Fmt.epr "%a@." Amg_robust.Diag.pp d) diags;
    let depth_before = (Pcache.stats (Pcache.default ())).Pcache.per_depth in
    let t_loc_cold, r_cold, rows3 =
      run_pass ~label:"locality, cache+store cold" ~shuffle:false ~cache:None
        ~store:(Some st)
    in
    let depth_after = (Pcache.stats (Pcache.default ())).Pcache.per_depth in
    let t_loc_warm, r_warm, rows4 =
      run_pass ~label:"locality, cache+store warm" ~shuffle:false ~cache:None
        ~store:(Some st)
    in
    Store.close st;
    ensure
      (List.for_all (String.equal rows0) [ rows1; rows2; rows3; rows4 ])
      "identical bytes across all five passes";
    ensure (r0.Sweep.failures = 0) "no per-instance failures";
    ensure
      (r_warm.Sweep.store_hits = r_warm.Sweep.rows)
      (Printf.sprintf "warm pass answered every row from the store (%d/%d)"
         r_warm.Sweep.store_hits r_warm.Sweep.rows);
    let speedup = t_shuf_off /. t_loc_warm in
    ensure (speedup >= 3.)
      (Printf.sprintf
         "locality+cache+store sweep at least 3x faster than shuffled \
          cache-off (%.1fx)"
         speedup);
    (* Per-depth hit rates of the store-cold locality pass: the searches
       inside each instance republish and resume their own prefixes. *)
    let depth_rows =
      List.filter_map
        (fun (a : Pcache.depth_stats) ->
          let b =
            List.find_opt
              (fun (b : Pcache.depth_stats) ->
                b.Pcache.d_depth = a.Pcache.d_depth)
              depth_before
          in
          let hits =
            a.Pcache.d_hits
            - (match b with Some b -> b.Pcache.d_hits | None -> 0)
          and misses =
            a.Pcache.d_misses
            - (match b with Some b -> b.Pcache.d_misses | None -> 0)
          in
          if hits = 0 && misses = 0 then None
          else
            Some
              (Printf.sprintf
                 "{\"depth\":%d,\"hits\":%d,\"misses\":%d,\"rate\":%.3f}"
                 a.Pcache.d_depth hits misses
                 (float_of_int hits /. float_of_int (max 1 (hits + misses)))))
        depth_after
    in
    Printf.sprintf
      "{\"instances\":%d,\"entity_rows\":%d,\"domains\":2,\"chunk\":8,\n    \
       \"shuffled_nocache_s\":%.4f,\"locality_nocache_s\":%.4f,\"shuffled_cache_s\":%.4f,\n    \
       \"locality_cache_store_cold_s\":%.4f,\"locality_cache_store_warm_s\":%.4f,\n    \
       \"store_hits_cold\":%d,\"store_hits_warm\":%d,\"warm_speedup_x\":%.1f,\"rows_identical\":%b,\n    \
       \"cold_cache_per_depth\":[%s]}"
      r0.Sweep.rows n t_shuf_off t_loc_off t_shuf_on t_loc_cold t_loc_warm
      r_cold.Sweep.store_hits r_warm.Sweep.store_hits speedup
      (List.for_all (String.equal rows0) [ rows1; rows2; rows3; rows4 ])
      (String.concat "," depth_rows)
  in
  splice_section "sweep" result;
  Fmt.pr "(sweep section spliced into BENCH_compact.json)@.";
  if !failures > 0 then begin
    Fmt.pr "bench sweep: %d failure(s)@." !failures;
    exit 1
  end;
  Fmt.pr "bench sweep: all checks passed@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core kernels.                      *)
(* ------------------------------------------------------------------ *)

let micro env =
  section "micro-benchmarks (Bechamel, ns per run)";
  let open Bechamel in
  let open Toolkit in
  let solids =
    List.init 50 (fun i -> Rect.of_size ~x:(i * um 10.) ~y:0 ~w:(um 8.) ~h:(um 8.))
  in
  let covers =
    List.init 20 (fun i ->
        Rect.of_size ~x:(i * um 25.) ~y:(- um 10.) ~w:(um 30.) ~h:(um 30.))
  in
  let diffpair () =
    ignore (M.Diff_pair.make env ~polarity:M.Mosfet.Pmos ~w:(um 10.) ~l:(um 5.) ~well:false ())
  in
  let contact_row () = ignore (M.Contact_row.make env ~layer:"poly" ~l:(um 10.) ()) in
  let cover () = ignore (Region.residue ~solids ~covers) in
  let tests =
    [
      Test.make ~name:"fig1_latchup_cover" (Staged.stage cover);
      Test.make ~name:"fig3_contact_row" (Staged.stage contact_row);
      Test.make ~name:"fig6_diff_pair" (Staged.stage diffpair);
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"amg" ~fmt:"%s/%s" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name res acc ->
        match Analyze.OLS.estimates res with
        | Some [ est ] -> (name, est) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, ns) -> Fmt.pr "%-28s %12.0f ns/run@." name ns) rows

let () =
  (* The optimizer rows want the whole workload resident: an evicting
     cache churns out exactly the entries the next round resumes from.
     256 MiB is far more than the delta-suffix entries need — kept at the
     seed's budget so the hit/miss trajectory stays comparable. *)
  Pcache.set_default_budget_mb 256;
  (match Array.to_list Sys.argv with
  | _ :: "compact_scaling" :: rest ->
      let ns =
        match rest with
        | [] -> [ 4; 6 ]
        | spec :: _ ->
            List.map int_of_string (String.split_on_char ',' spec)
      in
      compact_smoke (Env.bicmos ()) ns;
      exit 0
  | _ :: "sweep" :: rest ->
      let instances =
        match rest with [] -> 64 | spec :: _ -> int_of_string spec
      in
      sweep_bench instances;
      exit 0
  | _ :: "serve" :: rest ->
      let nclients, seconds, p99 =
        match rest with
        | [] -> (4, 10., 1000.)
        | [ k ] -> (int_of_string k, 10., 1000.)
        | [ k; s ] -> (int_of_string k, float_of_string s, 1000.)
        | k :: s :: p :: _ ->
            (int_of_string k, float_of_string s, float_of_string p)
      in
      serve_bench nclients seconds p99;
      exit 0
  | _ -> ());
  let env = Env.bicmos () in
  Fmt.pr "Analog module generator environment — benchmark harness@.";
  Fmt.pr "technology: %s@." (Amg_tech.Technology.name (Env.tech env));
  fig1 env;
  fig3 env;
  fig5 env;
  fig6 env;
  fig9 env;
  app_ota env;
  fig10 env;
  claim_code env;
  claim_speed env;
  claim_opt env;
  tech_indep ();
  floorplan_ablation env;
  route_ablation ();
  let compact_rows = compact_scaling env in
  let parallel_rows = parallel_scaling env in
  write_bench_json compact_rows parallel_rows;
  sweep_bench 64;
  micro env;
  Fmt.pr "@.done.@."
