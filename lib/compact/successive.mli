(** The successive compactor (§2.3).

    "Complex modules are constructed by compacting either geometric
    primitives or hierarchically built objects to an existing structure …
    the compaction is done successively by involving only one new object in
    each step."  Consequences implemented here:

    - only the moving object is constrained against the existing structure
      (no global edge graph), so each step is a single pairwise scan and the
      designer can predict the result;
    - edges on the same potential are not considered and are merged
      afterwards (auto-connection, Fig. 5a);
    - variable edges that define the minimum distance are moved inward until
      fixed edges define it, with derived geometry (contact arrays) rebuilt
      automatically (Fig. 5b);
    - per-shape [keep_clear] forbids otherwise legal overlaps. *)

type align = [ `Keep | `Center | `Min | `Max ]
(** Cross-axis pre-alignment of the mover relative to the target bounding
    box: keep as generated, centre, align low edges, or align high edges. *)

type limit = {
  bound : int;
  mover : Amg_layout.Shape.t;
  target : Amg_layout.Shape.t;
  rel : Constraints.relation;
}
(** One pairwise constraint on the mover's travel. *)

val collect_limits :
  Amg_tech.Rules.t ->
  ?ignore_layers:string list ->
  Amg_geometry.Dir.t ->
  main:Amg_layout.Lobj.t ->
  Amg_layout.Lobj.t ->
  limit list
(** Every pair limit the main structure imposes on the moving object, in
    (mover, target) insertion order.  Implemented with the per-layer
    spatial index: only candidates within rule range of each mover shape's
    movement slab are examined, but the result is identical to the
    all-pairs scan.  Exposed for the equivalence tests. *)

val delta :
  Amg_tech.Rules.t ->
  ?ignore_layers:string list ->
  Amg_geometry.Dir.t ->
  main:Amg_layout.Lobj.t ->
  Amg_layout.Lobj.t ->
  int
(** Signed translation along the movement axis that places the object as far
    in the direction as the design rules allow (bounding boxes abut when no
    pair constrains the move).  Pure query: mutates nothing. *)

val auto_connect :
  Amg_tech.Rules.t ->
  ?ignore_layers:string list ->
  Amg_geometry.Dir.t ->
  main:Amg_layout.Lobj.t ->
  Amg_layout.Lobj.t ->
  unit
(** Stretch same-layer same-net target shapes up to the placed mover when a
    gap remains along the movement axis and the extension violates no
    spacing rule.  Exposed for tests. *)

val compact :
  rules:Amg_tech.Rules.t ->
  into:Amg_layout.Lobj.t ->
  ?ignore_layers:string list ->
  ?align:align ->
  ?variable_edges:bool ->
  Amg_layout.Lobj.t ->
  Amg_geometry.Dir.t ->
  unit
(** [compact ~rules ~into:main obj d] is the paper's
    [compact(obj, D, layers…)]: optionally pre-align, run the variable-edge
    relaxation (disable with [~variable_edges:false] to reproduce
    Fig. 5a vs 5b), translate the object to its minimum-distance position,
    auto-connect, and absorb it into [main].  When [main] is empty the
    object is copied in unchanged.

    Failure policy: under {!Amg_robust.Policy.Strict} (the default) a
    placement failure escapes as an exception.  Under [Permissive] the
    placement is retried along the opposite direction on a pristine copy,
    and if that also fails the object is skipped (not absorbed) and a
    [compact.placement-skipped] diagnostic is
    {{!Amg_robust.Policy.report} reported} — the layout stays valid, the
    degradation is visible. *)

val pp_explain : Format.formatter -> unit -> unit
(** Render the [compact.place] marks recorded by the observability layer
    (see {!Amg_obs.Obs}) as a per-placement audit table: for every
    compacted object, the binding layer/rule/edge pair — or bbox abutment
    — that set its final position.  Requires instrumentation to have been
    enabled around the build. *)
