module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Interval = Amg_geometry.Interval
module Rules = Amg_tech.Rules
module Shape = Amg_layout.Shape

(* Relation between two shapes as seen by the compactor. *)
type relation =
  | Unconstrained          (* may overlap freely *)
  | Mergeable              (* same potential, same layer: may overlap but not
                              pass through each other *)
  | Separation of int      (* minimum L-inf distance *)
[@@deriving show { with_path = false }, eq]

(* The layer-level part of a pair's classification.  Computing it involves
   rule-table lookups (allocating tuple keys and hashing string pairs), so
   the compactor's scans hoist it out of their inner loops: one [classify]
   per (mover shape, candidate layer), reused across every candidate on
   that layer. *)
type pair_class = { same_layer : bool; ignored : bool; space : int option }

let classify rules ?(ignore_layers = []) la lb =
  {
    same_layer = String.equal la lb;
    ignored = List.mem la ignore_layers;
    space = Rules.space rules la lb;
  }

(* Classify a pair given its layers' [pair_class].  [ignore_layers] (folded
   into [cls.ignored]) is the compaction call's "layers which are not
   relevant during this compaction step" (§2.5): their same-layer spacing
   is waived because the geometries will be merged/connected.  Cross-layer
   rules always hold (they are what stops the mover). *)
let relation_cls cls (a : Shape.t) (b : Shape.t) =
  if cls.same_layer then
    if Shape.same_net a b || cls.ignored then Mergeable
    else
      match cls.space with Some d -> Separation d | None -> Separation 0
  else if
    (* One rectangle fully inside the other on a different layer is an
       intended enclosure (a cut inside its landing shape), not a spacing
       situation. *)
    Rect.contains_rect a.rect b.rect || Rect.contains_rect b.rect a.rect
  then Unconstrained
  else
    (* Cross-layer spacing rules hold regardless of potential: a gate poly
       stripe must not touch even its own net's diffusion row. *)
    match cls.space with
    | Some d -> Separation d
    | None ->
        (* No spacing rule: different layers may overlap (e.g. metal over
           poly) unless one of them asked to be kept clear of overlaps
           ("a special property ... can avoid undesired overlaps", §2.3) —
           the keep-clear does not apply between same-potential shapes,
           whose overlap is a connection. *)
        if (a.keep_clear || b.keep_clear) && not (Shape.same_net a b) then
          Separation 0
        else Unconstrained

let relation rules ?ignore_layers (a : Shape.t) (b : Shape.t) =
  relation_cls (classify rules ?ignore_layers a.Shape.layer b.Shape.layer) a b

(* Does the pair constrain movement along [axis]?  With the L-inf distance
   model, a separation [sep] matters only when the cross-axis projections,
   each inflated by [sep], overlap. *)
let shadows ~axis ~sep (ra : Rect.t) (rb : Rect.t) =
  let cross : Dir.axis = match axis with Dir.Horizontal -> Vertical | Vertical -> Horizontal in
  let ia = Rect.span cross ra and ib = Rect.span cross rb in
  Interval.overlaps (Interval.inflate ia sep) ib

(* Minimal translation [delta] (signed, along [Dir.axis d]) that the moving
   rectangle [a] must respect against stationary [b], paired with the
   relation that produced it, or [None] when the pair does not constrain
   this movement.  The mover travels in direction [d]; the constraint keeps
   it from travelling too far. *)
let pair_limit_cls cls d (a : Shape.t) (b : Shape.t) =
  let axis = Dir.axis d in
  let sign = Dir.sign d in
  match relation_cls cls a b with
  | Unconstrained -> None
  | Mergeable as rel ->
      (* May merge: the mover's trailing edge must not pass b's trailing
         edge, so full overlap is reachable but not pass-through. *)
      if shadows ~axis ~sep:0 a.rect b.rect then
        (* Moving by delta: the mover's trailing edge must not pass b's
           trailing edge; the bound is the same expression for both signs. *)
        let trailing r = Rect.side r (Dir.opposite d) in
        Some (trailing b.rect - trailing a.rect, rel)
      else None
  | Separation sep as rel ->
      if shadows ~axis ~sep a.rect b.rect then
        (* For sign = -1 (moving South/West): a.lo + delta >= b.hi + sep.
           For sign = +1 (moving North/East): a.hi + delta <= b.lo - sep. *)
        let ia = Rect.span axis a.rect and ib = Rect.span axis b.rect in
        Some
          ( (if sign < 0 then ib.Interval.hi + sep - ia.Interval.lo
             else ib.Interval.lo - sep - ia.Interval.hi),
            rel )
      else None

let pair_limit_rel rules ?ignore_layers d (a : Shape.t) b =
  pair_limit_cls (classify rules ?ignore_layers a.Shape.layer b.Shape.layer) d a b

let pair_limit rules ?ignore_layers d a b =
  Option.map fst (pair_limit_rel rules ?ignore_layers d a b)

(* Candidate margin for spatial-index queries on a layer pair: [relation]
   only ever produces [Separation (space a b)], [Separation 0] (keep-clear)
   or [Mergeable] (acts at distance 0), so every pair either of the
   compactor's scans can constrain lies within the pair's spacing rule —
   shapes farther than this on both axes are provably Unconstrained or out
   of shadow and need not be examined. *)
let query_margin rules layer_a layer_b = Rules.space_or_zero rules layer_a layer_b

let margin_cls cls = match cls.space with Some d -> d | None -> 0

(* Combine limits: the mover wants delta as far in direction [d] as
   possible; each limit bounds delta from the [d] side. *)
let tightest d limits =
  let sign = Dir.sign d in
  List.fold_left
    (fun acc l ->
      match acc with
      | None -> Some l
      | Some best -> Some (if sign < 0 then max best l else min best l))
    None limits
