(** Pairwise compaction constraints.

    Distance is measured in the L∞ metric: a separation rule [sep] between
    two shapes is violated iff both their x-gap and y-gap are below [sep].
    Consequently a pair constrains movement along an axis only when the
    cross-axis projections, inflated by [sep], overlap ("shadowing"). *)

type relation =
  | Unconstrained
      (** may overlap freely (different layers without a spacing rule, or
          same potential on different layers, or an ignored layer) *)
  | Mergeable
      (** same potential, same layer: may abut or overlap — "edges on the
          same potential are not considered during compaction, because they
          can be merged" (§2.3) — but may not pass through each other *)
  | Separation of int  (** minimum L∞ distance in nm *)
[@@deriving show, eq]

val relation :
  Amg_tech.Rules.t ->
  ?ignore_layers:string list ->
  Amg_layout.Shape.t ->
  Amg_layout.Shape.t ->
  relation
(** Classify a pair under the given design rules.  [ignore_layers] is the
    compact call's "layers which are not relevant during this compaction
    step": their {e same-layer} spacing is waived (the geometries merge),
    while cross-layer rules always hold.  A rectangle fully containing the
    other on a different layer (cut-in-landing) is unconstrained. *)

type pair_class = { same_layer : bool; ignored : bool; space : int option }
(** The layer-level part of a pair's classification — everything that
    depends only on the two layers and the ignore list, not on the shapes.
    Scans hoist it out of their inner loops so the rule table is consulted
    once per (mover, layer) instead of once per candidate pair. *)

val classify :
  Amg_tech.Rules.t -> ?ignore_layers:string list -> string -> string -> pair_class
(** [classify rules la lb] for a mover on layer [la] against candidates on
    layer [lb].  Order matters for [ignored] ([ignore_layers] is tested
    against the mover's layer, matching {!relation}). *)

val relation_cls :
  pair_class -> Amg_layout.Shape.t -> Amg_layout.Shape.t -> relation
(** {!relation} with the layer-level work precomputed:
    [relation rules a b = relation_cls (classify rules a.layer b.layer) a b]. *)

val margin_cls : pair_class -> int
(** {!query_margin} of an already classified layer pair. *)

val shadows :
  axis:Amg_geometry.Dir.axis ->
  sep:int ->
  Amg_geometry.Rect.t ->
  Amg_geometry.Rect.t ->
  bool

val pair_limit :
  Amg_tech.Rules.t ->
  ?ignore_layers:string list ->
  Amg_geometry.Dir.t ->
  Amg_layout.Shape.t ->
  Amg_layout.Shape.t ->
  int option
(** Signed translation bound that stationary shape [b] imposes on shape [a]
    moving in the given direction, or [None] when the pair does not
    constrain the move. *)

val pair_limit_rel :
  Amg_tech.Rules.t ->
  ?ignore_layers:string list ->
  Amg_geometry.Dir.t ->
  Amg_layout.Shape.t ->
  Amg_layout.Shape.t ->
  (int * relation) option
(** Like {!pair_limit}, also returning the relation that produced the
    bound, so callers recording both classify the pair only once. *)

val pair_limit_cls :
  pair_class ->
  Amg_geometry.Dir.t ->
  Amg_layout.Shape.t ->
  Amg_layout.Shape.t ->
  (int * relation) option
(** {!pair_limit_rel} with the layer-level classification precomputed. *)

val query_margin : Amg_tech.Rules.t -> string -> string -> int
(** Margin for {!Amg_layout.Lobj.near} candidate queries on a layer pair:
    any pair of shapes farther apart than this on both axes is guaranteed
    not to constrain compaction (its {!relation} is [Unconstrained], or a
    separation it already satisfies out of shadow). *)

val tightest : Amg_geometry.Dir.t -> int list -> int option
(** Tightest of several bounds for a mover travelling in the direction:
    the maximum for South/West movement, the minimum for North/East. *)
