module Rect = Amg_geometry.Rect
module Dir = Amg_geometry.Dir
module Interval = Amg_geometry.Interval
module Rules = Amg_tech.Rules
module Shape = Amg_layout.Shape
module Edge = Amg_layout.Edge
module Lobj = Amg_layout.Lobj
module Derive = Amg_layout.Derive

let src = Logs.Src.create "amg.compact" ~doc:"successive compactor"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Amg_obs.Obs

type side = Mover | Target

type limit = { bound : int; mover : Shape.t; target : Shape.t; rel : Constraints.relation }

type align = [ `Keep | `Center | `Min | `Max ]

(* Cross-axis pre-alignment of the moving object relative to the target's
   bounding box. *)
let apply_align ~align ~(d : Dir.t) ~main obj =
  match (align, Lobj.bbox main, Lobj.bbox obj) with
  | `Keep, _, _ | _, None, _ | _, _, None -> ()
  | (`Center | `Min | `Max), Some mb, Some ob ->
      let cross = Dir.cross_axis d in
      let mi = Rect.span cross mb and oi = Rect.span cross ob in
      let shift =
        match align with
        | `Center ->
            ((mi.Interval.lo + mi.Interval.hi) - (oi.Interval.lo + oi.Interval.hi)) / 2
        | `Min -> mi.Interval.lo - oi.Interval.lo
        | `Max -> mi.Interval.hi - oi.Interval.hi
        | `Keep -> 0
      in
      (match cross with
      | Dir.Horizontal -> Lobj.translate obj ~dx:shift ~dy:0
      | Dir.Vertical -> Lobj.translate obj ~dx:0 ~dy:shift)

(* A movement-axis slab: the mover's rectangle stretched along the axis to
   cover the main structure's whole extent.  Along the movement axis any
   distance still constrains the travel, so only the cross-axis shadow can
   cull; the slab makes the index query unbounded (within main) on the
   axis and tight on the cross axis. *)
let slab ~axis (a : Shape.t) (mb : Rect.t) =
  let sa = Rect.span axis a.Shape.rect and sm = Rect.span axis mb in
  let h = Interval.hull sa sm in
  match axis with
  | Dir.Horizontal ->
      Rect.make ~x0:h.Interval.lo ~x1:h.Interval.hi ~y0:a.rect.Rect.y0
        ~y1:a.rect.Rect.y1
  | Dir.Vertical ->
      Rect.make ~x0:a.rect.Rect.x0 ~x1:a.rect.Rect.x1 ~y0:h.Interval.lo
        ~y1:h.Interval.hi

let collect_limits rules ?ignore_layers d ~main obj =
  match Lobj.bbox main with
  | None -> []
  | Some mb ->
      let axis = Dir.axis d in
      let layers = Lobj.layers main in
      List.concat_map
        (fun (a : Shape.t) ->
          let window = slab ~axis a mb in
          List.concat_map
            (fun layer ->
              (* One rule-table consultation per (mover, layer); the inner
                 loop then runs without spacing lookups. *)
              let cls = Constraints.classify rules ?ignore_layers a.Shape.layer layer in
              let margin = Constraints.margin_cls cls in
              let candidates = Lobj.near main ~layer window ~margin in
              if Obs.enabled () then
                Obs.count "compact.pairs_considered" (List.length candidates);
              List.filter_map
                (fun (b : Shape.t) ->
                  match Constraints.pair_limit_cls cls d a b with
                  | Some (bound, rel) ->
                      if Obs.enabled () then begin
                        Obs.count "compact.limits" 1;
                        match rel with
                        | Constraints.Mergeable ->
                            Obs.count "compact.merge_limits" 1
                        | _ -> ()
                      end;
                      Some { bound; mover = a; target = b; rel }
                  | None -> None)
                candidates)
            layers)
        (Lobj.shapes obj)
      (* Candidates arrive grouped by layer; restore the (mover, target)
         insertion order the all-pairs scan produced, so tie-breaking in
         the variable-edge relaxation is unchanged. *)
      |> List.sort (fun l1 l2 ->
             let c = Int.compare l1.mover.Shape.id l2.mover.Shape.id in
             if c <> 0 then c else Int.compare l1.target.Shape.id l2.target.Shape.id)

let tightest_limit d limits =
  let sign = Dir.sign d in
  List.fold_left
    (fun acc l ->
      match acc with
      | None -> Some l.bound
      | Some best -> Some (if sign < 0 then max best l.bound else min best l.bound))
    None limits

(* Minimum extent a shape may be shrunk to along [axis]: its layer's minimum
   width, raised to the one-cut minimum when it is a container of a
   registered cut array. *)
let min_extent rules owner (s : Shape.t) =
  let cut_layers = Lobj.array_cut_layers_of_container owner s.id in
  List.fold_left
    (fun acc cut_layer ->
      max acc (Derive.min_container_extent rules ~container_layer:s.layer ~cut_layer))
    (Rules.width rules s.layer) cut_layers

(* Shrink the [facing] edge of shape [s] (owned by [owner]) inward by
   [amount], clamped to the minimum extent; rebuilds derived arrays.
   A shrink that would slide the shape away from its array's other
   containers (leaving the array without a single cut, i.e. disconnecting
   the structure) is rolled back.  Returns how much was actually shrunk. *)
let shrink_edge rules owner (s : Shape.t) facing amount =
  let axis = Dir.axis facing in
  let extent = Interval.length (Rect.span axis s.rect) in
  let slack = extent - min_extent rules owner s in
  let step = min amount slack in
  if step <= 0 then 0
  else begin
    let r = Rect.grow_side s.rect facing (-step) in
    Lobj.replace owner (Shape.with_rect s r);
    Lobj.rederive owner rules;
    let arrays = Lobj.arrays_of_container owner s.Shape.id in
    if List.exists (fun a -> Lobj.array_member_count owner a = 0) arrays then begin
      Lobj.replace owner s;
      Lobj.rederive owner rules;
      0
    end
    else begin
      Obs.count "compact.var_edge_shrinks" 1;
      step
    end
  end

(* One round of the variable-edge optimization of §2.3: while the binding
   constraint pair has a variable facing edge, move that edge inward until
   the pair "is no longer relevant", i.e. until another (eventually fixed)
   constraint defines the minimum distance.  Returns the limits collected
   in the final round — the geometry has not changed since (the round made
   no progress), so the caller can reuse them instead of re-collecting. *)
let relax_variable_edges rules ?ignore_layers d ~main obj =
  let max_rounds = 64 in
  let rounds = ref 0 in
  let rec loop round =
    rounds := round;
    let limits = collect_limits rules ?ignore_layers d ~main obj in
    if round >= max_rounds then limits
    else
      match tightest_limit d limits with
      | None -> limits
      | Some best ->
          let binding =
            List.filter
              (fun l ->
                l.bound = best
                && match l.rel with Constraints.Separation _ -> true | _ -> false)
              limits
          in
          let second =
            List.filter (fun l -> l.bound <> best) limits |> tightest_limit d
          in
          (* How much slack until the next constraint binds; unlimited when
             this pair is the only constraint. *)
          let want =
            match second with Some s -> abs (best - s) | None -> max_int / 2
          in
          let progressed = ref false in
          List.iter
            (fun l ->
              if not !progressed then begin
                (* The target's facing edge looks back at the mover
                   (opposite d); the mover's facing edge looks ahead (d). *)
                let try_side role =
                  let owner, shape, facing =
                    match role with
                    | Target -> (main, l.target, Dir.opposite d)
                    | Mover -> (obj, l.mover, d)
                  in
                  (* Re-fetch: a previous shrink may have replaced it. *)
                  match Lobj.find owner shape.Shape.id with
                  | Some s when Edge.is_variable s.Shape.sides facing ->
                      shrink_edge rules owner s facing want > 0
                  | _ -> false
                in
                if try_side Target || try_side Mover then progressed := true
              end)
            binding;
          if !progressed then loop (round + 1) else limits
  in
  let limits = loop 0 in
  if Obs.enabled () then Obs.sample "compact.var_edge_rounds" (float_of_int !rounds);
  limits

(* Fallback when no pair constrains the move: abut bounding boxes. *)
let bbox_abut_delta d ~main obj =
  match (Lobj.bbox main, Lobj.bbox obj) with
  | Some mb, Some ob ->
      let axis = Dir.axis d in
      let mi = Rect.span axis mb and oi = Rect.span axis ob in
      if Dir.sign d < 0 then mi.Interval.hi - oi.Interval.lo
      else mi.Interval.lo - oi.Interval.hi
  | _ -> 0

let translate_along d obj delta =
  match Dir.axis d with
  | Dir.Horizontal -> Lobj.translate obj ~dx:delta ~dy:0
  | Dir.Vertical -> Lobj.translate obj ~dx:0 ~dy:delta

(* Would growing shape [s] of [owner] to [r'] violate a separation against
   any other shape of [main] or [obj]?  Shapes beyond the pair's spacing
   rule on either axis cannot be violated, so only index candidates around
   [r'] are examined. *)
let extension_safe rules ?ignore_layers ~main ~obj (s : Shape.t) r' =
  let ok cls (other : Shape.t) =
    other == s
    ||
    match Constraints.relation_cls cls s other with
    | Constraints.Unconstrained | Constraints.Mergeable -> true
    | Constraints.Separation sep ->
        let dx = Rect.gap Dir.Horizontal r' other.Shape.rect in
        let dy = Rect.gap Dir.Vertical r' other.Shape.rect in
        max dx dy >= sep
  in
  let clear owner =
    List.for_all
      (fun layer ->
        let cls = Constraints.classify rules ?ignore_layers s.Shape.layer layer in
        let margin = Constraints.margin_cls cls in
        List.for_all (ok cls) (Lobj.near owner ~layer r' ~margin))
      (Lobj.layers owner)
  in
  clear main && clear obj

(* Auto-connection (§2.3, Fig. 5a): after placement, same-layer same-net
   shape pairs whose cross-axis spans overlap but which still have a gap
   along the movement axis are connected by stretching the target shape's
   facing edge up to the mover. *)
let auto_connect rules ?ignore_layers d ~main obj =
  let axis = Dir.axis d in
  let cross = Dir.cross_axis d in
  (* Cut layers (fixed-size openings) must never be stretched.  The main
     bbox is fetched once: extensions only ever grow a target toward the
     mover along the movement axis, which keeps it inside the slab built
     from the pre-extension hull. *)
  let mb0 = Lobj.bbox main in
  let stretchable (s : Shape.t) = Rules.cut_size_opt rules s.Shape.layer = None in
  List.iter
    (fun (a : Shape.t) ->
      (* Same-layer same-net partners anywhere along the movement axis:
         query the mover's slab on its own layer (margin 0 — connection
         candidates must overlap in the cross axis). *)
      let candidates =
        match mb0 with
        | None -> []
        | Some mb -> Lobj.near main ~layer:a.Shape.layer (slab ~axis a mb) ~margin:0
      in
      List.iter
        (fun (b : Shape.t) ->
          if Shape.same_net a b && stretchable b then begin
            let ia = Rect.span cross a.rect and ib = Rect.span cross b.rect in
            if Interval.overlaps ia ib then begin
              let sa = Rect.span axis a.rect and sb = Rect.span axis b.rect in
              let gap = max (sa.Interval.lo - sb.Interval.hi) (sb.Interval.lo - sa.Interval.hi) in
              if gap > 0 then begin
                (* Extend b toward a. *)
                let facing =
                  if sb.Interval.hi <= sa.Interval.lo then
                    (* b is on the low side: grow its high edge *)
                    match axis with Dir.Horizontal -> Dir.East | Vertical -> Dir.North
                  else match axis with Dir.Horizontal -> Dir.West | Vertical -> Dir.South
                in
                match Lobj.find main b.Shape.id with
                | Some cur ->
                    let r' = Rect.grow_side cur.Shape.rect facing gap in
                    if extension_safe rules ?ignore_layers ~main ~obj cur r' then begin
                      Obs.count "compact.same_potential_merges" 1;
                      Lobj.replace main (Shape.with_rect cur r')
                    end
                | None -> ()
              end
            end
          end)
        candidates)
    (Lobj.shapes obj)

let delta rules ?ignore_layers d ~main obj =
  let limits = collect_limits rules ?ignore_layers d ~main obj in
  match tightest_limit d limits with
  | Some bound -> bound
  | None -> bbox_abut_delta d ~main obj

(* Start the mover outside the main structure, beyond its far edge in the
   opposite direction, so that it genuinely "approaches" — otherwise a
   mover generated at the origin may begin inside the structure and
   position-dependent relations (containment) misfire. *)
let stage_outside ~grid d ~main obj =
  match (Lobj.bbox main, Lobj.bbox obj) with
  | Some mb, Some ob ->
      let axis = Dir.axis d in
      let mi = Rect.span axis mb and oi = Rect.span axis ob in
      let shift =
        if Dir.sign d < 0 then
          (* moving low-ward: start above/right of main *)
          max 0 (mi.Interval.hi + grid - oi.Interval.lo)
        else min 0 (mi.Interval.lo - grid - oi.Interval.hi)
      in
      if shift <> 0 then translate_along d obj shift
  | _ -> ()

(* The per-placement audit record behind `amgen build --explain`: which
   limit pair actually set the final position.  [binding] is the tied
   tightest subset of the final limits in (mover id, target id) order. *)
let place_mark ~main ~obj ~d ~dl ~(binding : limit list) =
  let base bound_by =
    [
      ("obj", Lobj.name obj);
      ("into", Lobj.name main);
      ("dir", Dir.to_string d);
      ("delta", string_of_int dl);
      ("bound_by", bound_by);
    ]
  in
  match binding with
  | [] -> base "bbox-abut"
  | l :: _ ->
      let rule =
        match l.rel with
        | Constraints.Separation sep -> Printf.sprintf "separation %d" sep
        | Constraints.Mergeable -> "merge"
        | Constraints.Unconstrained -> "unconstrained"
      in
      (* The mover's leading edge meets the target's facing edge; a
         mergeable pair binds trailing edge against trailing edge. *)
      let mover_edge, target_edge =
        match l.rel with
        | Constraints.Mergeable -> (Dir.opposite d, Dir.opposite d)
        | _ -> (d, Dir.opposite d)
      in
      let side owner (s : Shape.t) facing =
        let var =
          match Lobj.find owner s.Shape.id with
          | Some cur -> Edge.is_variable cur.Shape.sides facing
          | None -> Edge.is_variable s.Shape.sides facing
        in
        Printf.sprintf "%s#%d %s%s" s.Shape.layer s.Shape.id
          (Dir.to_string facing)
          (if var then " (variable)" else "")
      in
      base "pair"
      @ [
          ("rule", rule);
          ("mover", side obj l.mover mover_edge);
          ("target", side main l.target target_edge);
        ]

(* The paper's compact(obj, DIR, layers): place [obj] against [main] moving
   in direction [d], then absorb it into [main].  [main] empty means the
   first compaction command simply copies the object in (§2.5). *)
let place rules ~main ?ignore_layers ~align ~variable_edges obj d =
  apply_align ~align ~d ~main obj;
  stage_outside ~grid:(Rules.grid rules) d ~main obj;
  (* The relaxation hands back the limits of its final (quiescent)
     round, so the placement delta needs no second scan. *)
  let limits =
    if variable_edges then relax_variable_edges rules ?ignore_layers d ~main obj
    else collect_limits rules ?ignore_layers d ~main obj
  in
  let dl =
    match tightest_limit d limits with
    | Some bound -> bound
    | None -> bbox_abut_delta d ~main obj
  in
  if Obs.enabled () then begin
    let binding = List.filter (fun l -> l.bound = dl) limits in
    Obs.count "compact.placements" 1;
    Obs.count "compact.binding_limits" (List.length binding);
    Obs.mark "compact.place" (place_mark ~main ~obj ~d ~dl ~binding)
  end;
  Log.debug (fun m ->
      m "compact %s into %s %s: delta=%d" (Lobj.name obj) (Lobj.name main)
        (Dir.to_string d) dl);
  translate_along d obj dl;
  auto_connect rules ?ignore_layers d ~main obj

(* Exceptions the permissive fallback may absorb; resource exhaustion and
   assertion failures always escape. *)
let recoverable = function
  | Stack_overflow | Out_of_memory | Assert_failure _ -> false
  | _ -> true

let skip_diag ~obj ~main ~d exn =
  Amg_robust.Diag.v Amg_robust.Diag.Compact ~code:"compact.placement-skipped"
    ~payload:
      [
        ("obj", Lobj.name obj);
        ("into", Lobj.name main);
        ("dir", Dir.to_string d);
        ("error", Printexc.to_string exn);
      ]
    ~hint:
      "placement failed in both directions under --permissive; the object \
       was left out of the layout — check connectivity and rerun with \
       --strict to see the original failure"
    (Fmt.str "skipped placement of %s into %s (%s, then %s): %s"
       (Lobj.name obj) (Lobj.name main) (Dir.to_string d)
       (Dir.to_string (Dir.opposite d))
       (Printexc.to_string exn))

let compact ~rules ~into:main ?ignore_layers ?(align = (`Keep : align))
    ?(variable_edges = true) obj d =
  Obs.span "compact" @@ fun () ->
  match Lobj.bbox main with
  | None ->
      Obs.markf "compact.place" (fun () ->
          [
            ("obj", Lobj.name obj);
            ("into", Lobj.name main);
            ("dir", Dir.to_string d);
            ("delta", "0");
            ("bound_by", "first-object");
          ]);
      ignore (Lobj.absorb main obj)
  | Some _ ->
      if not (Amg_robust.Policy.permissive ()) then begin
        place rules ~main ?ignore_layers ~align ~variable_edges obj d;
        ignore (Lobj.absorb main obj)
      end
      else begin
        (* Per-placement degradation: retry the opposite direction on a
           fresh copy (the first attempt may have moved [obj]), then skip
           the object and report, so one bad placement cannot sink the whole
           run.  The pristine copy is taken up front — only in permissive
           mode, so the strict path stays allocation-identical. *)
        let pristine = Lobj.copy obj in
        match place rules ~main ?ignore_layers ~align ~variable_edges obj d with
        | () -> ignore (Lobj.absorb main obj)
        | exception e when recoverable e -> (
            let retry = Lobj.copy pristine in
            let d' = Dir.opposite d in
            match
              place rules ~main ?ignore_layers ~align ~variable_edges retry d'
            with
            | () ->
                Amg_robust.Policy.report
                  (Amg_robust.Diag.v ~severity:Amg_robust.Diag.Warning
                     Amg_robust.Diag.Compact ~code:"compact.direction-fallback"
                     ~payload:
                       [
                         ("obj", Lobj.name retry);
                         ("into", Lobj.name main);
                         ("dir", Dir.to_string d);
                         ("fallback_dir", Dir.to_string d');
                         ("error", Printexc.to_string e);
                       ]
                     (Fmt.str "placed %s into %s along %s after %s failed"
                        (Lobj.name retry) (Lobj.name main) (Dir.to_string d')
                        (Dir.to_string d)));
                ignore (Lobj.absorb main retry)
            | exception e2 when recoverable e2 ->
                Amg_robust.Policy.report (skip_diag ~obj:retry ~main ~d e2))
      end

(* Render every recorded [compact.place] mark as the "successive
   abutment" audit table of `amgen build --explain`. *)
let pp_explain ppf () =
  let places =
    List.filter (fun (n, _) -> String.equal n "compact.place") (Obs.marks ())
  in
  if places = [] then
    Fmt.pf ppf "no placements recorded (was instrumentation enabled?)@."
  else begin
    let get k args = Option.value ~default:"" (List.assoc_opt k args) in
    Fmt.pf ppf "@.placements (binding constraint per compacted object)@.";
    Fmt.pf ppf "  %3s %-22s %-5s %8s  %s@." "#" "obj -> into" "dir" "delta"
      "bound by";
    List.iteri
      (fun i (_, args) ->
        let bound =
          match get "bound_by" args with
          | "pair" ->
              Printf.sprintf "%s: mover %s vs target %s" (get "rule" args)
                (get "mover" args) (get "target" args)
          | other -> other
        in
        Fmt.pf ppf "  %3d %-22s %-5s %8s  %s@." i
          (get "obj" args ^ " -> " ^ get "into" args)
          (get "dir" args) (get "delta" args) bound)
      places
  end
