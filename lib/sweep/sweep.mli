(** Batch parameter-grid sweeps with locality-aware scheduling.

    A sweep expands a small JSON spec — one entity, one value axis per
    parameter — into a canonical instance list, builds and
    order-optimizes every instance, and emits one layout-derived metric
    row per instance into a columnar result file (a JSON schema header
    followed by CSV rows, written incrementally in canonical order so a
    killed sweep keeps its completed prefix).

    The canonical instance order {e is} the locality walk: a mixed-radix
    reflected Gray-code path over the grid, so consecutive instances
    differ in exactly one parameter by one grid step.  Scheduling chunks
    consecutive walk indices onto the domain pool, keeping
    parameter-neighbours on the same pool participant — and therefore on
    the same prefix-cache shard and in the same result-store access
    pattern — while rows are re-serialized into walk order for output.

    Determinism: a row is a pure function of (environment, entity,
    parameters, search mode).  Inner searches always run on one domain,
    so rows — and the whole result file — are byte-identical for every
    [?domains], every [?chunk], shuffled or locality scheduling, and
    with the cache or store on or off (§7 contract). *)

type mode = Orders | Bb | Local

type axis = {
  a_name : string;
  a_values : Amg_lang.Value.t list;  (** in spec order; length >= 1 *)
}

type spec = {
  s_entity : string;
  s_axes : axis list;  (** sorted by parameter name *)
  s_mode : mode;
}

val mode_to_string : mode -> string

val parse_spec : ?file:string -> string -> spec
(** Parse a sweep spec document:

    {v
    { "entity": "DiffPair",
      "params": { "W": { "from": 8, "to": 15, "step": 1 },
                  "L": [ 4, 5, 6 ],
                  "layer": [ "poly", "metal1" ] },
      "optimize": "local" }
    v}

    Each parameter axis is either an explicit value array (numbers or
    strings) or an inclusive arithmetic range.  ["optimize"] is
    [orders], [bb] or [local] (the default).  String values must be
    CSV-safe (no commas, quotes or control characters).  The expanded
    grid is capped at 1_000_000 instances.
    @raise Amg_robust.Diag.Fail with code [sweep.bad-spec] on malformed
    documents. *)

val grid_size : spec -> int
(** Product of the axis lengths (before deduplication). *)

val instances : spec -> (string * Amg_lang.Value.t) list list
(** The canonical instance list: the Gray-code locality walk over the
    grid, with instances whose canonical parameter signature already
    appeared earlier in the walk removed.  Each instance binds every
    axis, in axis (= sorted name) order. *)

val columns : spec -> (string * string) list
(** Result columns as (name, type) with type ["str"], ["num"] or
    ["int"]: [entity], one column per axis, then [status], [rating],
    [area_um2], [w_um], [h_um], [shapes], [density], [net_wl_um],
    [sym_um], [diags]. *)

val header_line : spec -> rows:int -> string
(** The one-line JSON schema header: entity, mode, axes with their
    values, the column list, and the row count. *)

type result = {
  rows : int;  (** rows emitted (= canonical instances) *)
  failures : int;  (** rows whose status is not ["ok"] *)
  duplicates : int;  (** grid points dropped by deduplication *)
  store_hits : int;  (** result-store hits served during this run *)
  elapsed_s : float;
}

val run :
  ?domains:int ->
  ?chunk:int ->
  ?shuffle:bool ->
  ?cache:Amg_core.Prefix_cache.t ->
  ?store:Amg_store.Store.t ->
  ?source_file:string ->
  on_line:(string -> unit) ->
  env:Amg_core.Env.t ->
  source:string ->
  spec ->
  result
(** Run the sweep: parse [source], expand the grid, schedule
    [chunk]-sized groups of walk-consecutive instances onto a
    [?domains]-wide pool (default 1; [chunk] default 8), and call
    [on_line] once per output line — the JSON header, the CSV column
    line, then one CSV row per instance — always in canonical walk
    order, as soon as the prefix up to that row is complete (flush in
    [on_line] to keep the file crash-safe).

    [?shuffle] replaces the locality-preserving schedule with a
    deterministic shuffle of the instance order — an ablation hook: rows
    are identical, only timings move.  [?cache] is the prefix cache for
    the inner searches (default the process cache; pass
    {!Amg_core.Prefix_cache.disabled} to opt out); [?store] consults and
    populates the durable result store under each instance's canonical
    signature.

    Per-instance failures (placement rejection, language errors) become
    rows with the diagnostic code in the [status] column and empty
    metric cells — the sweep always completes.  Diagnostics reported
    while an instance runs are captured per row ({!Amg_robust.Policy.capture})
    and listed, as codes, in the row's [diags] column. *)

val check_file : string -> (int, string) Stdlib.result
(** Validate a result file against its own schema header: the header
    parses, the column line matches, every row has one cell per column
    and each cell parses at the column's type (metric cells may be empty
    on failed rows).  Returns the data row count.  A truncated file with
    fewer rows than the header announced is valid — that is the
    documented crash shape — but extra or malformed rows are not. *)
