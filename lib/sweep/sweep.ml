(* Batch parameter-grid sweeps: Gray-code locality walk, chunked
   scheduling onto the domain pool, incremental columnar output.

   The canonical row order IS the locality walk, so the result file is a
   pure function of the spec — scheduling (domain count, chunk size,
   shuffled ablation) and warm state (prefix cache, result store) can
   only move wall time, never bytes.  See DESIGN.md §15. *)

module Env = Amg_core.Env
module Optimize = Amg_core.Optimize
module Rating = Amg_core.Rating
module Prefix_cache = Amg_core.Prefix_cache
module Interp = Amg_lang.Interp
module Value = Amg_lang.Value
module Lobj = Amg_layout.Lobj
module Stats = Amg_layout.Stats
module Connectivity = Amg_extract.Connectivity
module Rect = Amg_geometry.Rect
module Units = Amg_geometry.Units
module Diag = Amg_robust.Diag
module Policy = Amg_robust.Policy
module Pool = Amg_parallel.Pool
module Store = Amg_store.Store
module Obs = Amg_obs.Obs
module Metrics = Amg_obs.Metrics

type mode = Orders | Bb | Local

let mode_to_string = function
  | Orders -> "orders"
  | Bb -> "bb"
  | Local -> "local"

type axis = { a_name : string; a_values : Value.t list }
type spec = { s_entity : string; s_axes : axis list; s_mode : mode }

let max_grid = 1_000_000
let bad_spec fmt = Diag.failf Diag.Cli ~code:"sweep.bad-spec" fmt

(* CSV cells are split on ',' and compared byte-wise, so string values
   must not need quoting. *)
let csv_safe s =
  String.for_all (fun c -> c <> ',' && c <> '"' && Char.code c >= 0x20) s

let json_num f = Diag.Json.to_string (Diag.Json.Jnum f)

let value_cell = function
  | Value.Num f -> json_num f
  | Value.Str s -> s
  | Value.Bool b -> string_of_bool b
  | Value.Obj _ | Value.Unit -> ""

(* --- spec parsing ------------------------------------------------------ *)

let range_values ~name from_ to_ step =
  if step <= 0. then bad_spec "axis %s: step must be > 0" name
  else if to_ < from_ then bad_spec "axis %s: to < from" name
  else
    let n = int_of_float (((to_ -. from_) /. step) +. 1e-9) + 1 in
    if n > max_grid then bad_spec "axis %s: range expands to %d values" name n
    else List.init n (fun i -> Value.Num (from_ +. (float_of_int i *. step)))

let axis_values name j =
  let module J = Diag.Json in
  match j with
  | J.Jarr [] -> bad_spec "axis %s: empty value list" name
  | J.Jarr vs ->
      List.map
        (function
          | J.Jnum f -> Value.Num f
          | J.Jstr s ->
              if csv_safe s then Value.Str s
              else bad_spec "axis %s: value %S is not CSV-safe" name s
          | _ -> bad_spec "axis %s: values must be numbers or strings" name)
        vs
  | J.Jobj _ -> (
      let num field =
        match J.member field j with
        | None -> None
        | Some v -> (
            match J.num v with
            | Some f -> Some f
            | None ->
                bad_spec "axis %s: \"%s\" must be a number" name field)
      in
      match (num "from", num "to", num "step") with
      | Some f, Some t, Some s -> range_values ~name f t s
      | Some f, Some t, None -> range_values ~name f t 1.
      | _ -> bad_spec "axis %s: a range needs numeric \"from\" and \"to\"" name)
  | _ -> bad_spec "axis %s: expected a value array or a from/to/step range" name

let homogeneous name values =
  let nums = List.for_all (function Value.Num _ -> true | _ -> false) values
  and strs = List.for_all (function Value.Str _ -> true | _ -> false) values in
  if not (nums || strs) then
    bad_spec "axis %s: cannot mix numeric and string values" name

let parse_spec ?file src =
  let module J = Diag.Json in
  let j =
    match J.of_string src with
    | Ok j -> j
    | Error e ->
        bad_spec "%s: %s"
          (match file with Some f -> f | None -> "sweep spec")
          e
  in
  let entity =
    match Option.bind (J.member "entity" j) J.str with
    | Some e when e <> "" -> e
    | _ -> bad_spec "spec needs an \"entity\" string"
  in
  let mode =
    match J.member "optimize" j with
    | None -> Local
    | Some m -> (
        match J.str m with
        | Some "orders" -> Orders
        | Some "bb" -> Bb
        | Some "local" -> Local
        | _ -> bad_spec "\"optimize\" must be \"orders\", \"bb\" or \"local\"")
  in
  let axes =
    match J.member "params" j with
    | Some (J.Jobj fields) when fields <> [] ->
        List.map
          (fun (name, jv) ->
            if name = "" || not (csv_safe name) then
              bad_spec "bad axis name %S" name;
            let values = axis_values name jv in
            homogeneous name values;
            { a_name = name; a_values = values })
          fields
    | _ -> bad_spec "spec needs a non-empty \"params\" object"
  in
  let axes =
    List.sort (fun a b -> String.compare a.a_name b.a_name) axes
  in
  (match
     List.fold_left
       (fun prev a ->
         if prev = a.a_name then bad_spec "duplicate axis %s" a.a_name;
         a.a_name)
       "" axes
   with
  | _ -> ());
  let size =
    List.fold_left
      (fun acc a ->
        let n = acc * List.length a.a_values in
        if n > max_grid || n < acc then
          bad_spec "grid larger than %d instances" max_grid
        else n)
      1 axes
  in
  ignore size;
  { s_entity = entity; s_axes = axes; s_mode = mode }

let grid_size spec =
  List.fold_left (fun acc a -> acc * List.length a.a_values) 1 spec.s_axes

(* --- canonical instance list ------------------------------------------- *)

(* Mixed-radix reflected Gray-code walk: the sub-walk direction flips
   with the parity of the digit above it, so consecutive index vectors
   differ in exactly one digit, by exactly one — a Hamiltonian
   nearest-neighbour path over the grid. *)
let rec gray_walk = function
  | [] -> [ [] ]
  | radix :: rest ->
      let sub = gray_walk rest in
      let rsub = List.rev sub in
      List.concat
        (List.init radix (fun i ->
             List.map
               (fun tl -> i :: tl)
               (if i mod 2 = 0 then sub else rsub)))

let store_params params =
  List.map
    (fun (k, v) ->
      ( k,
        match v with
        | Value.Num f -> Store.Num f
        | Value.Str s -> Store.Str s
        | Value.Bool b -> Store.Str (string_of_bool b)
        | Value.Obj _ | Value.Unit -> Store.Str "" ))
    params

let instance_signature ~tech entity params =
  Store.signature ~tech ~entity ~params:(store_params params)

let instances spec =
  let axes = Array.of_list spec.s_axes in
  let values = Array.map (fun a -> Array.of_list a.a_values) axes in
  let walk = gray_walk (Array.to_list (Array.map Array.length values)) in
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun digits ->
      let inst =
        List.mapi (fun ax i -> (axes.(ax).a_name, values.(ax).(i))) digits
      in
      let key = instance_signature ~tech:"" spec.s_entity inst in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.replace seen key ();
        Some inst
      end)
    walk

(* --- columnar format --------------------------------------------------- *)

let metric_columns =
  [
    ("status", "str");
    ("rating", "num");
    ("area_um2", "num");
    ("w_um", "num");
    ("h_um", "num");
    ("shapes", "int");
    ("density", "num");
    ("net_wl_um", "num");
    ("sym_um", "num");
    ("diags", "str");
  ]

let axis_type a =
  if List.for_all (function Value.Num _ -> true | _ -> false) a.a_values then
    "num"
  else "str"

let columns spec =
  (("entity", "str") :: List.map (fun a -> (a.a_name, axis_type a)) spec.s_axes)
  @ metric_columns

let header_line spec ~rows =
  let module J = Diag.Json in
  let value_json = function
    | Value.Num f -> J.Jnum f
    | v -> J.Jstr (value_cell v)
  in
  J.to_string
    (J.Jobj
       [
         ("sweep", J.Jnum 1.);
         ("entity", J.Jstr spec.s_entity);
         ("mode", J.Jstr (mode_to_string spec.s_mode));
         ( "axes",
           J.Jarr
             (List.map
                (fun a ->
                  J.Jobj
                    [
                      ("name", J.Jstr a.a_name);
                      ("values", J.Jarr (List.map value_json a.a_values));
                    ])
                spec.s_axes) );
         ( "columns",
           J.Jarr
             (List.map
                (fun (n, t) ->
                  J.Jobj [ ("name", J.Jstr n); ("type", J.Jstr t) ])
                (columns spec)) );
         ("rows", J.Jnum (float_of_int rows));
       ])

let column_line spec = String.concat "," (List.map fst (columns spec))

(* --- per-instance execution -------------------------------------------- *)

(* Ports are re-derived on the winning layout exactly like amgen build
   --optimize does: the optimizer replays compacts only. *)
let transplant_ports ~from obj =
  List.iter
    (fun (p : Amg_layout.Port.t) ->
      let shapes =
        List.filter
          (fun (s : Amg_layout.Shape.t) -> Amg_layout.Shape.on_layer s p.layer)
          (Lobj.shapes_on_net obj p.net)
      in
      match
        Rect.hull_list
          (List.map (fun (s : Amg_layout.Shape.t) -> s.rect) shapes)
      with
      | Some rect ->
          ignore (Lobj.add_port obj ~name:p.name ~net:p.net ~layer:p.layer ~rect)
      | None ->
          Policy.report
            (Diag.v ~severity:Diag.Warning Diag.Optimize
               ~code:"optimize.port-dropped"
               (Fmt.str
                  "port %s: no shapes of net %s on layer %s in the optimized \
                   layout" p.name p.net p.layer)))
    (Lobj.ports from)

let convert_exn = function
  | Env.Rejected msg ->
      Some (Diag.v Diag.Layout ~code:"layout.rejected" msg)
  | Stack_overflow | Out_of_memory -> None
  | e ->
      Some
        (Diag.v Diag.Internal ~code:"internal.uncaught"
           (Printexc.to_string e))

type metrics_row = {
  m_rating : float;
  m_area : float;
  m_w : float;
  m_h : float;
  m_shapes : int;
  m_density : float;
  m_net_wl : float;
  m_sym : float;
}

let measure env rating obj =
  let st = Stats.of_lobj obj in
  let w, h =
    match st.Stats.bbox with
    | None -> (0., 0.)
    | Some r -> (Units.to_um (Rect.width r), Units.to_um (Rect.height r))
  in
  let conn = Connectivity.build ~tech:(Env.tech env) obj in
  let net_wl =
    List.fold_left
      (fun acc n -> acc +. Connectivity.net_wirelength_um conn n)
      0.
      (Connectivity.labeled_nets conn)
  in
  {
    m_rating = rating;
    m_area = st.Stats.bbox_area_um2;
    m_w = w;
    m_h = h;
    m_shapes = st.Stats.shape_count;
    m_density = st.Stats.density;
    m_net_wl = net_wl;
    m_sym = Stats.symmetry_error_um obj;
  }

(* Build and optimize one instance.  The inner search always runs on one
   domain — the sweep parallelizes across instances, and §7 makes the
   result independent of the split — and under a per-row diagnostic
   capture, so a parallel sweep can attribute reports to their row. *)
let run_instance ~env ~program ~entity ~mode ~cache ~scope ~store params =
  let body () =
    let obj, record = Interp.build_recorded env program entity params in
    match record with
    | Error why ->
        Policy.report
          (Diag.v ~severity:Diag.Warning Diag.Optimize
             ~code:"optimize.not-replayable"
             (Fmt.str "%s: cannot reorder compacts (%s); rating the \
                       canonical build" entity why));
        measure env (Rating.rate env Rating.default obj) obj
    | Ok { Interp.base; steps } ->
        let best, rating, order =
          match mode with
          | Orders ->
              Optimize.optimize env ~name:entity ~base ~domains:1 ?cache ~scope
                ?store steps
          | Bb ->
              let o, r, ord, _nodes =
                Optimize.optimize_bb env ~name:entity ~base ~domains:1 ?cache
                  ~scope ?store steps
              in
              (o, r, ord)
          | Local ->
              let o, r, ord, _evals =
                Optimize.optimize_local env ~name:entity ~base ~domains:1
                  ?cache ~scope ?store steps
              in
              (o, r, ord)
        in
        let canonical_won =
          List.length order = List.length steps
          && List.for_all2 ( == ) order steps
        in
        let final =
          if canonical_won then obj
          else begin
            transplant_ports ~from:obj best;
            best
          end
        in
        measure env rating final
  in
  Policy.capture (fun () -> Diag.guard ~convert:convert_exn body)

(* --- rendering --------------------------------------------------------- *)

let diag_codes diags =
  String.concat ";" (List.map (fun (d : Diag.t) -> d.Diag.code) diags)

let render_row ~entity params outcome diags =
  let cells =
    match outcome with
    | Ok m ->
        [
          "ok";
          json_num m.m_rating;
          json_num m.m_area;
          json_num m.m_w;
          json_num m.m_h;
          string_of_int m.m_shapes;
          json_num m.m_density;
          json_num m.m_net_wl;
          json_num m.m_sym;
          diag_codes diags;
        ]
    | Error (d : Diag.t) ->
        [ d.Diag.code; ""; ""; ""; ""; ""; ""; ""; ""; diag_codes diags ]
  in
  String.concat ","
    ((entity :: List.map (fun (_, v) -> value_cell v) params) @ cells)

(* --- ordered incremental writer ---------------------------------------- *)

(* Rows complete in scheduling order but leave in canonical order: each
   finished row parks until the prefix before it is complete, then the
   whole ready run flushes.  A killed sweep therefore keeps exactly the
   canonical prefix that was finished. *)
type writer = {
  w_lock : Mutex.t;
  w_pending : (int, string) Hashtbl.t;
  mutable w_next : int;
  w_emit : string -> unit;
}

let writer_push w i line =
  Mutex.lock w.w_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.w_lock)
    (fun () ->
      Hashtbl.replace w.w_pending i line;
      while Hashtbl.mem w.w_pending w.w_next do
        w.w_emit (Hashtbl.find w.w_pending w.w_next);
        Hashtbl.remove w.w_pending w.w_next;
        w.w_next <- w.w_next + 1
      done)

(* --- metrics ----------------------------------------------------------- *)

let m_instances_ok =
  lazy (Metrics.counter "sweep_instances_total" ~labels:[ ("status", "ok") ])

let m_instances_err =
  lazy (Metrics.counter "sweep_instances_total" ~labels:[ ("status", "error") ])

let m_rows = lazy (Metrics.counter "sweep_rows_total")
let m_sweeps = lazy (Metrics.counter "sweep_runs_total")
let g_progress = lazy (Metrics.fgauge "sweep_progress")

(* --- the engine -------------------------------------------------------- *)

type result = {
  rows : int;
  failures : int;
  duplicates : int;
  store_hits : int;
  elapsed_s : float;
}

let run ?(domains = 1) ?(chunk = 8) ?(shuffle = false) ?cache ?store
    ?source_file ~on_line ~env ~source spec =
  if domains < 1 then invalid_arg "Sweep.run: domains < 1";
  if chunk < 1 then invalid_arg "Sweep.run: chunk < 1";
  let t0 = Unix.gettimeofday () in
  Metrics.incr (Lazy.force m_sweeps);
  let program = Amg_lang.Parser.parse_program ?file:source_file source in
  let insts = Array.of_list (instances spec) in
  let n = Array.length insts in
  let duplicates = grid_size spec - n in
  let store_hits0 =
    match store with None -> 0 | Some st -> (Store.stats st).Store.hits
  in
  let tech_fp =
    lazy
      (Store.tech_fingerprint (Amg_tech.Tech_file.to_string (Env.tech env)))
  in
  let store_of params =
    Option.map
      (fun st ->
        (st, instance_signature ~tech:(Lazy.force tech_fp) spec.s_entity params))
      store
  in
  let scope = Optimize.env_scope env in
  let w =
    {
      w_lock = Mutex.create ();
      w_pending = Hashtbl.create 64;
      w_next = 0;
      w_emit = on_line;
    }
  in
  on_line (header_line spec ~rows:n);
  on_line (column_line spec);
  let failures = Atomic.make 0 in
  let completed = Atomic.make 0 in
  (* Failed rows also surface through the policy sink — in canonical row
     order, reported after the pool joins, so boundaries that drain the
     sink (CLI stderr, the daemon's response diagnostics) stay
     byte-deterministic for every schedule. *)
  let errs = Array.make (max n 1) None in
  let run_one i =
    let params = insts.(i) in
    Obs.count "sweep.instances" 1;
    let outcome, diags =
      run_instance ~env ~program ~entity:spec.s_entity ~mode:spec.s_mode
        ~cache ~scope ~store:(store_of params) params
    in
    (match outcome with
    | Ok _ -> Metrics.incr (Lazy.force m_instances_ok)
    | Error d ->
        errs.(i) <- Some d;
        Atomic.incr failures;
        Metrics.incr (Lazy.force m_instances_err));
    writer_push w i (render_row ~entity:spec.s_entity params outcome diags);
    Metrics.incr (Lazy.force m_rows);
    let done_ = Atomic.fetch_and_add completed 1 + 1 in
    Metrics.set_f (Lazy.force g_progress)
      (if n = 0 then 1. else float_of_int done_ /. float_of_int n)
  in
  (* Scheduling order: the walk itself, or a deterministically shuffled
     ablation of it.  Rows still leave in walk order either way. *)
  let sched = Array.init n Fun.id in
  if shuffle then begin
    let st = Random.State.make [| 0x535745; n |] in
    for i = n - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let tmp = sched.(i) in
      sched.(i) <- sched.(j);
      sched.(j) <- tmp
    done
  end;
  let n_chunks = (n + chunk - 1) / chunk in
  let chunks =
    Array.init n_chunks (fun c ->
        Array.sub sched (c * chunk) (min chunk (n - (c * chunk))))
  in
  if n > 0 then
    Pool.with_pool ~domains (fun pool ->
        ignore (Pool.map_array pool (fun group -> Array.iter run_one group) chunks));
  Array.iteri
    (fun i d ->
      Option.iter
        (fun (d : Diag.t) ->
          Policy.report
            { d with Diag.payload = ("row", string_of_int i) :: d.Diag.payload })
        d)
    errs;
  let store_hits =
    match store with
    | None -> 0
    | Some st -> (Store.stats st).Store.hits - store_hits0
  in
  {
    rows = n;
    failures = Atomic.get failures;
    duplicates;
    store_hits;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

(* --- result-file validation -------------------------------------------- *)

let split_csv line = String.split_on_char ',' line

let check_file path =
  let module J = Diag.Json in
  let ( let* ) = Result.bind in
  let read_lines () =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  match read_lines () with
  | exception Sys_error e -> Error e
  | [] -> Error "empty file: no schema header"
  | header :: rest ->
      let* j =
        Result.map_error (fun e -> "bad schema header: " ^ e)
          (J.of_string header)
      in
      let* () =
        match Option.bind (J.member "sweep" j) J.int with
        | Some 1 -> Ok ()
        | _ -> Error "bad schema header: missing \"sweep\":1"
      in
      let* cols =
        match J.member "columns" j with
        | Some (J.Jarr cols) ->
            List.fold_left
              (fun acc c ->
                let* acc = acc in
                match
                  ( Option.bind (J.member "name" c) J.str,
                    Option.bind (J.member "type" c) J.str )
                with
                | Some name, Some ty when List.mem ty [ "str"; "num"; "int" ]
                  ->
                    Ok ((name, ty) :: acc)
                | _ -> Error "bad schema header: malformed column entry")
              (Ok []) cols
            |> Result.map List.rev
        | _ -> Error "bad schema header: missing \"columns\""
      in
      let* announced =
        match Option.bind (J.member "rows" j) J.int with
        | Some r when r >= 0 -> Ok r
        | _ -> Error "bad schema header: missing \"rows\""
      in
      let* rows =
        match rest with
        | [] -> Error "missing column line"
        | col_line :: rows ->
            if col_line <> String.concat "," (List.map fst cols) then
              Error "column line does not match the schema header"
            else Ok rows
      in
      let ncols = List.length cols in
      let check_cell (name, ty) cell =
        let ok =
          match ty with
          | "str" -> csv_safe cell
          | "num" -> cell = "" || Option.is_some (float_of_string_opt cell)
          | "int" -> cell = "" || Option.is_some (int_of_string_opt cell)
          | _ -> false
        in
        if ok then Ok () else Error (Fmt.str "bad %s cell %S" name cell)
      in
      let* count =
        List.fold_left
          (fun acc row ->
            let* i = acc in
            let cells = split_csv row in
            if List.length cells <> ncols then
              Error (Fmt.str "row %d: %d cells, expected %d" i
                       (List.length cells) ncols)
            else
              let* () =
                List.fold_left2
                  (fun acc col cell ->
                    let* () = acc in
                    Result.map_error (Fmt.str "row %d: %s" i) (check_cell col cell))
                  (Ok ()) cols cells
              in
              Ok (i + 1))
          (Ok 0) rows
      in
      if count > announced then
        Error
          (Fmt.str "%d rows but the header announced %d" count announced)
      else Ok count
