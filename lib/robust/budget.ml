type t = {
  clock : unit -> float;
  real_clock : bool;
  deadline_at : float option;
  max_evals : int option;
  evals : int Atomic.t;
  stop_flag : bool Atomic.t;
  degraded_flag : bool Atomic.t;
}

let create ?deadline ?max_evals ?clock () =
  let real_clock, clock =
    match clock with
    | Some c -> (false, c)
    | None -> (true, Unix.gettimeofday)
  in
  let deadline_at = Option.map (fun d -> clock () +. d) deadline in
  {
    clock;
    real_clock;
    deadline_at;
    max_evals;
    evals = Atomic.make 0;
    stop_flag = Atomic.make false;
    degraded_flag = Atomic.make false;
  }

let stop t = Atomic.set t.stop_flag true
let stopped t = Atomic.get t.stop_flag

let poll t =
  match t.deadline_at with
  | Some d when t.clock () >= d -> stop t
  | _ -> ()

let spend t n =
  let total = n + Atomic.fetch_and_add t.evals n in
  match t.max_evals with
  | Some m when total > m -> stop t
  | _ -> ()

let spent t = Atomic.get t.evals

let would_exceed t n =
  match t.max_evals with Some m -> spent t + n > m | None -> false

let remaining_evals t =
  Option.map (fun m -> max 0 (m - spent t)) t.max_evals

let task_cancel t () =
  Atomic.get t.stop_flag
  ||
  match t.deadline_at with
  | Some d when t.real_clock && t.clock () >= d ->
      stop t;
      true
  | _ -> false

let mark_degraded t = Atomic.set t.degraded_flag true
let degraded t = Atomic.get t.degraded_flag
