type mode = Strict | Permissive

let current = Atomic.make Strict
let set_mode m = Atomic.set current m
let mode () = Atomic.get current
let permissive () = Atomic.get current = Permissive

let lock = Mutex.create ()
let sink : Diag.t list ref = ref []

let report d =
  Mutex.lock lock;
  sink := d :: !sink;
  Mutex.unlock lock

let drain () =
  Mutex.lock lock;
  let ds = List.rev !sink in
  sink := [];
  Mutex.unlock lock;
  ds

let reset () =
  set_mode Strict;
  ignore (drain ())
