type mode = Strict | Permissive

let current = Atomic.make Strict
let set_mode m = Atomic.set current m
let mode () = Atomic.get current
let permissive () = Atomic.get current = Permissive

let lock = Mutex.create ()
let sink : Diag.t list ref = ref []

(* Per-domain capture scope: while a [capture] body runs on this domain,
   reports land in its private list instead of the global sink, so
   parallel batch drivers can attribute diagnostics to the instance that
   raised them.  One level is enough; nested captures stack naturally
   because the key holds the innermost scope. *)
let capture_key : Diag.t list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let report d =
  match Domain.DLS.get capture_key with
  | Some scoped ->
      (* Only this domain mutates the scoped list: no lock needed. *)
      scoped := d :: !scoped
  | None ->
      Mutex.lock lock;
      sink := d :: !sink;
      Mutex.unlock lock

let capture f =
  let scoped = ref [] in
  let outer = Domain.DLS.get capture_key in
  Domain.DLS.set capture_key (Some scoped);
  let restore () = Domain.DLS.set capture_key outer in
  match f () with
  | v ->
      restore ();
      (v, List.rev !scoped)
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      restore ();
      (* Reports made before the raise still matter to the caller's
         failure handling: spill them to wherever reports now go. *)
      List.iter report (List.rev !scoped);
      Printexc.raise_with_backtrace e bt

let drain () =
  Mutex.lock lock;
  let ds = List.rev !sink in
  sink := [];
  Mutex.unlock lock;
  ds

let reset () =
  set_mode Strict;
  ignore (drain ())
