type severity = Error | Warning | Info

type subsystem =
  | Lang
  | Tech
  | Geometry
  | Layout
  | Compact
  | Route
  | Optimize
  | Parallel
  | Drc
  | Extract
  | Synth
  | Cli
  | Store
  | Internal

type span = { file : string option; line : int; col : int }

type t = {
  code : string;
  severity : severity;
  subsystem : subsystem;
  message : string;
  span : span option;
  hint : string option;
  payload : (string * string) list;
}

exception Fail of t

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let subsystems =
  [
    (Lang, "lang");
    (Tech, "tech");
    (Geometry, "geometry");
    (Layout, "layout");
    (Compact, "compact");
    (Route, "route");
    (Optimize, "optimize");
    (Parallel, "parallel");
    (Drc, "drc");
    (Extract, "extract");
    (Synth, "synth");
    (Cli, "cli");
    (Store, "store");
    (Internal, "internal");
  ]

let subsystem_to_string s = List.assoc s subsystems

let subsystem_of_string name =
  List.find_map (fun (s, n) -> if String.equal n name then Some s else None) subsystems

let span ?file ?(col = 0) line = { file; line; col }

let v ?(severity = Error) ?span ?hint ?(payload = []) subsystem ~code message =
  { code; severity; subsystem; message; span; hint; payload }

let fail ?span ?hint ?payload subsystem ~code message =
  raise (Fail (v ?span ?hint ?payload subsystem ~code message))

let failf ?span ?hint ?payload subsystem ~code fmt =
  Fmt.kstr (fun message -> fail ?span ?hint ?payload subsystem ~code message) fmt

let line_of d = match d.span with Some s -> s.line | None -> 0
let col_of d = match d.span with Some s -> s.col | None -> 0

let span_equal a b =
  Option.equal String.equal a.file b.file && a.line = b.line && a.col = b.col

let equal a b =
  String.equal a.code b.code
  && a.severity = b.severity
  && a.subsystem = b.subsystem
  && String.equal a.message b.message
  && Option.equal span_equal a.span b.span
  && Option.equal String.equal a.hint b.hint
  && List.equal
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
       a.payload b.payload

let pp_span ppf s =
  (match s.file with Some f -> Fmt.pf ppf "%s:" f | None -> ());
  Fmt.pf ppf "%d" s.line;
  if s.col > 0 then Fmt.pf ppf ":%d" s.col

let pp ppf d =
  Fmt.pf ppf "%s[%s:%s]" (severity_to_string d.severity)
    (subsystem_to_string d.subsystem)
    d.code;
  (match d.span with Some s -> Fmt.pf ppf " %a" pp_span s | None -> ());
  Fmt.pf ppf ": %s" d.message;
  (match d.hint with Some h -> Fmt.pf ppf "@ (hint: %s)" h | None -> ());
  match d.payload with
  | [] -> ()
  | kvs ->
      Fmt.pf ppf "@ {%a}"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
        kvs

let to_string d = Fmt.str "%a" pp d

let fatal_exn = function
  | Out_of_memory | Sys.Break -> true
  | _ -> false

let guard ?convert f =
  match f () with
  | x -> Stdlib.Ok x
  | exception Fail d -> Stdlib.Error d
  | exception e when not (fatal_exn e) -> (
      let bt = Printexc.get_raw_backtrace () in
      match Option.bind convert (fun c -> c e) with
      | Some d -> Stdlib.Error d
      | None -> Printexc.raise_with_backtrace e bt)

(* --- JSON encoding --------------------------------------------------- *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_diag b d =
  Buffer.add_string b "{\"code\":";
  buf_add_json_string b d.code;
  Buffer.add_string b ",\"severity\":";
  buf_add_json_string b (severity_to_string d.severity);
  Buffer.add_string b ",\"subsystem\":";
  buf_add_json_string b (subsystem_to_string d.subsystem);
  Buffer.add_string b ",\"message\":";
  buf_add_json_string b d.message;
  Buffer.add_string b ",\"span\":";
  (match d.span with
  | None -> Buffer.add_string b "null"
  | Some s ->
      Buffer.add_string b "{\"file\":";
      (match s.file with
      | None -> Buffer.add_string b "null"
      | Some f -> buf_add_json_string b f);
      Buffer.add_string b (Printf.sprintf ",\"line\":%d,\"col\":%d}" s.line s.col));
  Buffer.add_string b ",\"hint\":";
  (match d.hint with
  | None -> Buffer.add_string b "null"
  | Some h -> buf_add_json_string b h);
  Buffer.add_string b ",\"payload\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_json_string b v)
    d.payload;
  Buffer.add_string b "}}"

let to_json d =
  let b = Buffer.create 256 in
  buf_add_diag b d;
  Buffer.contents b

let list_to_json ?(degraded = false) ds =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"version\":1,\"degraded\":";
  Buffer.add_string b (if degraded then "true" else "false");
  Buffer.add_string b ",\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_diag b d)
    ds;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- JSON decoding --------------------------------------------------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let err msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> err (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then (
      pos := !pos + l;
      v)
    else err (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then err "unterminated escape"
            else
              let e = s.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' ->
                  Buffer.add_char b e;
                  go ()
              | 'n' ->
                  Buffer.add_char b '\n';
                  go ()
              | 'r' ->
                  Buffer.add_char b '\r';
                  go ()
              | 't' ->
                  Buffer.add_char b '\t';
                  go ()
              | 'b' ->
                  Buffer.add_char b '\b';
                  go ()
              | 'f' ->
                  Buffer.add_char b '\012';
                  go ()
              | 'u' ->
                  if !pos + 4 > n then err "bad \\u escape"
                  else begin
                    let hex = String.sub s !pos 4 in
                    pos := !pos + 4;
                    let code =
                      try int_of_string ("0x" ^ hex)
                      with _ -> err "bad \\u escape"
                    in
                    (* Only BMP codepoints; encode as UTF-8. *)
                    if code < 0x80 then Buffer.add_char b (Char.chr code)
                    else if code < 0x800 then begin
                      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                    end
                    else begin
                      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                      Buffer.add_char b
                        (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                    end;
                    go ()
                  end
              | _ -> err "bad escape")
        | c ->
            Buffer.add_char b c;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then err "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> err "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Jobj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> err "expected ',' or '}'"
          in
          Jobj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Jarr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> err "expected ',' or ']'"
          in
          Jarr (elems [])
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> err "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then err "trailing garbage";
  v

let field name = function
  | Jobj kvs -> List.assoc_opt name kvs
  | _ -> None

let as_string = function Jstr s -> Some s | _ -> None
let as_int = function Jnum f -> Some (int_of_float f) | _ -> None

let diag_of_value v =
  let ( let* ) o f = match o with Some x -> f x | None -> Stdlib.Error "malformed diagnostic" in
  let* code = Option.bind (field "code" v) as_string in
  let* severity =
    Option.bind (Option.bind (field "severity" v) as_string) severity_of_string
  in
  let* subsystem =
    Option.bind (Option.bind (field "subsystem" v) as_string) subsystem_of_string
  in
  let* message = Option.bind (field "message" v) as_string in
  let span =
    match field "span" v with
    | Some (Jobj _ as sp) ->
        let file = Option.bind (field "file" sp) as_string in
        let line = Option.value ~default:0 (Option.bind (field "line" sp) as_int) in
        let col = Option.value ~default:0 (Option.bind (field "col" sp) as_int) in
        Some { file; line; col }
    | _ -> None
  in
  let hint = Option.bind (field "hint" v) (fun h -> as_string h) in
  let payload =
    match field "payload" v with
    | Some (Jobj kvs) ->
        List.filter_map
          (fun (k, pv) -> Option.map (fun s -> (k, s)) (as_string pv))
          kvs
    | _ -> []
  in
  Stdlib.Ok { code; severity; subsystem; message; span; hint; payload }

let of_json s =
  match parse_json s with
  | v -> diag_of_value v
  | exception Bad_json msg -> Stdlib.Error msg

let list_of_json s =
  match parse_json s with
  | exception Bad_json msg -> Stdlib.Error msg
  | v -> (
      let degraded =
        match field "degraded" v with Some (Jbool b) -> b | _ -> false
      in
      match field "diagnostics" v with
      | Some (Jarr items) ->
          let rec go acc = function
            | [] -> Stdlib.Ok (degraded, List.rev acc)
            | item :: rest -> (
                match diag_of_value item with
                | Stdlib.Ok d -> go (d :: acc) rest
                | Stdlib.Error msg -> Stdlib.Error msg)
          in
          go [] items
      | _ -> Stdlib.Error "missing diagnostics array")

(* --- public JSON value layer ------------------------------------------ *)

module Json = struct
  type t = json =
    | Jnull
    | Jbool of bool
    | Jnum of float
    | Jstr of string
    | Jarr of t list
    | Jobj of (string * t) list

  let of_string s =
    match parse_json s with
    | v -> Stdlib.Ok v
    | exception Bad_json msg -> Stdlib.Error msg

  (* Shortest image that parses back to the same float.  The serving
     protocol requires byte-deterministic responses, so the image must
     depend only on the value.  JSON has no non-finite numbers, so nan
     and the infinities encode as [null] — never as the unparsable
     nan/inf images printf would produce. *)
  let float_to_string f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then s
      else
        let s = Printf.sprintf "%.16g" f in
        if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let rec to_buffer b = function
    | Jnull -> Buffer.add_string b "null"
    | Jbool true -> Buffer.add_string b "true"
    | Jbool false -> Buffer.add_string b "false"
    | Jnum f -> Buffer.add_string b (float_to_string f)
    | Jstr s -> buf_add_json_string b s
    | Jarr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            to_buffer b v)
          items;
        Buffer.add_char b ']'
    | Jobj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            buf_add_json_string b k;
            Buffer.add_char b ':';
            to_buffer b v)
          kvs;
        Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 256 in
    to_buffer b v;
    Buffer.contents b

  let member = field
  let str = as_string
  let num = function Jnum f -> Some f | _ -> None
  let int = as_int
  let bool = function Jbool b -> Some b | _ -> None
end

let to_value d =
  let open Json in
  Jobj
    [
      ("code", Jstr d.code);
      ("severity", Jstr (severity_to_string d.severity));
      ("subsystem", Jstr (subsystem_to_string d.subsystem));
      ("message", Jstr d.message);
      ( "span",
        match d.span with
        | None -> Jnull
        | Some s ->
            Jobj
              [
                ("file", match s.file with None -> Jnull | Some f -> Jstr f);
                ("line", Jnum (float_of_int s.line));
                ("col", Jnum (float_of_int s.col));
              ] );
      ("hint", match d.hint with None -> Jnull | Some h -> Jstr h);
      ("payload", Jobj (List.map (fun (k, v) -> (k, Jstr v)) d.payload));
    ]

let of_value = diag_of_value
