(** Wire protocol of the generator service ([amgend]).

    Newline-delimited JSON: each request and each response is one JSON
    object on one line.  The response [status] reuses the CLI exit-code
    contract (0 ok / 1 diagnostics / 2 rejected / 3 degraded), and
    diagnostics travel in the same schema as the versioned {!Diag} report,
    so a service client and a CLI caller read the same structures.

    Encoding is deterministic: optional fields are omitted when absent,
    the remaining fields keep a fixed order, and floats print as the
    shortest round-tripping image ({!Diag.Json}).  Two equal values always
    encode to the same bytes — the serving determinism tests rely on
    it. *)

type param = Pnum of float | Pstr of string
(** Entity parameter value, like the CLI's [-p k=v] but typed: JSON
    numbers stay numbers, JSON strings stay strings. *)

type opt_mode = Orders | Bb | Local
(** Compaction-order search, as [amgen build --optimize]. *)

type payload_format = Cif | Svg | No_payload
(** What layout rendering the response should carry. *)

type op = Build | Sweep | Ping | Stop | Metrics | Health
(** [Build] generates a module; [Sweep] runs a bounded parameter-grid
    sweep server-side, streaming one {!encode_sweep_row} event per result
    line before the final response; [Ping] answers immediately (liveness);
    [Stop] asks the daemon to shut down gracefully.  [Metrics] and
    [Health] are scrape ops: the daemon answers them without entering
    the compute queue — [Metrics] with a registry snapshot (Prometheus
    text, or JSON when the request sets [json]), [Health] with a small
    JSON liveness object (uptime, in-flight, queue depth, tenant count,
    pool size). *)

type request = {
  id : string option;  (** Echoed verbatim in the response. *)
  op : op;
  entity : string;  (** Entity name; ignored for ping/stop. *)
  params : (string * param) list;
  optimize : opt_mode option;
  max_evals : int option;  (** Per-request {!Budget} eval cap. *)
  max_time : float option;  (** Per-request deadline, seconds. *)
  jobs : int option;  (** Domains for the search pool. *)
  tenant : string option;  (** Cache scope; [None] = shared default. *)
  format : payload_format;
  permissive : bool;  (** Per-request {!Policy} mode. *)
  stats : bool;
      (** Ask for timing/cache counters in the response.  Responses with
          [stats = false] are byte-deterministic; the stats object is the
          one deliberately nondeterministic field. *)
  json : bool;
      (** For [Metrics]: answer with the JSON encoding of the registry
          snapshot instead of the Prometheus text exposition. *)
  inject : string option;
      (** Fault-injection spec ([site@hit,...]), for drills and tests. *)
  spec : string option;
      (** For [Sweep]: the sweep spec document (JSON text), verbatim. *)
}

val build :
  ?id:string ->
  ?params:(string * param) list ->
  ?optimize:opt_mode ->
  ?max_evals:int ->
  ?max_time:float ->
  ?jobs:int ->
  ?tenant:string ->
  ?format:payload_format ->
  ?permissive:bool ->
  ?stats:bool ->
  ?inject:string ->
  string ->
  request
(** [build entity] is a build request (default format [Cif]). *)

val sweep :
  ?id:string -> ?jobs:int -> ?tenant:string -> ?stats:bool -> string -> request
(** [sweep spec] runs the spec document server-side; the daemon streams
    the result file line by line as row events, then the response. *)

val ping : ?id:string -> unit -> request
val stop : ?id:string -> unit -> request

val metrics : ?id:string -> ?json:bool -> unit -> request
(** Scrape the metrics registry ([json] defaults to [false]:
    Prometheus text). *)

val health : ?id:string -> unit -> request
(** Liveness/readiness probe. *)

type server_stats = {
  elapsed_ms : float;  (** Wall time inside the request handler. *)
  queue_depth : int;  (** Requests ahead in the queue at admission. *)
  cache_hits : int;  (** Prefix-cache hits during this request. *)
  cache_misses : int;  (** Prefix-cache misses during this request. *)
}

type response = {
  id : string option;
  status : int;  (** 0 ok / 1 diagnostics / 2 rejected / 3 degraded. *)
  rating : float option;  (** Rating of the emitted layout. *)
  format : payload_format;
  payload : string option;  (** CIF or SVG text per [format]. *)
  diagnostics : Diag.t list;
  stats : server_stats option;
}

val status_ok : int
val status_diag : int
val status_reject : int
val status_degraded : int

val response :
  ?id:string ->
  ?rating:float ->
  ?format:payload_format ->
  ?payload:string ->
  ?diagnostics:Diag.t list ->
  ?stats:server_stats ->
  int ->
  response
(** [response status] builds a response value (default [No_payload]). *)

val encode_request : request -> string
(** One line of JSON, without the trailing newline. *)

val decode_request : string -> (request, string) Stdlib.result
val encode_response : response -> string
val decode_response : string -> (response, string) Stdlib.result

val encode_sweep_row : index:int -> string -> string
(** One streamed sweep output line ([index] counts from 0 and includes
    the two header lines), as one JSON object on one line. *)

val decode_sweep_row : string -> (int * string) option
(** Recognise a sweep row event; [None] means the line is something else
    (in particular the final response). *)
