(* Wire protocol of the generator service: newline-delimited JSON over the
   generic value layer in Diag.Json.  Encoders emit optional fields only
   when present and keep a fixed field order so equal values encode to
   equal bytes (the serving determinism contract). *)

module J = Diag.Json

type param = Pnum of float | Pstr of string
type opt_mode = Orders | Bb | Local
type payload_format = Cif | Svg | No_payload
type op = Build | Sweep | Ping | Stop | Metrics | Health

type request = {
  id : string option;
  op : op;
  entity : string;
  params : (string * param) list;
  optimize : opt_mode option;
  max_evals : int option;
  max_time : float option;
  jobs : int option;
  tenant : string option;
  format : payload_format;
  permissive : bool;
  stats : bool;
  json : bool;
  inject : string option;
  spec : string option;
}

let build ?id ?(params = []) ?optimize ?max_evals ?max_time ?jobs ?tenant
    ?(format = Cif) ?(permissive = false) ?(stats = false) ?inject entity =
  {
    id;
    op = Build;
    entity;
    params;
    optimize;
    max_evals;
    max_time;
    jobs;
    tenant;
    format;
    permissive;
    stats;
    json = false;
    inject;
    spec = None;
  }

let sweep ?id ?jobs ?tenant ?(stats = false) spec =
  {
    id;
    op = Sweep;
    entity = "";
    params = [];
    optimize = None;
    max_evals = None;
    max_time = None;
    jobs;
    tenant;
    format = No_payload;
    permissive = false;
    stats;
    json = false;
    inject = None;
    spec = Some spec;
  }

let control op ?id ?(json = false) () =
  {
    id;
    op;
    entity = "";
    params = [];
    optimize = None;
    max_evals = None;
    max_time = None;
    jobs = None;
    tenant = None;
    format = No_payload;
    permissive = false;
    stats = false;
    json;
    inject = None;
    spec = None;
  }

let ping ?id () = control Ping ?id ()
let stop ?id () = control Stop ?id ()
let metrics ?id ?json () = control Metrics ?id ?json ()
let health ?id () = control Health ?id ()

type server_stats = {
  elapsed_ms : float;
  queue_depth : int;
  cache_hits : int;
  cache_misses : int;
}

type response = {
  id : string option;
  status : int;
  rating : float option;
  format : payload_format;
  payload : string option;
  diagnostics : Diag.t list;
  stats : server_stats option;
}

let status_ok = 0
let status_diag = 1
let status_reject = 2
let status_degraded = 3

let response ?id ?rating ?(format = No_payload) ?payload ?(diagnostics = [])
    ?stats status =
  { id; status; rating; format; payload; diagnostics; stats }

(* --- names ------------------------------------------------------------ *)

let op_to_string = function
  | Build -> "build"
  | Sweep -> "sweep"
  | Ping -> "ping"
  | Stop -> "stop"
  | Metrics -> "metrics"
  | Health -> "health"

let op_of_string = function
  | "build" -> Some Build
  | "sweep" -> Some Sweep
  | "ping" -> Some Ping
  | "stop" -> Some Stop
  | "metrics" -> Some Metrics
  | "health" -> Some Health
  | _ -> None

let opt_to_string = function Orders -> "orders" | Bb -> "bb" | Local -> "local"

let opt_of_string = function
  | "orders" -> Some Orders
  | "bb" -> Some Bb
  | "local" -> Some Local
  | _ -> None

let format_to_string = function
  | Cif -> "cif"
  | Svg -> "svg"
  | No_payload -> "none"

let format_of_string = function
  | "cif" -> Some Cif
  | "svg" -> Some Svg
  | "none" -> Some No_payload
  | _ -> None

(* The format a decoder assumes when the field is absent; the encoder
   omits the field exactly in that case. *)
let default_format = function
  | Build -> Cif
  | Sweep | Ping | Stop | Metrics | Health -> No_payload

(* --- encoding --------------------------------------------------------- *)

let encode_request (r : request) =
  let open J in
  let fields =
    List.filter_map Fun.id
      [
        Option.map (fun s -> ("id", Jstr s)) r.id;
        Some ("op", Jstr (op_to_string r.op));
        (if r.entity <> "" then Some ("entity", Jstr r.entity) else None);
        (if r.params <> [] then
           Some
             ( "params",
               Jobj
                 (List.map
                    (fun (k, p) ->
                      (k, match p with Pnum f -> Jnum f | Pstr s -> Jstr s))
                    r.params) )
         else None);
        Option.map (fun m -> ("optimize", Jstr (opt_to_string m))) r.optimize;
        Option.map (fun n -> ("max_evals", Jnum (float_of_int n))) r.max_evals;
        Option.map (fun f -> ("max_time", Jnum f)) r.max_time;
        Option.map (fun n -> ("jobs", Jnum (float_of_int n))) r.jobs;
        Option.map (fun s -> ("tenant", Jstr s)) r.tenant;
        (if r.format <> default_format r.op then
           Some ("format", Jstr (format_to_string r.format))
         else None);
        (if r.permissive then Some ("permissive", Jbool true) else None);
        (if r.stats then Some ("stats", Jbool true) else None);
        (if r.json then Some ("json", Jbool true) else None);
        Option.map (fun s -> ("inject", Jstr s)) r.inject;
        Option.map (fun s -> ("spec", Jstr s)) r.spec;
      ]
  in
  J.to_string (Jobj fields)

let encode_response (r : response) =
  let open J in
  let fields =
    List.filter_map Fun.id
      [
        Option.map (fun s -> ("id", Jstr s)) r.id;
        Some ("status", Jnum (float_of_int r.status));
        Option.map (fun f -> ("rating", Jnum f)) r.rating;
        (if r.format <> No_payload then
           Some ("format", Jstr (format_to_string r.format))
         else None);
        Option.map (fun s -> ("payload", Jstr s)) r.payload;
        Some ("diagnostics", Jarr (List.map Diag.to_value r.diagnostics));
        Option.map
          (fun s ->
            ( "stats",
              Jobj
                [
                  ("elapsed_ms", Jnum s.elapsed_ms);
                  ("queue_depth", Jnum (float_of_int s.queue_depth));
                  ("cache_hits", Jnum (float_of_int s.cache_hits));
                  ("cache_misses", Jnum (float_of_int s.cache_misses));
                ] ))
          r.stats;
      ]
  in
  J.to_string (Jobj fields)

(* --- decoding --------------------------------------------------------- *)

let ( let* ) = Result.bind

let opt_str name v =
  match J.member name v with
  | None | Some J.Jnull -> Ok None
  | Some (J.Jstr s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

(* [int_of_float] is unspecified for nan and for doubles outside
   [min_int, max_int], so integer fields reject anything that is not a
   finite integral double in a sane range instead of decoding to an
   arbitrary value. *)
let int_bound = 1e9

let as_int name f =
  if Float.is_integer f && Float.abs f <= int_bound then Ok (int_of_float f)
  else
    Error
      (Printf.sprintf "field %S must be an integer with magnitude at most %.0f"
         name int_bound)

let opt_int name v =
  match J.member name v with
  | None | Some J.Jnull -> Ok None
  | Some (J.Jnum f) ->
      let* n = as_int name f in
      Ok (Some n)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)

let opt_num name v =
  match J.member name v with
  | None | Some J.Jnull -> Ok None
  | Some (J.Jnum f) ->
      if Float.is_finite f then Ok (Some f)
      else Error (Printf.sprintf "field %S must be a finite number" name)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)

let opt_flag name v =
  match J.member name v with
  | None | Some J.Jnull -> Ok false
  | Some (J.Jbool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let opt_enum name of_string ~default v =
  match J.member name v with
  | None | Some J.Jnull -> Ok default
  | Some (J.Jstr s) -> (
      match of_string s with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S: unknown value %S" name s))
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let decode_request line =
  let* v = J.of_string line in
  match v with
  | J.Jobj _ ->
      let* id = opt_str "id" v in
      let* op =
        match J.member "op" v with
        | Some (J.Jstr s) -> (
            match op_of_string s with
            | Some op -> Ok op
            | None -> Error (Printf.sprintf "field \"op\": unknown value %S" s))
        | Some _ -> Error "field \"op\" must be a string"
        | None -> Error "missing field \"op\""
      in
      let* entity =
        match J.member "entity" v with
        | None | Some J.Jnull -> Ok ""
        | Some (J.Jstr s) -> Ok s
        | Some _ -> Error "field \"entity\" must be a string"
      in
      let* params =
        match J.member "params" v with
        | None | Some J.Jnull -> Ok []
        | Some (J.Jobj kvs) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | (k, J.Jnum f) :: rest -> go ((k, Pnum f) :: acc) rest
              | (k, J.Jstr s) :: rest -> go ((k, Pstr s) :: acc) rest
              | (k, _) :: _ ->
                  Error
                    (Printf.sprintf "parameter %S must be a number or a string"
                       k)
            in
            go [] kvs
        | Some _ -> Error "field \"params\" must be an object"
      in
      let* optimize =
        match J.member "optimize" v with
        | None | Some J.Jnull -> Ok None
        | Some (J.Jstr s) -> (
            match opt_of_string s with
            | Some m -> Ok (Some m)
            | None ->
                Error
                  (Printf.sprintf "field \"optimize\": unknown value %S" s))
        | Some _ -> Error "field \"optimize\" must be a string"
      in
      let* max_evals = opt_int "max_evals" v in
      let* max_time = opt_num "max_time" v in
      let* jobs = opt_int "jobs" v in
      let* tenant = opt_str "tenant" v in
      let* format =
        opt_enum "format" format_of_string ~default:(default_format op) v
      in
      let* permissive = opt_flag "permissive" v in
      let* stats = opt_flag "stats" v in
      let* json = opt_flag "json" v in
      let* inject = opt_str "inject" v in
      let* spec = opt_str "spec" v in
      Ok
        {
          id;
          op;
          entity;
          params;
          optimize;
          max_evals;
          max_time;
          jobs;
          tenant;
          format;
          permissive;
          stats;
          json;
          inject;
          spec;
        }
  | _ -> Error "request must be a JSON object"

let decode_response line =
  let* v = J.of_string line in
  match v with
  | J.Jobj _ ->
      let* id = opt_str "id" v in
      let* status =
        match J.member "status" v with
        | Some (J.Jnum f) -> as_int "status" f
        | Some _ -> Error "field \"status\" must be a number"
        | None -> Error "missing field \"status\""
      in
      let* rating = opt_num "rating" v in
      let* format = opt_enum "format" format_of_string ~default:No_payload v in
      let* payload = opt_str "payload" v in
      let* diagnostics =
        match J.member "diagnostics" v with
        | None | Some J.Jnull -> Ok []
        | Some (J.Jarr items) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | item :: rest ->
                  let* d = Diag.of_value item in
                  go (d :: acc) rest
            in
            go [] items
        | Some _ -> Error "field \"diagnostics\" must be an array"
      in
      let* stats =
        match J.member "stats" v with
        | None | Some J.Jnull -> Ok None
        | Some (J.Jobj _ as s) ->
            let need name =
              match J.member name s with
              | Some (J.Jnum f) -> Ok f
              | _ ->
                  Error (Printf.sprintf "stats field %S must be a number" name)
            in
            let need_int name =
              let* f = need name in
              as_int name f
            in
            let* elapsed_ms = need "elapsed_ms" in
            let* queue_depth = need_int "queue_depth" in
            let* cache_hits = need_int "cache_hits" in
            let* cache_misses = need_int "cache_misses" in
            Ok (Some { elapsed_ms; queue_depth; cache_hits; cache_misses })
        | Some _ -> Error "field \"stats\" must be an object"
      in
      Ok { id; status; rating; format; payload; diagnostics; stats }
  | _ -> Error "response must be a JSON object"

(* --- sweep row events --------------------------------------------------

   While a sweep runs, the daemon interleaves one row event per output
   line before the final response.  Clients tell the two apart by the
   ["row"] member: responses never carry one. *)

let encode_sweep_row ~index line =
  J.to_string
    (J.Jobj [ ("row", J.Jnum (float_of_int index)); ("line", J.Jstr line) ])

let decode_sweep_row s =
  match J.of_string s with
  | Error _ -> None
  | Ok v -> (
      match (J.member "row" v, J.member "line" v) with
      | Some (J.Jnum f), Some (J.Jstr line)
        when Float.is_integer f && Float.abs f <= int_bound ->
          Some (int_of_float f, line)
      | _ -> None)
