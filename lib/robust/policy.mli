(** Global failure policy and diagnostic sink.

    [Strict] (the default) keeps historical behavior: any placement failure
    escapes as an exception.  [Permissive] lets the compactor degrade per
    placement — retry the opposite direction, then skip the object and
    {!report} a diagnostic — so one bad placement cannot sink a whole
    unattended run.  The sink is thread-safe; boundaries {!drain} it into the
    diagnostics report. *)

type mode = Strict | Permissive

val set_mode : mode -> unit
val mode : unit -> mode
val permissive : unit -> bool

val report : Diag.t -> unit
(** Append a diagnostic to the global sink. *)

val drain : unit -> Diag.t list
(** Take (and clear) the sink, in report order. *)

val reset : unit -> unit
(** Back to [Strict] with an empty sink. *)
