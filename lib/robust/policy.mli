(** Global failure policy and diagnostic sink.

    [Strict] (the default) keeps historical behavior: any placement failure
    escapes as an exception.  [Permissive] lets the compactor degrade per
    placement — retry the opposite direction, then skip the object and
    {!report} a diagnostic — so one bad placement cannot sink a whole
    unattended run.  The sink is thread-safe; boundaries {!drain} it into the
    diagnostics report. *)

type mode = Strict | Permissive

val set_mode : mode -> unit
val mode : unit -> mode
val permissive : unit -> bool

val report : Diag.t -> unit
(** Append a diagnostic to the global sink — or, inside a {!capture}
    running on the calling domain, to that capture's scoped list. *)

val capture : (unit -> 'a) -> 'a * Diag.t list
(** [capture f] runs [f ()] with a private, domain-local diagnostic
    scope: every {!report} made on this domain during the call is
    collected and returned (in report order) instead of entering the
    global sink.  Captures nest; other domains are unaffected.  If [f]
    raises, the diagnostics reported so far are spilled to the enclosing
    scope (or the global sink) before the exception is re-raised. *)

val drain : unit -> Diag.t list
(** Take (and clear) the sink, in report order. *)

val reset : unit -> unit
(** Back to [Strict] with an empty sink. *)
