(** Typed diagnostics: the one error currency of the whole generator.

    Every user-facing failure carries a stable error [code], a [severity], the
    [subsystem] that raised it, an optional source [span] (for language and
    technology files), an optional remediation [hint] and a structured string
    [payload].  Raise sites use {!fail} / {!failf}; process boundaries catch
    {!Fail} (or call {!guard}) and render with {!pp} or {!to_json}.

    [Env.Rejected] is {e not} a diagnostic: it is the backtracking control
    flow of the variant engine and must keep flowing through [CHOOSE]. *)

type severity = Error | Warning | Info

type subsystem =
  | Lang
  | Tech
  | Geometry
  | Layout
  | Compact
  | Route
  | Optimize
  | Parallel
  | Drc
  | Extract
  | Synth
  | Cli
  | Store
  | Internal

type span = { file : string option; line : int; col : int }
(** 1-based line and column; [col = 0] means "column unknown". *)

type t = {
  code : string;  (** stable dotted identifier, e.g. ["lang.parse.expected"] *)
  severity : severity;
  subsystem : subsystem;
  message : string;
  span : span option;
  hint : string option;
  payload : (string * string) list;
}

exception Fail of t

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val subsystem_to_string : subsystem -> string
val subsystem_of_string : string -> subsystem option

val span : ?file:string -> ?col:int -> int -> span
(** [span ?file ?col line] builds a source span. *)

val v :
  ?severity:severity ->
  ?span:span ->
  ?hint:string ->
  ?payload:(string * string) list ->
  subsystem ->
  code:string ->
  string ->
  t
(** Build a diagnostic value (default severity [Error]). *)

val fail :
  ?span:span ->
  ?hint:string ->
  ?payload:(string * string) list ->
  subsystem ->
  code:string ->
  string ->
  'a
(** Raise {!Fail} with an [Error]-severity diagnostic. *)

val failf :
  ?span:span ->
  ?hint:string ->
  ?payload:(string * string) list ->
  subsystem ->
  code:string ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Like {!fail} with a format string for the message. *)

val line_of : t -> int
(** Line of the span, or 0 when the diagnostic has no span. *)

val col_of : t -> int
(** Column of the span, or 0 when unknown. *)

val equal : t -> t -> bool
val pp_span : Format.formatter -> span -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val guard : ?convert:(exn -> t option) -> (unit -> 'a) -> ('a, t) Stdlib.result
(** [guard f] runs [f] and catches {!Fail} as [Error d].  [?convert] maps
    other exceptions to diagnostics; exceptions it declines (and asynchronous
    ones like [Out_of_memory]) are re-raised with their backtrace. *)

val to_json : t -> string
(** Single-line JSON object for one diagnostic. *)

val list_to_json : ?degraded:bool -> t list -> string
(** Report document: [{"version":1,"degraded":bool,"diagnostics":[...]}]. *)

val of_json : string -> (t, string) Stdlib.result
val list_of_json : string -> (bool * t list, string) Stdlib.result
(** Parse a report document back; returns [(degraded, diagnostics)]. *)

(** {1 Generic JSON values}

    The hand-rolled JSON layer the report document and the serving wire
    protocol ({!Wire}) share.  The writer is deterministic: object fields
    are emitted in construction order and each float prints as the
    shortest image that parses back to the same value, so equal values
    always serialize to equal bytes. *)
module Json : sig
  type t =
    | Jnull
    | Jbool of bool
    | Jnum of float
    | Jstr of string
    | Jarr of t list
    | Jobj of (string * t) list

  val of_string : string -> (t, string) Stdlib.result
  (** Parse one complete JSON document (rejects trailing garbage). *)

  val to_buffer : Buffer.t -> t -> unit
  val to_string : t -> string

  val member : string -> t -> t option
  (** Object field lookup; [None] on non-objects and missing keys. *)

  val str : t -> string option
  val num : t -> float option
  val int : t -> int option
  val bool : t -> bool option
end

val to_value : t -> Json.t
(** The diagnostic as a JSON value;
    [Json.to_string (to_value d) = to_json d]. *)

val of_value : Json.t -> (t, string) Stdlib.result
