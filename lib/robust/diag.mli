(** Typed diagnostics: the one error currency of the whole generator.

    Every user-facing failure carries a stable error [code], a [severity], the
    [subsystem] that raised it, an optional source [span] (for language and
    technology files), an optional remediation [hint] and a structured string
    [payload].  Raise sites use {!fail} / {!failf}; process boundaries catch
    {!Fail} (or call {!guard}) and render with {!pp} or {!to_json}.

    [Env.Rejected] is {e not} a diagnostic: it is the backtracking control
    flow of the variant engine and must keep flowing through [CHOOSE]. *)

type severity = Error | Warning | Info

type subsystem =
  | Lang
  | Tech
  | Geometry
  | Layout
  | Compact
  | Route
  | Optimize
  | Parallel
  | Drc
  | Extract
  | Synth
  | Cli
  | Internal

type span = { file : string option; line : int; col : int }
(** 1-based line and column; [col = 0] means "column unknown". *)

type t = {
  code : string;  (** stable dotted identifier, e.g. ["lang.parse.expected"] *)
  severity : severity;
  subsystem : subsystem;
  message : string;
  span : span option;
  hint : string option;
  payload : (string * string) list;
}

exception Fail of t

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val subsystem_to_string : subsystem -> string
val subsystem_of_string : string -> subsystem option

val span : ?file:string -> ?col:int -> int -> span
(** [span ?file ?col line] builds a source span. *)

val v :
  ?severity:severity ->
  ?span:span ->
  ?hint:string ->
  ?payload:(string * string) list ->
  subsystem ->
  code:string ->
  string ->
  t
(** Build a diagnostic value (default severity [Error]). *)

val fail :
  ?span:span ->
  ?hint:string ->
  ?payload:(string * string) list ->
  subsystem ->
  code:string ->
  string ->
  'a
(** Raise {!Fail} with an [Error]-severity diagnostic. *)

val failf :
  ?span:span ->
  ?hint:string ->
  ?payload:(string * string) list ->
  subsystem ->
  code:string ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Like {!fail} with a format string for the message. *)

val line_of : t -> int
(** Line of the span, or 0 when the diagnostic has no span. *)

val col_of : t -> int
(** Column of the span, or 0 when unknown. *)

val equal : t -> t -> bool
val pp_span : Format.formatter -> span -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val guard : ?convert:(exn -> t option) -> (unit -> 'a) -> ('a, t) Stdlib.result
(** [guard f] runs [f] and catches {!Fail} as [Error d].  [?convert] maps
    other exceptions to diagnostics; exceptions it declines (and asynchronous
    ones like [Out_of_memory]) are re-raised with their backtrace. *)

val to_json : t -> string
(** Single-line JSON object for one diagnostic. *)

val list_to_json : ?degraded:bool -> t list -> string
(** Report document: [{"version":1,"degraded":bool,"diagnostics":[...]}]. *)

val of_json : string -> (t, string) Stdlib.result
val list_of_json : string -> (bool * t list, string) Stdlib.result
(** Parse a report document back; returns [(degraded, diagnostics)]. *)
