(** Cooperative wall-clock / evaluation budgets for the optimization layer.

    A budget is polled by the {e coordinator} of a search at round or batch
    boundaries ({!poll} reads the clock and latches {!stopped}), and by pool
    {e tasks} through the closure returned by {!task_cancel}.  The split
    matters for determinism: with an injected [?clock] (tests), tasks only
    observe the latched flag, so cancellation can only happen at coordinator
    boundaries and the same seed yields the same degraded result for every
    domain count.  With the real clock, tasks additionally check the deadline
    themselves so a wall-clock overrun is noticed mid-batch (best-effort,
    still yielding a valid best-so-far result). *)

type t

val create : ?deadline:float -> ?max_evals:int -> ?clock:(unit -> float) -> unit -> t
(** [create ?deadline ?max_evals ?clock ()] starts a budget.  [deadline] is in
    seconds from now, measured on [clock] (default [Unix.gettimeofday]).
    [max_evals] caps the number of {!spend}-counted evaluations. *)

val poll : t -> unit
(** Read the clock; latch {!stopped} if the deadline has passed. *)

val stopped : t -> bool
(** The latched stop flag (deadline hit, eval cap hit, or {!stop} called).
    Does not read the clock. *)

val stop : t -> unit
(** Latch the stop flag manually. *)

val spend : t -> int -> unit
(** Record [n] evaluations; latches {!stopped} once the cap is exceeded. *)

val spent : t -> int

val would_exceed : t -> int -> bool
(** [would_exceed t n] is [true] iff an eval cap is set and spending [n] more
    evaluations would exceed it. *)

val remaining_evals : t -> int option
(** Evaluations left under the cap ([None] when uncapped); never negative. *)

val task_cancel : t -> unit -> bool
(** Cancellation closure for pool tasks.  Always reflects the latched flag;
    with the real clock it also checks the deadline directly. *)

val mark_degraded : t -> unit
val degraded : t -> bool
(** Set when a search returned a best-so-far result instead of exhausting its
    space.  Searches mark this; callers read it to tag results / exit codes. *)
