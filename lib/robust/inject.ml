type site =
  | Rule_lookup
  | Contact_rebuild
  | Sindex_query
  | Pool_task
  | Drc_check
  | Store_read
  | Store_write
  | Store_fsync
  | Store_rename

let all_sites =
  [
    Rule_lookup;
    Contact_rebuild;
    Sindex_query;
    Pool_task;
    Drc_check;
    Store_read;
    Store_write;
    Store_fsync;
    Store_rename;
  ]

let site_to_string = function
  | Rule_lookup -> "rule-lookup"
  | Contact_rebuild -> "contact-rebuild"
  | Sindex_query -> "sindex-query"
  | Pool_task -> "pool-task"
  | Drc_check -> "drc-check"
  | Store_read -> "store-read"
  | Store_write -> "store-write"
  | Store_fsync -> "store-fsync"
  | Store_rename -> "store-rename"

let site_of_string = function
  | "rule-lookup" -> Some Rule_lookup
  | "contact-rebuild" -> Some Contact_rebuild
  | "sindex-query" -> Some Sindex_query
  | "pool-task" -> Some Pool_task
  | "drc-check" -> Some Drc_check
  | "store-read" -> Some Store_read
  | "store-write" -> Some Store_write
  | "store-fsync" -> Some Store_fsync
  | "store-rename" -> Some Store_rename
  | _ -> None

exception Fault of site * int

type schedule = (site * int) list

let site_index = function
  | Rule_lookup -> 0
  | Contact_rebuild -> 1
  | Sindex_query -> 2
  | Pool_task -> 3
  | Drc_check -> 4
  | Store_read -> 5
  | Store_write -> 6
  | Store_fsync -> 7
  | Store_rename -> 8

let n_sites = 9

type state = { faults : schedule; counters : int Atomic.t array }

let state : state option Atomic.t = Atomic.make None

let arm faults =
  Atomic.set state
    (Some { faults; counters = Array.init n_sites (fun _ -> Atomic.make 0) })

let disarm () = Atomic.set state None
let armed () = Atomic.get state <> None

let hits site =
  match Atomic.get state with
  | None -> 0
  | Some st -> Atomic.get st.counters.(site_index site)

let probe site =
  match Atomic.get state with
  | None -> ()
  | Some st ->
      let hit = 1 + Atomic.fetch_and_add st.counters.(site_index site) 1 in
      if List.exists (fun (s, h) -> s = site && h = hit) st.faults then
        raise (Fault (site, hit))

let of_seed ?(faults = 2) seed =
  let sites = Array.of_list all_sites in
  let s = ref (seed land 0x3FFFFFFF) in
  let next () =
    s := ((!s * 1664525) + 1013904223) land 0x3FFFFFFF;
    !s
  in
  List.init faults (fun _ ->
      let site = sites.(next () mod Array.length sites) in
      let hit = 1 + (next () mod 50) in
      (site, hit))

let parse_spec spec =
  let fail msg = Stdlib.Error msg in
  match String.split_on_char ':' spec with
  | [ "seed"; n ] -> (
      match int_of_string_opt n with
      | Some seed -> Stdlib.Ok (of_seed seed)
      | None -> fail (Printf.sprintf "bad seed %S" n))
  | [ "seed"; n; k ] -> (
      match (int_of_string_opt n, int_of_string_opt k) with
      | Some seed, Some faults when faults >= 0 -> Stdlib.Ok (of_seed ~faults seed)
      | _ -> fail (Printf.sprintf "bad seed spec %S" spec))
  | _ ->
      let parse_one item =
        match String.split_on_char '@' item with
        | [ site; hit ] -> (
            match (site_of_string site, int_of_string_opt hit) with
            | Some s, Some h when h >= 1 -> Stdlib.Ok (s, h)
            | None, _ ->
                fail
                  (Printf.sprintf "unknown site %S (expected one of %s)" site
                     (String.concat ", " (List.map site_to_string all_sites)))
            | _ -> fail (Printf.sprintf "bad hit count in %S" item))
        | _ -> fail (Printf.sprintf "bad fault %S (expected SITE@HIT)" item)
      in
      if String.equal (String.trim spec) "" then Stdlib.Ok []
      else
        String.split_on_char ',' spec
        |> List.fold_left
             (fun acc item ->
               match (acc, parse_one (String.trim item)) with
               | Stdlib.Ok fs, Stdlib.Ok f -> Stdlib.Ok (f :: fs)
               | (Stdlib.Error _ as e), _ | _, (Stdlib.Error _ as e) -> e)
             (Stdlib.Ok [])
        |> Stdlib.Result.map List.rev

let to_diag site hit =
  Diag.v Diag.Internal ~code:"inject.fault"
    ~payload:
      [ ("site", site_to_string site); ("hit", string_of_int hit) ]
    ~hint:"this failure was injected deterministically; rerun without --inject"
    (Printf.sprintf "injected fault at %s (hit %d)" (site_to_string site) hit)
