(** Deterministic seeded fault injection.

    Probes are planted at the existing observability sites of the pipeline.
    When disarmed (the default) a probe costs a single atomic load.  When
    armed with a schedule, each probe increments a per-site hit counter and
    raises {!Fault} when the hit number matches a scheduled fault — making a
    given schedule perfectly reproducible regardless of what the faults do to
    downstream control flow. *)

type site =
  | Rule_lookup  (** technology rule lookup ([Rules.width]/[space]) *)
  | Contact_rebuild  (** contact-array rederivation ([Lobj.rederive]) *)
  | Sindex_query  (** spatial-index candidate query *)
  | Pool_task  (** domain-pool task boundary *)
  | Drc_check  (** start of a DRC check pass *)
  | Store_read  (** result-store log read during recovery *)
  | Store_write  (** result-store record append (fires mid-record: the
                     first half of the record is already on disk, leaving a
                     genuine torn tail) *)
  | Store_fsync  (** result-store durability barrier *)
  | Store_rename  (** checkpoint atomic-rename publish (crash-before-rename) *)

val all_sites : site list
val site_to_string : site -> string
val site_of_string : string -> site option

exception Fault of site * int
(** [Fault (site, hit)]: the [hit]-th probe at [site] was scheduled to fail. *)

type schedule = (site * int) list
(** Faults as [(site, nth-hit)] pairs; hits are 1-based. *)

val arm : schedule -> unit
(** Arm the harness; resets all hit counters.  An empty schedule counts hits
    but never fires — layouts must be byte-identical to a disarmed run. *)

val disarm : unit -> unit
val armed : unit -> bool

val hits : site -> int
(** Probe hits recorded at [site] since the last {!arm} (0 when disarmed). *)

val probe : site -> unit
(** Plant point: no-op when disarmed; counts and possibly raises {!Fault}. *)

val of_seed : ?faults:int -> int -> schedule
(** Deterministic schedule from a seed: [faults] (default 2) pairs drawn from
    an LCG over all sites with hit numbers in [1, 50]. *)

val parse_spec : string -> (schedule, string) Stdlib.result
(** Parse a CLI spec: ["seed:N"] (optionally ["seed:N:FAULTS"]) or a comma
    list of [SITE\@HIT] like ["rule-lookup\@3,pool-task\@1"]. *)

val to_diag : site -> int -> Diag.t
(** Render a caught {!Fault} as a structured diagnostic. *)
