(* Process-wide serving metrics: monotonic counters, gauges and
   fixed-bucket latency histograms, built for a long-running daemon.

   This is the *aggregated* side of the observability layer.  {!Obs}
   strands record a per-run event stream with deterministic merge order;
   the registry here accumulates totals across the whole process
   lifetime and is safe to bump from any thread or domain: every
   instrument is a set of atomics, updates are lock-free, and reads
   ([snapshot]/[to_prometheus]) never block writers.  Registration
   (first lookup of a name + label set) takes a mutex; keep instrument
   handles or accept one short critical section per lookup.

   Instruments are identified by name plus a (sorted) label set.  Labels
   must come from small fixed vocabularies (op names, status codes,
   cache outcomes) — never request ids, tenants or entity names; the
   registry grows one slot per distinct (name, labels) pair and nothing
   is ever unregistered.  [snapshot] returns samples sorted by (name,
   labels), so equal registry states yield byte-equal expositions.

   The registry is passive: arming it, registering callbacks and
   recording observations never touches generator state, so layouts and
   ratings are byte-identical with and without it (the probes-never-
   perturb property, extended to the registry; see test_metrics.ml). *)

(** {1 Counters} — monotonic, integer. *)

type counter

val counter : ?labels:(string * string) list -> string -> counter
(** Find or register.  A second call with the same name + labels returns
    the same instrument. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [n] must be >= 0; negative amounts are ignored (counters are
    monotonic). *)

val counter_value : counter -> int

val counter_fn : ?labels:(string * string) list -> string -> (unit -> int) -> unit
(** Callback-backed counter: the function is sampled at snapshot time.
    Re-registering the same name + labels replaces the callback (so a
    restarted subsystem can re-point the counter at its fresh state). *)

(** {1 Gauges} — current-value instruments, settable or callback-backed. *)

type gauge
(** Integer gauge. *)

type fgauge
(** Float gauge. *)

val gauge : ?labels:(string * string) list -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int
val fgauge : ?labels:(string * string) list -> string -> fgauge
val set_f : fgauge -> float -> unit

val gauge_fn : ?labels:(string * string) list -> string -> (unit -> float) -> unit
(** Callback-backed gauge, sampled at snapshot time.  Re-registering
    replaces the callback. *)

(** {1 Histograms} — fixed log-spaced buckets, exact counts. *)

type histogram

val default_latency_bounds : float array
(** Upper bucket bounds in seconds, log-spaced (factor 2) from 0.25 ms
    to ~524 s; an implicit +Inf overflow bucket follows the last bound. *)

val histogram :
  ?labels:(string * string) list -> ?bounds:float array -> string -> histogram
(** [bounds] must be strictly increasing and non-empty; defaults to
    {!default_latency_bounds}.  If the instrument already exists its
    original bounds are kept and [bounds] is ignored. *)

val observe : histogram -> float -> unit
(** Record one observation: bumps the first bucket whose bound is
    [>= v] (the overflow bucket if none) and adds [v] to the sum. *)

type hsnap = {
  h_bounds : float array;
  h_counts : int array;  (** one per bound, plus a final overflow slot *)
  h_count : int;         (** total observations *)
  h_sum : float;
}

val quantile : hsnap -> float -> float
(** [quantile h q] for [q] in [(0, 1]]: the upper bound of the bucket
    holding the [ceil (q * count)]-th observation — an upper estimate no
    further than one bucket width (factor 2) from the true quantile.
    Returns [0.] on an empty histogram and [infinity] when the rank
    falls in the overflow bucket. *)

(** {1 Snapshot and exposition} *)

type value = Counter of int | Gauge of float | Histogram of hsnap

type sample = {
  m_name : string;
  m_labels : (string * string) list;  (** sorted by key *)
  m_value : value;
}

val snapshot : unit -> sample list
(** Consistent-enough point-in-time read: each atomic is read once, the
    list is sorted by (name, labels).  Callback instruments are invoked
    here; a callback that raises yields 0 rather than poisoning the
    scrape. *)

val to_prometheus : unit -> string
(** Prometheus text exposition of {!snapshot}: names are sanitised to
    [[a-zA-Z0-9_]], counters gain a [_total] suffix, histograms emit
    cumulative [_bucket{le="..."}] series plus [_sum]/[_count].  Equal
    snapshots produce byte-equal output. *)

val reset : unit -> unit
(** Zero every counter, settable gauge and histogram; registrations and
    callbacks are kept.  For tests and determinism drills only — a
    serving process never resets. *)
