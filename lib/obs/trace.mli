(* Chrome trace-event export of the recorded {!Obs} stream, and the
   schema validator behind `amgen trace-lint` and the CI trace job. *)

val to_string : unit -> string
(** The current {!Obs} recording as a Trace Event JSON object
    ([{"traceEvents": [...]}]), loadable in about://tracing / Perfetto.
    Spans are B/E pairs, marks are instant events, counter totals are
    appended as "C" counter samples. *)

val write : string -> unit
(** [write path] saves {!to_string} to [path]. *)

val events_to_string :
  ?metadata:(string * string) list ->
  ?counters:(string * int) list ->
  Obs.event list ->
  string
(** Serialise an explicit event slice (e.g. one request's window) rather
    than the whole recording.  [metadata] becomes a top-level
    ["metadata"] object of string values — per-request traces put the
    request id there (key ["request_id"], checked by the validator).
    [counters] are appended as "C" samples like {!to_string} does. *)

val write_events :
  ?metadata:(string * string) list ->
  ?counters:(string * int) list ->
  string ->
  Obs.event list ->
  unit
(** [write_events path evs] saves {!events_to_string} to [path]. *)

type summary = {
  v_events : int;
  v_threads : int;
  v_spans : int;
  v_marks : int;
  v_request_id : string option;
      (** [metadata.request_id] when the trace carries one. *)
}

val validate_string : string -> (summary, string) result
(** Check a trace: well-formed JSON, [traceEvents] array (or the spec's
    bare-array form), required keys ([name]/[ph]/[ts]/[pid]/[tid]) on
    every event, non-decreasing [ts] per (pid, tid), and matched,
    properly nested B/E pairs.  A top-level ["metadata"] object, when
    present, must carry a non-empty string [request_id] — the shape the
    serve daemon's per-request exports use. *)

val validate_file : string -> (summary, string) result
