(* Chrome trace-event export of the recorded {!Obs} stream, and the
   schema validator behind `amgen trace-lint` and the CI trace job. *)

val to_string : unit -> string
(** The current {!Obs} recording as a Trace Event JSON object
    ([{"traceEvents": [...]}]), loadable in about://tracing / Perfetto.
    Spans are B/E pairs, marks are instant events, counter totals are
    appended as "C" counter samples. *)

val write : string -> unit
(** [write path] saves {!to_string} to [path]. *)

type summary = { v_events : int; v_threads : int; v_spans : int; v_marks : int }

val validate_string : string -> (summary, string) result
(** Check a trace: well-formed JSON, [traceEvents] array (or the spec's
    bare-array form), required keys ([name]/[ph]/[ts]/[pid]/[tid]) on
    every event, non-decreasing [ts] per (pid, tid), and matched,
    properly nested B/E pairs. *)

val validate_file : string -> (summary, string) result
